(* The failover suite lives in its own executable for the same reason
   serve_chaos does: the chaos scenario forks broker processes, and
   OCaml 5 forbids [Unix.fork] in any process that has ever spawned a
   domain. This process creates no domains, so fork-without-exec stays
   legal. *)
(* The in-process server tests drive Broker_server.step directly
   (without Broker_server.run, which installs this handler itself), so
   writes to freshly dead sockets must surface as EPIPE, not kill the
   test binary. *)
let () = Sys.set_signal Sys.sigpipe Sys.Signal_ignore
let () = Alcotest.run "probsub-failover" [ ("failover", Test_failover.suite) ]

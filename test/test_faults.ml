open Probsub_core
open Probsub_broker

let sub lo hi = Subscription.of_bounds [ (lo, hi) ]
let pub x = Publication.of_list [ x ]

(* ------------------------------------------------------------------ *)
(* Fault_plan unit behaviour *)

let test_plan_validation () =
  let bad f = Alcotest.check_raises "rejected" (Invalid_argument f) in
  bad "Fault_plan.create: drop outside [0, 1]" (fun () ->
      ignore (Fault_plan.create ~drop:1.5 ~seed:1 ()));
  bad "Fault_plan.create: duplicate outside [0, 1]" (fun () ->
      ignore (Fault_plan.create ~duplicate:(-0.1) ~seed:1 ()));
  bad "Fault_plan.create: negative jitter" (fun () ->
      ignore (Fault_plan.create ~jitter:(-1.0) ~seed:1 ()));
  bad "Fault_plan.create: bad crash window" (fun () ->
      ignore (Fault_plan.create ~crashes:[ (0, 5.0, 5.0) ] ~seed:1 ()));
  bad "Fault_plan.create: bad active window" (fun () ->
      ignore (Fault_plan.create ~active_from:3.0 ~active_until:2.0 ~seed:1 ()))

let test_plan_extremes () =
  let always_drop = Fault_plan.create ~drop:1.0 ~seed:4 () in
  for _ = 1 to 50 do
    Alcotest.(check (list (float 0.0)))
      "drop 1.0 loses everything" []
      (Fault_plan.transmit always_drop ~src:0 ~dst:1 ~now:1.0)
  done;
  let always_dup = Fault_plan.create ~duplicate:1.0 ~seed:4 () in
  for _ = 1 to 50 do
    Alcotest.(check int) "duplicate 1.0 doubles" 2
      (List.length (Fault_plan.transmit always_dup ~src:0 ~dst:1 ~now:1.0))
  done;
  let jittery = Fault_plan.create ~jitter:2.0 ~seed:4 () in
  for _ = 1 to 50 do
    List.iter
      (fun off ->
        Alcotest.(check bool) "jitter within bound" true
          (off >= 0.0 && off < 2.0))
      (Fault_plan.transmit jittery ~src:0 ~dst:1 ~now:1.0)
  done

let test_plan_active_window () =
  let plan =
    Fault_plan.create ~drop:1.0 ~active_from:10.0 ~active_until:20.0 ~seed:2 ()
  in
  let delivered now =
    Fault_plan.transmit plan ~src:0 ~dst:1 ~now <> []
  in
  Alcotest.(check bool) "before window: perfect" true (delivered 9.9);
  Alcotest.(check bool) "inside window: dropped" false (delivered 10.0);
  Alcotest.(check bool) "still inside" false (delivered 19.9);
  Alcotest.(check bool) "after window: perfect" true (delivered 20.0)

let test_plan_determinism () =
  let mk () =
    Fault_plan.create ~drop:0.3 ~duplicate:0.3 ~jitter:1.0 ~seed:77 ()
  in
  let a = mk () and b = mk () in
  for i = 0 to 199 do
    let now = float_of_int i in
    Alcotest.(check (list (float 0.0)))
      "same seed, same fate"
      (Fault_plan.transmit a ~src:(i mod 3) ~dst:((i + 1) mod 3) ~now)
      (Fault_plan.transmit b ~src:(i mod 3) ~dst:((i + 1) mod 3) ~now)
  done

let test_plan_link_override_and_down () =
  let plan =
    Fault_plan.create
      ~links:[ ((0, 1), { Fault_plan.drop = 1.0; duplicate = 0.0; jitter = 0.0 }) ]
      ~crashes:[ (2, 5.0, 8.0) ]
      ~seed:6 ()
  in
  Alcotest.(check (list (float 0.0)))
    "overridden direction drops" []
    (Fault_plan.transmit plan ~src:0 ~dst:1 ~now:0.0);
  Alcotest.(check (list (float 0.0)))
    "reverse direction untouched" [ 0.0 ]
    (Fault_plan.transmit plan ~src:1 ~dst:0 ~now:0.0);
  Alcotest.(check bool) "up before" false (Fault_plan.is_down plan ~broker:2 ~now:4.9);
  Alcotest.(check bool) "down inside" true (Fault_plan.is_down plan ~broker:2 ~now:5.0);
  Alcotest.(check bool) "up after" false (Fault_plan.is_down plan ~broker:2 ~now:8.0);
  Alcotest.(check bool) "others unaffected" false
    (Fault_plan.is_down plan ~broker:1 ~now:6.0)

(* ------------------------------------------------------------------ *)
(* Dedup window bounds *)

let test_dedup_window () =
  Alcotest.check_raises "zero capacity"
    (Invalid_argument "Dedup_window.create: capacity < 1") (fun () ->
      ignore (Dedup_window.create ~capacity:0));
  let w = Dedup_window.create ~capacity:3 in
  List.iter (fun i -> Dedup_window.add w i) [ 1; 2; 3 ];
  Alcotest.(check int) "full" 3 (Dedup_window.size w);
  Dedup_window.add w 4;
  Alcotest.(check int) "stays bounded" 3 (Dedup_window.size w);
  Alcotest.(check bool) "oldest evicted" false (Dedup_window.mem w 1);
  Alcotest.(check bool) "rest kept" true
    (Dedup_window.mem w 2 && Dedup_window.mem w 3 && Dedup_window.mem w 4);
  Dedup_window.add w 2;
  Alcotest.(check int) "re-add is a no-op" 3 (Dedup_window.size w);
  Alcotest.(check bool) "no eviction on re-add" true (Dedup_window.mem w 3);
  Dedup_window.clear w;
  Alcotest.(check int) "cleared" 0 (Dedup_window.size w);
  Alcotest.(check bool) "forgotten" false (Dedup_window.mem w 2)

let test_dedup_window_stress () =
  (* Memory stays bounded no matter how many ids stream through, and
     membership is exact for the trailing window. *)
  let cap = 64 in
  let w = Dedup_window.create ~capacity:cap in
  for i = 0 to 9_999 do
    Dedup_window.add w i;
    Alcotest.(check bool) "capacity bound holds" true
      (Dedup_window.size w <= cap)
  done;
  for i = 10_000 - cap to 9_999 do
    Alcotest.(check bool) "trailing window present" true (Dedup_window.mem w i)
  done;
  Alcotest.(check bool) "older ids evicted" false
    (Dedup_window.mem w (10_000 - cap - 1))

let test_broker_dedup_bounded () =
  (* A broker's publication dedup window forgets old ids once the
     window rolls over: dedup is a bounded cache, not unbounded
     history. *)
  let node =
    Broker_node.create ~dedup_capacity:2 ~id:0 ~neighbors:[]
      ~policy:Subscription_store.Pairwise_policy ~arity:1 ~seed:1 ()
  in
  let deliver payload =
    Broker_node.handle node ~now:0.0 ~origin:(Message.Client 1) payload
  in
  ignore (deliver (Message.Subscribe { key = 0; sub = sub 0 99; epoch = 0 }));
  let publish id = deliver (Message.Publish { id; pub = pub 5 }) in
  Alcotest.(check int) "first copy notifies" 1 (List.length (publish 7));
  Alcotest.(check int) "duplicate dropped" 0 (List.length (publish 7));
  ignore (publish 8);
  ignore (publish 9);
  (* id 7 has been evicted from the 2-slot window. *)
  Alcotest.(check int) "evicted id treated as fresh" 1
    (List.length (publish 7))

(* ------------------------------------------------------------------ *)
(* Zero-fault bit-identical regression *)

let scenario net =
  let s b c lo hi =
    ignore (Network.subscribe net ~broker:b ~client:c (sub lo hi))
  in
  s 0 1 0 40;
  s 4 2 20 80;
  Network.run net;
  ignore (Network.publish net ~broker:2 (pub 30));
  Network.run net;
  s 3 3 0 99;
  Network.run net;
  ignore (Network.publish net ~broker:0 (pub 85));
  ignore (Network.publish net ~broker:4 (pub 10));
  Network.run net

let test_zero_plan_bit_identical () =
  let make fault_plan =
    let net =
      Network.create ?fault_plan ~topology:(Topology.chain 5) ~arity:1 ~seed:7
        ()
    in
    scenario net;
    net
  in
  let plain = make None in
  let zero = make (Some Fault_plan.zero) in
  (* A plan with no faulty profile holds no generator either. *)
  let faultless = make (Some (Fault_plan.create ~seed:12345 ())) in
  List.iter
    (fun other ->
      Alcotest.(check bool) "identical metrics" true
        (Metrics.equal (Network.metrics plain) (Network.metrics other));
      Alcotest.(check bool) "identical notifications" true
        (Network.notifications plain = Network.notifications other);
      Alcotest.(check (float 0.0)) "identical clock" (Network.now plain)
        (Network.now other))
    [ zero; faultless ];
  let m = Network.metrics plain in
  Alcotest.(check int) "no acks without recovery" 0 m.Metrics.ack_msgs;
  Alcotest.(check int) "nothing dropped" 0 m.Metrics.dropped_msgs;
  Alcotest.(check int) "nothing duplicated" 0 m.Metrics.duplicated_msgs

(* ------------------------------------------------------------------ *)
(* run vs run_until: maintenance stays parked *)

let test_run_leaves_maintenance_queued () =
  let net =
    Network.create ~recovery:Network.default_recovery
      ~topology:(Topology.chain 2) ~arity:1 ~seed:3 ()
  in
  ignore (Network.subscribe net ~broker:0 ~client:1 (sub 0 9));
  Network.run net;
  let m = Network.metrics net in
  Alcotest.(check int) "run fires no refresh" 0 m.Metrics.lease_renewals;
  Alcotest.(check bool) "clock stays early" true
    (Network.now net < Network.default_recovery.Network.refresh_interval);
  Network.run_until net ~time:35.0;
  Alcotest.(check bool) "run_until ticks refreshes" true
    (m.Metrics.lease_renewals >= 3);
  Alcotest.(check (float 0.0)) "clock advanced" 35.0 (Network.now net)

(* ------------------------------------------------------------------ *)
(* Lost unsubscribe: retry cap, then lease expiry self-heals *)

let test_lost_unsubscribe_self_heals () =
  let plan =
    Fault_plan.create
      ~links:
        [ ((0, 1), { Fault_plan.drop = 1.0; duplicate = 0.0; jitter = 0.0 }) ]
      ~active_from:5.0 ~active_until:20.0 ~seed:3 ()
  in
  let recovery =
    { Network.lease_ttl = 8.0; refresh_interval = 3.0; rto = 1.0; max_retries = 3 }
  in
  let net =
    Network.create ~fault_plan:plan ~recovery ~topology:(Topology.chain 3)
      ~arity:1 ~seed:3 ()
  in
  let key = Network.subscribe net ~broker:0 ~client:9 (sub 0 50) in
  Network.run net;
  Alcotest.(check bool) "installed downstream" true
    (Broker_node.knows_subscription (Network.broker net 2) ~key);
  Network.run_until net ~time:6.0;
  (* The unsubscribe's only route out of broker 0 is now black-holed;
     every retransmission will be eaten too. *)
  Network.unsubscribe net ~broker:0 ~key;
  Network.run_until net ~time:40.0;
  Network.run net;
  let m = Network.metrics net in
  Alcotest.(check bool) "retransmissions attempted" true
    (m.Metrics.retransmissions >= 3);
  Alcotest.(check bool) "drops recorded" true (m.Metrics.dropped_msgs >= 4);
  Alcotest.(check bool) "stale leases reclaimed" true
    (m.Metrics.lease_expiries > 0);
  Alcotest.(check bool) "broker 1 healed" false
    (Broker_node.knows_subscription (Network.broker net 1) ~key);
  Alcotest.(check bool) "broker 2 healed" false
    (Broker_node.knows_subscription (Network.broker net 2) ~key);
  (* A probe matching the dead subscription reaches nobody. *)
  let audit = Audit.create () in
  let p = pub 10 in
  let pid = Network.publish net ~broker:2 p in
  Audit.expect audit net ~pub_id:pid p;
  Network.run net;
  let report = Audit.report audit net in
  Alcotest.(check bool) "clean" true (Audit.is_clean report);
  Alcotest.(check int) "no deliveries owed" 0 report.Audit.expected;
  Alcotest.(check int) "none made" 0 report.Audit.delivered

(* ------------------------------------------------------------------ *)
(* Crash and restart: refresh waves repopulate lost soft state *)

let test_crash_restart_recovery () =
  let plan = Fault_plan.create ~crashes:[ (1, 10.0, 15.0) ] ~seed:5 () in
  let recovery =
    { Network.lease_ttl = 12.0; refresh_interval = 4.0; rto = 1.0; max_retries = 4 }
  in
  let net =
    Network.create ~fault_plan:plan ~recovery ~topology:(Topology.chain 3)
      ~arity:1 ~seed:5 ()
  in
  let key = Network.subscribe net ~broker:2 ~client:7 (sub 0 50) in
  Network.run net;
  Alcotest.(check bool) "installed across the chain" true
    (Broker_node.knows_subscription (Network.broker net 0) ~key);
  Network.run_until net ~time:12.0;
  Alcotest.(check bool) "down inside the window" true (Network.broker_down net 1);
  Network.run_until net ~time:30.0;
  Network.run net;
  Alcotest.(check bool) "back up" false (Network.broker_down net 1);
  let m = Network.metrics net in
  Alcotest.(check int) "one crash" 1 m.Metrics.crashes;
  Alcotest.(check bool) "in-flight messages were discarded" true
    (m.Metrics.dropped_msgs > 0);
  Alcotest.(check bool) "reinstalled at the restarted broker" true
    (Broker_node.knows_subscription (Network.broker net 1) ~key);
  (* A probe from the far side must traverse the restarted broker. *)
  let audit = Audit.create () in
  let p = pub 25 in
  let pid = Network.publish net ~broker:0 p in
  Audit.expect audit net ~pub_id:pid p;
  Network.run net;
  let report = Audit.report audit net in
  if not (Audit.is_clean report) then
    Alcotest.failf "audit not clean:@.%a" Audit.pp report;
  Alcotest.(check int) "delivered exactly once" 1 report.Audit.delivered

(* ------------------------------------------------------------------ *)
(* Pure duplication + jitter era: dedup keeps delivery exactly-once *)

let test_duplication_era_lossless () =
  let plan = Fault_plan.create ~duplicate:0.6 ~jitter:1.0 ~seed:11 () in
  let net =
    Network.create ~fault_plan:plan ~recovery:Network.default_recovery
      ~topology:(Topology.star 5) ~arity:1 ~seed:11 ()
  in
  List.iter
    (fun b -> ignore (Network.subscribe net ~broker:b ~client:(10 + b) (sub 0 99)))
    [ 1; 2; 3; 4 ];
  Network.run net;
  let audit = Audit.create () in
  List.iteri
    (fun i b ->
      let p = pub (10 * (i + 1)) in
      let pid = Network.publish net ~broker:b p in
      Audit.expect audit net ~pub_id:pid p;
      Network.run net)
    [ 0; 2; 4 ];
  let report = Audit.report audit net in
  if not (Audit.is_clean report) then
    Alcotest.failf "audit not clean:@.%a" Audit.pp report;
  let m = Network.metrics net in
  Alcotest.(check bool) "duplicates injected" true
    (m.Metrics.duplicated_msgs > 0);
  Alcotest.(check bool) "duplicates suppressed" true
    (m.Metrics.duplicate_drops > 0);
  Alcotest.(check int) "every expected delivery made exactly once"
    report.Audit.expected report.Audit.delivered

(* ------------------------------------------------------------------ *)
(* Negative control: without recovery, loss really loses deliveries *)

let test_without_recovery_audit_catches_loss () =
  let plan =
    Fault_plan.create
      ~links:
        [ ((0, 1), { Fault_plan.drop = 1.0; duplicate = 0.0; jitter = 0.0 }) ]
      ~active_until:10.0 ~seed:8 ()
  in
  let net =
    Network.create ~fault_plan:plan ~topology:(Topology.chain 3) ~arity:1
      ~seed:8 ()
  in
  ignore (Network.subscribe net ~broker:0 ~client:1 (sub 0 50));
  Network.run net;
  Network.run_until net ~time:12.0;
  let audit = Audit.create () in
  let p = pub 10 in
  let pid = Network.publish net ~broker:2 p in
  Audit.expect audit net ~pub_id:pid p;
  Network.run net;
  let report = Audit.report audit net in
  Alcotest.(check bool) "oracle flags the loss" false (Audit.is_clean report);
  Alcotest.(check int) "one missed delivery" 1 (List.length report.Audit.missed);
  Alcotest.(check int) "nothing delivered" 0 report.Audit.delivered

let test_crash_window_outside_topology_rejected () =
  let plan = Fault_plan.create ~crashes:[ (9, 1.0, 2.0) ] ~seed:1 () in
  Alcotest.check_raises "unknown broker"
    (Invalid_argument "Network.create: crash window names an unknown broker")
    (fun () ->
      ignore
        (Network.create ~fault_plan:plan ~topology:(Topology.chain 2) ~arity:1
           ~seed:1 ()))

(* ------------------------------------------------------------------ *)
(* Full chaos: drops + duplicates + jitter + a crash, churn throughout,
   then convergence certified by the audit oracle. *)

let chaos ?(durable = false) ~topology ~crash_broker ~seed () =
  let n = Topology.size topology in
  let plan =
    Fault_plan.create ~drop:0.2 ~duplicate:0.15 ~jitter:1.5
      ~crashes:[ (crash_broker, 12.0, 22.0) ]
      ~active_until:40.0 ~seed ()
  in
  let recovery =
    { Network.lease_ttl = 30.0; refresh_interval = 10.0; rto = 2.0; max_retries = 6 }
  in
  let devices =
    if durable then
      Some
        (Array.init n (fun _ ->
             let d, _, _ = Probsub_store_log.Device.in_memory () in
             d))
    else None
  in
  let net =
    Network.create ?devices ~fault_plan:plan ~recovery ~topology ~arity:1 ~seed
      ()
  in
  let sub_at b lo hi =
    (b, Network.subscribe net ~broker:b ~client:(100 + b) (sub lo hi))
  in
  (* Churn while the network is faulty: installs, traffic, and an
     unsubscribe whose control messages may all be lost. *)
  let _k0 = sub_at 0 0 30 in
  let _k1 = sub_at (n - 1) 20 60 in
  Network.run_until net ~time:5.0;
  let _k2 = sub_at (n / 2) 10 50 in
  let _, wide = sub_at 1 0 99 in
  Network.run_until net ~time:15.0;
  (* Unaudited best-effort traffic during the era. *)
  ignore (Network.publish net ~broker:(n - 1) (pub 25));
  Network.run_until net ~time:25.0;
  Network.unsubscribe net ~broker:1 ~key:wide;
  Network.run_until net ~time:40.0;
  (* Era over: let refresh waves repair and stale leases drain. *)
  Network.run_until net ~time:110.0;
  Network.run net;
  (* Probe the whole subscription space from several injection points. *)
  let audit = Audit.create () in
  List.iter
    (fun x ->
      List.iter
        (fun b ->
          let p = pub x in
          let pid = Network.publish net ~broker:b p in
          Audit.expect audit net ~pub_id:pid p)
        [ 0; n / 2; n - 1 ])
    [ 5; 25; 45; 70; 95 ];
  Network.run net;
  let report = Audit.report audit net in
  if not (Audit.is_clean report) then
    Alcotest.failf "audit not clean:@.%a" Audit.pp report;
  Alcotest.(check bool) "probes had recipients" true (report.Audit.expected > 0);
  let m = Network.metrics net in
  Alcotest.(check int) "crash fired" 1 m.Metrics.crashes;
  Alcotest.(check bool) "faults actually bit" true
    (m.Metrics.dropped_msgs > 0 && m.Metrics.duplicated_msgs > 0);
  Alcotest.(check bool) "channel did repair work" true
    (m.Metrics.retransmissions > 0);
  Alcotest.(check bool) "leases were renewed" true
    (m.Metrics.lease_renewals > 0);
  Alcotest.(check bool) "acks flowed" true (m.Metrics.ack_msgs > 0)

(* ------------------------------------------------------------------ *)
(* Durable restart: a broker that crashes inside the window comes back
   from its WAL instead of empty. The probe fires before the first
   refresh wave, so nothing but the WAL can have repaired the restarted
   broker's routing table — the empty restart must miss the delivery,
   the durable one must not. *)

let durable_restart_report ~durable () =
  let plan = Fault_plan.create ~crashes:[ (1, 5.0, 20.5) ] ~seed:31 () in
  let recovery =
    {
      Network.lease_ttl = 100.0;
      refresh_interval = 60.0;
      rto = 2.0;
      max_retries = 4;
    }
  in
  let devices =
    if durable then
      Some
        (Array.init 3 (fun _ ->
             let d, _, _ = Probsub_store_log.Device.in_memory () in
             d))
    else None
  in
  let net =
    Network.create ?devices ~fault_plan:plan ~recovery
      ~topology:(Topology.chain 3) ~arity:1 ~seed:31 ()
  in
  ignore (Network.subscribe net ~broker:0 ~client:1 (sub 0 50));
  Network.run net;
  Network.run_until net ~time:21.0;
  Network.run net;
  let audit = Audit.create () in
  let p = pub 25 in
  let pid = Network.publish net ~broker:2 p in
  Audit.expect audit net ~pub_id:pid p;
  Network.run net;
  Audit.report audit net

let test_durable_restart_beats_empty () =
  let durable = durable_restart_report ~durable:true () in
  let empty = durable_restart_report ~durable:false () in
  Alcotest.(check bool) "durable restart is clean" true
    (Audit.is_clean durable);
  Alcotest.(check int) "durable restart misses nothing" 0
    (List.length durable.Audit.missed);
  Alcotest.(check int) "empty restart misses the delivery" 1
    (List.length empty.Audit.missed);
  Alcotest.(check bool) "strictly fewer false negatives when durable" true
    (List.length durable.Audit.missed < List.length empty.Audit.missed)

let test_chaos_chain () = chaos ~topology:(Topology.chain 6) ~crash_broker:3 ~seed:21 ()
let test_chaos_star () = chaos ~topology:(Topology.star 6) ~crash_broker:0 ~seed:22 ()

let test_chaos_tree () =
  chaos ~topology:(Topology.balanced_tree ~branching:2 ~depth:2) ~crash_broker:1
    ~seed:23 ()

(* The same chaos scenario with durable brokers: the restart path now
   goes through WAL recovery (plus the soft-state reset), and the
   audit must stay just as clean. *)
let test_chaos_chain_durable () =
  chaos ~durable:true ~topology:(Topology.chain 6) ~crash_broker:3 ~seed:21 ()

let suite =
  [
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "plan extremes" `Quick test_plan_extremes;
    Alcotest.test_case "plan active window" `Quick test_plan_active_window;
    Alcotest.test_case "plan determinism" `Quick test_plan_determinism;
    Alcotest.test_case "plan link override and crash windows" `Quick
      test_plan_link_override_and_down;
    Alcotest.test_case "dedup window" `Quick test_dedup_window;
    Alcotest.test_case "dedup window stress" `Quick test_dedup_window_stress;
    Alcotest.test_case "broker dedup stays bounded" `Quick
      test_broker_dedup_bounded;
    Alcotest.test_case "zero plan is bit-identical" `Quick
      test_zero_plan_bit_identical;
    Alcotest.test_case "run parks maintenance" `Quick
      test_run_leaves_maintenance_queued;
    Alcotest.test_case "lost unsubscribe self-heals" `Quick
      test_lost_unsubscribe_self_heals;
    Alcotest.test_case "crash/restart recovery" `Quick
      test_crash_restart_recovery;
    Alcotest.test_case "duplication era stays lossless" `Quick
      test_duplication_era_lossless;
    Alcotest.test_case "audit catches loss without recovery" `Quick
      test_without_recovery_audit_catches_loss;
    Alcotest.test_case "crash window validation" `Quick
      test_crash_window_outside_topology_rejected;
    Alcotest.test_case "durable restart beats empty restart" `Quick
      test_durable_restart_beats_empty;
    Alcotest.test_case "chaos on a chain" `Quick test_chaos_chain;
    Alcotest.test_case "chaos on a star" `Quick test_chaos_star;
    Alcotest.test_case "chaos on a tree" `Quick test_chaos_tree;
    Alcotest.test_case "chaos on a durable chain" `Quick
      test_chaos_chain_durable;
  ]

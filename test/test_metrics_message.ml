open Probsub_core
open Probsub_broker

let test_metrics_counters () =
  let m = Metrics.create () in
  Alcotest.(check int) "starts empty" 0 (Metrics.total_messages m);
  m.Metrics.subscribe_msgs <- 3;
  m.Metrics.unsubscribe_msgs <- 1;
  m.Metrics.advertise_msgs <- 2;
  m.Metrics.publish_msgs <- 5;
  m.Metrics.notifications <- 7;
  Alcotest.(check int) "total counts link messages only" 11
    (Metrics.total_messages m);
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.total_messages m);
  Alcotest.(check int) "reset notifications too" 0 m.Metrics.notifications

let contains_substring haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  loop 0

let test_metrics_pp () =
  let m = Metrics.create () in
  m.Metrics.subscribe_msgs <- 42;
  let rendered = Format.asprintf "%a" Metrics.pp m in
  Alcotest.(check bool) "renders the counter" true
    (contains_substring rendered "42")

let test_origin_equal () =
  Alcotest.(check bool) "clients" true
    (Message.origin_equal (Message.Client 1) (Message.Client 1));
  Alcotest.(check bool) "links" true
    (Message.origin_equal (Message.Link 2) (Message.Link 2));
  Alcotest.(check bool) "client vs link" false
    (Message.origin_equal (Message.Client 2) (Message.Link 2));
  Alcotest.(check bool) "different clients" false
    (Message.origin_equal (Message.Client 1) (Message.Client 2))

let test_payload_pp () =
  let sub = Subscription.of_bounds [ (0, 9) ] in
  let renders p = Format.asprintf "%a" Message.pp_payload p in
  Alcotest.(check bool) "subscribe renders key" true
    (String.length (renders (Message.Subscribe { key = 7; sub; epoch = 0 })) > 0);
  Alcotest.(check string) "ack" "ack seq 9" (renders (Message.Ack { seq = 9 }));
  Alcotest.(check string) "unsubscribe" "unsubscribe #3"
    (renders (Message.Unsubscribe { key = 3 }));
  Alcotest.(check string) "unadvertise" "unadvertise #4"
    (renders (Message.Unadvertise { key = 4 }))

let test_network_introspection () =
  let net =
    Network.create ~topology:(Topology.chain 3) ~arity:1 ~seed:1 ()
  in
  let sub = Subscription.of_bounds [ (0, 9) ] in
  let key = Network.subscribe net ~broker:1 ~client:5 sub in
  Network.run net;
  Alcotest.(check (list (pair (pair int int) (pair int bool))))
    "client subscriptions listed"
    [ ((1, 5), (key, true)) ]
    (List.map
       (fun (b, c, k, s) -> ((b, c), (k, Subscription.equal s sub)))
       (Network.client_subscriptions net));
  Alcotest.(check (list (triple int int int))) "expected recipients"
    [ (1, 5, key) ]
    (Network.expected_recipients net (Publication.of_list [ 4 ]));
  Alcotest.(check (list (triple int int int))) "no recipient outside"
    []
    (Network.expected_recipients net (Publication.of_list [ 40 ]));
  Alcotest.(check bool) "clock advanced" true (Network.now net >= 0.0)

let suite =
  [
    Alcotest.test_case "metrics counters" `Quick test_metrics_counters;
    Alcotest.test_case "metrics rendering" `Quick test_metrics_pp;
    Alcotest.test_case "origin equality" `Quick test_origin_equal;
    Alcotest.test_case "payload rendering" `Quick test_payload_pp;
    Alcotest.test_case "network introspection" `Quick
      test_network_introspection;
  ]

(* Reliable_link: the transport-agnostic sender/receiver pair both the
   simulator (Network) and the socket server run. The headline property
   is the ISSUE's exactly-once invariant: over a link that drops,
   duplicates and reorders — acks included — every message whose retry
   budget suffices is processed by the receiver exactly once, and the
   sender always quiesces (everything acked or given up). *)

open Probsub_broker
module RL = Reliable_link

(* Unit coverage of the sender state machine. *)

let config = { RL.rto = 1.0; max_retries = 3 }

let test_ack_cancels () =
  let s = RL.sender config in
  RL.track s ~seq:7 ~item:"hello" ~timer:1.0;
  Alcotest.(check int) "in flight" 1 (RL.in_flight s);
  Alcotest.(check bool) "tracked" true (RL.tracked s ~seq:7);
  (match RL.ack s ~seq:7 with
  | Some t -> Alcotest.(check (float 0.0)) "timer returned" 1.0 t
  | None -> Alcotest.fail "ack must return the timer");
  Alcotest.(check int) "drained" 0 (RL.in_flight s);
  Alcotest.(check bool) "late duplicate ack" true (RL.ack s ~seq:7 = None);
  match RL.on_timeout s ~seq:7 with
  | RL.Not_tracked -> ()
  | _ -> Alcotest.fail "stale timer must be Not_tracked"

let test_backoff_doubles_then_gives_up () =
  let s = RL.sender config in
  RL.track s ~seq:0 ~item:"m" ~timer:1.0;
  let rtos = ref [] in
  let rec drive () =
    match RL.on_timeout s ~seq:0 with
    | RL.Retransmit { item; rto } ->
        Alcotest.(check string) "item preserved" "m" item;
        rtos := rto :: !rtos;
        RL.set_timer s ~seq:0 rto;
        drive ()
    | RL.Give_up -> ()
    | RL.Not_tracked -> Alcotest.fail "tracked entry cannot be Not_tracked"
  in
  drive ();
  Alcotest.(check (list (float 0.0))) "doubled each retry" [ 2.0; 4.0; 8.0 ]
    (List.rev !rtos);
  Alcotest.(check int) "dropped after budget" 0 (RL.in_flight s)

let test_track_duplicate_seq_rejected () =
  let s = RL.sender config in
  RL.track s ~seq:3 ~item:() ~timer:();
  (match RL.track s ~seq:3 ~item:() ~timer:() with
  | () -> Alcotest.fail "duplicate seq must be rejected"
  | exception Invalid_argument _ -> ());
  match RL.set_timer s ~seq:99 () with
  | () -> Alcotest.fail "unknown seq must be rejected"
  | exception Invalid_argument _ -> ()

let test_drop_where_and_unacked () =
  let s = RL.sender config in
  List.iter
    (fun (seq, src) -> RL.track s ~seq ~item:src ~timer:seq)
    [ (5, "a"); (1, "b"); (3, "a"); (2, "c") ];
  Alcotest.(check (list (pair int string)))
    "unacked ascending"
    [ (1, "b"); (2, "c"); (3, "a"); (5, "a") ]
    (RL.unacked s);
  let dropped = RL.drop_where s (fun src -> src = "a") in
  Alcotest.(check (list (pair int int))) "dropped ascending with timers"
    [ (3, 3); (5, 5) ] dropped;
  Alcotest.(check (list (pair int string)))
    "survivors" [ (1, "b"); (2, "c") ] (RL.unacked s)

let test_receiver_window () =
  let r = RL.receiver ~capacity:4 () in
  let admit seq = RL.admit r ~seq = `Fresh in
  Alcotest.(check bool) "first is fresh" true (admit 0);
  Alcotest.(check bool) "repeat is duplicate" false (admit 0);
  List.iter (fun s -> ignore (admit s)) [ 1; 2; 3; 4 ];
  (* Capacity 4: seq 0 has been evicted, so an ancient duplicate is
     wrongly fresh — the documented window trade-off. *)
  Alcotest.(check bool) "evicted id readmitted" true (admit 0);
  RL.reset_receiver r;
  Alcotest.(check bool) "reset forgets" true (admit 3)

(* The chaos property. Each message's per-attempt fate (how many
   copies the link delivers, whether the ack survives, the latency) is
   generated up front; the simulation then runs sender timeouts,
   receiver dedup and ack processing over a sorted event list — a
   miniature of both the simulator's event queue and the server's
   deadline loop (timers are plain deadlines; stale ones resolve to
   [Not_tracked], exactly as in the socket server). *)

type fate = { copies : int; ack_dropped : bool; delay : float }

type link_event = Arrive of int | Ack_back of int | Timeout of int

let run_link ~cfg fates =
  let n = Array.length fates in
  let sender = RL.sender cfg in
  let receiver = RL.receiver ~capacity:1024 () in
  let processed = ref [] in
  let events = ref [] in
  let push time ev =
    events := List.merge (fun (a, _) (b, _) -> compare a b) !events [ (time, ev) ]
  in
  let attempt_no = Array.make n 0 in
  let transmit now seq =
    let attempts = fates.(seq) in
    let a = min attempt_no.(seq) (Array.length attempts - 1) in
    attempt_no.(seq) <- attempt_no.(seq) + 1;
    let f = attempts.(a) in
    for c = 0 to f.copies - 1 do
      (* Duplicates trail the original slightly; reorder across
         messages comes from the per-attempt delays. *)
      push (now +. f.delay +. (0.01 *. float_of_int c)) (Arrive seq)
    done;
    if f.copies > 0 && not f.ack_dropped then
      push (now +. (2.0 *. f.delay)) (Ack_back seq)
  in
  for seq = 0 to n - 1 do
    let t0 = 0.1 *. float_of_int seq in
    RL.track sender ~seq ~item:seq ~timer:(t0 +. cfg.RL.rto);
    push (t0 +. cfg.RL.rto) (Timeout seq);
    transmit t0 seq
  done;
  let rec loop () =
    match !events with
    | [] -> ()
    | (now, ev) :: rest ->
        events := rest;
        (match ev with
        | Arrive seq -> (
            match RL.admit receiver ~seq with
            | `Fresh -> processed := seq :: !processed
            | `Duplicate -> ())
        | Ack_back seq -> ignore (RL.ack sender ~seq)
        | Timeout seq -> (
            match RL.on_timeout sender ~seq with
            | RL.Not_tracked | RL.Give_up -> ()
            | RL.Retransmit { item; rto } ->
                Alcotest.(check int) "retransmits its own item" seq item;
                transmit now seq;
                RL.set_timer sender ~seq (now +. rto);
                push (now +. rto) (Timeout seq)));
        loop ()
  in
  loop ();
  (List.rev !processed, RL.in_flight sender)

let gen_fates =
  QCheck.Gen.(
    let attempts = config.RL.max_retries + 1 in
    let gen_fate =
      let* copies = int_range 0 2 in
      let* ack_dropped = bool in
      let* d = int_range 1 30 in
      return { copies; ack_dropped; delay = float_of_int d /. 10.0 }
    in
    let gen_message =
      let* fs = array_repeat attempts gen_fate in
      (* Guarantee the retry budget suffices: at least one attempt must
         put a copy on the wire (see the delivery argument below). *)
      let* forced = int_range 0 (attempts - 1) in
      if Array.for_all (fun f -> f.copies = 0) fs then
        return
          (Array.mapi
             (fun i f -> if i = forced then { f with copies = 1 } else f)
             fs)
      else return fs
    in
    array_size (int_range 1 25) gen_message)

let arb_fates =
  QCheck.make
    ~print:(fun fates ->
      Printf.sprintf "%d messages: [%s]" (Array.length fates)
        (String.concat "; "
           (Array.to_list
              (Array.map
                 (fun fs ->
                   String.concat ","
                     (Array.to_list
                        (Array.map
                           (fun f ->
                             Printf.sprintf "%d%s" f.copies
                               (if f.ack_dropped then "!" else ""))
                           fs)))
                 fates))))
    gen_fates

(* Why delivery is guaranteed: attempts happen in order on timeouts,
   and acks only ever follow a delivered copy — so the sender keeps
   retransmitting at least until the first copy-bearing attempt has
   gone out. The generator forces one such attempt within the budget,
   hence every message reaches the receiver; the window then admits it
   exactly once. *)
let prop_exactly_once =
  QCheck.Test.make ~name:"delivered set = sent set, each exactly once"
    ~count:200 arb_fates (fun fates ->
      let processed, in_flight = run_link ~cfg:config fates in
      let n = Array.length fates in
      List.sort compare processed = List.init n (fun i -> i)
      && in_flight = 0)

let prop_receiver_exactly_once_under_reorder =
  QCheck.Test.make
    ~name:"receiver admits each seq once under duplicate + reorder"
    ~count:300
    QCheck.(
      make
        ~print:(fun l -> String.concat ";" (List.map string_of_int l))
        Gen.(list_size (int_range 0 200) (int_range 0 63)))
    (fun seqs ->
      let r = RL.receiver ~capacity:64 () in
      let fresh =
        List.filter (fun seq -> RL.admit r ~seq = `Fresh) seqs
      in
      (* Window capacity covers the whole id space here, so dedup is
         exact: each distinct id is admitted exactly once, and none is
         lost. *)
      List.length fresh = List.length (List.sort_uniq compare fresh)
      && List.sort_uniq compare fresh = List.sort_uniq compare seqs)

let suite =
  [
    Alcotest.test_case "ack cancels and is idempotent" `Quick test_ack_cancels;
    Alcotest.test_case "backoff doubles then gives up" `Quick
      test_backoff_doubles_then_gives_up;
    Alcotest.test_case "duplicate seq / unknown seq rejected" `Quick
      test_track_duplicate_seq_rejected;
    Alcotest.test_case "drop_where and unacked ordering" `Quick
      test_drop_where_and_unacked;
    Alcotest.test_case "receiver window semantics" `Quick test_receiver_window;
    QCheck_alcotest.to_alcotest prop_exactly_once;
    QCheck_alcotest.to_alcotest prop_receiver_exactly_once_under_reorder;
  ]

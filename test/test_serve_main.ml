(* The serve_chaos suite lives in its own executable: the chaos
   harness forks broker processes, and OCaml 5 forbids [Unix.fork] in
   any process that has ever spawned a domain — which the main test
   binary does (domain-pool, parallel-RSPC and shard suites). This
   process creates no domains, so fork-without-exec stays legal. *)
let () = Alcotest.run "probsub-serve" [ ("serve_chaos", Test_serve_chaos.suite) ]

(* Durable store tests: codec roundtrips, sim-file fault semantics,
   WAL scanning on damaged bytes, fsck verdicts, recovery equivalence
   (live store = snapshot + suffix replay), compaction crash windows,
   and the qcheck crash-point property — for any op sequence and any
   cut or bit flip, recovery never raises and lands exactly on the
   longest valid record prefix, and re-recovery is a fixpoint. *)

open Probsub_core
open Probsub_store_log

let sub lo hi = Subscription.of_bounds [ (lo, hi) ]
let pairwise = Subscription_store.Pairwise_policy

let group_cfg =
  Engine.config ~delta:1e-3 ~max_iterations:60 ()

(* ------------------------------------------------------------------ *)
(* Codec roundtrips *)

let roundtrip r =
  match Codec.decode (Codec.encode r) with
  | Ok r' -> r' = r
  | Error _ -> false

let meta_pairwise = { Codec.m_arity = 3; m_seed = 42; m_policy = pairwise }

let sample_image =
  {
    Subscription_store.i_next_id = 3;
    i_splits = 5;
    i_entries =
      [
        (0, sub 0 10, Subscription_store.Active, 25.0);
        (2, sub 2 8, Subscription_store.Covered [ 0 ], infinity);
      ];
  }

let sample_binding =
  { Codec.b_rid = 2; b_key = 17; b_okind = 2; b_oarg = 1; b_epoch = 4 }

let test_codec_roundtrips () =
  let records =
    [
      Codec.Genesis meta_pairwise;
      Codec.Genesis
        { Codec.m_arity = 1; m_seed = 0; m_policy = Subscription_store.No_coverage };
      Codec.Genesis
        {
          Codec.m_arity = 8;
          m_seed = 123456789;
          m_policy = Subscription_store.Group_policy group_cfg;
        };
      Codec.Op
        (Subscription_store.Op_add
           {
             id = 0;
             sub = sub (-50) 1_000_000;
             placement = Subscription_store.Active;
             expires_at = infinity;
           });
      Codec.Op
        (Subscription_store.Op_add
           {
             id = 7;
             sub = Subscription.of_bounds [ (0, 9); (3, 4); (1, 2) ];
             placement = Subscription_store.Covered [ 1; 4; 6 ];
             expires_at = 12.5;
           });
      Codec.Op
        (Subscription_store.Op_remove
           {
             id = 4;
             reclassified =
               [ (5, Subscription_store.Active); (6, Subscription_store.Covered [ 2 ]) ];
           });
      Codec.Op (Subscription_store.Op_remove { id = 0; reclassified = [] });
      Codec.Op (Subscription_store.Op_renew { id = 3; expires_at = 99.25 });
      Codec.Op
        (Subscription_store.Op_expire
           {
             now = 40.0;
             expired = [ 1; 2 ];
             reclassified = [ (3, Subscription_store.Active) ];
           });
      Codec.Bind sample_binding;
      Codec.Epoch_note { key = 9; epoch = 12 };
      Codec.Snapshot
        {
          meta = meta_pairwise;
          last_lsn = 77;
          image = sample_image;
          bindings = [ sample_binding; { sample_binding with Codec.b_rid = 0 } ];
        };
    ]
  in
  List.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d roundtrips" i)
        true (roundtrip r))
    records

let test_codec_rejects_garbage () =
  let bad s =
    match Codec.decode s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "unknown tag" true (bad "\xff");
  Alcotest.(check bool) "truncated varint" true (bad "\x01\x80");
  Alcotest.(check bool) "trailing bytes" true
    (bad (Codec.encode (Codec.Epoch_note { key = 1; epoch = 2 }) ^ "x"))

let test_frame_roundtrip_and_bounds () =
  let payload = Codec.encode (Codec.Epoch_note { key = 3; epoch = 9 }) in
  let framed = Codec.frame ~lsn:5 payload in
  (match Codec.read_frame framed ~pos:0 with
  | Codec.Frame { lsn; payload = p; next } ->
      Alcotest.(check int) "lsn" 5 lsn;
      Alcotest.(check string) "payload" payload p;
      Alcotest.(check int) "next" (String.length framed) next
  | _ -> Alcotest.fail "frame did not read back");
  (match Codec.read_frame "" ~pos:0 with
  | Codec.Frame_truncated -> ()
  | _ -> Alcotest.fail "empty input should be truncated");
  (match Codec.read_frame (String.sub framed 0 5) ~pos:0 with
  | Codec.Frame_truncated -> ()
  | _ -> Alcotest.fail "partial header should be truncated");
  Alcotest.check_raises "negative lsn"
    (Invalid_argument "Codec.frame: negative lsn") (fun () ->
      ignore (Codec.frame ~lsn:(-1) payload))

(* ------------------------------------------------------------------ *)
(* Sim_file fault semantics *)

let test_sim_file_semantics () =
  let f = Sim_file.create () in
  Sim_file.append f "hello";
  Alcotest.(check string) "append" "hello" (Sim_file.contents f);
  (* Torn write: only the bytes below the cap land. *)
  Sim_file.set_write_limit f (Some 8);
  Sim_file.append f "world";
  Alcotest.(check string) "torn append" "hellowor" (Sim_file.contents f);
  Sim_file.append f "more";
  Alcotest.(check string) "post-crash appends vanish" "hellowor"
    (Sim_file.contents f);
  (* Atomic store: all-or-keep-old under the cap. *)
  Sim_file.store f "tiny";
  Alcotest.(check string) "store under cap replaces" "tiny"
    (Sim_file.contents f);
  Sim_file.store f "waytoolongforthecap";
  Alcotest.(check string) "store over cap keeps old" "tiny"
    (Sim_file.contents f);
  Sim_file.set_write_limit f None;
  Sim_file.store f "0123456789";
  Sim_file.truncate f 4;
  Alcotest.(check string) "truncate" "0123" (Sim_file.contents f);
  Sim_file.truncate f 400;
  Alcotest.(check string) "truncate past end is a no-op" "0123"
    (Sim_file.contents f);
  Sim_file.flip_bit f ~byte:0 ~bit:0;
  Alcotest.(check string) "flip bit" "1123" (Sim_file.contents f);
  Alcotest.check_raises "flip out of range"
    (Invalid_argument "Sim_file.flip_bit: byte out of range") (fun () ->
      Sim_file.flip_bit f ~byte:99 ~bit:0);
  Alcotest.check_raises "negative cap"
    (Invalid_argument "Sim_file.set_write_limit: negative cap") (fun () ->
      Sim_file.set_write_limit f (Some (-1)))

(* ------------------------------------------------------------------ *)
(* WAL scanning on crafted damage *)

let frames_of records =
  String.concat ""
    (List.mapi (fun i r -> Codec.frame ~lsn:i (Codec.encode r)) records)

let three_records =
  [
    Codec.Epoch_note { key = 1; epoch = 1 };
    Codec.Bind sample_binding;
    Codec.Epoch_note { key = 2; epoch = 5 };
  ]

let test_wal_scan_clean () =
  let s = frames_of three_records in
  let sc = Wal.scan s in
  Alcotest.(check int) "all records" 3 (List.length sc.Wal.records);
  Alcotest.(check int) "valid = total" sc.Wal.total_bytes sc.Wal.valid_bytes;
  Alcotest.(check bool) "clean" true (sc.Wal.stop = Wal.Clean);
  List.iteri
    (fun i (e : Wal.entry) ->
      Alcotest.(check int) (Printf.sprintf "lsn %d" i) i e.Wal.e_lsn)
    sc.Wal.records

let test_wal_scan_truncated () =
  let s = frames_of three_records in
  let cut = String.sub s 0 (String.length s - 3) in
  let sc = Wal.scan cut in
  Alcotest.(check int) "prefix records" 2 (List.length sc.Wal.records);
  (match sc.Wal.stop with
  | Wal.Truncated n -> Alcotest.(check bool) "tail bytes" true (n > 0)
  | _ -> Alcotest.fail "expected Truncated");
  Alcotest.(check bool) "valid < total" true
    (sc.Wal.valid_bytes < sc.Wal.total_bytes)

let test_wal_scan_bad_crc () =
  let s = frames_of three_records in
  let first = String.length (Codec.frame ~lsn:0 (Codec.encode (List.hd three_records))) in
  let b = Bytes.of_string s in
  (* Flip a payload byte of the second frame: CRC must catch it. *)
  Bytes.set b (first + 8) (Char.chr (Char.code (Bytes.get b (first + 8)) lxor 1));
  let sc = Wal.scan (Bytes.to_string b) in
  Alcotest.(check int) "only the first survives" 1 (List.length sc.Wal.records);
  (match sc.Wal.stop with
  | Wal.Corrupt { offset; reason } ->
      Alcotest.(check int) "at the damaged frame" first offset;
      Alcotest.(check string) "crc verdict" "bad crc" reason
  | _ -> Alcotest.fail "expected Corrupt");
  Alcotest.(check int) "valid prefix ends before damage" first
    sc.Wal.valid_bytes

let test_wal_scan_lsn_regression () =
  let f r lsn = Codec.frame ~lsn (Codec.encode r) in
  let s =
    f (Codec.Epoch_note { key = 1; epoch = 1 }) 0
    ^ f (Codec.Epoch_note { key = 2; epoch = 2 }) 0
  in
  let sc = Wal.scan s in
  Alcotest.(check int) "first record kept" 1 (List.length sc.Wal.records);
  match sc.Wal.stop with
  | Wal.Corrupt { reason; _ } ->
      Alcotest.(check string) "reason" "lsn regression" reason
  | _ -> Alcotest.fail "expected Corrupt"

(* ------------------------------------------------------------------ *)
(* Scripted op mix shared by the recovery tests *)

type script_op = Add of int * int | Remove of int | Renew of int | Expire

let apply_one store live i op =
  let now = float_of_int i in
  match op with
  | Add (lo, w) ->
      let id, _ =
        Subscription_store.add_with_expiry store (sub lo (lo + w))
          ~expires_at:(now +. 12.0)
      in
      id :: live
  | Remove j -> (
      match live with
      | [] -> live
      | _ ->
          let id = List.nth live (j mod List.length live) in
          ignore (Subscription_store.remove store id);
          List.filter (fun x -> x <> id) live)
  | Renew j -> (
      match live with
      | [] -> live
      | _ ->
          let id = List.nth live (j mod List.length live) in
          Subscription_store.renew store id ~expires_at:(now +. 30.0);
          live)
  | Expire ->
      let expired, _ = Subscription_store.expire store ~now in
      List.filter (fun x -> not (List.mem x expired)) live

let apply_script ?(limit = max_int) ?on_op store script =
  let live = ref [] in
  List.iteri
    (fun i op ->
      if i < limit then begin
        live := apply_one store !live i op;
        match on_op with Some f -> f i | None -> ()
      end)
    script

let demo_script =
  [
    Add (0, 10);
    Add (2, 5);
    Add (20, 9);
    Renew 1;
    Remove 0;
    Add (3, 4);
    Expire;
    Add (50, 10);
    Remove 2;
    Renew 0;
    Add (0, 99);
    Expire;
  ]

let fresh_with_script ?(policy = pairwise) ?(arity = 1) ?(seed = 5) script =
  let device, wal_file, snap_file = Device.in_memory () in
  let store, log = Store_log.fresh ~policy ~device ~arity ~seed () in
  apply_script store script;
  (device, wal_file, snap_file, store, log)

let recover_ok device =
  match Store_log.recover ~device () with
  | Ok r -> r
  | Error msg -> Alcotest.failf "recovery failed: %s" msg

(* ------------------------------------------------------------------ *)
(* Recovery equivalence on clean logs *)

let test_recover_equals_live () =
  let device, _, _, store, _ = fresh_with_script demo_script in
  let r = recover_ok device in
  Alcotest.(check bool) "clean log not repaired" false r.Store_log.r_repaired;
  Alcotest.(check bool) "recovered = live" true
    (Subscription_store.equal_state store r.Store_log.r_store)

let test_recover_group_policy_generator_alignment () =
  let policy = Subscription_store.Group_policy group_cfg in
  let device, _, _ = Device.in_memory () in
  let store, _ = Store_log.fresh ~policy ~device ~arity:2 ~seed:17 () in
  (* Overlapping boxes so classification exercises the engine (and
     consumes generator splits). *)
  let boxes =
    [
      [ (0, 30); (0, 30) ];
      [ (5, 20); (5, 20) ];
      [ (0, 9); (0, 9) ];
      [ (10, 40); (0, 40) ];
      [ (6, 8); (6, 8) ];
    ]
  in
  List.iteri
    (fun i b ->
      ignore
        (Subscription_store.add_with_expiry store (Subscription.of_bounds b)
           ~expires_at:(float_of_int i +. 50.0)))
    boxes;
  let r = recover_ok device in
  Alcotest.(check bool) "recovered = live" true
    (Subscription_store.equal_state store r.Store_log.r_store);
  Alcotest.(check int) "same split position"
    (Subscription_store.splits_consumed store)
    (Subscription_store.splits_consumed r.Store_log.r_store);
  (* Generator alignment: the next classification must agree between
     the live store and the recovered one. *)
  let next = Subscription.of_bounds [ (2, 9); (2, 9) ] in
  let id_a, p_a = Subscription_store.add_with_expiry store next ~expires_at:99.0 in
  let id_b, p_b =
    Subscription_store.add_with_expiry r.Store_log.r_store next ~expires_at:99.0
  in
  Alcotest.(check int) "same id" id_a id_b;
  Alcotest.(check bool) "same placement" true (p_a = p_b);
  Alcotest.(check bool) "still equal after the add" true
    (Subscription_store.equal_state store r.Store_log.r_store)

(* Satellite: renewing an id that a sweep already expired must be a
   silent no-op — live, in the journal, and after replay. *)
let test_renew_after_sweep_is_noop_replayed () =
  let device, wal_file, _ = Device.in_memory () in
  let store, _ = Store_log.fresh ~policy:pairwise ~device ~arity:1 ~seed:3 () in
  let dead, _ =
    Subscription_store.add_with_expiry store (sub 0 10) ~expires_at:10.0
  in
  let kept, _ =
    Subscription_store.add_with_expiry store (sub 50 60) ~expires_at:100.0
  in
  let expired, _ = Subscription_store.expire store ~now:20.0 in
  Alcotest.(check (list int)) "sweep reclaimed the short lease" [ dead ]
    expired;
  (* Dead renewal: silent no-op. Live renewal: journalled. *)
  Subscription_store.renew store dead ~expires_at:500.0;
  Subscription_store.renew store kept ~expires_at:200.0;
  let renew_records =
    List.filter
      (fun (e : Wal.entry) ->
        match e.Wal.e_record with
        | Codec.Op (Subscription_store.Op_renew _) -> true
        | _ -> false)
      (Wal.scan (Sim_file.contents wal_file)).Wal.records
  in
  Alcotest.(check int) "only the live renew was journalled" 1
    (List.length renew_records);
  let r = recover_ok device in
  Alcotest.(check bool) "replayed = live across renew/sweep/renew" true
    (Subscription_store.equal_state store r.Store_log.r_store);
  Alcotest.(check int) "dead id stayed dead" 1
    (Subscription_store.size r.Store_log.r_store);
  (* And a renew/sweep/renew tail replays identically too. *)
  Subscription_store.renew store kept ~expires_at:300.0;
  let _ = Subscription_store.expire store ~now:250.0 in
  Subscription_store.renew store kept ~expires_at:400.0;
  let r2 = recover_ok device in
  Alcotest.(check bool) "tail replays identically" true
    (Subscription_store.equal_state store r2.Store_log.r_store)

(* ------------------------------------------------------------------ *)
(* Bindings and epochs through recovery *)

let test_bindings_follow_store_lifecycle () =
  let device, _, _ = Device.in_memory () in
  let store, log = Store_log.fresh ~policy:pairwise ~device ~arity:1 ~seed:9 () in
  let id0, _ = Subscription_store.add_with_expiry store (sub 0 10) ~expires_at:50.0 in
  Store_log.log_binding log
    { Codec.b_rid = id0; b_key = 7; b_okind = 2; b_oarg = 1; b_epoch = 3 };
  let id1, _ = Subscription_store.add_with_expiry store (sub 40 60) ~expires_at:60.0 in
  Store_log.log_binding log
    { Codec.b_rid = id1; b_key = 9; b_okind = 0; b_oarg = 12; b_epoch = 1 };
  Store_log.log_epoch log ~key:9 ~epoch:4;
  ignore (Subscription_store.remove store id0);
  let r = recover_ok device in
  Alcotest.(check int) "removed id's binding dropped" 1
    (List.length r.Store_log.r_bindings);
  let b = List.hd r.Store_log.r_bindings in
  Alcotest.(check int) "surviving binding rid" id1 b.Codec.b_rid;
  Alcotest.(check (list (pair int int))) "epoch note applied" [ (9, 4) ]
    r.Store_log.r_epochs;
  (* Bindings survive a compaction snapshot. *)
  Store_log.compact r.Store_log.r_log r.Store_log.r_store
    ~bindings:r.Store_log.r_bindings;
  let r2 = recover_ok device in
  Alcotest.(check int) "binding survived the snapshot" 1
    (List.length r2.Store_log.r_bindings);
  Alcotest.(check int) "same rid" id1
    (List.hd r2.Store_log.r_bindings).Codec.b_rid;
  Alcotest.(check (list (pair int int))) "epoch survived" [ (9, 4) ]
    r2.Store_log.r_epochs

(* ------------------------------------------------------------------ *)
(* Compaction: normal path and both crash windows *)

let test_compact_then_recover () =
  let device, wal_file, snap_file, store, log = fresh_with_script demo_script in
  Store_log.compact log store ~bindings:[];
  Alcotest.(check int) "wal truncated" 0 (Sim_file.length wal_file);
  Alcotest.(check bool) "snapshot written" true (Sim_file.length snap_file > 0);
  let r = recover_ok device in
  Alcotest.(check bool) "snapshot replays to the live state" true
    (Subscription_store.equal_state store r.Store_log.r_store);
  (* The recovered store keeps journalling: more ops, recover again. *)
  apply_script r.Store_log.r_store [ Add (7, 7); Remove 0; Add (1, 2) ];
  let r2 = recover_ok device in
  Alcotest.(check bool) "snapshot + suffix replays" true
    (Subscription_store.equal_state r.Store_log.r_store r2.Store_log.r_store)

let test_compact_crash_before_wal_reset () =
  (* Crash window: the snapshot landed (atomically) but the WAL was
     never truncated. Its records all have lsn <= the snapshot's
     last_lsn and must be skipped, not double-applied. *)
  let device, wal_file, _, store, log = fresh_with_script demo_script in
  let old_wal = Sim_file.contents wal_file in
  Store_log.compact log store ~bindings:[];
  Sim_file.clear wal_file;
  Sim_file.append wal_file old_wal;
  let r = recover_ok device in
  Alcotest.(check bool) "stale wal records skipped" true
    (Subscription_store.equal_state store r.Store_log.r_store)

let test_compact_crash_torn_snapshot () =
  (* Crash window: the snapshot blob is damaged (a torn or bit-rotted
     write). It is treated as absent and the untouched WAL — which
     still holds genesis + every op — remains the source of truth. *)
  let device, wal_file, snap_file, store, log = fresh_with_script demo_script in
  let old_wal = Sim_file.contents wal_file in
  Store_log.compact log store ~bindings:[];
  Sim_file.clear wal_file;
  Sim_file.append wal_file old_wal;
  Sim_file.flip_bit snap_file ~byte:(Sim_file.length snap_file / 2) ~bit:3;
  let r = recover_ok device in
  Alcotest.(check bool) "wal wins over a damaged snapshot" true
    (Subscription_store.equal_state store r.Store_log.r_store)

let test_corrupt_snapshot_and_empty_wal_is_error () =
  let device, wal_file, snap_file, _, log =
    fresh_with_script [ Add (0, 5); Add (10, 20) ]
  in
  Store_log.compact log (recover_ok device).Store_log.r_store ~bindings:[];
  ignore wal_file;
  Sim_file.flip_bit snap_file ~byte:10 ~bit:0;
  (match Store_log.recover ~device () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "recovery from nothing should be an Error");
  let report = Fsck.run device in
  Alcotest.(check bool) "fsck agrees: unrecoverable" false
    report.Fsck.recoverable;
  Alcotest.(check bool) "fsck agrees: not clean" false report.Fsck.clean

(* ------------------------------------------------------------------ *)
(* Fsck verdicts *)

let test_fsck_clean_and_corrupt () =
  let device, wal_file, _, _, _ = fresh_with_script demo_script in
  let clean = Fsck.run device in
  Alcotest.(check bool) "clean" true clean.Fsck.clean;
  Alcotest.(check bool) "recoverable" true clean.Fsck.recoverable;
  Alcotest.(check string) "stop" "clean" clean.Fsck.wal_stop;
  Alcotest.(check bool) "every verdict ok" true
    (List.for_all (fun v -> v.Fsck.v_status = "ok") clean.Fsck.wal_records);
  Alcotest.(check bool) "genesis first" true
    (match clean.Fsck.wal_records with
    | v :: _ -> v.Fsck.v_kind = "genesis"
    | [] -> false);
  (* Damage a mid-log payload byte: bad-crc verdict, still recoverable,
     no longer clean. *)
  let glen =
    match clean.Fsck.wal_records with
    | _ :: second :: _ -> second.Fsck.v_offset
    | _ -> Alcotest.fail "expected at least two records"
  in
  Sim_file.flip_bit wal_file ~byte:(glen + 8) ~bit:0;
  let bad = Fsck.run device in
  Alcotest.(check bool) "not clean" false bad.Fsck.clean;
  Alcotest.(check bool) "still recoverable" true bad.Fsck.recoverable;
  Alcotest.(check string) "stop" "corrupt" bad.Fsck.wal_stop;
  Alcotest.(check int) "valid prefix ends at the damage" glen
    bad.Fsck.wal_valid;
  (match List.rev bad.Fsck.wal_records with
  | last :: _ -> Alcotest.(check string) "verdict" "bad-crc" last.Fsck.v_status
  | [] -> Alcotest.fail "no verdicts");
  let json = Fsck.to_json bad in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let rec go i = i + nl <= hl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun needle ->
      Alcotest.(check bool)
        (Printf.sprintf "json mentions %s" needle)
        true (contains needle))
    [ "\"wal_stop\":\"corrupt\""; "\"status\":\"bad-crc\""; "\"clean\":false" ]

(* ------------------------------------------------------------------ *)
(* The crash-point property *)

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map2 (fun lo w -> Add (lo, w)) (int_bound 40) (int_bound 25));
        (2, map (fun j -> Remove j) (int_bound 50));
        (2, map (fun j -> Renew j) (int_bound 50));
        (1, return Expire);
      ])

let pp_op = function
  | Add (lo, w) -> Printf.sprintf "Add(%d,%d)" lo w
  | Remove j -> Printf.sprintf "Remove %d" j
  | Renew j -> Printf.sprintf "Renew %d" j
  | Expire -> "Expire"

let scenario_arb =
  QCheck.make
    QCheck.Gen.(
      let* script = list_size (int_range 1 40) op_gen in
      let* cut = bool in
      let* a = int_bound 1_000_000 in
      let* b = int_bound 7 in
      return (script, cut, a, b))
    ~print:(fun (script, cut, a, b) ->
      Printf.sprintf "[%s] %s a=%d b=%d"
        (String.concat "; " (List.map pp_op script))
        (if cut then "cut" else "flip")
        a b)

let prop_crash_point =
  QCheck.Test.make ~count:120
    ~name:"recovery = longest valid prefix; total; fixpoint" scenario_arb
    (fun (script, cut, a, b) ->
      let device, wal_file, _ = Device.in_memory () in
      let store, log =
        Store_log.fresh ~policy:pairwise ~device ~arity:1 ~seed:5 ()
      in
      (* Boundaries: (wal length, ops applied) after genesis and after
         every op. Frame boundaries coincide with op boundaries because
         each op journals at most one record. *)
      let boundaries = ref [ (Store_log.wal_size log, 0) ] in
      apply_script store script ~on_op:(fun i ->
          boundaries := (Store_log.wal_size log, i + 1) :: !boundaries);
      let total = Sim_file.length wal_file in
      if cut then Sim_file.truncate wal_file (a mod (total + 1))
      else if total > 0 then
        Sim_file.flip_bit wal_file ~byte:(a mod total) ~bit:b;
      let genesis_len =
        List.fold_left (fun acc (l, _) -> min acc l) max_int !boundaries
      in
      match Store_log.recover ~device () with
      | Error _ ->
          (* Legal only when the genesis record itself was destroyed. *)
          (Wal.scan (Sim_file.contents wal_file)).Wal.valid_bytes < genesis_len
      | Ok r ->
          (* recover repaired the device in place: its wal is now
             exactly the longest valid prefix. *)
          let v = Sim_file.length wal_file in
          let on_boundary = List.exists (fun (l, _) -> l = v) !boundaries in
          let k =
            List.fold_left
              (fun acc (l, i) -> if l <= v then max acc i else acc)
              0 !boundaries
          in
          let oracle =
            Subscription_store.create ~policy:pairwise ~arity:1 ~seed:5 ()
          in
          apply_script oracle script ~limit:k;
          let fixpoint =
            match Store_log.recover ~device () with
            | Error _ -> false
            | Ok r2 ->
                (not r2.Store_log.r_repaired)
                && Subscription_store.equal_state r.Store_log.r_store
                     r2.Store_log.r_store
          in
          on_boundary
          && Subscription_store.equal_state oracle r.Store_log.r_store
          && fixpoint)

(* Same property through the torn-write crash model: cap the total
   bytes the "disk" accepts and run the whole script; the tail of the
   log simply never lands. *)
let prop_torn_write =
  QCheck.Test.make ~count:80 ~name:"torn-write crash recovers the landed prefix"
    scenario_arb
    (fun (script, _, a, _) ->
      let device, wal_file, _ = Device.in_memory () in
      let store, log =
        Store_log.fresh ~policy:pairwise ~device ~arity:1 ~seed:6 ()
      in
      let boundaries = ref [ (Store_log.wal_size log, 0) ] in
      apply_script store script ~on_op:(fun i ->
          boundaries := (Store_log.wal_size log, i + 1) :: !boundaries);
      let total = Sim_file.length wal_file in
      (* Re-run the same script against a capped device. *)
      let device2, wal2, _ = Device.in_memory () in
      let cap = a mod (total + 1) in
      let store2, _ =
        Store_log.fresh ~policy:pairwise ~device:device2 ~arity:1 ~seed:6 ()
      in
      Sim_file.set_write_limit wal2 (Some cap);
      apply_script store2 script;
      Sim_file.set_write_limit wal2 None;
      ignore store;
      match Store_log.recover ~device:device2 () with
      | Error _ -> (Wal.scan (Sim_file.contents wal2)).Wal.valid_bytes = 0
      | Ok r ->
          let v = Sim_file.length wal2 in
          let k =
            List.fold_left
              (fun acc (l, i) -> if l <= v then max acc i else acc)
              0 !boundaries
          in
          let oracle =
            Subscription_store.create ~policy:pairwise ~arity:1 ~seed:6 ()
          in
          apply_script oracle script ~limit:k;
          Subscription_store.equal_state oracle r.Store_log.r_store)

let suite =
  [
    Alcotest.test_case "codec roundtrips" `Quick test_codec_roundtrips;
    Alcotest.test_case "codec rejects garbage" `Quick test_codec_rejects_garbage;
    Alcotest.test_case "frame roundtrip and bounds" `Quick
      test_frame_roundtrip_and_bounds;
    Alcotest.test_case "sim file fault semantics" `Quick test_sim_file_semantics;
    Alcotest.test_case "wal scan: clean" `Quick test_wal_scan_clean;
    Alcotest.test_case "wal scan: truncated tail" `Quick test_wal_scan_truncated;
    Alcotest.test_case "wal scan: bad crc" `Quick test_wal_scan_bad_crc;
    Alcotest.test_case "wal scan: lsn regression" `Quick
      test_wal_scan_lsn_regression;
    Alcotest.test_case "recover equals live" `Quick test_recover_equals_live;
    Alcotest.test_case "group policy generator alignment" `Quick
      test_recover_group_policy_generator_alignment;
    Alcotest.test_case "renew after sweep replays as a no-op" `Quick
      test_renew_after_sweep_is_noop_replayed;
    Alcotest.test_case "bindings follow the store lifecycle" `Quick
      test_bindings_follow_store_lifecycle;
    Alcotest.test_case "compact then recover" `Quick test_compact_then_recover;
    Alcotest.test_case "compaction crash: wal not yet reset" `Quick
      test_compact_crash_before_wal_reset;
    Alcotest.test_case "compaction crash: torn snapshot" `Quick
      test_compact_crash_torn_snapshot;
    Alcotest.test_case "nothing recoverable is an Error" `Quick
      test_corrupt_snapshot_and_empty_wal_is_error;
    Alcotest.test_case "fsck verdicts" `Quick test_fsck_clean_and_corrupt;
    QCheck_alcotest.to_alcotest prop_crash_point;
    QCheck_alcotest.to_alcotest prop_torn_write;
  ]

open Probsub_core

let sub = Subscription.of_bounds
let rng () = Prng.of_int 1234

let test_empty_set () =
  let r = Engine.check ~rng:(rng ()) (sub [ (0, 9) ]) [||] in
  (match r.Engine.verdict with
  | Engine.Not_covered Engine.Empty_set -> ()
  | _ -> Alcotest.fail "empty set is a definite NO");
  Alcotest.(check int) "k_initial" 0 r.Engine.k_initial

let test_pairwise_fast_path () =
  let s = sub [ (2, 5); (2, 5) ] in
  let subs = [| sub [ (100, 200); (0, 9) ]; sub [ (0, 9); (0, 9) ] |] in
  let r = Engine.check ~rng:(rng ()) s subs in
  (match r.Engine.verdict with
  | Engine.Covered_pairwise 1 -> ()
  | Engine.Covered_pairwise i -> Alcotest.failf "wrong coverer %d" i
  | _ -> Alcotest.fail "pairwise cover must be detected deterministically");
  Alcotest.(check int) "no RSPC trials" 0 r.Engine.iterations

let test_polyhedron_fast_path () =
  (* Single candidate covering half of s: Corollary 3 fires. *)
  let s = sub [ (0, 9) ] in
  let r = Engine.check ~rng:(rng ()) s [| sub [ (0, 4) ] |] in
  match r.Engine.verdict with
  | Engine.Not_covered (Engine.Polyhedron w) ->
      Alcotest.(check bool) "witness region escapes" true
        (not (Subscription.intersects w.Witness.region (sub [ (0, 4) ])))
  | _ -> Alcotest.fail "Corollary 3 must answer deterministically"

let test_mcs_empty_definite_no () =
  (* Scenario 2.a: nothing intersects s -> MCS empties the candidate
     set -> definite NO with zero RSPC iterations. *)
  let s = sub [ (0, 9); (0, 9) ] in
  let subs = [| sub [ (50, 59); (50, 59) ]; sub [ (70, 79); (0, 9) ] |] in
  let config = Engine.config ~use_fast_decisions:false () in
  let r = Engine.check ~config ~rng:(rng ()) s subs in
  (match r.Engine.verdict with
  | Engine.Not_covered Engine.Empty_set -> ()
  | _ -> Alcotest.fail "MCS must empty the set");
  Alcotest.(check int) "k_reduced = 0" 0 r.Engine.k_reduced;
  Alcotest.(check int) "no trials" 0 r.Engine.iterations

let test_group_cover_probabilistic () =
  let s = sub [ (830, 870); (1003, 1006) ] in
  let subs =
    [| sub [ (820, 850); (1001, 1007) ]; sub [ (840, 880); (1002, 1009) ] |]
  in
  let r = Engine.check ~rng:(rng ()) s subs in
  (match r.Engine.verdict with
  | Engine.Covered_probably -> ()
  | _ -> Alcotest.fail "Table 3 example is group-covered");
  Alcotest.(check bool) "d was computed" true (r.Engine.d_used > 0);
  Alcotest.(check bool) "iterations = d (no witness)" true
    (r.Engine.iterations = r.Engine.d_used);
  match r.Engine.achieved_delta with
  | Some a -> Alcotest.(check bool) "achieved delta <= configured" true (a <= 1e-6 *. 1.001)
  | None -> Alcotest.fail "achieved delta must be reported"

let test_definite_no_sound () =
  (* Random non-covers: when the engine says NO it must agree with the
     exact oracle. *)
  let rng_gen = Prng.of_int 55 in
  for _ = 1 to 40 do
    let s =
      Subscription.of_list
        (List.init 3 (fun _ ->
             let lo = Prng.int rng_gen 20 in
             Interval.make ~lo ~hi:(lo + 5 + Prng.int rng_gen 20)))
    in
    let subs =
      Array.init 6 (fun _ ->
          Subscription.of_list
            (List.init 3 (fun _ ->
                 let lo = Prng.int rng_gen 30 in
                 Interval.make ~lo ~hi:(lo + 5 + Prng.int rng_gen 25))))
    in
    let r = Engine.check ~rng:(rng ()) s subs in
    match r.Engine.verdict with
    | Engine.Not_covered _ ->
        Alcotest.(check bool) "NO verdicts are sound" false
          (Exact.covered s subs)
    | Engine.Covered_pairwise i ->
        Alcotest.(check bool) "pairwise verdicts are sound" true
          (Subscription.covers_sub subs.(i) s)
    | Engine.Covered_probably ->
        (* With delta = 1e-6 this is virtually always right; don't
           assert to avoid a flaky test, the Fig. 12 bench quantifies it. *)
        ()
  done

let test_ablation_no_mcs () =
  (* Without MCS the verdict on a clear-cut case is unchanged, but the
     candidate set stays full. *)
  let s = sub [ (0, 99); (0, 99) ] in
  let subs =
    [|
      sub [ (0, 59); (0, 99) ];
      sub [ (50, 99); (0, 99) ];
      sub [ (500, 600); (500, 600) ];
    |]
  in
  (* Pruning is toggled off too: it would drop the non-intersecting
     third subscription on its own (see test_flat for that stage). *)
  let config =
    Engine.config ~use_mcs:false ~use_fast_decisions:false ~use_pruning:false
      ()
  in
  let r = Engine.check ~config ~rng:(rng ()) s subs in
  Alcotest.(check int) "set not reduced" 3 r.Engine.k_reduced;
  Alcotest.(check bool) "still covered" true (Engine.is_covered r.Engine.verdict);
  let config' = Engine.config ~use_fast_decisions:false () in
  let r' = Engine.check ~config:config' ~rng:(rng ()) s subs in
  Alcotest.(check bool) "MCS shrinks the set" true (r'.Engine.k_reduced < 3)

let test_max_iterations_cap () =
  (* Covered case with a tiny rho estimate: the cap must bound the
     work and be reflected in achieved_delta. *)
  let s = sub [ (0, 999); (0, 999) ] in
  let subs = [| sub [ (0, 500); (0, 999) ]; sub [ (500, 999); (0, 999) ] |] in
  let config = Engine.config ~delta:1e-10 ~max_iterations:50 () in
  let r = Engine.check ~config ~rng:(rng ()) s subs in
  Alcotest.(check bool) "d capped" true (r.Engine.d_used <= 50);
  Alcotest.(check bool) "iterations bounded" true (r.Engine.iterations <= 50)

let test_theoretical_d () =
  let s = sub [ (0, 999) ] in
  let subs = [| sub [ (0, 989) ] |] in
  (* rho = 0.01 -> d = ln(1e-6)/ln(0.99) ~ 1375 -> log10 ~ 3.14 *)
  let l = Engine.theoretical_log10_d ~use_mcs:false ~delta:1e-6 s subs in
  Alcotest.(check (float 0.01)) "log10 d" 3.138 l;
  Alcotest.(check bool) "empty set: -inf" true
    (Engine.theoretical_log10_d ~delta:1e-6 s [||] = neg_infinity)

let test_config_validation () =
  Alcotest.check_raises "delta 0 rejected"
    (Invalid_argument "Engine.config: delta must lie in (0, 1)") (fun () ->
      ignore (Engine.config ~delta:0.0 ()));
  Alcotest.check_raises "delta 1 rejected"
    (Invalid_argument "Engine.config: delta must lie in (0, 1)") (fun () ->
      ignore (Engine.config ~delta:1.0 ()));
  Alcotest.check_raises "max_iterations 0 rejected"
    (Invalid_argument "Engine.config: max_iterations must be >= 1") (fun () ->
      ignore (Engine.config ~max_iterations:0 ()))

let test_determinism () =
  let s = sub [ (830, 870); (1003, 1006) ] in
  let subs =
    [| sub [ (820, 850); (1001, 1007) ]; sub [ (840, 880); (1002, 1009) ] |]
  in
  let r1 = Engine.check ~rng:(Prng.of_int 7) s subs in
  let r2 = Engine.check ~rng:(Prng.of_int 7) s subs in
  Alcotest.(check int) "same seed, same iterations" r1.Engine.iterations
    r2.Engine.iterations;
  Alcotest.(check bool) "same verdict" true
    (Engine.is_covered r1.Engine.verdict = Engine.is_covered r2.Engine.verdict)

let test_check_publication () =
  (* Box publications: covered iff the whole box is inside the union. *)
  let subs = [| sub [ (0, 49); (0, 99) ]; sub [ (50, 99); (0, 99) ] |] in
  let inside = Publication.box (sub [ (20, 70); (10, 90) ]) in
  let sticking_out = Publication.box (sub [ (90, 120); (10, 90) ]) in
  let r1 = Engine.check_publication ~rng:(rng ()) inside subs in
  Alcotest.(check bool) "box inside the union" true
    (Engine.is_covered r1.Engine.verdict);
  let r2 = Engine.check_publication ~rng:(rng ()) sticking_out subs in
  Alcotest.(check bool) "box sticking out" false
    (Engine.is_covered r2.Engine.verdict);
  (* Point publications degenerate to matching. *)
  let p = Publication.of_list [ 10; 10 ] in
  let r3 = Engine.check_publication ~rng:(rng ()) p subs in
  Alcotest.(check bool) "point inside" true (Engine.is_covered r3.Engine.verdict)

(* ------------------------------------------------------------------ *)
(* Pool transparency (PR 4): a domain pool hung on the engine is a
   pure performance knob — the whole report (verdict, witness,
   iterations, diagnostics) must equal the sequential engine's,
   whatever the pool size. *)

let pool_cfg = Engine.config ~delta:1e-6 ~max_iterations:4096 ()

(* Instances whose d_used reaches the cap, so the pooled RSPC path
   (rather than the small-budget sequential fallback) actually runs: a
   staircase of 400 overlapping rows chained on attribute 0, with two
   middle rows clipped on attribute 1. The clipped rows' exclusive
   strip leaves a small two-dimensional hole no fast decision can see,
   so the "noncover" query must find a point witness mid-stream, while
   the "covered" query (above the clip) exhausts its whole budget. *)
let staircase_rows =
  Array.init 400 (fun i ->
      let lo1 = if i = 200 || i = 201 then 2000 else 0 in
      sub [ (i * 22, (i * 22) + 44); (lo1, 9999) ])

let pooled_cases =
  [
    ("noncover", sub [ (100, 8800); (0, 9999) ], staircase_rows);
    ("covered", sub [ (100, 8800); (2500, 9999) ], staircase_rows);
  ]

let test_pooled_check_identical () =
  List.iter
    (fun workers ->
      Domain_pool.with_pool ~workers (fun pool ->
          List.iter
            (fun (name, s, subs) ->
              for seed = 1 to 2 do
                let a =
                  Engine.check ~config:pool_cfg ~pool ~rng:(Prng.of_int seed) s
                    subs
                in
                let b =
                  Engine.check ~config:pool_cfg ~rng:(Prng.of_int seed) s subs
                in
                Alcotest.(check bool)
                  (Printf.sprintf "%s workers=%d seed=%d: parallel budget" name
                     workers seed)
                  true
                  (a.Engine.d_used >= Rspc_parallel.min_parallel_budget);
                Alcotest.(check bool)
                  (Printf.sprintf "%s workers=%d seed=%d: full report equal"
                     name workers seed)
                  true (a = b)
              done)
            pooled_cases))
    [ 0; 1; 3; 7 ]

let test_check_batch_matches_loop () =
  let subs = [| sub [ (0, 5000) ]; sub [ (4990, 9989) ] |] in
  let items =
    Array.init 10 (fun i ->
        if i mod 3 = 0 then sub [ (9990 + (i mod 9), 9999) ] (* no candidate *)
        else if i mod 3 = 1 then sub [ (i * 11, 4000 + (i * 13)) ] (* covered *)
        else sub [ (0, 9999) ] (* witness *))
  in
  (* The contract: item i draws the i-th split of the batch rng, so
     the batch equals the sequential split-per-item loop. *)
  let reference =
    let master = Prng.of_int 100 in
    let acc = ref [] in
    for i = 0 to 9 do
      acc :=
        Engine.check ~config:pool_cfg ~rng:(Prng.split master) items.(i) subs
        :: !acc
    done;
    Array.of_list (List.rev !acc)
  in
  Domain_pool.with_pool ~workers:3 (fun pool ->
      let batched =
        Engine.check_batch ~config:pool_cfg ~pool ~rng:(Prng.of_int 100) items
          subs
      in
      Alcotest.(check bool) "pooled batch = sequential loop" true
        (batched = reference));
  let unpooled =
    Engine.check_batch ~config:pool_cfg ~rng:(Prng.of_int 100) items subs
  in
  Alcotest.(check bool) "pool-less batch = sequential loop" true
    (unpooled = reference)

let test_pruning_off_reports_full_k () =
  (* With pruning off the identity mapping is symbolic: k_pruned must
     still report the full candidate count, and the verdict must agree
     with the pruned run (pruning is sound). *)
  let s = sub [ (0, 9); (0, 9) ] in
  let subs =
    [|
      sub [ (0, 5); (0, 9) ];
      sub [ (100, 200); (100, 200) ];
      sub [ (4, 9); (0, 9) ];
    |]
  in
  let no_fast = Engine.config ~use_fast_decisions:false () in
  let no_prune =
    Engine.config ~use_fast_decisions:false ~use_pruning:false ()
  in
  let a = Engine.check ~config:no_prune ~rng:(Prng.of_int 9) s subs in
  let b = Engine.check ~config:no_fast ~rng:(Prng.of_int 9) s subs in
  Alcotest.(check int) "k_pruned = k_initial without pruning" 3
    a.Engine.k_pruned;
  Alcotest.(check int) "pruning drops the disjoint row" 2 b.Engine.k_pruned;
  Alcotest.(check bool) "same coverage either way" true
    (Engine.is_covered a.Engine.verdict = Engine.is_covered b.Engine.verdict)

let suite =
  [
    Alcotest.test_case "empty set" `Quick test_empty_set;
    Alcotest.test_case "pairwise fast path" `Quick test_pairwise_fast_path;
    Alcotest.test_case "polyhedron fast path" `Quick test_polyhedron_fast_path;
    Alcotest.test_case "MCS-empty definite NO" `Quick test_mcs_empty_definite_no;
    Alcotest.test_case "group cover (Table 3)" `Quick
      test_group_cover_probabilistic;
    Alcotest.test_case "definite answers sound" `Slow test_definite_no_sound;
    Alcotest.test_case "ablation: no MCS" `Quick test_ablation_no_mcs;
    Alcotest.test_case "iteration cap" `Quick test_max_iterations_cap;
    Alcotest.test_case "theoretical d" `Quick test_theoretical_d;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "box publications" `Quick test_check_publication;
    Alcotest.test_case "pooled check identical" `Slow
      test_pooled_check_identical;
    Alcotest.test_case "check_batch = loop" `Quick
      test_check_batch_matches_loop;
    Alcotest.test_case "pruning off reports full k" `Quick
      test_pruning_off_reports_full_k;
  ]

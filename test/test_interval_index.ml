open Probsub_core

let iv lo hi = Interval.make ~lo ~hi

let test_empty () =
  Alcotest.(check (list int)) "nothing stabs empty" []
    (Interval_index.stab Interval_index.empty 5);
  Alcotest.(check int) "size" 0 (Interval_index.size Interval_index.empty)

let test_basic () =
  let t = Interval_index.build [ (1, iv 0 10); (2, iv 5 15); (3, iv 20 30) ] in
  Alcotest.(check int) "size" 3 (Interval_index.size t);
  Alcotest.(check (list int)) "stab 7" [ 1; 2 ]
    (List.sort Int.compare (Interval_index.stab t 7));
  Alcotest.(check (list int)) "stab 0" [ 1 ] (Interval_index.stab t 0);
  Alcotest.(check (list int)) "stab 25" [ 3 ] (Interval_index.stab t 25);
  Alcotest.(check (list int)) "stab 17" [] (Interval_index.stab t 17);
  Alcotest.(check int) "count 7" 2 (Interval_index.count_stab t 7)

let test_boundaries () =
  let t = Interval_index.build [ (1, iv 5 10) ] in
  Alcotest.(check (list int)) "lo boundary" [ 1 ] (Interval_index.stab t 5);
  Alcotest.(check (list int)) "hi boundary" [ 1 ] (Interval_index.stab t 10);
  Alcotest.(check (list int)) "below" [] (Interval_index.stab t 4);
  Alcotest.(check (list int)) "above" [] (Interval_index.stab t 11)

let test_duplicates_and_points () =
  let t =
    Interval_index.build [ (1, iv 3 3); (1, iv 5 5); (2, iv 0 9) ]
  in
  Alcotest.(check (list int)) "point interval" [ 1; 2 ]
    (List.sort Int.compare (Interval_index.stab t 3));
  Alcotest.(check (list int)) "same id twice, distinct ranges" [ 1; 2 ]
    (List.sort Int.compare (Interval_index.stab t 5))

let test_against_naive () =
  let rng = Prng.of_int 17 in
  for _ = 1 to 30 do
    let n = 1 + Prng.int rng 200 in
    let entries =
      List.init n (fun i ->
          let lo = Prng.int rng 1000 in
          (i, iv lo (lo + Prng.int rng 200)))
    in
    let t = Interval_index.build entries in
    for _ = 1 to 50 do
      let v = Prng.int rng 1300 in
      let naive =
        List.filter_map
          (fun (id, r) -> if Interval.mem v r then Some id else None)
          entries
        |> List.sort Int.compare
      in
      Alcotest.(check (list int)) "matches naive scan" naive
        (List.sort Int.compare (Interval_index.stab t v))
    done
  done

let test_overlapping_against_naive () =
  (* [overlapping] generalises [stab] to a query interval; the shard
     store's fan-out depends on it being exhaustive. *)
  let rng = Prng.of_int 29 in
  for _ = 1 to 30 do
    let n = 1 + Prng.int rng 150 in
    let entries =
      List.init n (fun i ->
          let lo = Prng.int rng 1000 in
          (i, iv lo (lo + Prng.int rng 200)))
    in
    let t = Interval_index.build entries in
    for _ = 1 to 50 do
      let qlo = Prng.int rng 1300 in
      let q = iv qlo (qlo + Prng.int rng 300) in
      let naive =
        List.filter_map
          (fun (id, r) -> if Interval.intersects q r then Some id else None)
          entries
        |> List.sort Int.compare
      in
      Alcotest.(check (list int)) "matches naive overlap scan" naive
        (List.sort Int.compare (Interval_index.overlapping t q))
    done
  done

let test_nested_intervals () =
  (* Deep nesting stresses the crossing lists. *)
  let entries = List.init 100 (fun i -> (i, iv i (199 - i))) in
  let t = Interval_index.build entries in
  Alcotest.(check int) "all nested contain the middle" 100
    (Interval_index.count_stab t 100);
  Alcotest.(check int) "outermost only" 1 (Interval_index.count_stab t 0);
  Alcotest.(check int) "half at 50" 51 (Interval_index.count_stab t 50)

(* ------------------------------------------------------------------ *)
(* Dyn: the mutable wrapper the counting matcher builds per attribute. *)

(* A reference liveness table: key -> current stamp. An entry is live
   iff its stamp is still the key's current one, which is exactly the
   counting matcher's slot-generation discipline. *)
let mk_live () =
  let tbl = Hashtbl.create 16 in
  let live ~key ~stamp =
    match Hashtbl.find_opt tbl key with
    | Some s -> s = stamp
    | None -> false
  in
  (tbl, live)

let collect_stab d v =
  let acc = ref [] in
  Interval_index.Dyn.iter_stab d v ~f:(fun k -> acc := k :: !acc);
  List.sort Int.compare !acc

let collect_containing d q =
  let acc = ref [] in
  Interval_index.Dyn.iter_containing d q ~f:(fun k -> acc := k :: !acc);
  List.sort Int.compare !acc

let test_dyn_basic () =
  let tbl, live = mk_live () in
  let d = Interval_index.Dyn.create ~live () in
  Hashtbl.replace tbl 1 10;
  Interval_index.Dyn.add d ~key:1 ~stamp:10 (iv 0 10);
  Hashtbl.replace tbl 2 11;
  Interval_index.Dyn.add d ~key:2 ~stamp:11 (iv 5 15);
  Alcotest.(check int) "size" 2 (Interval_index.Dyn.size d);
  Alcotest.(check (list int)) "stab 7" [ 1; 2 ] (collect_stab d 7);
  Alcotest.(check (list int)) "stab 0" [ 1 ] (collect_stab d 0);
  Alcotest.(check (list int)) "containing [6,9]" [ 1; 2 ]
    (collect_containing d (iv 6 9));
  Alcotest.(check (list int)) "containing [3,12]" []
    (collect_containing d (iv 3 12));
  (* Kill key 1: flip the oracle, note the death. The entry becomes
     invisible immediately, before any compaction. *)
  Hashtbl.remove tbl 1;
  Interval_index.Dyn.note_dead d;
  Alcotest.(check int) "size after death" 1 (Interval_index.Dyn.size d);
  Alcotest.(check (list int)) "stab 7 after death" [ 2 ] (collect_stab d 7);
  Interval_index.Dyn.compact d;
  Alcotest.(check int) "size after compact" 1 (Interval_index.Dyn.size d);
  Alcotest.(check (list int)) "stab 7 after compact" [ 2 ] (collect_stab d 7)

let test_dyn_stale_stamp () =
  (* Slot reuse: the same key re-added with a newer stamp while its
     dead incarnation still sits in the structure must stab exactly
     once, whichever arrays the two incarnations live in. *)
  let tbl, live = mk_live () in
  let d = Interval_index.Dyn.create ~live () in
  Hashtbl.replace tbl 7 1;
  Interval_index.Dyn.add d ~key:7 ~stamp:1 (iv 0 100);
  Hashtbl.remove tbl 7;
  Interval_index.Dyn.note_dead d;
  Hashtbl.replace tbl 7 2;
  Interval_index.Dyn.add d ~key:7 ~stamp:2 (iv 50 60);
  Alcotest.(check (list int)) "only the new incarnation" [ 7 ]
    (collect_stab d 55);
  Alcotest.(check (list int)) "old range no longer stabs" []
    (collect_stab d 10);
  Interval_index.Dyn.compact d;
  Alcotest.(check (list int)) "same after compact" [ 7 ] (collect_stab d 55);
  Alcotest.(check (list int)) "old range gone after compact" []
    (collect_stab d 10)

let test_dyn_vs_naive () =
  (* Random add/kill streams large enough to cross the amortised
     compaction thresholds repeatedly; every query must agree with a
     scan of the reference table. *)
  let rng = Prng.of_int 43 in
  let tbl, live = mk_live () in
  let d = Interval_index.Dyn.create ~live () in
  let ranges = Hashtbl.create 16 in
  let next_stamp = ref 1 in
  let next_key = ref 0 in
  for _ = 1 to 2000 do
    (match Prng.int rng 3 with
    | 0 | 1 ->
        let key =
          (* Mostly fresh keys, sometimes reuse of a dead one. *)
          if Prng.int rng 4 = 0 && !next_key > 0 then Prng.int rng !next_key
          else begin
            incr next_key;
            !next_key - 1
          end
        in
        if Hashtbl.mem tbl key then begin
          (* Key currently live: kill it first (slot churn). *)
          Hashtbl.remove tbl key;
          Hashtbl.remove ranges key;
          Interval_index.Dyn.note_dead d
        end;
        let stamp = !next_stamp in
        incr next_stamp;
        let lo = Prng.int rng 1000 in
        let r = iv lo (lo + Prng.int rng 120) in
        Hashtbl.replace tbl key stamp;
        Hashtbl.replace ranges key r;
        Interval_index.Dyn.add d ~key ~stamp r
    | _ ->
        let lives = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] in
        if lives <> [] then begin
          let k = List.nth lives (Prng.int rng (List.length lives)) in
          Hashtbl.remove tbl k;
          Hashtbl.remove ranges k;
          Interval_index.Dyn.note_dead d
        end);
    Alcotest.(check int) "size tracks reference" (Hashtbl.length tbl)
      (Interval_index.Dyn.size d);
    if Prng.int rng 10 = 0 then begin
      let v = Prng.int rng 1200 in
      let naive_stab =
        Hashtbl.fold
          (fun k r acc -> if Interval.mem v r then k :: acc else acc)
          ranges []
        |> List.sort Int.compare
      in
      Alcotest.(check (list int)) "stab vs naive" naive_stab (collect_stab d v);
      let qlo = Prng.int rng 1200 in
      let q = iv qlo (qlo + Prng.int rng 60) in
      let naive_cont =
        Hashtbl.fold
          (fun k r acc -> if Interval.subset q r then k :: acc else acc)
          ranges []
        |> List.sort Int.compare
      in
      Alcotest.(check (list int)) "containing vs naive" naive_cont
        (collect_containing d q)
    end
  done

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "basic stabbing" `Quick test_basic;
    Alcotest.test_case "boundaries inclusive" `Quick test_boundaries;
    Alcotest.test_case "duplicates and points" `Quick test_duplicates_and_points;
    Alcotest.test_case "randomized vs naive" `Quick test_against_naive;
    Alcotest.test_case "overlapping vs naive" `Quick
      test_overlapping_against_naive;
    Alcotest.test_case "nested intervals" `Quick test_nested_intervals;
    Alcotest.test_case "dyn basic" `Quick test_dyn_basic;
    Alcotest.test_case "dyn stale stamp on slot reuse" `Quick
      test_dyn_stale_stamp;
    Alcotest.test_case "dyn randomized vs naive" `Quick test_dyn_vs_naive;
  ]

open Probsub_core

let iv lo hi = Interval.make ~lo ~hi

let test_empty () =
  Alcotest.(check (list int)) "nothing stabs empty" []
    (Interval_index.stab Interval_index.empty 5);
  Alcotest.(check int) "size" 0 (Interval_index.size Interval_index.empty)

let test_basic () =
  let t = Interval_index.build [ (1, iv 0 10); (2, iv 5 15); (3, iv 20 30) ] in
  Alcotest.(check int) "size" 3 (Interval_index.size t);
  Alcotest.(check (list int)) "stab 7" [ 1; 2 ]
    (List.sort Int.compare (Interval_index.stab t 7));
  Alcotest.(check (list int)) "stab 0" [ 1 ] (Interval_index.stab t 0);
  Alcotest.(check (list int)) "stab 25" [ 3 ] (Interval_index.stab t 25);
  Alcotest.(check (list int)) "stab 17" [] (Interval_index.stab t 17);
  Alcotest.(check int) "count 7" 2 (Interval_index.count_stab t 7)

let test_boundaries () =
  let t = Interval_index.build [ (1, iv 5 10) ] in
  Alcotest.(check (list int)) "lo boundary" [ 1 ] (Interval_index.stab t 5);
  Alcotest.(check (list int)) "hi boundary" [ 1 ] (Interval_index.stab t 10);
  Alcotest.(check (list int)) "below" [] (Interval_index.stab t 4);
  Alcotest.(check (list int)) "above" [] (Interval_index.stab t 11)

let test_duplicates_and_points () =
  let t =
    Interval_index.build [ (1, iv 3 3); (1, iv 5 5); (2, iv 0 9) ]
  in
  Alcotest.(check (list int)) "point interval" [ 1; 2 ]
    (List.sort Int.compare (Interval_index.stab t 3));
  Alcotest.(check (list int)) "same id twice, distinct ranges" [ 1; 2 ]
    (List.sort Int.compare (Interval_index.stab t 5))

let test_against_naive () =
  let rng = Prng.of_int 17 in
  for _ = 1 to 30 do
    let n = 1 + Prng.int rng 200 in
    let entries =
      List.init n (fun i ->
          let lo = Prng.int rng 1000 in
          (i, iv lo (lo + Prng.int rng 200)))
    in
    let t = Interval_index.build entries in
    for _ = 1 to 50 do
      let v = Prng.int rng 1300 in
      let naive =
        List.filter_map
          (fun (id, r) -> if Interval.mem v r then Some id else None)
          entries
        |> List.sort Int.compare
      in
      Alcotest.(check (list int)) "matches naive scan" naive
        (List.sort Int.compare (Interval_index.stab t v))
    done
  done

let test_overlapping_against_naive () =
  (* [overlapping] generalises [stab] to a query interval; the shard
     store's fan-out depends on it being exhaustive. *)
  let rng = Prng.of_int 29 in
  for _ = 1 to 30 do
    let n = 1 + Prng.int rng 150 in
    let entries =
      List.init n (fun i ->
          let lo = Prng.int rng 1000 in
          (i, iv lo (lo + Prng.int rng 200)))
    in
    let t = Interval_index.build entries in
    for _ = 1 to 50 do
      let qlo = Prng.int rng 1300 in
      let q = iv qlo (qlo + Prng.int rng 300) in
      let naive =
        List.filter_map
          (fun (id, r) -> if Interval.intersects q r then Some id else None)
          entries
        |> List.sort Int.compare
      in
      Alcotest.(check (list int)) "matches naive overlap scan" naive
        (List.sort Int.compare (Interval_index.overlapping t q))
    done
  done

let test_nested_intervals () =
  (* Deep nesting stresses the crossing lists. *)
  let entries = List.init 100 (fun i -> (i, iv i (199 - i))) in
  let t = Interval_index.build entries in
  Alcotest.(check int) "all nested contain the middle" 100
    (Interval_index.count_stab t 100);
  Alcotest.(check int) "outermost only" 1 (Interval_index.count_stab t 0);
  Alcotest.(check int) "half at 50" 51 (Interval_index.count_stab t 50)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "basic stabbing" `Quick test_basic;
    Alcotest.test_case "boundaries inclusive" `Quick test_boundaries;
    Alcotest.test_case "duplicates and points" `Quick test_duplicates_and_points;
    Alcotest.test_case "randomized vs naive" `Quick test_against_naive;
    Alcotest.test_case "overlapping vs naive" `Quick
      test_overlapping_against_naive;
    Alcotest.test_case "nested intervals" `Quick test_nested_intervals;
  ]

open Probsub_core

let sub = Subscription.of_bounds

let make ?(policy = Subscription_store.Group_policy Engine.default_config) () =
  Subscription_store.create ~policy ~arity:2 ~seed:77 ()

let test_no_coverage_policy () =
  let t = make ~policy:Subscription_store.No_coverage () in
  let _, p1 = Subscription_store.add t (sub [ (0, 9); (0, 9) ]) in
  let _, p2 = Subscription_store.add t (sub [ (2, 3); (2, 3) ]) in
  (match (p1, p2) with
  | Subscription_store.Active, Subscription_store.Active -> ()
  | _ -> Alcotest.fail "flooding stores everything as active");
  Alcotest.(check int) "two active" 2 (Subscription_store.active_count t);
  Alcotest.(check int) "none covered" 0 (Subscription_store.covered_count t)

let test_pairwise_policy () =
  let t = make ~policy:Subscription_store.Pairwise_policy () in
  let id_big, _ = Subscription_store.add t (sub [ (0, 9); (0, 9) ]) in
  let _, p = Subscription_store.add t (sub [ (2, 3); (2, 3) ]) in
  (match p with
  | Subscription_store.Covered [ coverer ] ->
      Alcotest.(check int) "covered by the broad one" id_big coverer
  | _ -> Alcotest.fail "pairwise cover expected");
  (* Group-covered but not pairwise-covered subscriptions stay active
     under the pairwise policy. *)
  let _, _ = Subscription_store.add t (sub [ (10, 19); (0, 9) ]) in
  let _, p' = Subscription_store.add t (sub [ (5, 15); (2, 8) ]) in
  match p' with
  | Subscription_store.Active -> ()
  | Subscription_store.Covered _ ->
      Alcotest.fail "pairwise policy cannot detect group coverage"

let test_group_policy () =
  let t = make () in
  let ida, _ = Subscription_store.add t (sub [ (0, 9); (0, 9) ]) in
  let idb, _ = Subscription_store.add t (sub [ (10, 19); (0, 9) ]) in
  let _, p = Subscription_store.add t (sub [ (5, 15); (2, 8) ]) in
  match p with
  | Subscription_store.Covered coverers ->
      Alcotest.(check bool) "coverers recorded from the active set" true
        (List.for_all (fun id -> id = ida || id = idb) coverers
        && coverers <> [])
  | Subscription_store.Active -> Alcotest.fail "group cover expected"

let test_remove_active_promotes () =
  let t = make () in
  let id_cover, _ = Subscription_store.add t (sub [ (0, 9); (0, 9) ]) in
  let id_small, p = Subscription_store.add t (sub [ (2, 3); (2, 3) ]) in
  (match p with
  | Subscription_store.Covered _ -> ()
  | Subscription_store.Active -> Alcotest.fail "small one lands covered");
  let promoted = Subscription_store.remove t id_cover in
  Alcotest.(check (list int)) "small one promoted" [ id_small ] promoted;
  Alcotest.(check bool) "now active" true
    (Subscription_store.is_active t id_small)

let test_remove_keeps_cover_when_possible () =
  (* Two coverers; removing one leaves the other covering the small
     subscription, so nothing is promoted. *)
  let t = make () in
  let id1, _ = Subscription_store.add t (sub [ (0, 9); (0, 9) ]) in
  let _id2, _ = Subscription_store.add t (sub [ (0, 20); (0, 20) ]) in
  (* id2 arrives second: it is NOT covered by id1? It is broader, so it
     stays active; the small one below is covered by both. *)
  let id_small, _ = Subscription_store.add t (sub [ (2, 3); (2, 3) ]) in
  let promoted = Subscription_store.remove t id1 in
  Alcotest.(check (list int)) "still covered by the other" [] promoted;
  Alcotest.(check bool) "small stays covered" false
    (Subscription_store.is_active t id_small)

let test_remove_covered_noop () =
  let t = make () in
  let _, _ = Subscription_store.add t (sub [ (0, 9); (0, 9) ]) in
  let id_small, _ = Subscription_store.add t (sub [ (2, 3); (2, 3) ]) in
  let promoted = Subscription_store.remove t id_small in
  Alcotest.(check (list int)) "no promotions" [] promoted;
  Alcotest.(check int) "one left" 1 (Subscription_store.size t)

let test_remove_unknown () =
  let t = make () in
  Alcotest.check_raises "unknown id" Not_found (fun () ->
      ignore (Subscription_store.remove t 42))

let test_match_publication_two_level () =
  let t = make () in
  let id_broad, _ = Subscription_store.add t (sub [ (0, 9); (0, 9) ]) in
  let id_small, _ = Subscription_store.add t (sub [ (2, 3); (2, 3) ]) in
  (* Publication inside both: both ids reported, covered set scanned. *)
  let hits = Subscription_store.match_publication t (Publication.of_list [ 2; 2 ]) in
  Alcotest.(check (list int)) "both match" [ id_broad; id_small ] hits;
  (* Publication inside the broad one only. *)
  let hits2 = Subscription_store.match_publication t (Publication.of_list [ 8; 8 ]) in
  Alcotest.(check (list int)) "only broad" [ id_broad ] hits2;
  (* Publication outside everything. *)
  let hits3 =
    Subscription_store.match_publication t (Publication.of_list [ 50; 50 ])
  in
  Alcotest.(check (list int)) "no match" [] hits3

let test_match_skips_covered_scan () =
  let t = make () in
  let _ = Subscription_store.add t (sub [ (0, 9); (0, 9) ]) in
  let _ = Subscription_store.add t (sub [ (2, 3); (2, 3) ]) in
  let before = (Subscription_store.stats t).Subscription_store.covered_scans in
  ignore (Subscription_store.match_publication t (Publication.of_list [ 50; 50 ]));
  let after = (Subscription_store.stats t).Subscription_store.covered_scans in
  Alcotest.(check int) "covered set untouched on miss" before after;
  ignore (Subscription_store.match_publication t (Publication.of_list [ 2; 2 ]));
  let final = (Subscription_store.stats t).Subscription_store.covered_scans in
  Alcotest.(check bool) "covered set scanned on hit" true (final > after)

let test_exhaustive_match_agrees_without_coverage () =
  (* With No_coverage, two-level matching and exhaustive matching are
     identical. *)
  let t = make ~policy:Subscription_store.No_coverage () in
  let rng = Prng.of_int 31 in
  for _ = 1 to 30 do
    let lo1 = Prng.int rng 20 and lo2 = Prng.int rng 20 in
    ignore
      (Subscription_store.add t
         (sub
            [
              (lo1, lo1 + 3 + Prng.int rng 10); (lo2, lo2 + 3 + Prng.int rng 10);
            ]))
  done;
  for _ = 1 to 100 do
    let p = Publication.of_list [ Prng.int rng 35; Prng.int rng 35 ] in
    Alcotest.(check (list int))
      "two-level = exhaustive"
      (Subscription_store.match_publication_exhaustive t p)
      (Subscription_store.match_publication t p)
  done

let test_algorithm5_soundness_group () =
  (* Under group policy the two-level match may only miss ids when NO
     active subscription matches; on an active hit results must equal
     the exhaustive match. *)
  let t = make () in
  let rng = Prng.of_int 37 in
  for _ = 1 to 40 do
    let lo1 = Prng.int rng 20 and lo2 = Prng.int rng 20 in
    ignore
      (Subscription_store.add t
         (sub
            [
              (lo1, lo1 + 3 + Prng.int rng 12); (lo2, lo2 + 3 + Prng.int rng 12);
            ]))
  done;
  for _ = 1 to 200 do
    let p = Publication.of_list [ Prng.int rng 40; Prng.int rng 40 ] in
    let two_level = Subscription_store.match_publication t p in
    let exhaustive = Subscription_store.match_publication_exhaustive t p in
    let active_hit =
      List.exists (fun id -> Subscription_store.is_active t id) exhaustive
    in
    if active_hit then
      Alcotest.(check (list int)) "hit path complete" exhaustive two_level
    else
      Alcotest.(check (list int)) "miss path returns nothing" [] two_level
  done

let test_multilevel_scans_bounded () =
  (* The multi-level index must test only children of matched actives,
     not the whole covered set. *)
  let t = make () in
  (* Two disjoint regions, each with one coverer and several covered. *)
  let _a, _ = Subscription_store.add t (sub [ (0, 20); (0, 20) ]) in
  let _b, _ = Subscription_store.add t (sub [ (80, 99); (80, 99) ]) in
  for i = 0 to 4 do
    ignore (Subscription_store.add t (sub [ (i, i + 2); (i, i + 2) ]));
    ignore (Subscription_store.add t (sub [ (80 + i, 82 + i); (80 + i, 82 + i) ]))
  done;
  Alcotest.(check int) "ten covered" 10 (Subscription_store.covered_count t);
  let before = (Subscription_store.stats t).Subscription_store.covered_scans in
  (* Hits region A only: at most the 5 children of A are tested. *)
  ignore (Subscription_store.match_publication t (Publication.of_list [ 1; 1 ]));
  let after = (Subscription_store.stats t).Subscription_store.covered_scans in
  Alcotest.(check bool)
    (Printf.sprintf "only one region scanned (%d <= 5)" (after - before))
    true
    (after - before <= 5)

let test_stats () =
  let t = make () in
  let id, _ = Subscription_store.add t (sub [ (0, 9); (0, 9) ]) in
  let _ = Subscription_store.add t (sub [ (2, 3); (2, 3) ]) in
  let _ = Subscription_store.remove t id in
  let s = Subscription_store.stats t in
  Alcotest.(check int) "added" 2 s.Subscription_store.added;
  Alcotest.(check int) "dropped covered" 1 s.Subscription_store.dropped_covered;
  Alcotest.(check int) "removed" 1 s.Subscription_store.removed;
  Alcotest.(check int) "promoted" 1 s.Subscription_store.promoted

let test_arity_guard () =
  let t = make () in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Subscription_store.add: arity mismatch") (fun () ->
      ignore (Subscription_store.add t (sub [ (0, 1) ])))

(* ------------------------------------------------------------------ *)
(* Batched insertion (PR 4): add_batch is defined as the sequential
   add loop; the pool only changes how fast the answer arrives. Every
   mode below must produce identical (id, placement) results, active
   and covered sets, stats and a valid structure. *)

let batch_base = [| sub [ (0, 49); (0, 99) ]; sub [ (50, 99); (0, 99) ] |]

(* A mix of group-covered, pairwise-covered and active arrivals, so
   the batch keeps interleaving installs that change the active set
   with checks against it. *)
let batch_stream n =
  Array.init n (fun i ->
      match i mod 4 with
      | 0 -> sub [ (20 + (i mod 10), 70); (10, 90) ] (* group covered *)
      | 1 -> sub [ (i mod 40, (i mod 40) + 5); (5, 20) ] (* pairwise covered *)
      | 2 -> sub [ (200 + (7 * i), 210 + (7 * i)); (0, 99) ] (* active *)
      | _ -> sub [ (0, 60); (0, 95) ] (* group covered, wide *))

type store_snapshot = {
  results : (Subscription_store.id * Subscription_store.placement) array;
  active : (Subscription_store.id * Subscription.t) list;
  covered :
    (Subscription_store.id * Subscription.t * Subscription_store.id list) list;
  stats : Subscription_store.stats;
  valid : bool;
}

let run_batch_mode ~mode ?pool () =
  let t =
    Subscription_store.create
      ~policy:(Subscription_store.Group_policy Engine.default_config) ?pool
      ~arity:2 ~seed:77 ()
  in
  Array.iter (fun s -> ignore (Subscription_store.add t s)) batch_base;
  let stream = batch_stream 40 in
  let results =
    match mode with
    | `Loop ->
        let out = Array.make (Array.length stream) (0, Subscription_store.Active) in
        Array.iteri (fun i s -> out.(i) <- Subscription_store.add t s) stream;
        out
    | `Batch -> Subscription_store.add_batch t stream
  in
  {
    results;
    active = Subscription_store.active t;
    covered = Subscription_store.covered t;
    stats = Subscription_store.stats t;
    valid = Subscription_store.validate t;
  }

let check_snapshot_equal name (a : store_snapshot) (b : store_snapshot) =
  Alcotest.(check bool) (name ^ ": placements") true (a.results = b.results);
  Alcotest.(check bool) (name ^ ": active set") true (a.active = b.active);
  Alcotest.(check bool) (name ^ ": covered set") true (a.covered = b.covered);
  Alcotest.(check bool) (name ^ ": stats") true (a.stats = b.stats);
  Alcotest.(check bool) (name ^ ": valid") true (a.valid && b.valid)

let test_add_batch_equals_add_loop () =
  let reference = run_batch_mode ~mode:`Loop () in
  Alcotest.(check bool) "reference valid" true reference.valid;
  (* Some arrivals of each kind actually occurred. *)
  Alcotest.(check bool) "mixed stream" true
    (List.length reference.active > 2 && List.length reference.covered > 2);
  let plain_batch = run_batch_mode ~mode:`Batch () in
  check_snapshot_equal "pool-less batch vs loop" plain_batch reference;
  Domain_pool.with_pool ~workers:3 (fun pool ->
      let pooled_loop = run_batch_mode ~mode:`Loop ~pool () in
      check_snapshot_equal "pooled adds vs plain adds" pooled_loop reference;
      let pooled_batch = run_batch_mode ~mode:`Batch ~pool () in
      check_snapshot_equal "pooled batch vs loop" pooled_batch reference)

let test_add_batch_edge_cases () =
  Domain_pool.with_pool ~workers:3 (fun pool ->
      let t =
        Subscription_store.create
          ~policy:(Subscription_store.Group_policy Engine.default_config)
          ~pool ~arity:2 ~seed:5 ()
      in
      (* Empty batch: no effect. *)
      Alcotest.(check int) "empty batch" 0
        (Array.length (Subscription_store.add_batch t [||]));
      Alcotest.(check int) "store untouched" 0 (Subscription_store.size t);
      (* Empty store, all-active batch: every item restarts the round. *)
      let disjoint =
        Array.init 6 (fun i -> sub [ (100 * i, (100 * i) + 10); (0, 9) ])
      in
      let res = Subscription_store.add_batch t disjoint in
      Array.iteri
        (fun i (_, p) ->
          Alcotest.(check bool)
            (Printf.sprintf "item %d active" i)
            true
            (p = Subscription_store.Active))
        res;
      Alcotest.(check int) "all active" 6 (Subscription_store.active_count t);
      Alcotest.(check bool) "valid" true (Subscription_store.validate t);
      (* Arity is checked up front: nothing is inserted on failure. *)
      Alcotest.check_raises "arity checked before inserting"
        (Invalid_argument "Subscription_store.add_batch: arity mismatch")
        (fun () ->
          ignore
            (Subscription_store.add_batch t
               [| sub [ (0, 1); (0, 1) ]; sub [ (0, 1) ] |]));
      Alcotest.(check int) "batch rejected atomically" 6
        (Subscription_store.size t);
      (* Non-group policies take the sequential path under a pool. *)
      let pw =
        Subscription_store.create ~policy:Subscription_store.Pairwise_policy
          ~pool ~arity:2 ~seed:5 ()
      in
      let r =
        Subscription_store.add_batch pw
          [| sub [ (0, 9); (0, 9) ]; sub [ (2, 3); (2, 3) ] |]
      in
      (match r with
      | [| (id0, Subscription_store.Active); (_, Subscription_store.Covered c) |]
        ->
          Alcotest.(check (list int)) "pairwise coverer" [ id0 ] c
      | _ -> Alcotest.fail "pairwise batch placements");
      Alcotest.(check bool) "pairwise store valid" true
        (Subscription_store.validate pw))

let suite =
  [
    Alcotest.test_case "no-coverage policy" `Quick test_no_coverage_policy;
    Alcotest.test_case "pairwise policy" `Quick test_pairwise_policy;
    Alcotest.test_case "group policy" `Quick test_group_policy;
    Alcotest.test_case "removal promotes orphans" `Quick
      test_remove_active_promotes;
    Alcotest.test_case "removal keeps remaining cover" `Quick
      test_remove_keeps_cover_when_possible;
    Alcotest.test_case "removing covered is a no-op" `Quick
      test_remove_covered_noop;
    Alcotest.test_case "unknown id" `Quick test_remove_unknown;
    Alcotest.test_case "two-level matching" `Quick
      test_match_publication_two_level;
    Alcotest.test_case "covered scan skipped on miss" `Quick
      test_match_skips_covered_scan;
    Alcotest.test_case "flooding matches exhaustively" `Quick
      test_exhaustive_match_agrees_without_coverage;
    Alcotest.test_case "Algorithm 5 soundness" `Slow
      test_algorithm5_soundness_group;
    Alcotest.test_case "multilevel scan bound" `Quick
      test_multilevel_scans_bounded;
    Alcotest.test_case "stats counters" `Quick test_stats;
    Alcotest.test_case "arity guard" `Quick test_arity_guard;
    Alcotest.test_case "add_batch = add loop" `Slow
      test_add_batch_equals_add_loop;
    Alcotest.test_case "add_batch edge cases" `Quick test_add_batch_edge_cases;
  ]

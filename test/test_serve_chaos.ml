(* lib/server end-to-end: wire-codec totality and roundtrips, the
   reconnect backoff policy, and the multi-process kill -9 chaos
   scenario (fork a fleet, SIGKILL a broker mid-refresh-wave, restart
   it from its WAL, audit that the recovered fleet misses nothing).

   The chaos seed comes from PROBSUB_CHAOS_SEED when set, so CI can
   sweep a seed matrix over the same binary; locally it defaults to
   42. *)

open Probsub_core
module Wire = Probsub_server.Wire
module Backoff = Probsub_server.Backoff
module Harness = Probsub_server.Harness
module Loadgen = Probsub_server.Loadgen
module Message = Probsub_broker.Message
module Audit = Probsub_broker.Audit

(* ------------------------------------------------------------------ *)
(* Wire codec *)

let sample_msgs =
  [
    Wire.Hello
      { role = Wire.Peer_role 3; session = 123_456_789; last_seen = 0; epoch = 0 };
    Wire.Hello
      { role = Wire.Client_role 42; session = 1; last_seen = 17; epoch = 2 };
    Wire.Hello
      { role = Wire.Standby_role 7; session = 55; last_seen = 0; epoch = 3 };
    Wire.Welcome { session = 99; last_seen = 5; epoch = 0 };
    Wire.Welcome { session = 100; last_seen = 0; epoch = 4 };
    Wire.Repl_stream (Wire.R_hello { from_lsn = 12 });
    Wire.Repl_stream (Wire.R_frames { bytes = "\x01\x02\x03raw" });
    Wire.Repl_stream
      (Wire.R_snapshot { snap = Some "snapbytes"; wal = "walbytes"; next_lsn = 9 });
    Wire.Repl_stream (Wire.R_snapshot { snap = None; wal = ""; next_lsn = 0 });
    Wire.Repl_stream (Wire.R_heartbeat { epoch = 6; next_lsn = 14 });
    Wire.Repl_stream (Wire.R_ack { applied_lsn = 41 });
    Wire.Payload
      (Message.Subscribe
         {
           key = 7;
           sub = Subscription.of_bounds [ (1, 5); (2, 9) ];
           epoch = 3;
         });
    Wire.Payload (Message.Unsubscribe { key = 9 });
    Wire.Payload
      (Message.Advertise
         { key = 4; adv = Subscription.of_bounds [ (0, 100); (5, 6) ] });
    Wire.Payload (Message.Unadvertise { key = 4 });
    Wire.Payload (Message.Publish { id = 31; pub = Publication.point [| 3; 4 |] });
    Wire.Payload
      (Message.Publish
         { id = 32; pub = Publication.box (Subscription.of_bounds [ (1, 2) ]) });
    Wire.Payload (Message.Ack { seq = 12 });
    Wire.Notify { client = 5; key = 7; pub_id = 31 };
    Wire.Frame_ack { seq = 44 };
    Wire.Bye;
  ]

(* Wire.msg holds abstract Subscription/Publication values; encoding is
   deterministic, so byte-equality of encodings is a faithful equality
   on messages. *)
let test_wire_roundtrip () =
  List.iter
    (fun msg ->
      let bytes = Wire.encode msg in
      match Wire.decode bytes with
      | Error e -> Alcotest.failf "decode failed: %s (%a)" e Wire.pp msg
      | Ok msg' ->
          Alcotest.(check string)
            (Format.asprintf "%a" Wire.pp msg)
            bytes (Wire.encode msg'))
    sample_msgs

let test_wire_rejects_trailing () =
  List.iter
    (fun msg ->
      match Wire.decode (Wire.encode msg ^ "\x00") with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "trailing byte accepted (%a)" Wire.pp msg)
    sample_msgs

let test_wire_rejects_truncation () =
  List.iter
    (fun msg ->
      let bytes = Wire.encode msg in
      for cut = 0 to String.length bytes - 1 do
        match Wire.decode (String.sub bytes 0 cut) with
        | Error _ -> ()
        | Ok _ ->
            (* A proper prefix may still decode iff it is itself a
               complete message of another shape — but our tags pin the
               length, so it must not. *)
            Alcotest.failf "truncation to %d bytes accepted (%a)" cut Wire.pp
              msg
      done)
    sample_msgs

let test_wire_classes () =
  let sheddable m = Wire.class_of m = Wire.Sheddable in
  Alcotest.(check bool)
    "publish is sheddable" true
    (sheddable
       (Wire.Payload (Message.Publish { id = 1; pub = Publication.point [| 0 |] })));
  Alcotest.(check bool)
    "notify is sheddable" true
    (sheddable (Wire.Notify { client = 1; key = 1; pub_id = 1 }));
  Alcotest.(check bool)
    "subscribe is control" false
    (sheddable
       (Wire.Payload
          (Message.Subscribe
             { key = 1; sub = Subscription.of_bounds [ (0, 1) ]; epoch = 0 })));
  Alcotest.(check bool) "hello is control" false (sheddable (Wire.Bye));
  (* Only control-plane payloads ride the acked channel. *)
  Alcotest.(check bool)
    "subscribe is acked" true
    (Wire.acked
       (Wire.Payload
          (Message.Subscribe
             { key = 1; sub = Subscription.of_bounds [ (0, 1) ]; epoch = 0 })));
  Alcotest.(check bool)
    "publish is not acked" false
    (Wire.acked
       (Wire.Payload (Message.Publish { id = 1; pub = Publication.point [| 0 |] })));
  Alcotest.(check bool)
    "welcome is not acked" false
    (Wire.acked (Wire.Welcome { session = 1; last_seen = 0; epoch = 0 }));
  Alcotest.(check bool)
    "repl stream is not acked" false
    (Wire.acked (Wire.Repl_stream (Wire.R_frames { bytes = "x" })))

let prop_decode_total =
  QCheck.Test.make ~count:500 ~name:"Wire.decode is total on arbitrary bytes"
    QCheck.(string_of_size (Gen.int_bound 64))
    (fun s ->
      match Wire.decode s with Ok _ | Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Backoff *)

let test_backoff_bounds () =
  let base = 0.05 and cap = 2.0 in
  let b = Backoff.create ~base ~cap ~seed:7 () in
  for attempt = 0 to 12 do
    match Backoff.next_delay b with
    | None -> Alcotest.fail "unbounded budget refused"
    | Some d ->
        let ideal = Float.min cap (base *. (2.0 ** float_of_int attempt)) in
        if d < ideal *. 0.75 || d >= ideal *. 1.25 then
          Alcotest.failf "attempt %d: delay %g outside [%g, %g)" attempt d
            (ideal *. 0.75) (ideal *. 1.25)
  done

let test_backoff_budget_and_reset () =
  let b = Backoff.create ~base:0.01 ~cap:0.1 ~max_attempts:3 ~seed:1 () in
  Alcotest.(check bool) "1st" true (Backoff.next_delay b <> None);
  Alcotest.(check bool) "2nd" true (Backoff.next_delay b <> None);
  Alcotest.(check bool) "3rd" true (Backoff.next_delay b <> None);
  Alcotest.(check bool) "exhausted" true (Backoff.next_delay b = None);
  Alcotest.(check bool) "still exhausted" true (Backoff.next_delay b = None);
  Backoff.reset b;
  Alcotest.(check int) "attempts reset" 0 (Backoff.attempts b);
  match Backoff.next_delay b with
  | None -> Alcotest.fail "budget not restored by reset"
  | Some d ->
      Alcotest.(check bool)
        "restarts from base" true
        (d >= 0.01 *. 0.75 && d < 0.01 *. 1.25)

let test_backoff_deterministic () =
  let seq seed =
    let b = Backoff.create ~seed () in
    List.init 8 (fun _ -> Backoff.next_delay b)
  in
  Alcotest.(check bool) "same seed, same delays" true (seq 33 = seq 33);
  Alcotest.(check bool) "different seeds diverge" true (seq 33 <> seq 34)

(* ------------------------------------------------------------------ *)
(* The kill -9 chaos scenario *)

let chaos_seed () =
  match Option.bind (Sys.getenv_opt "PROBSUB_CHAOS_SEED") int_of_string_opt with
  | Some seed -> seed
  | None -> 42

let test_chaos_kill9_recovery () =
  let seed = chaos_seed () in
  let cc = Harness.config ~seed ~pubs:10 () in
  let r = Harness.run cc in
  let phase name (p : Loadgen.result) =
    let report = p.Loadgen.audit in
    if not (Audit.is_clean report) then
      Alcotest.failf "%s phase (seed %d): %a" name seed Audit.pp report;
    Alcotest.(check bool)
      (Printf.sprintf "%s phase verdicts byte-identical (seed %d)" name seed)
      true p.Loadgen.verdicts_match;
    Alcotest.(check bool)
      (Printf.sprintf "%s phase delivered everything (seed %d)" name seed)
      true
      (p.Loadgen.expected = p.Loadgen.delivered)
  in
  phase "pre-kill" r.Harness.pre;
  phase "post-recovery" r.Harness.post;
  Alcotest.(check bool)
    (Printf.sprintf "audit clean across kill -9 recovery (seed %d)" seed)
    true r.Harness.clean;
  Alcotest.(check bool)
    (Printf.sprintf "recovered promptly (%.3fs, seed %d)" r.Harness.recovery_seconds
       seed)
    true
    (r.Harness.recovery_seconds < 30.0)

let suite =
  [
    Alcotest.test_case "wire roundtrip" `Quick test_wire_roundtrip;
    Alcotest.test_case "wire rejects trailing bytes" `Quick
      test_wire_rejects_trailing;
    Alcotest.test_case "wire rejects truncation" `Quick
      test_wire_rejects_truncation;
    Alcotest.test_case "wire classes and ack channel" `Quick test_wire_classes;
    QCheck_alcotest.to_alcotest prop_decode_total;
    Alcotest.test_case "backoff bounds" `Quick test_backoff_bounds;
    Alcotest.test_case "backoff budget and reset" `Quick
      test_backoff_budget_and_reset;
    Alcotest.test_case "backoff deterministic per seed" `Quick
      test_backoff_deterministic;
    Alcotest.test_case "kill -9 chaos: durable restart misses nothing" `Slow
      test_chaos_kill9_recovery;
  ]

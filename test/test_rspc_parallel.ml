open Probsub_core

let sub = Subscription.of_bounds

let test_sequential_fallback () =
  (* domains = 1 must be bit-identical to the sequential runner. *)
  let s = sub [ (0, 999) ] in
  let subs = [| sub [ (0, 899) ] |] in
  let a = Rspc_parallel.run ~domains:1 ~rng:(Prng.of_int 3) ~d:5000 ~s subs in
  let b = Rspc.run ~rng:(Prng.of_int 3) ~d:5000 ~s subs in
  Alcotest.(check int) "same iterations" b.Rspc.iterations a.Rspc.iterations;
  Alcotest.(check bool) "same outcome kind" true
    (match (a.Rspc.outcome, b.Rspc.outcome) with
    | Rspc.Not_covered x, Rspc.Not_covered y -> x = y
    | Rspc.Probably_covered, Rspc.Probably_covered -> true
    | _ -> false)

let test_covered_never_lies () =
  (* A truly covered s cannot yield a witness, whatever the schedule. *)
  let s = sub [ (10, 20); (10, 20) ] in
  let subs = [| sub [ (0, 15); (0, 99) ]; sub [ (14, 99); (0, 99) ] |] in
  for seed = 1 to 5 do
    let run =
      Rspc_parallel.run ~domains:4 ~rng:(Prng.of_int seed) ~d:10_000 ~s subs
    in
    (match run.Rspc.outcome with
    | Rspc.Probably_covered -> ()
    | Rspc.Not_covered _ -> Alcotest.fail "covered input produced a witness");
    Alcotest.(check int) "full budget spent" 10_000 run.Rspc.iterations
  done

let test_witness_is_sound () =
  (* Any NO must come with a verified witness point. *)
  let s = sub [ (0, 999); (0, 999) ] in
  let subs = [| sub [ (0, 899); (0, 999) ] |] in
  for seed = 1 to 5 do
    let run =
      Rspc_parallel.run ~domains:4 ~rng:(Prng.of_int seed) ~d:50_000 ~s subs
    in
    match run.Rspc.outcome with
    | Rspc.Not_covered p ->
        Alcotest.(check bool) "inside s" true (Subscription.covers_point s p);
        Alcotest.(check bool) "escapes the set" true (Rspc.escapes p subs);
        Alcotest.(check bool) "stopped early" true
          (run.Rspc.iterations < 50_000)
    | Rspc.Probably_covered ->
        (* 10% uncovered, 50k trials: astronomically unlikely. *)
        Alcotest.fail "witness must be found"
  done

let test_budget_split_covers_d () =
  (* Uneven splits: total trials on a covered instance must equal d
     exactly for every domain count. *)
  let s = sub [ (0, 9) ] in
  let subs = [| sub [ (0, 9) ] |] in
  List.iter
    (fun domains ->
      let run =
        Rspc_parallel.run ~domains ~rng:(Prng.of_int 1) ~d:9_973 ~s subs
      in
      Alcotest.(check int)
        (Printf.sprintf "d honoured with %d domains" domains)
        9_973 run.Rspc.iterations)
    [ 2; 3; 4; 7 ]

(* ------------------------------------------------------------------ *)
(* Determinism regression (PR 3): same seed + same domain count must
   give the same verdict, run after run; iteration counts are exact
   when no witness exists and bounded by d when one does; the budget
   split is pinned at the chunk boundaries. All parallel-path cases
   use d >= min_parallel_budget, below which run falls back to the
   sequential engine. *)

let outcome_kind = function
  | Rspc.Probably_covered -> "covered"
  | Rspc.Not_covered _ -> "witness"

let test_verdict_deterministic () =
  (* 1% escape volume: the verdict genuinely depends on the drawn
     points, so this would flake across reruns if the per-domain
     streams or budgets were schedule-dependent. *)
  let s = sub [ (0, 999) ] in
  let subs = [| sub [ (0, 989) ] |] in
  for seed = 1 to 6 do
    let verdict_of () =
      (Rspc_parallel.run ~domains:3 ~rng:(Prng.of_int seed) ~d:2500 ~s subs)
        .Rspc.outcome |> outcome_kind
    in
    let first = verdict_of () in
    for _rerun = 1 to 2 do
      Alcotest.(check string)
        (Printf.sprintf "seed %d verdict stable" seed)
        first (verdict_of ())
    done
  done

let test_small_budget_matches_sequential () =
  (* Below min_parallel_budget the fall-back must be bit-identical to
     Rspc.run, domains notwithstanding. *)
  Alcotest.(check bool) "threshold is meaningful" true
    (Rspc_parallel.min_parallel_budget > 0);
  let s = sub [ (0, 999) ] in
  let subs = [| sub [ (0, 899) ] |] in
  let d = Rspc_parallel.min_parallel_budget - 1 in
  let a = Rspc_parallel.run ~domains:4 ~rng:(Prng.of_int 11) ~d ~s subs in
  let b = Rspc.run ~rng:(Prng.of_int 11) ~d ~s subs in
  Alcotest.(check int) "same iterations" b.Rspc.iterations a.Rspc.iterations;
  Alcotest.(check bool) "same outcome" true (a.Rspc.outcome = b.Rspc.outcome)

let test_iterations_exact_when_covered () =
  (* No witness exists => no early stop => every domain spends its full
     budget and the total is exactly d, at every chunk shape. *)
  let s = sub [ (10, 20) ] in
  let subs = [| sub [ (0, 99) ] |] in
  List.iter
    (fun (d, domains) ->
      let run = Rspc_parallel.run ~domains ~rng:(Prng.of_int 5) ~d ~s subs in
      Alcotest.(check string)
        (Printf.sprintf "covered at d=%d domains=%d" d domains)
        "covered"
        (outcome_kind run.Rspc.outcome);
      Alcotest.(check int)
        (Printf.sprintf "iterations = d at d=%d domains=%d" d domains)
        d run.Rspc.iterations)
    [ (2048, 2); (2048, 3); (2051, 4); (2053, 8) ]

let test_iterations_bounded_with_witness () =
  (* Witness found => early stop; the total can be anything in
     [1, d] depending on scheduling, but never more than d. *)
  let s = sub [ (0, 999) ] in
  let subs = [| sub [ (0, 899) ] |] in
  for seed = 1 to 5 do
    let run =
      Rspc_parallel.run ~domains:4 ~rng:(Prng.of_int seed) ~d:8192 ~s subs
    in
    Alcotest.(check string) "witness found" "witness"
      (outcome_kind run.Rspc.outcome);
    Alcotest.(check bool) "iterations within budget" true
      (run.Rspc.iterations >= 1 && run.Rspc.iterations <= 8192)
  done

let test_budget_arithmetic () =
  let budgets ~d ~domains =
    List.init domains (fun index -> Rspc_parallel.budget_for ~d ~domains ~index)
  in
  (* Pinned chunk-boundary cases. *)
  Alcotest.(check (list int)) "2048 over 3" [ 683; 683; 682 ]
    (budgets ~d:2048 ~domains:3);
  Alcotest.(check (list int)) "2051 over 4" [ 513; 513; 513; 512 ]
    (budgets ~d:2051 ~domains:4);
  Alcotest.(check (list int)) "4096 over 4 (even split)"
    [ 1024; 1024; 1024; 1024 ]
    (budgets ~d:4096 ~domains:4);
  (* Far more domains than trials per chunk: tail domains get zero. *)
  let tail = budgets ~d:2100 ~domains:1024 in
  Alcotest.(check int) "zero-budget tail exists" 0
    (List.nth tail 1023);
  (* Structural invariants across assorted shapes. *)
  List.iter
    (fun (d, domains) ->
      let bs = budgets ~d ~domains in
      let chunk = Rspc_parallel.chunk_size ~d ~domains in
      Alcotest.(check int)
        (Printf.sprintf "sum = d for d=%d domains=%d" d domains)
        d
        (List.fold_left ( + ) 0 bs);
      List.iter
        (fun b ->
          Alcotest.(check bool) "0 <= budget <= chunk" true
            (0 <= b && b <= chunk))
        bs;
      ignore
        (List.fold_left
           (fun prev b ->
             Alcotest.(check bool) "non-increasing" true (b <= prev);
             b)
           max_int bs))
    [ (2048, 2); (2048, 3); (2051, 4); (9973, 7); (2100, 1024); (4096, 1) ]

let test_trials_into () =
  let s = sub [ (0, 9); (0, 9) ] in
  let m = 2 in
  let sbox = Flat.box_of_sub s in
  let p = Array.make m 0 in
  (* Zero budget performs zero trials. *)
  let covered = Flat.pack ~m [| s |] in
  let found = Atomic.make None in
  Alcotest.(check int) "zero budget" 0
    (Rspc_parallel.trials_into ~rng:(Prng.of_int 1) ~sbox ~packed:covered
       ~found ~budget:0 p);
  (* A pre-set stop flag halts at the first poll, before any trial. *)
  let stopped = Atomic.make (Some [| 0; 0 |]) in
  Alcotest.(check int) "pre-set flag stops immediately" 0
    (Rspc_parallel.trials_into ~rng:(Prng.of_int 1) ~sbox ~packed:covered
       ~found:stopped ~budget:512 p);
  (* Covered: the full budget runs and the flag stays unset. *)
  let found = Atomic.make None in
  Alcotest.(check int) "covered spends full budget" 512
    (Rspc_parallel.trials_into ~rng:(Prng.of_int 1) ~sbox ~packed:covered
       ~found ~budget:512 p);
  Alcotest.(check bool) "no witness on covered input" true
    (Atomic.get found = None);
  (* Empty candidate set: every point escapes, so exactly one trial
     runs and publishes a witness inside s. *)
  let empty = Flat.pack ~m [||] in
  let found = Atomic.make None in
  Alcotest.(check int) "first trial wins on empty set" 1
    (Rspc_parallel.trials_into ~rng:(Prng.of_int 1) ~sbox ~packed:empty
       ~found ~budget:512 p);
  (match Atomic.get found with
  | Some w ->
      Alcotest.(check bool) "witness inside s" true
        (Subscription.covers_point s w)
  | None -> Alcotest.fail "expected a witness")

(* ------------------------------------------------------------------ *)
(* Block-parallel determinism (PR 4): run_packed with a pool must be
   bit-identical to Rspc.run_packed — outcome, witness point and
   iteration count — for every pool size, seed and workload shape,
   because it reproduces the sequential draw stream block by block and
   takes the minimum escaping slot. *)

let bit_identical_shapes =
  [
    (* no witness exists: every trial runs *)
    ("covered", sub [ (10, 20) ], [| sub [ (0, 99) ] |], 4096);
    (* 10% escape: witness in the first block *)
    ("escape10", sub [ (0, 999) ], [| sub [ (0, 899) ] |], 8192);
    (* 1% escape: witness often past the first slice *)
    ("escape1", sub [ (0, 999) ], [| sub [ (0, 989) ] |], 4096);
    (* 0.1% escape: witness typically beyond the first 512-trial block *)
    ("escape01", sub [ (0, 9999) ], [| sub [ (0, 9989) ] |], 8192);
  ]

let check_against_sequential label a (b : Rspc.run) =
  Alcotest.(check int)
    (label ^ ": iterations")
    b.Rspc.iterations a.Rspc.iterations;
  Alcotest.(check bool)
    (label ^ ": outcome and witness")
    true
    (a.Rspc.outcome = b.Rspc.outcome)

let test_pooled_bit_identical () =
  List.iter
    (fun workers ->
      Domain_pool.with_pool ~workers (fun pool ->
          List.iter
            (fun (name, s, subs, d) ->
              let m = Subscription.arity s in
              let packed = Flat.pack ~m subs in
              let sbox = Flat.box_of_sub s in
              for seed = 1 to 3 do
                let a =
                  Rspc_parallel.run_packed ~pool ~rng:(Prng.of_int seed) ~d
                    ~sbox packed
                in
                let b = Rspc.run_packed ~rng:(Prng.of_int seed) ~d ~sbox packed in
                check_against_sequential
                  (Printf.sprintf "%s workers=%d seed=%d" name workers seed)
                  a b
              done)
            bit_identical_shapes))
    [ 0; 1; 3; 7 ]

let test_percall_spawn_bit_identical () =
  (* The pool-less path (per-call spawn) goes through the same block
     engine: also bit-identical. *)
  List.iter
    (fun (name, s, subs, d) ->
      let m = Subscription.arity s in
      let packed = Flat.pack ~m subs in
      let sbox = Flat.box_of_sub s in
      for seed = 1 to 2 do
        let a =
          Rspc_parallel.run_packed ~domains:4 ~rng:(Prng.of_int seed) ~d ~sbox
            packed
        in
        let b = Rspc.run_packed ~rng:(Prng.of_int seed) ~d ~sbox packed in
        check_against_sequential
          (Printf.sprintf "%s domains=4 seed=%d" name seed)
          a b
      done)
    bit_identical_shapes

let test_run_wrapper_bit_identical () =
  (* The boxed wrapper inherits the guarantee from run_packed. *)
  let s = sub [ (0, 999); (0, 999) ] in
  let subs = [| sub [ (0, 899); (0, 999) ] |] in
  for seed = 1 to 3 do
    let a =
      Rspc_parallel.run ~domains:4 ~rng:(Prng.of_int seed) ~d:8192 ~s subs
    in
    let b = Rspc.run ~rng:(Prng.of_int seed) ~d:8192 ~s subs in
    check_against_sequential (Printf.sprintf "run seed=%d" seed) a b
  done

let test_run_packed_validation () =
  let s = sub [ (0, 9) ] in
  let packed = Flat.pack ~m:1 [| s |] in
  let sbox = Flat.box_of_sub s in
  Alcotest.check_raises "domains validated"
    (Invalid_argument "Rspc_parallel.run_packed: domains < 1") (fun () ->
      ignore
        (Rspc_parallel.run_packed ~domains:0 ~rng:(Prng.of_int 1) ~d:1 ~sbox
           packed));
  Alcotest.check_raises "budget validated"
    (Invalid_argument "Rspc_parallel.run_packed: negative trial budget")
    (fun () ->
      ignore
        (Rspc_parallel.run_packed ~rng:(Prng.of_int 1) ~d:(-1) ~sbox packed));
  let sbox2 = Flat.box_of_sub (sub [ (0, 9); (0, 9) ]) in
  Alcotest.check_raises "arity validated"
    (Invalid_argument "Rspc_parallel.run_packed: arity mismatch") (fun () ->
      ignore
        (Rspc_parallel.run_packed ~rng:(Prng.of_int 1) ~d:1 ~sbox:sbox2 packed))

let test_validation () =
  let s = sub [ (0, 9) ] in
  Alcotest.check_raises "domains validated"
    (Invalid_argument "Rspc_parallel.run: domains < 1") (fun () ->
      ignore (Rspc_parallel.run ~domains:0 ~rng:(Prng.of_int 1) ~d:1 ~s [||]));
  Alcotest.(check bool) "recommendation positive" true
    (Rspc_parallel.recommended_domains () >= 1)

let suite =
  [
    Alcotest.test_case "sequential fallback" `Quick test_sequential_fallback;
    Alcotest.test_case "covered never lies" `Slow test_covered_never_lies;
    Alcotest.test_case "witnesses are sound" `Slow test_witness_is_sound;
    Alcotest.test_case "budget split exact" `Quick test_budget_split_covers_d;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "verdict deterministic" `Slow test_verdict_deterministic;
    Alcotest.test_case "small budget = sequential" `Quick
      test_small_budget_matches_sequential;
    Alcotest.test_case "iterations exact when covered" `Slow
      test_iterations_exact_when_covered;
    Alcotest.test_case "iterations bounded with witness" `Slow
      test_iterations_bounded_with_witness;
    Alcotest.test_case "budget arithmetic" `Quick test_budget_arithmetic;
    Alcotest.test_case "trials_into inner loop" `Quick test_trials_into;
    Alcotest.test_case "pooled run bit-identical" `Slow
      test_pooled_bit_identical;
    Alcotest.test_case "per-call spawn bit-identical" `Slow
      test_percall_spawn_bit_identical;
    Alcotest.test_case "run wrapper bit-identical" `Quick
      test_run_wrapper_bit_identical;
    Alcotest.test_case "run_packed validation" `Quick
      test_run_packed_validation;
  ]

open Probsub_broker

let test_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  let order = ref [] in
  Event_queue.drain q ~f:(fun ~time:_ e -> order := e :: !order);
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_fifo_ties () =
  let q = Event_queue.create () in
  for i = 1 to 100 do
    Event_queue.push q ~time:5.0 i
  done;
  let out = ref [] in
  Event_queue.drain q ~f:(fun ~time:_ e -> out := e :: !out);
  Alcotest.(check (list int)) "ties in insertion order"
    (List.init 100 (fun i -> i + 1))
    (List.rev !out)

let test_peek_size () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check (option (float 0.0))) "no peek" None (Event_queue.peek_time q);
  Event_queue.push q ~time:2.5 ();
  Event_queue.push q ~time:1.5 ();
  Alcotest.(check int) "size" 2 (Event_queue.size q);
  Alcotest.(check (option (float 1e-9))) "peek min" (Some 1.5)
    (Event_queue.peek_time q);
  ignore (Event_queue.pop q);
  Alcotest.(check int) "size after pop" 1 (Event_queue.size q)

let test_pop_empty () =
  let q : unit Event_queue.t = Event_queue.create () in
  Alcotest.(check bool) "pop empty" true (Option.is_none (Event_queue.pop q))

let test_validation () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Event_queue.push: bad time") (fun () ->
      Event_queue.push q ~time:(-1.0) ());
  Alcotest.check_raises "nan time"
    (Invalid_argument "Event_queue.push: bad time") (fun () ->
      Event_queue.push q ~time:Float.nan ())

let test_drain_reentrant () =
  (* Events pushed during the drain are processed too, in order. *)
  let q = Event_queue.create () in
  Event_queue.push q ~time:1.0 1;
  let seen = ref [] in
  Event_queue.drain q ~f:(fun ~time e ->
      seen := e :: !seen;
      if e < 4 then Event_queue.push q ~time:(time +. 1.0) (e + 1));
  Alcotest.(check (list int)) "cascade processed" [ 1; 2; 3; 4 ]
    (List.rev !seen)

let test_heap_stress () =
  (* Random pushes/pops preserve the heap order invariant. *)
  let rng = Probsub_core.Prng.of_int 9 in
  let q = Event_queue.create () in
  let last = ref neg_infinity in
  for _ = 1 to 10_000 do
    if Probsub_core.Prng.float rng < 0.6 || Event_queue.is_empty q then
      Event_queue.push q
        ~time:(Probsub_core.Prng.float rng *. 100.0)
        ()
    else
      match Event_queue.pop q with
      | Some (t, ()) ->
          (* Monotone only between consecutive pops without pushes in
             between; instead check against peek. *)
          ignore t
      | None -> ()
  done;
  (* Final drain must be sorted. *)
  last := neg_infinity;
  Event_queue.drain q ~f:(fun ~time () ->
      Alcotest.(check bool) "drain sorted" true (time >= !last);
      last := time)

let test_cancel () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:1.0 "a";
  let h = Event_queue.push_cancelable q ~time:2.0 "b" in
  Event_queue.push q ~time:3.0 "c";
  Alcotest.(check int) "size before cancel" 3 (Event_queue.size q);
  Alcotest.(check bool) "cancel succeeds" true (Event_queue.cancel q h);
  Alcotest.(check int) "size excludes cancelled" 2 (Event_queue.size q);
  Alcotest.(check bool) "double cancel fails" false (Event_queue.cancel q h);
  let out = ref [] in
  Event_queue.drain q ~f:(fun ~time:_ e -> out := e :: !out);
  Alcotest.(check (list string)) "cancelled never pops" [ "a"; "c" ]
    (List.rev !out)

let test_cancel_at_top () =
  (* A cancelled event sitting at the heap top is skimmed, so peek and
     pop look straight past it. *)
  let q = Event_queue.create () in
  let h = Event_queue.push_cancelable q ~time:1.0 "dead" in
  Event_queue.push q ~time:2.0 "live";
  Alcotest.(check bool) "cancelled" true (Event_queue.cancel q h);
  Alcotest.(check (option (float 1e-9))) "peek skips cancelled" (Some 2.0)
    (Event_queue.peek_time q);
  Alcotest.(check (option (pair (float 1e-9) string))) "pop skips cancelled"
    (Some (2.0, "live"))
    (Event_queue.pop q);
  Alcotest.(check bool) "now empty" true (Event_queue.is_empty q)

let test_cancel_after_fire () =
  let q = Event_queue.create () in
  let h = Event_queue.push_cancelable q ~time:1.0 () in
  ignore (Event_queue.pop q);
  Alcotest.(check bool) "cancel after pop fails" false (Event_queue.cancel q h)

let test_cancel_empty_all () =
  let q = Event_queue.create () in
  let hs = List.init 50 (fun i -> Event_queue.push_cancelable q ~time:(float_of_int i) i) in
  List.iter (fun h -> ignore (Event_queue.cancel q h)) hs;
  Alcotest.(check int) "all cancelled" 0 (Event_queue.size q);
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check bool) "pop none" true (Option.is_none (Event_queue.pop q))

(* Model-based property: drain order equals a stable sort by time of
   the insertion sequence. Times are drawn from a tiny set so ties are
   the common case, exercising FIFO tie-breaking hard. *)
let prop_fifo_model =
  QCheck.Test.make ~count:300 ~name:"drain is a stable sort by time"
    QCheck.(list (int_bound 5))
    (fun times ->
      let q = Event_queue.create () in
      List.iteri
        (fun i ti -> Event_queue.push q ~time:(float_of_int ti) (ti, i))
        times;
      let out = ref [] in
      Event_queue.drain q ~f:(fun ~time:_ e -> out := e :: !out);
      let model =
        List.stable_sort
          (fun (ta, _) (tb, _) -> compare ta tb)
          (List.mapi (fun i ti -> (ti, i)) times)
      in
      List.rev !out = model)

(* Cancellation against a model: cancel a pseudo-random subset, drain,
   and expect exactly the survivors in stable time order. *)
let prop_cancel_model =
  QCheck.Test.make ~count:300 ~name:"cancelled events never surface"
    QCheck.(pair small_int (list (pair (int_bound 5) bool)))
    (fun (_salt, spec) ->
      let q = Event_queue.create () in
      let handles =
        List.mapi
          (fun i (ti, dead) ->
            (Event_queue.push_cancelable q ~time:(float_of_int ti) (ti, i), dead))
          spec
      in
      List.iter (fun (h, dead) -> if dead then ignore (Event_queue.cancel q h)) handles;
      let out = ref [] in
      Event_queue.drain q ~f:(fun ~time:_ e -> out := e :: !out);
      let model =
        List.stable_sort
          (fun (ta, _) (tb, _) -> compare ta tb)
          (List.filteri
             (fun i _ -> not (snd (List.nth spec i)))
             (List.mapi (fun i (ti, _) -> (ti, i)) spec))
      in
      List.rev !out = model)

let suite =
  [
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
    Alcotest.test_case "peek and size" `Quick test_peek_size;
    Alcotest.test_case "pop empty" `Quick test_pop_empty;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "re-entrant drain" `Quick test_drain_reentrant;
    Alcotest.test_case "heap stress" `Quick test_heap_stress;
    Alcotest.test_case "cancellation" `Quick test_cancel;
    Alcotest.test_case "cancel at heap top" `Quick test_cancel_at_top;
    Alcotest.test_case "cancel after fire" `Quick test_cancel_after_fire;
    Alcotest.test_case "cancel everything" `Quick test_cancel_empty_all;
    QCheck_alcotest.to_alcotest prop_fifo_model;
    QCheck_alcotest.to_alcotest prop_cancel_model;
  ]

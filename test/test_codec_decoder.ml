(* Incremental Codec.Decoder: the streaming decoder must agree with
   the batch read_frame walk on every split of the same bytes — frames
   pop as soon as their last byte arrives, a torn tail waits as
   D_need_more, and any damaged frame is a sticky D_corrupt. Also
   covers the Prim primitive re-exports the wire protocol builds on. *)

open Probsub_core
open Probsub_store_log

let sub lo hi = Subscription.of_bounds [ (lo, hi) ]

(* Reference: batch-walk a byte string with read_frame. *)
let batch_frames s =
  let rec go pos acc =
    match Codec.read_frame s ~pos with
    | Codec.Frame { lsn; payload; next } -> go next ((lsn, payload) :: acc)
    | Codec.Frame_truncated | Codec.Frame_bad_length | Codec.Frame_bad_crc
    | Codec.Frame_undecodable _ ->
        List.rev acc
  in
  go 0 []

(* Drain every complete frame currently buffered. *)
let drain dec =
  let rec go acc =
    match Codec.Decoder.next dec with
    | Codec.Decoder.D_frame { lsn; payload } -> go ((lsn, payload) :: acc)
    | Codec.Decoder.D_need_more | Codec.Decoder.D_corrupt _ -> List.rev acc
  in
  go []

let sample_records =
  [
    Codec.Op
      (Subscription_store.Op_add
         {
           id = 0;
           sub = sub (-5) 1_000;
           placement = Subscription_store.Active;
           expires_at = infinity;
         });
    Codec.Epoch_note { key = 3; epoch = 9 };
    Codec.Bind
      { Codec.b_rid = 1; b_key = 7; b_okind = 2; b_oarg = 4; b_epoch = 2 };
    Codec.Op (Subscription_store.Op_renew { id = 3; expires_at = 42.5 });
  ]

let stream_of records =
  String.concat ""
    (List.mapi (fun i r -> Codec.frame ~lsn:(i + 1) (Codec.encode r)) records)

let test_whole_stream () =
  let s = stream_of sample_records in
  let dec = Codec.Decoder.create () in
  Codec.Decoder.feed_string dec s;
  let got = drain dec in
  Alcotest.(check int) "all frames" (List.length sample_records)
    (List.length got);
  Alcotest.(check bool) "agrees with read_frame" true (got = batch_frames s);
  Alcotest.(check int) "fully drained" 0 (Codec.Decoder.buffered dec);
  List.iteri
    (fun i (lsn, payload) ->
      Alcotest.(check int) "lsn preserved" (i + 1) lsn;
      match Codec.decode payload with
      | Ok r -> Alcotest.(check bool) "payload decodes" true
                  (r = List.nth sample_records i)
      | Error e -> Alcotest.failf "payload %d undecodable: %s" i e)
    got

let test_byte_at_a_time () =
  let s = stream_of sample_records in
  let dec = Codec.Decoder.create () in
  let got = ref [] in
  String.iter
    (fun c ->
      Codec.Decoder.feed_string dec (String.make 1 c);
      got := !got @ drain dec)
    s;
  Alcotest.(check bool) "byte-at-a-time agrees" true (!got = batch_frames s)

let test_torn_tail_waits () =
  let s = stream_of sample_records in
  (* Cut inside the last frame: everything before it pops, then the
     decoder waits — a torn frame is not corruption on a live stream. *)
  let cut = String.length s - 3 in
  let dec = Codec.Decoder.create () in
  Codec.Decoder.feed_string dec (String.sub s 0 cut);
  let early = drain dec in
  Alcotest.(check int) "last frame withheld"
    (List.length sample_records - 1)
    (List.length early);
  (match Codec.Decoder.next dec with
  | Codec.Decoder.D_need_more -> ()
  | _ -> Alcotest.fail "torn tail must be D_need_more");
  Codec.Decoder.feed_string dec (String.sub s cut (String.length s - cut));
  Alcotest.(check int) "tail completes" 1 (List.length (drain dec))

let test_corrupt_is_sticky () =
  let s = stream_of sample_records in
  let b = Bytes.of_string s in
  (* Flip a bit inside the second frame's body (past its 8-byte
     header): frame 1 still decodes, frame 2 fails its checksum. *)
  let f1 = String.length (Codec.frame ~lsn:1 (Codec.encode (List.hd sample_records))) in
  Bytes.set b (f1 + 10) (Char.chr (Char.code (Bytes.get b (f1 + 10)) lxor 0x40));
  let dec = Codec.Decoder.create () in
  Codec.Decoder.feed_string dec (Bytes.to_string b);
  Alcotest.(check int) "clean prefix decoded" 1 (List.length (drain dec));
  (match Codec.Decoder.next dec with
  | Codec.Decoder.D_corrupt _ -> ()
  | _ -> Alcotest.fail "damaged frame must be D_corrupt");
  Codec.Decoder.feed_string dec (stream_of sample_records);
  (match Codec.Decoder.next dec with
  | Codec.Decoder.D_corrupt _ -> ()
  | _ -> Alcotest.fail "corruption must be sticky")

let test_bad_length_is_corrupt () =
  let dec = Codec.Decoder.create () in
  let b = Buffer.create 8 in
  let huge = Codec.max_frame + 1 in
  for i = 0 to 3 do
    Buffer.add_char b (Char.chr ((huge lsr (8 * i)) land 0xFF))
  done;
  Buffer.add_string b "\x00\x00\x00\x00";
  Codec.Decoder.feed_string dec (Buffer.contents b);
  match Codec.Decoder.next dec with
  | Codec.Decoder.D_corrupt _ -> ()
  | _ -> Alcotest.fail "absurd length must be D_corrupt"

(* qcheck: random record streams split at random points — the decoder
   must yield exactly the batch walk no matter how the bytes arrive. *)

let gen_record =
  QCheck.Gen.(
    oneof
      [
        map
          (fun (lo, w) ->
            Codec.Op
              (Subscription_store.Op_add
                 {
                   id = abs lo mod 1000;
                   sub = sub lo (lo + abs w);
                   placement = Subscription_store.Active;
                   expires_at = infinity;
                 }))
          (pair (int_range (-500) 500) (int_range 0 100));
        map
          (fun (k, e) -> Codec.Epoch_note { key = k; epoch = e })
          (pair (int_range 0 200) (int_range 0 50));
        map
          (fun id ->
            Codec.Op (Subscription_store.Op_remove { id; reclassified = [] }))
          (int_range 0 100);
      ])

let gen_stream_and_cuts =
  QCheck.Gen.(
    let* records = list_size (int_range 1 12) gen_record in
    let s = stream_of records in
    let n = String.length s in
    let* cuts = list_size (int_range 0 8) (int_range 0 n) in
    return (s, List.sort_uniq compare cuts))

let arb_stream_and_cuts =
  QCheck.make
    ~print:(fun (s, cuts) ->
      Printf.sprintf "stream of %d bytes, cuts at [%s]" (String.length s)
        (String.concat ";" (List.map string_of_int cuts)))
    gen_stream_and_cuts

let prop_split_invariant =
  QCheck.Test.make ~name:"decoder invariant under split points" ~count:300
    arb_stream_and_cuts (fun (s, cuts) ->
      let dec = Codec.Decoder.create () in
      let got = ref [] in
      let bounds = (0 :: cuts) @ [ String.length s ] in
      let rec feed_pieces = function
        | a :: (b :: _ as rest) ->
            if b > a then
              Codec.Decoder.feed_string dec (String.sub s a (b - a));
            got := !got @ drain dec;
            feed_pieces rest
        | [ _ ] | [] -> ()
      in
      feed_pieces bounds;
      !got = batch_frames s && Codec.Decoder.buffered dec = 0)

let prop_truncation_never_corrupt =
  QCheck.Test.make ~name:"any clean prefix is need-more, never corrupt"
    ~count:300
    QCheck.(
      make
        Gen.(
          let* records = list_size (int_range 1 6) gen_record in
          let s = stream_of records in
          let* cut = int_range 0 (String.length s) in
          return (s, cut)))
    (fun (s, cut) ->
      let dec = Codec.Decoder.create () in
      Codec.Decoder.feed_string dec (String.sub s 0 cut);
      let _ = drain dec in
      match Codec.Decoder.next dec with
      | Codec.Decoder.D_need_more -> true
      | Codec.Decoder.D_frame _ | Codec.Decoder.D_corrupt _ -> false)

(* Prim primitives: totality and roundtrips. *)

let test_prim_roundtrips () =
  let buf = Buffer.create 64 in
  List.iter
    (fun v ->
      Buffer.clear buf;
      Codec.Prim.write_uv buf v;
      match Codec.Prim.read_uv (Buffer.contents buf) ~pos:0 with
      | Ok (v', p) ->
          Alcotest.(check int) "uv value" v v';
          Alcotest.(check int) "uv consumed all" (Buffer.length buf) p
      | Error e -> Alcotest.failf "uv %d: %s" v e)
    [ 0; 1; 127; 128; 300; 1 lsl 30; max_int ];
  List.iter
    (fun v ->
      Buffer.clear buf;
      Codec.Prim.write_sv buf v;
      match Codec.Prim.read_sv (Buffer.contents buf) ~pos:0 with
      | Ok (v', _) -> Alcotest.(check int) "sv value" v v'
      | Error e -> Alcotest.failf "sv %d: %s" v e)
    [ 0; -1; 1; -64; 64; min_int / 2; max_int / 2 ];
  List.iter
    (fun f ->
      Buffer.clear buf;
      Codec.Prim.write_f64 buf f;
      match Codec.Prim.read_f64 (Buffer.contents buf) ~pos:0 with
      | Ok (f', _) ->
          Alcotest.(check bool) "f64 bits" true
            (Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f'))
      | Error e -> Alcotest.failf "f64 %g: %s" f e)
    [ 0.0; -1.5; infinity; Float.pi ];
  let s = Subscription.of_bounds [ (-3, 9); (0, 0) ] in
  Buffer.clear buf;
  Codec.Prim.write_subscription buf s;
  (match Codec.Prim.read_subscription (Buffer.contents buf) ~pos:0 with
  | Ok (s', _) ->
      Alcotest.(check bool) "subscription roundtrip" true
        (Subscription.equal s s')
  | Error e -> Alcotest.failf "subscription: %s" e);
  (match Codec.Prim.read_uv "" ~pos:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty uv must error");
  match Codec.Prim.read_subscription "\x02\x04" ~pos:0 with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated subscription must error"

let suite =
  [
    Alcotest.test_case "whole stream" `Quick test_whole_stream;
    Alcotest.test_case "byte at a time" `Quick test_byte_at_a_time;
    Alcotest.test_case "torn tail waits" `Quick test_torn_tail_waits;
    Alcotest.test_case "corruption is sticky" `Quick test_corrupt_is_sticky;
    Alcotest.test_case "absurd length is corrupt" `Quick
      test_bad_length_is_corrupt;
    Alcotest.test_case "prim roundtrips" `Quick test_prim_roundtrips;
    QCheck_alcotest.to_alcotest prop_split_invariant;
    QCheck_alcotest.to_alcotest prop_truncation_never_corrupt;
  ]

(* Fixture tests for problint: parse each known-bad snippet under
   fixtures/ and assert that exactly the expected rules fire, that
   suppression mechanics behave, and that the reporters are
   well-formed. Contexts are constructed directly so path-scoped rules
   (determinism, partiality) can be exercised on files that live
   outside lib/.

   The interprocedural passes are exercised end-to-end through
   [Lint_driver.run] over the multi-file trees in fixtures_interproc/:
   each positive fixture places the defect in one module and the
   reporting point in another, so a per-file analysis cannot see it. *)

open Probsub_lint

let fixture name = Filename.concat "fixtures" name
let interproc name = Filename.concat "fixtures_interproc" name

let check ?(core_or_broker = false) ?(in_lib = false) ?(hot = false) name =
  let ctx =
    Lint_ctx.make ~core_or_broker ~in_lib ~hot ~file:(fixture name) ()
  in
  Registry.check_structure ctx (Lint_driver.parse_file (fixture name))

let count rule findings =
  List.length (List.filter (fun f -> String.equal f.Finding.rule rule) findings)

let rules_of findings =
  List.sort_uniq String.compare (List.map (fun f -> f.Finding.rule) findings)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

(* ------------------------------------------------------------------ *)
(* One test per rule: the known-bad fixture fires, and the rule stays
   silent outside its scope. *)

let test_determinism () =
  let findings, suppressed = check ~core_or_broker:true "bad_determinism.ml" in
  Alcotest.(check int) "six findings" 6 (count "determinism" findings);
  Alcotest.(check (list string)) "only determinism" [ "determinism" ]
    (rules_of findings);
  Alcotest.(check int) "nothing suppressed" 0 suppressed;
  let outside, _ = check "bad_determinism.ml" in
  Alcotest.(check int) "scoped to lib/core + lib/broker" 0
    (count "determinism" outside)

let test_unsafe () =
  let findings, _ = check "bad_unsafe.ml" in
  Alcotest.(check int) "five findings" 5 (count "unsafe" findings);
  let magic =
    List.filter
      (fun f -> String.length f.Finding.message >= 9
                && String.sub f.Finding.message 0 9 = "Obj.magic")
      findings
  in
  Alcotest.(check int) "Obj.magic among them" 1 (List.length magic)

let test_unsafe_hot_exemption () =
  (* [@@@problint.hot] in the fixture switches the exemption on via
     Suppress.collect, whatever the constructed context says. *)
  let findings, _ = check "hot_exempt.ml" in
  Alcotest.(check int) "only Obj.magic survives in a hot module" 1
    (count "unsafe" findings)

let test_hot_alloc () =
  (* Hot flag comes from the fixture's own floating attribute. *)
  let findings, _ = check "bad_hot_alloc.ml" in
  Alcotest.(check int) "five findings" 5 (count "hot_alloc" findings);
  (* A non-hot module with loops never triggers the rule. *)
  let cold, _ = check "bad_unsafe.ml" in
  Alcotest.(check int) "silent outside hot modules" 0 (count "hot_alloc" cold)

let test_domain () =
  let findings, _ = check "bad_domain.ml" in
  Alcotest.(check int) "five findings" 5 (count "domain" findings);
  Alcotest.(check (list string)) "only domain" [ "domain" ] (rules_of findings)

let test_domain_clean () =
  let findings, _ = check "domain_clean.ml" in
  Alcotest.(check int) "Atomic + worker-local state pass" 0
    (List.length findings)

let test_partiality () =
  let findings, _ = check ~in_lib:true "bad_partiality.ml" in
  Alcotest.(check int) "four findings" 4 (count "partiality" findings);
  let outside, _ = check "bad_partiality.ml" in
  Alcotest.(check int) "scoped to lib/" 0 (count "partiality" outside)

(* ------------------------------------------------------------------ *)
(* Suppression mechanics *)

let test_suppression_valid () =
  let findings, suppressed =
    check ~core_or_broker:true ~in_lib:true "suppressed_ok.ml"
  in
  Alcotest.(check int) "clean" 0 (List.length findings);
  Alcotest.(check int) "three suppressed" 3 suppressed

let test_suppression_hygiene () =
  let findings, suppressed =
    check ~core_or_broker:true ~in_lib:true "suppression_hygiene.ml"
  in
  Alcotest.(check int) "broken allows suppress nothing" 0 suppressed;
  Alcotest.(check int) "reason-less / unknown-rule / malformed reported" 3
    (count "suppression" findings);
  Alcotest.(check int) "partiality kept" 1 (count "partiality" findings);
  Alcotest.(check int) "unsafe kept" 1 (count "unsafe" findings);
  Alcotest.(check int) "determinism kept" 1 (count "determinism" findings)

let test_unused_suppression () =
  (* fixtures_unused/unused.ml carries one live allow (unsafe, fires
     and is silenced) and one dead allow (determinism, fires nowhere):
     the dead one must itself become a finding. *)
  let r = Lint_driver.run ~paths:[ "fixtures_unused" ] in
  Alcotest.(check int) "dead allow reported" 1
    (count "suppression" r.Lint_driver.findings);
  let f =
    List.find
      (fun f -> String.equal f.Finding.rule "suppression")
      r.Lint_driver.findings
  in
  Alcotest.(check bool) "message says it suppresses nothing" true
    (contains ~needle:"suppresses nothing" f.Finding.message);
  Alcotest.(check bool) "message names the rule" true
    (contains ~needle:"determinism" f.Finding.message);
  Alcotest.(check int) "live allow still silences unsafe" 0
    (count "unsafe" r.Lint_driver.findings);
  Alcotest.(check int) "one suppressed" 1 r.Lint_driver.suppressed;
  Alcotest.(check int) "both scopes counted in the budget" 2
    r.Lint_driver.scopes

(* ------------------------------------------------------------------ *)
(* Parse failures carry the real syntax-error location *)

let test_parse_location () =
  let r = Lint_driver.run ~paths:[ "fixtures_broken" ] in
  Alcotest.(check int) "one file scanned" 1 r.Lint_driver.files_scanned;
  Alcotest.(check int) "one parse finding" 1
    (count "parse" r.Lint_driver.findings);
  let f =
    List.find
      (fun f -> String.equal f.Finding.rule "parse")
      r.Lint_driver.findings
  in
  Alcotest.(check bool) "finding names the file" true
    (contains ~needle:"broken.ml" f.Finding.file);
  (* The ')' sits on line 3 column 13 -- not the historical hardcoded
     line 1, col 0. *)
  Alcotest.(check int) "real error line" 3 f.Finding.line;
  Alcotest.(check int) "real error column" 13 f.Finding.col

(* ------------------------------------------------------------------ *)
(* Phase 1: the whole-repo model resolves cross-module references *)

let load path =
  match Lint_driver.load_unit path with
  | Ok u -> u
  | Error _ -> Alcotest.fail ("fixture failed to parse: " ^ path)

let test_model () =
  let dir = Filename.concat (interproc "exn_pos") (Filename.concat "lib" "core") in
  let m =
    Model.build
      [ load (Filename.concat dir "entry.ml");
        load (Filename.concat dir "helper.ml") ]
  in
  (match Model.find_def m ~modname:"Entry" ~name:"go" with
  | None -> Alcotest.fail "Entry.go missing from model"
  | Some d ->
      let out = m.Model.calls.(d.Model.d_index) in
      Alcotest.(check int) "one outgoing edge from Entry.go" 1
        (List.length out);
      let callee = m.Model.defs.((List.hd out).Model.c_callee) in
      Alcotest.(check string) "edge resolves across modules" "Helper.boom"
        callee.Model.d_qual;
      Alcotest.(check bool) "call site not absorbed" false
        (List.hd out).Model.c_absorbed);
  match Model.find_def m ~modname:"Helper" ~name:"boom" with
  | None -> Alcotest.fail "Helper.boom missing from model"
  | Some d ->
      Alcotest.(check int) "reverse edge present" 1
        (List.length m.Model.callers.(d.Model.d_index))

(* ------------------------------------------------------------------ *)
(* Phase 2: interprocedural passes over multi-file fixture trees *)

let test_exn_flow_positive () =
  let r = Lint_driver.run ~paths:[ interproc "exn_pos" ] in
  let exn =
    List.filter
      (fun f -> String.equal f.Finding.rule "exn_flow")
      r.Lint_driver.findings
  in
  Alcotest.(check int) "one exn_flow finding" 1 (List.length exn);
  let f = List.hd exn in
  (* Reported at the entry point, not at the module holding the seed. *)
  Alcotest.(check bool) "reported at the entry point" true
    (contains ~needle:"entry.ml" f.Finding.file);
  Alcotest.(check bool) "message names the partial primitive" true
    (contains ~needle:"failwith" f.Finding.message);
  Alcotest.(check bool) "message states the chain depth" true
    (contains ~needle:"2-step chain" f.Finding.message);
  Alcotest.(check int) "chain: entry, hop, seed" 3
    (List.length f.Finding.chain);
  (match f.Finding.chain with
  | first :: _ ->
      Alcotest.(check string) "chain starts at the entry" "Entry.go"
        first.Finding.s_name
  | [] -> Alcotest.fail "chain is empty");
  (match List.rev f.Finding.chain with
  | last :: _ ->
      Alcotest.(check bool) "chain ends at the seed file" true
        (contains ~needle:"helper.ml" last.Finding.s_file)
  | [] -> ());
  let text = Finding.to_text f in
  Alcotest.(check bool) "text report renders numbered chain" true
    (contains ~needle:"    1. Entry.go" text)

let test_exn_flow_negative () =
  (* Same partial helper, but the cross-module call sits under a try:
     the absorbed edge must stop propagation. *)
  let r = Lint_driver.run ~paths:[ interproc "exn_neg" ] in
  Alcotest.(check int) "absorbed call: no exn_flow finding" 0
    (count "exn_flow" r.Lint_driver.findings)

let test_blocking_positive () =
  let r = Lint_driver.run ~paths:[ interproc "block_pos" ] in
  let blk =
    List.filter
      (fun f -> String.equal f.Finding.rule "blocking")
      r.Lint_driver.findings
  in
  Alcotest.(check int) "one blocking finding" 1 (List.length blk);
  let f = List.hd blk in
  Alcotest.(check bool) "reported at the event-loop root" true
    (contains ~needle:"loop.ml" f.Finding.file);
  Alcotest.(check bool) "message names the blocking primitive" true
    (contains ~needle:"Unix.sleepf" f.Finding.message);
  Alcotest.(check int) "chain: root, hop, seed" 3 (List.length f.Finding.chain)

let test_blocking_negative () =
  (* Unix.select is the loop's own scheduling point, never a seed; and
     without the event_loop attribute there are no roots at all. *)
  let r = Lint_driver.run ~paths:[ interproc "block_neg" ] in
  Alcotest.(check int) "select-based helper: no blocking finding" 0
    (count "blocking" r.Lint_driver.findings)

let test_resource_positive () =
  let r = Lint_driver.run ~paths:[ interproc "res_pos" ] in
  let res =
    List.filter
      (fun f -> String.equal f.Finding.rule "resource")
      r.Lint_driver.findings
  in
  Alcotest.(check int) "two resource findings" 2 (List.length res);
  List.iter
    (fun f ->
      Alcotest.(check bool) "reported at the acquisition site" true
        (contains ~needle:"owner.ml" f.Finding.file))
    res;
  Alcotest.(check int) "raising path leak (callee raises, close after)" 1
    (List.length
       (List.filter
          (fun f -> contains ~needle:"exception" f.Finding.message)
          res));
  Alcotest.(check int) "never-released leak" 1
    (List.length
       (List.filter
          (fun f -> contains ~needle:"never closed" f.Finding.message)
          res))

let test_resource_negative () =
  (* match-exception absorption with close on both outcomes, and
     ownership transfer to a callee whose parameter escapes. *)
  let r = Lint_driver.run ~paths:[ interproc "res_neg" ] in
  Alcotest.(check int) "guarded + transferred: no resource finding" 0
    (count "resource" r.Lint_driver.findings)

(* ------------------------------------------------------------------ *)
(* Context classification, registry, reporters, driver walk *)

let test_classify () =
  let c = Lint_ctx.classify ~file:"lib/core/flat.ml" in
  Alcotest.(check bool) "core" true c.Lint_ctx.core_or_broker;
  Alcotest.(check bool) "lib" true c.Lint_ctx.in_lib;
  let b = Lint_ctx.classify ~file:"lib/broker/network.ml" in
  Alcotest.(check bool) "broker" true b.Lint_ctx.core_or_broker;
  let sv = Lint_ctx.classify ~file:"lib/server/broker_server.ml" in
  Alcotest.(check bool) "server is determinism-critical" true
    sv.Lint_ctx.core_or_broker;
  let w = Lint_ctx.classify ~file:"lib/workload/dist.ml" in
  Alcotest.(check bool) "workload not core" false w.Lint_ctx.core_or_broker;
  Alcotest.(check bool) "workload in lib" true w.Lint_ctx.in_lib;
  let e = Lint_ctx.classify ~file:"bench/main.ml" in
  Alcotest.(check bool) "bench not lib" false e.Lint_ctx.in_lib;
  let bs = Lint_ctx.classify ~file:"lib\\core\\flat.ml" in
  Alcotest.(check bool) "backslash paths classify too" true
    bs.Lint_ctx.core_or_broker

let test_registry () =
  Alcotest.(check int) "five rules" 5 (List.length Registry.rules);
  Alcotest.(check int) "three passes" 3 (List.length Registry.passes);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s registered" r) true (Registry.known_rule r))
    [ "determinism"; "unsafe"; "hot_alloc"; "domain"; "partiality";
      "exn_flow"; "blocking"; "resource" ];
  Alcotest.(check bool) "unknown rejected" false
    (Registry.known_rule "nonexistent_rule")

let test_reporters () =
  let loc = Ppxlib.Location.none in
  let f =
    Finding.make ~rule:"unsafe" ~loc ~message:"quote \" slash \\ nl \n" ()
  in
  let j = Finding.to_json f in
  Alcotest.(check bool) "escapes quotes" true (contains ~needle:"\\\"" j);
  Alcotest.(check bool) "escapes backslash" true (contains ~needle:"\\\\" j);
  Alcotest.(check bool) "escapes newline" true (contains ~needle:"\\n" j);
  let report = Finding.report_json ~suppressed:7 ~scopes:9 [ f; f ] in
  Alcotest.(check bool) "count field" true
    (contains ~needle:"\"count\": 2" report);
  Alcotest.(check bool) "suppressed field" true
    (contains ~needle:"\"suppressed\": 7" report);
  Alcotest.(check bool) "scopes field" true
    (contains ~needle:"\"scopes\": 9" report);
  Alcotest.(check bool) "schema version field" true
    (contains ~needle:"\"schema_version\": 2" report);
  let text =
    Finding.to_text
      { Finding.rule = "r"; file = "f.ml"; line = 3; col = 4; cnum = 0;
        message = "m"; chain = [] }
  in
  Alcotest.(check string) "text shape" "f.ml:3:4: [r] m" text

let test_json_golden () =
  (* Character-for-character pin of schema v2: a chain-bearing finding
     and the empty report. Downstream CI parses this with jq; any
     shape change must bump [Finding.schema_version] and this test. *)
  let loc file line col =
    let p =
      { Lexing.pos_fname = file; pos_lnum = line; pos_bol = 0; pos_cnum = col }
    in
    { Ppxlib.Location.loc_start = p; loc_end = p; loc_ghost = false }
  in
  let chain =
    [ Finding.step ~name:"Entry.go" ~loc:(loc "entry.ml" 4 0);
      Finding.step ~name:"Helper.boom" ~loc:(loc "helper.ml" 4 10) ]
  in
  let f =
    Finding.make ~chain ~rule:"exn_flow" ~loc:(loc "entry.ml" 4 4)
      ~message:"Entry.go can raise" ()
  in
  let expected =
    "{\n\
    \  \"schema_version\": 2,\n\
    \  \"findings\": [\n\
    \    { \"rule\": \"exn_flow\", \"file\": \"entry.ml\", \"line\": 4, \
     \"col\": 4, \"message\": \"Entry.go can raise\", \"chain\": [{ \
     \"name\": \"Entry.go\", \"file\": \"entry.ml\", \"line\": 4, \"col\": \
     0 }, { \"name\": \"Helper.boom\", \"file\": \"helper.ml\", \"line\": \
     4, \"col\": 10 }] }\n\
    \  ],\n\
    \  \"count\": 1,\n\
    \  \"suppressed\": 4,\n\
    \  \"scopes\": 6\n\
     }\n"
  in
  Alcotest.(check string) "chain-bearing report" expected
    (Finding.report_json ~suppressed:4 ~scopes:6 [ f ]);
  let empty_expected =
    "{\n\
    \  \"schema_version\": 2,\n\
    \  \"findings\": [],\n\
    \  \"count\": 0,\n\
    \  \"suppressed\": 0,\n\
    \  \"scopes\": 0\n\
     }\n"
  in
  Alcotest.(check string) "empty report" empty_expected
    (Finding.report_json ~suppressed:0 ~scopes:0 [])

let test_driver_walk () =
  (* End-to-end over the whole fixture tree with path-derived contexts
     ("fixtures/..." is neither lib/ nor lib/core, so only the
     path-independent rules fire). Pins the full surface: walk order,
     per-file hot detection, suppression, hygiene, unused scopes. *)
  let r = Lint_driver.run ~paths:[ "fixtures" ] in
  Alcotest.(check int) "nine fixtures scanned" 9 r.Lint_driver.files_scanned;
  Alcotest.(check int) "no parse failures" 0
    (count "parse" r.Lint_driver.findings);
  Alcotest.(check int) "unsafe across tree" 7
    (count "unsafe" r.Lint_driver.findings);
  Alcotest.(check int) "hot_alloc across tree" 5
    (count "hot_alloc" r.Lint_driver.findings);
  Alcotest.(check int) "domain across tree" 5
    (count "domain" r.Lint_driver.findings);
  (* Three hygiene findings plus one unused scope: suppressed_ok.ml's
     determinism allow covers a rule that never fires outside
     lib/core, so the global driver reports it as dead. (Its
     partiality allow IS used: it blocks an exn_flow seed.) *)
  Alcotest.(check int) "hygiene + unused across tree" 4
    (count "suppression" r.Lint_driver.findings);
  Alcotest.(check int) "floating allow suppresses across tree" 1
    r.Lint_driver.suppressed;
  Alcotest.(check int) "five scopes in the budget" 5 r.Lint_driver.scopes

let test_list_rules () =
  let s = Lint_driver.list_rules () in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " listed") true (contains ~needle:r s))
    [ "determinism"; "unsafe"; "hot_alloc"; "domain"; "partiality";
      "exn_flow"; "blocking"; "resource" ]

let () =
  Alcotest.run "problint"
    [
      ( "rules",
        [
          Alcotest.test_case "determinism fires" `Quick test_determinism;
          Alcotest.test_case "unsafe fires" `Quick test_unsafe;
          Alcotest.test_case "unsafe hot exemption" `Quick
            test_unsafe_hot_exemption;
          Alcotest.test_case "hot_alloc fires" `Quick test_hot_alloc;
          Alcotest.test_case "domain fires" `Quick test_domain;
          Alcotest.test_case "domain clean worker passes" `Quick
            test_domain_clean;
          Alcotest.test_case "partiality fires" `Quick test_partiality;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "reasoned allows suppress" `Quick
            test_suppression_valid;
          Alcotest.test_case "broken allows reported" `Quick
            test_suppression_hygiene;
          Alcotest.test_case "unused allows reported" `Quick
            test_unused_suppression;
        ] );
      ( "model",
        [
          Alcotest.test_case "cross-module call graph" `Quick test_model;
          Alcotest.test_case "parse failure location" `Quick
            test_parse_location;
        ] );
      ( "passes",
        [
          Alcotest.test_case "exn_flow positive" `Quick test_exn_flow_positive;
          Alcotest.test_case "exn_flow negative" `Quick test_exn_flow_negative;
          Alcotest.test_case "blocking positive" `Quick test_blocking_positive;
          Alcotest.test_case "blocking negative" `Quick test_blocking_negative;
          Alcotest.test_case "resource positive" `Quick test_resource_positive;
          Alcotest.test_case "resource negative" `Quick test_resource_negative;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "path classification" `Quick test_classify;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "reporters" `Quick test_reporters;
          Alcotest.test_case "json golden" `Quick test_json_golden;
          Alcotest.test_case "driver walk" `Quick test_driver_walk;
          Alcotest.test_case "list rules" `Quick test_list_rules;
        ] );
    ]

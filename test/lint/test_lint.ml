(* Fixture tests for problint: parse each known-bad snippet under
   fixtures/ and assert that exactly the expected rules fire, that
   suppression mechanics behave, and that the reporters are
   well-formed. Contexts are constructed directly so path-scoped rules
   (determinism, partiality) can be exercised on files that live
   outside lib/. *)

open Probsub_lint

let fixture name = Filename.concat "fixtures" name

let check ?(core_or_broker = false) ?(in_lib = false) ?(hot = false) name =
  let ctx =
    Lint_ctx.make ~core_or_broker ~in_lib ~hot ~file:(fixture name) ()
  in
  Registry.check_structure ctx (Lint_driver.parse_file (fixture name))

let count rule findings =
  List.length (List.filter (fun f -> String.equal f.Finding.rule rule) findings)

let rules_of findings =
  List.sort_uniq String.compare (List.map (fun f -> f.Finding.rule) findings)

(* ------------------------------------------------------------------ *)
(* One test per rule: the known-bad fixture fires, and the rule stays
   silent outside its scope. *)

let test_determinism () =
  let findings, suppressed = check ~core_or_broker:true "bad_determinism.ml" in
  Alcotest.(check int) "six findings" 6 (count "determinism" findings);
  Alcotest.(check (list string)) "only determinism" [ "determinism" ]
    (rules_of findings);
  Alcotest.(check int) "nothing suppressed" 0 suppressed;
  let outside, _ = check "bad_determinism.ml" in
  Alcotest.(check int) "scoped to lib/core + lib/broker" 0
    (count "determinism" outside)

let test_unsafe () =
  let findings, _ = check "bad_unsafe.ml" in
  Alcotest.(check int) "five findings" 5 (count "unsafe" findings);
  let magic =
    List.filter
      (fun f -> String.length f.Finding.message >= 9
                && String.sub f.Finding.message 0 9 = "Obj.magic")
      findings
  in
  Alcotest.(check int) "Obj.magic among them" 1 (List.length magic)

let test_unsafe_hot_exemption () =
  (* [@@@problint.hot] in the fixture switches the exemption on via
     Suppress.collect, whatever the constructed context says. *)
  let findings, _ = check "hot_exempt.ml" in
  Alcotest.(check int) "only Obj.magic survives in a hot module" 1
    (count "unsafe" findings)

let test_hot_alloc () =
  (* Hot flag comes from the fixture's own floating attribute. *)
  let findings, _ = check "bad_hot_alloc.ml" in
  Alcotest.(check int) "five findings" 5 (count "hot_alloc" findings);
  (* A non-hot module with loops never triggers the rule. *)
  let cold, _ = check "bad_unsafe.ml" in
  Alcotest.(check int) "silent outside hot modules" 0 (count "hot_alloc" cold)

let test_domain () =
  let findings, _ = check "bad_domain.ml" in
  Alcotest.(check int) "five findings" 5 (count "domain" findings);
  Alcotest.(check (list string)) "only domain" [ "domain" ] (rules_of findings)

let test_domain_clean () =
  let findings, _ = check "domain_clean.ml" in
  Alcotest.(check int) "Atomic + worker-local state pass" 0
    (List.length findings)

let test_partiality () =
  let findings, _ = check ~in_lib:true "bad_partiality.ml" in
  Alcotest.(check int) "four findings" 4 (count "partiality" findings);
  let outside, _ = check "bad_partiality.ml" in
  Alcotest.(check int) "scoped to lib/" 0 (count "partiality" outside)

(* ------------------------------------------------------------------ *)
(* Suppression mechanics *)

let test_suppression_valid () =
  let findings, suppressed =
    check ~core_or_broker:true ~in_lib:true "suppressed_ok.ml"
  in
  Alcotest.(check int) "clean" 0 (List.length findings);
  Alcotest.(check int) "three suppressed" 3 suppressed

let test_suppression_hygiene () =
  let findings, suppressed =
    check ~core_or_broker:true ~in_lib:true "suppression_hygiene.ml"
  in
  Alcotest.(check int) "broken allows suppress nothing" 0 suppressed;
  Alcotest.(check int) "reason-less / unknown-rule / malformed reported" 3
    (count "suppression" findings);
  Alcotest.(check int) "partiality kept" 1 (count "partiality" findings);
  Alcotest.(check int) "unsafe kept" 1 (count "unsafe" findings);
  Alcotest.(check int) "determinism kept" 1 (count "determinism" findings)

(* ------------------------------------------------------------------ *)
(* Context classification, registry, reporters, driver walk *)

let test_classify () =
  let c = Lint_ctx.classify ~file:"lib/core/flat.ml" in
  Alcotest.(check bool) "core" true c.Lint_ctx.core_or_broker;
  Alcotest.(check bool) "lib" true c.Lint_ctx.in_lib;
  let b = Lint_ctx.classify ~file:"lib/broker/network.ml" in
  Alcotest.(check bool) "broker" true b.Lint_ctx.core_or_broker;
  let sv = Lint_ctx.classify ~file:"lib/server/broker_server.ml" in
  Alcotest.(check bool) "server is determinism-critical" true
    sv.Lint_ctx.core_or_broker;
  let w = Lint_ctx.classify ~file:"lib/workload/dist.ml" in
  Alcotest.(check bool) "workload not core" false w.Lint_ctx.core_or_broker;
  Alcotest.(check bool) "workload in lib" true w.Lint_ctx.in_lib;
  let e = Lint_ctx.classify ~file:"bench/main.ml" in
  Alcotest.(check bool) "bench not lib" false e.Lint_ctx.in_lib;
  let bs = Lint_ctx.classify ~file:"lib\\core\\flat.ml" in
  Alcotest.(check bool) "backslash paths classify too" true
    bs.Lint_ctx.core_or_broker

let test_registry () =
  Alcotest.(check int) "five rules" 5 (List.length Registry.all);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s registered" r) true (Registry.known_rule r))
    [ "determinism"; "unsafe"; "hot_alloc"; "domain"; "partiality" ];
  Alcotest.(check bool) "unknown rejected" false
    (Registry.known_rule "nonexistent_rule")

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec at i = i + n <= h && (String.sub hay i n = needle || at (i + 1)) in
  at 0

let test_reporters () =
  let loc = Ppxlib.Location.none in
  let f = Finding.make ~rule:"unsafe" ~loc ~message:"quote \" slash \\ nl \n" in
  let j = Finding.to_json f in
  Alcotest.(check bool) "escapes quotes" true (contains ~needle:"\\\"" j);
  Alcotest.(check bool) "escapes backslash" true (contains ~needle:"\\\\" j);
  Alcotest.(check bool) "escapes newline" true (contains ~needle:"\\n" j);
  let report = Finding.report_json ~suppressed:7 [ f; f ] in
  Alcotest.(check bool) "count field" true
    (contains ~needle:"\"count\": 2" report);
  Alcotest.(check bool) "suppressed field" true
    (contains ~needle:"\"suppressed\": 7" report);
  let empty = Finding.report_json ~suppressed:0 [] in
  Alcotest.(check bool) "empty findings array" true
    (contains ~needle:"\"findings\": []" empty);
  let text =
    Finding.to_text
      { Finding.rule = "r"; file = "f.ml"; line = 3; col = 4; cnum = 0;
        message = "m" }
  in
  Alcotest.(check string) "text shape" "f.ml:3:4: [r] m" text

let test_driver_walk () =
  (* End-to-end over the whole fixture tree with path-derived contexts
     ("fixtures/..." is neither lib/ nor lib/core, so only the
     path-independent rules fire). Pins the full surface: walk order,
     per-file hot detection, suppression, hygiene. *)
  let r = Lint_driver.run ~paths:[ "fixtures" ] in
  Alcotest.(check int) "nine fixtures scanned" 9 r.Lint_driver.files_scanned;
  Alcotest.(check int) "no parse failures" 0
    (count "parse" r.Lint_driver.findings);
  Alcotest.(check int) "unsafe across tree" 7
    (count "unsafe" r.Lint_driver.findings);
  Alcotest.(check int) "hot_alloc across tree" 5
    (count "hot_alloc" r.Lint_driver.findings);
  Alcotest.(check int) "domain across tree" 5
    (count "domain" r.Lint_driver.findings);
  Alcotest.(check int) "hygiene across tree" 3
    (count "suppression" r.Lint_driver.findings);
  Alcotest.(check int) "floating allow suppresses across tree" 1
    r.Lint_driver.suppressed

let test_list_rules () =
  let s = Lint_driver.list_rules () in
  List.iter
    (fun r ->
      Alcotest.(check bool) (r ^ " listed") true (contains ~needle:r s))
    [ "determinism"; "unsafe"; "hot_alloc"; "domain"; "partiality" ]

let () =
  Alcotest.run "problint"
    [
      ( "rules",
        [
          Alcotest.test_case "determinism fires" `Quick test_determinism;
          Alcotest.test_case "unsafe fires" `Quick test_unsafe;
          Alcotest.test_case "unsafe hot exemption" `Quick
            test_unsafe_hot_exemption;
          Alcotest.test_case "hot_alloc fires" `Quick test_hot_alloc;
          Alcotest.test_case "domain fires" `Quick test_domain;
          Alcotest.test_case "domain clean worker passes" `Quick
            test_domain_clean;
          Alcotest.test_case "partiality fires" `Quick test_partiality;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "reasoned allows suppress" `Quick
            test_suppression_valid;
          Alcotest.test_case "broken allows reported" `Quick
            test_suppression_hygiene;
        ] );
      ( "infrastructure",
        [
          Alcotest.test_case "path classification" `Quick test_classify;
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "reporters" `Quick test_reporters;
          Alcotest.test_case "driver walk" `Quick test_driver_walk;
          Alcotest.test_case "list rules" `Quick test_list_rules;
        ] );
    ]

let ok = 1

let broken = ) 2

let after = 3

(* Lint fixture: anonymous-failure constructs the partiality rule
   forbids in library code. *)

let boom () = failwith "nope"
let first l = List.hd l
let force o = Option.get o
let unreachable () = assert false

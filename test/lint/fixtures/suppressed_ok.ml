(* Lint fixture: every finding carries a reasoned allow annotation —
   expression-level, binding-level and floating. The file must come
   out clean with suppressed = 3. *)

let keys tbl =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
  [@problint.allow determinism "collected keys are sorted on the next line"])
  |> List.sort compare

let[@problint.allow partiality "fixture: invariant documented here"] force o =
  Option.get o

[@@@problint.allow unsafe "fixture: rest-of-file identity comparisons"]

let same a b = a == b

(* Lint fixture: worker closures capturing non-Atomic mutable state,
   in every shape the domain rule recognises. Expected flags:
   [counter :=] and [!counter] in the inline closure, the
   [Hashtbl.replace] in the named worker, the [Array.set] and the
   mutable-field write — five findings. *)

let counter_race n =
  let counter = ref 0 in
  let d =
    Domain.spawn (fun () ->
        for _ = 1 to n do
          counter := !counter + 1
        done)
  in
  Domain.join d

let named_worker_race table seeds =
  let worker i () =
    let seed = Array.length seeds + i in
    Hashtbl.replace table i seed;
    seed
  in
  let doms = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.map Domain.join doms

let array_write_race cells =
  let d = Domain.spawn (fun () -> Array.set cells 0 1) in
  Domain.join d

type box = { mutable value : int }

let field_race (b : box) =
  let d = Domain.spawn (fun () -> b.value <- 42) in
  Domain.join d

(* Lint fixture: the disciplined version of bad_domain — all sharing
   goes through Atomic, per-domain state is created inside the worker.
   The domain rule must report nothing. *)

let atomic_ok n =
  let counter = Atomic.make 0 in
  let d =
    Domain.spawn (fun () ->
        for _ = 1 to n do
          Atomic.incr counter
        done)
  in
  Domain.join d;
  Atomic.get counter

let private_state_ok n =
  let worker () =
    let local = ref 0 in
    for _ = 1 to n do
      local := !local + 1
    done;
    !local
  in
  let d = Domain.spawn worker in
  Domain.join d

(* Lint fixture: every construct the determinism rule forbids. These
   files are parsed by the fixture tests, never compiled. *)

let roll () = Random.int 6
let stateful st = Random.State.bool st
let stamp () = Sys.time ()
let wall () = Unix.gettimeofday ()
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
let dump tbl = Hashtbl.iter (fun k v -> Printf.printf "%d %d\n" k v) tbl

[@@@problint.hot]

(* Lint fixture: inside a hot module the unsafe rule tolerates
   unsafe_* accessors and physical equality — but never Obj.magic.
   Expected: exactly one unsafe finding (the Obj.magic). *)

let peek a i = Array.unsafe_get a i
let same a b = a == b
let coerce x = Obj.magic x

[@@@problint.hot]

(* Lint fixture: allocating constructs inside for/while bodies of a
   hot module. Expected flags: the tuple in [tuples], the closure in
   [closures], the [::] constructor AND its argument tuple in
   [conses], and [Array.make] in [arrays] — five findings. *)

let tuples n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let pair = (i, i + 1) in
    acc := !acc + fst pair
  done;
  !acc

let closures n =
  let acc = ref 0 in
  for i = 0 to n - 1 do
    let f = fun x -> x + i in
    acc := !acc + f i
  done;
  !acc

let conses xs =
  let acc = ref [] in
  while !acc = [] do
    acc := 1 :: xs
  done;
  !acc

let arrays n =
  for _ = 0 to n - 1 do
    ignore (Array.make 4 0)
  done

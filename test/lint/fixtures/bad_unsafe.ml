(* Lint fixture: the unsafe rule outside a hot module — Obj.magic,
   bounds-check-skipping accessors, physical equality. *)

let coerce (x : int) : string = Obj.magic x
let peek a i = Array.unsafe_get a i
let poke b i c = Bytes.unsafe_set b i c
let same a b = a == b
let diff a b = a != b

(* Lint fixture: broken suppressions. A reason-less allow, an allow
   naming an unknown rule, and a malformed payload: none of them
   suppress, and each is reported under the pseudo-rule
   "suppression". Expected: 3 suppression findings plus the original
   partiality / unsafe / determinism findings, suppressed = 0. *)

let force o = (Option.get o [@problint.allow partiality])

let same a b = ((a == b) [@problint.allow nonexistent_rule "not a rule"])

let keys tbl =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] [@problint.allow 42])

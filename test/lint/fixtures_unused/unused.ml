(* One live suppression (unsafe fires on Obj.magic and is silenced)
   and one dead one (determinism never fires here). *)
let live : int = (Obj.magic 1 [@problint.allow unsafe "boundary cast, audited"])

let dead x =
  (x + 1 [@problint.allow determinism "stale: nothing here folds a hashtable"])

(* Safe counterparts of the res_pos leaks:
   - copy absorbs the raising call with a match-exception and closes
     on both outcomes;
   - handoff transfers ownership to Keeper.keep, whose body escapes
     its parameter (interprocedural: only Keeper's body shows that). *)
let copy path n =
  let ic = open_in_bin path in
  match Risky2.validate n with
  | v ->
      close_in ic;
      v
  | exception e ->
      close_in ic;
      raise e

let handoff path =
  let ic = open_in_bin path in
  Keeper.keep ic

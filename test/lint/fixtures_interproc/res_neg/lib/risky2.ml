let validate n = if n < 0 then failwith "risky2: negative" else n

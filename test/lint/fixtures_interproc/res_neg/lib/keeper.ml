(* Stores the channel it is handed: callers transfer ownership. *)
let keep ic = Some ic

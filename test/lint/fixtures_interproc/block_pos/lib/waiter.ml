(* The blocking primitive lives here, outside any event-loop module. *)
let pause () = Unix.sleepf 0.25

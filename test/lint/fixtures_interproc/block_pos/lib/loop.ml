(* Event-loop module: every definition here is a blocking-taint root.
   The sleep is two modules away, so only the interprocedural pass can
   see that tick stalls the loop. *)
[@@@problint.event_loop]

let tick () = Waiter.pause ()

(* Depth-1 wrapper around a partial primitive: the partial seed lives
   here, but exn_flow only reports partial seeds at depth >= 2, so the
   finding must surface at the cross-module caller, not here. *)
let boom x = if x > 0 then x else failwith "helper: non-positive"

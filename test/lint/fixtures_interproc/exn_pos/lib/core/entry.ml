(* Entry point: contains no partial primitive itself.  The defect is
   only visible interprocedurally -- Helper.boom can raise Failure and
   nothing on this path absorbs it. *)
let go n = Helper.boom n + 1

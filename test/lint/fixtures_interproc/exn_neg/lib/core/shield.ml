(* Same partial helper as the positive fixture... *)
let boom x = if x > 0 then x else failwith "shield: non-positive"

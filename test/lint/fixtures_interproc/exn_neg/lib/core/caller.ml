(* ...but the cross-module call sits inside a try, so the raise is
   absorbed before it escapes the entry point: no finding. *)
let go n = try Shield.boom n + 1 with Failure _ -> 0

(* A validator that can raise: the owner module below opens a channel
   and calls this before closing it.  Whether the call can raise is
   only knowable from this module's body. *)
let validate n = if n < 0 then failwith "risky: negative" else n

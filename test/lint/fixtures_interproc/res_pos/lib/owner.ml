(* Two distinct leaks:
   - copy releases ic on the normal path but Risky.validate can raise
     first, so the raising path leaks (interprocedural: this file
     alone cannot know validate raises);
   - drop never releases ic at all. *)
let copy path n =
  let ic = open_in_bin path in
  let v = Risky.validate n in
  close_in ic;
  v

let drop path =
  let ic = open_in_bin path in
  String.length (input_line ic)

(* Unix.select is the loop's own scheduling point, never a seed. *)
let pause fds = Unix.select fds [] [] 0.01

(* Event-loop root calling a non-blocking helper: no finding. *)
[@@@problint.event_loop]

let tick fds = Poller.pause fds

(* Failover suite: the WAL resume contract the shipper relies on, fence
   journalling and its compaction survival, ship/apply state
   equivalence, the client backoff-reset pin, in-process promotion and
   epoch fencing, and the multi-process failover chaos scenario (fork a
   fleet with a hot standby, SIGKILL the primary mid-refresh-wave,
   audit that the promoted standby misses nothing).

   The chaos seed comes from PROBSUB_CHAOS_SEED when set, so CI can
   sweep a seed matrix over the same binary; locally it defaults to
   42. *)

open Probsub_core
open Probsub_store_log
module Repl = Probsub_server.Repl
module Wire = Probsub_server.Wire
module Conn = Probsub_server.Conn
module Broker_server = Probsub_server.Broker_server
module Loadgen = Probsub_server.Loadgen
module Harness = Probsub_server.Harness
module Audit = Probsub_broker.Audit

let sub lo hi = Subscription.of_bounds [ (lo, hi) ]
let pairwise = Subscription_store.Pairwise_policy

let sleepf s = try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* ------------------------------------------------------------------ *)
(* Wal.scan_from: resuming from any valid offset yields exactly the
   fresh-scan suffix — including on WALs that crossed a compaction. *)

(* Drive a durable store through an arbitrary op sequence (adds,
   removes, bindings, epoch notes, fences, compactions) and return the
   final WAL bytes. *)
let build_wal ops =
  let dev, wal_file, _snap = Device.in_memory () in
  let store, log =
    Store_log.fresh ~policy:pairwise ~device:dev ~arity:1 ~seed:11 ()
  in
  let live = ref [] in
  List.iter
    (fun (k, n) ->
      match k mod 6 with
      | 0 ->
          let id, _ = Subscription_store.add store (sub (n mod 40) ((n mod 40) + 5)) in
          live := id :: !live
      | 1 -> (
          match !live with
          | [] -> ()
          | id :: rest ->
              ignore (Subscription_store.remove store id);
              live := rest)
      | 2 ->
          Store_log.log_binding log
            { Codec.b_rid = n; b_key = n; b_okind = 1; b_oarg = 0; b_epoch = 0 }
      | 3 -> Store_log.log_epoch log ~key:(n mod 7) ~epoch:(n + 1)
      | 4 -> Store_log.log_fence log ~epoch:(n + 1)
      | _ -> Store_log.compact log store ~bindings:[])
    ops;
  Sim_file.contents wal_file

let prop_scan_from_resume =
  QCheck.Test.make ~count:100
    ~name:"Wal.scan_from at any entry boundary yields the fresh-scan suffix"
    QCheck.(list (pair (int_bound 5) (int_bound 50)))
    (fun ops ->
      let bytes = build_wal ops in
      let full = Wal.scan bytes in
      if full.Wal.stop <> Wal.Clean then
        QCheck.Test.fail_reportf "undamaged WAL scanned unclean";
      let rec check prev = function
        | [] -> true
        | (e : Wal.entry) :: rest ->
            let s = Wal.scan_from bytes ~pos:e.Wal.e_offset ~last_lsn:prev in
            s.Wal.records = e :: rest
            && s.Wal.stop = Wal.Clean
            && s.Wal.valid_bytes = full.Wal.valid_bytes
            && check e.Wal.e_lsn rest
      in
      let last_lsn =
        match List.rev full.Wal.records with
        | [] -> -1
        | e :: _ -> e.Wal.e_lsn
      in
      let at_end =
        Wal.scan_from bytes ~pos:full.Wal.valid_bytes ~last_lsn
      in
      check (-1) full.Wal.records
      && at_end.Wal.records = []
      && at_end.Wal.stop = Wal.Clean)

(* ------------------------------------------------------------------ *)
(* Fence records: codec roundtrip, recovery, compaction survival. *)

let test_fence_codec () =
  List.iter
    (fun epoch ->
      let r = Codec.Fence { epoch } in
      match Codec.decode (Codec.encode r) with
      | Ok r' -> Alcotest.(check bool) "roundtrip" true (r = r')
      | Error e -> Alcotest.failf "fence decode failed: %s" e)
    [ 0; 1; 7; 1_000_000 ]

let test_fence_recovery_and_compaction () =
  let dev, _, _ = Device.in_memory () in
  let store, log =
    Store_log.fresh ~policy:pairwise ~device:dev ~arity:1 ~seed:3 ()
  in
  Alcotest.(check int) "fresh fence" 0 (Store_log.fence log);
  Store_log.log_fence log ~epoch:3;
  Store_log.log_fence log ~epoch:2 (* monotone: no-op *);
  Alcotest.(check int) "raised fence" 3 (Store_log.fence log);
  (match Store_log.recover ~device:dev () with
  | Error e -> Alcotest.failf "recover: %s" e
  | Ok r -> Alcotest.(check int) "recovered fence" 3 r.Store_log.r_fence);
  (* The snapshot does not carry the fence; compaction must re-journal
     it so a post-compaction recovery still refuses the old epoch. *)
  ignore (Subscription_store.add store (sub 0 5));
  Store_log.compact log store ~bindings:[];
  match Store_log.recover ~device:dev () with
  | Error e -> Alcotest.failf "recover after compact: %s" e
  | Ok r ->
      Alcotest.(check int) "fence survives compaction" 3 r.Store_log.r_fence

(* ------------------------------------------------------------------ *)
(* Ship/apply: the standby's device recovers to a store equal_state to
   the primary's at every shipped prefix, across compaction rebases and
   resume handshakes. *)

let apply_all apply events =
  List.iter
    (fun e ->
      match Repl.Apply.apply apply e with
      | Ok _ -> ()
      | Error m -> Alcotest.failf "apply: %s" m)
    events

let check_equal name store dev =
  match Store_log.recover ~device:dev () with
  | Error e -> Alcotest.failf "%s: standby recover: %s" name e
  | Ok r ->
      Alcotest.(check bool)
        (name ^ ": standby equal_state to primary")
        true
        (Subscription_store.equal_state store r.Store_log.r_store)

let test_ship_apply_equivalence () =
  let primary_dev, _, _ = Device.in_memory () in
  let ship, wrapped = Repl.Ship.tap primary_dev in
  let store, log =
    Store_log.fresh ~policy:pairwise ~device:wrapped ~arity:1 ~seed:7 ()
  in
  let standby_dev, _, _ = Device.in_memory () in
  let apply = Repl.Apply.create ~device:standby_dev in
  let sync name =
    apply_all apply (Repl.Ship.drain ship);
    check_equal name store standby_dev;
    Alcotest.(check int)
      (name ^ ": positions agree")
      (Repl.Ship.next_lsn ship) (Repl.Apply.next_lsn apply)
  in
  sync "genesis";
  let ids = ref [] in
  for i = 0 to 19 do
    let id, _ = Subscription_store.add store (sub i (i + 4)) in
    ids := id :: !ids;
    if i mod 3 = 0 then sync (Printf.sprintf "after add %d" i)
  done;
  sync "all adds";
  (match !ids with
  | a :: b :: _ ->
      ignore (Subscription_store.remove store a);
      ignore (Subscription_store.remove store b)
  | _ -> Alcotest.fail "no ids");
  sync "after removes";
  (* Compaction becomes a snapshot rebase on the wire. *)
  Store_log.compact log store ~bindings:[];
  sync "after compaction";
  ignore (Subscription_store.add store (sub 100 104));
  sync "post-compaction append";
  (* Replaying an already-applied chunk must be an idempotent no-op:
     stale frames are skipped by LSN. *)
  let before = Repl.Apply.next_lsn apply in
  apply_all apply (Repl.Ship.resume ship ~from_lsn:0);
  Alcotest.(check int) "stale replay is idempotent" before
    (Repl.Apply.next_lsn apply);
  check_equal "after stale replay" store standby_dev;
  (* A fresh standby handshaking from zero gets a stream that lands it
     on the same state. *)
  let fresh_dev, _, _ = Device.in_memory () in
  let fresh_apply = Repl.Apply.create ~device:fresh_dev in
  apply_all fresh_apply
    (Repl.Ship.resume ship ~from_lsn:(Repl.Apply.next_lsn fresh_apply));
  check_equal "fresh standby resume" store fresh_dev;
  (* A current standby gets nothing. *)
  Alcotest.(check int) "current standby resumes empty" 0
    (List.length (Repl.Ship.resume ship ~from_lsn:(Repl.Ship.next_lsn ship)))

(* ------------------------------------------------------------------ *)
(* In-process servers: no fork, two Broker_server values stepped by
   hand in one thread. *)

let temp_dir () = Filename.temp_dir "probsub-failover" ""

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

let pump ?(servers = []) ?(clients = []) ~until ~timeout msg =
  let deadline = Unix.gettimeofday () +. timeout in
  let rec go () =
    if until () then ()
    else if Unix.gettimeofday () >= deadline then
      Alcotest.failf "timed out: %s" msg
    else begin
      List.iter Broker_server.step servers;
      List.iter Loadgen.poll clients;
      go ()
    end
  in
  go ()

(* The client reconnect backoff must restart from the base delay after
   a successful handshake — pinned via the [backoff_attempts] accessor
   so the accumulated-cap regression cannot silently return. *)
let test_backoff_reset_after_welcome () =
  let sock_dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf sock_dir)
    (fun () ->
      let client =
        Loadgen.connect_client ~sock_dir ~broker:0 ~client:1 ~seed:5 ()
      in
      Alcotest.(check int) "no attempts yet" 0 (Loadgen.backoff_attempts client);
      (* Nobody listening: every poll-driven dial fails and burns an
         attempt. *)
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        Loadgen.backoff_attempts client < 3 && Unix.gettimeofday () < deadline
      do
        Loadgen.poll client;
        sleepf 0.01
      done;
      Alcotest.(check bool)
        "attempts accumulated while down" true
        (Loadgen.backoff_attempts client >= 3);
      (* Bring the broker up; the next successful Welcome must zero the
         counter. *)
      let cfg =
        Broker_server.config ~id:0 ~neighbors:[] ~sock_dir ~arity:1 ~seed:1 ()
      in
      let srv = Broker_server.create cfg in
      Fun.protect
        ~finally:(fun () -> Broker_server.shutdown srv)
        (fun () ->
          pump ~servers:[ srv ] ~clients:[ client ]
            ~until:(fun () -> Loadgen.connected client)
            ~timeout:10.0 "client never welcomed";
          Alcotest.(check int) "backoff reset by Welcome" 0
            (Loadgen.backoff_attempts client));
      Loadgen.close_client client)

(* A primary that hears a higher fence epoch for its own identity on
   any handshake demotes: closes its listening socket and every
   connection, and never acks a write again. *)
let test_demote_on_higher_epoch () =
  let sock_dir = temp_dir () in
  Fun.protect
    ~finally:(fun () -> rm_rf sock_dir)
    (fun () ->
      let cfg =
        Broker_server.config ~id:0 ~neighbors:[] ~sock_dir ~arity:1 ~seed:2 ()
      in
      let srv = Broker_server.create cfg in
      Alcotest.(check bool)
        "starts primary" true
        (Broker_server.role srv = Broker_server.Primary);
      let path = Broker_server.socket_path ~sock_dir 0 in
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.connect fd (Unix.ADDR_UNIX path);
      let c = Conn.create fd in
      ignore
        (Conn.send_msg c ~seq:0
           (Wire.Hello
              {
                role = Wire.Client_role 9;
                session = 1;
                last_seen = 0;
                epoch = 99;
              }));
      ignore (Conn.flush c);
      let deadline = Unix.gettimeofday () +. 5.0 in
      while
        Broker_server.role srv <> Broker_server.Fenced
        && Unix.gettimeofday () < deadline
      do
        Broker_server.step srv
      done;
      Conn.close c;
      Alcotest.(check bool)
        "demoted to fenced" true
        (Broker_server.role srv = Broker_server.Fenced);
      Alcotest.(check int) "adopted the higher epoch" 99
        (Broker_server.epoch srv);
      (* Fenced means no listener: a fresh dial must be refused, so no
         write can ever be acked by the superseded primary. *)
      let fd2 = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (match Unix.connect fd2 (Unix.ADDR_UNIX path) with
      | () -> Alcotest.fail "fenced primary still accepts connections"
      | exception Unix.Unix_error _ -> ());
      (try Unix.close fd2 with Unix.Unix_error _ -> ());
      Broker_server.shutdown srv)

(* Full in-process failover: primary + standby + client, primary dies,
   standby promotes over the replicated WAL, raises the epoch, takes
   the socket, and serves the client's pre-crash subscription. *)
let test_inprocess_promotion () =
  let sock_dir = temp_dir () in
  let wal_root = temp_dir () in
  Fun.protect
    ~finally:(fun () ->
      rm_rf sock_dir;
      rm_rf wal_root)
    (fun () ->
      let p_cfg =
        Broker_server.config ~id:0 ~neighbors:[] ~sock_dir ~arity:1 ~seed:1
          ~wal_dir:(Some (Filename.concat wal_root "primary"))
          ~repl_hb_interval:0.05 ~repl_hb_timeout:0.3 ()
      in
      let s_cfg =
        Broker_server.config ~id:0 ~neighbors:[] ~sock_dir ~arity:1 ~seed:2
          ~wal_dir:(Some (Filename.concat wal_root "standby"))
          ~standby_of:(Some (Broker_server.socket_path ~sock_dir 0))
          ~repl_hb_interval:0.05 ~repl_hb_timeout:0.3 ()
      in
      let p = Broker_server.create p_cfg in
      let s = Broker_server.create s_cfg in
      Alcotest.(check bool)
        "standby role" true
        (Broker_server.role s = Broker_server.Standby);
      let client =
        Loadgen.connect_client ~sock_dir ~broker:0 ~client:1 ~seed:9 ()
      in
      pump ~servers:[ p; s ] ~clients:[ client ]
        ~until:(fun () -> Loadgen.connected client)
        ~timeout:10.0 "client never connected to the primary";
      Loadgen.subscribe client ~key:1 (sub 10 20);
      pump ~servers:[ p; s ] ~clients:[ client ]
        ~until:(fun () -> Loadgen.in_flight client = 0)
        ~timeout:10.0 "subscribe never acked";
      (* A few heartbeat rounds so the shipped WAL reaches the standby
         before the crash. *)
      let settle = Unix.gettimeofday () +. 0.3 in
      pump ~servers:[ p; s ] ~clients:[ client ]
        ~until:(fun () -> Unix.gettimeofday () >= settle)
        ~timeout:5.0 "settle";
      (* The primary dies; only the standby is stepped from here on. *)
      Broker_server.shutdown p;
      pump ~servers:[ s ] ~clients:[ client ]
        ~until:(fun () -> Broker_server.role s = Broker_server.Primary)
        ~timeout:15.0 "standby never promoted";
      Alcotest.(check bool) "epoch raised" true (Broker_server.epoch s >= 1);
      pump ~servers:[ s ] ~clients:[ client ]
        ~until:(fun () -> Loadgen.connected client)
        ~timeout:15.0 "client never reconnected to the new primary";
      Alcotest.(check int) "one failover reconnect" 1
        (Loadgen.failover_reconnects client);
      Alcotest.(check int) "client saw the raised epoch"
        (Broker_server.epoch s) (Loadgen.epoch_seen client);
      (* The pre-crash subscription must have crossed the replication
         stream: a matching publication round-trips through the
         promoted standby. *)
      let pub = Publication.point [| 15 |] in
      let pub_id = 777 in
      let sent = ref (Loadgen.publish client ~id:pub_id pub) in
      pump ~servers:[ s ] ~clients:[ client ]
        ~until:(fun () ->
          if not !sent then sent := Loadgen.publish client ~id:pub_id pub;
          List.exists
            (fun n -> n.Loadgen.n_pub = pub_id)
            (Loadgen.notifications client))
        ~timeout:15.0 "publication never delivered by the promoted standby";
      Loadgen.close_client client;
      Broker_server.shutdown s)

(* ------------------------------------------------------------------ *)
(* The multi-process failover chaos scenario *)

let chaos_seed () =
  match Option.bind (Sys.getenv_opt "PROBSUB_CHAOS_SEED") int_of_string_opt with
  | Some seed -> seed
  | None -> 42

let test_chaos_failover () =
  let seed = chaos_seed () in
  let cc = Harness.config ~seed ~pubs:10 () in
  let r = Harness.run_failover cc in
  let phase name (p : Loadgen.result) =
    let report = p.Loadgen.audit in
    if not (Audit.is_clean report) then
      Alcotest.failf "%s phase (seed %d): %a" name seed Audit.pp report;
    Alcotest.(check bool)
      (Printf.sprintf "%s phase verdicts byte-identical (seed %d)" name seed)
      true p.Loadgen.verdicts_match;
    Alcotest.(check bool)
      (Printf.sprintf "%s phase delivered everything (seed %d)" name seed)
      true
      (p.Loadgen.expected = p.Loadgen.delivered)
  in
  phase "pre-kill" r.Harness.pre;
  phase "post-failover" r.Harness.post;
  Alcotest.(check bool)
    (Printf.sprintf "audit clean across failover (seed %d)" seed)
    true r.Harness.clean;
  Alcotest.(check bool)
    (Printf.sprintf "takeover detected promptly (%.3fs, seed %d)"
       r.Harness.detection_seconds seed)
    true
    (r.Harness.detection_seconds < 10.0);
  Alcotest.(check bool)
    (Printf.sprintf "outage bounded (%.3fs, seed %d)" r.Harness.outage_seconds
       seed)
    true
    (r.Harness.outage_seconds < 30.0);
  Alcotest.(check bool)
    (Printf.sprintf "clients resumed at the new epoch (%d, seed %d)"
       r.Harness.failover_reconnects seed)
    true
    (r.Harness.failover_reconnects >= 1)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_scan_from_resume;
    Alcotest.test_case "fence codec roundtrip" `Quick test_fence_codec;
    Alcotest.test_case "fence recovery and compaction survival" `Quick
      test_fence_recovery_and_compaction;
    Alcotest.test_case "ship/apply state equivalence" `Quick
      test_ship_apply_equivalence;
    Alcotest.test_case "backoff resets after welcome" `Quick
      test_backoff_reset_after_welcome;
    Alcotest.test_case "higher epoch demotes and fences" `Quick
      test_demote_on_higher_epoch;
    Alcotest.test_case "in-process promotion serves replicated state" `Quick
      test_inprocess_promotion;
    Alcotest.test_case "kill -9 failover: hot standby misses nothing" `Slow
      test_chaos_failover;
  ]

(* Flat-kernel equivalence: the packed SoA kernels must agree with the
   boxed reference implementations bit-for-bit — same answers, same
   draw stream, same witnesses — and the engine's candidate pruning
   must be invisible in every verdict. Workloads mix uniform qcheck
   instances with the paper's §6.4 popularity distributions
   (Probsub_workload.Dist). *)

open Probsub_core
open Probsub_workload

(* ------------------------------------------------------------------ *)
(* Workload: Pareto-centred, normal-width subscriptions (§6.4 shapes),
   scaled so that intersections, covers and misses all occur. *)

let dist_interval rng =
  let centre =
    min 150 (int_of_float (Dist.pareto rng ~scale:20.0 ~shape:1.0))
  in
  let w = Dist.normal_int rng ~mean:40.0 ~stddev:20.0 ~min:1 ~max:120 in
  let lo = max 0 (centre - (w / 2)) in
  Interval.make ~lo ~hi:(lo + w)

let dist_sub rng ~m =
  Subscription.of_list (List.init m (fun _ -> dist_interval rng))

let dist_problem rng ~m ~k =
  let s = dist_sub rng ~m in
  (* Mix in rows derived from s so group covers actually happen: a
     covering split of s plus pure Dist rows that may or may not
     intersect. *)
  let subs =
    Array.init k (fun i ->
        if i < k / 3 then
          Subscription.of_list
            (List.init m (fun j ->
                 let r = Subscription.range s j in
                 let lo = Interval.lo r and hi = Interval.hi r in
                 let mid = (lo + hi) / 2 in
                 if i mod 2 = 0 then Interval.make ~lo:(lo - 1) ~hi:(mid + 1)
                 else Interval.make ~lo:(mid - 1) ~hi:(hi + 1)
                 |> fun iv -> if j mod 2 = 0 then iv else r))
        else dist_sub rng ~m)
  in
  (s, subs)

(* ------------------------------------------------------------------ *)
(* Kernel equivalence: pack accessors, covers, escapes, draw stream. *)

let test_pack_roundtrip () =
  let rng = Prng.of_int 11 in
  for _ = 1 to 50 do
    let m = 1 + Prng.int rng 4 in
    let k = Prng.int rng 12 in
    let subs = Array.init k (fun _ -> dist_sub rng ~m) in
    let packed = Flat.pack ~m subs in
    Alcotest.(check int) "k" k (Flat.k packed);
    Alcotest.(check int) "m" m (Flat.m packed);
    Array.iteri
      (fun i sub ->
        Alcotest.(check bool)
          "row_sub round-trips" true
          (Subscription.equal sub (Flat.row_sub packed i));
        for j = 0 to m - 1 do
          let r = Subscription.range sub j in
          Alcotest.(check int) "lo" (Interval.lo r)
            (Flat.lo packed ~row:i ~attr:j);
          Alcotest.(check int) "hi" (Interval.hi r)
            (Flat.hi packed ~row:i ~attr:j)
        done)
      subs
  done

let test_gather_is_pack_of_subset () =
  let rng = Prng.of_int 12 in
  for _ = 1 to 50 do
    let m = 1 + Prng.int rng 4 in
    let k = 1 + Prng.int rng 12 in
    let subs = Array.init k (fun _ -> dist_sub rng ~m) in
    let packed = Flat.pack ~m subs in
    let rows =
      Array.of_list
        (List.filter (fun _ -> Prng.int rng 2 = 0) (List.init k Fun.id))
    in
    let gathered = Flat.gather packed rows in
    let direct = Flat.pack ~m (Array.map (fun i -> subs.(i)) rows) in
    Alcotest.(check int) "k" (Array.length rows) (Flat.k gathered);
    for i = 0 to Array.length rows - 1 do
      for j = 0 to m - 1 do
        Alcotest.(check int) "lo"
          (Flat.lo direct ~row:i ~attr:j)
          (Flat.lo gathered ~row:i ~attr:j);
        Alcotest.(check int) "hi"
          (Flat.hi direct ~row:i ~attr:j)
          (Flat.hi gathered ~row:i ~attr:j)
      done
    done
  done

let test_kernels_match_boxed () =
  let rng = Prng.of_int 13 in
  for _ = 1 to 100 do
    let m = 1 + Prng.int rng 4 in
    let k = Prng.int rng 10 in
    let s, subs = dist_problem rng ~m ~k in
    let packed = Flat.pack ~m subs in
    let sbox = Flat.box_of_sub s in
    let p = Array.make m 0 in
    for _ = 1 to 20 do
      Flat.random_point_into ~rng sbox p;
      Alcotest.(check bool)
        "escapes agrees with boxed reference"
        (Rspc.escapes p subs) (Flat.escapes packed p);
      Array.iteri
        (fun row sub ->
          Alcotest.(check bool)
            "covers_row agrees with covers_point"
            (Subscription.covers_point sub p)
            (Flat.covers_row packed ~row p))
        subs
    done
  done

let test_draw_stream_identical () =
  (* The packed draw must consume the PRNG exactly like the boxed
     reference: same seed, same points, forever. *)
  let rng_flat = Prng.of_int 14 and rng_boxed = Prng.of_int 14 in
  let gen = Prng.of_int 15 in
  for _ = 1 to 100 do
    let m = 1 + Prng.int gen 5 in
    let s = dist_sub gen ~m in
    let sbox = Flat.box_of_sub s in
    let p = Array.make m 0 in
    Flat.random_point_into ~rng:rng_flat sbox p;
    let q = Rspc.random_point ~rng:rng_boxed s in
    Alcotest.(check (array int)) "same stream" q p
  done

let test_run_packed_matches_boxed_loop () =
  let gen = Prng.of_int 16 in
  for _ = 1 to 60 do
    let m = 1 + Prng.int gen 3 in
    let k = Prng.int gen 8 in
    let s, subs = dist_problem gen ~m ~k in
    let seed = Prng.int gen 1_000_000 in
    let d = 1 + Prng.int gen 200 in
    (* Boxed reference trial loop, spelled out. *)
    let rng = Prng.of_int seed in
    let reference =
      let rec loop i =
        if i >= d then (None, d)
        else
          let p = Rspc.random_point ~rng s in
          if Rspc.escapes p subs then (Some p, i + 1) else loop (i + 1)
      in
      loop 0
    in
    let run = Rspc.run ~rng:(Prng.of_int seed) ~d ~s subs in
    (match (reference, run.Rspc.outcome) with
    | (None, _), Rspc.Probably_covered -> ()
    | (Some p, _), Rspc.Not_covered w ->
        Alcotest.(check (array int)) "same witness" p w
    | (None, _), Rspc.Not_covered _ | (Some _, _), Rspc.Probably_covered ->
        Alcotest.fail "packed and boxed runs disagree");
    Alcotest.(check int) "same iteration count" (snd reference)
      run.Rspc.iterations
  done

(* ------------------------------------------------------------------ *)
(* Pruning: both paths agree with each other and with brute force. *)

let test_intersecting_paths_agree () =
  let rng = Prng.of_int 17 in
  for _ = 1 to 100 do
    let m = 1 + Prng.int rng 4 in
    let k = Prng.int rng 20 in
    let s, subs = dist_problem rng ~m ~k in
    let packed = Flat.pack ~m subs in
    let sbox = Flat.box_of_sub s in
    let brute =
      Array.of_list
        (List.filter
           (fun i -> Subscription.intersects subs.(i) s)
           (List.init k Fun.id))
    in
    let scan = Flat.intersecting_rows ~crossover:max_int packed sbox in
    let indexed = Flat.intersecting_rows ~crossover:0 packed sbox in
    Alcotest.(check (array int)) "scan = brute force" brute scan;
    Alcotest.(check (array int)) "indexed = brute force" brute indexed
  done

let test_superset_rows_agree () =
  let rng = Prng.of_int 18 in
  for _ = 1 to 100 do
    let m = 1 + Prng.int rng 3 in
    let k = Prng.int rng 15 in
    let _, subs = dist_problem rng ~m ~k in
    let b = dist_sub rng ~m in
    let packed = Flat.pack ~m subs in
    let brute =
      List.filter (fun i -> Subscription.covers_sub subs.(i) b)
        (List.init k Fun.id)
    in
    let got = ref [] in
    Flat.iter_superset_rows packed (Flat.box_of_sub b) ~f:(fun row ->
        got := row :: !got);
    Alcotest.(check (list int)) "superset rows" brute (List.rev !got)
  done

(* ------------------------------------------------------------------ *)
(* Engine: pruning is invisible — identical verdicts AND witnesses. *)

let reason_equal a b =
  match (a, b) with
  | Engine.Empty_set, Engine.Empty_set -> true
  | Engine.Point p, Engine.Point q -> p = q
  | Engine.Polyhedron w, Engine.Polyhedron w' ->
      Subscription.equal w.Witness.region w'.Witness.region
  | (Engine.Empty_set | Engine.Point _ | Engine.Polyhedron _), _ -> false

let verdict_equal a b =
  match (a, b) with
  | Engine.Covered_pairwise i, Engine.Covered_pairwise j -> i = j
  | Engine.Covered_probably, Engine.Covered_probably -> true
  | Engine.Not_covered r, Engine.Not_covered r' -> reason_equal r r'
  | ( ( Engine.Covered_pairwise _ | Engine.Covered_probably
      | Engine.Not_covered _ ),
      _ ) ->
      false

let test_pruned_engine_equivalent () =
  (* Pruning runs first, so with the fast decisions disabled the
     probabilistic tail of the pipeline cannot see it: MCS removes
     every non-intersecting row anyway (its full-range strip cell is
     always conflict-free), so pruning must change nothing observable —
     same verdict, same witness, same reduced set, same trial count. *)
  let gen = Prng.of_int 19 in
  let with_pruning = Engine.config ~use_fast_decisions:false () in
  let without =
    Engine.config ~use_fast_decisions:false ~use_pruning:false ()
  in
  for _ = 1 to 150 do
    let m = 1 + Prng.int gen 3 in
    let k = Prng.int gen 12 in
    let s, subs = dist_problem gen ~m ~k in
    let seed = Prng.int gen 1_000_000 in
    let r1 =
      Engine.check ~config:with_pruning ~rng:(Prng.of_int seed) s subs
    in
    let r2 = Engine.check ~config:without ~rng:(Prng.of_int seed) s subs in
    Alcotest.(check bool)
      "same verdict (incl. witness)" true
      (verdict_equal r1.Engine.verdict r2.Engine.verdict);
    Alcotest.(check int) "same reduced size" r2.Engine.k_reduced
      r1.Engine.k_reduced;
    Alcotest.(check int) "same trial budget" r2.Engine.d_used r1.Engine.d_used;
    Alcotest.(check int) "same iterations" r2.Engine.iterations
      r1.Engine.iterations;
    Alcotest.(check bool) "k_pruned <= k_initial" true
      (r1.Engine.k_pruned <= r1.Engine.k_initial)
  done

let test_pruned_pairwise_invariant () =
  (* With the fast decisions on, pruning the table can only help
     Corollary 3 (removing rows preserves its Hall-style condition),
     but Corollary 1 must be untouched in both directions: an
     all-undefined row is a coverer of s, hence intersects s, hence
     survives the prune in the same relative position. The reported
     row (remapped to the original array) must therefore be identical
     with pruning on or off. *)
  let gen = Prng.of_int 23 in
  let with_pruning = Engine.config () in
  let without = Engine.config ~use_pruning:false () in
  for _ = 1 to 150 do
    let m = 1 + Prng.int gen 3 in
    let k = Prng.int gen 12 in
    let s, subs = dist_problem gen ~m ~k in
    let seed = Prng.int gen 1_000_000 in
    let r1 =
      Engine.check ~config:with_pruning ~rng:(Prng.of_int seed) s subs
    in
    let r2 = Engine.check ~config:without ~rng:(Prng.of_int seed) s subs in
    let pairwise r =
      match r.Engine.verdict with
      | Engine.Covered_pairwise i -> Some i
      | Engine.Covered_probably | Engine.Not_covered _ -> None
    in
    Alcotest.(check (option int))
      "pairwise verdicts identical under pruning" (pairwise r2) (pairwise r1)
  done

let test_pruned_engine_sound () =
  (* Small instances against the exact oracle: pruning never makes a
     definite NO wrong. *)
  let gen = Prng.of_int 20 in
  for _ = 1 to 60 do
    let m = 1 + Prng.int gen 2 in
    let k = Prng.int gen 6 in
    let s, subs = dist_problem gen ~m ~k in
    let r = Engine.check ~rng:(Prng.of_int 99) s subs in
    match r.Engine.verdict with
    | Engine.Not_covered _ ->
        Alcotest.(check bool) "NO is sound under pruning" false
          (Exact.covered s subs)
    | Engine.Covered_pairwise i ->
        Alcotest.(check bool) "pairwise YES is sound" true
          (Subscription.covers_sub subs.(i) s)
    | Engine.Covered_probably -> ()
  done

let test_engine_deterministic () =
  let gen = Prng.of_int 21 in
  for _ = 1 to 60 do
    let m = 1 + Prng.int gen 3 in
    let k = Prng.int gen 10 in
    let s, subs = dist_problem gen ~m ~k in
    let seed = Prng.int gen 1_000_000 in
    let r1 = Engine.check ~rng:(Prng.of_int seed) s subs in
    let r2 = Engine.check ~rng:(Prng.of_int seed) s subs in
    Alcotest.(check bool)
      "same seed, same verdict and witness" true
      (verdict_equal r1.Engine.verdict r2.Engine.verdict);
    Alcotest.(check int) "same iterations" r1.Engine.iterations
      r2.Engine.iterations
  done

let suite =
  [
    Alcotest.test_case "pack round-trips" `Quick test_pack_roundtrip;
    Alcotest.test_case "gather = pack of subset" `Quick
      test_gather_is_pack_of_subset;
    Alcotest.test_case "flat kernels = boxed reference" `Quick
      test_kernels_match_boxed;
    Alcotest.test_case "draw stream identical" `Quick
      test_draw_stream_identical;
    Alcotest.test_case "run_packed = boxed trial loop" `Quick
      test_run_packed_matches_boxed_loop;
    Alcotest.test_case "pruning: scan = indexed = brute" `Quick
      test_intersecting_paths_agree;
    Alcotest.test_case "superset rows = brute" `Quick test_superset_rows_agree;
    Alcotest.test_case "engine: pruning invisible" `Quick
      test_pruned_engine_equivalent;
    Alcotest.test_case "engine: pruning keeps pairwise" `Quick
      test_pruned_pairwise_invariant;
    Alcotest.test_case "engine: pruned NO sound" `Quick
      test_pruned_engine_sound;
    Alcotest.test_case "engine: deterministic" `Quick test_engine_deterministic;
  ]

(* Sharded-store equivalence: a Shard_store and a flat
   Subscription_store driven through the same op sequence under the
   same seed must agree on everything observable — ids, placements,
   coverer lists, promotions, match sets, publication reports and
   counters (scan counters excepted: the shard map exists to shrink
   them). Exercised for shard counts 1 (degenerate: fallback only),
   2, 7 and 16 over qcheck-generated op sequences. *)

open Probsub_core

let sub = Subscription.of_bounds
let iv lo hi = Interval.make ~lo ~hi
let domain0 = iv 0 99

(* ------------------------------------------------------------------ *)
(* Generators *)

(* First-attribute intervals in four shapes: narrow (sits inside a
   stripe for any tested shard count), wide (spans stripe cuts),
   unbounded (fallback), and out-of-domain (past [domain0], landing in
   the sentinel-extended outer stripe). *)
let attr0_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun lo w -> iv lo (lo + w)) (int_bound 95) (int_bound 4));
        ( 2,
          map2
            (fun lo w -> iv lo (lo + w))
            (int_bound 59)
            (map (fun w -> 20 + w) (int_bound 20)) );
        (1, return Interval.full);
        (1, map2 (fun lo w -> iv lo (lo + w)) (int_range 120 180) (int_bound 9));
      ])

let sub_gen =
  QCheck.Gen.(
    let* a0 = attr0_gen in
    let* lo1 = int_bound 20 in
    let* w1 = int_bound 10 in
    return (Subscription.of_list [ a0; iv lo1 (lo1 + w1) ]))

let pub_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map2
            (fun v0 v1 -> Publication.point [| v0; v1 |])
            (int_range (-5) 110) (int_bound 30) );
        (1, map Publication.box sub_gen);
      ])

type op =
  | Add of Subscription.t
  | Add_batch of Subscription.t list
  | Remove_nth of int
  | Add_leased of Subscription.t * float
  | Expire of float
  | Match of Publication.t
  | Check of Publication.t

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun s -> Add s) sub_gen);
        (1, map (fun ss -> Add_batch ss) (list_size (int_range 2 5) sub_gen));
        (2, map (fun i -> Remove_nth i) (int_bound 1000));
        ( 1,
          map2
            (fun s t -> Add_leased (s, float_of_int t))
            sub_gen (int_bound 100) );
        (1, map (fun t -> Expire (float_of_int t)) (int_bound 100));
        (2, map (fun p -> Match p) pub_gen);
        (1, map (fun p -> Check p) pub_gen);
      ])

let pp_op ppf = function
  | Add s -> Format.fprintf ppf "Add %a" Subscription.pp s
  | Add_batch ss ->
      Format.fprintf ppf "Add_batch [%a]"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           Subscription.pp)
        ss
  | Remove_nth i -> Format.fprintf ppf "Remove_nth %d" i
  | Add_leased (s, t) ->
      Format.fprintf ppf "Add_leased (%a, %g)" Subscription.pp s t
  | Expire t -> Format.fprintf ppf "Expire %g" t
  | Match p -> Format.fprintf ppf "Match %s" (Publication.to_string p)
  | Check p -> Format.fprintf ppf "Check %s" (Publication.to_string p)

let ops_arb =
  QCheck.make
    QCheck.Gen.(list_size (int_range 15 60) op_gen)
    ~print:(fun ops ->
      Format.asprintf "%a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_op)
        ops)

(* ------------------------------------------------------------------ *)
(* Mirror driver *)

(* Publication reports index rows into the candidate array each store
   handed the engine: the full active set (flat) vs the gathered
   intersecting actives (shard). Translate rows to subscription ids on
   both sides before comparing. *)
let report_equal ~flat ~p ra rb =
  let psub = Publication.to_sub p in
  let flat_ids = Array.of_list (List.map fst (Subscription_store.active flat)) in
  let gathered_ids =
    Subscription_store.active flat
    |> List.filter (fun (_, s) -> Subscription.intersects psub s)
    |> List.map fst |> Array.of_list
  in
  let verdict_sig row_id r =
    match r.Engine.verdict with
    | Engine.Covered_pairwise row -> `Pairwise (row_id row)
    | Engine.Covered_probably -> `Probably
    | Engine.Not_covered reason -> `Not reason
  in
  let mcs_sig row_id r =
    Option.map
      (fun m -> List.map row_id m.Mcs.kept)
      r.Engine.mcs
  in
  let fid row = flat_ids.(row) and gid row = gathered_ids.(row) in
  verdict_sig fid ra = verdict_sig gid rb
  && mcs_sig fid ra = mcs_sig gid rb
  && ra.Engine.k_pruned = rb.Engine.k_pruned
  && ra.Engine.k_reduced = rb.Engine.k_reduced
  && ra.Engine.d_used = rb.Engine.d_used
  && ra.Engine.iterations = rb.Engine.iterations

let run_mirror ~shards ops =
  let flat = Subscription_store.create ~arity:2 ~seed:99 () in
  let shd = Shard_store.create ~shards ~domain0 ~arity:2 ~seed:99 () in
  let live = ref [] in
  let step op =
    match op with
    | Add s ->
        let ra = Subscription_store.add flat s in
        let rb = Shard_store.add shd s in
        live := fst ra :: !live;
        ra = rb
    | Add_batch ss ->
        let arr = Array.of_list ss in
        let ra = Subscription_store.add_batch flat arr in
        let rb = Shard_store.add_batch shd arr in
        Array.iter (fun (id, _) -> live := id :: !live) ra;
        ra = rb
    | Remove_nth i -> (
        match !live with
        | [] -> true
        | l ->
            let id = List.nth l (i mod List.length l) in
            live := List.filter (fun x -> x <> id) l;
            Subscription_store.remove flat id = Shard_store.remove shd id)
    | Add_leased (s, expires_at) ->
        let ra = Subscription_store.add_with_expiry flat s ~expires_at in
        let rb = Shard_store.add_with_expiry shd s ~expires_at in
        live := fst ra :: !live;
        ra = rb
    | Expire now ->
        let ea, pa = Subscription_store.expire flat ~now in
        let eb, pb = Shard_store.expire shd ~now in
        live := List.filter (fun x -> not (List.mem x ea)) !live;
        ea = eb && pa = pb
    | Match p ->
        Subscription_store.match_publication flat p
        = Shard_store.match_publication shd p
        && Subscription_store.match_publication_exhaustive flat p
           = Shard_store.match_publication_exhaustive shd p
    | Check p ->
        let ra =
          Subscription_store.check_publication flat ~rng:(Prng.of_int 5) p
        in
        let rb = Shard_store.check_publication shd ~rng:(Prng.of_int 5) p in
        report_equal ~flat ~p ra rb
  in
  let steps_ok = List.for_all step ops in
  let sa = Subscription_store.stats flat and sb = Shard_store.stats shd in
  steps_ok
  && Subscription_store.active flat = Shard_store.active shd
  && Subscription_store.covered flat = Shard_store.covered shd
  && Subscription_store.size flat = Shard_store.size shd
  && Subscription_store.splits_consumed flat = Shard_store.splits_consumed shd
  && sa.Subscription_store.added = sb.Subscription_store.added
  && sa.Subscription_store.dropped_covered = sb.Subscription_store.dropped_covered
  && sa.Subscription_store.removed = sb.Subscription_store.removed
  && sa.Subscription_store.promoted = sb.Subscription_store.promoted
  && sa.Subscription_store.covered_scans = sb.Subscription_store.covered_scans
  && sa.Subscription_store.active_scans >= sb.Subscription_store.active_scans
  && Subscription_store.validate flat
  && Shard_store.validate shd
  && Array.fold_left ( + ) 0 (Shard_store.shard_actives shd)
     = Shard_store.active_count shd

let prop_mirror =
  QCheck.Test.make ~count:60 ~name:"sharded store == flat store (all observables)"
    ops_arb
    (fun ops -> List.for_all (fun shards -> run_mirror ~shards ops) [ 1; 2; 7; 16 ])

(* ------------------------------------------------------------------ *)
(* Unit tests *)

(* A subscription unconstrained on attribute 0 routes to the fallback
   shard yet still covers striped subscriptions: coverer links are
   global, only the active set is partitioned. *)
let test_fallback_covers_stripes () =
  let t = Shard_store.create ~shards:4 ~domain0 ~arity:2 ~seed:7 () in
  let full = Subscription.of_list [ Interval.full; iv 0 50 ] in
  let id_full, p_full = Shard_store.add t full in
  (match p_full with
  | Subscription_store.Active -> ()
  | Subscription_store.Covered _ -> Alcotest.fail "full sub must stay active");
  Alcotest.(check int)
    "full-range sub homes in the fallback shard"
    (Shard_store.fallback_shard t)
    (Shard_store.home_shard t id_full);
  let id_narrow, p_narrow = Shard_store.add t (sub [ (10, 12); (3, 5) ]) in
  (match p_narrow with
  | Subscription_store.Covered [ c ] ->
      Alcotest.(check int) "covered by the fallback sub" id_full c
  | _ -> Alcotest.fail "striped sub must be covered by the fallback sub");
  (* The narrow sub's home is a stripe even while covered; removing the
     coverer promotes it into that stripe. *)
  let home = Shard_store.home_shard t id_narrow in
  Alcotest.(check bool)
    "narrow sub homes in a stripe" true
    (home < Shard_store.fallback_shard t);
  let promoted = Shard_store.remove t id_full in
  Alcotest.(check (list int)) "narrow sub promoted" [ id_narrow ] promoted;
  Alcotest.(check int)
    "promoted into its stripe" 1
    (Shard_store.shard_actives t).(home);
  Alcotest.(check bool) "invariants hold" true (Shard_store.validate t)

(* Disjoint narrow subscriptions spread across stripes, and matching
   consults only the relevant shard (the active-scan counter shrinks
   relative to a full scan). *)
let test_striping_spreads_and_confines () =
  let t = Shard_store.create ~shards:5 ~domain0 ~arity:2 ~seed:11 () in
  (* domain0 = [0,99] over 4 stripes of width 25. *)
  let homes =
    List.map
      (fun lo ->
        let id, p = Shard_store.add t (sub [ (lo, lo + 2); (0, 9) ]) in
        (match p with
        | Subscription_store.Active -> ()
        | Subscription_store.Covered _ ->
            Alcotest.fail "disjoint subs stay active");
        Shard_store.home_shard t id)
      [ 3; 30; 55; 80 ]
  in
  Alcotest.(check (list int)) "one stripe each" [ 0; 1; 2; 3 ] homes;
  let hits = Shard_store.match_publication t (Publication.point [| 31; 4 |]) in
  Alcotest.(check int) "single hit" 1 (List.length hits);
  let scans = (Shard_store.stats t).Subscription_store.active_scans in
  Alcotest.(check bool)
    (Printf.sprintf "consulted fewer actives than a full scan (%d)" scans)
    true (scans < 4)

(* Pooled add_batch is defined as the sequential loop: same results
   array, same splits, same final state. *)
let test_pooled_batch_deterministic () =
  let subs =
    let g = Prng.of_int 42 in
    Array.init 40 (fun _ ->
        let lo0 = Prng.int_in g ~lo:0 ~hi:90 in
        let w0 = Prng.int_in g ~lo:0 ~hi:15 in
        let lo1 = Prng.int_in g ~lo:0 ~hi:20 in
        sub [ (lo0, lo0 + w0); (lo1, lo1 + 6) ])
  in
  let seq = Shard_store.create ~shards:4 ~domain0 ~arity:2 ~seed:13 () in
  let rs = Array.map (fun s -> Shard_store.add seq s) subs in
  Domain_pool.with_pool ~workers:2 (fun pool ->
      let par =
        Shard_store.create ~pool ~shards:4 ~domain0 ~arity:2 ~seed:13 ()
      in
      let rp = Shard_store.add_batch par subs in
      Alcotest.(check bool) "identical results" true (rs = rp);
      Alcotest.(check bool)
        "identical actives" true
        (Shard_store.active seq = Shard_store.active par);
      Alcotest.(check bool)
        "identical covered" true
        (Shard_store.covered seq = Shard_store.covered par);
      Alcotest.(check int)
        "identical split streams"
        (Shard_store.splits_consumed seq)
        (Shard_store.splits_consumed par);
      Alcotest.(check bool) "invariants hold" true (Shard_store.validate par))

let suite =
  [
    Alcotest.test_case "fallback shard covers striped subs" `Quick
      test_fallback_covers_stripes;
    Alcotest.test_case "striping spreads and confines" `Quick
      test_striping_spreads_and_confines;
    Alcotest.test_case "pooled add_batch deterministic" `Quick
      test_pooled_batch_deterministic;
    QCheck_alcotest.to_alcotest prop_mirror;
  ]

(* Indexed-matching equivalence: after any op stream, the counting
   index behind [Subscription_store.match_publication] (and, through
   stripe routing, [Shard_store.match_publication]) must return hit
   lists bit-identical to [match_publication_exhaustive]. Op streams
   mix add/remove/expire/renew with Point and Box publications, and
   the subscription generator deliberately produces full-interval
   (unconstrained) attributes — the universal-subscription and
   skipped-box-range paths of the index.

   Policies are restricted to the exact ones (No_coverage,
   Pairwise_policy). Under the probabilistic group policy a covered
   subscription may lack a true coverer, so the two-level walk can
   legitimately miss (a delta-probability event the experiments
   measure); equality with the oracle is only a theorem for exact
   coverage. *)

open Probsub_core

let iv lo hi = Interval.make ~lo ~hi
let domain0 = iv 0 99

(* Attribute intervals in every regime the index distinguishes:
   narrow (stripe-local on attribute 0), wide (spans stripe cuts),
   full (unconstrained — not indexed at all), out-of-domain. *)
let attr_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map2 (fun lo w -> iv lo (lo + w)) (int_bound 95) (int_bound 4));
        ( 2,
          map2
            (fun lo w -> iv lo (lo + w))
            (int_bound 59)
            (map (fun w -> 20 + w) (int_bound 20)) );
        (2, return Interval.full);
        (1, map2 (fun lo w -> iv lo (lo + w)) (int_range 120 180) (int_bound 9));
      ])

let arity = 3

let sub_gen =
  QCheck.Gen.(
    let* ivs = list_repeat arity attr_gen in
    return (Subscription.of_list ivs))

(* Points land in and out of the populated region; boxes reuse the
   subscription generator, so a box range can be full — a range no
   constrained stored interval can contain. *)
let pub_gen =
  QCheck.Gen.(
    frequency
      [
        ( 3,
          map
            (fun vs -> Publication.point (Array.of_list vs))
            (list_repeat arity (int_range (-5) 110)) );
        (1, map Publication.box sub_gen);
      ])

type op =
  | Add of Subscription.t
  | Remove_nth of int
  | Add_leased of Subscription.t * float
  | Renew_nth of int * float
  | Expire of float
  | Match of Publication.t

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun s -> Add s) sub_gen);
        (2, map (fun i -> Remove_nth i) (int_bound 1000));
        ( 2,
          map2
            (fun s t -> Add_leased (s, float_of_int t))
            sub_gen (int_bound 100) );
        ( 1,
          map2
            (fun i t -> Renew_nth (i, float_of_int t))
            (int_bound 1000) (int_bound 200) );
        (2, map (fun t -> Expire (float_of_int t)) (int_bound 100));
        (3, map (fun p -> Match p) pub_gen);
      ])

let pp_op ppf = function
  | Add s -> Format.fprintf ppf "Add %a" Subscription.pp s
  | Remove_nth i -> Format.fprintf ppf "Remove_nth %d" i
  | Add_leased (s, t) ->
      Format.fprintf ppf "Add_leased (%a, %g)" Subscription.pp s t
  | Renew_nth (i, t) -> Format.fprintf ppf "Renew_nth (%d, %g)" i t
  | Expire t -> Format.fprintf ppf "Expire %g" t
  | Match p -> Format.fprintf ppf "Match %s" (Publication.to_string p)

let ops_arb =
  QCheck.make
    QCheck.Gen.(list_size (int_range 20 70) op_gen)
    ~print:(fun ops ->
      Format.asprintf "%a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
           pp_op)
        ops)

(* ------------------------------------------------------------------ *)
(* Driver, abstracted over the two store shapes *)

type store_ops = {
  add : Subscription.t -> int;
  add_leased : Subscription.t -> expires_at:float -> int;
  remove : int -> unit;
  renew : int -> expires_at:float -> unit;
  expire : now:float -> int list;
  matching : Publication.t -> int list;
  exhaustive : Publication.t -> int list;
  validate : unit -> bool;
}

let flat_ops policy =
  let t = Subscription_store.create ~policy ~arity ~seed:42 () in
  {
    add = (fun s -> fst (Subscription_store.add t s));
    add_leased =
      (fun s ~expires_at ->
        fst (Subscription_store.add_with_expiry t s ~expires_at));
    remove = (fun id -> ignore (Subscription_store.remove t id));
    renew = (fun id ~expires_at -> Subscription_store.renew t id ~expires_at);
    expire = (fun ~now -> fst (Subscription_store.expire t ~now));
    matching = Subscription_store.match_publication t;
    exhaustive = Subscription_store.match_publication_exhaustive t;
    validate = (fun () -> Subscription_store.validate t);
  }

let shard_ops policy shards =
  let t = Shard_store.create ~policy ~shards ~domain0 ~arity ~seed:42 () in
  {
    add = (fun s -> fst (Shard_store.add t s));
    add_leased =
      (fun s ~expires_at -> fst (Shard_store.add_with_expiry t s ~expires_at));
    remove = (fun id -> ignore (Shard_store.remove t id));
    renew = (fun id ~expires_at -> Shard_store.renew t id ~expires_at);
    expire = (fun ~now -> fst (Shard_store.expire t ~now));
    matching = Shard_store.match_publication t;
    exhaustive = Shard_store.match_publication_exhaustive t;
    validate = (fun () -> Shard_store.validate t);
  }

(* Checked publications: each Match op, plus a final fixed battery so
   every run ends with the index interrogated in its final state. *)
let final_battery =
  [
    Publication.point [| 0; 0; 0 |];
    Publication.point [| 50; 10; 10 |];
    Publication.point [| 150; 5; 5 |];
    Publication.box (Subscription.of_list [ iv 10 12; iv 3 5; Interval.full ]);
    Publication.box
      (Subscription.of_list [ Interval.full; Interval.full; Interval.full ]);
  ]

let run_equiv mk ops =
  let st = mk () in
  let live = ref [] in
  let agree p = st.matching p = st.exhaustive p in
  let step op =
    match op with
    | Add s ->
        live := st.add s :: !live;
        true
    | Remove_nth i -> (
        match !live with
        | [] -> true
        | l ->
            let id = List.nth l (i mod List.length l) in
            live := List.filter (fun x -> x <> id) l;
            st.remove id;
            true)
    | Add_leased (s, expires_at) ->
        live := st.add_leased s ~expires_at :: !live;
        true
    | Renew_nth (i, expires_at) -> (
        match !live with
        | [] -> true
        | l ->
            st.renew (List.nth l (i mod List.length l)) ~expires_at;
            true)
    | Expire now ->
        let gone = st.expire ~now in
        live := List.filter (fun x -> not (List.mem x gone)) !live;
        true
    | Match p -> agree p
  in
  List.for_all step ops
  && List.for_all agree final_battery
  && st.validate ()

let prop_flat =
  QCheck.Test.make ~count:80
    ~name:"flat indexed match == exhaustive (exact policies)" ops_arb
    (fun ops ->
      List.for_all
        (fun policy -> run_equiv (fun () -> flat_ops policy) ops)
        [ Subscription_store.No_coverage; Subscription_store.Pairwise_policy ])

let prop_shard =
  QCheck.Test.make ~count:40
    ~name:"sharded indexed match == exhaustive (shards 1/2/7/16)" ops_arb
    (fun ops ->
      List.for_all
        (fun shards ->
          List.for_all
            (fun policy ->
              run_equiv (fun () -> shard_ops policy shards) ops)
            [
              Subscription_store.No_coverage;
              Subscription_store.Pairwise_policy;
            ])
        [ 1; 2; 7; 16 ])

let suite =
  List.map QCheck_alcotest.to_alcotest [ prop_flat; prop_shard ]

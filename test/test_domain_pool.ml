open Probsub_core

let test_submit_await () =
  Domain_pool.with_pool ~workers:3 (fun pool ->
      Alcotest.(check int) "size" 3 (Domain_pool.size pool);
      let f = Domain_pool.submit pool (fun () -> 6 * 7) in
      Alcotest.(check int) "result" 42 (Domain_pool.await f);
      (* A future may be awaited again: the result is memoised. *)
      Alcotest.(check int) "memoised" 42 (Domain_pool.await f))

let test_many_tasks () =
  (* 100 tasks over 3 workers; every future resolves to its own
     payload regardless of which worker ran it. *)
  Domain_pool.with_pool ~workers:3 (fun pool ->
      let futures =
        List.init 100 (fun i -> Domain_pool.submit pool (fun () -> i * i))
      in
      List.iteri
        (fun i f ->
          Alcotest.(check int)
            (Printf.sprintf "task %d" i)
            (i * i) (Domain_pool.await f))
        futures)

let test_exception_propagates () =
  Domain_pool.with_pool ~workers:2 (fun pool ->
      let f =
        Domain_pool.submit pool (fun () : int -> raise (Failure "boom"))
      in
      Alcotest.check_raises "worker exception re-raised" (Failure "boom")
        (fun () -> ignore (Domain_pool.await f));
      (* The worker survives its task's exception. *)
      let g = Domain_pool.submit pool (fun () -> 5) in
      Alcotest.(check int) "pool still works" 5 (Domain_pool.await g))

let test_zero_workers_inline () =
  Domain_pool.with_pool ~workers:0 (fun pool ->
      Alcotest.(check int) "size" 0 (Domain_pool.size pool);
      let ran = ref false in
      let f =
        Domain_pool.submit pool (fun () ->
            ran := true;
            17)
      in
      (* Zero workers: the task ran inline, before submit returned. *)
      Alcotest.(check bool) "ran inline" true !ran;
      Alcotest.(check int) "result" 17 (Domain_pool.await f))

let test_shutdown_drains_and_closes () =
  let pool = Domain_pool.create ~workers:2 () in
  let futures =
    List.init 20 (fun i -> Domain_pool.submit pool (fun () -> i + 1))
  in
  Domain_pool.shutdown pool;
  (* Shutdown finishes queued work before joining the workers... *)
  List.iteri
    (fun i f ->
      Alcotest.(check int)
        (Printf.sprintf "queued task %d survived shutdown" i)
        (i + 1) (Domain_pool.await f))
    futures;
  Alcotest.(check int) "no workers left" 0 (Domain_pool.size pool);
  (* ...is idempotent, and closes the pool for new work. *)
  Domain_pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Domain_pool.submit: pool is shut down") (fun () ->
      ignore (Domain_pool.submit pool (fun () -> 0)))

let test_with_pool_shuts_down_on_raise () =
  let escaped = ref None in
  (try
     Domain_pool.with_pool ~workers:1 (fun pool ->
         escaped := Some pool;
         failwith "user error")
   with Failure _ -> ());
  match !escaped with
  | None -> Alcotest.fail "with_pool never ran its body"
  | Some pool ->
      Alcotest.(check int) "pool shut down on exception" 0
        (Domain_pool.size pool)

let test_with_pool_raise_with_queued_tasks () =
  (* The raise path must drain the queue like a normal shutdown: every
     future submitted before the exception still resolves. *)
  let escaped = ref None in
  let futures = ref [] in
  (try
     Domain_pool.with_pool ~workers:2 (fun pool ->
         escaped := Some pool;
         futures := List.init 50 (fun i -> Domain_pool.submit pool (fun () -> i * 3));
         failwith "user error")
   with Failure _ -> ());
  (match !escaped with
  | None -> Alcotest.fail "with_pool never ran its body"
  | Some pool -> Alcotest.(check int) "workers joined" 0 (Domain_pool.size pool));
  List.iteri
    (fun i f ->
      Alcotest.(check int)
        (Printf.sprintf "queued task %d resolved" i)
        (i * 3) (Domain_pool.await f))
    !futures;
  (* An explicit extra shutdown after with_pool's own is the
     idempotent case. *)
  match !escaped with
  | Some pool -> Domain_pool.shutdown pool
  | None -> ()

let test_zero_worker_shutdown_idempotent () =
  let pool = Domain_pool.create ~workers:0 () in
  Domain_pool.shutdown pool;
  Domain_pool.shutdown pool;
  Alcotest.check_raises "submit after shutdown"
    (Invalid_argument "Domain_pool.submit: pool is shut down") (fun () ->
      ignore (Domain_pool.submit pool (fun () -> 0)))

let test_shutdown_inside_with_pool () =
  (* The body shuts the pool down itself; with_pool's final shutdown
     must then be the idempotent second call, not an error. *)
  Domain_pool.with_pool ~workers:2 (fun pool ->
      let f = Domain_pool.submit pool (fun () -> 11) in
      Domain_pool.shutdown pool;
      Alcotest.(check int) "result before double shutdown" 11
        (Domain_pool.await f);
      Alcotest.(check int) "workers joined" 0 (Domain_pool.size pool))

let test_validation () =
  Alcotest.check_raises "negative workers"
    (Invalid_argument "Domain_pool.create: workers < 0") (fun () ->
      ignore (Domain_pool.create ~workers:(-1) ()));
  Alcotest.(check bool) "default workers sane" true
    (let w = Domain_pool.default_workers () in
     w >= 0 && w <= 7)

let suite =
  [
    Alcotest.test_case "submit and await" `Quick test_submit_await;
    Alcotest.test_case "100 tasks, 3 workers" `Quick test_many_tasks;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "zero workers runs inline" `Quick
      test_zero_workers_inline;
    Alcotest.test_case "shutdown drains then closes" `Quick
      test_shutdown_drains_and_closes;
    Alcotest.test_case "with_pool cleans up on raise" `Quick
      test_with_pool_shuts_down_on_raise;
    Alcotest.test_case "with_pool raise drains queued tasks" `Quick
      test_with_pool_raise_with_queued_tasks;
    Alcotest.test_case "zero-worker shutdown is idempotent" `Quick
      test_zero_worker_shutdown_idempotent;
    Alcotest.test_case "shutdown inside with_pool" `Quick
      test_shutdown_inside_with_pool;
    Alcotest.test_case "validation" `Quick test_validation;
  ]

(* The benchmark harness: regenerates every table/figure of the
   paper's evaluation (Section 6) at bench scale, then times the core
   operations with Bechamel.

   Scale: figures average over Exp_common.default_scale runs per point
   (the paper uses 1000-3000); pass runs=N on the command line or use
   `probsub fig <id> --runs N` for paper-scale sweeps. The shapes are
   stable from a few dozen runs. *)

open Probsub_core
open Probsub_workload
open Probsub_experiments

let seed = 42

let regenerate_figures ~runs () =
  let scale = { Exp_common.runs } in
  print_endline "=================================================";
  print_endline " Paper figure regeneration (Ouksel et al., 2006)";
  print_endline "=================================================";
  Printf.printf "(averaging %d runs per point; paper uses 1000-3000)\n\n" runs;
  let f6, f7 = Fig_covering.run ~scale ~seed () in
  Exp_common.print_stdout f6;
  Exp_common.print_stdout f7;
  let f8, f9, f10 = Fig_noncover.run ~scale ~seed () in
  Exp_common.print_stdout f8;
  Exp_common.print_stdout f9;
  Exp_common.print_stdout f10;
  let f11, f12 = Fig_extreme.run ~scale ~seed () in
  Exp_common.print_stdout f11;
  Exp_common.print_stdout f12;
  let n = if runs >= 1000 then 5000 else 2000 in
  let f13, f14 = Fig_comparison.run ~n ~seed () in
  Exp_common.print_stdout f13;
  Exp_common.print_stdout f14;
  let rows, prop5 = Exp_chain.run ~scale ~seed () in
  Exp_common.print_stdout prop5;
  List.iter
    (fun r ->
      Printf.printf "  delta=%-8g analytic=%.4f measured=%.4f reach=%.2f\n"
        r.Exp_chain.delta r.Exp_chain.analytic r.Exp_chain.measured
        r.Exp_chain.mean_reach)
    rows;
  print_newline ();
  Exp_ablation.print (Exp_ablation.run ~scale ~seed ());
  print_newline ();
  Exp_matching.print (Exp_matching.run ~seed ());
  print_newline ();
  Exp_traffic.print (Exp_traffic.run ~seed ());
  print_newline ();
  Exp_merging.print (Exp_merging.run ~seed ());
  print_newline ();
  Exp_scaling.print (Exp_scaling.run ~scale ~seed ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Flat-kernel benchmark: boxed vs packed RSPC inner loop on a fixed
   k=1000, m=8 full-scan workload (disjoint set, every trial walks all
   rows). Emits BENCH_rspc.json and asserts the packed trial performs
   zero minor-heap allocation. *)

let kernel_k = 1000
let kernel_m = 8
let kernel_d = 200_000

let time_ns_per_op f n =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    f ()
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int n

let alloc_words_per_op f n =
  let before = Gc.minor_words () in
  for _ = 1 to n do
    f ()
  done;
  let after = Gc.minor_words () in
  (after -. before) /. float_of_int n

type kernel_result = {
  op : string;
  ns_per_op : float;
  alloc_words_per_op : float;
}

let emit_json path results =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"rspc_kernels\",\n";
  Printf.fprintf oc "  \"k\": %d,\n  \"m\": %d,\n  \"d\": %d,\n" kernel_k
    kernel_m kernel_d;
  Printf.fprintf oc "  \"ops\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"op\": %S, \"ns_per_op\": %.2f, \"alloc_words_per_op\": %.4f \
         }%s\n"
        r.op r.ns_per_op r.alloc_words_per_op
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run_kernels () =
  print_endline "=================================================";
  print_endline " Flat-kernel bench (boxed vs packed trial loop)";
  print_endline "=================================================";
  let rng = Prng.of_int seed in
  let s = Subscription.of_bounds (List.init kernel_m (fun _ -> (0, 9999))) in
  (* Near-cover rows: every row contains the drawn point on the first
     m-1 attributes and misses on the last, so a trial reads all
     k x m bound pairs — the regime where RSPC actually spends its
     budget (rows that reject on attribute 0 are pruned away long
     before the trial loop). *)
  let subs =
    Array.init kernel_k (fun i ->
        Subscription.of_bounds
          (List.init kernel_m (fun j ->
               if j = kernel_m - 1 then (20_000 + i, 30_000 + i)
               else (0, 9999))))
  in
  let packed = Flat.pack ~m:kernel_m subs in
  let sbox = Flat.box_of_sub s in
  let p = Array.make kernel_m 0 in
  let boxed_trial () =
    let q = Rspc.random_point ~rng s in
    assert (Rspc.escapes q subs)
  in
  let flat_trial () =
    Flat.random_point_into ~rng sbox p;
    assert (Flat.escapes packed p)
  in
  (* The parallel path's per-domain inner loop
     (Rspc_parallel.trials_into), on a covered variant of the same
     workload: appending s itself as a final row means no point
     escapes, so every call performs its full budget — no witness
     copy, no early stop — and must allocate nothing. This is the loop
     each domain runs under Domain.spawn; measured here single-domain
     so Gc counters are meaningful. *)
  let inner_budget = 1000 in
  let inner_calls = kernel_d / inner_budget in
  let packed_covered = Flat.pack ~m:kernel_m (Array.append subs [| s |]) in
  let found : int array option Atomic.t = Atomic.make None in
  let parallel_inner_batch () =
    let performed =
      Rspc_parallel.trials_into ~rng ~sbox ~packed:packed_covered ~found
        ~budget:inner_budget p
    in
    assert (performed = inner_budget)
  in
  (* Warm up all paths so one-time setup does not pollute Gc counts. *)
  for _ = 1 to 1000 do
    boxed_trial ();
    flat_trial ()
  done;
  for _ = 1 to 10 do
    parallel_inner_batch ()
  done;
  let boxed_alloc = alloc_words_per_op boxed_trial kernel_d in
  let flat_alloc = alloc_words_per_op flat_trial kernel_d in
  let parallel_alloc =
    alloc_words_per_op parallel_inner_batch inner_calls
    /. float_of_int inner_budget
  in
  let boxed_ns = time_ns_per_op boxed_trial kernel_d in
  let flat_ns = time_ns_per_op flat_trial kernel_d in
  let parallel_ns =
    time_ns_per_op parallel_inner_batch inner_calls
    /. float_of_int inner_budget
  in
  let speedup = boxed_ns /. flat_ns in
  let results =
    [
      {
        op = "escape_trial_boxed";
        ns_per_op = boxed_ns;
        alloc_words_per_op = boxed_alloc;
      };
      {
        op = "escape_trial_flat";
        ns_per_op = flat_ns;
        alloc_words_per_op = flat_alloc;
      };
      {
        (* Per trial, not per call: each call performs inner_budget
           trials on k+1 rows (the appended covering row). *)
        op = "escape_trial_parallel_inner";
        ns_per_op = parallel_ns;
        alloc_words_per_op = parallel_alloc;
      };
    ]
  in
  Printf.printf "k=%d m=%d trials=%d\n" kernel_k kernel_m kernel_d;
  List.iter
    (fun r ->
      Printf.printf "%-24s %10.1f ns/trial  %8.4f words/trial\n" r.op
        r.ns_per_op r.alloc_words_per_op)
    results;
  Printf.printf "speedup (boxed/flat): %.2fx\n" speedup;
  emit_json "BENCH_rspc.json" results;
  print_endline "wrote BENCH_rspc.json";
  (* Acceptance gates: the packed trial must be allocation-free (any
     real allocation is >= 1 word per trial; the slack only absorbs the
     Gc probe's own boxed floats) and at least 2x the boxed path. *)
  if flat_alloc >= 0.01 then begin
    Printf.eprintf
      "FAIL: flat trial allocates %.4f words/trial (expected 0)\n" flat_alloc;
    exit 1
  end;
  if parallel_alloc >= 0.01 then begin
    Printf.eprintf
      "FAIL: parallel inner loop allocates %.4f words/trial (expected 0)\n"
      parallel_alloc;
    exit 1
  end;
  if speedup < 2.0 then begin
    Printf.eprintf "FAIL: flat speedup %.2fx < 2x over boxed path\n" speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one test per table/figure ingredient. *)

let micro_tests () =
  let open Bechamel in
  let rng = Prng.of_int seed in
  (* Fixed instances so each run times the same work. *)
  let table3_s = Subscription.of_bounds [ (830, 870); (1003, 1006) ] in
  let table3_set =
    [|
      Subscription.of_bounds [ (820, 850); (1001, 1007) ];
      Subscription.of_bounds [ (840, 880); (1002, 1009) ];
    |]
  in
  let covering = Scenario.redundant_covering rng ~m:10 ~k:100 in
  let noncover = Scenario.non_cover rng ~m:10 ~k:100 in
  let extreme = Scenario.extreme_non_cover rng ~m:5 ~k:50 ~gap_fraction:0.01 in
  let covering_table =
    Conflict_table.build ~s:covering.Scenario.s covering.Scenario.set
  in
  let covered_box = Subscription.of_bounds [ (10, 20); (10, 20) ] in
  let covered_set =
    [|
      Subscription.of_bounds [ (0, 15); (0, 99) ];
      Subscription.of_bounds [ (14, 99); (0, 99) ];
    |]
  in
  let engine_cfg = Engine.config ~delta:1e-6 ~max_iterations:2000 () in
  let stream = Scenario.comparison_stream rng ~m:10 ~n:200 in
  let store =
    Subscription_store.create
      ~policy:(Subscription_store.Group_policy engine_cfg) ~arity:10
      ~seed:7 ()
  in
  List.iter (fun s -> ignore (Subscription_store.add store s)) stream;
  let pub =
    Scenario.random_matching_publication rng (List.hd stream)
  in
  let stage f = Staged.stage f in
  [
    Test.make ~name:"table5: conflict table build (k=2, m=2)"
      (stage (fun () ->
           ignore (Conflict_table.build ~s:table3_s table3_set)));
    Test.make ~name:"fig6: conflict table build (k=100, m=10)"
      (stage (fun () ->
           ignore
             (Conflict_table.build ~s:covering.Scenario.s
                covering.Scenario.set)));
    Test.make ~name:"fig6: MCS reduction (k=100, m=10)"
      (stage (fun () -> ignore (Mcs.run covering_table)));
    Test.make ~name:"fig7: Algorithm 2 rho/d (k=100, m=10)"
      (stage (fun () ->
           ignore (Rho.log10_d (Rho.estimate covering_table) ~delta:1e-10)));
    Test.make ~name:"fig10: engine check, non-cover (k=100, m=10)"
      (stage (fun () ->
           ignore
             (Engine.check ~config:engine_cfg ~rng noncover.Scenario.s
                noncover.Scenario.set)));
    Test.make ~name:"fig11: engine check, extreme 1% gap (k=50, m=5)"
      (stage (fun () ->
           ignore
             (Engine.check ~config:engine_cfg ~rng extreme.Scenario.s
                extreme.Scenario.set)));
    Test.make ~name:"fig11: single RSPC trial batch (d=100)"
      (stage (fun () ->
           ignore
             (Rspc.run ~rng ~d:100 ~s:extreme.Scenario.s
                extreme.Scenario.set)));
    Test.make ~name:"ext: RSPC 50k trials, sequential (covered input)"
      (stage (fun () ->
           ignore
             (Rspc.run ~rng ~d:50_000 ~s:covered_box
                covered_set)));
    Test.make ~name:"ext: RSPC 50k trials, parallel domains (covered input)"
      (stage (fun () ->
           ignore
             (Rspc_parallel.run ~rng ~d:50_000 ~s:covered_box
                covered_set)));
    Test.make ~name:"fig13: pairwise coverage scan (k=100, m=10)"
      (stage (fun () ->
           ignore (Pairwise.find_coverer covering.Scenario.s covering.Scenario.set)));
    Test.make ~name:"fig13/14: group-store add+remove (|active|~60)"
      (stage (fun () ->
           let id, _ =
             Subscription_store.add store (List.hd stream)
           in
           ignore (Subscription_store.remove store id)));
    Test.make ~name:"alg5: match publication (200 subs)"
      (stage (fun () -> ignore (Subscription_store.match_publication store pub)));
  ]

let run_micro () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let tests = micro_tests () in
  print_endline "=================================================";
  print_endline " Micro-benchmarks (Bechamel, ns per run)";
  print_endline "=================================================";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg [ instance ]
          (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false
          ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> Printf.printf "%-55s %12.1f ns/run\n" name ns
          | Some _ | None -> Printf.printf "%-55s (no estimate)\n" name)
        analyzed)
    tests

let () =
  (* `main.exe kernels` runs only the fast flat-kernel bench; a numeric
     argument sets the figure-regeneration run count. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "kernels" then run_kernels ()
  else begin
    let runs =
      if Array.length Sys.argv > 1 then
        match int_of_string_opt Sys.argv.(1) with
        | Some r when r > 0 -> r
        | Some _ | None -> Exp_common.default_scale.Exp_common.runs
      else Exp_common.default_scale.Exp_common.runs
    in
    regenerate_figures ~runs ();
    run_micro ();
    run_kernels ()
  end

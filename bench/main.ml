(* The benchmark harness: regenerates every table/figure of the
   paper's evaluation (Section 6) at bench scale, then times the core
   operations with Bechamel.

   Scale: figures average over Exp_common.default_scale runs per point
   (the paper uses 1000-3000); pass runs=N on the command line or use
   `probsub fig <id> --runs N` for paper-scale sweeps. The shapes are
   stable from a few dozen runs. *)

open Probsub_core
open Probsub_workload
open Probsub_experiments

let seed = 42

let regenerate_figures ~runs () =
  let scale = { Exp_common.runs } in
  print_endline "=================================================";
  print_endline " Paper figure regeneration (Ouksel et al., 2006)";
  print_endline "=================================================";
  Printf.printf "(averaging %d runs per point; paper uses 1000-3000)\n\n" runs;
  let f6, f7 = Fig_covering.run ~scale ~seed () in
  Exp_common.print_stdout f6;
  Exp_common.print_stdout f7;
  let f8, f9, f10 = Fig_noncover.run ~scale ~seed () in
  Exp_common.print_stdout f8;
  Exp_common.print_stdout f9;
  Exp_common.print_stdout f10;
  let f11, f12 = Fig_extreme.run ~scale ~seed () in
  Exp_common.print_stdout f11;
  Exp_common.print_stdout f12;
  let n = if runs >= 1000 then 5000 else 2000 in
  let f13, f14 = Fig_comparison.run ~n ~seed () in
  Exp_common.print_stdout f13;
  Exp_common.print_stdout f14;
  let rows, prop5 = Exp_chain.run ~scale ~seed () in
  Exp_common.print_stdout prop5;
  List.iter
    (fun r ->
      Printf.printf "  delta=%-8g analytic=%.4f measured=%.4f reach=%.2f\n"
        r.Exp_chain.delta r.Exp_chain.analytic r.Exp_chain.measured
        r.Exp_chain.mean_reach)
    rows;
  print_newline ();
  Exp_ablation.print (Exp_ablation.run ~scale ~seed ());
  print_newline ();
  Exp_matching.print (Exp_matching.run ~seed ());
  print_newline ();
  Exp_traffic.print (Exp_traffic.run ~seed ());
  print_newline ();
  Exp_merging.print (Exp_merging.run ~seed ());
  print_newline ();
  Exp_scaling.print (Exp_scaling.run ~scale ~seed ());
  print_newline ()

(* ------------------------------------------------------------------ *)
(* Flat-kernel benchmark: boxed vs packed RSPC inner loop on a fixed
   k=1000, m=8 full-scan workload (disjoint set, every trial walks all
   rows). Emits BENCH_rspc.json and asserts the packed trial performs
   zero minor-heap allocation. *)

let kernel_k = 1000
let kernel_m = 8
let kernel_d = 200_000

let time_ns_per_op f n =
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n do
    f ()
  done;
  let t1 = Unix.gettimeofday () in
  (t1 -. t0) *. 1e9 /. float_of_int n

let alloc_words_per_op f n =
  let before = Gc.minor_words () in
  for _ = 1 to n do
    f ()
  done;
  let after = Gc.minor_words () in
  (after -. before) /. float_of_int n

type kernel_result = {
  op : string;
  ns_per_op : float;
  alloc_words_per_op : float;
}

let emit_json path results =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"rspc_kernels\",\n";
  Printf.fprintf oc "  \"k\": %d,\n  \"m\": %d,\n  \"d\": %d,\n" kernel_k
    kernel_m kernel_d;
  Printf.fprintf oc "  \"ops\": [\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "    { \"op\": %S, \"ns_per_op\": %.2f, \"alloc_words_per_op\": %.4f \
         }%s\n"
        r.op r.ns_per_op r.alloc_words_per_op
        (if i = List.length results - 1 then "" else ","))
    results;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc

let run_kernels () =
  print_endline "=================================================";
  print_endline " Flat-kernel bench (boxed vs packed trial loop)";
  print_endline "=================================================";
  let rng = Prng.of_int seed in
  let s = Subscription.of_bounds (List.init kernel_m (fun _ -> (0, 9999))) in
  (* Near-cover rows: every row contains the drawn point on the first
     m-1 attributes and misses on the last, so a trial reads all
     k x m bound pairs — the regime where RSPC actually spends its
     budget (rows that reject on attribute 0 are pruned away long
     before the trial loop). *)
  let subs =
    Array.init kernel_k (fun i ->
        Subscription.of_bounds
          (List.init kernel_m (fun j ->
               if j = kernel_m - 1 then (20_000 + i, 30_000 + i)
               else (0, 9999))))
  in
  let packed = Flat.pack ~m:kernel_m subs in
  let sbox = Flat.box_of_sub s in
  let p = Array.make kernel_m 0 in
  let boxed_trial () =
    let q = Rspc.random_point ~rng s in
    assert (Rspc.escapes q subs)
  in
  let flat_trial () =
    Flat.random_point_into ~rng sbox p;
    assert (Flat.escapes packed p)
  in
  (* The parallel path's per-domain inner loop
     (Rspc_parallel.trials_into), on a covered variant of the same
     workload: appending s itself as a final row means no point
     escapes, so every call performs its full budget — no witness
     copy, no early stop — and must allocate nothing. This is the loop
     each domain runs under Domain.spawn; measured here single-domain
     so Gc counters are meaningful. *)
  let inner_budget = 1000 in
  let inner_calls = kernel_d / inner_budget in
  let packed_covered = Flat.pack ~m:kernel_m (Array.append subs [| s |]) in
  let found : int array option Atomic.t = Atomic.make None in
  let parallel_inner_batch () =
    let performed =
      Rspc_parallel.trials_into ~rng ~sbox ~packed:packed_covered ~found
        ~budget:inner_budget p
    in
    assert (performed = inner_budget)
  in
  (* Warm up all paths so one-time setup does not pollute Gc counts. *)
  for _ = 1 to 1000 do
    boxed_trial ();
    flat_trial ()
  done;
  for _ = 1 to 10 do
    parallel_inner_batch ()
  done;
  let boxed_alloc = alloc_words_per_op boxed_trial kernel_d in
  let flat_alloc = alloc_words_per_op flat_trial kernel_d in
  let parallel_alloc =
    alloc_words_per_op parallel_inner_batch inner_calls
    /. float_of_int inner_budget
  in
  let boxed_ns = time_ns_per_op boxed_trial kernel_d in
  let flat_ns = time_ns_per_op flat_trial kernel_d in
  let parallel_ns =
    time_ns_per_op parallel_inner_batch inner_calls
    /. float_of_int inner_budget
  in
  let speedup = boxed_ns /. flat_ns in
  let results =
    [
      {
        op = "escape_trial_boxed";
        ns_per_op = boxed_ns;
        alloc_words_per_op = boxed_alloc;
      };
      {
        op = "escape_trial_flat";
        ns_per_op = flat_ns;
        alloc_words_per_op = flat_alloc;
      };
      {
        (* Per trial, not per call: each call performs inner_budget
           trials on k+1 rows (the appended covering row). *)
        op = "escape_trial_parallel_inner";
        ns_per_op = parallel_ns;
        alloc_words_per_op = parallel_alloc;
      };
    ]
  in
  Printf.printf "k=%d m=%d trials=%d\n" kernel_k kernel_m kernel_d;
  List.iter
    (fun r ->
      Printf.printf "%-24s %10.1f ns/trial  %8.4f words/trial\n" r.op
        r.ns_per_op r.alloc_words_per_op)
    results;
  Printf.printf "speedup (boxed/flat): %.2fx\n" speedup;
  emit_json "BENCH_rspc.json" results;
  print_endline "wrote BENCH_rspc.json";
  (* Acceptance gates: the packed trial must be allocation-free (any
     real allocation is >= 1 word per trial; the slack only absorbs the
     Gc probe's own boxed floats) and at least 2x the boxed path. *)
  if flat_alloc >= 0.01 then begin
    Printf.eprintf
      "FAIL: flat trial allocates %.4f words/trial (expected 0)\n" flat_alloc;
    exit 1
  end;
  if parallel_alloc >= 0.01 then begin
    Printf.eprintf
      "FAIL: parallel inner loop allocates %.4f words/trial (expected 0)\n"
      parallel_alloc;
    exit 1
  end;
  if speedup < 2.0 then begin
    Printf.eprintf "FAIL: flat speedup %.2fx < 2x over boxed path\n" speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Engine pipeline bench: end-to-end classification throughput through
   the subscription store under the group policy — sequential vs a
   shared domain pool — plus an RSPC-level comparison of pool reuse
   against per-call domain spawning. (Item-parallel batching is
   benched on the sharded store, `shard`, where routing bounds the
   snapshot invalidation that sank the flat store's batch path.)
   Emits BENCH_engine.json. Every parallel mode must reproduce the
   sequential results bit-for-bit (the stores share a seed); a
   mismatch is a hard failure, a low speedup is not (this may run on a
   single-core machine — the JSON records the core count). *)

type engine_params = {
  fast : bool;
  ek : int; (* staircase active-set size *)
  em : int; (* arity *)
  cap : int; (* RSPC max_iterations *)
  arrivals : int;
  workers : int; (* pool workers; domains = workers + 1 *)
  micro_k : int; (* rows in the RSPC reuse micro *)
  micro_d : int; (* trial budget of the RSPC reuse micro *)
  micro_reps : int;
}

let engine_params ~fast =
  if fast then
    { fast; ek = 100; em = 8; cap = 800; arrivals = 40; workers = 3;
      micro_k = 64; micro_d = 4096; micro_reps = 3 }
  else
    { fast; ek = 1000; em = 8; cap = 4000; arrivals = 200; workers = 3;
      micro_k = 128; micro_d = 16384; micro_reps = 5 }

(* Staircase workload. Base rows overlap in a chain on attribute 0
   (row i spans [i·g, i·g + 2g], full range elsewhere), so each is
   active on arrival — not covered by the union of its predecessors —
   while a later arrival spanning many steps is covered by the group
   but by no single row: exactly the regime where the engine must
   spend its RSPC budget. Every fourth arrival instead lands beyond
   the staircase (no intersecting candidate: an instant active
   verdict), mixing instant and budget-bound classifications. *)
let staircase_base p =
  let g = 9000 / p.ek in
  Array.init p.ek (fun i ->
      Subscription.of_bounds
        (List.init p.em (fun j ->
             if j = 0 then (i * g, (i * g) + (2 * g)) else (0, 9999))))

let engine_arrivals p =
  let g = 9000 / p.ek in
  let span = 5000 in
  Array.init p.arrivals (fun j ->
      Subscription.of_bounds
        (List.init p.em (fun a ->
             if a <> 0 then (0, 9999)
             else if j mod 4 = 3 then (9900, 9999)
             else begin
               let lo = g + (j * 37 mod (3800 - g)) in
               (lo, lo + span)
             end)))

let time_s f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let placements_equal a b =
  Array.length a = Array.length b
  && begin
       let ok = ref true in
       Array.iteri (fun i (id, p) -> if b.(i) <> (id, p) then ok := false) a;
       !ok
     end

let run_engine ~fast () =
  let p = engine_params ~fast in
  print_endline "=================================================";
  print_endline " Engine pipeline bench (sequential vs pool)";
  print_endline "=================================================";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "k=%d m=%d cap=%d arrivals=%d domains=%d (machine cores: %d)\n"
    p.ek p.em p.cap p.arrivals (p.workers + 1) cores;
  let cfg = Engine.config ~delta:1e-6 ~max_iterations:p.cap () in
  let policy = Subscription_store.Group_policy cfg in
  let base = staircase_base p in
  let arrivals = engine_arrivals p in
  let store_seed = 7 in
  Domain_pool.with_pool ~workers:p.workers (fun pool ->
      let seq_store =
        Subscription_store.create ~policy ~arity:p.em ~seed:store_seed ()
      in
      let pooled_store =
        Subscription_store.create ~policy ~pool ~arity:p.em ~seed:store_seed ()
      in
      (* Untimed: install the staircase active set in every store. *)
      Array.iter
        (fun s ->
          ignore (Subscription_store.add seq_store s);
          ignore (Subscription_store.add pooled_store s))
        base;
      (* Timed: classify the arrival stream both ways. *)
      let add_loop store () =
        Array.map (fun s -> Subscription_store.add store s) arrivals
      in
      let seq_res, seq_t = time_s (add_loop seq_store) in
      let pooled_res, pooled_t = time_s (add_loop pooled_store) in
      let verdicts_match =
        placements_equal seq_res pooled_res
        && Subscription_store.active_count seq_store
           = Subscription_store.active_count pooled_store
      in
      let thru t = float_of_int p.arrivals /. t in
      Printf.printf "%-12s %8.3f s  %10.1f subs/s\n" "sequential" seq_t
        (thru seq_t);
      Printf.printf "%-12s %8.3f s  %10.1f subs/s  (x%.2f)\n" "pooled"
        pooled_t (thru pooled_t) (seq_t /. pooled_t);
      Printf.printf "parallel results identical to sequential: %b\n"
        verdicts_match;
      (* RSPC reuse micro: the same parallel runner, fed per call by a
         throwaway pool (per-call spawn) versus the shared pool. A
         final all-containing row keeps every run at its full budget
         so the three modes do identical work; fresh generators per
         rep make their outcomes comparable bit-for-bit. *)
      let micro_subs =
        Array.init (p.micro_k + 1) (fun i ->
            Subscription.of_bounds
              (List.init p.em (fun j ->
                   if i = p.micro_k || j <> p.em - 1 then (0, 9999)
                   else (20_000 + i, 30_000 + i))))
      in
      let micro_s =
        Subscription.of_bounds (List.init p.em (fun _ -> (0, 9999)))
      in
      let micro_packed = Flat.pack ~m:p.em micro_subs in
      let micro_sbox = Flat.box_of_sub micro_s in
      let micro_run ~mode rep =
        let rng = Prng.of_int (store_seed + (1000 * rep)) in
        match mode with
        | `Seq -> Rspc.run_packed ~rng ~d:p.micro_d ~sbox:micro_sbox micro_packed
        | `Spawn ->
            Rspc_parallel.run_packed ~domains:(p.workers + 1) ~rng
              ~d:p.micro_d ~sbox:micro_sbox micro_packed
        | `Pool ->
            Rspc_parallel.run_packed ~pool ~rng ~d:p.micro_d ~sbox:micro_sbox
              micro_packed
      in
      let time_mode mode =
        let runs = ref [] in
        let _, t =
          time_s (fun () ->
              for rep = 1 to p.micro_reps do
                runs := micro_run ~mode rep :: !runs
              done)
        in
        (List.rev !runs, t *. 1e9 /. float_of_int p.micro_reps)
      in
      let seq_runs, seq_ns = time_mode `Seq in
      let spawn_runs, spawn_ns = time_mode `Spawn in
      let pool_runs, pool_ns = time_mode `Pool in
      let micro_match = seq_runs = spawn_runs && seq_runs = pool_runs in
      let reuse_speedup = spawn_ns /. pool_ns in
      Printf.printf
        "rspc micro (k=%d, d=%d): seq %.2e ns, per-call spawn %.2e ns, \
         shared pool %.2e ns  (reuse x%.2f, identical: %b)\n"
        p.micro_k p.micro_d seq_ns spawn_ns pool_ns reuse_speedup micro_match;
      let oc = open_out "BENCH_engine.json" in
      Printf.fprintf oc "{\n  \"bench\": \"engine_pipeline\",\n";
      Printf.fprintf oc "  \"fast\": %b,\n  \"cores\": %d,\n" p.fast cores;
      Printf.fprintf oc
        "  \"k\": %d,\n  \"m\": %d,\n  \"max_iterations\": %d,\n" p.ek p.em
        p.cap;
      Printf.fprintf oc "  \"arrivals\": %d,\n  \"domains\": %d,\n"
        p.arrivals (p.workers + 1);
      Printf.fprintf oc "  \"modes\": [\n";
      List.iteri
        (fun i (name, t) ->
          Printf.fprintf oc
            "    { \"mode\": %S, \"seconds\": %.4f, \"subs_per_sec\": %.1f \
             }%s\n"
            name t (thru t)
            (if i = 1 then "" else ","))
        [ ("sequential", seq_t); ("pooled", pooled_t) ];
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc "  \"speedup_pooled\": %.3f,\n" (seq_t /. pooled_t);
      Printf.fprintf oc
        "  \"rspc_micro\": { \"k\": %d, \"d\": %d, \"seq_ns\": %.0f, \
         \"spawn_ns\": %.0f, \"pool_ns\": %.0f, \"pool_reuse_speedup\": \
         %.3f },\n"
        p.micro_k p.micro_d seq_ns spawn_ns pool_ns reuse_speedup;
      Printf.fprintf oc "  \"verdicts_match\": %b\n}\n"
        (verdicts_match && micro_match);
      close_out oc;
      print_endline "wrote BENCH_engine.json";
      if not (verdicts_match && micro_match) then begin
        Printf.eprintf
          "FAIL: parallel classification diverged from the sequential \
           reference\n";
        exit 1
      end)

(* ------------------------------------------------------------------ *)
(* Recovery bench: WAL append overhead per store mutation (in-memory
   device and real files), replay throughput of Store_log.recover, and
   snapshot+compact latency. Emits BENCH_recovery.json. Same verdict
   contract as the engine bench: the recovered store must be
   equal_state to the live one that wrote the log — at every stage,
   including after compaction and on re-recovery (the fixpoint) — or
   the bench hard-fails. *)

let recovery_arity = 4
let recovery_store_seed = 11

(* Deterministic mixed mutation script: adds with leases, interleaved
   removes, renews and expiry sweeps. [subs] is pre-drawn so every
   store sees identical inputs; the live-id bookkeeping evolves
   identically too because the stores are deterministic. *)
let recovery_script ~n =
  let rng = Prng.of_int 99 in
  Array.init n (fun _ ->
      Subscription.of_bounds
        (List.init recovery_arity (fun _ ->
             let lo = Prng.int rng 1024 in
             (lo, lo + 1 + Prng.int rng 256))))

let recovery_apply subs store =
  let live = ref [] in
  (* newest first *)
  Array.iteri
    (fun i sub ->
      let now = float_of_int i in
      if i mod 7 = 3 && !live <> [] then begin
        let id = List.hd !live in
        live := List.tl !live;
        ignore (Subscription_store.remove store id)
      end
      else if i mod 11 = 5 && !live <> [] then
        Subscription_store.renew store (List.hd !live)
          ~expires_at:(now +. 80.0)
      else if i mod 29 = 17 then begin
        let expired, _ = Subscription_store.expire store ~now in
        live := List.filter (fun id -> not (List.mem id expired)) !live
      end
      else begin
        let id, _ =
          Subscription_store.add_with_expiry store sub
            ~expires_at:(now +. 40.0)
        in
        live := id :: !live
      end)
    subs

let run_recovery ~fast () =
  let module Sl = Probsub_store_log in
  print_endline "=================================================";
  print_endline " Recovery bench (WAL append / replay / compact)";
  print_endline "=================================================";
  let n = if fast then 500 else 5000 in
  let policy = Subscription_store.Pairwise_policy in
  let mk_plain () =
    Subscription_store.create ~policy ~arity:recovery_arity
      ~seed:recovery_store_seed ()
  in
  let subs = recovery_script ~n in
  (* Plain store: the no-journal baseline. *)
  let plain = mk_plain () in
  let (), plain_t = time_s (fun () -> recovery_apply subs plain) in
  (* Journaled store over the in-memory device. *)
  let sim_device, _, _ = Sl.Device.in_memory () in
  let sim_store, sim_log =
    Sl.Store_log.fresh ~policy ~device:sim_device ~arity:recovery_arity
      ~seed:recovery_store_seed ()
  in
  let (), sim_t = time_s (fun () -> recovery_apply subs sim_store) in
  (* Journaled store over real files, fsync-free but flushed per op. *)
  let fs_dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "probsub_bench_recovery_%d" (Unix.getpid ()))
  in
  let fs_device = Sl.Device.fs ~dir:fs_dir in
  let fs_store, _ =
    Sl.Store_log.fresh ~policy ~device:fs_device ~arity:recovery_arity
      ~seed:recovery_store_seed ()
  in
  let (), fs_t = time_s (fun () -> recovery_apply subs fs_store) in
  let wal_bytes = Sl.Store_log.wal_size sim_log in
  let wal_records =
    List.length (Sl.Wal.scan (sim_device.Sl.Device.read_wal ())).Sl.Wal.records
  in
  let fail msg =
    Printf.eprintf "FAIL: %s\n" msg;
    exit 1
  in
  if not (Subscription_store.equal_state plain sim_store) then
    fail "journaled store diverged from the plain baseline";
  (* Replay throughput. *)
  let recover () =
    match Sl.Store_log.recover ~device:sim_device () with
    | Ok r -> r
    | Error msg -> fail ("recovery failed: " ^ msg)
  in
  let r1, replay_t = time_s recover in
  if not (Subscription_store.equal_state sim_store r1.Sl.Store_log.r_store)
  then fail "recovered store mismatches the live store";
  if r1.Sl.Store_log.r_repaired then fail "clean log reported as repaired";
  (* Snapshot + compaction latency, then the post-compact and fixpoint
     recoveries must land on the same state. *)
  let (), compact_t =
    time_s (fun () ->
        Sl.Store_log.compact r1.Sl.Store_log.r_log r1.Sl.Store_log.r_store
          ~bindings:[])
  in
  let r2, _ = time_s recover in
  if not (Subscription_store.equal_state sim_store r2.Sl.Store_log.r_store)
  then fail "post-compaction recovery mismatches the live store";
  let r3, _ = time_s recover in
  if not
       (Subscription_store.equal_state r2.Sl.Store_log.r_store
          r3.Sl.Store_log.r_store)
  then fail "re-recovery is not a fixpoint";
  (* Best-effort cleanup of the fs device's directory. *)
  (try
     Array.iter
       (fun f -> Sys.remove (Filename.concat fs_dir f))
       (Sys.readdir fs_dir);
     Sys.rmdir fs_dir
   with Sys_error _ -> ());
  let per_op t = t *. 1e9 /. float_of_int n in
  let replay_ops_per_sec = float_of_int wal_records /. replay_t in
  Printf.printf "ops=%d wal=%d bytes (%d records)\n" n wal_bytes wal_records;
  Printf.printf "%-22s %10.1f ns/op\n" "plain (no journal)" (per_op plain_t);
  Printf.printf "%-22s %10.1f ns/op  (overhead x%.2f)\n" "journaled (memory)"
    (per_op sim_t) (sim_t /. plain_t);
  Printf.printf "%-22s %10.1f ns/op  (overhead x%.2f)\n" "journaled (files)"
    (per_op fs_t) (fs_t /. plain_t);
  Printf.printf "replay: %.0f records/s   snapshot+compact: %.3f ms\n"
    replay_ops_per_sec (compact_t *. 1e3);
  let oc = open_out "BENCH_recovery.json" in
  Printf.fprintf oc "{\n  \"bench\": \"recovery\",\n";
  Printf.fprintf oc "  \"fast\": %b,\n  \"ops\": %d,\n" fast n;
  Printf.fprintf oc "  \"wal_bytes\": %d,\n  \"wal_records\": %d,\n" wal_bytes
    wal_records;
  Printf.fprintf oc "  \"plain_ns_per_op\": %.1f,\n" (per_op plain_t);
  Printf.fprintf oc "  \"journal_mem_ns_per_op\": %.1f,\n" (per_op sim_t);
  Printf.fprintf oc "  \"journal_fs_ns_per_op\": %.1f,\n" (per_op fs_t);
  Printf.fprintf oc "  \"append_overhead_mem\": %.3f,\n" (sim_t /. plain_t);
  Printf.fprintf oc "  \"append_overhead_fs\": %.3f,\n" (fs_t /. plain_t);
  Printf.fprintf oc "  \"replay_records_per_sec\": %.1f,\n" replay_ops_per_sec;
  Printf.fprintf oc "  \"compact_ms\": %.3f,\n" (compact_t *. 1e3);
  Printf.fprintf oc "  \"verdicts_match\": true\n}\n";
  close_out oc;
  print_endline "wrote BENCH_recovery.json"

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: one test per table/figure ingredient. *)

let micro_tests () =
  let open Bechamel in
  let rng = Prng.of_int seed in
  (* Fixed instances so each run times the same work. *)
  let table3_s = Subscription.of_bounds [ (830, 870); (1003, 1006) ] in
  let table3_set =
    [|
      Subscription.of_bounds [ (820, 850); (1001, 1007) ];
      Subscription.of_bounds [ (840, 880); (1002, 1009) ];
    |]
  in
  let covering = Scenario.redundant_covering rng ~m:10 ~k:100 in
  let noncover = Scenario.non_cover rng ~m:10 ~k:100 in
  let extreme = Scenario.extreme_non_cover rng ~m:5 ~k:50 ~gap_fraction:0.01 in
  let covering_table =
    Conflict_table.build ~s:covering.Scenario.s covering.Scenario.set
  in
  let covered_box = Subscription.of_bounds [ (10, 20); (10, 20) ] in
  let covered_set =
    [|
      Subscription.of_bounds [ (0, 15); (0, 99) ];
      Subscription.of_bounds [ (14, 99); (0, 99) ];
    |]
  in
  let engine_cfg = Engine.config ~delta:1e-6 ~max_iterations:2000 () in
  let stream = Scenario.comparison_stream rng ~m:10 ~n:200 in
  let store =
    Subscription_store.create
      ~policy:(Subscription_store.Group_policy engine_cfg) ~arity:10
      ~seed:7 ()
  in
  List.iter (fun s -> ignore (Subscription_store.add store s)) stream;
  let pub =
    Scenario.random_matching_publication rng (List.hd stream)
  in
  let stage f = Staged.stage f in
  [
    Test.make ~name:"table5: conflict table build (k=2, m=2)"
      (stage (fun () ->
           ignore (Conflict_table.build ~s:table3_s table3_set)));
    Test.make ~name:"fig6: conflict table build (k=100, m=10)"
      (stage (fun () ->
           ignore
             (Conflict_table.build ~s:covering.Scenario.s
                covering.Scenario.set)));
    Test.make ~name:"fig6: MCS reduction (k=100, m=10)"
      (stage (fun () -> ignore (Mcs.run covering_table)));
    Test.make ~name:"fig7: Algorithm 2 rho/d (k=100, m=10)"
      (stage (fun () ->
           ignore (Rho.log10_d (Rho.estimate covering_table) ~delta:1e-10)));
    Test.make ~name:"fig10: engine check, non-cover (k=100, m=10)"
      (stage (fun () ->
           ignore
             (Engine.check ~config:engine_cfg ~rng noncover.Scenario.s
                noncover.Scenario.set)));
    Test.make ~name:"fig11: engine check, extreme 1% gap (k=50, m=5)"
      (stage (fun () ->
           ignore
             (Engine.check ~config:engine_cfg ~rng extreme.Scenario.s
                extreme.Scenario.set)));
    Test.make ~name:"fig11: single RSPC trial batch (d=100)"
      (stage (fun () ->
           ignore
             (Rspc.run ~rng ~d:100 ~s:extreme.Scenario.s
                extreme.Scenario.set)));
    Test.make ~name:"ext: RSPC 50k trials, sequential (covered input)"
      (stage (fun () ->
           ignore
             (Rspc.run ~rng ~d:50_000 ~s:covered_box
                covered_set)));
    Test.make ~name:"ext: RSPC 50k trials, parallel domains (covered input)"
      (stage (fun () ->
           ignore
             (Rspc_parallel.run ~rng ~d:50_000 ~s:covered_box
                covered_set)));
    Test.make ~name:"fig13: pairwise coverage scan (k=100, m=10)"
      (stage (fun () ->
           ignore (Pairwise.find_coverer covering.Scenario.s covering.Scenario.set)));
    Test.make ~name:"fig13/14: group-store add+remove (|active|~60)"
      (stage (fun () ->
           let id, _ =
             Subscription_store.add store (List.hd stream)
           in
           ignore (Subscription_store.remove store id)));
    Test.make ~name:"alg5: match publication (200 subs)"
      (stage (fun () -> ignore (Subscription_store.match_publication store pub)));
  ]

let run_micro () =
  let open Bechamel in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) ()
  in
  let tests = micro_tests () in
  print_endline "=================================================";
  print_endline " Micro-benchmarks (Bechamel, ns per run)";
  print_endline "=================================================";
  List.iter
    (fun test ->
      let results =
        Benchmark.all cfg [ instance ]
          (Test.make_grouped ~name:"g" ~fmt:"%s %s" [ test ])
      in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false
          ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> Printf.printf "%-55s %12.1f ns/run\n" name ns
          | Some _ | None -> Printf.printf "%-55s (no estimate)\n" name)
        analyzed)
    tests


(* ------------------------------------------------------------------ *)
(* Sharded fabric bench: the sharded store against the flat store on
   identical workloads, then shard-only growth to very large sizes
   (100k stored subscriptions by default, 1M with --full, small with
   `fast` for CI). Emits BENCH_shard.json. Three phases:

   1. Equivalence + flat comparison at a size the flat store can
      handle: both stores absorb the same seed set and classify the
      same arrival stream under the same store seed; ids, placements,
      coverer lists, final active/covered sets, match sets and
      publication reports must all agree (hard failure otherwise), and
      the sharded add throughput is recorded against the flat store's
      at several pool worker counts.
   2. Scale: grow a sharded store to the target size via add_batch at
      each worker count; placements must be identical across worker
      counts (the pre-split generator discipline) and the digests are
      compared to enforce it.
   3. Matching at scale: publication fan-out throughput and the
      per-publication active-scan cost, spot-checked against the
      exhaustive scan.

   Low speedups are tolerated on starved machines (the JSON records
   the core count); divergent verdicts never are. *)

type shard_params = {
  label : string;
  sm : int; (* arity *)
  sk0 : int; (* equivalence-phase seed size (flat-feasible) *)
  s_arrivals : int; (* equivalence-phase timed arrivals *)
  target : int; (* scale-phase stored subscriptions *)
  sshards : int; (* shard count at scale *)
  s_workers : int list; (* pool worker counts swept (0 = no pool) *)
  s_pubs : int; (* publications timed at scale *)
}

let shard_params = function
  | `Fast ->
      { label = "fast"; sm = 4; sk0 = 1200; s_arrivals = 300; target = 20_000;
        sshards = 64; s_workers = [ 0; 1; 3 ]; s_pubs = 200 }
  | `Default ->
      { label = "default"; sm = 4; sk0 = 8000; s_arrivals = 2000;
        target = 100_000; sshards = 128; s_workers = [ 0; 1; 3 ];
        s_pubs = 1000 }
  | `Full ->
      { label = "full"; sm = 4; sk0 = 20_000; s_arrivals = 4000;
        target = 1_000_000; sshards = 256; s_workers = [ 0; 1; 3 ];
        s_pubs = 1000 }

let shard_domain0 = Interval.make ~lo:0 ~hi:999_999

(* Index-hashed workload, no RNG: subscription [i] is narrow on
   attribute 0 (width 50 at a scrambled position — the stripe router's
   bread and butter) and moderate elsewhere. Every 10th is a shrunk
   copy of the 9th-previous one, guaranteed covered on arrival, so the
   coverage machinery runs at every scale; every 97th is unconstrained
   on attribute 0 and routes to the fallback shard. *)
let shard_sub ~m i =
  if i mod 10 = 9 then begin
    let b = i - 9 in
    let pos = b * 2654435761 land 0xFFFFFFF mod 999_000 in
    Subscription.of_bounds
      (List.init m (fun j ->
           if j = 0 then (pos + 10, pos + 39)
           else begin
             let v = ((b * 31) + (j * 977)) mod 99_000 in
             (v + 100, v + 899)
           end))
  end
  else
    Subscription.of_bounds
      (List.init m (fun j ->
           if j = 0 then
             if i mod 97 = 13 then (0, 999_999)
             else begin
               let pos = i * 2654435761 land 0xFFFFFFF mod 999_000 in
               (pos, pos + 49)
             end
           else begin
             let v = ((i * 31) + (j * 977)) mod 99_000 in
             (v, v + 999)
           end))

let shard_pub ~m i =
  let pos = i * 40503 land 0xFFFFF mod 999_999 in
  Publication.point
    (Array.init m (fun j ->
         if j = 0 then pos else (pos + (j * 977)) mod 99_000))

(* Order- and content-sensitive fold over a result array; cheap to
   compare across worker counts without retaining 1M-entry arrays. *)
let shard_digest acc rs =
  Array.fold_left
    (fun acc (id, pl) ->
      let c =
        match pl with
        | Subscription_store.Active -> 17
        | Subscription_store.Covered by ->
            31 + List.fold_left ( + ) (List.length by) by
      in
      (acc * 1_000_003) + id + c)
    acc rs

let run_shard ~mode () =
  let p = shard_params mode in
  print_endline "=================================================";
  print_endline " Sharded fabric bench (shard store vs flat store)";
  print_endline "=================================================";
  let cores = Domain.recommended_domain_count () in
  Printf.printf "mode=%s m=%d k0=%d target=%d shards=%d (machine cores: %d)\n"
    p.label p.sm p.sk0 p.target p.sshards cores;
  let cfg = Engine.config ~delta:1e-6 ~max_iterations:2000 () in
  let policy = Subscription_store.Group_policy cfg in
  let store_seed = 7 in
  let all_ok = ref true in
  let note ok msg =
    if not ok then begin
      all_ok := false;
      Printf.eprintf "FAIL: %s\n" msg
    end
  in
  let with_workers workers f =
    if workers = 0 then f None
    else Domain_pool.with_pool ~workers (fun pool -> f (Some pool))
  in
  (* --- Phase 1: equivalence + flat comparison --------------------- *)
  let seed_subs = Array.init p.sk0 (fun i -> shard_sub ~m:p.sm i) in
  let arrivals =
    Array.init p.s_arrivals (fun i -> shard_sub ~m:p.sm (p.sk0 + i))
  in
  let flat =
    Subscription_store.create ~policy ~arity:p.sm ~seed:store_seed ()
  in
  Array.iter (fun s -> ignore (Subscription_store.add flat s)) seed_subs;
  let flat_res, flat_t =
    time_s (fun () -> Array.map (Subscription_store.add flat) arrivals)
  in
  let eq_rows =
    List.map
      (fun workers ->
        with_workers workers (fun pool ->
            let t =
              Shard_store.create ~policy ?pool ~shards:p.sshards
                ~domain0:shard_domain0 ~arity:p.sm ~seed:store_seed ()
            in
            ignore (Shard_store.add_batch t seed_subs);
            let res, dt = time_s (fun () -> Shard_store.add_batch t arrivals) in
            note (res = flat_res)
              (Printf.sprintf
                 "sharded placements diverge from flat (workers=%d)" workers);
            if workers = 0 then begin
              note
                (Subscription_store.active flat = Shard_store.active t
                && Subscription_store.covered flat = Shard_store.covered t)
                "sharded final state diverges from flat";
              note
                (Subscription_store.splits_consumed flat
                = Shard_store.splits_consumed t)
                "sharded split stream diverges from flat";
              (* Publication agreement: match sets exactly; reports up
                 to row indexing (rows index each store's candidate
                 array; full fidelity is property-tested). *)
              for i = 0 to 19 do
                let pub = shard_pub ~m:p.sm (i * 131) in
                note
                  (Subscription_store.match_publication flat pub
                  = Shard_store.match_publication t pub)
                  (Printf.sprintf "match sets diverge on publication %d" i);
                let ra =
                  Subscription_store.check_publication flat
                    ~rng:(Prng.of_int (900 + i)) pub
                in
                let rb =
                  Shard_store.check_publication t
                    ~rng:(Prng.of_int (900 + i)) pub
                in
                note
                  (Engine.is_covered ra.Engine.verdict
                   = Engine.is_covered rb.Engine.verdict
                  && ra.Engine.k_pruned = rb.Engine.k_pruned
                  && ra.Engine.k_reduced = rb.Engine.k_reduced
                  && ra.Engine.d_used = rb.Engine.d_used
                  && ra.Engine.iterations = rb.Engine.iterations)
                  (Printf.sprintf "check reports diverge on publication %d" i)
              done
            end;
            (workers, dt)))
      p.s_workers
  in
  let thru n t = float_of_int n /. t in
  Printf.printf "equivalence phase: k0=%d arrivals=%d\n" p.sk0 p.s_arrivals;
  Printf.printf "%-18s %8.3f s  %10.1f adds/s\n" "flat" flat_t
    (thru p.s_arrivals flat_t);
  List.iter
    (fun (w, dt) ->
      Printf.printf "%-18s %8.3f s  %10.1f adds/s  (x%.2f vs flat)\n"
        (Printf.sprintf "sharded (w=%d)" w)
        dt
        (thru p.s_arrivals dt)
        (flat_t /. dt))
    eq_rows;
  let beats_flat =
    List.exists (fun (w, dt) -> w >= 1 && dt < flat_t) eq_rows
  in
  note beats_flat "sharded add throughput does not beat flat at >= 2 domains";
  (* --- Phase 2: scale --------------------------------------------- *)
  let scale_store = ref None in
  let scale_rows =
    List.map
      (fun workers ->
        with_workers workers (fun pool ->
            let t =
              Shard_store.create ~policy ?pool ~shards:p.sshards
                ~domain0:shard_domain0 ~arity:p.sm ~seed:store_seed ()
            in
            let digest = ref 0 in
            let chunk = 10_000 in
            let _, dt =
              time_s (fun () ->
                  let i = ref 0 in
                  while !i < p.target do
                    let b = min chunk (p.target - !i) in
                    let batch =
                      Array.init b (fun j -> shard_sub ~m:p.sm (!i + j))
                    in
                    digest := shard_digest !digest (Shard_store.add_batch t batch);
                    i := !i + b
                  done)
            in
            (* Keep the no-pool store for the matching phase: it must
               outlive this closure, and a pooled store would hold a
               pool that with_pool is about to shut down. *)
            if workers = 0 then scale_store := Some t;
            (workers, dt, !digest, Shard_store.active_count t)))
      p.s_workers
  in
  Printf.printf "scale phase: %d stored subscriptions\n" p.target;
  List.iter
    (fun (w, dt, _, actives) ->
      Printf.printf "%-18s %8.3f s  %10.1f adds/s  (%d active)\n"
        (Printf.sprintf "grow (w=%d)" w)
        dt
        (thru p.target dt)
        actives)
    scale_rows;
  let consistent =
    match scale_rows with
    | [] -> true
    | (_, _, d0, a0) :: rest ->
        List.for_all (fun (_, _, d, a) -> d = d0 && a = a0) rest
  in
  note consistent "scale-phase placements diverge across worker counts";
  (* --- Phase 3: matching at scale ---------------------------------- *)
  let t =
    match !scale_store with
    | Some t -> t
    | None ->
        (* Unreachable: s_workers always contains 0. *)
        Shard_store.create ~policy ~shards:p.sshards ~domain0:shard_domain0
          ~arity:p.sm ~seed:store_seed ()
  in
  let st0 = Shard_store.stats t in
  let hits = ref 0 in
  let _, match_t =
    time_s (fun () ->
        for i = 0 to p.s_pubs - 1 do
          hits :=
            !hits + List.length (Shard_store.match_publication t (shard_pub ~m:p.sm i))
        done)
  in
  let st1 = Shard_store.stats t in
  let per_pub c = float_of_int c /. float_of_int p.s_pubs in
  (* One-by-one Publication.matches tests (zero on the indexed active
     path; covered descent only) vs counting-index hits processed. *)
  let avg_scans =
    per_pub
      (st1.Subscription_store.active_scans + st1.Subscription_store.covered_scans
      - st0.Subscription_store.active_scans
      - st0.Subscription_store.covered_scans)
  in
  let avg_index_hits =
    per_pub
      (st1.Subscription_store.index_hits - st0.Subscription_store.index_hits)
  in
  for i = 0 to 4 do
    let pub = shard_pub ~m:p.sm (i * 211) in
    note
      (Shard_store.match_publication t pub
      = Shard_store.match_publication_exhaustive t pub)
      (Printf.sprintf "match spot-check %d diverges from exhaustive scan" i)
  done;
  Printf.printf
    "matching: %d pubs, %.1f pubs/s, %.1f scans/pub + %.1f index hits/pub \
     (of %d active), %d hits\n"
    p.s_pubs
    (thru p.s_pubs match_t)
    avg_scans avg_index_hits
    (Shard_store.active_count t)
    !hits;
  (* --- Emit -------------------------------------------------------- *)
  let oc = open_out "BENCH_shard.json" in
  Printf.fprintf oc "{\n  \"bench\": \"shard_fabric\",\n";
  Printf.fprintf oc "  \"mode\": %S,\n  \"cores\": %d,\n" p.label cores;
  Printf.fprintf oc
    "  \"m\": %d,\n  \"shards\": %d,\n  \"stored\": %d,\n" p.sm p.sshards
    p.target;
  Printf.fprintf oc
    "  \"equivalence\": {\n    \"k0\": %d,\n    \"arrivals\": %d,\n\
    \    \"flat_seconds\": %.4f,\n    \"flat_adds_per_sec\": %.1f,\n\
    \    \"sharded\": [\n"
    p.sk0 p.s_arrivals flat_t (thru p.s_arrivals flat_t);
  List.iteri
    (fun i (w, dt) ->
      Printf.fprintf oc
        "      { \"workers\": %d, \"domains\": %d, \"seconds\": %.4f, \
         \"adds_per_sec\": %.1f, \"speedup_vs_flat\": %.3f }%s\n"
        w (w + 1) dt
        (thru p.s_arrivals dt)
        (flat_t /. dt)
        (if i = List.length eq_rows - 1 then "" else ","))
    eq_rows;
  Printf.fprintf oc "    ]\n  },\n";
  Printf.fprintf oc "  \"sharded_beats_flat_at_2_domains\": %b,\n" beats_flat;
  Printf.fprintf oc "  \"scale\": {\n    \"stored\": %d,\n    \"runs\": [\n"
    p.target;
  List.iteri
    (fun i (w, dt, _, actives) ->
      Printf.fprintf oc
        "      { \"workers\": %d, \"domains\": %d, \"seconds\": %.4f, \
         \"adds_per_sec\": %.1f, \"active\": %d }%s\n"
        w (w + 1) dt (thru p.target dt) actives
        (if i = List.length scale_rows - 1 then "" else ","))
    scale_rows;
  Printf.fprintf oc
    "    ],\n    \"batch_inline_threshold\": %d,\n\
    \    \"consistent_across_workers\": %b\n  },\n"
    Shard_store.batch_inline_threshold consistent;
  Printf.fprintf oc
    "  \"matching\": { \"publications\": %d, \"pubs_per_sec\": %.1f, \
     \"avg_scans_per_pub\": %.1f, \"avg_index_hits_per_pub\": %.1f, \
     \"active\": %d, \"hits\": %d },\n"
    p.s_pubs
    (thru p.s_pubs match_t)
    avg_scans avg_index_hits
    (Shard_store.active_count t)
    !hits;
  Printf.fprintf oc "  \"verdicts_match\": %b\n}\n" !all_ok;
  close_out oc;
  print_endline "wrote BENCH_shard.json";
  if not !all_ok then begin
    Printf.eprintf "FAIL: sharded fabric diverged from the reference\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Match bench: the counting-index data plane against the exhaustive
   Publication.matches oracle over the same stored set. Emits
   BENCH_match.json. Two stores absorb the target subscription count —
   the flat store and the sharded fabric (attribute-0 stripe routing
   composed with per-shard counting indexes) — and both match an
   identical publication stream (9/10 points, 1/10 small boxes).
   Every indexed hit list must be identical to the oracle's, or the
   bench hard-fails. The headline number is the reduction in
   one-by-one Publication.matches scans per publication: the oracle
   tests every stored subscription, the indexed path tests only the
   covered-descent candidates (zero under No_coverage), and the
   conservative "work" ratio also charges the index one unit per
   counting hit. The acceptance gate requires >= 5x. *)

type match_params = {
  mlabel : string;
  mm : int; (* arity *)
  mn : int; (* stored subscriptions *)
  m_pubs : int; (* timed publications *)
  m_shards : int; (* shard count for the fabric store *)
}

let match_params = function
  | `Fast ->
      { mlabel = "fast"; mm = 4; mn = 20_000; m_pubs = 200; m_shards = 64 }
  | `Default ->
      { mlabel = "default"; mm = 4; mn = 100_000; m_pubs = 1000;
        m_shards = 128 }
  | `Full ->
      { mlabel = "full"; mm = 4; mn = 1_000_000; m_pubs = 1000;
        m_shards = 256 }

(* Same index-hashed stream as the shard bench, with every 10th
   publication widened into a small box (the imprecise-source case:
   containment queries instead of stabbing queries). *)
let match_pub ~m i =
  if i mod 10 = 7 then
    let pos = i * 40503 land 0xFFFFF mod 999_000 in
    Publication.box
      (Subscription.of_bounds
         (List.init m (fun j ->
              if j = 0 then (pos, pos + 3)
              else begin
                let v = (pos + (j * 977)) mod 99_000 in
                (v, v + 3)
              end)))
  else shard_pub ~m i

let run_match ~mode () =
  let p = match_params mode in
  print_endline "=================================================";
  print_endline " Match bench (counting index vs exhaustive oracle)";
  print_endline "=================================================";
  Printf.printf "mode=%s m=%d stored=%d pubs=%d shards=%d\n" p.mlabel p.mm
    p.mn p.m_pubs p.m_shards;
  let all_ok = ref true in
  let note ok msg =
    if not ok then begin
      all_ok := false;
      Printf.eprintf "FAIL: %s\n" msg
    end
  in
  (* The data plane is policy-independent; No_coverage keeps every
     subscription active, so the counting index faces the full stored
     set — the worst case the covering control plane would otherwise
     soften (and the regime where the old linear scan was paying
     [mn] Publication.matches tests per publication). *)
  let policy = Subscription_store.No_coverage in
  let flat = Subscription_store.create ~policy ~arity:p.mm ~seed:11 () in
  let (), flat_build_t =
    time_s (fun () ->
        for i = 0 to p.mn - 1 do
          ignore (Subscription_store.add flat (shard_sub ~m:p.mm i))
        done)
  in
  let shard =
    Shard_store.create ~policy ~shards:p.m_shards ~domain0:shard_domain0
      ~arity:p.mm ~seed:11 ()
  in
  let (), shard_build_t =
    time_s (fun () ->
        let chunk = 10_000 in
        let i = ref 0 in
        while !i < p.mn do
          let b = min chunk (p.mn - !i) in
          ignore
            (Shard_store.add_batch shard
               (Array.init b (fun j -> shard_sub ~m:p.mm (!i + j))));
          i := !i + b
        done)
  in
  Printf.printf "build: flat %.2fs, sharded %.2fs\n" flat_build_t
    shard_build_t;
  let pubs = Array.init p.m_pubs (fun i -> match_pub ~m:p.mm i) in
  (* Oracle pass: timed, hit lists retained for the equality gate. *)
  let oracle = Array.make p.m_pubs [] in
  let (), oracle_t =
    time_s (fun () ->
        Array.iteri
          (fun i pub ->
            oracle.(i) <- Subscription_store.match_publication_exhaustive flat pub)
          pubs)
  in
  let per_pub c = float_of_int c /. float_of_int p.m_pubs in
  let oracle_scans = float_of_int p.mn in
  (* Indexed passes; stats deltas attribute the work. *)
  let indexed store_name match_pub_fn stats_fn =
    let st0 = stats_fn () in
    let hits = Array.make p.m_pubs [] in
    let (), dt =
      time_s (fun () ->
          Array.iteri (fun i pub -> hits.(i) <- match_pub_fn pub) pubs)
    in
    let st1 = stats_fn () in
    Array.iteri
      (fun i h ->
        note (h = oracle.(i))
          (Printf.sprintf "%s hit list %d diverges from the oracle"
             store_name i))
      hits;
    let scans =
      per_pub
        (st1.Subscription_store.active_scans
        + st1.Subscription_store.covered_scans
        - st0.Subscription_store.active_scans
        - st0.Subscription_store.covered_scans)
    in
    let idx_hits =
      per_pub
        (st1.Subscription_store.index_hits - st0.Subscription_store.index_hits)
    in
    (dt, scans, idx_hits)
  in
  let flat_t, flat_scans, flat_idx =
    indexed "flat"
      (Subscription_store.match_publication flat)
      (fun () -> Subscription_store.stats flat)
  in
  let shard_t, shard_scans, shard_idx =
    indexed "sharded"
      (Shard_store.match_publication shard)
      (fun () -> Shard_store.stats shard)
  in
  let thru t = float_of_int p.m_pubs /. t in
  let reduction scans = oracle_scans /. Float.max scans 1.0 in
  let work_reduction scans idx = oracle_scans /. Float.max (scans +. idx) 1.0 in
  let flat_work_red = work_reduction flat_scans flat_idx in
  let shard_work_red = work_reduction shard_scans shard_idx in
  Printf.printf "%-10s %10s %14s %14s %10s\n" "store" "pubs/s" "scans/pub"
    "idx hits/pub" "work red.";
  Printf.printf "%-10s %10.1f %14.1f %14s %10s\n" "oracle" (thru oracle_t)
    oracle_scans "-" "1.0x";
  Printf.printf "%-10s %10.1f %14.1f %14.1f %9.1fx\n" "flat" (thru flat_t)
    flat_scans flat_idx flat_work_red;
  Printf.printf "%-10s %10.1f %14.1f %14.1f %9.1fx\n" "sharded" (thru shard_t)
    shard_scans shard_idx shard_work_red;
  (* The acceptance gate is on Publication.matches scans; gate on the
     conservative work ratio, which implies it. *)
  note (flat_work_red >= 5.0)
    "flat indexed matching does not reduce per-pub work by >= 5x";
  note (shard_work_red >= 5.0)
    "sharded indexed matching does not reduce per-pub work by >= 5x";
  let oc = open_out "BENCH_match.json" in
  Printf.fprintf oc "{\n  \"bench\": \"match\",\n  \"mode\": %S,\n" p.mlabel;
  Printf.fprintf oc
    "  \"m\": %d,\n  \"stored\": %d,\n  \"publications\": %d,\n\
    \  \"shards\": %d,\n"
    p.mm p.mn p.m_pubs p.m_shards;
  Printf.fprintf oc
    "  \"oracle\": { \"pubs_per_sec\": %.1f, \"avg_scans_per_pub\": %.1f },\n"
    (thru oracle_t) oracle_scans;
  let emit_store name dt scans idx =
    Printf.fprintf oc
      "  %S: { \"pubs_per_sec\": %.1f, \"avg_scans_per_pub\": %.1f, \
       \"avg_index_hits_per_pub\": %.1f, \"scan_reduction_x\": %.1f, \
       \"work_reduction_x\": %.1f },\n"
      name (thru dt) scans idx (reduction scans) (work_reduction scans idx)
  in
  emit_store "flat" flat_t flat_scans flat_idx;
  emit_store "sharded" shard_t shard_scans shard_idx;
  Printf.fprintf oc "  \"hit_lists_identical\": %b\n}\n" !all_ok;
  close_out oc;
  print_endline "wrote BENCH_match.json";
  if not !all_ok then begin
    Printf.eprintf "FAIL: indexed matching diverged from the oracle\n";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Serve bench: the real multi-process broker fleet under the kill -9
   chaos scenario (lib/server/harness.ml). Closed-loop throughput and
   match-latency percentiles before the kill and after WAL recovery,
   plus the recovery time itself. Emits BENCH_serve.json. The verdict
   contract matches the other benches: loadgen's delivered verdicts
   must be byte-identical to the in-process matching engine, before
   and after the kill, or the bench hard-fails. *)

let run_serve ~fast () =
  let module H = Probsub_server.Harness in
  let module L = Probsub_server.Loadgen in
  print_endline "=================================================";
  print_endline " Serve bench (real sockets, kill -9 recovery)";
  print_endline "=================================================";
  let cc =
    if fast then H.config ~seed ~pubs:20 ()
    else
      H.config ~seed ~brokers:4 ~clients_per_broker:3 ~subs_per_client:6
        ~pubs:100 ()
  in
  Printf.printf "brokers=%d clients=%d subs/client=%d pubs/phase=%d\n"
    cc.H.brokers
    (cc.H.brokers * cc.H.clients_per_broker)
    cc.H.subs_per_client cc.H.pubs;
  let r = H.run cc in
  Format.printf "@[<v>%a@]@." H.pp_result r;
  let post = r.H.post in
  let oc = open_out "BENCH_serve.json" in
  Printf.fprintf oc "{\n  \"bench\": \"serve\",\n  \"fast\": %b,\n" fast;
  Printf.fprintf oc "  \"brokers\": %d,\n  \"connections\": %d,\n" cc.H.brokers
    r.H.connections;
  Printf.fprintf oc "  \"pubs_per_phase\": %d,\n" cc.H.pubs;
  Printf.fprintf oc
    "  \"pre\": { \"pubs_per_sec\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f \
     },\n"
    r.H.pre.L.pubs_per_sec r.H.pre.L.p50_ms r.H.pre.L.p99_ms;
  Printf.fprintf oc
    "  \"pubs_per_sec\": %.1f,\n  \"p50_ms\": %.3f,\n  \"p99_ms\": %.3f,\n"
    post.L.pubs_per_sec post.L.p50_ms post.L.p99_ms;
  Printf.fprintf oc "  \"recovery_seconds\": %.3f,\n" r.H.recovery_seconds;
  Printf.fprintf oc "  \"verdicts_match\": %b\n}\n" r.H.clean;
  close_out oc;
  print_endline "wrote BENCH_serve.json";
  if not r.H.clean then begin
    Printf.eprintf "FAIL: chaos audit failed after kill -9 recovery\n";
    exit 1
  end;
  (* Regression gate: with the peer backoff cap at 0.5 s the fleet
     re-links as soon as the victim is back; recovery dominated by an
     accumulated backoff delay is a bug, not load. *)
  if r.H.recovery_seconds > 1.0 then begin
    Printf.eprintf "FAIL: recovery took %.3fs (budget 1.0s)\n"
      r.H.recovery_seconds;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Failover bench. Phase A exercises the replication plane in-process:
   a primary store journalling through a Ship tap, every drained event
   applied to a standby device, and after every mutation batch the
   standby device is recovered and must be equal_state to the live
   primary — the shipped-LSN-prefix correctness bar, checked at real
   compaction boundaries. Phase B is the multi-process scenario: a hot
   standby, SIGKILL the primary mid-refresh-wave, measure detection
   and outage. Emits BENCH_failover.json; hard-fails on any equal_state
   mismatch or unclean audit. *)

let run_failover ~fast () =
  let module H = Probsub_server.Harness in
  let module L = Probsub_server.Loadgen in
  let module Repl = Probsub_server.Repl in
  let module Device = Probsub_store_log.Device in
  let module Store_log = Probsub_store_log.Store_log in
  print_endline "=================================================";
  print_endline " Failover bench (WAL shipping, epoch-fenced takeover)";
  print_endline "=================================================";
  (* Phase A: shipped-prefix state equivalence. *)
  let muts = if fast then 400 else 4000 in
  let primary_dev, _, _ = Device.in_memory () in
  let ship, wrapped = Repl.Ship.tap primary_dev in
  let store, log =
    Store_log.fresh ~policy:Subscription_store.Pairwise_policy ~device:wrapped
      ~arity:2 ~seed ()
  in
  let standby_dev, _, _ = Device.in_memory () in
  let apply = Repl.Apply.create ~device:standby_dev in
  let rng = Prng.of_int (seed + 17) in
  let live = ref [] in
  let checks = ref 0 in
  let t0 = Unix.gettimeofday () in
  for i = 1 to muts do
    (match Prng.int_in rng ~lo:0 ~hi:10 with
    | r when r < 7 || !live = [] ->
        let lo = Prng.int_in rng ~lo:0 ~hi:80 in
        let sub =
          Subscription.of_bounds
            [ (lo, lo + 10); (Prng.int_in rng ~lo:0 ~hi:80, 95) ]
        in
        let id, _ = Subscription_store.add store sub in
        live := id :: !live
    | _ -> (
        match !live with
        | id :: rest ->
            ignore (Subscription_store.remove store id);
            live := rest
        | [] -> ()));
    if i mod 37 = 0 then Store_log.compact log store ~bindings:[];
    if i mod 25 = 0 || i = muts then begin
      List.iter
        (fun e ->
          match Repl.Apply.apply apply e with
          | Ok _ -> ()
          | Error m ->
              Printf.eprintf "FAIL: replication apply at mutation %d: %s\n" i m;
              exit 1)
        (Repl.Ship.drain ship);
      incr checks;
      match Store_log.recover ~device:standby_dev () with
      | Error m ->
          Printf.eprintf "FAIL: standby recovery at mutation %d: %s\n" i m;
          exit 1
      | Ok r ->
          if
            not (Subscription_store.equal_state store r.Store_log.r_store)
          then begin
            Printf.eprintf
              "FAIL: standby diverged from primary at mutation %d (lsn %d)\n"
              i (Repl.Apply.next_lsn apply);
            exit 1
          end
    end
  done;
  let ship_dt = Unix.gettimeofday () -. t0 in
  let frames = Repl.Ship.frames_shipped ship in
  Printf.printf
    "phase A: %d mutations, %d frames shipped, %d equal_state checks, %.2fs\n"
    muts frames !checks ship_dt;
  (* Phase B: the multi-process failover scenario. *)
  let cc =
    if fast then H.config ~seed ~pubs:20 ()
    else
      H.config ~seed ~brokers:4 ~clients_per_broker:3 ~subs_per_client:6
        ~pubs:100 ()
  in
  Printf.printf "brokers=%d clients=%d subs/client=%d pubs/phase=%d\n"
    cc.H.brokers
    (cc.H.brokers * cc.H.clients_per_broker)
    cc.H.subs_per_client cc.H.pubs;
  let r = H.run_failover cc in
  Format.printf "@[<v>%a@]@." H.pp_failover_result r;
  let post = r.H.post in
  let oc = open_out "BENCH_failover.json" in
  Printf.fprintf oc "{\n  \"bench\": \"failover\",\n  \"fast\": %b,\n" fast;
  Printf.fprintf oc
    "  \"ship_mutations\": %d,\n  \"frames_shipped\": %d,\n\
    \  \"equal_state_checks\": %d,\n"
    muts frames !checks;
  Printf.fprintf oc "  \"brokers\": %d,\n  \"connections\": %d,\n" cc.H.brokers
    r.H.connections;
  Printf.fprintf oc "  \"pubs_per_phase\": %d,\n" cc.H.pubs;
  Printf.fprintf oc
    "  \"pre\": { \"pubs_per_sec\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f \
     },\n"
    r.H.pre.L.pubs_per_sec r.H.pre.L.p50_ms r.H.pre.L.p99_ms;
  Printf.fprintf oc
    "  \"pubs_per_sec\": %.1f,\n  \"p50_ms\": %.3f,\n  \"p99_ms\": %.3f,\n"
    post.L.pubs_per_sec post.L.p50_ms post.L.p99_ms;
  Printf.fprintf oc
    "  \"detection_seconds\": %.3f,\n  \"outage_seconds\": %.3f,\n"
    r.H.detection_seconds r.H.outage_seconds;
  Printf.fprintf oc "  \"failover_reconnects\": %d,\n" r.H.failover_reconnects;
  Printf.fprintf oc "  \"verdicts_match\": %b\n}\n" r.H.clean;
  close_out oc;
  print_endline "wrote BENCH_failover.json";
  if not r.H.clean then begin
    Printf.eprintf "FAIL: chaos audit failed after failover\n";
    exit 1
  end

let () =
  (* `main.exe kernels` runs only the fast flat-kernel bench;
     `main.exe engine [fast]` runs only the pipeline bench;
     `main.exe recovery [fast]` runs only the WAL/recovery bench;
     `main.exe shard [fast|--full]` runs only the sharded-fabric
     bench; `main.exe match [fast|--full]` runs only the counting-index
     matching bench; `main.exe failover [fast]` runs only the
     replication/failover bench; a numeric argument sets the
     figure-regeneration run count. *)
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "kernels" then run_kernels ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "engine" then
    run_engine ~fast:(Array.length Sys.argv > 2 && Sys.argv.(2) = "fast") ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "recovery" then
    run_recovery ~fast:(Array.length Sys.argv > 2 && Sys.argv.(2) = "fast") ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "serve" then
    run_serve ~fast:(Array.length Sys.argv > 2 && Sys.argv.(2) = "fast") ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "failover" then
    run_failover ~fast:(Array.length Sys.argv > 2 && Sys.argv.(2) = "fast") ()
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "shard" then begin
    let mode =
      if Array.length Sys.argv > 2 && Sys.argv.(2) = "fast" then `Fast
      else if Array.length Sys.argv > 2 && Sys.argv.(2) = "--full" then `Full
      else `Default
    in
    run_shard ~mode ()
  end
  else if Array.length Sys.argv > 1 && Sys.argv.(1) = "match" then begin
    let mode =
      if Array.length Sys.argv > 2 && Sys.argv.(2) = "fast" then `Fast
      else if Array.length Sys.argv > 2 && Sys.argv.(2) = "--full" then `Full
      else `Default
    in
    run_match ~mode ()
  end
  else begin
    let runs =
      if Array.length Sys.argv > 1 then
        match int_of_string_opt Sys.argv.(1) with
        | Some r when r > 0 -> r
        | Some _ | None -> Exp_common.default_scale.Exp_common.runs
      else Exp_common.default_scale.Exp_common.runs
    in
    regenerate_figures ~runs ();
    run_micro ();
    run_kernels ()
  end

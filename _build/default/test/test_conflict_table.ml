open Probsub_core

let sub = Subscription.of_bounds

let table s subs = Conflict_table.build ~s (Array.of_list subs)

let test_dimensions () =
  let t =
    table (sub [ (0, 9); (0, 9) ]) [ sub [ (0, 9); (0, 9) ]; sub [ (1, 2); (3, 4) ] ]
  in
  Alcotest.(check int) "rows" 2 (Conflict_table.rows t);
  Alcotest.(check int) "arity" 2 (Conflict_table.arity t)

let test_definitions () =
  (* s = [0,9]; si = [3,7]: both negations satisfiable on the attribute. *)
  let t = table (sub [ (0, 9) ]) [ sub [ (3, 7) ] ] in
  (match Conflict_table.cell t ~row:0 ~attr:0 ~side:Conflict_table.Low with
  | Conflict_table.Defined { bound; side } ->
      Alcotest.(check int) "low bound" 3 bound;
      Alcotest.(check bool) "low side" true (side = Conflict_table.Low)
  | Conflict_table.Undefined -> Alcotest.fail "low cell should be defined");
  (match Conflict_table.cell t ~row:0 ~attr:0 ~side:Conflict_table.High with
  | Conflict_table.Defined { bound; _ } ->
      Alcotest.(check int) "high bound" 7 bound
  | Conflict_table.Undefined -> Alcotest.fail "high cell should be defined");
  Alcotest.(check int) "t_i = 2" 2 (Conflict_table.defined_count t ~row:0)

let test_undefined_when_covering () =
  (* si ⊇ s on the attribute: neither negation intersects s. *)
  let t = table (sub [ (3, 7) ]) [ sub [ (0, 9) ] ] in
  Alcotest.(check int) "no defined cells" 0
    (Conflict_table.defined_count t ~row:0);
  Alcotest.(check bool) "row all undefined" true
    (Conflict_table.row_all_undefined t ~row:0)

let test_row_all_defined () =
  (* s strictly contains si on both attributes -> all 4 cells defined. *)
  let t = table (sub [ (0, 9); (0, 9) ]) [ sub [ (3, 4); (5, 6) ] ] in
  Alcotest.(check bool) "all defined" true
    (Conflict_table.row_all_defined t ~row:0);
  Alcotest.(check int) "count 2m" 4 (Conflict_table.defined_count t ~row:0)

let test_boundary_equality () =
  (* Shared boundary: s.lo = si.lo means the low negation is NOT
     satisfiable inside s. *)
  let t = table (sub [ (3, 9) ]) [ sub [ (3, 7) ] ] in
  (match Conflict_table.cell t ~row:0 ~attr:0 ~side:Conflict_table.Low with
  | Conflict_table.Undefined -> ()
  | Conflict_table.Defined _ -> Alcotest.fail "equal low bounds: undefined");
  match Conflict_table.cell t ~row:0 ~attr:0 ~side:Conflict_table.High with
  | Conflict_table.Defined { bound; _ } -> Alcotest.(check int) "hi" 7 bound
  | Conflict_table.Undefined -> Alcotest.fail "high should be defined"

let test_strip () =
  let t = table (sub [ (0, 9) ]) [ sub [ (3, 7) ] ] in
  (match Conflict_table.strip t ~row:0 ~attr:0 ~side:Conflict_table.Low with
  | Some r ->
      Alcotest.(check int) "low strip lo" 0 (Interval.lo r);
      Alcotest.(check int) "low strip hi" 2 (Interval.hi r)
  | None -> Alcotest.fail "low strip exists");
  (match Conflict_table.strip t ~row:0 ~attr:0 ~side:Conflict_table.High with
  | Some r ->
      Alcotest.(check int) "high strip lo" 8 (Interval.lo r);
      Alcotest.(check int) "high strip hi" 9 (Interval.hi r)
  | None -> Alcotest.fail "high strip exists");
  let t' = table (sub [ (3, 9) ]) [ sub [ (3, 7) ] ] in
  Alcotest.(check bool) "undefined cell has no strip" true
    (Option.is_none
       (Conflict_table.strip t' ~row:0 ~attr:0 ~side:Conflict_table.Low))

let test_conflicts () =
  (* Two subscriptions splitting s in the middle with a gap: their
     opposite-side cells conflict when strips are disjoint. *)
  let s = sub [ (0, 9); (0, 9) ] in
  let left = sub [ (0, 3); (0, 9) ] in
  let right = sub [ (6, 9); (0, 9) ] in
  let t = table s [ left; right ] in
  (* left's defined cell: x0 > 3 (strip [4,9]); right's: x0 < 6 (strip [0,5]).
     Strips overlap on [4,5] -> no conflict. *)
  Alcotest.(check bool) "overlapping strips do not conflict" false
    (Conflict_table.cells_conflict t ~row1:0 ~attr1:0 ~side1:Conflict_table.High
       ~row2:1 ~attr2:0 ~side2:Conflict_table.Low);
  (* Shrink right to start at 4: x0 < 4 (strip [0,3]) vs x0 > 3 ([4,9])
     are disjoint -> conflict. *)
  let t2 = table s [ left; sub [ (4, 9); (0, 9) ] ] in
  Alcotest.(check bool) "disjoint strips conflict" true
    (Conflict_table.cells_conflict t2 ~row1:0 ~attr1:0
       ~side1:Conflict_table.High ~row2:1 ~attr2:0 ~side2:Conflict_table.Low);
  (* Same row never conflicts with itself; different attributes never
     conflict. *)
  Alcotest.(check bool) "same row" false
    (Conflict_table.cells_conflict t2 ~row1:0 ~attr1:0
       ~side1:Conflict_table.High ~row2:0 ~attr2:0 ~side2:Conflict_table.Low);
  Alcotest.(check bool) "different attributes" false
    (Conflict_table.cells_conflict t2 ~row1:0 ~attr1:0
       ~side1:Conflict_table.High ~row2:1 ~attr2:1 ~side2:Conflict_table.Low)

let test_fold_defined () =
  let t = table (sub [ (0, 9); (0, 9) ]) [ sub [ (3, 4); (0, 9) ] ] in
  let cells =
    Conflict_table.fold_defined t ~row:0 ~init:[]
      ~f:(fun acc ~attr ~side ~bound -> (attr, side, bound) :: acc)
  in
  Alcotest.(check int) "two defined cells" 2 (List.length cells);
  Alcotest.(check bool) "contains low cell" true
    (List.mem (0, Conflict_table.Low, 3) cells);
  Alcotest.(check bool) "contains high cell" true
    (List.mem (0, Conflict_table.High, 4) cells)

let test_arity_mismatch () =
  Alcotest.check_raises "mismatch rejected"
    (Invalid_argument "Conflict_table.build: arity mismatch") (fun () ->
      ignore (table (sub [ (0, 9) ]) [ sub [ (0, 9); (0, 9) ] ]))

let test_zero_rows () =
  let t = table (sub [ (0, 9) ]) [] in
  Alcotest.(check int) "no rows" 0 (Conflict_table.rows t)

let test_build_cost_shape () =
  (* Construction touches each (row, attribute) pair once; a moderately
     large table must build quickly and report exact counts. *)
  let m = 20 and k = 300 in
  let s = Subscription.of_list (List.init m (fun _ -> Interval.make ~lo:0 ~hi:999)) in
  let subs =
    List.init k (fun i ->
        Subscription.of_list
          (List.init m (fun j -> Interval.make ~lo:(i mod 3) ~hi:(900 + ((i + j) mod 100)))))
  in
  let t = table s subs in
  Alcotest.(check int) "rows" k (Conflict_table.rows t);
  let total = ref 0 in
  for row = 0 to k - 1 do
    total := !total + Conflict_table.defined_count t ~row
  done;
  Alcotest.(check bool) "counts bounded by 2mk" true (!total <= 2 * m * k)

let suite =
  [
    Alcotest.test_case "dimensions" `Quick test_dimensions;
    Alcotest.test_case "cell definitions" `Quick test_definitions;
    Alcotest.test_case "covering row is undefined" `Quick
      test_undefined_when_covering;
    Alcotest.test_case "contained row is all defined" `Quick
      test_row_all_defined;
    Alcotest.test_case "boundary equality" `Quick test_boundary_equality;
    Alcotest.test_case "strips" `Quick test_strip;
    Alcotest.test_case "conflicts (Definition 5)" `Quick test_conflicts;
    Alcotest.test_case "fold over defined cells" `Quick test_fold_defined;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
    Alcotest.test_case "empty set" `Quick test_zero_rows;
    Alcotest.test_case "large table" `Quick test_build_cost_shape;
  ]

open Probsub_core

let sub = Subscription.of_bounds

let test_perfect_merge_adjacent () =
  let a = sub [ (0, 4); (0, 9) ] and b = sub [ (5, 9); (0, 9) ] in
  match Merging.perfect_merge a b with
  | Some u ->
      Alcotest.(check bool) "union box" true
        (Subscription.equal u (sub [ (0, 9); (0, 9) ]))
  | None -> Alcotest.fail "adjacent ranges merge"

let test_perfect_merge_overlapping () =
  let a = sub [ (0, 6); (0, 9) ] and b = sub [ (4, 9); (0, 9) ] in
  match Merging.perfect_merge a b with
  | Some u ->
      Alcotest.(check bool) "union box" true
        (Subscription.equal u (sub [ (0, 9); (0, 9) ]))
  | None -> Alcotest.fail "overlapping ranges merge"

let test_perfect_merge_gap_fails () =
  let a = sub [ (0, 3); (0, 9) ] and b = sub [ (5, 9); (0, 9) ] in
  Alcotest.(check bool) "gap blocks merge" true
    (Option.is_none (Merging.perfect_merge a b))

let test_perfect_merge_two_attrs_fail () =
  let a = sub [ (0, 4); (0, 4) ] and b = sub [ (5, 9); (5, 9) ] in
  Alcotest.(check bool) "two differing attributes block merge" true
    (Option.is_none (Merging.perfect_merge a b))

let test_perfect_merge_covering () =
  let big = sub [ (0, 9); (0, 9) ] and small = sub [ (2, 3); (2, 3) ] in
  (match Merging.perfect_merge big small with
  | Some u -> Alcotest.(check bool) "covering merge = big" true (Subscription.equal u big)
  | None -> Alcotest.fail "covering pairs always merge");
  match Merging.perfect_merge small big with
  | Some u -> Alcotest.(check bool) "symmetric" true (Subscription.equal u big)
  | None -> Alcotest.fail "covering pairs always merge"

let test_merge_preserves_point_set () =
  (* Every point is in a or b iff it is in the merge. *)
  let a = sub [ (0, 6); (2, 5) ] and b = sub [ (4, 9); (2, 5) ] in
  match Merging.perfect_merge a b with
  | None -> Alcotest.fail "should merge"
  | Some u ->
      for x = -1 to 10 do
        for y = 1 to 6 do
          let p = [| x; y |] in
          Alcotest.(check bool) "same point set"
            (Subscription.covers_point a p || Subscription.covers_point b p)
            (Subscription.covers_point u p)
        done
      done

let test_hull_and_fp_volume () =
  let a = sub [ (0, 1); (0, 1) ] and b = sub [ (3, 4); (3, 4) ] in
  let h = Merging.hull_merge a b in
  Alcotest.(check bool) "hull" true
    (Subscription.equal h (sub [ (0, 4); (0, 4) ]));
  (* Hull has 25 points, a and b have 4 each, disjoint -> 17 extra. *)
  Alcotest.(check (float 1e-6)) "false-positive volume" (log10 17.0)
    (Merging.false_positive_log10_volume a b);
  (* A perfect merge has no excess. *)
  let c = sub [ (0, 4); (0, 1) ] and d = sub [ (0, 4); (2, 3) ] in
  Alcotest.(check bool) "perfect merge: -inf" true
    (Merging.false_positive_log10_volume c d = neg_infinity)

let test_greedy_reduce () =
  (* Four quadrant tiles merge down to one box (via two row merges). *)
  let tiles =
    [
      sub [ (0, 4); (0, 4) ];
      sub [ (5, 9); (0, 4) ];
      sub [ (0, 4); (5, 9) ];
      sub [ (5, 9); (5, 9) ];
    ]
  in
  match Merging.greedy_reduce tiles with
  | [ only ] ->
      Alcotest.(check bool) "single box" true
        (Subscription.equal only (sub [ (0, 9); (0, 9) ]))
  | l -> Alcotest.failf "expected 1 box, got %d" (List.length l)

let test_greedy_reduce_fixpoint () =
  let unmergeable =
    [ sub [ (0, 1); (0, 1) ]; sub [ (5, 6); (5, 6) ]; sub [ (10, 11); (0, 1) ] ]
  in
  Alcotest.(check int) "nothing merges" 3
    (List.length (Merging.greedy_reduce unmergeable))

let suite =
  [
    Alcotest.test_case "adjacent merge" `Quick test_perfect_merge_adjacent;
    Alcotest.test_case "overlapping merge" `Quick test_perfect_merge_overlapping;
    Alcotest.test_case "gap blocks merge" `Quick test_perfect_merge_gap_fails;
    Alcotest.test_case "two attributes block merge" `Quick
      test_perfect_merge_two_attrs_fail;
    Alcotest.test_case "covering merge" `Quick test_perfect_merge_covering;
    Alcotest.test_case "point set preserved" `Quick
      test_merge_preserves_point_set;
    Alcotest.test_case "hull and FP volume" `Quick test_hull_and_fp_volume;
    Alcotest.test_case "greedy reduce" `Quick test_greedy_reduce;
    Alcotest.test_case "greedy fixpoint" `Quick test_greedy_reduce_fixpoint;
  ]

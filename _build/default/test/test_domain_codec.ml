open Probsub_core

let codec () =
  Domain_codec.make
    [
      ("bid", Domain_codec.Int_range { lo = 1; hi = 1999 });
      ("size", Domain_codec.Int_range { lo = 14; hi = 24 });
      ("brand", Domain_codec.Enum [ "X"; "Y"; "Z" ]);
      ("electric", Domain_codec.Flag);
      ("date", Domain_codec.Minutes);
    ]

let test_make_validation () =
  Alcotest.check_raises "duplicate field"
    (Invalid_argument "Domain_codec.make: duplicate field a") (fun () ->
      ignore (Domain_codec.make [ ("a", Domain_codec.Flag); ("a", Domain_codec.Flag) ]));
  Alcotest.check_raises "empty enum"
    (Invalid_argument "Domain_codec.make: field e: empty enum") (fun () ->
      ignore (Domain_codec.make [ ("e", Domain_codec.Enum []) ]));
  Alcotest.check_raises "duplicate symbols"
    (Invalid_argument "Domain_codec.make: field e: duplicate symbols")
    (fun () ->
      ignore (Domain_codec.make [ ("e", Domain_codec.Enum [ "a"; "a" ]) ]));
  Alcotest.check_raises "inverted range"
    (Invalid_argument "Domain_codec.make: field i has lo > hi") (fun () ->
      ignore (Domain_codec.make [ ("i", Domain_codec.Int_range { lo = 2; hi = 1 }) ]))

let test_fields () =
  let c = codec () in
  Alcotest.(check int) "arity" 5 (Domain_codec.arity c);
  Alcotest.(check int) "index of brand" 2 (Domain_codec.field_index c "brand");
  Alcotest.check_raises "unknown field" Not_found (fun () ->
      ignore (Domain_codec.field_index c "nope"))

let test_encode_decode () =
  let c = codec () in
  Alcotest.(check int) "int identity" 42
    (Domain_codec.encode c ~field:"bid" (Domain_codec.Int 42));
  Alcotest.(check int) "enum order" 1
    (Domain_codec.encode c ~field:"brand" (Domain_codec.Sym "Y"));
  Alcotest.(check int) "flag" 1
    (Domain_codec.encode c ~field:"electric" (Domain_codec.Bool true));
  (match Domain_codec.decode c ~field:"brand" 2 with
  | Domain_codec.Sym "Z" -> ()
  | _ -> Alcotest.fail "decode brand");
  Alcotest.check_raises "out of range"
    (Invalid_argument "Domain_codec: 0 outside bid's range [1, 1999]")
    (fun () -> ignore (Domain_codec.encode c ~field:"bid" (Domain_codec.Int 0)));
  Alcotest.check_raises "unknown symbol" Not_found (fun () ->
      ignore (Domain_codec.encode c ~field:"brand" (Domain_codec.Sym "Q")));
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Domain_codec: field bid expects a integer value")
    (fun () ->
      ignore (Domain_codec.encode c ~field:"bid" (Domain_codec.Sym "X")))

let test_timestamps () =
  (* Epoch and basic arithmetic. *)
  Alcotest.(check int) "epoch" 0
    (Domain_codec.minutes_of_timestamp "2000-01-01T00:00");
  Alcotest.(check int) "next day" 1440
    (Domain_codec.minutes_of_timestamp "2000-01-02");
  Alcotest.(check int) "leap day 2000"
    ((31 + 28) * 1440)
    (Domain_codec.minutes_of_timestamp "2000-02-29");
  (* Round trips across years, month ends and leap boundaries. *)
  List.iter
    (fun ts ->
      Alcotest.(check string) "round trip" ts
        (Domain_codec.timestamp_of_minutes
           (Domain_codec.minutes_of_timestamp ts)))
    [
      "2000-01-01T00:00";
      "2000-02-29T23:59";
      "2004-02-29T12:00";
      "2006-03-31T16:00";
      "2019-12-31T23:59";
      "2100-03-01T00:00";
    ];
  (* A known interval: the paper's Table 1 window is 4 hours. *)
  let lo = Domain_codec.minutes_of_timestamp "2006-03-31T16:00" in
  let hi = Domain_codec.minutes_of_timestamp "2006-03-31T20:00" in
  Alcotest.(check int) "window width" 240 (hi - lo);
  Alcotest.check_raises "garbage rejected"
    (Invalid_argument "Domain_codec: malformed timestamp \"yesterday\"")
    (fun () -> ignore (Domain_codec.minutes_of_timestamp "yesterday"));
  Alcotest.check_raises "bad month"
    (Invalid_argument "Domain_codec: malformed timestamp \"2006-13-01\"")
    (fun () -> ignore (Domain_codec.minutes_of_timestamp "2006-13-01"))

let test_subscription_builder () =
  let c = codec () in
  let sub =
    Domain_codec.subscription c
      [
        ("size", Domain_codec.Between (Domain_codec.Int 17, Domain_codec.Int 19));
        ("brand", Domain_codec.Eq (Domain_codec.Sym "X"));
        ("bid", Domain_codec.At_least (Domain_codec.Int 1000));
      ]
  in
  let p values = Domain_codec.publication c values in
  let pub ~bid ~size ~brand ~electric ~date =
    p
      [
        ("bid", Domain_codec.Int bid);
        ("size", Domain_codec.Int size);
        ("brand", Domain_codec.Sym brand);
        ("electric", Domain_codec.Bool electric);
        ("date", Domain_codec.Time date);
      ]
  in
  Alcotest.(check bool) "inside" true
    (Publication.matches sub
       (pub ~bid:1036 ~size:19 ~brand:"X" ~electric:false ~date:"2006-03-31"));
  Alcotest.(check bool) "wrong brand" false
    (Publication.matches sub
       (pub ~bid:1036 ~size:19 ~brand:"Y" ~electric:false ~date:"2006-03-31"));
  Alcotest.(check bool) "bid too small" false
    (Publication.matches sub
       (pub ~bid:999 ~size:19 ~brand:"X" ~electric:false ~date:"2006-03-31"))

let test_subscription_intersects_repeats () =
  let c = codec () in
  let sub =
    Domain_codec.subscription c
      [
        ("size", Domain_codec.At_least (Domain_codec.Int 17));
        ("size", Domain_codec.At_most (Domain_codec.Int 19));
      ]
  in
  Alcotest.(check bool) "intersection applied" true
    (Interval.equal
       (Subscription.range sub (Domain_codec.field_index c "size"))
       (Interval.make ~lo:17 ~hi:19));
  Alcotest.check_raises "empty intersection"
    (Invalid_argument "Domain_codec.subscription: empty constraint on field size")
    (fun () ->
      ignore
        (Domain_codec.subscription c
           [
             ("size", Domain_codec.At_least (Domain_codec.Int 20));
             ("size", Domain_codec.At_most (Domain_codec.Int 15));
           ]))

let test_publication_validation () =
  let c = codec () in
  Alcotest.check_raises "missing field"
    (Invalid_argument "Domain_codec.publication: field date missing") (fun () ->
      ignore
        (Domain_codec.publication c
           [
             ("bid", Domain_codec.Int 1);
             ("size", Domain_codec.Int 17);
             ("brand", Domain_codec.Sym "X");
             ("electric", Domain_codec.Bool false);
           ]));
  Alcotest.check_raises "duplicate field"
    (Invalid_argument "Domain_codec.publication: field bid given twice")
    (fun () ->
      ignore
        (Domain_codec.publication c
           [ ("bid", Domain_codec.Int 1); ("bid", Domain_codec.Int 2) ]))

let test_pp () =
  let c = codec () in
  let sub =
    Domain_codec.subscription c
      [ ("brand", Domain_codec.Eq (Domain_codec.Sym "Y")) ]
  in
  let rendered = Format.asprintf "%a" (Domain_codec.pp_subscription c) sub in
  Alcotest.(check string) "symbolic rendering" "{brand = Y}" rendered;
  let all = Domain_codec.subscription c [] in
  Alcotest.(check string) "unconstrained renders star" "{*}"
    (Format.asprintf "%a" (Domain_codec.pp_subscription c) all)

let suite =
  [
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "field lookup" `Quick test_fields;
    Alcotest.test_case "encode/decode" `Quick test_encode_decode;
    Alcotest.test_case "timestamps" `Quick test_timestamps;
    Alcotest.test_case "subscription builder" `Quick test_subscription_builder;
    Alcotest.test_case "repeated constraints intersect" `Quick
      test_subscription_intersects_repeats;
    Alcotest.test_case "publication validation" `Quick
      test_publication_validation;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]

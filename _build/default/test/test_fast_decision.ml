open Probsub_core

let sub = Subscription.of_bounds
let table s subs = Conflict_table.build ~s (Array.of_list subs)

let test_pairwise_yes () =
  let t = table (sub [ (2, 5); (2, 5) ]) [ sub [ (10, 20); (0, 9) ]; sub [ (0, 9); (0, 9) ] ] in
  match Fast_decision.decide t with
  | Fast_decision.Covered_pairwise 1 -> ()
  | Fast_decision.Covered_pairwise i -> Alcotest.failf "wrong row %d" i
  | _ -> Alcotest.fail "expected a pairwise YES"

let test_first_coverer_reported () =
  (* Several coverers: the lowest row index is returned (Algorithm 4
     scans in order). *)
  let t =
    table (sub [ (2, 5) ]) [ sub [ (0, 9) ]; sub [ (1, 8) ]; sub [ (2, 5) ] ]
  in
  (match Fast_decision.decide t with
  | Fast_decision.Covered_pairwise 0 -> ()
  | _ -> Alcotest.fail "first coverer expected");
  Alcotest.(check (list int)) "all coverers listed" [ 0; 1; 2 ]
    (Fast_decision.covering_rows t)

let test_polyhedron_no () =
  let t = table (sub [ (0, 9) ]) [ sub [ (0, 4) ] ] in
  match Fast_decision.decide t with
  | Fast_decision.Not_covered_witness w ->
      Alcotest.(check bool) "verified witness" true (Witness.verify t w)
  | _ -> Alcotest.fail "Corollary 3 should fire"

let test_unknown_on_group_cover () =
  let t =
    table
      (sub [ (830, 870); (1003, 1006) ])
      [ sub [ (820, 850); (1001, 1007) ]; sub [ (840, 880); (1002, 1009) ] ]
  in
  match Fast_decision.decide t with
  | Fast_decision.Unknown -> ()
  | _ -> Alcotest.fail "group cover is undecidable by the fast paths"

let test_covered_rows () =
  (* Corollary 2 direction: rows s strictly contains. *)
  let t =
    table (sub [ (0, 99); (0, 99) ])
      [ sub [ (10, 20); (10, 20) ]; sub [ (0, 99); (0, 99) ]; sub [ (5, 95); (5, 95) ] ]
  in
  Alcotest.(check (list int)) "strictly inside rows" [ 0; 2 ]
    (Fast_decision.covered_rows t)

let test_empty_table () =
  let t = table (sub [ (0, 9) ]) [] in
  match Fast_decision.decide t with
  | Fast_decision.Not_covered_witness w ->
      Alcotest.(check bool) "s itself is the witness" true
        (Subscription.equal w.Witness.region (sub [ (0, 9) ]))
  | _ -> Alcotest.fail "empty set: trivially not covered"

let suite =
  [
    Alcotest.test_case "pairwise YES" `Quick test_pairwise_yes;
    Alcotest.test_case "first coverer wins" `Quick test_first_coverer_reported;
    Alcotest.test_case "polyhedron NO" `Quick test_polyhedron_no;
    Alcotest.test_case "group cover -> Unknown" `Quick
      test_unknown_on_group_cover;
    Alcotest.test_case "covered rows (Cor. 2)" `Quick test_covered_rows;
    Alcotest.test_case "empty table" `Quick test_empty_table;
  ]

open Probsub_core

let iv lo hi = Interval.make ~lo ~hi

let test_make () =
  let r = iv 3 7 in
  Alcotest.(check int) "lo" 3 (Interval.lo r);
  Alcotest.(check int) "hi" 7 (Interval.hi r);
  Alcotest.(check int) "width counts points" 5 (Interval.width r);
  Alcotest.check_raises "inverted bounds rejected"
    (Invalid_argument "Interval.make: lo 5 > hi 4") (fun () ->
      ignore (Interval.make ~lo:5 ~hi:4))

let test_make_opt () =
  Alcotest.(check bool) "non-empty" true
    (Option.is_some (Interval.make_opt ~lo:0 ~hi:0));
  Alcotest.(check bool) "empty" true
    (Option.is_none (Interval.make_opt ~lo:1 ~hi:0))

let test_point () =
  let r = Interval.point 9 in
  Alcotest.(check int) "width 1" 1 (Interval.width r);
  Alcotest.(check bool) "mem" true (Interval.mem 9 r);
  Alcotest.(check bool) "not mem" false (Interval.mem 8 r)

let test_full () =
  Alcotest.(check bool) "full is full" true (Interval.is_full Interval.full);
  Alcotest.(check bool) "others are not" false (Interval.is_full (iv 0 10));
  Alcotest.(check bool) "every small value inside" true
    (Interval.mem 123456 Interval.full);
  (* Sentinel arithmetic must not overflow. *)
  let w = Interval.width Interval.full in
  Alcotest.(check bool) "full width positive" true (w > 0)

let test_mem_subset () =
  let a = iv 2 5 and b = iv 0 10 in
  Alcotest.(check bool) "a ⊆ b" true (Interval.subset a b);
  Alcotest.(check bool) "b ⊄ a" false (Interval.subset b a);
  Alcotest.(check bool) "a ⊆ a" true (Interval.subset a a);
  Alcotest.(check bool) "boundary in" true (Interval.mem 5 a);
  Alcotest.(check bool) "boundary out" false (Interval.mem 6 a)

let test_inter () =
  let a = iv 0 5 and b = iv 3 9 in
  (match Interval.inter a b with
  | Some r ->
      Alcotest.(check int) "inter lo" 3 (Interval.lo r);
      Alcotest.(check int) "inter hi" 5 (Interval.hi r)
  | None -> Alcotest.fail "expected overlap");
  Alcotest.(check bool) "disjoint" true
    (Option.is_none (Interval.inter (iv 0 2) (iv 3 4)));
  (* Touching at a single shared point. *)
  match Interval.inter (iv 0 3) (iv 3 5) with
  | Some r -> Alcotest.(check int) "single point" 1 (Interval.width r)
  | None -> Alcotest.fail "touching intervals intersect"

let test_intersects_before () =
  Alcotest.(check bool) "overlap" true (Interval.intersects (iv 0 5) (iv 5 9));
  Alcotest.(check bool) "gap" false (Interval.intersects (iv 0 4) (iv 5 9));
  Alcotest.(check bool) "before" true (Interval.before (iv 0 4) (iv 5 9));
  Alcotest.(check bool) "not before" false (Interval.before (iv 0 5) (iv 5 9))

let test_hull_shift () =
  let h = Interval.hull (iv 0 2) (iv 8 9) in
  Alcotest.(check int) "hull lo" 0 (Interval.lo h);
  Alcotest.(check int) "hull hi" 9 (Interval.hi h);
  let s = Interval.shift (iv 1 4) 10 in
  Alcotest.(check int) "shift lo" 11 (Interval.lo s);
  Alcotest.(check int) "shift hi" 14 (Interval.hi s)

let test_clamp () =
  (match Interval.clamp (iv 0 100) ~within:(iv 10 20) with
  | Some r -> Alcotest.(check bool) "clamped" true (Interval.equal r (iv 10 20))
  | None -> Alcotest.fail "non-empty clamp");
  Alcotest.(check bool) "clamp to nothing" true
    (Option.is_none (Interval.clamp (iv 0 5) ~within:(iv 6 9)))

let test_compare_equal () =
  Alcotest.(check bool) "equal" true (Interval.equal (iv 1 2) (iv 1 2));
  Alcotest.(check bool) "not equal" false (Interval.equal (iv 1 2) (iv 1 3));
  Alcotest.(check bool) "ordered by lo" true (Interval.compare (iv 0 9) (iv 1 2) < 0);
  Alcotest.(check bool) "ties broken by hi" true
    (Interval.compare (iv 0 2) (iv 0 9) < 0);
  Alcotest.(check int) "reflexive" 0 (Interval.compare (iv 4 5) (iv 4 5))

let test_log10_width () =
  Alcotest.(check (float 1e-9)) "width 10 -> 1.0" 1.0
    (Interval.log10_width (iv 1 10));
  Alcotest.(check (float 1e-9)) "width 1 -> 0.0" 0.0
    (Interval.log10_width (Interval.point 5))

let test_pp () =
  Alcotest.(check string) "render" "[3, 7]" (Interval.to_string (iv 3 7));
  Alcotest.(check string) "full renders star" "[*]"
    (Interval.to_string Interval.full)

let suite =
  [
    Alcotest.test_case "make and width" `Quick test_make;
    Alcotest.test_case "make_opt" `Quick test_make_opt;
    Alcotest.test_case "point" `Quick test_point;
    Alcotest.test_case "full sentinel" `Quick test_full;
    Alcotest.test_case "mem and subset" `Quick test_mem_subset;
    Alcotest.test_case "intersection" `Quick test_inter;
    Alcotest.test_case "intersects / before" `Quick test_intersects_before;
    Alcotest.test_case "hull and shift" `Quick test_hull_shift;
    Alcotest.test_case "clamp" `Quick test_clamp;
    Alcotest.test_case "compare and equal" `Quick test_compare_equal;
    Alcotest.test_case "log10 width" `Quick test_log10_width;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]

open Probsub_broker

let test_chain () =
  let t = Topology.chain 5 in
  Alcotest.(check int) "size" 5 (Topology.size t);
  Alcotest.(check (list int)) "middle neighbours" [ 1; 3 ]
    (Topology.neighbors t 2);
  Alcotest.(check (list int)) "end neighbour" [ 1 ] (Topology.neighbors t 0);
  Alcotest.(check bool) "connected" true (Topology.is_connected t);
  Alcotest.(check int) "diameter" 4 (Topology.diameter t)

let test_ring_star_mesh () =
  let r = Topology.ring 5 in
  Alcotest.(check (list int)) "ring closes" [ 1; 4 ] (Topology.neighbors r 0);
  Alcotest.(check int) "ring diameter" 2 (Topology.diameter r);
  let s = Topology.star 6 in
  Alcotest.(check int) "hub degree" 5 (List.length (Topology.neighbors s 0));
  Alcotest.(check int) "star diameter" 2 (Topology.diameter s);
  let m = Topology.full_mesh 4 in
  Alcotest.(check int) "mesh edges" 6 (List.length (Topology.edges m));
  Alcotest.(check int) "mesh diameter" 1 (Topology.diameter m)

let test_tree () =
  let t = Topology.balanced_tree ~branching:2 ~depth:2 in
  Alcotest.(check int) "1 + 2 + 4 nodes" 7 (Topology.size t);
  Alcotest.(check (list int)) "root children" [ 1; 2 ] (Topology.neighbors t 0);
  Alcotest.(check (list int)) "leaf parent" [ 2 ] (Topology.neighbors t 6);
  Alcotest.(check bool) "connected" true (Topology.is_connected t);
  let single = Topology.balanced_tree ~branching:3 ~depth:0 in
  Alcotest.(check int) "depth 0" 1 (Topology.size single)

let test_grid () =
  let g = Topology.grid ~width:3 ~height:2 in
  Alcotest.(check int) "size" 6 (Topology.size g);
  Alcotest.(check (list int)) "corner" [ 1; 3 ] (Topology.neighbors g 0);
  Alcotest.(check (list int)) "centre top" [ 0; 2; 4 ] (Topology.neighbors g 1);
  Alcotest.(check bool) "connected" true (Topology.is_connected g)

let test_random_connected () =
  let rng = Probsub_core.Prng.of_int 4 in
  for _ = 1 to 20 do
    let t = Topology.random_connected rng ~n:25 ~extra_edges:10 in
    Alcotest.(check bool) "connected" true (Topology.is_connected t);
    Alcotest.(check int) "edge count" 34 (List.length (Topology.edges t))
  done

let test_fig1 () =
  let t = Topology.fig1 in
  Alcotest.(check int) "nine brokers" 9 (Topology.size t);
  Alcotest.(check bool) "connected" true (Topology.is_connected t);
  (* The delivery tree for n1: B9 -> B7 -> B4 -> B3 -> B1. *)
  Alcotest.(check (list int)) "B9 to B1 path" [ 8; 6; 3; 2; 0 ]
    (Topology.shortest_path t ~src:8 ~dst:0);
  (* B4's neighbours are B3, B5, B6, B7. *)
  Alcotest.(check (list int)) "B4 neighbours" [ 2; 4; 5; 6 ]
    (Topology.neighbors t 3)

let test_shortest_path () =
  let t = Topology.chain 6 in
  Alcotest.(check (list int)) "path" [ 1; 2; 3; 4 ]
    (Topology.shortest_path t ~src:1 ~dst:4);
  Alcotest.(check (list int)) "self path" [ 3 ]
    (Topology.shortest_path t ~src:3 ~dst:3)

let test_of_edges_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Topology.of_edges: self-loop")
    (fun () -> ignore (Topology.of_edges ~size:3 [ (1, 1) ]));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Topology.of_edges: endpoint out of range") (fun () ->
      ignore (Topology.of_edges ~size:3 [ (0, 3) ]));
  (* Duplicate edges collapse. *)
  let t = Topology.of_edges ~size:3 [ (0, 1); (1, 0); (0, 1) ] in
  Alcotest.(check int) "one edge" 1 (List.length (Topology.edges t))

let test_are_linked () =
  let t = Topology.chain 4 in
  Alcotest.(check bool) "linked" true (Topology.are_linked t 1 2);
  Alcotest.(check bool) "not linked" false (Topology.are_linked t 0 2)

let suite =
  [
    Alcotest.test_case "chain" `Quick test_chain;
    Alcotest.test_case "ring, star, mesh" `Quick test_ring_star_mesh;
    Alcotest.test_case "balanced tree" `Quick test_tree;
    Alcotest.test_case "grid" `Quick test_grid;
    Alcotest.test_case "random connected" `Quick test_random_connected;
    Alcotest.test_case "fig1 network" `Quick test_fig1;
    Alcotest.test_case "shortest path" `Quick test_shortest_path;
    Alcotest.test_case "edge validation" `Quick test_of_edges_validation;
    Alcotest.test_case "are_linked" `Quick test_are_linked;
  ]

open Probsub_core

let sub = Subscription.of_bounds
let table s subs = Conflict_table.build ~s (Array.of_list subs)

let test_all_candidates_in_s () =
  let rng = Prng.of_int 3 in
  for _ = 1 to 50 do
    let s =
      Subscription.of_list
        (List.init 3 (fun _ ->
             let lo = Prng.int rng 20 in
             Interval.make ~lo ~hi:(lo + 5 + Prng.int rng 20)))
    in
    let subs =
      Array.init 6 (fun _ ->
          Subscription.of_list
            (List.init 3 (fun _ ->
                 let lo = Prng.int rng 30 in
                 Interval.make ~lo ~hi:(lo + 5 + Prng.int rng 25))))
    in
    let t = Conflict_table.build ~s subs in
    List.iter
      (fun p ->
        Alcotest.(check bool) "probe inside s" true
          (Subscription.covers_point s p))
      (Probes.candidate_points t)
  done

let test_probe_finds_the_gap () =
  (* An extreme-non-cover style instance: the minimal strips point
     straight into the gap, so the probes settle it deterministically. *)
  let rng = Prng.of_int 4 in
  let inst =
    Probsub_workload.Scenario.extreme_non_cover rng ~m:5 ~k:50
      ~gap_fraction:0.01 ~stagger_spread:0
  in
  let t =
    Conflict_table.build ~s:inst.Probsub_workload.Scenario.s
      inst.Probsub_workload.Scenario.set
  in
  match Probes.try_probes t with
  | Some p ->
      Alcotest.(check bool) "probe is a real witness" true
        (Witness.is_point_witness t p)
  | None -> Alcotest.fail "the min-strip probe must land in the gap"

let test_probe_sound_on_covered () =
  (* Covered instances: probes must find nothing. *)
  let t =
    table
      (sub [ (830, 870); (1003, 1006) ])
      [ sub [ (820, 850); (1001, 1007) ]; sub [ (840, 880); (1002, 1009) ] ]
  in
  Alcotest.(check bool) "no witness exists, none claimed" true
    (Option.is_none (Probes.try_probes t))

let test_empty_table () =
  Alcotest.(check (list (array int))) "no rows, no probes" []
    (Probes.candidate_points (table (sub [ (0, 9) ]) []))

let test_engine_with_probes () =
  (* The engine's probe stage answers a definite NO with zero RSPC
     iterations on the probe-friendly instance. *)
  let rng = Prng.of_int 5 in
  let inst =
    Probsub_workload.Scenario.extreme_non_cover rng ~m:5 ~k:50
      ~gap_fraction:0.01 ~stagger_spread:0
  in
  let config = Engine.config ~use_probes:true () in
  let report =
    Engine.check ~config ~rng inst.Probsub_workload.Scenario.s
      inst.Probsub_workload.Scenario.set
  in
  (match report.Engine.verdict with
  | Engine.Not_covered (Engine.Point _) -> ()
  | _ -> Alcotest.fail "probe stage must answer NO");
  Alcotest.(check int) "zero random trials" 0 report.Engine.iterations;
  (* Without probes the same instance costs ~1/rho ~ 100 trials. *)
  let plain =
    Engine.check ~config:(Engine.config ()) ~rng
      inst.Probsub_workload.Scenario.s inst.Probsub_workload.Scenario.set
  in
  Alcotest.(check bool) "probes save the random search" true
    (plain.Engine.iterations > 10)

let test_engine_probes_never_flip_yes () =
  (* qcheck-style randomized soundness: enabling probes never turns a
     covered instance into a NO incorrectly. *)
  let rng = Prng.of_int 6 in
  for _ = 1 to 60 do
    let s =
      Subscription.of_list
        (List.init 2 (fun _ ->
             let lo = Prng.int rng 15 in
             Interval.make ~lo ~hi:(lo + 4 + Prng.int rng 12)))
    in
    let subs =
      Array.init 5 (fun _ ->
          Subscription.of_list
            (List.init 2 (fun _ ->
                 let lo = Prng.int rng 20 in
                 Interval.make ~lo ~hi:(lo + 4 + Prng.int rng 18))))
    in
    let config = Engine.config ~use_probes:true () in
    let report = Engine.check ~config ~rng s subs in
    match report.Engine.verdict with
    | Engine.Not_covered _ ->
        Alcotest.(check bool) "probe NO is sound" false (Exact.covered s subs)
    | Engine.Covered_pairwise _ | Engine.Covered_probably -> ()
  done

let suite =
  [
    Alcotest.test_case "candidates stay inside s" `Quick
      test_all_candidates_in_s;
    Alcotest.test_case "probes find an aligned gap" `Quick
      test_probe_finds_the_gap;
    Alcotest.test_case "sound on covered instances" `Quick
      test_probe_sound_on_covered;
    Alcotest.test_case "empty table" `Quick test_empty_table;
    Alcotest.test_case "engine probe stage" `Quick test_engine_with_probes;
    Alcotest.test_case "probes never flip to YES wrongly" `Quick
      test_engine_probes_never_flip_yes;
  ]

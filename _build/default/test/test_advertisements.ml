open Probsub_core
open Probsub_broker

let sub = Subscription.of_bounds

let make_net topology =
  Network.create ~policy:Subscription_store.Pairwise_policy
    ~use_advertisements:true ~topology ~arity:2 ~seed:13 ()

let test_subscription_held_without_ads () =
  (* In advertisement mode a subscription stays at its broker until a
     publisher announces intersecting content. *)
  let net = make_net (Topology.chain 4) in
  ignore (Network.subscribe net ~broker:0 ~client:1 (sub [ (0, 9); (0, 9) ]));
  Network.run net;
  Alcotest.(check int) "no subscribe traffic" 0
    (Network.metrics net).Metrics.subscribe_msgs;
  Alcotest.(check bool) "neighbour does not know it" false
    (Broker_node.knows_subscription (Network.broker net 1) ~key:0)

let test_ad_first_then_subscribe () =
  let net = make_net (Topology.chain 4) in
  (* Publisher at the far end declares the box it publishes into. *)
  ignore (Network.advertise net ~broker:3 ~client:9 (sub [ (0, 50); (0, 50) ]));
  Network.run net;
  Alcotest.(check int) "ad flooded over 3 links" 3
    (Network.metrics net).Metrics.advertise_msgs;
  (* Now a subscriber: the subscription is routed toward the publisher. *)
  ignore (Network.subscribe net ~broker:0 ~client:1 (sub [ (0, 9); (0, 9) ]));
  Network.run net;
  Alcotest.(check int) "subscription follows the ad path" 3
    (Network.metrics net).Metrics.subscribe_msgs;
  ignore (Network.publish net ~broker:3 (Publication.of_list [ 5; 5 ]));
  Network.run net;
  Alcotest.(check int) "delivered" 1
    (List.length (Network.notifications net))

let test_subscribe_first_then_ad () =
  (* The retroactive path: a subscription waits; a later advertisement
     opens the route and the pending subscription is offered along it. *)
  let net = make_net (Topology.chain 4) in
  ignore (Network.subscribe net ~broker:0 ~client:1 (sub [ (0, 9); (0, 9) ]));
  Network.run net;
  Alcotest.(check int) "held back" 0
    (Network.metrics net).Metrics.subscribe_msgs;
  ignore (Network.advertise net ~broker:3 ~client:9 (sub [ (0, 50); (0, 50) ]));
  Network.run net;
  Alcotest.(check int) "subscription released by the ad" 3
    (Network.metrics net).Metrics.subscribe_msgs;
  ignore (Network.publish net ~broker:3 (Publication.of_list [ 5; 5 ]));
  Network.run net;
  Alcotest.(check int) "delivered after late ad" 1
    (List.length (Network.notifications net))

let test_non_intersecting_ad_opens_nothing () =
  let net = make_net (Topology.chain 3) in
  ignore (Network.subscribe net ~broker:0 ~client:1 (sub [ (0, 9); (0, 9) ]));
  ignore (Network.advertise net ~broker:2 ~client:9 (sub [ (50, 90); (50, 90) ]));
  Network.run net;
  Alcotest.(check int) "disjoint ad releases nothing" 0
    (Network.metrics net).Metrics.subscribe_msgs

let test_directional_routing () =
  (* A star: the subscription must go only towards the advertising
     leaf, not to the silent ones. *)
  let net = make_net (Topology.star 5) in
  ignore (Network.advertise net ~broker:3 ~client:9 (sub [ (0, 99); (0, 99) ]));
  Network.run net;
  ignore (Network.subscribe net ~broker:1 ~client:1 (sub [ (0, 9); (0, 9) ]));
  Network.run net;
  (* Path: leaf 1 -> hub 0 -> leaf 3. Two subscribe messages. *)
  Alcotest.(check int) "only the advertised direction" 2
    (Network.metrics net).Metrics.subscribe_msgs;
  Alcotest.(check bool) "advertising leaf knows it" true
    (Broker_node.knows_subscription (Network.broker net 3) ~key:0);
  Alcotest.(check bool) "silent leaf does not" false
    (Broker_node.knows_subscription (Network.broker net 2) ~key:0)

let test_covering_still_applies () =
  (* Advertisement routing composes with covering: the second (covered)
     subscription is still suppressed. *)
  let net = make_net (Topology.chain 3) in
  ignore (Network.advertise net ~broker:2 ~client:9 (sub [ (0, 99); (0, 99) ]));
  Network.run net;
  ignore (Network.subscribe net ~broker:0 ~client:1 (sub [ (0, 50); (0, 50) ]));
  Network.run net;
  let first = (Network.metrics net).Metrics.subscribe_msgs in
  ignore (Network.subscribe net ~broker:0 ~client:2 (sub [ (10, 20); (10, 20) ]));
  Network.run net;
  Alcotest.(check int) "covered subscription suppressed" first
    (Network.metrics net).Metrics.subscribe_msgs

let test_unadvertise_floods () =
  let net = make_net (Topology.chain 3) in
  let key = Network.advertise net ~broker:2 ~client:9 (sub [ (0, 99); (0, 99) ]) in
  Network.run net;
  Alcotest.(check bool) "ad known remotely" true
    (Broker_node.knows_advertisement (Network.broker net 0) ~key);
  Network.unadvertise net ~broker:2 ~client:9 ~key;
  Network.run net;
  Alcotest.(check bool) "ad withdrawn remotely" false
    (Broker_node.knows_advertisement (Network.broker net 0) ~key)

let test_ads_reduce_traffic_on_tree () =
  (* A wide tree with one publisher region: advertisement routing
     should touch far fewer links than flooding. *)
  let topo = Topology.balanced_tree ~branching:3 ~depth:3 (* 40 nodes *) in
  let run_mode use_advertisements =
    let net =
      Network.create ~policy:Subscription_store.Pairwise_policy
        ~use_advertisements ~topology:topo ~arity:2 ~seed:3 ()
    in
    if use_advertisements then begin
      ignore (Network.advertise net ~broker:39 ~client:9 (sub [ (0, 99); (0, 99) ]));
      Network.run net
    end;
    let rng = Prng.of_int 5 in
    for i = 1 to 30 do
      let lo1 = Prng.int rng 50 and lo2 = Prng.int rng 50 in
      ignore
        (Network.subscribe net ~broker:(i mod 40) ~client:i
           (sub [ (lo1, lo1 + 10); (lo2, lo2 + 10) ]))
    done;
    Network.run net;
    (* Publications from the publisher must still reach everyone
       expected. *)
    let lost = ref 0 in
    for _ = 1 to 20 do
      let p = Publication.of_list [ Prng.int rng 60; Prng.int rng 60 ] in
      let expected = List.length (Network.expected_recipients net p) in
      let before = (Network.metrics net).Metrics.notifications in
      ignore (Network.publish net ~broker:39 p);
      Network.run net;
      lost := !lost + expected - ((Network.metrics net).Metrics.notifications - before)
    done;
    ((Network.metrics net).Metrics.subscribe_msgs, !lost)
  in
  let flood_msgs, flood_lost = run_mode false in
  let ad_msgs, ad_lost = run_mode true in
  Alcotest.(check int) "flooding is lossless" 0 flood_lost;
  Alcotest.(check int) "advertised routing is lossless" 0 ad_lost;
  Alcotest.(check bool)
    (Printf.sprintf "ads reduce subscription traffic (%d -> %d)" flood_msgs
       ad_msgs)
    true
    (ad_msgs < flood_msgs / 2)

let test_randomized_ads_lossless () =
  (* Random topologies, random advertised regions covering the whole
     publication space between them: advertisement routing must remain
     lossless under the pairwise policy. *)
  let rng = Prng.of_int 61 in
  for _ = 1 to 8 do
    let topo = Topology.random_connected rng ~n:10 ~extra_edges:3 in
    let net =
      Network.create ~policy:Subscription_store.Pairwise_policy
        ~use_advertisements:true ~topology:topo ~arity:2 ~seed:2 ()
    in
    (* Publishers split the space into advertised halves. *)
    let pub_a = Prng.int rng 10 and pub_b = Prng.int rng 10 in
    ignore (Network.advertise net ~broker:pub_a ~client:90 (sub [ (0, 49); (0, 99) ]));
    ignore (Network.advertise net ~broker:pub_b ~client:91 (sub [ (50, 99); (0, 99) ]));
    Network.run net;
    for i = 1 to 25 do
      let lo1 = Prng.int rng 80 and lo2 = Prng.int rng 80 in
      ignore
        (Network.subscribe net ~broker:(i mod 10) ~client:i
           (sub [ (lo1, lo1 + 3 + Prng.int rng 19); (lo2, lo2 + 3 + Prng.int rng 19) ]))
    done;
    Network.run net;
    for _ = 1 to 30 do
      let x = Prng.int rng 100 in
      let p = Publication.of_list [ x; Prng.int rng 100 ] in
      (* Publishers publish inside their own advertisement — the
         advertisement contract routing correctness relies on. *)
      let home = if x <= 49 then pub_a else pub_b in
      let expected = List.length (Network.expected_recipients net p) in
      let before = (Network.metrics net).Metrics.notifications in
      ignore (Network.publish net ~broker:home p);
      Network.run net;
      let got = (Network.metrics net).Metrics.notifications - before in
      Alcotest.(check int) "advertised routing is lossless" expected got
    done
  done

let suite =
  [
    Alcotest.test_case "held without ads" `Quick
      test_subscription_held_without_ads;
    Alcotest.test_case "ad then subscribe" `Quick test_ad_first_then_subscribe;
    Alcotest.test_case "subscribe then ad (retroactive)" `Quick
      test_subscribe_first_then_ad;
    Alcotest.test_case "disjoint ads open nothing" `Quick
      test_non_intersecting_ad_opens_nothing;
    Alcotest.test_case "directional routing" `Quick test_directional_routing;
    Alcotest.test_case "composes with covering" `Quick
      test_covering_still_applies;
    Alcotest.test_case "unadvertise floods" `Quick test_unadvertise_floods;
    Alcotest.test_case "traffic reduction on a tree" `Quick
      test_ads_reduce_traffic_on_tree;
    Alcotest.test_case "randomized lossless routing" `Slow
      test_randomized_ads_lossless;
  ]

open Probsub_core

let sub = Subscription.of_bounds
let table s subs = Conflict_table.build ~s (Array.of_list subs)

let test_empty_set_rho_one () =
  let t = table (sub [ (0, 9) ]) [] in
  let e = Rho.estimate t in
  Alcotest.(check (float 1e-9)) "rho = 1" 1.0 (Rho.rho e);
  Alcotest.(check (float 1e-9)) "log10 rho = 0" 0.0 e.Rho.log10_rho

let test_half_cover () =
  (* s = [0,99]; s1 covers [0,49]: the uncovered strip is half of s. *)
  let t = table (sub [ (0, 99) ]) [ sub [ (0, 49) ] ] in
  let e = Rho.estimate t in
  Alcotest.(check (float 1e-9)) "rho = 0.5" 0.5 (Rho.rho e)

let test_gap_fraction () =
  (* s = [0,999]^2; the set covers everything except a 1% strip on x0.
     Algorithm 2's estimate is strip/s = 10/1000 on x0 and full on x1. *)
  let s = sub [ (0, 999); (0, 999) ] in
  let t = table s [ sub [ (0, 989); (0, 999) ] ] in
  let e = Rho.estimate t in
  Alcotest.(check (float 1e-9)) "rho = 0.01" 0.01 (Rho.rho e)

let test_min_over_rows () =
  (* Two rows leave different strips on x0; Algorithm 2 takes the
     minimum width. *)
  let s = sub [ (0, 99) ] in
  let t = table s [ sub [ (0, 49) ]; sub [ (0, 89) ] ] in
  let e = Rho.estimate t in
  Alcotest.(check (float 1e-9)) "min strip = 10/100" 0.1 (Rho.rho e)

let test_d_of_rho () =
  Alcotest.(check (float 1e-9)) "rho = 1 -> d = 1" 1.0
    (Rho.d_of_rho ~rho:1.0 ~delta:1e-6);
  Alcotest.(check bool) "rho = 0 -> d infinite" true
    (Rho.d_of_rho ~rho:0.0 ~delta:1e-6 = infinity);
  (* (1 - 0.5)^d <= 1e-6 -> d = 20. *)
  Alcotest.(check (float 1e-9)) "half rho" 20.0
    (Rho.d_of_rho ~rho:0.5 ~delta:1e-6);
  (* d grows as delta shrinks. *)
  Alcotest.(check bool) "monotone in delta" true
    (Rho.d_of_rho ~rho:0.01 ~delta:1e-10 > Rho.d_of_rho ~rho:0.01 ~delta:1e-3);
  (* d shrinks as rho grows. *)
  Alcotest.(check bool) "monotone in rho" true
    (Rho.d_of_rho ~rho:0.2 ~delta:1e-6 < Rho.d_of_rho ~rho:0.01 ~delta:1e-6);
  Alcotest.check_raises "delta validated"
    (Invalid_argument "Rho: delta must lie in (0, 1)") (fun () ->
      ignore (Rho.d_of_rho ~rho:0.5 ~delta:0.0))

let test_error_bound_identity () =
  (* By construction (1 - rho)^d <= delta at the returned d. *)
  List.iter
    (fun (rho, delta) ->
      let d = Rho.d_of_rho ~rho ~delta in
      let err = (1.0 -. rho) ** d in
      Alcotest.(check bool)
        (Printf.sprintf "bound met for rho=%g delta=%g" rho delta)
        true
        (err <= delta *. 1.0000001))
    [ (0.5, 1e-3); (0.1, 1e-6); (0.01, 1e-10); (0.9, 1e-2) ]

let test_log10_d_stability () =
  (* Deep in the underflow regime the log-space path must still give a
     finite, large answer: rho = 10^-40, delta = 1e-10. *)
  let e =
    {
      Rho.log10_witness_size = 0.0;
      log10_s_size = 40.0;
      log10_rho = -40.0;
    }
  in
  let l = Rho.log10_d e ~delta:1e-10 in
  (* d ~ -ln(1e-10) * 10^40 = 23.03 * 10^40 -> log10 d ~ 41.36 *)
  Alcotest.(check (float 0.01)) "log-space d" 41.3623 l

let test_log10_d_agreement () =
  (* In the comfortable regime both computation paths agree. *)
  let t = table (sub [ (0, 99) ]) [ sub [ (0, 49) ] ] in
  let e = Rho.estimate t in
  let direct = log10 (Rho.d_of_rho ~rho:(Rho.rho e) ~delta:1e-6) in
  Alcotest.(check (float 1e-6)) "paths agree" direct (Rho.log10_d e ~delta:1e-6)

let test_d_capped () =
  let t = table (sub [ (0, 99) ]) [ sub [ (0, 49) ] ] in
  let e = Rho.estimate t in
  Alcotest.(check int) "uncapped" 20 (Rho.d_capped e ~delta:1e-6 ~cap:1000);
  Alcotest.(check int) "capped" 5 (Rho.d_capped e ~delta:1e-6 ~cap:5);
  Alcotest.(check bool) "at least one" true
    (Rho.d_capped e ~delta:0.9999 ~cap:1000 >= 1)

let test_rho_never_above_one () =
  (* Row with no defined cells (covering row): Algorithm 2's strip
     minima stay within s, so log10_rho <= 0 by clamping. *)
  let t = table (sub [ (2, 5) ]) [ sub [ (0, 9) ] ] in
  let e = Rho.estimate t in
  Alcotest.(check bool) "rho <= 1" true (Rho.rho e <= 1.0)

let suite =
  [
    Alcotest.test_case "empty set: rho = 1" `Quick test_empty_set_rho_one;
    Alcotest.test_case "half cover" `Quick test_half_cover;
    Alcotest.test_case "gap fraction" `Quick test_gap_fraction;
    Alcotest.test_case "minimum over rows" `Quick test_min_over_rows;
    Alcotest.test_case "d inversion (Eq. 1)" `Quick test_d_of_rho;
    Alcotest.test_case "error bound identity" `Quick test_error_bound_identity;
    Alcotest.test_case "log-space stability" `Quick test_log10_d_stability;
    Alcotest.test_case "log paths agree" `Quick test_log10_d_agreement;
    Alcotest.test_case "capped budget" `Quick test_d_capped;
    Alcotest.test_case "rho clamped to 1" `Quick test_rho_never_above_one;
  ]

open Probsub_core

let test_determinism () =
  let a = Prng.of_int 7 and b = Prng.of_int 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same seed, same stream" (Prng.bits64 a)
      (Prng.bits64 b)
  done;
  let c = Prng.of_int 8 in
  let differs = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 c then differs := true
  done;
  Alcotest.(check bool) "different seeds diverge" true !differs

let test_copy () =
  let a = Prng.of_int 3 in
  ignore (Prng.bits64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.bits64 a)
    (Prng.bits64 b)

let test_split () =
  let a = Prng.of_int 3 in
  let b = Prng.split a in
  let matches = ref 0 in
  for _ = 1 to 50 do
    if Prng.bits64 a = Prng.bits64 b then incr matches
  done;
  Alcotest.(check int) "split streams do not coincide" 0 !matches

let test_int_bounds () =
  let rng = Prng.of_int 11 in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 10 in
    Alcotest.(check bool) "0 <= v < 10" true (v >= 0 && v < 10)
  done;
  Alcotest.check_raises "non-positive bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0))

let test_int_uniformity () =
  let rng = Prng.of_int 5 in
  let n = 10 and draws = 100_000 in
  let counts = Array.make n 0 in
  for _ = 1 to draws do
    let v = Prng.int rng n in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int draws /. float_of_int n in
  Array.iteri
    (fun i c ->
      let dev = Float.abs (float_of_int c -. expected) /. expected in
      if dev > 0.05 then
        Alcotest.failf "bucket %d deviates %.1f%% from uniform" i (dev *. 100.))
    counts

let test_int_in () =
  let rng = Prng.of_int 13 in
  for _ = 1 to 1_000 do
    let v = Prng.int_in rng ~lo:(-5) ~hi:5 in
    Alcotest.(check bool) "within inclusive range" true (v >= -5 && v <= 5)
  done;
  (* Degenerate range. *)
  Alcotest.(check int) "single-point range" 42 (Prng.int_in rng ~lo:42 ~hi:42);
  Alcotest.check_raises "inverted" (Invalid_argument "Prng.int_in: lo > hi")
    (fun () -> ignore (Prng.int_in rng ~lo:1 ~hi:0))

let test_in_interval () =
  let rng = Prng.of_int 17 in
  let r = Interval.make ~lo:100 ~hi:110 in
  for _ = 1 to 1_000 do
    Alcotest.(check bool) "in interval" true
      (Interval.mem (Prng.in_interval rng r) r)
  done

let test_float () =
  let rng = Prng.of_int 19 in
  let sum = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    let f = Prng.float rng in
    Alcotest.(check bool) "[0,1)" true (f >= 0.0 && f < 1.0);
    sum := !sum +. f
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_bool () =
  let rng = Prng.of_int 23 in
  let trues = ref 0 in
  let n = 100_000 in
  for _ = 1 to n do
    if Prng.bool rng then incr trues
  done;
  let ratio = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "fair coin" true (Float.abs (ratio -. 0.5) < 0.01)

let test_large_bound () =
  let rng = Prng.of_int 29 in
  (* Interval sentinels imply bounds near 2^41; draws must stay exact. *)
  let r = Interval.full in
  for _ = 1 to 1_000 do
    Alcotest.(check bool) "full-domain draw in range" true
      (Interval.mem (Prng.in_interval rng r) r)
  done

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "copy" `Quick test_copy;
    Alcotest.test_case "split independence" `Quick test_split;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniformity" `Quick test_int_uniformity;
    Alcotest.test_case "int_in inclusive" `Quick test_int_in;
    Alcotest.test_case "interval draws" `Quick test_in_interval;
    Alcotest.test_case "float range and mean" `Quick test_float;
    Alcotest.test_case "bool fairness" `Quick test_bool;
    Alcotest.test_case "large bounds" `Quick test_large_bound;
  ]

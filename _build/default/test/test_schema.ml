open Probsub_core
open Probsub_workload

let test_uniform () =
  let s = Schema.uniform ~arity:3 ~lo:0 ~hi:99 in
  Alcotest.(check int) "arity" 3 (Schema.arity s);
  Alcotest.(check bool) "domain" true
    (Interval.equal (Schema.domain s 1) (Interval.make ~lo:0 ~hi:99));
  Alcotest.check_raises "arity validated"
    (Invalid_argument "Schema.uniform: arity < 1") (fun () ->
      ignore (Schema.uniform ~arity:0 ~lo:0 ~hi:1))

let test_space () =
  let s = Schema.uniform ~arity:2 ~lo:5 ~hi:10 in
  let space = Schema.space s in
  Alcotest.(check bool) "space is the domain box" true
    (Subscription.equal space (Subscription.of_bounds [ (5, 10); (5, 10) ]))

let test_random_point () =
  let s = Schema.uniform ~arity:4 ~lo:(-10) ~hi:10 in
  let rng = Prng.of_int 1 in
  for _ = 1 to 1_000 do
    let p = Schema.random_point rng s in
    Alcotest.(check bool) "point in space" true
      (Subscription.covers_point (Schema.space s) p)
  done

let test_random_box () =
  let s = Schema.uniform ~arity:3 ~lo:0 ~hi:99 in
  let rng = Prng.of_int 2 in
  for _ = 1 to 1_000 do
    let box = Schema.random_box rng s ~min_width:5 ~max_width:20 in
    Alcotest.(check bool) "box inside space" true
      (Subscription.covers_sub (Schema.space s) box);
    for j = 0 to 2 do
      let w = Interval.width (Subscription.range box j) in
      Alcotest.(check bool) "width respected" true (w >= 5 && w <= 20)
    done
  done;
  Alcotest.check_raises "width bounds validated"
    (Invalid_argument "Schema.random_box: bad width bounds") (fun () ->
      ignore (Schema.random_box rng s ~min_width:0 ~max_width:5))

let test_random_box_clamps_to_domain () =
  (* Asking for boxes wider than the domain clamps to the domain. *)
  let s = Schema.uniform ~arity:1 ~lo:0 ~hi:9 in
  let rng = Prng.of_int 3 in
  for _ = 1 to 100 do
    let box = Schema.random_box rng s ~min_width:50 ~max_width:100 in
    Alcotest.(check int) "clamped to domain" 10
      (Interval.width (Subscription.range box 0))
  done

let suite =
  [
    Alcotest.test_case "uniform schema" `Quick test_uniform;
    Alcotest.test_case "space" `Quick test_space;
    Alcotest.test_case "random points" `Quick test_random_point;
    Alcotest.test_case "random boxes" `Quick test_random_box;
    Alcotest.test_case "box clamping" `Quick test_random_box_clamps_to_domain;
  ]

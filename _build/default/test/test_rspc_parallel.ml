open Probsub_core

let sub = Subscription.of_bounds

let test_sequential_fallback () =
  (* domains = 1 must be bit-identical to the sequential runner. *)
  let s = sub [ (0, 999) ] in
  let subs = [| sub [ (0, 899) ] |] in
  let a = Rspc_parallel.run ~domains:1 ~rng:(Prng.of_int 3) ~d:5000 ~s subs in
  let b = Rspc.run ~rng:(Prng.of_int 3) ~d:5000 ~s subs in
  Alcotest.(check int) "same iterations" b.Rspc.iterations a.Rspc.iterations;
  Alcotest.(check bool) "same outcome kind" true
    (match (a.Rspc.outcome, b.Rspc.outcome) with
    | Rspc.Not_covered x, Rspc.Not_covered y -> x = y
    | Rspc.Probably_covered, Rspc.Probably_covered -> true
    | _ -> false)

let test_covered_never_lies () =
  (* A truly covered s cannot yield a witness, whatever the schedule. *)
  let s = sub [ (10, 20); (10, 20) ] in
  let subs = [| sub [ (0, 15); (0, 99) ]; sub [ (14, 99); (0, 99) ] |] in
  for seed = 1 to 5 do
    let run =
      Rspc_parallel.run ~domains:4 ~rng:(Prng.of_int seed) ~d:10_000 ~s subs
    in
    (match run.Rspc.outcome with
    | Rspc.Probably_covered -> ()
    | Rspc.Not_covered _ -> Alcotest.fail "covered input produced a witness");
    Alcotest.(check int) "full budget spent" 10_000 run.Rspc.iterations
  done

let test_witness_is_sound () =
  (* Any NO must come with a verified witness point. *)
  let s = sub [ (0, 999); (0, 999) ] in
  let subs = [| sub [ (0, 899); (0, 999) ] |] in
  for seed = 1 to 5 do
    let run =
      Rspc_parallel.run ~domains:4 ~rng:(Prng.of_int seed) ~d:50_000 ~s subs
    in
    match run.Rspc.outcome with
    | Rspc.Not_covered p ->
        Alcotest.(check bool) "inside s" true (Subscription.covers_point s p);
        Alcotest.(check bool) "escapes the set" true (Rspc.escapes p subs);
        Alcotest.(check bool) "stopped early" true
          (run.Rspc.iterations < 50_000)
    | Rspc.Probably_covered ->
        (* 10% uncovered, 50k trials: astronomically unlikely. *)
        Alcotest.fail "witness must be found"
  done

let test_budget_split_covers_d () =
  (* Uneven splits: total trials on a covered instance must equal d
     exactly for every domain count. *)
  let s = sub [ (0, 9) ] in
  let subs = [| sub [ (0, 9) ] |] in
  List.iter
    (fun domains ->
      let run =
        Rspc_parallel.run ~domains ~rng:(Prng.of_int 1) ~d:9_973 ~s subs
      in
      Alcotest.(check int)
        (Printf.sprintf "d honoured with %d domains" domains)
        9_973 run.Rspc.iterations)
    [ 2; 3; 4; 7 ]

let test_validation () =
  let s = sub [ (0, 9) ] in
  Alcotest.check_raises "domains validated"
    (Invalid_argument "Rspc_parallel.run: domains < 1") (fun () ->
      ignore (Rspc_parallel.run ~domains:0 ~rng:(Prng.of_int 1) ~d:1 ~s [||]));
  Alcotest.(check bool) "recommendation positive" true
    (Rspc_parallel.recommended_domains () >= 1)

let suite =
  [
    Alcotest.test_case "sequential fallback" `Quick test_sequential_fallback;
    Alcotest.test_case "covered never lies" `Slow test_covered_never_lies;
    Alcotest.test_case "witnesses are sound" `Slow test_witness_is_sound;
    Alcotest.test_case "budget split exact" `Quick test_budget_split_covers_d;
    Alcotest.test_case "validation" `Quick test_validation;
  ]

open Probsub_core

let sub = Subscription.of_bounds
let table s subs = Conflict_table.build ~s (Array.of_list subs)

let test_empty_set () =
  let s = sub [ (0, 9) ] in
  let t = table s [] in
  Alcotest.(check bool) "corollary 3 trivially holds" true
    (Witness.corollary3_holds t);
  match Witness.find_polyhedron t with
  | Some w ->
      Alcotest.(check bool) "witness is s itself" true
        (Subscription.equal w.Witness.region s)
  | None -> Alcotest.fail "empty set: s is its own witness"

let test_simple_gap () =
  (* s = [0,9]^2; one subscription covers only the left half. *)
  let s = sub [ (0, 9); (0, 9) ] in
  let t = table s [ sub [ (0, 4); (0, 9) ] ] in
  Alcotest.(check bool) "corollary 3 holds" true (Witness.corollary3_holds t);
  match Witness.find_polyhedron t with
  | Some w ->
      Alcotest.(check bool) "verified" true (Witness.verify t w);
      let p = Witness.point_of w in
      Alcotest.(check bool) "point witness" true (Witness.is_point_witness t p);
      Alcotest.(check bool) "point in right strip" true (p.(0) >= 5)
  | None -> Alcotest.fail "witness must exist"

let test_covered_no_witness () =
  (* One subscription covering s entirely: row all-undefined. *)
  let s = sub [ (2, 5); (2, 5) ] in
  let t = table s [ sub [ (0, 9); (0, 9) ] ] in
  Alcotest.(check bool) "corollary 3 fails" false (Witness.corollary3_holds t);
  Alcotest.(check bool) "no witness" true
    (Option.is_none (Witness.find_polyhedron t))

let test_group_cover_no_witness () =
  (* The Table 3 example: group-covered, so the greedy must fail. *)
  let s = sub [ (830, 870); (1003, 1006) ] in
  let t =
    table s [ sub [ (820, 850); (1001, 1007) ]; sub [ (840, 880); (1002, 1009) ] ]
  in
  Alcotest.(check bool) "corollary 3 fails" false (Witness.corollary3_holds t);
  Alcotest.(check bool) "greedy finds nothing" true
    (Option.is_none (Witness.find_polyhedron t))

let test_corollary3_counts () =
  (* Three rows with 1, 2, 3 defined entries: sorted t = [1;2;3] with
     t_j >= j for 1-based j -> holds. *)
  let s = sub [ (0, 99); (0, 99); (0, 99) ] in
  let r1 = sub [ (0, 50); (0, 99); (0, 99) ] (* 1 defined *) in
  let r2 = sub [ (0, 99); (10, 80); (0, 99) ] (* 2 defined *) in
  let r3 = sub [ (5, 99); (0, 99); (10, 90) ] (* 3 defined *) in
  let t = table s [ r1; r2; r3 ] in
  Alcotest.(check int) "t1" 1 (Conflict_table.defined_count t ~row:0);
  Alcotest.(check int) "t2" 2 (Conflict_table.defined_count t ~row:1);
  Alcotest.(check int) "t3" 3 (Conflict_table.defined_count t ~row:2);
  Alcotest.(check bool) "condition holds" true (Witness.corollary3_holds t);
  match Witness.find_polyhedron t with
  | Some w -> Alcotest.(check bool) "witness verified" true (Witness.verify t w)
  | None -> Alcotest.fail "corollary 3 guarantees a witness"

let test_corollary3_violated () =
  (* Two rows each with one defined entry on the same attribute,
     opposite sides, cutting s in half: sorted [1;1] and position 2
     wants >= 2 -> condition fails. *)
  let s = sub [ (0, 9) ] in
  let t = table s [ sub [ (0, 4) ]; sub [ (5, 9) ] ] in
  Alcotest.(check bool) "condition fails" false (Witness.corollary3_holds t)

let test_is_point_witness () =
  let s = sub [ (0, 9) ] in
  let t = table s [ sub [ (0, 4) ] ] in
  Alcotest.(check bool) "5 escapes" true (Witness.is_point_witness t [| 5 |]);
  Alcotest.(check bool) "3 is covered" false (Witness.is_point_witness t [| 3 |]);
  Alcotest.(check bool) "outside s is no witness" false
    (Witness.is_point_witness t [| 100 |])

let test_verify_rejects_bad_region () =
  let s = sub [ (0, 9) ] in
  let t = table s [ sub [ (0, 4) ] ] in
  let bogus = { Witness.region = sub [ (0, 9) ]; picks = [] } in
  Alcotest.(check bool) "region overlapping s1 rejected" false
    (Witness.verify t bogus)

let suite =
  [
    Alcotest.test_case "empty set" `Quick test_empty_set;
    Alcotest.test_case "simple gap" `Quick test_simple_gap;
    Alcotest.test_case "covered: no witness" `Quick test_covered_no_witness;
    Alcotest.test_case "group cover: greedy fails" `Quick
      test_group_cover_no_witness;
    Alcotest.test_case "corollary 3 positive" `Quick test_corollary3_counts;
    Alcotest.test_case "corollary 3 negative" `Quick test_corollary3_violated;
    Alcotest.test_case "point witness predicate" `Quick test_is_point_witness;
    Alcotest.test_case "verify rejects bad regions" `Quick
      test_verify_rejects_bad_region;
  ]

open Probsub_core

let sub = Subscription.of_bounds
let table s subs = Conflict_table.build ~s (Array.of_list subs)

let run_mcs s subs = Mcs.run (table s subs)

let test_non_intersecting_removed () =
  (* A subscription disjoint from s is pure noise; MCS must drop it. *)
  let s = sub [ (0, 9); (0, 9) ] in
  let noise = sub [ (100, 110); (100, 110) ] in
  let half = sub [ (0, 9); (0, 4) ] in
  let result = run_mcs s [ half; noise ] in
  Alcotest.(check bool) "noise removed" true (List.mem 1 result.Mcs.removed)

let test_duplicate_strips_removed () =
  (* Fig. 4 shape: a row whose defined cells conflict with nobody is
     redundant. Covered by test_paper_examples too; here with a row
     that covers the same part of s as another. *)
  let s = sub [ (0, 99); (0, 99) ] in
  let a = sub [ (0, 49); (0, 99) ] in
  let b = sub [ (40, 99); (0, 99) ] in
  (* c leaves strips only on x1, conflicting with nothing on x0. *)
  let c = sub [ (0, 99); (10, 90) ] in
  let result = run_mcs s [ a; b; c ] in
  Alcotest.(check (list int)) "c removed" [ 2 ] result.Mcs.removed;
  Alcotest.(check (list int)) "a,b kept" [ 0; 1 ] result.Mcs.kept

let test_row_count_rule () =
  (* Two nested rows on one attribute: every cell of each row conflicts
     with the other row, so the conflict-free rule never fires, but
     t_i = 2 >= k = 2 removes both via the row-count rule. *)
  let s = sub [ (0, 99) ] in
  let a = sub [ (20, 79) ] (* cells x0<20, x0>79 *) in
  let b = sub [ (40, 59) ] (* cells x0<40, x0>59 *) in
  let result = run_mcs s [ a; b ] in
  Alcotest.(check (list int)) "both dropped" [] result.Mcs.kept;
  Alcotest.(check int) "accounted as row-count removals" 2
    result.Mcs.removed_row_count;
  Alcotest.(check int) "no conflict-free removals" 0
    result.Mcs.removed_conflict_free;
  (* A single candidate is removed too (t_i >= k = 1 or conflict-free,
     whichever the sweep sees first). *)
  let single = run_mcs (sub [ (0, 9) ]) [ sub [ (0, 4) ] ] in
  Alcotest.(check (list int)) "single candidate dropped" [ 0 ]
    single.Mcs.removed

let test_preserves_answer_covered () =
  (* MCS must never change the coverage answer. Covered case with
     redundancy. *)
  let s = sub [ (0, 99); (0, 99) ] in
  let core = [ sub [ (0, 59); (0, 99) ]; sub [ (50, 99); (0, 99) ] ] in
  let redundant =
    [ sub [ (20, 80); (20, 80) ]; sub [ (0, 99); (0, 49) ]; sub [ (300, 400); (0, 99) ] ]
  in
  let all = core @ redundant in
  let t = table s all in
  let result = Mcs.run t in
  let reduced = Mcs.reduced_subs t result in
  Alcotest.(check bool) "original covered" true
    (Exact.covered s (Array.of_list all));
  Alcotest.(check bool) "reduced still covered" true (Exact.covered s reduced)

let test_preserves_answer_non_covered () =
  let s = sub [ (0, 99); (0, 99) ] in
  let subs =
    [
      sub [ (0, 49); (0, 99) ];
      sub [ (50, 98); (0, 99) ] (* leaves x0 = 99 uncovered *);
      sub [ (0, 99); (40, 60) ];
    ]
  in
  let t = table s subs in
  let result = Mcs.run t in
  let reduced = Mcs.reduced_subs t result in
  Alcotest.(check bool) "original not covered" false
    (Exact.covered s (Array.of_list subs));
  Alcotest.(check bool) "reduced not covered" false (Exact.covered s reduced)

let test_empty_result_on_scenario_2a () =
  (* No-intersection scenario (2.a): every row is conflict-free, the
     minimized set is empty after one sweep. *)
  let s = sub [ (0, 9); (0, 9) ] in
  let subs =
    [ sub [ (50, 60); (0, 9) ]; sub [ (0, 9); (70, 80) ]; sub [ (20, 30); (20, 30) ] ]
  in
  let result = run_mcs s subs in
  Alcotest.(check (list int)) "all removed" [] result.Mcs.kept;
  Alcotest.(check bool) "few sweeps" true (result.Mcs.sweeps <= 2)

let test_keeps_tight_cover () =
  (* A minimal two-piece cover has mutually conflicting strips; MCS
     must keep both. *)
  let s = sub [ (10, 20) ] in
  let left = sub [ (0, 15) ] and right = sub [ (14, 99) ] in
  let result = run_mcs s [ left; right ] in
  Alcotest.(check (list int)) "both kept" [ 0; 1 ] result.Mcs.kept

let test_conflict_free_count_reference () =
  (* The optimized sweep agrees with the O(m*k) reference definition on
     a batch of structured cases. *)
  let s = sub [ (0, 99); (0, 99); (0, 99) ] in
  let subs =
    [
      sub [ (0, 49); (0, 99); (0, 99) ];
      sub [ (45, 99); (0, 99); (0, 99) ];
      sub [ (0, 99); (0, 30); (0, 99) ];
      sub [ (0, 99); (25, 99); (5, 95) ];
      sub [ (10, 90); (10, 90); (10, 90) ];
    ]
  in
  let t = table s subs in
  let alive = Array.make (List.length subs) true in
  (* Recompute what the sweep would decide row by row, from the
     reference; rows with fc >= 1 here must be removed by Mcs.run's
     first sweeps (possibly later, since removals cascade). *)
  let reference_redundant =
    List.filteri
      (fun row _ -> Mcs.conflict_free_count t ~alive ~row >= 1)
      subs
    |> List.length
  in
  let result = Mcs.run t in
  Alcotest.(check bool)
    "every reference-redundant row eventually removed" true
    (List.length result.Mcs.removed >= reference_redundant)

let test_fixpoint_cascades () =
  (* Removing one row can unlock another: b conflicts only with noise
     row c; once c goes, b becomes conflict-free and goes too. *)
  let s = sub [ (0, 99) ] in
  let a = sub [ (0, 60) ] in
  (* a: strip x0 > 60 = [61,99] *)
  let b = sub [ (30, 99) ] in
  (* b: strip x0 < 30 = [0,29]; conflicts with a's strip. *)
  let result = run_mcs s [ a; b ] in
  (* Both have 1 defined entry, k = 2: no removal by row count; each
     conflicts with the other so no conflict-free entries; both kept. *)
  Alcotest.(check (list int)) "mutually conflicting pair kept" [ 0; 1 ]
    result.Mcs.kept

let test_large_random_consistency () =
  (* On random sets, the reduced set answer must match the full set
     answer (checked by the exact oracle at small scale). *)
  let rng = Prng.of_int 99 in
  for _ = 1 to 50 do
    let s =
      Subscription.of_list
        (List.init 3 (fun _ ->
             let lo = Prng.int rng 50 in
             Interval.make ~lo ~hi:(lo + 10 + Prng.int rng 30)))
    in
    let subs =
      Array.init 8 (fun _ ->
          Subscription.of_list
            (List.init 3 (fun _ ->
                 let lo = Prng.int rng 70 in
                 Interval.make ~lo ~hi:(lo + 5 + Prng.int rng 40))))
    in
    let t = Conflict_table.build ~s subs in
    let reduced = Mcs.reduced_subs t (Mcs.run t) in
    Alcotest.(check bool) "MCS preserves the answer"
      (Exact.covered s subs)
      (Exact.covered s reduced)
  done

let suite =
  [
    Alcotest.test_case "non-intersecting removed" `Quick
      test_non_intersecting_removed;
    Alcotest.test_case "conflict-free rows removed" `Quick
      test_duplicate_strips_removed;
    Alcotest.test_case "row-count rule" `Quick test_row_count_rule;
    Alcotest.test_case "answer preserved (covered)" `Quick
      test_preserves_answer_covered;
    Alcotest.test_case "answer preserved (non-covered)" `Quick
      test_preserves_answer_non_covered;
    Alcotest.test_case "scenario 2.a empties the set" `Quick
      test_empty_result_on_scenario_2a;
    Alcotest.test_case "tight cover kept" `Quick test_keeps_tight_cover;
    Alcotest.test_case "reference fc agreement" `Quick
      test_conflict_free_count_reference;
    Alcotest.test_case "mutual conflicts kept" `Quick test_fixpoint_cascades;
    Alcotest.test_case "random consistency vs oracle" `Slow
      test_large_random_consistency;
  ]

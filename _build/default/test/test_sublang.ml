open Probsub_core

let schema_text =
  {|# bike rental schema
bid   : int[1, 1999]
size  : int[14, 24]
brand : enum(X, Y, Z)
fast  : flag
date  : minutes
|}

let codec () =
  match Sublang.parse_schema schema_text with
  | Ok c -> c
  | Error e -> Alcotest.failf "schema did not parse: %s" e

let parse_sub c s =
  match Sublang.parse_subscription c s with
  | Ok sub -> sub
  | Error e -> Alcotest.failf "subscription %S did not parse: %s" s e

let test_schema () =
  let c = codec () in
  Alcotest.(check int) "five fields" 5 (Domain_codec.arity c);
  match Sublang.parse_schema "x : int[1, 2]\ny : what" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad spec must be rejected"

let test_subscription_forms () =
  let c = codec () in
  let sub =
    parse_sub c "size in [17, 19] & brand = X and bid >= 1000 & fast = true"
  in
  let range name =
    Subscription.range sub (Domain_codec.field_index c name)
  in
  Alcotest.(check bool) "size range" true
    (Interval.equal (range "size") (Interval.make ~lo:17 ~hi:19));
  Alcotest.(check bool) "brand point" true
    (Interval.equal (range "brand") (Interval.point 0));
  Alcotest.(check int) "bid lower bound" 1000 (Interval.lo (range "bid"));
  Alcotest.(check int) "bid upper = domain" 1999 (Interval.hi (range "bid"));
  Alcotest.(check bool) "flag true" true
    (Interval.equal (range "fast") (Interval.point 1))

let test_star_and_wildcard_field () =
  let c = codec () in
  let all = parse_sub c "*" in
  Alcotest.(check bool) "star has no constraints beyond domains" true
    (Subscription.covers_sub all (parse_sub c "size = 17 & brand = Z"));
  let explicit = parse_sub c "brand = * & size <= 18" in
  Alcotest.(check bool) "field = * leaves domain" true
    (Interval.equal
       (Subscription.range explicit (Domain_codec.field_index c "brand"))
       (Domain_codec.domain c "brand"))

let test_timestamps_in_language () =
  let c = codec () in
  let sub = parse_sub c "date in [2006-03-31T16:00, 2006-03-31T20:00]" in
  let r = Subscription.range sub (Domain_codec.field_index c "date") in
  Alcotest.(check int) "four hours, inclusive end points" 241
    (Interval.width r);
  Alcotest.(check int) "lower bound decodes back" 240
    (Interval.hi r - Interval.lo r)

let test_publication () =
  let c = codec () in
  match
    Sublang.parse_publication c
      "bid = 1036, size = 19, brand = X, fast = false, date = 2006-03-31T18:23"
  with
  | Error e -> Alcotest.failf "publication did not parse: %s" e
  | Ok pub ->
      let sub = parse_sub c "size in [17,19] & brand = X" in
      Alcotest.(check bool) "matches" true (Publication.matches sub pub)

let test_errors () =
  let c = codec () in
  let is_error = function Result.Error _ -> true | Result.Ok _ -> false in
  List.iter
    (fun input ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" input)
        true
        (is_error (Sublang.parse_subscription c input)))
    [
      "nosuchfield = 3";
      "size > 17" (* bare > is not in the grammar *);
      "size in [17 19]";
      "brand = Q";
      "size = X";
      "size in [19, 17]";
      "size = 17 size = 18" (* missing connective *);
      "fast = maybe";
    ];
  Alcotest.(check bool) "incomplete publication rejected" true
    (is_error (Sublang.parse_publication c "bid = 3"))

let test_round_trip () =
  let c = codec () in
  List.iter
    (fun input ->
      let sub = parse_sub c input in
      let rendered = Sublang.subscription_to_string c sub in
      let reparsed = parse_sub c rendered in
      Alcotest.(check bool)
        (Printf.sprintf "%S -> %S round-trips" input rendered)
        true
        (Subscription.equal sub reparsed))
    [
      "size in [17, 19] & brand = X";
      "bid >= 1000";
      "size <= 16 & fast = true";
      "*";
      "date in [2006-03-31T16:00, 2006-03-31T20:00]";
    ]

let test_quoted_symbols () =
  let c =
    Domain_codec.make [ ("name", Domain_codec.Enum [ "alpha beta"; "x" ]) ]
  in
  match Sublang.parse_subscription c {|name = "alpha beta"|} with
  | Ok sub ->
      Alcotest.(check bool) "quoted symbol resolves" true
        (Interval.equal (Subscription.range sub 0) (Interval.point 0))
  | Error e -> Alcotest.failf "quoted symbol: %s" e

let test_parser_never_crashes () =
  (* Fuzz: arbitrary byte soup must yield Ok or Error, never raise. *)
  let c = codec () in
  let rng = Prng.of_int 911 in
  for _ = 1 to 2000 do
    let len = Prng.int rng 40 in
    let garbage =
      String.init len (fun _ -> Char.chr (32 + Prng.int rng 95))
    in
    (match Sublang.parse_subscription c garbage with
    | Ok _ | Error _ -> ());
    match Sublang.parse_publication c garbage with Ok _ | Error _ -> ()
  done

let suite =
  [
    Alcotest.test_case "schema parsing" `Quick test_schema;
    Alcotest.test_case "subscription forms" `Quick test_subscription_forms;
    Alcotest.test_case "stars" `Quick test_star_and_wildcard_field;
    Alcotest.test_case "timestamps" `Quick test_timestamps_in_language;
    Alcotest.test_case "publications" `Quick test_publication;
    Alcotest.test_case "error reporting" `Quick test_errors;
    Alcotest.test_case "round trips" `Quick test_round_trip;
    Alcotest.test_case "quoted symbols" `Quick test_quoted_symbols;
    Alcotest.test_case "parser fuzz" `Quick test_parser_never_crashes;
  ]

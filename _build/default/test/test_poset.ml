open Probsub_core

let sub = Subscription.of_bounds

let test_basic_order () =
  let t = Poset.create ~arity:2 () in
  let big = Poset.add t (sub [ (0, 99); (0, 99) ]) in
  let mid = Poset.add t (sub [ (10, 50); (10, 50) ]) in
  let small = Poset.add t (sub [ (20, 30); (20, 30) ]) in
  Alcotest.(check int) "three nodes" 3 (Poset.size t);
  Alcotest.(check (list int)) "single root" [ big ]
    (List.map fst (Poset.roots t));
  Alcotest.(check bool) "big covers small transitively" true
    (Poset.covers t big small);
  Alcotest.(check bool) "mid covers small" true (Poset.covers t mid small);
  Alcotest.(check bool) "small does not cover mid" false
    (Poset.covers t small mid);
  Alcotest.(check bool) "valid" true (Poset.validate t)

let test_insert_between () =
  (* Insert the middle element last: the direct big->small edge must be
     replaced by big->mid->small. *)
  let t = Poset.create ~arity:1 () in
  let big = Poset.add t (sub [ (0, 99) ]) in
  let small = Poset.add t (sub [ (40, 60) ]) in
  let mid = Poset.add t (sub [ (20, 80) ]) in
  Alcotest.(check bool) "valid" true (Poset.validate t);
  Alcotest.(check (list int)) "one root" [ big ] (List.map fst (Poset.roots t));
  Alcotest.(check bool) "big -> mid -> small" true
    (Poset.covers t big mid && Poset.covers t mid small)

let test_incomparable_roots () =
  let t = Poset.create ~arity:1 () in
  let a = Poset.add t (sub [ (0, 10) ]) in
  let b = Poset.add t (sub [ (20, 30) ]) in
  let c = Poset.add t (sub [ (5, 25) ]) (* overlaps both, covers neither *) in
  Alcotest.(check (list int)) "three roots" [ a; b; c ]
    (List.map fst (Poset.roots t));
  Alcotest.(check bool) "no covering" false (Poset.covers t a b);
  Alcotest.(check bool) "valid" true (Poset.validate t)

let test_duplicates_chain () =
  let t = Poset.create ~arity:1 () in
  let first = Poset.add t (sub [ (0, 10) ]) in
  let second = Poset.add t (sub [ (0, 10) ]) in
  Alcotest.(check (list int)) "older duplicate is the root" [ first ]
    (List.map fst (Poset.roots t));
  Alcotest.(check bool) "chained" true (Poset.covers t first second);
  Alcotest.(check bool) "acyclic" false (Poset.covers t second first);
  Alcotest.(check bool) "valid" true (Poset.validate t)

let test_remove_reconnects () =
  let t = Poset.create ~arity:1 () in
  let big = Poset.add t (sub [ (0, 99) ]) in
  let mid = Poset.add t (sub [ (20, 80) ]) in
  let small = Poset.add t (sub [ (40, 60) ]) in
  Poset.remove t mid;
  Alcotest.(check int) "two left" 2 (Poset.size t);
  Alcotest.(check bool) "valid" true (Poset.validate t);
  Alcotest.(check bool) "big still covers small" true
    (Poset.covers t big small);
  Alcotest.(check (list int)) "root survives" [ big ]
    (List.map fst (Poset.roots t));
  Alcotest.check_raises "mid is gone" Not_found (fun () ->
      ignore (Poset.find t mid))

let test_remove_root_promotes () =
  let t = Poset.create ~arity:1 () in
  let big = Poset.add t (sub [ (0, 99) ]) in
  let a = Poset.add t (sub [ (10, 40) ]) in
  let b = Poset.add t (sub [ (50, 90) ]) in
  Poset.remove t big;
  Alcotest.(check (list int)) "children become roots" [ a; b ]
    (List.map fst (Poset.roots t));
  Alcotest.(check bool) "valid" true (Poset.validate t)

let test_covered_by_some_root () =
  let t = Poset.create ~arity:2 () in
  let _ = Poset.add t (sub [ (0, 50); (0, 99) ]) in
  let _ = Poset.add t (sub [ (40, 99); (0, 50) ]) in
  Alcotest.(check bool) "inside the first" true
    (Poset.covered_by_some_root t (sub [ (10, 20); (10, 90) ]));
  Alcotest.(check bool) "group-covered only: poset says no" false
    (Poset.covered_by_some_root t (sub [ (30, 60); (10, 40) ]));
  Alcotest.(check bool) "outside everything" false
    (Poset.covered_by_some_root t (sub [ (60, 99); (60, 99) ]))

let test_against_flat_scan () =
  (* Randomized: the poset's roots and coverage answers must agree with
     a naive flat implementation under interleaved add/remove. *)
  let rng = Prng.of_int 99 in
  let t = Poset.create ~arity:2 () in
  let flat = Hashtbl.create 32 in
  for _ = 1 to 300 do
    if Prng.float rng < 0.7 || Hashtbl.length flat = 0 then begin
      let lo1 = Prng.int rng 30 and lo2 = Prng.int rng 30 in
      let w1 = 1 + Prng.int rng 40 and w2 = 1 + Prng.int rng 40 in
      let s = sub [ (lo1, lo1 + w1); (lo2, lo2 + w2) ] in
      let id = Poset.add t s in
      Hashtbl.replace flat id s
    end
    else begin
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) flat [] in
      let id = List.nth ids (Prng.int rng (List.length ids)) in
      Hashtbl.remove flat id;
      Poset.remove t id
    end;
    Alcotest.(check bool) "invariants hold" true (Poset.validate t);
    Alcotest.(check int) "sizes agree" (Hashtbl.length flat) (Poset.size t);
    (* Coverage probe. *)
    let lo1 = Prng.int rng 40 and lo2 = Prng.int rng 40 in
    let probe = sub [ (lo1, lo1 + 1 + Prng.int rng 20); (lo2, lo2 + 1 + Prng.int rng 20) ] in
    let naive =
      Hashtbl.fold
        (fun _ s acc -> acc || Subscription.covers_sub s probe)
        flat false
    in
    Alcotest.(check bool) "coverage agrees with naive scan" naive
      (Poset.covered_by_some_root t probe);
    (* Roots = elements not covered by any distinct other (older
       duplicates win). *)
    let naive_roots =
      Hashtbl.fold
        (fun id s acc ->
          let covered =
            Hashtbl.fold
              (fun id' s' c ->
                c
                || (id' <> id
                   && Subscription.covers_sub s' s
                   && (not (Subscription.equal s' s) || id' < id)))
              flat false
          in
          if covered then acc else id :: acc)
        flat []
      |> List.sort Int.compare
    in
    Alcotest.(check (list int)) "roots agree with naive scan" naive_roots
      (List.map fst (Poset.roots t))
  done

let test_arity_guard () =
  let t = Poset.create ~arity:2 () in
  Alcotest.check_raises "mismatch" (Invalid_argument "Poset.add: arity mismatch")
    (fun () -> ignore (Poset.add t (sub [ (0, 1) ])))

let suite =
  [
    Alcotest.test_case "basic order" `Quick test_basic_order;
    Alcotest.test_case "insert between" `Quick test_insert_between;
    Alcotest.test_case "incomparable roots" `Quick test_incomparable_roots;
    Alcotest.test_case "duplicates chain" `Quick test_duplicates_chain;
    Alcotest.test_case "remove reconnects" `Quick test_remove_reconnects;
    Alcotest.test_case "remove root" `Quick test_remove_root_promotes;
    Alcotest.test_case "root coverage query" `Quick test_covered_by_some_root;
    Alcotest.test_case "randomized vs flat scan" `Slow test_against_flat_scan;
    Alcotest.test_case "arity guard" `Quick test_arity_guard;
  ]

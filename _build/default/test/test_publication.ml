open Probsub_core

let sub = Subscription.of_bounds

let test_point () =
  let p = Publication.of_list [ 1; 2; 3 ] in
  Alcotest.(check int) "arity" 3 (Publication.arity p);
  let s = sub [ (0, 5); (0, 5); (0, 5) ] in
  Alcotest.(check bool) "matches" true (Publication.matches s p);
  let s' = sub [ (0, 5); (0, 5); (4, 5) ] in
  Alcotest.(check bool) "no match" false (Publication.matches s' p)

let test_point_copies () =
  let values = [| 1; 2 |] in
  let p = Publication.point values in
  values.(0) <- 99;
  let s = sub [ (1, 1); (2, 2) ] in
  Alcotest.(check bool) "constructor copied values" true
    (Publication.matches s p)

let test_box () =
  let b = Publication.box (sub [ (2, 4); (2, 4) ]) in
  let covering = sub [ (0, 10); (0, 10) ] in
  let partial = sub [ (3, 10); (0, 10) ] in
  Alcotest.(check bool) "box inside matches" true
    (Publication.matches covering b);
  Alcotest.(check bool) "partially overlapping box does not" false
    (Publication.matches partial b)

let test_to_sub () =
  let p = Publication.of_list [ 7; 9 ] in
  let s = Publication.to_sub p in
  Alcotest.(check bool) "degenerate box" true
    (Subscription.equal s (sub [ (7, 7); (9, 9) ]));
  let original = sub [ (0, 1); (2, 3) ] in
  Alcotest.(check bool) "box publication keeps its box" true
    (Subscription.equal (Publication.to_sub (Publication.box original)) original)

let test_equal () =
  Alcotest.(check bool) "points equal" true
    (Publication.equal (Publication.of_list [ 1; 2 ]) (Publication.of_list [ 1; 2 ]));
  Alcotest.(check bool) "points differ" false
    (Publication.equal (Publication.of_list [ 1; 2 ]) (Publication.of_list [ 1; 3 ]));
  Alcotest.(check bool) "point <> box" false
    (Publication.equal
       (Publication.of_list [ 1; 1 ])
       (Publication.box (sub [ (1, 1); (1, 1) ])))

let test_empty_rejected () =
  Alcotest.check_raises "empty point" (Invalid_argument "Publication.point: empty")
    (fun () -> ignore (Publication.point [||]))

let test_pp () =
  Alcotest.(check string) "point" "(1, 2)"
    (Publication.to_string (Publication.of_list [ 1; 2 ]));
  Alcotest.(check string) "box" "box {[0, 1]}"
    (Publication.to_string (Publication.box (sub [ (0, 1) ])))

let suite =
  [
    Alcotest.test_case "point matching" `Quick test_point;
    Alcotest.test_case "defensive copy" `Quick test_point_copies;
    Alcotest.test_case "box matching" `Quick test_box;
    Alcotest.test_case "view as subscription" `Quick test_to_sub;
    Alcotest.test_case "equality" `Quick test_equal;
    Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]

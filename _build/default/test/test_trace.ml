open Probsub_core
open Probsub_broker

let small_params =
  {
    Trace.duration = 30.0;
    subscribe_rate = 1.0;
    unsubscribe_rate = 0.02;
    publish_rate = 4.0;
    brokers = 5;
    m = 3;
    match_bias = 0.5;
  }

let test_generate_shape () =
  let t = Trace.generate ~params:small_params (Prng.of_int 1) in
  let subs, unsubs, pubs = Trace.stats t in
  Alcotest.(check bool) "some of each" true (subs > 5 && pubs > 30);
  Alcotest.(check bool) "unsubs bounded by subs" true (unsubs <= subs);
  (* Monotone times. *)
  let rec check_sorted = function
    | a :: (b :: _ as rest) ->
        let time = function
          | Trace.Subscribe { time; _ }
          | Trace.Unsubscribe { time; _ }
          | Trace.Publish { time; _ } ->
              time
        in
        Alcotest.(check bool) "sorted" true (time a <= time b);
        check_sorted rest
    | _ -> ()
  in
  check_sorted t

let test_determinism () =
  let a = Trace.generate ~params:small_params (Prng.of_int 2) in
  let b = Trace.generate ~params:small_params (Prng.of_int 2) in
  Alcotest.(check string) "same seed, same trace" (Trace.to_string a)
    (Trace.to_string b)

let test_round_trip () =
  let t = Trace.generate ~params:small_params (Prng.of_int 3) in
  match Trace.of_string (Trace.to_string t) with
  | Error e -> Alcotest.failf "round trip failed: %s" e
  | Ok t' ->
      Alcotest.(check string) "identical after reparse" (Trace.to_string t)
        (Trace.to_string t')

let test_file_round_trip () =
  let t = Trace.generate ~params:small_params (Prng.of_int 4) in
  let path = Filename.temp_file "probsub_trace" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save t ~path;
      match Trace.load ~path with
      | Ok t' ->
          Alcotest.(check string) "file round trip" (Trace.to_string t)
            (Trace.to_string t')
      | Error e -> Alcotest.failf "load failed: %s" e)

let test_parse_errors () =
  let is_error s =
    match Trace.of_string s with Error _ -> true | Ok _ -> false
  in
  List.iter
    (fun (label, text) ->
      Alcotest.(check bool) label true (is_error text))
    [
      ("unknown verb", "FOO 1.0 0 0");
      ("bad interval", "SUB 1.0 0 0 5:2");
      ("dangling ref", "UNSUB 1.0 0 3");
      ("out of order", "PUB 2.0 0 1 2 3\nPUB 1.0 0 1 2 3");
      ("inconsistent arity", "SUB 1.0 0 0 1:2 3:4\nPUB 2.0 0 7");
      ("empty publication", "PUB 1.0 0");
    ]

let test_replay_cross_policy () =
  (* The same trace replayed under flooding and pairwise must deliver
     the exact same notifications. *)
  let t = Trace.generate ~params:small_params (Prng.of_int 5) in
  let run policy =
    let net =
      Network.create ~policy ~topology:(Topology.ring 5) ~arity:3 ~seed:1 ()
    in
    Trace.replay net t;
    List.map
      (fun n -> (n.Network.broker, n.Network.client, n.Network.sub_key, n.Network.pub_id))
      (Network.notifications net)
    |> List.sort compare
  in
  let flood = run Subscription_store.No_coverage in
  let pairwise = run Subscription_store.Pairwise_policy in
  Alcotest.(check bool) "some deliveries happen" true (List.length flood > 0);
  Alcotest.(check (list (pair (pair int int) (pair int int))))
    "identical deliveries"
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) flood)
    (List.map (fun (a, b, c, d) -> ((a, b), (c, d))) pairwise)

let test_replay_arity_guard () =
  let t = Trace.generate ~params:small_params (Prng.of_int 6) in
  let net =
    Network.create ~topology:(Topology.chain 5) ~arity:7 ~seed:1 ()
  in
  Alcotest.(check bool) "arity mismatch raises" true
    (try
       Trace.replay net t;
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "generation shape" `Quick test_generate_shape;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "string round trip" `Quick test_round_trip;
    Alcotest.test_case "file round trip" `Quick test_file_round_trip;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "cross-policy replay" `Quick test_replay_cross_policy;
    Alcotest.test_case "replay arity guard" `Quick test_replay_arity_guard;
  ]

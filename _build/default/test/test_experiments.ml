(* Smoke and shape tests for the experiment harness: tiny scales, but
   asserting the qualitative properties the paper's figures show. *)

open Probsub_experiments

let scale = { Exp_common.runs = 4 }
let seed = 7

let series fig label =
  match
    List.find_opt (fun s -> s.Exp_common.label = label) fig.Exp_common.series
  with
  | Some s -> s.Exp_common.points
  | None ->
      Alcotest.failf "series %s missing from %s" label fig.Exp_common.id

let mean_y points = Exp_common.mean (List.map snd points)

let test_fig6_7 () =
  let f6, f7 = Fig_covering.run ~scale ~seed () in
  Alcotest.(check int) "fig6 has three series" 3
    (List.length f6.Exp_common.series);
  (* Reduction stays high. *)
  List.iter
    (fun s ->
      List.iter
        (fun (_, y) ->
          Alcotest.(check bool) "reduction in [0.3, 1]" true
            (y >= 0.3 && y <= 1.0))
        s.Exp_common.points)
    f6.Exp_common.series;
  (* MCS shrinks the theoretical d dramatically. *)
  let plain = mean_y (series f7 "m=10") in
  let mcs = mean_y (series f7 "m=10,MCS") in
  Alcotest.(check bool)
    (Printf.sprintf "log10 d: %.1f plain vs %.1f with MCS" plain mcs)
    true (mcs < plain -. 1.0)

let test_fig8_9_10 () =
  let f8, f9, f10 = Fig_noncover.run ~scale ~seed () in
  List.iter
    (fun s ->
      List.iter
        (fun (_, y) ->
          Alcotest.(check bool) "full reduction" true (y >= 0.95))
        s.Exp_common.points)
    f8.Exp_common.series;
  let d_plain = mean_y (series f9 "m=10") in
  let d_mcs = mean_y (series f9 "m=10,MCS") in
  Alcotest.(check bool) "theoretical d collapses" true (d_mcs <= 0.01);
  Alcotest.(check bool) "plain d is astronomical" true (d_plain > 5.0);
  let it_mcs = mean_y (series f10 "m=10,MCS") in
  let it_plain = mean_y (series f10 "m=10") in
  Alcotest.(check bool) "with MCS: zero iterations" true (it_mcs < 0.5);
  Alcotest.(check bool) "without MCS: a handful" true
    (it_plain >= 1.0 && it_plain < 20.0)

let test_fig11_12 () =
  let f11, f12 = Fig_extreme.run ~scale:{ Exp_common.runs = 10 } ~seed () in
  (* Iterations fall with the gap, roughly as 1/gap. *)
  let pts = series f11 "error=1e-06" in
  let first = List.assoc 0.5 pts and last = List.assoc 4.5 pts in
  Alcotest.(check bool)
    (Printf.sprintf "iterations fall: %.0f at 0.5%% vs %.0f at 4.5%%" first last)
    true
    (first > 2.0 *. last);
  Alcotest.(check bool) "magnitudes in the paper's band" true
    (first > 60.0 && first < 400.0 && last > 5.0 && last < 60.0);
  (* False decisions: none for the tightest error bound at coarse gaps. *)
  let strict = series f12 "error=1e-10" in
  let late = List.filter (fun (x, _) -> x >= 2.0) strict in
  Alcotest.(check bool) "delta=1e-10 makes no coarse-gap mistakes" true
    (List.for_all (fun (_, y) -> y = 0.0) late)

let test_fig13_14 () =
  let f13, f14 = Fig_comparison.run ~n:400 ~checkpoint_every:100 ~seed () in
  (* Group always at most pairwise. *)
  let pw = series f13 "m=10, pair-wise" and gr = series f13 "m=10, group" in
  List.iter2
    (fun (x, p) (x', g) ->
      Alcotest.(check (float 1e-9)) "aligned checkpoints" x x';
      Alcotest.(check bool) "group <= pairwise" true (g <= p))
    pw gr;
  (* Ratios below 1 by the end of the stream. *)
  let ratio = series f14 "m=10" in
  let _, final = List.nth ratio (List.length ratio - 1) in
  Alcotest.(check bool) "final ratio < 1" true (final < 1.0)

let test_chain () =
  let rows, fig = Exp_chain.run ~scale ~seed () in
  Alcotest.(check int) "one row per delta" (List.length Exp_chain.deltas)
    (List.length rows);
  Alcotest.(check int) "three series" 3 (List.length fig.Exp_common.series);
  (* The delivery probability grows as delta shrinks. *)
  let sorted = List.sort (fun a b -> compare b.Exp_chain.delta a.Exp_chain.delta) rows in
  let analytic = List.map (fun r -> r.Exp_chain.analytic) sorted in
  Alcotest.(check bool) "analytic monotone in -delta" true
    (List.sort compare analytic = analytic)

let test_ablation () =
  let rows = Exp_ablation.run ~scale ~seed () in
  Alcotest.(check int) "5 scenarios x 5 configs" 25 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s always correct" r.Exp_ablation.scenario
           (Exp_ablation.kind_label r.Exp_ablation.kind))
        true
        (r.Exp_ablation.correct = r.Exp_ablation.runs))
    rows;
  (* MCS slashes the iteration count on the covering scenario. *)
  let find kind =
    List.find
      (fun r ->
        r.Exp_ablation.scenario = "redundant-covering"
        && r.Exp_ablation.kind = kind)
      rows
  in
  Alcotest.(check bool) "MCS reduces iterations" true
    ((find Exp_ablation.Full).Exp_ablation.mean_iterations
    < (find Exp_ablation.No_mcs).Exp_ablation.mean_iterations /. 2.0)

let test_matching () =
  let rows = Exp_matching.run ~subs:300 ~pubs:100 ~seed () in
  Alcotest.(check int) "three policies" 3 (List.length rows);
  let get name = List.find (fun r -> r.Exp_matching.policy = name) rows in
  let flooding = get "flooding" and group = get "group" in
  Alcotest.(check int) "flooding keeps everything active" 300
    flooding.Exp_matching.active_size;
  Alcotest.(check bool) "group parks a share" true
    (group.Exp_matching.covered_size > 0);
  Alcotest.(check bool) "Algorithm 5 touches fewer subscriptions" true
    (group.Exp_matching.scans_per_pub < flooding.Exp_matching.scans_per_pub);
  Alcotest.(check int) "all policies deliver the same matches"
    flooding.Exp_matching.matched group.Exp_matching.matched

let test_traffic () =
  let rows = Exp_traffic.run ~subs:40 ~pubs:15 ~seed () in
  Alcotest.(check int) "6 topologies x 3 policies" 18 (List.length rows);
  (* Deterministic policies never lose; covering never increases
     subscription traffic relative to flooding on the same shape. *)
  List.iter
    (fun r ->
      if r.Exp_traffic.policy <> "group" then
        Alcotest.(check int)
          (r.Exp_traffic.topology ^ "/" ^ r.Exp_traffic.policy ^ " lossless")
          0 r.Exp_traffic.lost)
    rows;
  let find topo policy =
    List.find
      (fun r -> r.Exp_traffic.topology = topo && r.Exp_traffic.policy = policy)
      rows
  in
  List.iter
    (fun topo ->
      let flood = find topo "flooding" and group = find topo "group" in
      Alcotest.(check bool)
        (topo ^ ": group does not exceed flooding traffic")
        true
        (group.Exp_traffic.subscribe_msgs <= flood.Exp_traffic.subscribe_msgs))
    [ "chain-16"; "ring-16"; "star-16"; "tree-2x3"; "grid-4x4"; "random-16" ]

let test_merging_exp () =
  let rows = Exp_merging.run ~n:150 ~checkpoint_every:75 ~seed () in
  Alcotest.(check int) "two checkpoints" 2 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "pairwise <= raw" true
        (r.Exp_merging.pairwise <= r.Exp_merging.raw);
      Alcotest.(check bool) "group <= pairwise" true
        (r.Exp_merging.group <= r.Exp_merging.pairwise);
      Alcotest.(check bool) "perfect merge <= pairwise" true
        (r.Exp_merging.merged <= r.Exp_merging.pairwise))
    rows

let test_scaling () =
  let rows = Exp_scaling.run ~scale ~seed () in
  Alcotest.(check int) "2 scenarios x 3 m x 4 k" 24 (List.length rows);
  List.iter
    (fun r ->
      Alcotest.(check bool) "positive cost" true (r.Exp_scaling.mean_micros > 0.0);
      Alcotest.(check bool) "normalized cost sane (< 1 ms/unit)" true
        (r.Exp_scaling.normalized_ns < 1_000_000.0))
    rows

let test_print_figure () =
  let fig =
    {
      Exp_common.id = "t";
      title = "t";
      xlabel = "x";
      ylabel = "y";
      series =
        [
          { Exp_common.label = "a"; points = [ (1.0, 2.0); (2.0, Float.nan) ] };
          { Exp_common.label = "b"; points = [ (1.0, 3.0) ] };
        ];
    }
  in
  let out = Format.asprintf "%a" Exp_common.print fig in
  Alcotest.(check bool) "renders headers" true
    (String.length out > 0
    && String.index_opt out 'a' <> None
    && String.index_opt out 'b' <> None)

let suite =
  [
    Alcotest.test_case "figs 6-7 shapes" `Slow test_fig6_7;
    Alcotest.test_case "figs 8-10 shapes" `Slow test_fig8_9_10;
    Alcotest.test_case "figs 11-12 shapes" `Slow test_fig11_12;
    Alcotest.test_case "figs 13-14 shapes" `Slow test_fig13_14;
    Alcotest.test_case "prop 5 chain" `Slow test_chain;
    Alcotest.test_case "ablation" `Slow test_ablation;
    Alcotest.test_case "matching" `Slow test_matching;
    Alcotest.test_case "traffic" `Slow test_traffic;
    Alcotest.test_case "merging experiment" `Slow test_merging_exp;
    Alcotest.test_case "scaling" `Slow test_scaling;
    Alcotest.test_case "figure rendering" `Quick test_print_figure;
  ]

open Probsub_core
open Probsub_workload

let test_zipf_bounds () =
  let sample = Dist.zipf ~n:10 ~skew:2.0 in
  let rng = Prng.of_int 1 in
  for _ = 1 to 5_000 do
    let r = sample rng in
    Alcotest.(check bool) "rank in range" true (r >= 0 && r < 10)
  done;
  Alcotest.check_raises "n validated"
    (Invalid_argument "Dist.zipf: n must be positive") (fun () ->
      ignore (Dist.zipf ~n:0 ~skew:2.0 : Dist.sampler));
  Alcotest.check_raises "skew validated"
    (Invalid_argument "Dist.zipf: skew must be positive") (fun () ->
      ignore (Dist.zipf ~n:5 ~skew:0.0 : Dist.sampler))

let test_zipf_skew () =
  (* With skew 2.0, rank 0 carries 1/zeta-ish mass: P(0)/P(1) = 4. *)
  let sample = Dist.zipf ~n:20 ~skew:2.0 in
  let rng = Prng.of_int 2 in
  let counts = Array.make 20 0 in
  let draws = 100_000 in
  for _ = 1 to draws do
    let r = sample rng in
    counts.(r) <- counts.(r) + 1
  done;
  let ratio = float_of_int counts.(0) /. float_of_int counts.(1) in
  Alcotest.(check bool)
    (Printf.sprintf "P(0)/P(1) = %.2f near 4" ratio)
    true
    (ratio > 3.3 && ratio < 4.8);
  Alcotest.(check bool) "monotone head" true
    (counts.(0) > counts.(1) && counts.(1) > counts.(2))

let test_pareto () =
  let rng = Prng.of_int 3 in
  let above2 = ref 0 in
  let draws = 50_000 in
  for _ = 1 to draws do
    let v = Dist.pareto rng ~scale:1.0 ~shape:1.0 in
    Alcotest.(check bool) "at least scale" true (v >= 1.0);
    if v > 2.0 then incr above2
  done;
  (* P(X > 2) = 1/2 for shape 1. *)
  let p = float_of_int !above2 /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "tail mass %.3f near 0.5" p)
    true
    (Float.abs (p -. 0.5) < 0.02);
  Alcotest.check_raises "parameters validated"
    (Invalid_argument "Dist.pareto: parameters must be positive") (fun () ->
      ignore (Dist.pareto rng ~scale:0.0 ~shape:1.0))

let test_normal () =
  let rng = Prng.of_int 4 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let v = Dist.normal rng ~mean:10.0 ~stddev:3.0 in
    sum := !sum +. v;
    sumsq := !sumsq +. (v *. v)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  Alcotest.(check bool) "mean near 10" true (Float.abs (mean -. 10.0) < 0.1);
  Alcotest.(check bool) "stddev near 3" true
    (Float.abs (sqrt var -. 3.0) < 0.1)

let test_normal_int_clamps () =
  let rng = Prng.of_int 5 in
  for _ = 1 to 5_000 do
    let v = Dist.normal_int rng ~mean:5.0 ~stddev:20.0 ~min:0 ~max:10 in
    Alcotest.(check bool) "clamped" true (v >= 0 && v <= 10)
  done;
  Alcotest.check_raises "bounds validated"
    (Invalid_argument "Dist.normal_int: min > max") (fun () ->
      ignore (Dist.normal_int rng ~mean:0.0 ~stddev:1.0 ~min:5 ~max:4))

let test_exponential () =
  let rng = Prng.of_int 6 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let v = Dist.exponential rng ~rate:2.0 in
    Alcotest.(check bool) "non-negative" true (v >= 0.0);
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 1/rate" true (Float.abs (mean -. 0.5) < 0.02)

let test_bernoulli () =
  let rng = Prng.of_int 7 in
  let hits = ref 0 in
  for _ = 1 to 50_000 do
    if Dist.bernoulli rng ~p:0.3 then incr hits
  done;
  let p = float_of_int !hits /. 50_000.0 in
  Alcotest.(check bool) "rate near 0.3" true (Float.abs (p -. 0.3) < 0.02)

let test_pick_shuffle () =
  let rng = Prng.of_int 8 in
  let arr = [| 10; 20; 30 |] in
  for _ = 1 to 100 do
    Alcotest.(check bool) "pick from array" true
      (Array.mem (Dist.pick rng arr) arr)
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Dist.pick: empty array")
    (fun () -> ignore (Dist.pick rng [||]));
  let big = Array.init 100 (fun i -> i) in
  let copy = Array.copy big in
  Dist.shuffle rng copy;
  Array.sort Int.compare copy;
  Alcotest.(check bool) "shuffle is a permutation" true (copy = big)

let suite =
  [
    Alcotest.test_case "zipf bounds" `Quick test_zipf_bounds;
    Alcotest.test_case "zipf skew" `Slow test_zipf_skew;
    Alcotest.test_case "pareto tail" `Slow test_pareto;
    Alcotest.test_case "normal moments" `Slow test_normal;
    Alcotest.test_case "normal_int clamps" `Quick test_normal_int_clamps;
    Alcotest.test_case "exponential mean" `Slow test_exponential;
    Alcotest.test_case "bernoulli rate" `Quick test_bernoulli;
    Alcotest.test_case "pick and shuffle" `Quick test_pick_shuffle;
  ]

(* The paper's worked examples, transcribed literally:
   - Table 3 / Fig. 2: s ⊑ s1 ∨ s2 although neither covers s alone.
   - Table 5: the conflict table for that example.
   - Table 6 / Fig. 3: a non-cover with polyhedron witness x1 > 870.
   - Table 7/8 / Fig. 4: conflict-free entries make s3 redundant, MCS
     keeps exactly {s1, s2}. *)

open Probsub_core

let sub = Subscription.of_bounds

(* Table 3 *)
let s_t3 = sub [ (830, 870); (1003, 1006) ]
let s1_t3 = sub [ (820, 850); (1001, 1007) ]
let s2_t3 = sub [ (840, 880); (1002, 1009) ]

(* Table 6 *)
let s_t6 = sub [ (830, 890); (1003, 1006) ]
let s1_t6 = sub [ (820, 850); (1002, 1009) ]
let s2_t6 = sub [ (840, 870); (1001, 1007) ]

(* Table 7 — the paper's rendering of s3's x2 range is OCR-garbled
   ("[100, 10054]"); Table 8's conflict cells (x2 < 1004, x2 > 1005)
   pin it down to [1004, 1005]. *)
let s3_t7 = sub [ (810, 890); (1004, 1005) ]

let rng () = Prng.of_int 42

let check_covered () =
  let report = Engine.check ~rng:(rng ()) s_t3 [| s1_t3; s2_t3 |] in
  Alcotest.(check bool)
    "s is (probabilistically) covered by {s1, s2}" true
    (Engine.is_covered report.Engine.verdict);
  Alcotest.(check bool)
    "exact oracle agrees" true
    (Exact.covered s_t3 [| s1_t3; s2_t3 |])

let check_no_single_coverer () =
  Alcotest.(check bool) "s1 alone does not cover s" false
    (Subscription.covers_sub s1_t3 s_t3);
  Alcotest.(check bool) "s2 alone does not cover s" false
    (Subscription.covers_sub s2_t3 s_t3);
  Alcotest.(check (option int))
    "pairwise baseline finds no coverer" None
    (Pairwise.find_coverer s_t3 [| s1_t3; s2_t3 |])

(* Table 5: row s1 has exactly one defined cell, x1 > 850; row s2 has
   exactly one defined cell, x1 < 840. *)
let check_conflict_table () =
  let t = Conflict_table.build ~s:s_t3 [| s1_t3; s2_t3 |] in
  Alcotest.(check int) "t_1 = 1" 1 (Conflict_table.defined_count t ~row:0);
  Alcotest.(check int) "t_2 = 1" 1 (Conflict_table.defined_count t ~row:1);
  (match Conflict_table.cell t ~row:0 ~attr:0 ~side:Conflict_table.High with
  | Conflict_table.Defined { bound; _ } ->
      Alcotest.(check int) "s1's defined cell is x1 > 850" 850 bound
  | Conflict_table.Undefined -> Alcotest.fail "expected x1 > 850 defined");
  (match Conflict_table.cell t ~row:1 ~attr:0 ~side:Conflict_table.Low with
  | Conflict_table.Defined { bound; _ } ->
      Alcotest.(check int) "s2's defined cell is x1 < 840" 840 bound
  | Conflict_table.Undefined -> Alcotest.fail "expected x1 < 840 defined");
  List.iter
    (fun (row, attr, side, label) ->
      match Conflict_table.cell t ~row ~attr ~side with
      | Conflict_table.Undefined -> ()
      | Conflict_table.Defined _ -> Alcotest.failf "%s should be undefined" label)
    [
      (0, 0, Conflict_table.Low, "T_1 x1<low");
      (0, 1, Conflict_table.Low, "T_1 x2<low");
      (0, 1, Conflict_table.High, "T_1 x2>high");
      (1, 0, Conflict_table.High, "T_2 x1>high");
      (1, 1, Conflict_table.Low, "T_2 x2<low");
      (1, 1, Conflict_table.High, "T_2 x2>high");
    ];
  (* The two defined cells conflict: x1 < 840 and x1 > 850 cannot both
     hold inside s. *)
  Alcotest.(check bool) "x1<840 conflicts with x1>850" true
    (Conflict_table.cells_conflict t ~row1:0 ~attr1:0
       ~side1:Conflict_table.High ~row2:1 ~attr2:0 ~side2:Conflict_table.Low)

(* Table 6 / Fig. 3: the strip x1 ∈ [871, 890] of s is a polyhedron
   witness; the subsumption does not hold. *)
let check_non_cover () =
  let report = Engine.check ~rng:(rng ()) s_t6 [| s1_t6; s2_t6 |] in
  (match report.Engine.verdict with
  | Engine.Not_covered _ -> ()
  | Engine.Covered_pairwise _ | Engine.Covered_probably ->
      Alcotest.fail "expected non-cover");
  Alcotest.(check bool) "exact oracle agrees" false
    (Exact.covered s_t6 [| s1_t6; s2_t6 |]);
  match Exact.find_witness s_t6 [| s1_t6; s2_t6 |] with
  | None -> Alcotest.fail "oracle must produce a witness"
  | Some p ->
      Alcotest.(check bool) "witness point lies in the x1 > 870 strip" true
        (p.(0) > 870)

(* Table 8 / Fig. 4: s3's two defined cells (x2 < 1004, x2 > 1005) are
   conflict-free, so MCS removes s3 and keeps exactly {s1, s2}. *)
let check_mcs_example () =
  let t = Conflict_table.build ~s:s_t3 [| s1_t3; s2_t3; s3_t7 |] in
  Alcotest.(check int) "t_3 = 2" 2 (Conflict_table.defined_count t ~row:2);
  let alive = [| true; true; true |] in
  Alcotest.(check int) "fc_3 = 2" 2
    (Mcs.conflict_free_count t ~alive ~row:2);
  Alcotest.(check int) "fc_1 = 0" 0
    (Mcs.conflict_free_count t ~alive ~row:0);
  Alcotest.(check int) "fc_2 = 0" 0
    (Mcs.conflict_free_count t ~alive ~row:1);
  let result = Mcs.run t in
  Alcotest.(check (list int)) "MCS keeps {s1, s2}" [ 0; 1 ] result.Mcs.kept;
  Alcotest.(check (list int)) "MCS removes s3" [ 2 ] result.Mcs.removed

(* Bike-rental publications of Table 1: p1 matches s1, p2 matches s2
   (using the paper's attribute encoding; dates become epoch minutes). *)
let check_table1 () =
  let date y m d hh mm = ((((y * 12) + m) * 31 + d) * 24 + hh) * 60 + mm in
  let star = (Interval.lo Interval.full, Interval.hi Interval.full) in
  let s1 =
    sub
      [
        (1000, 1999); (19, 19); (1, 1) (* brand X = 1 *); (820, 840);
        (date 2006 3 31 16 0, date 2006 3 31 20 0);
      ]
  in
  let s2 =
    sub
      [
        (1, 1999); (17, 19); star; (10, 12);
        (date 2006 3 31 12 0, date 2006 3 31 14 0);
      ]
  in
  let p1 = Publication.of_list [ 1036; 19; 1; 825; date 2006 3 31 18 23 ] in
  let p2 = Publication.of_list [ 1035; 17; 2; 11; date 2006 3 31 12 23 ] in
  Alcotest.(check bool) "p1 matches s1" true (Publication.matches s1 p1);
  Alcotest.(check bool) "p2 matches s2" true (Publication.matches s2 p2);
  Alcotest.(check bool) "p1 does not match s2" false
    (Publication.matches s2 p1);
  Alcotest.(check bool) "p2 does not match s1" false
    (Publication.matches s1 p2)

let suite =
  [
    Alcotest.test_case "Table 3: group cover detected" `Quick check_covered;
    Alcotest.test_case "Table 3: no single coverer" `Quick
      check_no_single_coverer;
    Alcotest.test_case "Table 5: conflict table content" `Quick
      check_conflict_table;
    Alcotest.test_case "Table 6: non-cover detected" `Quick check_non_cover;
    Alcotest.test_case "Tables 7-8: MCS removes conflict-free row" `Quick
      check_mcs_example;
    Alcotest.test_case "Table 1: bike-rental matching" `Quick check_table1;
  ]

open Probsub_core

let sub = Subscription.of_bounds

let test_basic () =
  let t = Counting_matcher.create ~arity:2 () in
  Counting_matcher.add t ~id:1 (sub [ (0, 10); (0, 10) ]);
  Counting_matcher.add t ~id:2 (sub [ (5, 15); (0, 10) ]);
  Alcotest.(check int) "size" 2 (Counting_matcher.size t);
  Alcotest.(check (list int)) "both match" [ 1; 2 ]
    (Counting_matcher.match_point t [| 7; 3 |]);
  Alcotest.(check (list int)) "only first" [ 1 ]
    (Counting_matcher.match_point t [| 2; 3 |]);
  Alcotest.(check (list int)) "none" [] (Counting_matcher.match_point t [| 20; 3 |])

let test_unconstrained_attributes () =
  let t = Counting_matcher.create ~arity:3 () in
  (* Only attribute 1 constrained. *)
  Counting_matcher.add t ~id:7
    (Subscription.of_list [ Interval.full; Interval.make ~lo:5 ~hi:9; Interval.full ]);
  Alcotest.(check (list int)) "matches on the single constraint" [ 7 ]
    (Counting_matcher.match_point t [| 123456; 7; -99 |]);
  Alcotest.(check (list int)) "fails on the single constraint" []
    (Counting_matcher.match_point t [| 0; 10; 0 |]);
  (* Fully unconstrained subscription matches everything. *)
  Counting_matcher.add t ~id:8
    (Subscription.of_list [ Interval.full; Interval.full; Interval.full ]);
  Alcotest.(check (list int)) "catch-all matches" [ 7; 8 ]
    (Counting_matcher.match_point t [| 0; 6; 0 |])

let test_add_remove () =
  let t = Counting_matcher.create ~arity:1 () in
  Counting_matcher.add t ~id:1 (sub [ (0, 5) ]);
  Counting_matcher.add t ~id:2 (sub [ (3, 9) ]);
  Alcotest.(check (list int)) "both" [ 1; 2 ] (Counting_matcher.match_point t [| 4 |]);
  Counting_matcher.remove t ~id:1;
  Alcotest.(check (list int)) "one left" [ 2 ]
    (Counting_matcher.match_point t [| 4 |]);
  Alcotest.(check bool) "mem" true (Counting_matcher.mem t ~id:2);
  Alcotest.(check bool) "not mem" false (Counting_matcher.mem t ~id:1);
  Alcotest.check_raises "remove unknown" Not_found (fun () ->
      Counting_matcher.remove t ~id:1);
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Counting_matcher.add: duplicate id") (fun () ->
      Counting_matcher.add t ~id:2 (sub [ (0, 1) ]))

let test_box_publication () =
  let t = Counting_matcher.create ~arity:2 () in
  Counting_matcher.add t ~id:1 (sub [ (0, 10); (0, 10) ]);
  Counting_matcher.add t ~id:2 (sub [ (4, 6); (4, 6) ]);
  let inside = Publication.box (sub [ (1, 3); (1, 3) ]) in
  Alcotest.(check (list int)) "box needs containment" [ 1 ]
    (Counting_matcher.match_publication t inside);
  let straddling = Publication.box (sub [ (5, 12); (5, 6) ]) in
  Alcotest.(check (list int)) "straddling box matches nothing" []
    (Counting_matcher.match_publication t straddling)

let test_against_naive () =
  let rng = Prng.of_int 23 in
  let arity = 4 in
  let t = Counting_matcher.create ~arity () in
  let subs = Hashtbl.create 32 in
  let next = ref 0 in
  for round = 1 to 400 do
    (* Random mutation. *)
    if Prng.float rng < 0.7 || Hashtbl.length subs = 0 then begin
      let s =
        Subscription.of_list
          (List.init arity (fun _ ->
               if Prng.float rng < 0.3 then Interval.full
               else
                 let lo = Prng.int rng 100 in
                 Interval.make ~lo ~hi:(lo + Prng.int rng 40)))
      in
      incr next;
      Hashtbl.replace subs !next s;
      Counting_matcher.add t ~id:!next s
    end
    else begin
      let ids = Hashtbl.fold (fun id _ acc -> id :: acc) subs [] in
      let id = List.nth ids (Prng.int rng (List.length ids)) in
      Hashtbl.remove subs id;
      Counting_matcher.remove t ~id
    end;
    (* Random probe every few rounds. *)
    if round mod 3 = 0 then begin
      let p = Array.init arity (fun _ -> Prng.int rng 150) in
      let naive =
        Hashtbl.fold
          (fun id s acc ->
            if Subscription.covers_point s p then id :: acc else acc)
          subs []
        |> List.sort Int.compare
      in
      Alcotest.(check (list int)) "agrees with naive matching" naive
        (Counting_matcher.match_point t p)
    end
  done

let test_arity_checks () =
  let t = Counting_matcher.create ~arity:2 () in
  Alcotest.check_raises "add arity"
    (Invalid_argument "Counting_matcher.add: arity mismatch") (fun () ->
      Counting_matcher.add t ~id:1 (sub [ (0, 1) ]));
  Alcotest.check_raises "match arity"
    (Invalid_argument "Counting_matcher.match_point: arity mismatch")
    (fun () -> ignore (Counting_matcher.match_point t [| 1 |]));
  Alcotest.check_raises "create arity"
    (Invalid_argument "Counting_matcher.create: arity < 1") (fun () ->
      ignore (Counting_matcher.create ~arity:0 ()))

let suite =
  [
    Alcotest.test_case "basic counting" `Quick test_basic;
    Alcotest.test_case "unconstrained attributes" `Quick
      test_unconstrained_attributes;
    Alcotest.test_case "add/remove with lazy rebuild" `Quick test_add_remove;
    Alcotest.test_case "box publications" `Quick test_box_publication;
    Alcotest.test_case "randomized vs naive" `Quick test_against_naive;
    Alcotest.test_case "arity validation" `Quick test_arity_checks;
  ]

open Probsub_core
open Probsub_workload

let rng () = Prng.of_int 77

(* Every constructed instance must match its declared ground truth;
   the exact oracle verifies at small scale. *)
let check_truth inst =
  Alcotest.(check bool) "constructed truth holds" inst.Scenario.covered
    (Exact.covered inst.Scenario.s inst.Scenario.set)

let test_pairwise_covering () =
  let rng = rng () in
  for _ = 1 to 10 do
    let inst = Scenario.pairwise_covering rng ~m:3 ~k:6 in
    Alcotest.(check bool) "some single coverer exists" true
      (Option.is_some (Pairwise.find_coverer inst.Scenario.s inst.Scenario.set));
    check_truth inst
  done

let test_redundant_covering () =
  let rng = rng () in
  for _ = 1 to 10 do
    let inst = Scenario.redundant_covering rng ~m:3 ~k:10 in
    Alcotest.(check bool) "no single coverer" true
      (Option.is_none (Pairwise.find_coverer inst.Scenario.s inst.Scenario.set));
    check_truth inst;
    (* The declared core (non-redundant prefix) covers s by itself. *)
    let core =
      Array.of_list
        (List.filteri
           (fun i _ -> not inst.Scenario.redundant.(i))
           (Array.to_list inst.Scenario.set))
    in
    Alcotest.(check bool) "core alone covers" true
      (Exact.covered inst.Scenario.s core)
  done

let test_no_intersection () =
  let rng = rng () in
  for _ = 1 to 10 do
    let inst = Scenario.no_intersection rng ~m:4 ~k:12 in
    Array.iter
      (fun si ->
        Alcotest.(check bool) "disjoint from s" false
          (Subscription.intersects si inst.Scenario.s))
      inst.Scenario.set;
    Alcotest.(check bool) "not covered" false inst.Scenario.covered
  done

let test_non_cover () =
  let rng = rng () in
  for _ = 1 to 10 do
    let inst = Scenario.non_cover rng ~m:3 ~k:15 in
    check_truth inst;
    Array.iter
      (fun si ->
        Alcotest.(check bool) "every sub intersects s" true
          (Subscription.intersects si inst.Scenario.s))
      inst.Scenario.set
  done

let test_extreme_non_cover () =
  let rng = Prng.of_int 78 in
  List.iter
    (fun gap ->
      let inst = Scenario.extreme_non_cover rng ~m:3 ~k:12 ~gap_fraction:gap in
      Alcotest.(check bool) "never covered" false inst.Scenario.covered;
      Alcotest.(check bool) "oracle agrees" false
        (Exact.covered inst.Scenario.s inst.Scenario.set);
      (* The uncovered region is (approximately) the declared gap: the
         witness fraction from dense sampling must be close. *)
      let s = inst.Scenario.s in
      let samples = 20_000 in
      let witnesses = ref 0 in
      for _ = 1 to samples do
        let p = Rspc.random_point ~rng s in
        if Rspc.escapes p inst.Scenario.set then incr witnesses
      done;
      let measured = float_of_int !witnesses /. float_of_int samples in
      Alcotest.(check bool)
        (Printf.sprintf "witness fraction %.4f near gap %.4f" measured gap)
        true
        (* The gap rounds to whole integers of a 500-wide range, so
           allow generous tolerance at the narrow end. *)
        (Float.abs (measured -. gap) < (0.3 *. gap) +. 0.002))
    [ 0.005; 0.02; 0.045 ];
  Alcotest.check_raises "gap validated"
    (Invalid_argument "Scenario.extreme_non_cover: gap_fraction outside (0, 0.5)")
    (fun () ->
      ignore (Scenario.extreme_non_cover rng ~m:3 ~k:12 ~gap_fraction:0.9))

let test_comparison_stream () =
  let rng = rng () in
  let subs = Scenario.comparison_stream rng ~m:10 ~n:200 in
  Alcotest.(check int) "stream length" 200 (List.length subs);
  List.iter
    (fun s ->
      Alcotest.(check int) "arity" 10 (Subscription.arity s);
      let constrained = Subscription.constrained s in
      Alcotest.(check bool) "at least one constraint" true
        (List.length constrained >= 1);
      List.iter
        (fun j ->
          let r = Subscription.range s j in
          Alcotest.(check bool) "in domain" true
            (Interval.lo r >= 0
            && Interval.hi r < Scenario.domain_width))
        constrained)
    subs;
  (* Zipf popularity: attribute 0 must be constrained far more often
     than attribute 9. *)
  let count attr =
    List.length
      (List.filter (fun s -> List.mem attr (Subscription.constrained s)) subs)
  in
  Alcotest.(check bool) "popular attribute dominates" true
    (count 0 > 3 * max 1 (count 9))

let test_determinism () =
  let a = Scenario.non_cover (Prng.of_int 5) ~m:3 ~k:10 in
  let b = Scenario.non_cover (Prng.of_int 5) ~m:3 ~k:10 in
  Alcotest.(check bool) "same seed, same instance" true
    (Array.for_all2 Subscription.equal a.Scenario.set b.Scenario.set)

let test_matching_publication () =
  let rng = rng () in
  let s = Subscription.of_bounds [ (10, 20); (30, 40) ] in
  for _ = 1 to 200 do
    let p = Scenario.random_matching_publication rng s in
    Alcotest.(check bool) "publication matches" true (Publication.matches s p)
  done

let test_parameter_validation () =
  Alcotest.check_raises "k too small for redundant covering"
    (Invalid_argument "Scenario.redundant_covering: k = 3 < 5") (fun () ->
      ignore (Scenario.redundant_covering (rng ()) ~m:3 ~k:3));
  Alcotest.check_raises "m validated"
    (Invalid_argument "Scenario.non_cover: m < 1") (fun () ->
      ignore (Scenario.non_cover (rng ()) ~m:0 ~k:10))

let suite =
  [
    Alcotest.test_case "1.a pairwise covering" `Quick test_pairwise_covering;
    Alcotest.test_case "1.b redundant covering" `Quick test_redundant_covering;
    Alcotest.test_case "2.a no intersection" `Quick test_no_intersection;
    Alcotest.test_case "2.b non-cover" `Quick test_non_cover;
    Alcotest.test_case "2.c extreme non-cover" `Slow test_extreme_non_cover;
    Alcotest.test_case "comparison stream" `Quick test_comparison_stream;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "matching publications" `Quick test_matching_publication;
    Alcotest.test_case "parameter validation" `Quick test_parameter_validation;
  ]

open Probsub_core

let sub = Subscription.of_bounds
let iv lo hi = Interval.make ~lo ~hi

let test_constructors () =
  let s = sub [ (0, 10); (5, 5) ] in
  Alcotest.(check int) "arity" 2 (Subscription.arity s);
  Alcotest.(check bool) "range 0" true
    (Interval.equal (Subscription.range s 0) (iv 0 10));
  Alcotest.(check bool) "range 1" true
    (Interval.equal (Subscription.range s 1) (iv 5 5));
  Alcotest.check_raises "empty rejected"
    (Invalid_argument "Subscription.make: empty attribute list") (fun () ->
      ignore (Subscription.make [||]));
  Alcotest.check_raises "out-of-range attribute"
    (Invalid_argument "Subscription.range: attribute 2") (fun () ->
      ignore (Subscription.range s 2))

let test_make_copies () =
  let ranges = [| iv 0 1; iv 2 3 |] in
  let s = Subscription.make ranges in
  ranges.(0) <- iv 100 200;
  Alcotest.(check bool) "constructor copied its input" true
    (Interval.equal (Subscription.range s 0) (iv 0 1));
  let out = Subscription.ranges s in
  out.(1) <- iv 7 8;
  Alcotest.(check bool) "accessor copies too" true
    (Interval.equal (Subscription.range s 1) (iv 2 3))

let test_constrained () =
  let s = Subscription.of_list [ Interval.full; iv 0 5; Interval.full ] in
  Alcotest.(check (list int)) "only attr 1 constrained" [ 1 ]
    (Subscription.constrained s)

let test_covers_point () =
  let s = sub [ (0, 10); (20, 30) ] in
  Alcotest.(check bool) "inside" true (Subscription.covers_point s [| 5; 25 |]);
  Alcotest.(check bool) "corner" true (Subscription.covers_point s [| 0; 30 |]);
  Alcotest.(check bool) "outside one axis" false
    (Subscription.covers_point s [| 11; 25 |]);
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Subscription.covers_point: arity 2 vs 3") (fun () ->
      ignore (Subscription.covers_point s [| 1; 2; 3 |]))

let test_covers_sub () =
  let outer = sub [ (0, 10); (0, 10) ] in
  let inner = sub [ (2, 8); (0, 10) ] in
  Alcotest.(check bool) "inner covered" true
    (Subscription.covers_sub outer inner);
  Alcotest.(check bool) "outer not covered" false
    (Subscription.covers_sub inner outer);
  Alcotest.(check bool) "reflexive" true (Subscription.covers_sub outer outer)

let test_intersects_inter () =
  let a = sub [ (0, 5); (0, 5) ] and b = sub [ (5, 9); (3, 9) ] in
  Alcotest.(check bool) "boxes intersect" true (Subscription.intersects a b);
  (match Subscription.inter a b with
  | Some i ->
      Alcotest.(check bool) "intersection box" true
        (Subscription.equal i (sub [ (5, 5); (3, 5) ]))
  | None -> Alcotest.fail "expected intersection");
  let c = sub [ (6, 9); (0, 5) ] in
  Alcotest.(check bool) "disjoint on x" false (Subscription.intersects a c);
  Alcotest.(check bool) "inter empty" true
    (Option.is_none (Subscription.inter a c))

let test_hull () =
  let a = sub [ (0, 1); (0, 1) ] and b = sub [ (5, 6); (2, 3) ] in
  Alcotest.(check bool) "hull spans both" true
    (Subscription.equal (Subscription.hull a b) (sub [ (0, 6); (0, 3) ]))

let test_sizes () =
  let s = sub [ (1, 10); (1, 100) ] in
  Alcotest.(check (float 1e-9)) "log10 size" 3.0 (Subscription.log10_size s);
  Alcotest.(check (float 1e-6)) "size" 1000.0 (Subscription.size s);
  (* A 20-attribute subscription overflows ints but not log-space. *)
  let big = Subscription.of_list (List.init 20 (fun _ -> iv 1 1_000_000)) in
  Alcotest.(check (float 1e-6)) "log-space survives" 120.0
    (Subscription.log10_size big)

let test_equal_compare () =
  let a = sub [ (0, 1); (2, 3) ] in
  let b = sub [ (0, 1); (2, 3) ] in
  let c = sub [ (0, 1); (2, 4) ] in
  Alcotest.(check bool) "structural equality" true (Subscription.equal a b);
  Alcotest.(check bool) "inequality" false (Subscription.equal a c);
  Alcotest.(check int) "compare equal" 0 (Subscription.compare a b);
  Alcotest.(check bool) "compare orders" true (Subscription.compare a c < 0)

let test_pp () =
  let s = sub [ (0, 1) ] in
  Alcotest.(check string) "render" "{[0, 1]}" (Subscription.to_string s)

let suite =
  [
    Alcotest.test_case "constructors and accessors" `Quick test_constructors;
    Alcotest.test_case "defensive copies" `Quick test_make_copies;
    Alcotest.test_case "constrained attributes" `Quick test_constrained;
    Alcotest.test_case "point coverage" `Quick test_covers_point;
    Alcotest.test_case "pairwise coverage" `Quick test_covers_sub;
    Alcotest.test_case "intersection" `Quick test_intersects_inter;
    Alcotest.test_case "hull" `Quick test_hull;
    Alcotest.test_case "sizes in log space" `Quick test_sizes;
    Alcotest.test_case "equality and ordering" `Quick test_equal_compare;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]

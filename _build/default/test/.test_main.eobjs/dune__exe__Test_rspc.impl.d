test/test_rspc.ml: Alcotest Float Printf Prng Probsub_core Rho Rspc Subscription

test/test_topology.ml: Alcotest List Probsub_broker Probsub_core Topology

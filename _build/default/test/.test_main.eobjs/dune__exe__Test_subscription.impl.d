test/test_subscription.ml: Alcotest Array Interval List Option Probsub_core Subscription

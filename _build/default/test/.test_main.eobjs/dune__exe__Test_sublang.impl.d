test/test_sublang.ml: Alcotest Char Domain_codec Interval List Printf Prng Probsub_core Publication Result String Sublang Subscription

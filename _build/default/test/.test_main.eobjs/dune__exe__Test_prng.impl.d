test/test_prng.ml: Alcotest Array Float Interval Prng Probsub_core

test/test_paper_examples.ml: Alcotest Array Conflict_table Engine Exact Interval List Mcs Pairwise Prng Probsub_core Publication Subscription

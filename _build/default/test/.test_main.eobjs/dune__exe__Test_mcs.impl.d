test/test_mcs.ml: Alcotest Array Conflict_table Exact Interval List Mcs Prng Probsub_core Subscription

test/test_rho.ml: Alcotest Array Conflict_table List Printf Probsub_core Rho Subscription

test/test_trace.ml: Alcotest Filename Fun List Network Prng Probsub_broker Probsub_core Subscription_store Sys Topology Trace

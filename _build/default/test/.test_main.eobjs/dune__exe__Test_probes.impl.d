test/test_probes.ml: Alcotest Array Conflict_table Engine Exact Interval List Option Prng Probes Probsub_core Probsub_workload Subscription Witness

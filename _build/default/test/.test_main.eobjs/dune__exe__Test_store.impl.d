test/test_store.ml: Alcotest Engine List Printf Prng Probsub_core Publication Subscription Subscription_store

test/test_conflict_table.ml: Alcotest Array Conflict_table Interval List Option Probsub_core Subscription

test/test_poset.ml: Alcotest Hashtbl Int List Poset Prng Probsub_core Subscription

test/test_interval_index.ml: Alcotest Int Interval Interval_index List Prng Probsub_core

test/test_interval.ml: Alcotest Interval Option Probsub_core

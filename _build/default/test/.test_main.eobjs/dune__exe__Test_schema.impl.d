test/test_schema.ml: Alcotest Interval Prng Probsub_core Probsub_workload Schema Subscription

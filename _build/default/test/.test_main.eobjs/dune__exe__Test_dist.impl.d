test/test_dist.ml: Alcotest Array Dist Float Int Printf Prng Probsub_core Probsub_workload

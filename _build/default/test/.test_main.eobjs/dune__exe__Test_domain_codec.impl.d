test/test_domain_codec.ml: Alcotest Domain_codec Format Interval List Probsub_core Publication Subscription

test/test_advertisements.ml: Alcotest Broker_node List Metrics Network Printf Prng Probsub_broker Probsub_core Publication Subscription Subscription_store Topology

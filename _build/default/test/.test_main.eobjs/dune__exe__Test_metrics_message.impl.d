test/test_metrics_message.ml: Alcotest Format List Message Metrics Network Probsub_broker Probsub_core Publication String Subscription Topology

test/test_pairwise.ml: Alcotest Exact Pairwise Probsub_core Subscription

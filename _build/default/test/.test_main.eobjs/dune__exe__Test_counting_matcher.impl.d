test/test_counting_matcher.ml: Alcotest Array Counting_matcher Hashtbl Int Interval List Prng Probsub_core Publication Subscription

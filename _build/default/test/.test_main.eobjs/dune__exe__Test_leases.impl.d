test/test_leases.ml: Alcotest Engine Float Int List Probsub_core Publication Subscription Subscription_store

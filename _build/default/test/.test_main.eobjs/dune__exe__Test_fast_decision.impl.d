test/test_fast_decision.ml: Alcotest Array Conflict_table Fast_decision Probsub_core Subscription Witness

test/test_witness.ml: Alcotest Array Conflict_table Option Probsub_core Subscription Witness

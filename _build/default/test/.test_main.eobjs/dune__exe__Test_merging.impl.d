test/test_merging.ml: Alcotest List Merging Option Probsub_core Subscription

test/test_engine.ml: Alcotest Array Engine Exact Interval List Prng Probsub_core Publication Subscription Witness

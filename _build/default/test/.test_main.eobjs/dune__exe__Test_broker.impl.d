test/test_broker.ml: Alcotest Broker_node Chain_model Float List Metrics Network Printf Prng Probsub_broker Probsub_core Publication Subscription Subscription_store Topology

test/test_rspc_parallel.ml: Alcotest List Printf Prng Probsub_core Rspc Rspc_parallel Subscription

test/test_exact.ml: Alcotest Array Exact Interval List Option Prng Probsub_core Rspc Subscription

test/test_scenario.ml: Alcotest Array Exact Float Interval List Option Pairwise Printf Prng Probsub_core Probsub_workload Publication Rspc Scenario Subscription

test/test_publication.ml: Alcotest Array Probsub_core Publication Subscription

test/test_event_queue.ml: Alcotest Event_queue Float List Option Probsub_broker Probsub_core

open Probsub_broker

let test_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "c";
  Event_queue.push q ~time:1.0 "a";
  Event_queue.push q ~time:2.0 "b";
  let order = ref [] in
  Event_queue.drain q ~f:(fun ~time:_ e -> order := e :: !order);
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    (List.rev !order)

let test_fifo_ties () =
  let q = Event_queue.create () in
  for i = 1 to 100 do
    Event_queue.push q ~time:5.0 i
  done;
  let out = ref [] in
  Event_queue.drain q ~f:(fun ~time:_ e -> out := e :: !out);
  Alcotest.(check (list int)) "ties in insertion order"
    (List.init 100 (fun i -> i + 1))
    (List.rev !out)

let test_peek_size () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Alcotest.(check (option (float 0.0))) "no peek" None (Event_queue.peek_time q);
  Event_queue.push q ~time:2.5 ();
  Event_queue.push q ~time:1.5 ();
  Alcotest.(check int) "size" 2 (Event_queue.size q);
  Alcotest.(check (option (float 1e-9))) "peek min" (Some 1.5)
    (Event_queue.peek_time q);
  ignore (Event_queue.pop q);
  Alcotest.(check int) "size after pop" 1 (Event_queue.size q)

let test_pop_empty () =
  let q : unit Event_queue.t = Event_queue.create () in
  Alcotest.(check bool) "pop empty" true (Option.is_none (Event_queue.pop q))

let test_validation () =
  let q = Event_queue.create () in
  Alcotest.check_raises "negative time"
    (Invalid_argument "Event_queue.push: bad time") (fun () ->
      Event_queue.push q ~time:(-1.0) ());
  Alcotest.check_raises "nan time"
    (Invalid_argument "Event_queue.push: bad time") (fun () ->
      Event_queue.push q ~time:Float.nan ())

let test_drain_reentrant () =
  (* Events pushed during the drain are processed too, in order. *)
  let q = Event_queue.create () in
  Event_queue.push q ~time:1.0 1;
  let seen = ref [] in
  Event_queue.drain q ~f:(fun ~time e ->
      seen := e :: !seen;
      if e < 4 then Event_queue.push q ~time:(time +. 1.0) (e + 1));
  Alcotest.(check (list int)) "cascade processed" [ 1; 2; 3; 4 ]
    (List.rev !seen)

let test_heap_stress () =
  (* Random pushes/pops preserve the heap order invariant. *)
  let rng = Probsub_core.Prng.of_int 9 in
  let q = Event_queue.create () in
  let last = ref neg_infinity in
  for _ = 1 to 10_000 do
    if Probsub_core.Prng.float rng < 0.6 || Event_queue.is_empty q then
      Event_queue.push q
        ~time:(Probsub_core.Prng.float rng *. 100.0)
        ()
    else
      match Event_queue.pop q with
      | Some (t, ()) ->
          (* Monotone only between consecutive pops without pushes in
             between; instead check against peek. *)
          ignore t
      | None -> ()
  done;
  (* Final drain must be sorted. *)
  last := neg_infinity;
  Event_queue.drain q ~f:(fun ~time () ->
      Alcotest.(check bool) "drain sorted" true (time >= !last);
      last := time)

let suite =
  [
    Alcotest.test_case "time ordering" `Quick test_ordering;
    Alcotest.test_case "FIFO ties" `Quick test_fifo_ties;
    Alcotest.test_case "peek and size" `Quick test_peek_size;
    Alcotest.test_case "pop empty" `Quick test_pop_empty;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "re-entrant drain" `Quick test_drain_reentrant;
    Alcotest.test_case "heap stress" `Quick test_heap_stress;
  ]

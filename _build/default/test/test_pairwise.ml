open Probsub_core

let sub = Subscription.of_bounds

let test_find_coverer () =
  let s = sub [ (2, 5); (2, 5) ] in
  Alcotest.(check (option int)) "found" (Some 1)
    (Pairwise.find_coverer s [| sub [ (9, 9); (9, 9) ]; sub [ (0, 9); (0, 9) ] |]);
  Alcotest.(check (option int)) "not found" None
    (Pairwise.find_coverer s [| sub [ (0, 3); (0, 9) ]; sub [ (4, 9); (0, 9) ] |]);
  Alcotest.(check (option int)) "empty set" None (Pairwise.find_coverer s [||]);
  (* Exact equality counts as covering. *)
  Alcotest.(check (option int)) "self cover" (Some 0)
    (Pairwise.find_coverer s [| s |])

let test_coverers_all () =
  let s = sub [ (2, 5) ] in
  Alcotest.(check (list int)) "all of them" [ 0; 2 ]
    (Pairwise.coverers s [| sub [ (0, 9) ]; sub [ (3, 9) ]; sub [ (2, 5) ] |])

let test_covered_by_new () =
  let s = sub [ (0, 9) ] in
  Alcotest.(check (list int)) "reverse direction" [ 1 ]
    (Pairwise.covered_by_new s [| sub [ (0, 10) ]; sub [ (2, 3) ] |])

let test_group_blindness () =
  (* The defining limitation: pairwise cannot see union coverage. *)
  let s = sub [ (830, 870); (1003, 1006) ] in
  let set =
    [| sub [ (820, 850); (1001, 1007) ]; sub [ (840, 880); (1002, 1009) ] |]
  in
  Alcotest.(check (option int)) "pairwise blind" None
    (Pairwise.find_coverer s set);
  Alcotest.(check bool) "but the union covers" true (Exact.covered s set)

let suite =
  [
    Alcotest.test_case "find coverer" `Quick test_find_coverer;
    Alcotest.test_case "all coverers" `Quick test_coverers_all;
    Alcotest.test_case "reverse pruning" `Quick test_covered_by_new;
    Alcotest.test_case "group blindness" `Quick test_group_blindness;
  ]

open Probsub_core
open Probsub_broker

let sub = Subscription.of_bounds

let make_net ?(policy = Subscription_store.Pairwise_policy) topology =
  Network.create ~policy ~topology ~arity:2 ~seed:11 ()

let test_flood_reaches_everyone () =
  let net = make_net (Topology.chain 5) in
  let key = Network.subscribe net ~broker:0 ~client:1 (sub [ (0, 9); (0, 9) ]) in
  Network.run net;
  for b = 0 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "broker %d knows the subscription" b)
      true
      (Broker_node.knows_subscription (Network.broker net b) ~key)
  done;
  (* A tree topology floods each subscription over each link exactly
     once: 4 messages on a 5-chain. *)
  Alcotest.(check int) "subscribe messages" 4
    (Network.metrics net).Metrics.subscribe_msgs

let test_delivery_end_to_end () =
  let net = make_net (Topology.chain 4) in
  let key = Network.subscribe net ~broker:0 ~client:7 (sub [ (0, 9); (0, 9) ]) in
  Network.run net;
  ignore (Network.publish net ~broker:3 (Publication.of_list [ 5; 5 ]));
  Network.run net;
  (match Network.notifications net with
  | [ n ] ->
      Alcotest.(check int) "delivered at subscriber's broker" 0 n.Network.broker;
      Alcotest.(check int) "to the right client" 7 n.Network.client;
      Alcotest.(check int) "for the right subscription" key n.Network.sub_key;
      (* The flood itself took 3 time units, the publication 3 more. *)
      Alcotest.(check (float 1e-9)) "3 hops after the flood" 6.0
        n.Network.time
  | l -> Alcotest.failf "expected 1 notification, got %d" (List.length l));
  (* Publication forwarded along the reverse path only: 3 hops. *)
  Alcotest.(check int) "publish messages" 3
    (Network.metrics net).Metrics.publish_msgs

let test_no_match_no_forward () =
  let net = make_net (Topology.chain 4) in
  ignore (Network.subscribe net ~broker:0 ~client:1 (sub [ (0, 9); (0, 9) ]));
  Network.run net;
  ignore (Network.publish net ~broker:3 (Publication.of_list [ 50; 50 ]));
  Network.run net;
  Alcotest.(check int) "nothing forwarded" 0
    (Network.metrics net).Metrics.publish_msgs;
  Alcotest.(check (list (pair (pair int int) int))) "nobody notified" []
    (List.map
       (fun n -> ((n.Network.broker, n.Network.client), n.Network.pub_id))
       (Network.notifications net))

let test_covering_suppression_fig1 () =
  (* The paper's walk-through: B4 withholds s2 from B5 and B7, but
     forwards it to B3. *)
  let net = make_net Topology.fig1 in
  let s1 = sub [ (0, 100); (0, 100) ] in
  let s2 = sub [ (20, 40); (20, 40) ] in
  ignore (Network.subscribe net ~broker:0 ~client:1 s1);
  Network.run net;
  let base = (Network.metrics net).Metrics.subscribe_msgs in
  Alcotest.(check int) "s1 floods all 8 links" 8 base;
  ignore (Network.subscribe net ~broker:5 ~client:2 s2);
  Network.run net;
  let b4 = Network.broker net 3 in
  Alcotest.(check int) "B4->B5 suppressed" 1
    (Broker_node.suppressed_towards b4 ~neighbor:4);
  Alcotest.(check int) "B4->B7 suppressed" 1
    (Broker_node.suppressed_towards b4 ~neighbor:6);
  (* Towards B3 only s2 was ever offered (s1 *came from* B3), and it
     was sent. *)
  Alcotest.(check int) "B4->B3 forwarded" 1
    (Broker_node.active_towards b4 ~neighbor:2);
  (* s2's flood stops where s1 already went: B6->B4, B4->B3, B3->B1
     (B3->B2 is covered too... s1 went to B2 from B3, so suppressed). *)
  let s2_msgs = (Network.metrics net).Metrics.subscribe_msgs - base in
  Alcotest.(check int) "s2 needs only 3 messages" 3 s2_msgs

let test_fig1_deliveries () =
  let net = make_net Topology.fig1 in
  let s1 = sub [ (0, 100); (0, 100) ] in
  let s2 = sub [ (20, 40); (20, 40) ] in
  ignore (Network.subscribe net ~broker:0 ~client:1 s1);
  ignore (Network.subscribe net ~broker:5 ~client:2 s2);
  Network.run net;
  (* n1 matches both; published by P1 at B9. *)
  ignore (Network.publish net ~broker:8 (Publication.of_list [ 30; 30 ]));
  Network.run net;
  let recipients pub_id =
    List.sort compare
      (List.filter_map
         (fun n ->
           if n.Network.pub_id = pub_id then
             Some (n.Network.broker, n.Network.client)
           else None)
         (Network.notifications net))
  in
  Alcotest.(check (list (pair int int))) "n1 reaches S1 and S2"
    [ (0, 1); (5, 2) ] (recipients 0);
  (* n2 matches s1 only; published by P2 at B5. *)
  ignore (Network.publish net ~broker:4 (Publication.of_list [ 80; 80 ]));
  Network.run net;
  Alcotest.(check (list (pair int int))) "n2 reaches S1 only" [ (0, 1) ]
    (recipients 1)

let test_cycle_duplicate_suppression () =
  let net = make_net (Topology.ring 6) in
  ignore (Network.subscribe net ~broker:0 ~client:1 (sub [ (0, 9); (0, 9) ]));
  Network.run net;
  (* The flood goes both ways around the ring and meets; duplicates are
     dropped, not re-forwarded forever. *)
  Alcotest.(check bool) "flood terminates with some duplicates" true
    ((Network.metrics net).Metrics.duplicate_drops >= 1);
  ignore (Network.publish net ~broker:3 (Publication.of_list [ 1; 1 ]));
  Network.run net;
  let notes = Network.notifications net in
  Alcotest.(check int) "delivered exactly once" 1 (List.length notes)

let test_unsubscribe_promotion () =
  let net = make_net (Topology.chain 3) in
  let big = Network.subscribe net ~broker:0 ~client:1 (sub [ (0, 100); (0, 100) ]) in
  Network.run net;
  let small = Network.subscribe net ~broker:0 ~client:2 (sub [ (10, 20); (10, 20) ]) in
  Network.run net;
  (* The small one was covered: only the big one crossed the links. *)
  let b0 = Network.broker net 0 in
  Alcotest.(check int) "one active towards neighbour" 1
    (Broker_node.active_towards b0 ~neighbor:1);
  Alcotest.(check int) "one suppressed" 1
    (Broker_node.suppressed_towards b0 ~neighbor:1);
  (* Unsubscribe the coverer: the small subscription must be promoted
     and (re)sent so remote publications still reach client 2. *)
  Network.unsubscribe net ~broker:0 ~key:big;
  Network.run net;
  Alcotest.(check int) "small one promoted and sent" 1
    (Broker_node.active_towards b0 ~neighbor:1);
  ignore (Network.publish net ~broker:2 (Publication.of_list [ 15; 15 ]));
  Network.run net;
  (match Network.notifications net with
  | [ n ] ->
      Alcotest.(check int) "promoted subscription delivers" 2 n.Network.client;
      Alcotest.(check int) "under its key" small n.Network.sub_key
  | l -> Alcotest.failf "expected 1 notification, got %d" (List.length l));
  (* And the old subscription no longer exists anywhere. *)
  Alcotest.(check bool) "big one forgotten" false
    (Broker_node.knows_subscription (Network.broker net 2) ~key:big)

let test_unsubscribe_validation () =
  let net = make_net (Topology.chain 2) in
  let key = Network.subscribe net ~broker:0 ~client:1 (sub [ (0, 9); (0, 9) ]) in
  Network.run net;
  Alcotest.check_raises "wrong broker"
    (Invalid_argument "Network.unsubscribe: key issued at another broker")
    (fun () -> Network.unsubscribe net ~broker:1 ~key);
  Alcotest.check_raises "unknown key"
    (Invalid_argument "Network.unsubscribe: unknown key") (fun () ->
      Network.unsubscribe net ~broker:0 ~key:999)

let test_no_loss_without_group_policy () =
  (* Randomized: under flooding and pairwise policies, every expected
     recipient is notified — coverage must be lossless. *)
  List.iter
    (fun policy ->
      let rng = Prng.of_int 21 in
      let topo = Topology.random_connected rng ~n:12 ~extra_edges:4 in
      let net = make_net ~policy topo in
      for i = 1 to 60 do
        let lo1 = Prng.int rng 50 and lo2 = Prng.int rng 50 in
        ignore
          (Network.subscribe net ~broker:(i mod 12) ~client:i
             (sub
                [
                  (lo1, lo1 + 5 + Prng.int rng 30);
                  (lo2, lo2 + 5 + Prng.int rng 30);
                ]))
      done;
      Network.run net;
      for _ = 1 to 40 do
        let p = Publication.of_list [ Prng.int rng 90; Prng.int rng 90 ] in
        let expected =
          List.sort compare
            (List.map
               (fun (b, c, k) -> (b, c, k))
               (Network.expected_recipients net p))
        in
        let before = Network.notifications net in
        ignore (Network.publish net ~broker:(Prng.int rng 12) p);
        Network.run net;
        let after = Network.notifications net in
        let fresh =
          List.filteri (fun i _ -> i >= List.length before) after
          |> List.map (fun n ->
                 (n.Network.broker, n.Network.client, n.Network.sub_key))
          |> List.sort compare
        in
        Alcotest.(check (list (triple int int int))) "lossless delivery"
          expected fresh
      done)
    [ Subscription_store.No_coverage; Subscription_store.Pairwise_policy ]

let test_chain_model_analytic () =
  (* Eq. 2 sanity: error 0 gives the no-loss ceiling; error 1 gives
     just the local term rho; monotone in delta. *)
  let ceiling = Chain_model.analytic ~n:10 ~rho:0.1 ~per_check_error:0.0 in
  Alcotest.(check (float 1e-9)) "ceiling = 1-(1-rho)^n"
    (1.0 -. (0.9 ** 10.0))
    ceiling;
  Alcotest.(check (float 1e-9)) "total error leaves only the local term" 0.1
    (Chain_model.analytic ~n:10 ~rho:0.1 ~per_check_error:1.0);
  Alcotest.(check bool) "monotone" true
    (Chain_model.analytic ~n:10 ~rho:0.1 ~per_check_error:0.01
    > Chain_model.analytic ~n:10 ~rho:0.1 ~per_check_error:0.5);
  Alcotest.check_raises "rho validated"
    (Invalid_argument "Chain_model.analytic: rho outside [0, 1]") (fun () ->
      ignore (Chain_model.analytic ~n:5 ~rho:1.5 ~per_check_error:0.0))

let test_chain_model_simulation () =
  let rng = Prng.of_int 5 in
  let r =
    Chain_model.simulate rng ~n_brokers:8 ~rho:0.15 ~m:4 ~k:12
      ~gap_fraction:0.03 ~delta:0.05 ~trials:400
  in
  Alcotest.(check int) "trials recorded" 400 r.Chain_model.trials;
  Alcotest.(check bool) "measured is a probability" true
    (r.Chain_model.measured >= 0.0 && r.Chain_model.measured <= 1.0);
  Alcotest.(check bool) "reach within the chain" true
    (r.Chain_model.mean_reach >= 1.0 && r.Chain_model.mean_reach <= 8.0);
  (* The measured rate should be in the neighbourhood of the bound. *)
  Alcotest.(check bool)
    (Printf.sprintf "measured %.3f vs analytic %.3f" r.Chain_model.measured
       r.Chain_model.analytic)
    true
    (Float.abs (r.Chain_model.measured -. r.Chain_model.analytic) < 0.12)

let suite =
  [
    Alcotest.test_case "flood reaches everyone" `Quick test_flood_reaches_everyone;
    Alcotest.test_case "end-to-end delivery" `Quick test_delivery_end_to_end;
    Alcotest.test_case "no match, no forward" `Quick test_no_match_no_forward;
    Alcotest.test_case "Fig. 1 covering suppression" `Quick
      test_covering_suppression_fig1;
    Alcotest.test_case "Fig. 1 deliveries" `Quick test_fig1_deliveries;
    Alcotest.test_case "cycles: duplicate suppression" `Quick
      test_cycle_duplicate_suppression;
    Alcotest.test_case "unsubscription promotes" `Quick
      test_unsubscribe_promotion;
    Alcotest.test_case "unsubscribe validation" `Quick
      test_unsubscribe_validation;
    Alcotest.test_case "lossless under deterministic policies" `Slow
      test_no_loss_without_group_policy;
    Alcotest.test_case "Eq. 2 analytic" `Quick test_chain_model_analytic;
    Alcotest.test_case "chain simulation" `Slow test_chain_model_simulation;
  ]

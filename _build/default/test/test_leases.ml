open Probsub_core

let sub = Subscription.of_bounds

let make () =
  Subscription_store.create
    ~policy:(Subscription_store.Group_policy Engine.default_config) ~arity:2
    ~seed:19 ()

let test_basic_expiry () =
  let t = make () in
  let id1, _ = Subscription_store.add_with_expiry t (sub [ (0, 9); (0, 9) ]) ~expires_at:10.0 in
  let id2, _ = Subscription_store.add t (sub [ (50, 59); (0, 9) ]) in
  Alcotest.(check (float 1e-9)) "lease recorded" 10.0 (Subscription_store.expiry t id1);
  Alcotest.(check bool) "no lease = infinity" true
    (Subscription_store.expiry t id2 = infinity);
  let expired, promoted = Subscription_store.expire t ~now:5.0 in
  Alcotest.(check (list int)) "nothing yet" [] expired;
  Alcotest.(check (list int)) "no promotions" [] promoted;
  let expired, _ = Subscription_store.expire t ~now:10.0 in
  Alcotest.(check (list int)) "boundary inclusive" [ id1 ] expired;
  Alcotest.(check int) "one left" 1 (Subscription_store.size t)

let test_expiry_promotes_covered () =
  let t = make () in
  let big, _ =
    Subscription_store.add_with_expiry t (sub [ (0, 99); (0, 99) ]) ~expires_at:100.0
  in
  let small, placement = Subscription_store.add t (sub [ (10, 20); (10, 20) ]) in
  (match placement with
  | Subscription_store.Covered _ -> ()
  | Subscription_store.Active -> Alcotest.fail "small one should be covered");
  let expired, promoted = Subscription_store.expire t ~now:100.0 in
  Alcotest.(check (list int)) "big one expired" [ big ] expired;
  Alcotest.(check (list int)) "small one promoted" [ small ] promoted;
  Alcotest.(check bool) "now active" true (Subscription_store.is_active t small)

let test_expired_covered_promotes_nothing () =
  let t = make () in
  let _big, _ = Subscription_store.add t (sub [ (0, 99); (0, 99) ]) in
  let small, _ =
    Subscription_store.add_with_expiry t (sub [ (10, 20); (10, 20) ]) ~expires_at:1.0
  in
  let expired, promoted = Subscription_store.expire t ~now:2.0 in
  Alcotest.(check (list int)) "covered one expired" [ small ] expired;
  Alcotest.(check (list int)) "no promotions" [] promoted

let test_simultaneous_expiry_no_resurrection () =
  (* The coverer and the covered expire together: the covered one must
     not come back as a promotion. *)
  let t = make () in
  let big, _ =
    Subscription_store.add_with_expiry t (sub [ (0, 99); (0, 99) ]) ~expires_at:10.0
  in
  let small, _ =
    Subscription_store.add_with_expiry t (sub [ (10, 20); (10, 20) ]) ~expires_at:10.0
  in
  let expired, promoted = Subscription_store.expire t ~now:10.0 in
  Alcotest.(check (list int)) "both expired" [ big; small ]
    (List.sort Int.compare expired);
  Alcotest.(check (list int)) "nobody promoted" [] promoted;
  Alcotest.(check int) "store empty" 0 (Subscription_store.size t)

let test_cover_chain_partial_expiry () =
  (* Two coverers, one expires: the covered subscription stays covered
     by the survivor, no promotion. *)
  let t = make () in
  let _a, _ =
    Subscription_store.add_with_expiry t (sub [ (0, 50); (0, 99) ]) ~expires_at:5.0
  in
  let _b, _ = Subscription_store.add t (sub [ (0, 60); (0, 99) ]) in
  let small, _ = Subscription_store.add t (sub [ (10, 20); (10, 20) ]) in
  Alcotest.(check bool) "covered initially" false
    (Subscription_store.is_active t small);
  let _, promoted = Subscription_store.expire t ~now:5.0 in
  Alcotest.(check (list int)) "still covered by the survivor" [] promoted;
  Alcotest.(check bool) "remains covered" false
    (Subscription_store.is_active t small)

let test_matching_respects_expiry () =
  let t = make () in
  let _id, _ =
    Subscription_store.add_with_expiry t (sub [ (0, 9); (0, 9) ]) ~expires_at:1.0
  in
  ignore (Subscription_store.expire t ~now:2.0);
  Alcotest.(check (list int)) "expired subscriptions never match" []
    (Subscription_store.match_publication t (Publication.of_list [ 5; 5 ]))

let test_nan_rejected () =
  let t = make () in
  Alcotest.check_raises "NaN lease"
    (Invalid_argument "Subscription_store.add_with_expiry: NaN lease")
    (fun () ->
      ignore
        (Subscription_store.add_with_expiry t (sub [ (0, 1); (0, 1) ])
           ~expires_at:Float.nan))

let test_stats_count_expiry () =
  let t = make () in
  let _ = Subscription_store.add_with_expiry t (sub [ (0, 9); (0, 9) ]) ~expires_at:1.0 in
  ignore (Subscription_store.expire t ~now:1.0);
  Alcotest.(check int) "expiry counts as removal" 1
    (Subscription_store.stats t).Subscription_store.removed

let suite =
  [
    Alcotest.test_case "basic expiry" `Quick test_basic_expiry;
    Alcotest.test_case "expiry promotes covered" `Quick
      test_expiry_promotes_covered;
    Alcotest.test_case "expired covered promotes nothing" `Quick
      test_expired_covered_promotes_nothing;
    Alcotest.test_case "no resurrection" `Quick
      test_simultaneous_expiry_no_resurrection;
    Alcotest.test_case "partial cover expiry" `Quick
      test_cover_chain_partial_expiry;
    Alcotest.test_case "matching respects expiry" `Quick
      test_matching_respects_expiry;
    Alcotest.test_case "NaN rejected" `Quick test_nan_rejected;
    Alcotest.test_case "stats" `Quick test_stats_count_expiry;
  ]

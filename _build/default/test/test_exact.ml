open Probsub_core

let sub = Subscription.of_bounds

let test_subtract_basic () =
  let box = sub [ (0, 9); (0, 9) ] in
  let cut = sub [ (3, 6); (3, 6) ] in
  let pieces = Exact.subtract box cut in
  (* 100 points minus the 16-point cut = 84 points across pieces. *)
  let total =
    List.fold_left (fun acc p -> acc +. Subscription.size p) 0.0 pieces
  in
  Alcotest.(check (float 1e-6)) "piece volumes sum to difference" 84.0 total;
  (* Pieces are pairwise disjoint and avoid the cut. *)
  List.iteri
    (fun i a ->
      Alcotest.(check bool) "piece avoids cut" false
        (Subscription.intersects a cut);
      List.iteri
        (fun j b ->
          if i < j then
            Alcotest.(check bool) "pieces disjoint" false
              (Subscription.intersects a b))
        pieces)
    pieces

let test_subtract_disjoint () =
  let box = sub [ (0, 9) ] in
  let cut = sub [ (20, 30) ] in
  match Exact.subtract box cut with
  | [ only ] -> Alcotest.(check bool) "box unchanged" true (Subscription.equal only box)
  | _ -> Alcotest.fail "disjoint cut leaves the box intact"

let test_subtract_covering () =
  let box = sub [ (2, 5) ] in
  let cut = sub [ (0, 9) ] in
  Alcotest.(check int) "nothing left" 0 (List.length (Exact.subtract box cut))

let test_covered_simple () =
  let s = sub [ (0, 9) ] in
  Alcotest.(check bool) "exact split cover" true
    (Exact.covered s [| sub [ (0, 4) ]; sub [ (5, 9) ] |]);
  Alcotest.(check bool) "gap detected" false
    (Exact.covered s [| sub [ (0, 4) ]; sub [ (6, 9) ] |]);
  Alcotest.(check bool) "empty set never covers" false (Exact.covered s [||])

let test_covered_paper_example () =
  let s = sub [ (830, 870); (1003, 1006) ] in
  let s1 = sub [ (820, 850); (1001, 1007) ] in
  let s2 = sub [ (840, 880); (1002, 1009) ] in
  Alcotest.(check bool) "Table 3 covered" true (Exact.covered s [| s1; s2 |])

let test_witness_agrees () =
  let s = sub [ (0, 9); (0, 9) ] in
  let subs = [| sub [ (0, 9); (0, 8) ] |] in
  (match Exact.find_witness s subs with
  | Some p ->
      Alcotest.(check bool) "witness in s" true (Subscription.covers_point s p);
      Alcotest.(check bool) "witness escapes" true (Rspc.escapes p subs)
  | None -> Alcotest.fail "row 9 is uncovered");
  Alcotest.(check bool) "covered -> no witness" true
    (Option.is_none (Exact.find_witness s [| sub [ (0, 9); (0, 9) ] |]))

let test_fuel () =
  let s = sub [ (0, 9); (0, 9) ] in
  let subs = [| sub [ (0, 4); (0, 9) ]; sub [ (5, 9); (0, 9) ] |] in
  (match Exact.covered_fuel ~fuel:1 s subs with
  | None -> ()
  | Some _ -> Alcotest.fail "one unit of fuel cannot finish this");
  match Exact.covered_fuel ~fuel:1_000 s subs with
  | Some true -> ()
  | Some false -> Alcotest.fail "set covers s"
  | None -> Alcotest.fail "1000 boxes suffice"

let test_against_sampling () =
  (* Randomized cross-check: the oracle's verdict must agree with dense
     point sampling. *)
  let rng = Prng.of_int 123 in
  for _ = 1 to 30 do
    let s =
      Subscription.of_list
        (List.init 2 (fun _ ->
             let lo = Prng.int rng 10 in
             Interval.make ~lo ~hi:(lo + 5 + Prng.int rng 10)))
    in
    let subs =
      Array.init 5 (fun _ ->
          Subscription.of_list
            (List.init 2 (fun _ ->
                 let lo = Prng.int rng 20 in
                 Interval.make ~lo ~hi:(lo + 3 + Prng.int rng 15))))
    in
    let verdict = Exact.covered s subs in
    (* Exhaustively scan all points of s (small by construction). *)
    let all_inside = ref true in
    let r0 = Subscription.range s 0 and r1 = Subscription.range s 1 in
    for x = Interval.lo r0 to Interval.hi r0 do
      for y = Interval.lo r1 to Interval.hi r1 do
        if Rspc.escapes [| x; y |] subs then all_inside := false
      done
    done;
    Alcotest.(check bool) "oracle agrees with exhaustive scan" !all_inside
      verdict
  done

let test_arity_mismatch () =
  Alcotest.check_raises "mismatch rejected"
    (Invalid_argument "Exact: arity mismatch") (fun () ->
      ignore (Exact.covered (sub [ (0, 1) ]) [| sub [ (0, 1); (0, 1) ] |]))

let suite =
  [
    Alcotest.test_case "subtract partitions" `Quick test_subtract_basic;
    Alcotest.test_case "subtract disjoint" `Quick test_subtract_disjoint;
    Alcotest.test_case "subtract covering" `Quick test_subtract_covering;
    Alcotest.test_case "simple covers" `Quick test_covered_simple;
    Alcotest.test_case "paper example" `Quick test_covered_paper_example;
    Alcotest.test_case "witness extraction" `Quick test_witness_agrees;
    Alcotest.test_case "fuel bound" `Quick test_fuel;
    Alcotest.test_case "agrees with exhaustive scan" `Slow test_against_sampling;
    Alcotest.test_case "arity mismatch" `Quick test_arity_mismatch;
  ]

open Probsub_core

let sub = Subscription.of_bounds

let test_random_point_in_s () =
  let rng = Prng.of_int 1 in
  let s = sub [ (10, 20); (-5, 5); (0, 0) ] in
  for _ = 1 to 1_000 do
    let p = Rspc.random_point ~rng s in
    Alcotest.(check bool) "inside s" true (Subscription.covers_point s p)
  done

let test_escapes () =
  let subs = [| sub [ (0, 4) ]; sub [ (6, 9) ] |] in
  Alcotest.(check bool) "5 escapes" true (Rspc.escapes [| 5 |] subs);
  Alcotest.(check bool) "4 caught" false (Rspc.escapes [| 4 |] subs);
  Alcotest.(check bool) "everything escapes the empty set" true
    (Rspc.escapes [| 4 |] [||])

let test_definite_no_is_sound () =
  (* Whenever RSPC answers Not_covered, the returned point must be a
     real witness. *)
  let rng = Prng.of_int 2 in
  let s = sub [ (0, 99); (0, 99) ] in
  let subs = [| sub [ (0, 49); (0, 99) ]; sub [ (50, 99); (0, 49) ] |] in
  match (Rspc.run ~rng ~d:10_000 ~s subs).Rspc.outcome with
  | Rspc.Not_covered p ->
      Alcotest.(check bool) "in s" true (Subscription.covers_point s p);
      Alcotest.(check bool) "escapes all" true (Rspc.escapes p subs)
  | Rspc.Probably_covered ->
      Alcotest.fail "a quarter of s is uncovered; 10000 draws must hit it"

let test_covered_always_yes () =
  (* A truly covered s can never produce a witness. *)
  let rng = Prng.of_int 3 in
  let s = sub [ (10, 20); (10, 20) ] in
  let subs = [| sub [ (0, 15); (0, 99) ]; sub [ (14, 99); (0, 99) ] |] in
  let run = Rspc.run ~rng ~d:5_000 ~s subs in
  (match run.Rspc.outcome with
  | Rspc.Probably_covered -> ()
  | Rspc.Not_covered _ -> Alcotest.fail "covered: no witness can exist");
  Alcotest.(check int) "all iterations used" 5_000 run.Rspc.iterations

let test_zero_budget () =
  let rng = Prng.of_int 4 in
  let s = sub [ (0, 9) ] in
  let run = Rspc.run ~rng ~d:0 ~s [| sub [ (0, 0) ] |] in
  (match run.Rspc.outcome with
  | Rspc.Probably_covered -> ()
  | Rspc.Not_covered _ -> Alcotest.fail "no draws, no witness");
  Alcotest.(check int) "zero iterations" 0 run.Rspc.iterations;
  Alcotest.check_raises "negative budget rejected"
    (Invalid_argument "Rspc.run: negative trial budget") (fun () ->
      ignore (Rspc.run ~rng ~d:(-1) ~s [||]))

let test_early_exit () =
  (* With nothing covering s, the very first draw is a witness. *)
  let rng = Prng.of_int 5 in
  let s = sub [ (0, 9) ] in
  let run = Rspc.run ~rng ~d:1_000 ~s [||] in
  Alcotest.(check int) "stops at one iteration" 1 run.Rspc.iterations;
  match run.Rspc.outcome with
  | Rspc.Not_covered _ -> ()
  | Rspc.Probably_covered -> Alcotest.fail "empty set never covers"

let test_error_rate_matches_theory () =
  (* Fixed uncovered fraction rho = 0.1, budget d chosen for delta =
     0.25: over many runs the observed false-YES rate must be near
     (1-rho)^d and certainly below ~2x the bound. *)
  let rho = 0.1 in
  let delta = 0.25 in
  let d = int_of_float (Rho.d_of_rho ~rho ~delta) in
  let s = sub [ (0, 999) ] in
  let subs = [| sub [ (0, 899) ] |] in
  let rng = Prng.of_int 6 in
  let runs = 2_000 in
  let false_yes = ref 0 in
  for _ = 1 to runs do
    match (Rspc.run ~rng ~d ~s subs).Rspc.outcome with
    | Rspc.Probably_covered -> incr false_yes
    | Rspc.Not_covered _ -> ()
  done;
  let rate = float_of_int !false_yes /. float_of_int runs in
  let bound = (1.0 -. rho) ** float_of_int d in
  Alcotest.(check bool)
    (Printf.sprintf "rate %.3f <= 2 * bound %.3f" rate bound)
    true
    (rate <= (2.0 *. bound) +. 0.02)

let test_iterations_geometric () =
  (* Expected trials to find a witness with rho = 0.5 is 2. *)
  let s = sub [ (0, 9) ] in
  let subs = [| sub [ (0, 4) ] |] in
  let rng = Prng.of_int 7 in
  let total = ref 0 in
  let runs = 5_000 in
  for _ = 1 to runs do
    total := !total + (Rspc.run ~rng ~d:1_000 ~s subs).Rspc.iterations
  done;
  let mean = float_of_int !total /. float_of_int runs in
  Alcotest.(check bool)
    (Printf.sprintf "mean %.2f near 2" mean)
    true
    (Float.abs (mean -. 2.0) < 0.15)

let suite =
  [
    Alcotest.test_case "random points stay in s" `Quick test_random_point_in_s;
    Alcotest.test_case "escape predicate" `Quick test_escapes;
    Alcotest.test_case "definite NO is sound" `Quick test_definite_no_is_sound;
    Alcotest.test_case "covered always YES" `Quick test_covered_always_yes;
    Alcotest.test_case "zero budget" `Quick test_zero_budget;
    Alcotest.test_case "early exit on witness" `Quick test_early_exit;
    Alcotest.test_case "error rate matches Eq. 1" `Slow
      test_error_rate_matches_theory;
    Alcotest.test_case "geometric trial count" `Slow test_iterations_geometric;
  ]

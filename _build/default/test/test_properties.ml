(* Property-based tests (qcheck) for the core invariants:
   soundness of every definite answer, MCS answer preservation,
   subtraction partition laws, and the algebra of intervals/boxes. *)

open Probsub_core

(* ------------------------------------------------------------------ *)
(* Generators *)

let interval_gen ~max_lo ~max_width =
  QCheck.Gen.(
    let* lo = int_bound max_lo in
    let* w = int_bound max_width in
    return (Interval.make ~lo ~hi:(lo + w)))

let subscription_gen ~arity ~max_lo ~max_width =
  QCheck.Gen.(
    let* ranges =
      list_repeat arity (interval_gen ~max_lo ~max_width)
    in
    return (Subscription.of_list ranges))

(* A subsumption problem instance: tested subscription s plus a set,
   sized so the exact oracle stays fast. *)
let problem_gen =
  QCheck.Gen.(
    let* arity = int_range 1 3 in
    let* s = subscription_gen ~arity ~max_lo:15 ~max_width:15 in
    let* k = int_range 0 7 in
    let* subs = list_repeat k (subscription_gen ~arity ~max_lo:20 ~max_width:20) in
    return (s, Array.of_list subs))

let problem_arb =
  QCheck.make problem_gen ~print:(fun (s, subs) ->
      Format.asprintf "s = %a; S = [%a]" Subscription.pp s
        (Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
           Subscription.pp)
        subs)

let interval_pair_arb =
  QCheck.make
    QCheck.Gen.(
      let* a = interval_gen ~max_lo:30 ~max_width:20 in
      let* b = interval_gen ~max_lo:30 ~max_width:20 in
      return (a, b))
    ~print:(fun (a, b) ->
      Printf.sprintf "%s, %s" (Interval.to_string a) (Interval.to_string b))

let box_pair_arb =
  QCheck.make
    QCheck.Gen.(
      let* arity = int_range 1 3 in
      let* a = subscription_gen ~arity ~max_lo:12 ~max_width:8 in
      let* b = subscription_gen ~arity ~max_lo:12 ~max_width:8 in
      return (a, b))
    ~print:(fun (a, b) ->
      Format.asprintf "%a, %a" Subscription.pp a Subscription.pp b)

let count = 300

(* ------------------------------------------------------------------ *)
(* Interval algebra *)

let prop_inter_commutative =
  QCheck.Test.make ~count ~name:"interval intersection commutes"
    interval_pair_arb (fun (a, b) ->
      match (Interval.inter a b, Interval.inter b a) with
      | None, None -> true
      | Some x, Some y -> Interval.equal x y
      | Some _, None | None, Some _ -> false)

let prop_inter_subset =
  QCheck.Test.make ~count ~name:"intersection contained in both"
    interval_pair_arb (fun (a, b) ->
      match Interval.inter a b with
      | None -> not (Interval.intersects a b)
      | Some i -> Interval.subset i a && Interval.subset i b)

let prop_hull_contains =
  QCheck.Test.make ~count ~name:"hull contains both" interval_pair_arb
    (fun (a, b) ->
      let h = Interval.hull a b in
      Interval.subset a h && Interval.subset b h)

let prop_subset_mem =
  QCheck.Test.make ~count ~name:"subset agrees with membership"
    interval_pair_arb (fun (a, b) ->
      let pointwise = ref true in
      for v = Interval.lo a to Interval.hi a do
        if not (Interval.mem v b) then pointwise := false
      done;
      Interval.subset a b = !pointwise)

(* ------------------------------------------------------------------ *)
(* Box algebra *)

let sample_points (s : Subscription.t) =
  (* Corners plus centre: enough to falsify box predicates. *)
  let m = Subscription.arity s in
  let lo = Array.init m (fun j -> Interval.lo (Subscription.range s j)) in
  let hi = Array.init m (fun j -> Interval.hi (Subscription.range s j)) in
  let mid = Array.init m (fun j -> (lo.(j) + hi.(j)) / 2) in
  [ lo; hi; mid ]

let prop_covers_sub_pointwise =
  QCheck.Test.make ~count ~name:"covers_sub implies pointwise coverage"
    box_pair_arb (fun (a, b) ->
      (not (Subscription.covers_sub a b))
      || List.for_all (fun p -> Subscription.covers_point a p) (sample_points b))

let prop_box_inter =
  QCheck.Test.make ~count ~name:"box intersection is pointwise and"
    box_pair_arb (fun (a, b) ->
      match Subscription.inter a b with
      | None -> not (Subscription.intersects a b)
      | Some i ->
          List.for_all
            (fun p ->
              Subscription.covers_point a p && Subscription.covers_point b p)
            (sample_points i))

(* ------------------------------------------------------------------ *)
(* Conflict table *)

let prop_cell_definition =
  QCheck.Test.make ~count ~name:"cell defined iff strip non-empty"
    problem_arb (fun (s, subs) ->
      let t = Conflict_table.build ~s subs in
      let ok = ref true in
      for row = 0 to Conflict_table.rows t - 1 do
        for attr = 0 to Conflict_table.arity t - 1 do
          List.iter
            (fun side ->
              let defined =
                match Conflict_table.cell t ~row ~attr ~side with
                | Conflict_table.Defined _ -> true
                | Conflict_table.Undefined -> false
              in
              let has_strip =
                Option.is_some (Conflict_table.strip t ~row ~attr ~side)
              in
              if defined <> has_strip then ok := false)
            [ Conflict_table.Low; Conflict_table.High ]
        done
      done;
      !ok)

let prop_corollary1 =
  QCheck.Test.make ~count ~name:"Corollary 1: all-undefined row = coverer"
    problem_arb (fun (s, subs) ->
      let t = Conflict_table.build ~s subs in
      let ok = ref true in
      for row = 0 to Conflict_table.rows t - 1 do
        let undef = Conflict_table.row_all_undefined t ~row in
        let covers = Subscription.covers_sub subs.(row) s in
        if undef <> covers then ok := false
      done;
      !ok)

let prop_corollary2 =
  QCheck.Test.make ~count ~name:"Corollary 2: all-defined row = covered by s"
    problem_arb (fun (s, subs) ->
      let t = Conflict_table.build ~s subs in
      let ok = ref true in
      for row = 0 to Conflict_table.rows t - 1 do
        if Conflict_table.row_all_defined t ~row then begin
          (* All negations satisfiable: s strictly sticks out beyond si
             on every side, hence s covers si's intersection pattern on
             every attribute boundary. *)
          let m = Subscription.arity s in
          for j = 0 to m - 1 do
            let rs = Subscription.range s j
            and ri = Subscription.range subs.(row) j in
            if
              not
                (Interval.lo rs < Interval.lo ri
                && Interval.hi rs > Interval.hi ri)
            then ok := false
          done
        end
      done;
      !ok)

let prop_corollary3_sound =
  QCheck.Test.make ~count ~name:"Corollary 3 implies real non-cover"
    problem_arb (fun (s, subs) ->
      let t = Conflict_table.build ~s subs in
      (not (Witness.corollary3_holds t)) || not (Exact.covered s subs))

(* ------------------------------------------------------------------ *)
(* Witness *)

let prop_polyhedron_sound =
  QCheck.Test.make ~count ~name:"greedy polyhedron witness verified"
    problem_arb (fun (s, subs) ->
      let t = Conflict_table.build ~s subs in
      match Witness.find_polyhedron t with
      | None -> true
      | Some w ->
          Witness.verify t w
          && Witness.is_point_witness t (Witness.point_of w)
          && not (Exact.covered s subs))

(* ------------------------------------------------------------------ *)
(* MCS *)

let prop_mcs_preserves_answer =
  QCheck.Test.make ~count ~name:"MCS preserves exact answer" problem_arb
    (fun (s, subs) ->
      let t = Conflict_table.build ~s subs in
      let reduced = Mcs.reduced_subs t (Mcs.run t) in
      Exact.covered s subs = Exact.covered s reduced)

let prop_mcs_monotone =
  QCheck.Test.make ~count ~name:"MCS output is a subset" problem_arb
    (fun (s, subs) ->
      let t = Conflict_table.build ~s subs in
      let r = Mcs.run t in
      List.length r.Mcs.kept + List.length r.Mcs.removed = Array.length subs
      && List.for_all (fun i -> i >= 0 && i < Array.length subs) r.Mcs.kept)

(* ------------------------------------------------------------------ *)
(* Exact oracle *)

let prop_subtract_partition =
  QCheck.Test.make ~count ~name:"subtract partitions box minus cut"
    box_pair_arb (fun (box, cut) ->
      let pieces = Exact.subtract box cut in
      (* Volume law. *)
      let vol s = Subscription.size s in
      let inter_vol =
        match Subscription.inter box cut with None -> 0.0 | Some i -> vol i
      in
      let sum = List.fold_left (fun acc p -> acc +. vol p) 0.0 pieces in
      let expected = vol box -. inter_vol in
      Float.abs (sum -. expected) < 1e-6
      (* Disjointness and containment. *)
      && List.for_all
           (fun p ->
             Subscription.covers_sub box p
             && not (Subscription.intersects p cut))
           pieces)

let prop_exact_vs_witness =
  QCheck.Test.make ~count ~name:"oracle witness consistency" problem_arb
    (fun (s, subs) ->
      match Exact.find_witness s subs with
      | Some p ->
          Subscription.covers_point s p
          && Rspc.escapes p subs
          && not (Exact.covered s subs)
      | None -> Exact.covered s subs)

(* ------------------------------------------------------------------ *)
(* Engine end-to-end soundness *)

let prop_engine_definite_sound =
  QCheck.Test.make ~count ~name:"engine definite answers match oracle"
    problem_arb (fun (s, subs) ->
      let rng = Prng.of_int 2024 in
      let r = Engine.check ~rng s subs in
      match r.Engine.verdict with
      | Engine.Not_covered _ -> not (Exact.covered s subs)
      | Engine.Covered_pairwise i -> Subscription.covers_sub subs.(i) s
      | Engine.Covered_probably ->
          (* Allowed to be wrong with prob <= delta; with default 1e-6
             and 300 cases a failure here indicates a real bug. *)
          Exact.covered s subs)

let prop_engine_ablation_consistent =
  QCheck.Test.make ~count:150
    ~name:"engine verdict stable across optimization toggles" problem_arb
    (fun (s, subs) ->
      let run cfg = Engine.check ~config:cfg ~rng:(Prng.of_int 7) s subs in
      let truth = Exact.covered s subs in
      List.for_all
        (fun cfg ->
          let r = run cfg in
          match r.Engine.verdict with
          | Engine.Not_covered _ -> not truth
          | Engine.Covered_pairwise _ | Engine.Covered_probably -> truth)
        [
          Engine.config ();
          Engine.config ~use_mcs:false ();
          Engine.config ~use_fast_decisions:false ();
          Engine.config ~use_mcs:false ~use_fast_decisions:false ();
        ])

(* ------------------------------------------------------------------ *)
(* Merging *)

let prop_perfect_merge_exact =
  QCheck.Test.make ~count ~name:"perfect merge preserves the point set"
    box_pair_arb (fun (a, b) ->
      match Merging.perfect_merge a b with
      | None -> true
      | Some u ->
          List.for_all
            (fun p ->
              Subscription.covers_point u p
              = (Subscription.covers_point a p || Subscription.covers_point b p))
            (sample_points a @ sample_points b @ sample_points u))

(* ------------------------------------------------------------------ *)
(* Calendar arithmetic *)

let prop_calendar_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"timestamp minutes round-trip"
    QCheck.(make Gen.(int_bound (105_000_000)))
    (fun minutes ->
      Domain_codec.minutes_of_timestamp (Domain_codec.timestamp_of_minutes minutes)
      = minutes)

let prop_calendar_monotone =
  QCheck.Test.make ~count:500 ~name:"timestamps order like their minutes"
    QCheck.(pair (make Gen.(int_bound 105_000_000)) (make Gen.(int_bound 105_000_000)))
    (fun (a, b) ->
      let ta = Domain_codec.timestamp_of_minutes a in
      let tb = Domain_codec.timestamp_of_minutes b in
      (compare a b <= 0) = (String.compare ta tb <= 0))

(* ------------------------------------------------------------------ *)
(* Store: multi-level matching is exact under deterministic policies *)

let store_script_gen =
  QCheck.Gen.(
    let* ops =
      list_size (int_range 5 40)
        (let* kind = int_bound 9 in
         let* s = subscription_gen ~arity:2 ~max_lo:25 ~max_width:20 in
         return (kind, s))
    in
    let* probes = list_size (int_range 3 10) (pair (int_bound 50) (int_bound 50)) in
    return (ops, probes))

let prop_store_multilevel_exact =
  QCheck.Test.make ~count:150
    ~name:"pairwise store: multilevel matching equals exhaustive"
    (QCheck.make store_script_gen)
    (fun (ops, probes) ->
      let store =
        Subscription_store.create ~policy:Subscription_store.Pairwise_policy
          ~arity:2 ~seed:5 ()
      in
      let live = ref [] in
      List.iter
        (fun (kind, s) ->
          if kind < 7 || !live = [] then begin
            let id, _ = Subscription_store.add store s in
            live := id :: !live
          end
          else begin
            match !live with
            | id :: rest ->
                live := rest;
                ignore (Subscription_store.remove store id)
            | [] -> ()
          end)
        ops;
      List.for_all
        (fun (x, y) ->
          let p = Publication.of_list [ x; y ] in
          Subscription_store.match_publication store p
          = Subscription_store.match_publication_exhaustive store p)
        probes)

let prop_store_invariants =
  QCheck.Test.make ~count:120
    ~name:"store invariants survive add/remove/expire churn"
    (QCheck.make store_script_gen)
    (fun (ops, probes) ->
      ignore probes;
      let store =
        Subscription_store.create ~policy:Subscription_store.Pairwise_policy
          ~arity:2 ~seed:11 ()
      in
      let live = ref [] in
      let clock = ref 0.0 in
      List.for_all
        (fun (kind, s) ->
          clock := !clock +. 1.0;
          (if kind <= 5 then begin
             let id, _ =
               if kind mod 2 = 0 then Subscription_store.add store s
               else
                 Subscription_store.add_with_expiry store s
                   ~expires_at:(!clock +. float_of_int (kind * 3))
             in
             live := id :: !live
           end
           else if kind <= 7 then
             match !live with
             | id :: rest ->
                 live := rest;
                 (* The id may already have expired; that is fine. *)
                 (try ignore (Subscription_store.remove store id)
                  with Not_found -> ())
             | [] -> ()
           else ignore (Subscription_store.expire store ~now:!clock));
          Subscription_store.validate store)
        ops)

(* ------------------------------------------------------------------ *)
(* Poset agrees with the flat pairwise baseline *)

let prop_poset_coverage =
  QCheck.Test.make ~count:200 ~name:"poset coverage equals flat pairwise scan"
    problem_arb
    (fun (s, subs) ->
      QCheck.assume (Array.length subs > 0);
      let arity = Subscription.arity s in
      let poset = Poset.create ~arity () in
      Array.iter (fun si -> ignore (Poset.add poset si)) subs;
      Poset.covered_by_some_root poset s
      = Option.is_some (Pairwise.find_coverer s subs))

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_calendar_roundtrip;
      prop_calendar_monotone;
      prop_store_multilevel_exact;
      prop_store_invariants;
      prop_poset_coverage;
      prop_inter_commutative;
      prop_inter_subset;
      prop_hull_contains;
      prop_subset_mem;
      prop_covers_sub_pointwise;
      prop_box_inter;
      prop_cell_definition;
      prop_corollary1;
      prop_corollary2;
      prop_corollary3_sound;
      prop_polyhedron_sound;
      prop_mcs_preserves_answer;
      prop_mcs_monotone;
      prop_subtract_partition;
      prop_exact_vs_witness;
      prop_engine_definite_sound;
      prop_engine_ablation_consistent;
      prop_perfect_merge_exact;
    ]

(** Witness probability ρw and iteration bound d (Algorithm 2, Eq. 1).

    RSPC answers a probabilistic YES with error at most
    [δ = (1 − ρw)^d], where ρw is the probability that a uniform point
    of [s] is a point witness. A lower bound on ρw follows from the size
    of the smallest polyhedron witness, approximated by multiplying the
    minimum uncovered strip width per attribute over all rows of the
    conflict table (Algorithm 2). Inverting Eq. 1 then yields the number
    of trials [d] needed for a target δ — computable in polynomial time
    {e before} running RSPC.

    Sizes such as [I(s)] overflow machine integers for moderate [m], so
    everything is carried in log10 space; [d] itself can reach 10^50+
    (paper Figs. 7 and 9 plot [log10 d] up to ~55), hence {!log10_d}. *)

type estimate = {
  log10_witness_size : float;  (** log10 I(sw), smallest-witness proxy. *)
  log10_s_size : float;        (** log10 I(s). *)
  log10_rho : float;           (** log10 ρw = the difference. *)
}

val estimate : Conflict_table.t -> estimate
(** [estimate t] runs Algorithm 2 on the conflict table. With zero rows
    the witness is all of [s], giving ρw = 1. *)

val rho : estimate -> float
(** ρw as a float; underflows to 0. for very small values — prefer
    [log10_rho] in arithmetic. *)

val d_of_rho : rho:float -> delta:float -> float
(** [d_of_rho ~rho ~delta] inverts Eq. 1: the least number of
    independent trials such that [(1 − rho)^d <= delta]. Returns
    [infinity] when [rho = 0.] and [1.] when [rho >= 1.].
    @raise Invalid_argument unless [0 < delta < 1]. *)

val log10_d : estimate -> delta:float -> float
(** [log10_d e ~delta] is [log10 (d_of_rho ...)], computed stably even
    when ρw underflows: for small ρ,
    [d ≈ -ln δ / ρ], so [log10 d ≈ log10 (-ln δ) − log10 ρ]. *)

val d_capped : estimate -> delta:float -> cap:int -> int
(** [d_capped e ~delta ~cap] is the concrete trial budget handed to
    RSPC: [min d cap], at least 1. *)

(** Exact (deterministic) group-coverage oracle.

    Decides [s ⊑ s1 ∨ ... ∨ sk] exactly by recursive box subtraction:
    pick a subscription intersecting the current box, carve the box into
    the at-most-[2m] sub-boxes outside it, and recurse. The problem is
    co-NP complete, so this is exponential in the worst case — it exists
    as the ground truth for tests and for counting the false decisions
    of Fig. 12, not as a production algorithm. Keep [k] and [m] small
    (tests use k ≤ 60, m ≤ 6) or rely on {!covered_fuel}. *)

val covered : Subscription.t -> Subscription.t array -> bool
(** [covered s subs] is true iff the union of [subs] covers [s].
    @raise Invalid_argument on an arity mismatch. *)

val covered_fuel :
  fuel:int -> Subscription.t -> Subscription.t array -> bool option
(** Like {!covered} but gives up with [None] after expanding [fuel]
    boxes, so callers can bound the exponential blow-up. *)

val find_witness : Subscription.t -> Subscription.t array -> int array option
(** [find_witness s subs] returns a concrete point of [s] outside every
    subscription when coverage fails, [None] when [s] is covered. *)

val subtract : Subscription.t -> Subscription.t -> Subscription.t list
(** [subtract box cut] partitions [box \ cut] into at most [2m]
    pairwise-disjoint boxes (empty list when [cut] covers [box]).
    Exposed for the property tests of the subtraction invariants. *)

(** Witnesses to non-coverage (Definitions 3 and 4).

    A {e polyhedron witness} picks one defined conflict-table cell per
    row such that [s] conjoined with all the picked negations is
    satisfiable: the resulting box lies inside [s] but escapes every
    [si]. A {e point witness} is any point of such a box. *)

type polyhedron = {
  region : Subscription.t;
      (** The witness box: contained in [s], disjoint from every [si]. *)
  picks : (int * int * Conflict_table.side) list;
      (** The chosen cell per row as [(row, attr, side)] triples. *)
}

val find_polyhedron : Conflict_table.t -> polyhedron option
(** [find_polyhedron t] runs the greedy construction from the proof of
    Corollary 3: rows are visited in ascending order of defined-entry
    count [t_i]; for each row we pick a defined cell whose strip still
    intersects the region built so far. The greedy is {e sound} (a
    returned box is always a real witness, verified on return) but not
    complete — [None] does not prove coverage. Under the Corollary 3
    precondition (sorted [t_{i_j} >= j]) it always succeeds. Returns
    [None] when some row has no defined cells (that row covers [s]
    pairwise, so no witness exists at all). *)

val corollary3_holds : Conflict_table.t -> bool
(** The O(k log k) sufficient condition of Corollary 3: after sorting
    the rows by defined-cell count, [t_{i_j} >= j] for every position
    [j] (1-based). When true, [s] is definitely not covered. *)

val point_of : polyhedron -> int array
(** The lower corner of the witness box — a concrete point witness. *)

val verify : Conflict_table.t -> polyhedron -> bool
(** [verify t w] re-checks from first principles that [w.region] lies
    inside [s] and intersects no [si]; used by tests and by
    {!find_polyhedron}'s internal sanity assertion. *)

val is_point_witness : Conflict_table.t -> int array -> bool
(** [is_point_witness t p] tests Definition 4 directly: [p] satisfies
    [s] and no [si]. O(m·k). *)

lib/core/interval_index.ml: Array Int Interval List

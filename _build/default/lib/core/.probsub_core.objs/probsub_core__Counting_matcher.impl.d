lib/core/counting_matcher.ml: Array Hashtbl Int Interval Interval_index List Option Publication Subscription

lib/core/engine.ml: Array Conflict_table Fast_decision List Mcs Probes Publication Rho Rspc Witness

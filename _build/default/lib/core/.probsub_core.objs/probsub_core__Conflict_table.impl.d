lib/core/conflict_table.ml: Array Format Interval Subscription

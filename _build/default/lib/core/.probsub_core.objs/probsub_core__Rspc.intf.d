lib/core/rspc.mli: Prng Subscription

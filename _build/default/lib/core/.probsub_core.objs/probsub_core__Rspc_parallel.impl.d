lib/core/rspc_parallel.ml: Array Atomic Domain Prng Rspc

lib/core/interval_index.mli: Interval

lib/core/conflict_table.mli: Format Interval Subscription

lib/core/mcs.ml: Array Conflict_table Interval List

lib/core/publication.mli: Format Subscription

lib/core/pairwise.ml: Array Subscription

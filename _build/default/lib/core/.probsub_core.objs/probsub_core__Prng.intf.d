lib/core/prng.mli: Interval

lib/core/rho.mli: Conflict_table

lib/core/sublang.mli: Domain_codec Publication Subscription

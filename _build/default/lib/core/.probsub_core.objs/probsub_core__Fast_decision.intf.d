lib/core/fast_decision.mli: Conflict_table Witness

lib/core/poset.mli: Subscription

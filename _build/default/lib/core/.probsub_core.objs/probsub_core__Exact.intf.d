lib/core/exact.mli: Subscription

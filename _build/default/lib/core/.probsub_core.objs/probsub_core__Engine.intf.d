lib/core/engine.mli: Mcs Prng Publication Rho Subscription Witness

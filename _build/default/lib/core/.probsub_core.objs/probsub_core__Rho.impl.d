lib/core/rho.ml: Conflict_table Float Interval Subscription

lib/core/merging.mli: Subscription

lib/core/witness.mli: Conflict_table Subscription

lib/core/rspc_parallel.mli: Prng Rspc Subscription

lib/core/poset.ml: Hashtbl Int List Subscription

lib/core/probes.mli: Conflict_table

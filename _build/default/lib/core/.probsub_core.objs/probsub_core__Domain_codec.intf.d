lib/core/domain_codec.mli: Format Interval Publication Subscription

lib/core/subscription.mli: Format Interval

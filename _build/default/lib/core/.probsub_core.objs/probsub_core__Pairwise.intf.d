lib/core/pairwise.mli: Subscription

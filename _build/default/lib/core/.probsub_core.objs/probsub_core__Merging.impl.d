lib/core/merging.ml: Array Interval List Subscription

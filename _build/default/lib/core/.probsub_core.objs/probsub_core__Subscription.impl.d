lib/core/subscription.ml: Array Format Int Interval List Printf

lib/core/counting_matcher.mli: Publication Subscription

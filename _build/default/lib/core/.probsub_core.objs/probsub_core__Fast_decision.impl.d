lib/core/fast_decision.ml: Conflict_table Witness

lib/core/exact.ml: Array Interval List Option Subscription

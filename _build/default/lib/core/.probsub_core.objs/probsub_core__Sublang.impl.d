lib/core/sublang.ml: Buffer Domain_codec Format Interval List Printf Result String Subscription

lib/core/subscription_store.mli: Engine Publication Subscription

lib/core/publication.ml: Array Format Interval Subscription

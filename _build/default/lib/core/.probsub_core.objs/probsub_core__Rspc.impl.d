lib/core/rspc.ml: Array Prng Subscription

lib/core/probes.ml: Array Conflict_table Hashtbl Int Interval List Subscription Witness

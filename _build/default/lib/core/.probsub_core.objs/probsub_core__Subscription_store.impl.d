lib/core/subscription_store.ml: Array Engine Float Hashtbl Int List Mcs Option Pairwise Prng Publication Subscription

lib/core/mcs.mli: Conflict_table Subscription

lib/core/witness.ml: Array Conflict_table Int Interval List Subscription

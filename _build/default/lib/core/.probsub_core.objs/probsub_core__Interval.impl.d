lib/core/interval.ml: Format Int Printf

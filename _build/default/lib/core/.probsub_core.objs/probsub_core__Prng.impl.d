lib/core/prng.ml: Int64 Interval

lib/core/domain_codec.ml: Array Char Format Hashtbl Interval List Printf Publication String Subscription

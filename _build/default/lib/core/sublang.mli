(** A small textual language for subscriptions and publications, used
    by the CLI and by file-based workloads. Parsing is against a
    {!Domain_codec} schema, so fields are typed.

    Subscription grammar (case-insensitive keywords):
    {v
      sub    ::= atom ( ('&' | 'and') atom )*  |  '*'
      atom   ::= field '=' value
               | field ('>=' | '<=') value
               | field 'in' '[' value ',' value ']'
               | field '=' '*'
      value  ::= integer | symbol | 'true' | 'false' | timestamp
                 | '"' characters '"'
    v}
    e.g. ["size in [17, 19] & brand = X & date >= 2006-03-31T12:00"].

    Publication grammar: a comma-separated list of [field = value]
    covering every field, e.g. ["bid = 1036, size = 19, brand = X"].

    Schema files (one field per line, [#] comments):
    {v
      bid   : int[1, 1999]
      brand : enum(X, Y, Z)
      fast  : flag
      date  : minutes
    v} *)

val parse_subscription :
  Domain_codec.t -> string -> (Subscription.t, string) result
(** Human-readable error messages with positions. *)

val parse_publication :
  Domain_codec.t -> string -> (Publication.t, string) result

val parse_schema : string -> (Domain_codec.t, string) result
(** Parses the schema-file format above (the whole file contents). *)

val subscription_to_string : Domain_codec.t -> Subscription.t -> string
(** Round-trips through {!parse_subscription}. *)

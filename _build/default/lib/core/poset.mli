(** A covering poset of subscriptions — the data structure Siena-class
    systems maintain for {e pairwise} covering (the paper's §7:
    "existing deterministic algorithms ... use pair-wise comparisons").

    Subscriptions are partially ordered by [covers_sub]; the poset
    keeps only the {e direct} covering edges, so the roots (maximal
    elements) are exactly the subscriptions a broker must propagate —
    everything else is pairwise-covered by some root. Compared to the
    flat {!Subscription_store} scan, insertion walks down from the
    roots and only explores covered regions, which is sub-linear on
    nested workloads.

    Duplicates (equal subscriptions) are permitted and stack on one
    node. All operations are deterministic. This is a baseline
    substrate: the probabilistic machinery strictly subsumes what it
    can prune, which the ablation/comparison experiments quantify. *)

type t
type id = int

val create : arity:int -> unit -> t
val arity : t -> int
val size : t -> int
(** Number of live subscriptions (duplicates counted). *)

val add : t -> Subscription.t -> id
(** Insert; O(edges explored). @raise Invalid_argument on arity
    mismatch. *)

val remove : t -> id -> unit
(** Delete and reconnect predecessors to successors.
    @raise Not_found for unknown ids. *)

val find : t -> id -> Subscription.t
(** @raise Not_found. *)

val roots : t -> (id * Subscription.t) list
(** Maximal elements (not covered by any other), ascending id — what a
    Siena broker forwards. *)

val is_root : t -> id -> bool
(** @raise Not_found. *)

val covered_by_some_root : t -> Subscription.t -> bool
(** Pairwise coverage test against the stored set, walking only the
    roots: true iff some stored subscription covers the argument. *)

val covers : t -> id -> id -> bool
(** Reachability in the covering DAG: does the first subscription
    (transitively) cover the second? @raise Not_found. *)

val iter : t -> f:(id -> Subscription.t -> unit) -> unit
(** All live nodes, ascending id. *)

val validate : t -> bool
(** Structural invariants (edges are real coverings, no self edges,
    roots have no predecessors); for tests. *)

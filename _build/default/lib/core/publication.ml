type t = Point of int array | Box of Subscription.t

let point values =
  if Array.length values = 0 then invalid_arg "Publication.point: empty";
  Point (Array.copy values)

let of_list values = point (Array.of_list values)
let box s = Box s

let arity = function
  | Point values -> Array.length values
  | Box s -> Subscription.arity s

let matches s = function
  | Point values -> Subscription.covers_point s values
  | Box b -> Subscription.covers_sub s b

let to_sub = function
  | Point values -> Subscription.make (Array.map Interval.point values)
  | Box s -> s

let equal a b =
  match (a, b) with
  | Point xs, Point ys -> Array.length xs = Array.length ys && xs = ys
  | Box x, Box y -> Subscription.equal x y
  | Point _, Box _ | Box _, Point _ -> false

let pp ppf = function
  | Point values ->
      Format.fprintf ppf "@[<h>(%a)@]"
        (Format.pp_print_array
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           Format.pp_print_int)
        values
  | Box s -> Format.fprintf ppf "box %a" Subscription.pp s

let to_string p = Format.asprintf "%a" pp p

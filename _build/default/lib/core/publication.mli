(** Publications (Definition 6).

    A publication is normally a point in the attribute space — one value
    per attribute. Following the paper's §1 remark that imprecise data
    sources publish small boxes ("we consider publications also as convex
    polyhedra"), a publication can alternatively be a box; a box
    publication matches a subscription when the subscription covers the
    whole box. *)

type t =
  | Point of int array  (** Exact publication: one value per attribute. *)
  | Box of Subscription.t
      (** Imprecise publication: a small hyper-rectangle of possible
          values. *)

val point : int array -> t
(** [point values] builds an exact publication. The array is copied.
    @raise Invalid_argument on an empty array. *)

val of_list : int list -> t
(** [of_list values] is [point (Array.of_list values)]. *)

val box : Subscription.t -> t
(** [box s] builds an imprecise publication spanning [s]. *)

val arity : t -> int
(** Number of attributes. *)

val matches : Subscription.t -> t -> bool
(** [matches s p] tests whether subscription [s] matches publication
    [p]: point membership for {!Point}, whole-box coverage for {!Box}.
    Cost O(m). @raise Invalid_argument on an arity mismatch. *)

val to_sub : t -> Subscription.t
(** [to_sub p] views [p] as a (possibly degenerate) rectangle, which is
    how the probabilistic subsumption machinery treats publications when
    deciding whether a set of subscriptions covers one. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

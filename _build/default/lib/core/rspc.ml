type outcome = Not_covered of int array | Probably_covered
type run = { outcome : outcome; iterations : int }

let random_point ~rng s =
  Array.init (Subscription.arity s) (fun j ->
      Prng.in_interval rng (Subscription.range s j))

let escapes p subs =
  Array.for_all (fun si -> not (Subscription.covers_point si p)) subs

let run ~rng ~d ~s subs =
  if d < 0 then invalid_arg "Rspc.run: negative trial budget";
  Array.iter
    (fun si ->
      if Subscription.arity si <> Subscription.arity s then
        invalid_arg "Rspc.run: arity mismatch")
    subs;
  let rec loop i =
    if i >= d then { outcome = Probably_covered; iterations = d }
    else
      let p = random_point ~rng s in
      if escapes p subs then { outcome = Not_covered p; iterations = i + 1 }
      else loop (i + 1)
  in
  loop 0

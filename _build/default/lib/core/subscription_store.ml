type id = int

type policy =
  | No_coverage
  | Pairwise_policy
  | Group_policy of Engine.config

type placement = Active | Covered of id list

type entry = {
  sub : Subscription.t;
  mutable state : placement;
  expires_at : float; (* infinity = no lease *)
}

type stats = {
  added : int;
  dropped_covered : int;
  removed : int;
  promoted : int;
  active_scans : int;
  covered_scans : int;
}

type t = {
  policy : policy;
  arity : int;
  rng : Prng.t;
  entries : (id, entry) Hashtbl.t;
  (* Algorithm 5's multi-level optimization: active coverer ->
     covered subscriptions recorded under it. A publication only tests
     the children of the active subscriptions it matched. *)
  children : (id, id list) Hashtbl.t;
  mutable next_id : id;
  mutable added : int;
  mutable dropped_covered : int;
  mutable removed_count : int;
  mutable promoted_count : int;
  mutable active_scans : int;
  mutable covered_scans : int;
}

let create ?(policy = Group_policy Engine.default_config) ~arity ~seed () =
  if arity < 1 then invalid_arg "Subscription_store.create: arity < 1";
  {
    policy;
    arity;
    rng = Prng.of_int seed;
    entries = Hashtbl.create 64;
    children = Hashtbl.create 64;
    next_id = 0;
    added = 0;
    dropped_covered = 0;
    removed_count = 0;
    promoted_count = 0;
    active_scans = 0;
    covered_scans = 0;
  }

let policy t = t.policy
let arity t = t.arity
let size t = Hashtbl.length t.entries

let fold_entries t ~init ~f =
  (* Ascending-id iteration keeps results deterministic. *)
  let ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) t.entries []
    |> List.sort Int.compare
  in
  List.fold_left (fun acc id -> f acc id (Hashtbl.find t.entries id)) init ids

let active t =
  fold_entries t ~init:[] ~f:(fun acc id e ->
      match e.state with Active -> (id, e.sub) :: acc | Covered _ -> acc)
  |> List.rev

let covered t =
  fold_entries t ~init:[] ~f:(fun acc id e ->
      match e.state with
      | Active -> acc
      | Covered by -> (id, e.sub, by) :: acc)
  |> List.rev

let active_count t =
  fold_entries t ~init:0 ~f:(fun n _ e ->
      match e.state with Active -> n + 1 | Covered _ -> n)

let covered_count t = size t - active_count t

let find t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> e.sub
  | None -> raise Not_found

let is_active t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> (match e.state with Active -> true | Covered _ -> false)
  | None -> raise Not_found

let active_arrays t =
  let pairs = active t in
  ( Array.of_list (List.map fst pairs),
    Array.of_list (List.map snd pairs) )

let link_child t ~coverer ~child =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.children coverer) in
  if not (List.mem child cur) then
    Hashtbl.replace t.children coverer (child :: cur)

let unlink_child t ~coverer ~child =
  match Hashtbl.find_opt t.children coverer with
  | None -> ()
  | Some l -> (
      match List.filter (fun c -> c <> child) l with
      | [] -> Hashtbl.remove t.children coverer
      | l' -> Hashtbl.replace t.children coverer l')

(* Classify a subscription against the current active set according to
   the store policy. *)
let classify t s =
  match t.policy with
  | No_coverage -> Active
  | Pairwise_policy -> (
      let ids, subs = active_arrays t in
      match Pairwise.find_coverer s subs with
      | Some i -> Covered [ ids.(i) ]
      | None -> Active)
  | Group_policy config -> (
      let ids, subs = active_arrays t in
      let report = Engine.check ~config ~rng:t.rng s subs in
      match report.Engine.verdict with
      | Engine.Covered_pairwise row -> Covered [ ids.(row) ]
      | Engine.Covered_probably ->
          (* Record the MCS-reduced candidate set as coverers: exactly
             the subscriptions whose joint cover classified [s]. *)
          let coverers =
            match report.Engine.mcs with
            | Some m -> List.map (fun row -> ids.(row)) m.Mcs.kept
            | None -> Array.to_list ids
          in
          Covered coverers
      | Engine.Not_covered _ -> Active)

let insert t s ~expires_at =
  if Subscription.arity s <> t.arity then
    invalid_arg "Subscription_store.add: arity mismatch";
  if Float.is_nan expires_at then
    invalid_arg "Subscription_store.add_with_expiry: NaN lease";
  let id = t.next_id in
  t.next_id <- id + 1;
  let state = classify t s in
  Hashtbl.replace t.entries id { sub = s; state; expires_at };
  t.added <- t.added + 1;
  (match state with
  | Covered by ->
      t.dropped_covered <- t.dropped_covered + 1;
      List.iter (fun coverer -> link_child t ~coverer ~child:id) by
  | Active -> ());
  (id, state)

let add t s = insert t s ~expires_at:infinity
let add_with_expiry t s ~expires_at = insert t s ~expires_at

let expiry t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> e.expires_at
  | None -> raise Not_found

let remove t id =
  let e =
    match Hashtbl.find_opt t.entries id with
    | Some e -> e
    | None -> raise Not_found
  in
  Hashtbl.remove t.entries id;
  t.removed_count <- t.removed_count + 1;
  match e.state with
  | Covered by ->
      List.iter (fun coverer -> unlink_child t ~coverer ~child:id) by;
      []
  | Active ->
      Hashtbl.remove t.children id;
      (* §5: covered subscriptions that relied on the departed coverer
         must be re-checked and promoted if no longer covered. *)
      let orphans =
        fold_entries t ~init:[] ~f:(fun acc oid oe ->
            match oe.state with
            | Covered by when List.mem id by -> (oid, oe, by) :: acc
            | Covered _ | Active -> acc)
        |> List.rev
      in
      let promoted =
        List.filter_map
          (fun (oid, oe, old_by) ->
            List.iter (fun coverer -> unlink_child t ~coverer ~child:oid) old_by;
            match classify t oe.sub with
            | Active ->
                oe.state <- Active;
                t.promoted_count <- t.promoted_count + 1;
                Some oid
            | Covered by ->
                oe.state <- Covered by;
                List.iter (fun coverer -> link_child t ~coverer ~child:oid) by;
                None)
          orphans
      in
      promoted

let expire t ~now =
  let expired =
    fold_entries t ~init:[] ~f:(fun acc id e ->
        if e.expires_at <= now then (id, e) :: acc else acc)
    |> List.rev
  in
  List.iter
    (fun (id, e) ->
      Hashtbl.remove t.entries id;
      t.removed_count <- t.removed_count + 1;
      match e.state with
      | Covered by ->
          List.iter (fun coverer -> unlink_child t ~coverer ~child:id) by
      | Active -> Hashtbl.remove t.children id)
    expired;
  let expired_active =
    List.filter_map
      (fun (id, e) ->
        match e.state with Active -> Some id | Covered _ -> None)
      expired
  in
  let promoted =
    if expired_active = [] then []
    else
      fold_entries t ~init:[] ~f:(fun acc oid oe ->
          match oe.state with
          | Covered by when List.exists (fun id -> List.mem id by) expired_active
            ->
              (oid, oe, by) :: acc
          | Covered _ | Active -> acc)
      |> List.rev
      |> List.filter_map (fun (oid, oe, old_by) ->
             List.iter
               (fun coverer -> unlink_child t ~coverer ~child:oid)
               old_by;
             match classify t oe.sub with
             | Active ->
                 oe.state <- Active;
                 t.promoted_count <- t.promoted_count + 1;
                 Some oid
             | Covered by ->
                 oe.state <- Covered by;
                 List.iter
                   (fun coverer -> link_child t ~coverer ~child:oid)
                   by;
                 None)
  in
  (List.map fst expired, promoted)

let match_publication t p =
  let hits = ref [] in
  let matched_actives = ref [] in
  fold_entries t ~init:() ~f:(fun () id e ->
      match e.state with
      | Active ->
          t.active_scans <- t.active_scans + 1;
          if Publication.matches e.sub p then begin
            matched_actives := id :: !matched_actives;
            hits := id :: !hits
          end
      | Covered _ -> ());
  (* Multi-level descent: only the covered subscriptions recorded under
     a matched coverer can match (a point in a covered subscription
     lies in one of its coverers). *)
  let tested = Hashtbl.create 16 in
  List.iter
    (fun coverer ->
      List.iter
        (fun child ->
          if not (Hashtbl.mem tested child) then begin
            Hashtbl.replace tested child ();
            t.covered_scans <- t.covered_scans + 1;
            let e = Hashtbl.find t.entries child in
            if Publication.matches e.sub p then hits := child :: !hits
          end)
        (Option.value ~default:[] (Hashtbl.find_opt t.children coverer)))
    !matched_actives;
  List.sort Int.compare !hits

let match_publication_exhaustive t p =
  fold_entries t ~init:[] ~f:(fun acc id e ->
      if Publication.matches e.sub p then id :: acc else acc)
  |> List.sort Int.compare

let validate t =
  let ok = ref true in
  (* Coverer references point at live, active entries; under the
     pairwise policy the recorded coverer really covers. *)
  Hashtbl.iter
    (fun _id e ->
      match e.state with
      | Active -> ()
      | Covered by ->
          if by = [] then ok := false;
          List.iter
            (fun c ->
              match Hashtbl.find_opt t.entries c with
              | Some ce ->
                  (match ce.state with
                  | Active -> ()
                  | Covered _ -> ok := false);
                  (match t.policy with
                  | Pairwise_policy ->
                      if not (Subscription.covers_sub ce.sub e.sub) then
                        ok := false
                  | No_coverage | Group_policy _ -> ())
              | None -> ok := false)
            by)
    t.entries;
  (* The children index is exactly the inverse of the covered-by
     relation. *)
  Hashtbl.iter
    (fun coverer kids ->
      List.iter
        (fun kid ->
          match Hashtbl.find_opt t.entries kid with
          | Some { state = Covered by; _ } ->
              if not (List.mem coverer by) then ok := false
          | Some { state = Active; _ } | None -> ok := false)
        kids)
    t.children;
  Hashtbl.iter
    (fun id e ->
      match e.state with
      | Covered by ->
          List.iter
            (fun c ->
              let kids =
                Option.value ~default:[] (Hashtbl.find_opt t.children c)
              in
              if not (List.mem id kids) then ok := false)
            by
      | Active -> ())
    t.entries;
  !ok

let stats t =
  {
    added = t.added;
    dropped_covered = t.dropped_covered;
    removed = t.removed_count;
    promoted = t.promoted_count;
    active_scans = t.active_scans;
    covered_scans = t.covered_scans;
  }

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed = { state = seed }
let of_int seed = create ~seed:(Int64.of_int seed)
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  (* A second mix decorrelates the child stream from the parent's next
     outputs even for adjacent seeds. *)
  { state = mix seed }

(* Rejection sampling over the top bits keeps the draw exactly uniform
   for any bound, not just powers of two. *)
let int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  let mask = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  if n land (n - 1) = 0 then mask land (n - 1)
  else
    let bucket = max_int / n * n in
    let rec draw v = if v < bucket then v mod n else draw (Int64.to_int (Int64.shift_right_logical (bits64 t) 2)) in
    draw mask

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let in_interval t r = int_in t ~lo:(Interval.lo r) ~hi:(Interval.hi r)

let float t =
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

(** Fast deterministic decisions from sufficient conditions (§4.3).

    Before any probabilistic work, three cheap checks can settle the
    coverage question outright:

    + {b Pairwise subsumption} (Corollary 1): a conflict-table row with
      no defined cells means that single subscription covers [s] — a
      definite YES in O(m·k).
    + {b Polyhedron witness} (Corollary 3): if, after sorting rows by
      defined-cell count, [t_{i_j} >= j] holds for every position, a
      polyhedron witness exists — a definite NO.
    + {b Empty minimized cover set}: if MCS removes every candidate, no
      subset can jointly cover [s] — a definite NO (checked by the
      engine after running MCS; not here). *)

type decision =
  | Covered_pairwise of int
      (** Row index of a subscription that singly covers [s]. *)
  | Not_covered_witness of Witness.polyhedron
      (** Corollary 3 fired and the greedy produced a verified witness. *)
  | Unknown  (** Neither sufficient condition applies. *)

val decide : Conflict_table.t -> decision
(** [decide t] applies checks 1 and 2 in order. A table with zero rows
    yields [Not_covered_witness] with region [s] itself. *)

val covering_rows : Conflict_table.t -> int list
(** All rows that singly cover [s] (Corollary 1), ascending — used by
    the pairwise baseline and the store. *)

val covered_rows : Conflict_table.t -> int list
(** All rows [si] that [s] covers (Corollary 2: every cell defined),
    ascending — candidates for reverse pruning when a new subscription
    swallows old ones. *)

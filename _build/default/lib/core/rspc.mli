(** Random Simple Predicates Cover — the Monte-Carlo core (Algorithm 1).

    RSPC draws up to [d] uniform points inside the tested subscription
    [s]. A point escaping every subscription of the set is a point
    witness: the answer is a definite NO. If all [d] draws land inside
    the union, RSPC answers a probabilistic YES whose error is bounded
    by [(1 − ρw)^d] (Proposition 1). Each trial costs O(m·(k+1)). *)

type outcome =
  | Not_covered of int array
      (** A point witness was found; the array is the witness point. *)
  | Probably_covered
      (** No witness in the trial budget: YES with error ≤ (1−ρw)^d. *)

type run = {
  outcome : outcome;
  iterations : int;
      (** Trials actually performed — [<= d] because a witness stops the
          loop early (this is the "actual iterations" of Figs. 10/11). *)
}

val run :
  rng:Prng.t -> d:int -> s:Subscription.t -> Subscription.t array -> run
(** [run ~rng ~d ~s subs] executes Algorithm 1. [d = 0] answers
    [Probably_covered] in zero iterations (the MCS-emptied case).
    @raise Invalid_argument if [d < 0] or on an arity mismatch. *)

val random_point : rng:Prng.t -> Subscription.t -> int array
(** [random_point ~rng s] draws a uniform point of the box [s] —
    independent uniform draws per attribute (exposed for tests and for
    the matcher's sampling diagnostics). *)

val escapes : int array -> Subscription.t array -> bool
(** [escapes p subs] is true when [p] lies in none of [subs]. *)

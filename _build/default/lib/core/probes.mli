(** Witness-guided deterministic probes — a sound extension of the
    paper's "introduced optimizations" (§4, §6.5).

    Algorithm 2 already identifies, per attribute, the narrowest strip
    of [s] some subscription leaves uncovered; the product of those
    strips is the best guess at a minimal polyhedron witness. Before
    spending random RSPC trials, it is free to {e test} a handful of
    deterministic points derived from that structure: if any is a point
    witness the answer is a definite NO; if none is, nothing is lost —
    the probes are extra evidence only, so the Eq. 1 error bound of the
    subsequent RSPC run is untouched.

    Probe set (bounded by ~3·16·m + 2 points):
    + the centre and lower corner of the min-strip product box;
    + for each attribute and each of its (up to 16 narrowest) distinct
      strips, the strip's boundary points and centre on that attribute
      combined with [s]'s centre elsewhere — a gap confined to one
      attribute is found no matter how the others are covered. *)

val candidate_points : Conflict_table.t -> int array list
(** Deduplicated probe points, all inside [s]. Empty when the table has
    no rows. *)

val try_probes : Conflict_table.t -> int array option
(** First probe that is a point witness (Definition 4), if any. *)

(* Per attribute, the distinct uncovered strips of s (the restricted
   negated predicates), capped so the probe budget stays small. Both
   ends of the width ordering matter: a narrow strip is the likely
   minimal witness, while a wide strip's boundary hugs the edge of the
   subscription that produced it — exactly where an uncovered gap
   hides when many staggered narrow strips exist. *)
let strips_per_end = 8

let distinct_strips t ~attr =
  let k = Conflict_table.rows t in
  let acc = ref [] in
  for row = 0 to k - 1 do
    List.iter
      (fun side ->
        match Conflict_table.strip t ~row ~attr ~side with
        | None -> ()
        | Some strip ->
            if not (List.exists (Interval.equal strip) !acc) then
              acc := strip :: !acc)
      [ Conflict_table.Low; Conflict_table.High ]
  done;
  let sorted =
    List.sort (fun a b -> Int.compare (Interval.width a) (Interval.width b)) !acc
  in
  let n = List.length sorted in
  if n <= 2 * strips_per_end then sorted
  else
    List.filteri (fun i _ -> i < strips_per_end || i >= n - strips_per_end) sorted

let centre r = (Interval.lo r + Interval.hi r) / 2

let candidate_points t =
  if Conflict_table.rows t = 0 then []
  else begin
    let s = Conflict_table.s t in
    let m = Conflict_table.arity t in
    let strips = Array.init m (fun attr -> distinct_strips t ~attr) in
    let s_centre = Array.init m (fun a -> centre (Subscription.range s a)) in
    (* The min-strip product box: Algorithm 2's minimal-witness guess. *)
    let min_strip attr =
      match strips.(attr) with [] -> Subscription.range s attr | x :: _ -> x
    in
    let product_centre = Array.init m (fun a -> centre (min_strip a)) in
    let product_corner = Array.init m (fun a -> Interval.lo (min_strip a)) in
    (* Per strip: its boundary points and centre on that attribute,
       with s's centre elsewhere — a witness hiding in one attribute's
       uncovered range is found regardless of the other attributes. *)
    let per_strip =
      List.concat_map
        (fun attr ->
          List.concat_map
            (fun strip ->
              List.map
                (fun v ->
                  let p = Array.copy s_centre in
                  p.(attr) <- v;
                  p)
                [ Interval.lo strip; centre strip; Interval.hi strip ])
            strips.(attr))
        (List.init m (fun a -> a))
    in
    let all = product_centre :: product_corner :: per_strip in
    (* Deduplicate while keeping order. *)
    let seen = Hashtbl.create 64 in
    List.filter
      (fun p ->
        if Hashtbl.mem seen p then false
        else begin
          Hashtbl.replace seen p ();
          true
        end)
      all
  end

let try_probes t =
  List.find_opt (fun p -> Witness.is_point_witness t p) (candidate_points t)

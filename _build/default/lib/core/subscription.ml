type t = Interval.t array

let make ranges =
  if Array.length ranges = 0 then
    invalid_arg "Subscription.make: empty attribute list";
  Array.copy ranges

let of_list ranges = make (Array.of_list ranges)

let of_bounds bounds =
  of_list (List.map (fun (lo, hi) -> Interval.make ~lo ~hi) bounds)

let arity = Array.length

let range s j =
  if j < 0 || j >= Array.length s then
    invalid_arg (Printf.sprintf "Subscription.range: attribute %d" j);
  s.(j)

let ranges = Array.copy

let constrained s =
  let rec loop j acc =
    if j < 0 then acc
    else loop (j - 1) (if Interval.is_full s.(j) then acc else j :: acc)
  in
  loop (Array.length s - 1) []

let check_arity name a b =
  if Array.length a <> Array.length b then
    invalid_arg
      (Printf.sprintf "Subscription.%s: arity %d vs %d" name (Array.length a)
         (Array.length b))

let covers_point s p =
  check_arity "covers_point" s p;
  let rec loop j =
    j >= Array.length s || (Interval.mem p.(j) s.(j) && loop (j + 1))
  in
  loop 0

let covers_sub outer inner =
  check_arity "covers_sub" outer inner;
  let rec loop j =
    j >= Array.length outer
    || (Interval.subset inner.(j) outer.(j) && loop (j + 1))
  in
  loop 0

let intersects a b =
  check_arity "intersects" a b;
  let rec loop j =
    j >= Array.length a || (Interval.intersects a.(j) b.(j) && loop (j + 1))
  in
  loop 0

let inter a b =
  check_arity "inter" a b;
  let out = Array.make (Array.length a) Interval.full in
  let rec loop j =
    if j >= Array.length a then Some out
    else
      match Interval.inter a.(j) b.(j) with
      | None -> None
      | Some r ->
          out.(j) <- r;
          loop (j + 1)
  in
  loop 0

let hull a b =
  check_arity "hull" a b;
  Array.init (Array.length a) (fun j -> Interval.hull a.(j) b.(j))

let log10_size s =
  Array.fold_left (fun acc r -> acc +. Interval.log10_width r) 0.0 s

let size s = 10.0 ** log10_size s
let equal a b = Array.length a = Array.length b && Array.for_all2 Interval.equal a b

let compare a b =
  let c = Int.compare (Array.length a) (Array.length b) in
  if c <> 0 then c
  else
    let rec loop j =
      if j >= Array.length a then 0
      else match Interval.compare a.(j) b.(j) with 0 -> loop (j + 1) | c -> c
    in
    loop 0

let pp ppf s =
  Format.fprintf ppf "@[<h>{%a}@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf r -> Interval.pp ppf r))
    s

let to_string s = Format.asprintf "%a" pp s

(** Pairwise covering — the deterministic baseline used by Siena-style
    systems and by the paper's §6.4 comparison.

    Pairwise covering only detects [s ⊑ si] for a single [si]; it can
    never recognize group coverage, which is exactly the gap RSPC
    closes. *)

val find_coverer : Subscription.t -> Subscription.t array -> int option
(** [find_coverer s subs] is the index of the first subscription that
    singly covers [s], if any. O(m·k). *)

val coverers : Subscription.t -> Subscription.t array -> int list
(** All indices of subscriptions singly covering [s], ascending. *)

val covered_by_new : Subscription.t -> Subscription.t array -> int list
(** [covered_by_new s subs] lists the indices of existing subscriptions
    that the {e new} subscription [s] covers — the reverse direction,
    used to prune a store when a broader subscription arrives. *)

let recommended_domains () =
  min 8 (max 1 (Domain.recommended_domain_count () - 1))

(* Don't spin up domains for trivially small budgets: spawning costs
   more than a few hundred O(m·k) membership tests. *)
let min_parallel_budget = 2048

let run ?(domains = recommended_domains ()) ~rng ~d ~s subs =
  if domains < 1 then invalid_arg "Rspc_parallel.run: domains < 1";
  if d < 0 then invalid_arg "Rspc_parallel.run: negative trial budget";
  if domains = 1 || d < min_parallel_budget then Rspc.run ~rng ~d ~s subs
  else begin
    let found : int array option Atomic.t = Atomic.make None in
    let total_iterations = Atomic.make 0 in
    let chunk = (d + domains - 1) / domains in
    let rngs = Array.init domains (fun _ -> Prng.split rng) in
    let worker index () =
      let rng = rngs.(index) in
      let budget = min chunk (max 0 (d - (index * chunk))) in
      let performed = ref 0 in
      (try
         for _ = 1 to budget do
           if Atomic.get found <> None then raise Exit;
           incr performed;
           let p = Rspc.random_point ~rng s in
           if Rspc.escapes p subs then begin
             (* First writer wins; losers keep their witness to
                themselves (any witness proves non-coverage). *)
             ignore (Atomic.compare_and_set found None (Some p));
             raise Exit
           end
         done
       with Exit -> ());
      (* Atomic add via CAS loop (no fetch_and_add on int Atomic in
         every stdlib version we target). *)
      let rec bump () =
        let cur = Atomic.get total_iterations in
        if not (Atomic.compare_and_set total_iterations cur (cur + !performed))
        then bump ()
      in
      bump ()
    in
    let spawned =
      Array.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join spawned;
    match Atomic.get found with
    | Some p ->
        { Rspc.outcome = Rspc.Not_covered p;
          iterations = Atomic.get total_iterations }
    | None ->
        { Rspc.outcome = Rspc.Probably_covered;
          iterations = Atomic.get total_iterations }
  end

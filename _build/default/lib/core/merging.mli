(** Subscription merging — the complementary reduction from the related
    work (Crespo et al., Li et al. [8,9] in the paper).

    Merging replaces two subscriptions by one broader one. A {e perfect}
    merge loses nothing: it exists exactly when the two boxes differ on
    at most one attribute and their union is itself a box on that
    attribute (adjacent or overlapping ranges). Imperfect merges take
    the hull and accept false positives — the trade-off the paper
    contrasts with its (false-negative-bounded) probabilistic covering.

    This module exists as a baseline/extension; the paper's algorithms
    never merge. *)

val perfect_merge :
  Subscription.t -> Subscription.t -> Subscription.t option
(** [perfect_merge a b] is the exact union box when it exists: [a] and
    [b] agree on all attributes but at most one, where their ranges
    overlap or are adjacent. Covering pairs ([a ⊑ b] or [b ⊑ a]) merge
    to the larger one. *)

val hull_merge : Subscription.t -> Subscription.t -> Subscription.t
(** The smallest box containing both — always succeeds, may
    over-approximate. *)

val false_positive_log10_volume :
  Subscription.t -> Subscription.t -> float
(** [log10] of the number of points the hull adds beyond the exact
    union — the over-subscription cost of an imperfect merge
    ([neg_infinity] when the merge is perfect). *)

val greedy_reduce : Subscription.t list -> Subscription.t list
(** Repeatedly applies {!perfect_merge} to any mergeable pair until a
    fixpoint; the result represents exactly the same point set. Order
    O(n³) worst case — intended for broker-side batches, not huge
    stores. *)

(** Subscriptions: conjunctions of range predicates (Definition 1).

    A subscription over a schema of [m] attributes is an axis-aligned
    hyper-rectangle: one inclusive interval per attribute. Attributes a
    subscriber does not care about carry the {!Interval.full} range, which
    encodes the paper's [(-inf, +inf)] bounds, so every subscription in a
    store constrains the same [m] attributes (the paper's simplifying
    assumption [m1 = ... = mk = m]). *)

type t
(** An immutable subscription. *)

val make : Interval.t array -> t
(** [make ranges] builds a subscription from one interval per attribute.
    The array is copied. @raise Invalid_argument on an empty array. *)

val of_list : Interval.t list -> t
(** [of_list ranges] is [make (Array.of_list ranges)]. *)

val of_bounds : (int * int) list -> t
(** [of_bounds [(lo1, hi1); ...]] is a convenience constructor.
    @raise Invalid_argument if some [lo > hi]. *)

val arity : t -> int
(** [arity s] is [m], the number of attributes of the schema. *)

val range : t -> int -> Interval.t
(** [range s j] is the constraint on attribute [j] (0-based).
    @raise Invalid_argument if [j] is out of bounds. *)

val ranges : t -> Interval.t array
(** [ranges s] is a fresh copy of all per-attribute constraints. *)

val constrained : t -> int list
(** [constrained s] lists the attributes whose range is not
    {!Interval.full}, in increasing order. *)

val covers_point : t -> int array -> bool
(** [covers_point s p] tests whether the point [p] satisfies every
    predicate of [s]. @raise Invalid_argument on an arity mismatch. *)

val covers_sub : t -> t -> bool
(** [covers_sub outer inner] is the deterministic pairwise check
    [inner ⊑ outer]: every range of [inner] is a subset of the
    corresponding range of [outer]. *)

val intersects : t -> t -> bool
(** [intersects a b] holds when the two rectangles share a point. *)

val inter : t -> t -> t option
(** [inter a b] is the rectangle [a ∩ b], if non-empty. *)

val hull : t -> t -> t
(** [hull a b] is the smallest rectangle containing [a ∪ b]; used by the
    merging baseline. *)

val log10_size : t -> float
(** [log10_size s] is [log10 I(s)] where [I(s)] is the number of integer
    points inside [s] — computed in log-space because [I(s)] overflows
    machine integers already for moderate [m] (see DESIGN §3). *)

val size : t -> float
(** [size s] is [I(s)] as a float; [infinity] when it exceeds the float
    range. Prefer {!log10_size} for arithmetic. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

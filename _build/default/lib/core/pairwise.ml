let find_coverer s subs =
  let k = Array.length subs in
  let rec loop i =
    if i >= k then None
    else if Subscription.covers_sub subs.(i) s then Some i
    else loop (i + 1)
  in
  loop 0

let coverers s subs =
  let acc = ref [] in
  for i = Array.length subs - 1 downto 0 do
    if Subscription.covers_sub subs.(i) s then acc := i :: !acc
  done;
  !acc

let covered_by_new s subs =
  let acc = ref [] in
  for i = Array.length subs - 1 downto 0 do
    if Subscription.covers_sub s subs.(i) then acc := i :: !acc
  done;
  !acc

type polyhedron = {
  region : Subscription.t;
  picks : (int * int * Conflict_table.side) list;
}

let verify t w =
  let s = Conflict_table.s t in
  Subscription.covers_sub s w.region
  && Array.for_all
       (fun si -> not (Subscription.intersects si w.region))
       (Conflict_table.subs t)

(* Greedy construction from the Corollary 3 proof: keep a running box
   (initially s); for each row, shrink the box by one of the row's
   negated predicates, preferring the cell that leaves the box largest
   on its attribute. Each cell touches a single attribute, so the
   region stays an axis-aligned box throughout. *)
let find_polyhedron t =
  let k = Conflict_table.rows t in
  let s = Conflict_table.s t in
  if k = 0 then
    Some { region = s; picks = [] }
  else begin
    let order = Array.init k (fun i -> i) in
    Array.sort
      (fun a b ->
        Int.compare
          (Conflict_table.defined_count t ~row:a)
          (Conflict_table.defined_count t ~row:b))
      order;
    let region = Subscription.ranges s in
    let picks = ref [] in
    let ok = ref true in
    Array.iter
      (fun row ->
        if !ok then begin
          (* Pick the defined cell whose strip keeps the current region
             widest; skip cells that would empty it. *)
          let best = ref None in
          let consider ~attr ~side =
            match Conflict_table.strip t ~row ~attr ~side with
            | None -> ()
            | Some strip -> (
                match Interval.inter strip region.(attr) with
                | None -> ()
                | Some cut ->
                    let w = Interval.width cut in
                    (match !best with
                    | Some (_, _, _, best_w) when best_w >= w -> ()
                    | _ -> best := Some (attr, side, cut, w)))
          in
          for attr = 0 to Conflict_table.arity t - 1 do
            consider ~attr ~side:Conflict_table.Low;
            consider ~attr ~side:Conflict_table.High
          done;
          match !best with
          | None -> ok := false
          | Some (attr, side, cut, _) ->
              region.(attr) <- cut;
              picks := (row, attr, side) :: !picks
        end)
      order;
    if not !ok then None
    else
      let w = { region = Subscription.make region; picks = List.rev !picks } in
      (* The greedy is sound by construction; the explicit check guards
         against regressions. *)
      assert (verify t w);
      Some w
  end

let corollary3_holds t =
  let k = Conflict_table.rows t in
  if k = 0 then true
  else begin
    let counts =
      Array.init k (fun row -> Conflict_table.defined_count t ~row)
    in
    Array.sort Int.compare counts;
    let rec loop j = j >= k || (counts.(j) >= j + 1 && loop (j + 1)) in
    loop 0
  end

let point_of w = Array.map Interval.lo (Subscription.ranges w.region)

let is_point_witness t p =
  Subscription.covers_point (Conflict_table.s t) p
  && Array.for_all
       (fun si -> not (Subscription.covers_point si p))
       (Conflict_table.subs t)

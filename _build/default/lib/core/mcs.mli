(** Minimized Cover Set (Algorithm 3, Proposition 4).

    MCS shrinks the subscription set against which [s] must be checked
    to a non-reducible core, without changing the answer to the group
    coverage question. A row [i] is redundant and removed when

    - [fc_i >= 1]: some defined cell of the row is {e conflict-free}
      (conflicts with no defined cell of any other live row) — any
      witness avoiding the other rows can be extended through that cell,
      so row [i] can never be the reason [s] is covered; or
    - [t_i >= k]: the row has at least as many defined cells as there
      are live rows, so a cell of row [i] always survives the at-most-one
      conflict each other row can impose.

    Removals repeat until a fixpoint. The paper bounds the cost by
    O(m²k³); this implementation exploits that conflicts only occur
    between a [x_j < a] cell and a [x_j > b] cell of the same attribute,
    reducing a sweep to O(m·k) via per-attribute top-2 extrema, i.e.
    O(m·k²) total in the worst case.

    (The paper's Algorithm 3 line 7 reads "fci >= 0"; that is a typo for
    [fci >= 1] — Proposition 4 and the worked example both use >= 1.) *)

type result = {
  kept : int list;  (** Surviving row indices, ascending. *)
  removed : int list;  (** Removed row indices, in removal order. *)
  sweeps : int;  (** Number of repeat-until passes executed. *)
  removed_conflict_free : int;  (** Removals triggered by [fc_i >= 1]. *)
  removed_row_count : int;  (** Removals triggered by [t_i >= k]. *)
}

val run : Conflict_table.t -> result
(** [run t] computes the minimized cover set of the table's rows. *)

val reduced_subs : Conflict_table.t -> result -> Subscription.t array
(** The surviving subscriptions, in row order. *)

val conflict_free_count : Conflict_table.t -> alive:bool array -> row:int -> int
(** [fc_i] for one row, counting conflicts only against [alive] rows —
    the O(m·k) reference definition, exposed for tests that validate the
    optimized sweep against it. *)

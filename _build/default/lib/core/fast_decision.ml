type decision =
  | Covered_pairwise of int
  | Not_covered_witness of Witness.polyhedron
  | Unknown

let covering_rows t =
  let acc = ref [] in
  for row = Conflict_table.rows t - 1 downto 0 do
    if Conflict_table.row_all_undefined t ~row then acc := row :: !acc
  done;
  !acc

let covered_rows t =
  let acc = ref [] in
  for row = Conflict_table.rows t - 1 downto 0 do
    if Conflict_table.row_all_defined t ~row then acc := row :: !acc
  done;
  !acc

let decide t =
  match covering_rows t with
  | row :: _ -> Covered_pairwise row
  | [] ->
      if Witness.corollary3_holds t then
        match Witness.find_polyhedron t with
        | Some w -> Not_covered_witness w
        | None ->
            (* Corollary 3 guarantees the greedy succeeds; reaching here
               would be a bug, but degrade gracefully rather than abort. *)
            Unknown
      else Unknown

type result = {
  kept : int list;
  removed : int list;
  sweeps : int;
  removed_conflict_free : int;
  removed_row_count : int;
}

(* Reference O(m·k) per-row definition, used by tests and as
   documentation of what the optimized sweep computes. *)
let conflict_free_count t ~alive ~row =
  let k = Conflict_table.rows t in
  let count = ref 0 in
  let cell_is_conflict_free ~attr ~side =
    let conflicting = ref false in
    for other = 0 to k - 1 do
      if alive.(other) && other <> row && not !conflicting then
        List.iter
          (fun side2 ->
            if
              Conflict_table.cells_conflict t ~row1:row ~attr1:attr ~side1:side
                ~row2:other ~attr2:attr ~side2
            then conflicting := true)
          [ Conflict_table.Low; Conflict_table.High ]
    done;
    not !conflicting
  in
  Conflict_table.fold_defined t ~row ~init:()
    ~f:(fun () ~attr ~side ~bound:_ ->
      if cell_is_conflict_free ~attr ~side then incr count);
  !count

(* Per-attribute extrema of live strips. A Low cell's strip is a prefix
   [s.lo, ub]; a High cell's strip is a suffix [lb, s.hi]. Cells
   conflict iff ub < lb, so a Low cell is conflict-free iff the largest
   lb among *other* live rows is <= its ub, and dually for High cells.
   Keeping the top two extrema lets us exclude the row's own cell. *)
type extrema = {
  mutable max1_lb : int;
  mutable max1_row : int;
  mutable max2_lb : int;
  mutable min1_ub : int;
  mutable min1_row : int;
  mutable min2_ub : int;
}

let fresh_extrema () =
  {
    max1_lb = min_int;
    max1_row = -1;
    max2_lb = min_int;
    min1_ub = max_int;
    min1_row = -1;
    min2_ub = max_int;
  }

let note_high e ~row ~lb =
  if lb > e.max1_lb then begin
    e.max2_lb <- e.max1_lb;
    e.max1_lb <- lb;
    e.max1_row <- row
  end
  else if lb > e.max2_lb then e.max2_lb <- lb

let note_low e ~row ~ub =
  if ub < e.min1_ub then begin
    e.min2_ub <- e.min1_ub;
    e.min1_ub <- ub;
    e.min1_row <- row
  end
  else if ub < e.min2_ub then e.min2_ub <- ub

let max_lb_excluding e row = if e.max1_row = row then e.max2_lb else e.max1_lb
let min_ub_excluding e row = if e.min1_row = row then e.min2_ub else e.min1_ub

let run t =
  let k = Conflict_table.rows t in
  let m = Conflict_table.arity t in
  let alive = Array.make k true in
  let alive_count = ref k in
  let removed = ref [] in
  let removed_conflict_free = ref 0 in
  let removed_row_count = ref 0 in
  let sweeps = ref 0 in
  let strip_bounds row attr side =
    match Conflict_table.strip t ~row ~attr ~side with
    | None -> None
    | Some s -> Some (Interval.lo s, Interval.hi s)
  in
  let changed = ref true in
  while !changed && !alive_count > 0 do
    changed := false;
    incr sweeps;
    (* Pass 1: per-attribute extrema over live rows. *)
    let stats = Array.init m (fun _ -> fresh_extrema ()) in
    for row = 0 to k - 1 do
      if alive.(row) then
        for attr = 0 to m - 1 do
          (match strip_bounds row attr Conflict_table.Low with
          | Some (_, ub) -> note_low stats.(attr) ~row ~ub
          | None -> ());
          match strip_bounds row attr Conflict_table.High with
          | Some (lb, _) -> note_high stats.(attr) ~row ~lb
          | None -> ()
        done
    done;
    (* Pass 2: remove redundant rows. Extrema are from the sweep start,
       which is conservative (a removal only makes more cells
       conflict-free); the outer fixpoint loop picks up the rest. *)
    for row = 0 to k - 1 do
      if alive.(row) then begin
        let has_conflict_free = ref false in
        for attr = 0 to m - 1 do
          if not !has_conflict_free then begin
            (match strip_bounds row attr Conflict_table.Low with
            | Some (_, ub) ->
                if max_lb_excluding stats.(attr) row <= ub then
                  has_conflict_free := true
            | None -> ());
            match strip_bounds row attr Conflict_table.High with
            | Some (lb, _) ->
                if min_ub_excluding stats.(attr) row >= lb then
                  has_conflict_free := true
            | None -> ()
          end
        done;
        let ti = Conflict_table.defined_count t ~row in
        if !has_conflict_free || ti >= !alive_count then begin
          alive.(row) <- false;
          decr alive_count;
          removed := row :: !removed;
          if !has_conflict_free then incr removed_conflict_free
          else incr removed_row_count;
          changed := true
        end
      end
    done
  done;
  let kept = ref [] in
  for row = k - 1 downto 0 do
    if alive.(row) then kept := row :: !kept
  done;
  {
    kept = !kept;
    removed = List.rev !removed;
    sweeps = !sweeps;
    removed_conflict_free = !removed_conflict_free;
    removed_row_count = !removed_row_count;
  }

let reduced_subs t result =
  let subs = Conflict_table.subs t in
  Array.of_list (List.map (fun row -> subs.(row)) result.kept)

type spec =
  | Int_range of { lo : int; hi : int }
  | Enum of string list
  | Flag
  | Minutes

type field = { name : string; spec : spec; index : int }

type t = {
  by_order : field array;
  by_name : (string, field) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)
(* Calendar arithmetic: days since 2000-03-01 via the standard
   civil-date algorithm (era = 400-year cycle), shifted to a
   2000-01-01 epoch. Proleptic Gregorian. *)

let days_from_civil ~y ~m ~d =
  let y = if m <= 2 then y - 1 else y in
  let era = (if y >= 0 then y else y - 399) / 400 in
  let yoe = y - (era * 400) in
  let mp = (m + 9) mod 12 in
  let doy = (((153 * mp) + 2) / 5) + d - 1 in
  let doe = (yoe * 365) + (yoe / 4) - (yoe / 100) + doy in
  (era * 146097) + doe

let epoch_days = days_from_civil ~y:2000 ~m:1 ~d:1

let civil_from_days days =
  let z = days + 719468 (* days_from_civil is anchored at 0000-03-01 *) in
  let era = (if z >= 0 then z else z - 146096) / 146097 in
  let doe = z - (era * 146097) in
  let yoe = (doe - (doe / 1460) + (doe / 36524) - (doe / 146096)) / 365 in
  let y = yoe + (era * 400) in
  let doy = doe - ((365 * yoe) + (yoe / 4) - (yoe / 100)) in
  let mp = ((5 * doy) + 2) / 153 in
  let d = doy - (((153 * mp) + 2) / 5) + 1 in
  let m = if mp < 10 then mp + 3 else mp - 9 in
  ((if m <= 2 then y + 1 else y), m, d)

(* days_from_civil is anchored so that day 0 = 0000-03-01; align the
   reverse direction with the same anchor. *)
let days_to_civil days = civil_from_days (days - 719468)

let bad_timestamp s =
  invalid_arg (Printf.sprintf "Domain_codec: malformed timestamp %S" s)

let parse_int s ~from ~len =
  let stop = from + len in
  if stop > String.length s then raise Exit;
  let v = ref 0 in
  for i = from to stop - 1 do
    match s.[i] with
    | '0' .. '9' -> v := (!v * 10) + (Char.code s.[i] - Char.code '0')
    | _ -> raise Exit
  done;
  !v

let minutes_of_timestamp s =
  try
    let expect i c = if s.[i] <> c then raise Exit in
    let y = parse_int s ~from:0 ~len:4 in
    expect 4 '-';
    let mo = parse_int s ~from:5 ~len:2 in
    expect 7 '-';
    let d = parse_int s ~from:8 ~len:2 in
    let hh, mm =
      if String.length s = 10 then (0, 0)
      else begin
        expect 10 'T';
        let hh = parse_int s ~from:11 ~len:2 in
        expect 13 ':';
        let mm = parse_int s ~from:14 ~len:2 in
        if String.length s <> 16 then raise Exit;
        (hh, mm)
      end
    in
    if mo < 1 || mo > 12 || d < 1 || d > 31 || hh > 23 || mm > 59 then
      raise Exit;
    let days = days_from_civil ~y ~m:mo ~d - epoch_days in
    (days * 24 * 60) + (hh * 60) + mm
  with Exit | Invalid_argument _ -> bad_timestamp s

let timestamp_of_minutes total =
  let days = if total >= 0 then total / 1440 else (total - 1439) / 1440 in
  let rest = total - (days * 1440) in
  let y, m, d = days_to_civil (days + epoch_days) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d" y m d (rest / 60) (rest mod 60)

(* ------------------------------------------------------------------ *)

let spec_domain = function
  | Int_range { lo; hi } -> Interval.make ~lo ~hi
  | Enum symbols -> Interval.make ~lo:0 ~hi:(List.length symbols - 1)
  | Flag -> Interval.make ~lo:0 ~hi:1
  | Minutes ->
      (* 2000-01-01 .. 2199-12-31, minute granularity. *)
      Interval.make ~lo:0 ~hi:(200 * 366 * 24 * 60)

let validate_spec name = function
  | Int_range { lo; hi } ->
      if lo > hi then
        invalid_arg
          (Printf.sprintf "Domain_codec.make: field %s has lo > hi" name)
  | Enum [] ->
      invalid_arg (Printf.sprintf "Domain_codec.make: field %s: empty enum" name)
  | Enum symbols ->
      if List.length (List.sort_uniq String.compare symbols) <> List.length symbols
      then
        invalid_arg
          (Printf.sprintf "Domain_codec.make: field %s: duplicate symbols" name)
  | Flag | Minutes -> ()

let make fields =
  if fields = [] then invalid_arg "Domain_codec.make: no fields";
  let by_name = Hashtbl.create 16 in
  let by_order =
    Array.of_list
      (List.mapi
         (fun index (name, spec) ->
           if name = "" then invalid_arg "Domain_codec.make: empty field name";
           validate_spec name spec;
           if Hashtbl.mem by_name name then
             invalid_arg
               (Printf.sprintf "Domain_codec.make: duplicate field %s" name);
           let f = { name; spec; index } in
           Hashtbl.replace by_name name f;
           f)
         fields)
  in
  { by_order; by_name }

let arity t = Array.length t.by_order
let fields t = Array.to_list t.by_order |> List.map (fun f -> (f.name, f.spec))

let field t name =
  match Hashtbl.find_opt t.by_name name with
  | Some f -> f
  | None -> raise Not_found

let field_index t name = (field t name).index
let domain t name = spec_domain (field t name).spec

type value = Int of int | Sym of string | Bool of bool | Time of string

let type_error field expected =
  invalid_arg
    (Printf.sprintf "Domain_codec: field %s expects a %s value" field expected)

let encode_field f value =
  match (f.spec, value) with
  | Int_range { lo; hi }, Int v ->
      if v < lo || v > hi then
        invalid_arg
          (Printf.sprintf "Domain_codec: %d outside %s's range [%d, %d]" v
             f.name lo hi);
      v
  | Enum symbols, Sym s -> (
      let rec find i = function
        | [] -> raise Not_found
        | x :: rest -> if String.equal x s then i else find (i + 1) rest
      in
      try find 0 symbols with Not_found -> raise Not_found)
  | Flag, Bool b -> if b then 1 else 0
  | Minutes, Time s -> minutes_of_timestamp s
  | Int_range _, (Sym _ | Bool _ | Time _) -> type_error f.name "integer"
  | Enum _, (Int _ | Bool _ | Time _) -> type_error f.name "symbol"
  | Flag, (Int _ | Sym _ | Time _) -> type_error f.name "boolean"
  | Minutes, (Int _ | Sym _ | Bool _) -> type_error f.name "timestamp"

let encode t ~field:name value = encode_field (field t name) value

let decode t ~field:name code =
  let f = field t name in
  if not (Interval.mem code (spec_domain f.spec)) then
    invalid_arg
      (Printf.sprintf "Domain_codec.decode: %d outside %s's domain" code f.name);
  match f.spec with
  | Int_range _ -> Int code
  | Enum symbols -> Sym (List.nth symbols code)
  | Flag -> Bool (code = 1)
  | Minutes -> Time (timestamp_of_minutes code)

type constr =
  | Any
  | Eq of value
  | Between of value * value
  | At_least of value
  | At_most of value

let constr_interval f constr =
  let dom = spec_domain f.spec in
  match constr with
  | Any -> dom
  | Eq v -> Interval.point (encode_field f v)
  | Between (a, b) ->
      let lo = encode_field f a and hi = encode_field f b in
      if lo > hi then
        invalid_arg
          (Printf.sprintf "Domain_codec: inverted bounds on field %s" f.name);
      Interval.make ~lo ~hi
  | At_least v -> Interval.make ~lo:(encode_field f v) ~hi:(Interval.hi dom)
  | At_most v -> Interval.make ~lo:(Interval.lo dom) ~hi:(encode_field f v)

let subscription t constraints =
  let ranges = Array.map (fun f -> spec_domain f.spec) t.by_order in
  List.iter
    (fun (name, constr) ->
      let f = field t name in
      let range = constr_interval f constr in
      match Interval.inter ranges.(f.index) range with
      | Some r -> ranges.(f.index) <- r
      | None ->
          invalid_arg
            (Printf.sprintf
               "Domain_codec.subscription: empty constraint on field %s" name))
    constraints;
  Subscription.make ranges

let publication t values =
  let point = Array.make (arity t) min_int in
  let seen = Array.make (arity t) false in
  List.iter
    (fun (name, value) ->
      let f = field t name in
      if seen.(f.index) then
        invalid_arg
          (Printf.sprintf "Domain_codec.publication: field %s given twice" name);
      seen.(f.index) <- true;
      point.(f.index) <- encode_field f value)
    values;
  Array.iteri
    (fun i given ->
      if not given then
        invalid_arg
          (Printf.sprintf "Domain_codec.publication: field %s missing"
             t.by_order.(i).name))
    seen;
  Publication.point point

let pp_value ppf = function
  | Int v -> Format.pp_print_int ppf v
  | Sym s -> Format.pp_print_string ppf s
  | Bool b -> Format.pp_print_bool ppf b
  | Time s -> Format.pp_print_string ppf s

let pp_subscription t ppf sub =
  if Subscription.arity sub <> arity t then
    invalid_arg "Domain_codec.pp_subscription: arity mismatch";
  Format.fprintf ppf "@[<hv>{";
  let first = ref true in
  Array.iter
    (fun f ->
      let range = Subscription.range sub f.index in
      let dom = spec_domain f.spec in
      if not (Interval.equal range dom || Interval.is_full range) then begin
        if not !first then Format.fprintf ppf ";@ ";
        first := false;
        let lo = max (Interval.lo range) (Interval.lo dom) in
        let hi = min (Interval.hi range) (Interval.hi dom) in
        if lo = hi then
          Format.fprintf ppf "%s = %a" f.name pp_value (decode t ~field:f.name lo)
        else
          Format.fprintf ppf "%s in [%a, %a]" f.name pp_value
            (decode t ~field:f.name lo)
            pp_value
            (decode t ~field:f.name hi)
      end)
    t.by_order;
  if !first then Format.fprintf ppf "*";
  Format.fprintf ppf "}@]"

type t = {
  arity : int;
  subs : (int, Subscription.t) Hashtbl.t;
  (* Per-subscription number of constrained attributes; subscriptions
     constraining nothing match every publication. *)
  constrained : (int, int) Hashtbl.t;
  mutable indexes : Interval_index.t array;
  dirty : bool array;
}

let create ~arity () =
  if arity < 1 then invalid_arg "Counting_matcher.create: arity < 1";
  {
    arity;
    subs = Hashtbl.create 64;
    constrained = Hashtbl.create 64;
    indexes = Array.make arity Interval_index.empty;
    dirty = Array.make arity true;
  }

let arity t = t.arity
let size t = Hashtbl.length t.subs
let mem t ~id = Hashtbl.mem t.subs id

let add t ~id sub =
  if Subscription.arity sub <> t.arity then
    invalid_arg "Counting_matcher.add: arity mismatch";
  if Hashtbl.mem t.subs id then
    invalid_arg "Counting_matcher.add: duplicate id";
  Hashtbl.replace t.subs id sub;
  let constrained = Subscription.constrained sub in
  Hashtbl.replace t.constrained id (List.length constrained);
  List.iter (fun attr -> t.dirty.(attr) <- true) constrained

let remove t ~id =
  match Hashtbl.find_opt t.subs id with
  | None -> raise Not_found
  | Some sub ->
      Hashtbl.remove t.subs id;
      Hashtbl.remove t.constrained id;
      List.iter (fun attr -> t.dirty.(attr) <- true) (Subscription.constrained sub)

let rebuild_attr t attr =
  let entries =
    Hashtbl.fold
      (fun id sub acc ->
        let range = Subscription.range sub attr in
        if Interval.is_full range then acc else (id, range) :: acc)
      t.subs []
  in
  t.indexes.(attr) <- Interval_index.build entries;
  t.dirty.(attr) <- false

let rebuild t =
  for attr = 0 to t.arity - 1 do
    if t.dirty.(attr) then rebuild_attr t attr
  done

let match_point t p =
  if Array.length p <> t.arity then
    invalid_arg "Counting_matcher.match_point: arity mismatch";
  rebuild t;
  let counts = Hashtbl.create 32 in
  for attr = 0 to t.arity - 1 do
    Interval_index.iter_stab t.indexes.(attr) p.(attr) ~f:(fun id ->
        Hashtbl.replace counts id
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
  done;
  (* A subscription matches when every constrained attribute was hit;
     fully unconstrained subscriptions match by definition. *)
  Hashtbl.fold
    (fun id wanted acc ->
      if wanted = 0 then id :: acc
      else
        match Hashtbl.find_opt counts id with
        | Some got when got = wanted -> id :: acc
        | Some _ | None -> acc)
    t.constrained []
  |> List.sort Int.compare

let match_publication t pub =
  match pub with
  | Publication.Point values -> match_point t values
  | Publication.Box _ ->
      Hashtbl.fold
        (fun id sub acc ->
          if Publication.matches sub pub then id :: acc else acc)
        t.subs []
      |> List.sort Int.compare

type config = {
  delta : float;
  use_fast_decisions : bool;
  use_mcs : bool;
  use_probes : bool;
  max_iterations : int;
}

let default_config =
  {
    delta = 1e-6;
    use_fast_decisions = true;
    use_mcs = true;
    use_probes = false;
    max_iterations = 100_000;
  }

let config ?(delta = default_config.delta)
    ?(use_fast_decisions = default_config.use_fast_decisions)
    ?(use_mcs = default_config.use_mcs)
    ?(use_probes = default_config.use_probes)
    ?(max_iterations = default_config.max_iterations) () =
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Engine.config: delta must lie in (0, 1)";
  if max_iterations < 1 then
    invalid_arg "Engine.config: max_iterations must be >= 1";
  { delta; use_fast_decisions; use_mcs; use_probes; max_iterations }

type reason =
  | Empty_set
  | Polyhedron of Witness.polyhedron
  | Point of int array

type verdict =
  | Covered_pairwise of int
  | Covered_probably
  | Not_covered of reason

type report = {
  verdict : verdict;
  k_initial : int;
  k_reduced : int;
  mcs : Mcs.result option;
  rho : Rho.estimate option;
  log10_d : float option;
  d_used : int;
  iterations : int;
  achieved_delta : float option;
}

let is_covered = function
  | Covered_pairwise _ | Covered_probably -> true
  | Not_covered _ -> false

let base_report ~verdict ~k_initial ~k_reduced =
  {
    verdict;
    k_initial;
    k_reduced;
    mcs = None;
    rho = None;
    log10_d = None;
    d_used = 0;
    iterations = 0;
    achieved_delta = None;
  }

let check ?(config = default_config) ~rng s subs =
  let k_initial = Array.length subs in
  if k_initial = 0 then
    base_report ~verdict:(Not_covered Empty_set) ~k_initial ~k_reduced:0
  else begin
    let table = Conflict_table.build ~s subs in
    let fast =
      if config.use_fast_decisions then Fast_decision.decide table
      else Fast_decision.Unknown
    in
    match fast with
    | Fast_decision.Covered_pairwise row ->
        base_report ~verdict:(Covered_pairwise row) ~k_initial
          ~k_reduced:k_initial
    | Fast_decision.Not_covered_witness w ->
        base_report ~verdict:(Not_covered (Polyhedron w)) ~k_initial
          ~k_reduced:k_initial
    | Fast_decision.Unknown ->
        let mcs_result, reduced_table, reduced_subs =
          if config.use_mcs then begin
            let result = Mcs.run table in
            let reduced = Mcs.reduced_subs table result in
            if List.length result.Mcs.kept = k_initial then
              (Some result, table, subs)
            else (Some result, Conflict_table.build ~s reduced, reduced)
          end
          else (None, table, subs)
        in
        let k_reduced = Array.length reduced_subs in
        if k_reduced = 0 then
          {
            (base_report ~verdict:(Not_covered Empty_set) ~k_initial
               ~k_reduced)
            with mcs = mcs_result;
          }
        else begin
          match
            if config.use_probes then Probes.try_probes reduced_table else None
          with
          | Some p ->
              {
                (base_report ~verdict:(Not_covered (Point p)) ~k_initial
                   ~k_reduced)
                with mcs = mcs_result;
              }
          | None ->
          let rho_estimate = Rho.estimate reduced_table in
          let log10_d = Rho.log10_d rho_estimate ~delta:config.delta in
          let d_used =
            Rho.d_capped rho_estimate ~delta:config.delta
              ~cap:config.max_iterations
          in
          let run = Rspc.run ~rng ~d:d_used ~s reduced_subs in
          let verdict =
            match run.Rspc.outcome with
            | Rspc.Not_covered p -> Not_covered (Point p)
            | Rspc.Probably_covered -> Covered_probably
          in
          let achieved_delta =
            let r = Rho.rho rho_estimate in
            if r >= 1.0 then 0.0
            else exp (float_of_int d_used *. log1p (-.r))
          in
          {
            verdict;
            k_initial;
            k_reduced;
            mcs = mcs_result;
            rho = Some rho_estimate;
            log10_d = Some log10_d;
            d_used;
            iterations = run.Rspc.iterations;
            achieved_delta = Some achieved_delta;
          }
        end
  end

let check_publication ?config ~rng pub subs =
  check ?config ~rng (Publication.to_sub pub) subs

let theoretical_log10_d ?(use_mcs = true) ~delta s subs =
  if Array.length subs = 0 then neg_infinity
  else begin
    let table = Conflict_table.build ~s subs in
    let table =
      if not use_mcs then Some table
      else begin
        let result = Mcs.run table in
        let reduced = Mcs.reduced_subs table result in
        if Array.length reduced = 0 then None
        else Some (Conflict_table.build ~s reduced)
      end
    in
    match table with
    | None -> neg_infinity
    | Some table -> Rho.log10_d (Rho.estimate table) ~delta
  end

let perfect_merge a b =
  if Subscription.arity a <> Subscription.arity b then
    invalid_arg "Merging.perfect_merge: arity mismatch";
  if Subscription.covers_sub a b then Some a
  else if Subscription.covers_sub b a then Some b
  else begin
    let m = Subscription.arity a in
    (* Find the single differing attribute, if any. *)
    let differing = ref [] in
    for j = m - 1 downto 0 do
      if not (Interval.equal (Subscription.range a j) (Subscription.range b j))
      then differing := j :: !differing
    done;
    match !differing with
    | [ j ] ->
        let ra = Subscription.range a j and rb = Subscription.range b j in
        (* The union of two intervals is an interval iff they overlap or
           are adjacent (gap of zero integers between them). *)
        let touching =
          Interval.intersects ra rb
          || Interval.hi ra + 1 = Interval.lo rb
          || Interval.hi rb + 1 = Interval.lo ra
        in
        if touching then begin
          let ranges = Subscription.ranges a in
          ranges.(j) <- Interval.hull ra rb;
          Some (Subscription.make ranges)
        end
        else None
    | _ -> None
  end

let hull_merge = Subscription.hull

(* log10 |hull \ (a ∪ b)| via inclusion-exclusion on exact counts held
   as floats: |hull| - |a| - |b| + |a ∩ b|. Differences of big floats
   lose precision for huge volumes, which is acceptable for a
   diagnostic metric. *)
let false_positive_log10_volume a b =
  let hull = Subscription.hull a b in
  let vol s = Subscription.size s in
  let inter_vol =
    match Subscription.inter a b with None -> 0.0 | Some i -> vol i
  in
  let excess = vol hull -. vol a -. vol b +. inter_vol in
  if excess <= 0.5 then neg_infinity else log10 excess

let greedy_reduce subs =
  let arr = ref (Array.of_list subs) in
  let progress = ref true in
  while !progress do
    progress := false;
    let n = Array.length !arr in
    let merged = ref None in
    (try
       for i = 0 to n - 1 do
         for j = i + 1 to n - 1 do
           match perfect_merge !arr.(i) !arr.(j) with
           | Some u ->
               merged := Some (i, j, u);
               raise Exit
           | None -> ()
         done
       done
     with Exit -> ());
    match !merged with
    | None -> ()
    | Some (i, j, u) ->
        let keep = ref [] in
        Array.iteri
          (fun idx s -> if idx <> i && idx <> j then keep := s :: !keep)
          !arr;
        arr := Array.of_list (u :: List.rev !keep);
        progress := true
  done;
  Array.to_list !arr

(** Typed attribute domains over the integer subscription model.

    The paper's data model (§3) assumes every attribute value is drawn
    from an {e ordered finite set} and works with integer ranges; real
    applications have brands, domain names, timestamps and booleans
    (Tables 1 and 2). A codec maps a named, typed schema onto the
    integer model so that subscriptions and publications can be written
    in application terms and still flow through the unmodified
    subsumption machinery:

    - integers map to themselves (within declared bounds);
    - enumerations map to their declaration order — a {e contiguous}
      run of symbols is a range, so "sizes 17 to 19" works; a
      non-contiguous symbol set is not one conjunction and is rejected
      (split it into several subscriptions, as the model demands);
    - booleans map to 0/1;
    - timestamps ("YYYY-MM-DD" or "YYYY-MM-DDThh:mm") map to minutes
      since 2000-01-01 00:00 (proleptic Gregorian). *)

type spec =
  | Int_range of { lo : int; hi : int }  (** Bounded integer domain. *)
  | Enum of string list  (** Ordered symbols; must be non-empty, distinct. *)
  | Flag  (** Boolean. *)
  | Minutes  (** Timestamps at minute granularity from 2000-01-01. *)

type t
(** An immutable schema of named, typed attributes. *)

val make : (string * spec) list -> t
(** @raise Invalid_argument on duplicate/empty field names, an empty or
    duplicated enum, or an inverted integer range. *)

val arity : t -> int
val fields : t -> (string * spec) list
(** In declaration order. *)

val field_index : t -> string -> int
(** @raise Not_found for unknown fields. *)

val domain : t -> string -> Interval.t
(** The full integer range of one field's domain. *)

type value =
  | Int of int
  | Sym of string
  | Bool of bool
  | Time of string  (** "YYYY-MM-DD" or "YYYY-MM-DDThh:mm". *)

val encode : t -> field:string -> value -> int
(** @raise Not_found for unknown fields or enum symbols;
    @raise Invalid_argument for type mismatches, out-of-range integers
    or malformed timestamps. *)

val decode : t -> field:string -> int -> value
(** Inverse of {!encode} (timestamps decode to the canonical
    "YYYY-MM-DDThh:mm" form). @raise Invalid_argument when the integer
    is outside the field's domain. *)

type constr =
  | Any  (** The field's whole domain. *)
  | Eq of value
  | Between of value * value  (** Inclusive. *)
  | At_least of value
  | At_most of value

val subscription : t -> (string * constr) list -> Subscription.t
(** Unlisted fields are unconstrained ({!Any}). Listing a field twice
    intersects the constraints.
    @raise Invalid_argument if some intersection is empty or a bound
    pair is inverted; @raise Not_found on unknown fields/symbols. *)

val publication : t -> (string * value) list -> Publication.t
(** Every field must be given exactly once (publications are points,
    Definition 6). @raise Invalid_argument otherwise. *)

val pp_subscription : t -> Format.formatter -> Subscription.t -> unit
(** Renders ranges back in application terms (enum symbols, timestamps). *)

(** Timestamp helpers (exposed for tests and workload generators). *)

val minutes_of_timestamp : string -> int
(** @raise Invalid_argument on malformed input. *)

val timestamp_of_minutes : int -> string

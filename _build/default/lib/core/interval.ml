type t = { lo : int; hi : int }

(* Sentinels stay well inside the int range so that [width] and interval
   arithmetic never overflow even when combining two sentinels. *)
let unbounded_lo = -(1 lsl 40)
let unbounded_hi = 1 lsl 40

let make ~lo ~hi =
  if lo > hi then
    invalid_arg (Printf.sprintf "Interval.make: lo %d > hi %d" lo hi);
  { lo; hi }

let make_opt ~lo ~hi = if lo > hi then None else Some { lo; hi }
let point v = { lo = v; hi = v }
let full = { lo = unbounded_lo; hi = unbounded_hi }
let is_full t = t.lo = unbounded_lo && t.hi = unbounded_hi
let lo t = t.lo
let hi t = t.hi
let width t = t.hi - t.lo + 1
let log10_width t = log10 (float_of_int (width t))
let mem v t = t.lo <= v && v <= t.hi
let subset a b = b.lo <= a.lo && a.hi <= b.hi
let intersects a b = a.lo <= b.hi && b.lo <= a.hi

let inter a b =
  let lo = max a.lo b.lo and hi = min a.hi b.hi in
  if lo > hi then None else Some { lo; hi }

let hull a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }
let before a b = a.hi < b.lo
let shift t n = { lo = t.lo + n; hi = t.hi + n }
let clamp t ~within = inter t within
let equal a b = a.lo = b.lo && a.hi = b.hi

let compare a b =
  match Int.compare a.lo b.lo with 0 -> Int.compare a.hi b.hi | c -> c

let pp ppf t =
  if is_full t then Format.fprintf ppf "[*]"
  else Format.fprintf ppf "[%d, %d]" t.lo t.hi

let to_string t = Format.asprintf "%a" pp t

type estimate = {
  log10_witness_size : float;
  log10_s_size : float;
  log10_rho : float;
}

(* Algorithm 2: I(sw) is approximated per attribute by the minimum,
   over all defined cells on that attribute, of the width of the strip
   of s the cell leaves uncovered; attributes with no defined cell
   contribute s's full width. *)
let estimate t =
  let s = Conflict_table.s t in
  let m = Conflict_table.arity t in
  let k = Conflict_table.rows t in
  let log10_s_size = Subscription.log10_size s in
  let log10_witness_size = ref 0.0 in
  for attr = 0 to m - 1 do
    let min_width = ref (Interval.width (Subscription.range s attr)) in
    for row = 0 to k - 1 do
      let consider side =
        match Conflict_table.strip t ~row ~attr ~side with
        | None -> ()
        | Some strip -> min_width := min !min_width (Interval.width strip)
      in
      consider Conflict_table.Low;
      consider Conflict_table.High
    done;
    log10_witness_size :=
      !log10_witness_size +. log10 (float_of_int !min_width)
  done;
  let log10_witness_size = !log10_witness_size in
  {
    log10_witness_size;
    log10_s_size;
    log10_rho = min 0.0 (log10_witness_size -. log10_s_size);
  }

let rho e = 10.0 ** e.log10_rho

let check_delta delta =
  if not (delta > 0.0 && delta < 1.0) then
    invalid_arg "Rho: delta must lie in (0, 1)"

let d_of_rho ~rho ~delta =
  check_delta delta;
  if rho >= 1.0 then 1.0
  else if rho <= 0.0 then infinity
  else Float.ceil (log delta /. log1p (-.rho))

let log10_d e ~delta =
  check_delta delta;
  let r = rho e in
  if r > 1e-12 then log10 (d_of_rho ~rho:r ~delta)
  else
    (* d ≈ -ln δ / ρ for tiny ρ; both factors handled in log space. *)
    log10 (-.log delta) -. e.log10_rho

let d_capped e ~delta ~cap =
  let d = d_of_rho ~rho:(rho e) ~delta in
  if d <= float_of_int cap then max 1 (int_of_float d) else cap

(** Inclusive integer intervals [{!lo}, {!hi}].

    Intervals are the atomic building block of the subscription model:
    every simple predicate of the paper constrains one attribute to a
    range [lo <= x_j <= hi] (Definition 1). Attribute domains are ordered
    finite sets, so integer end points are fully general. *)

type t = private { lo : int; hi : int }
(** An inclusive, non-empty interval. The invariant [lo <= hi] is
    enforced by the constructors; empty ranges are represented by
    [option] at the operation level, never by an inverted interval. *)

val unbounded_lo : int
(** Sentinel used for "no lower bound". Far from [min_int] so that
    width computations never overflow. *)

val unbounded_hi : int
(** Sentinel used for "no upper bound". *)

val make : lo:int -> hi:int -> t
(** [make ~lo ~hi] builds the interval [lo, hi].
    @raise Invalid_argument if [lo > hi]. *)

val make_opt : lo:int -> hi:int -> t option
(** Like {!make} but returns [None] for an empty range. *)

val point : int -> t
(** [point v] is the degenerate interval [v, v]. *)

val full : t
(** The whole (sentinel-bounded) attribute domain: an attribute that the
    subscription leaves unconstrained. *)

val is_full : t -> bool
(** [is_full t] holds when both end points are the unbounded sentinels. *)

val lo : t -> int
val hi : t -> int

val width : t -> int
(** [width t] is the number of integer points, [hi - lo + 1]. *)

val log10_width : t -> float
(** [log10_width t] is [log10 (width t)] computed without overflow; used
    for the log-space size arithmetic of {!Rho}. *)

val mem : int -> t -> bool
(** [mem v t] tests [lo <= v <= hi]. *)

val subset : t -> t -> bool
(** [subset a b] holds when every point of [a] lies in [b]. *)

val intersects : t -> t -> bool
(** [intersects a b] holds when [a] and [b] share at least one point. *)

val inter : t -> t -> t option
(** [inter a b] is the common part of [a] and [b], if non-empty. *)

val hull : t -> t -> t
(** [hull a b] is the smallest interval containing both [a] and [b]. *)

val before : t -> t -> bool
(** [before a b] holds when [a] lies entirely below [b] ([a.hi < b.lo]). *)

val shift : t -> int -> t
(** [shift t n] translates both end points by [n]. *)

val clamp : t -> within:t -> t option
(** [clamp t ~within] is [inter t within]; a readability alias for
    restricting a range to a domain. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

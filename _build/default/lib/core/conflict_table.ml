type side = Low | High
type cell = Undefined | Defined of { side : side; bound : int }

type t = {
  s : Subscription.t;
  subs : Subscription.t array;
  cells : cell array array; (* k rows, 2m columns; column 2j = Low, 2j+1 = High *)
  counts : int array; (* t_i per row *)
}

let column ~attr ~side = (2 * attr) + match side with Low -> 0 | High -> 1

let build ~s subs =
  let m = Subscription.arity s in
  Array.iter
    (fun si ->
      if Subscription.arity si <> m then
        invalid_arg "Conflict_table.build: arity mismatch")
    subs;
  let k = Array.length subs in
  let cells = Array.make_matrix k (2 * m) Undefined in
  let counts = Array.make k 0 in
  for i = 0 to k - 1 do
    let si = subs.(i) in
    for j = 0 to m - 1 do
      let rs = Subscription.range s j and ri = Subscription.range si j in
      (* s ∧ (x_j < lo_i^j) is satisfiable iff s reaches below si's lower
         bound on attribute j. *)
      if Interval.lo rs < Interval.lo ri then begin
        cells.(i).(column ~attr:j ~side:Low) <-
          Defined { side = Low; bound = Interval.lo ri };
        counts.(i) <- counts.(i) + 1
      end;
      if Interval.hi rs > Interval.hi ri then begin
        cells.(i).(column ~attr:j ~side:High) <-
          Defined { side = High; bound = Interval.hi ri };
        counts.(i) <- counts.(i) + 1
      end
    done
  done;
  { s; subs; cells; counts }

let s t = t.s
let subs t = t.subs
let rows t = Array.length t.subs
let arity t = Subscription.arity t.s

let cell t ~row ~attr ~side =
  if row < 0 || row >= rows t then invalid_arg "Conflict_table.cell: row";
  if attr < 0 || attr >= arity t then invalid_arg "Conflict_table.cell: attr";
  t.cells.(row).(column ~attr ~side)

let defined_count t ~row =
  if row < 0 || row >= rows t then
    invalid_arg "Conflict_table.defined_count: row";
  t.counts.(row)

let row_all_undefined t ~row = defined_count t ~row = 0
let row_all_defined t ~row = defined_count t ~row = 2 * arity t

let strip t ~row ~attr ~side =
  match cell t ~row ~attr ~side with
  | Undefined -> None
  | Defined { side; bound } -> (
      let rs = Subscription.range t.s attr in
      match side with
      | Low ->
          (* points of s with x < bound: [s.lo, min (s.hi, bound - 1)] *)
          Interval.make_opt ~lo:(Interval.lo rs)
            ~hi:(min (Interval.hi rs) (bound - 1))
      | High ->
          Interval.make_opt
            ~lo:(max (Interval.lo rs) (bound + 1))
            ~hi:(Interval.hi rs))

let cells_conflict t ~row1 ~attr1 ~side1 ~row2 ~attr2 ~side2 =
  if row1 = row2 || attr1 <> attr2 then false
  else
    match
      (strip t ~row:row1 ~attr:attr1 ~side:side1,
       strip t ~row:row2 ~attr:attr2 ~side:side2)
    with
    | Some a, Some b -> not (Interval.intersects a b)
    | None, _ | _, None -> false

let fold_defined t ~row ~init ~f =
  if row < 0 || row >= rows t then
    invalid_arg "Conflict_table.fold_defined: row";
  let acc = ref init in
  for attr = 0 to arity t - 1 do
    (match t.cells.(row).(column ~attr ~side:Low) with
    | Defined { bound; _ } -> acc := f !acc ~attr ~side:Low ~bound
    | Undefined -> ());
    match t.cells.(row).(column ~attr ~side:High) with
    | Defined { bound; _ } -> acc := f !acc ~attr ~side:High ~bound
    | Undefined -> ()
  done;
  !acc

let pp ppf t =
  let m = arity t in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "s = %a@," Subscription.pp t.s;
  for i = 0 to rows t - 1 do
    Format.fprintf ppf "s%d:" (i + 1);
    for j = 0 to m - 1 do
      (match t.cells.(i).(column ~attr:j ~side:Low) with
      | Undefined -> Format.fprintf ppf " x%d:undef" j
      | Defined { bound; _ } -> Format.fprintf ppf " x%d<%d" j bound);
      match t.cells.(i).(column ~attr:j ~side:High) with
      | Undefined -> Format.fprintf ppf " x%d:undef" j
      | Defined { bound; _ } -> Format.fprintf ppf " x%d>%d" j bound
    done;
    if i < rows t - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"

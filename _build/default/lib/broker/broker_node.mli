(** A single broker implementing covering-based reverse path forwarding
    (§2), with the coverage policy applied {e per outgoing neighbour}:
    a subscription is forwarded to neighbour [N] unless the set of
    subscriptions already sent to [N] covers it — exactly the paper's
    Fig. 1 walk-through, where B4 withholds [s2] from B5/B7 (it sent
    them the covering [s1]) but still forwards it to B3 ([s1] came {e
    from} B3).

    The broker is a pure-ish state machine: {!handle} consumes a
    message and returns the actions the network layer must perform
    (forwards and client notifications). This keeps brokers
    independently testable without a simulator. *)

open Probsub_core

type t

type action =
  | Forward of { to_ : Topology.broker; payload : Message.payload }
  | Notify of { client : int; key : int; pub_id : int }
      (** Deliver publication [pub_id] to a local [client] whose
          subscription [key] matched. *)

val create :
  ?use_advertisements:bool -> id:Topology.broker ->
  neighbors:Topology.broker list -> policy:Subscription_store.policy ->
  arity:int -> seed:int -> unit -> t
(** One coverage-checking store per outgoing neighbour plus a local
    routing store (the received table of Algorithm 5). With
    [use_advertisements] (default false), subscriptions are only
    forwarded towards neighbours from which an intersecting
    advertisement arrived — Siena-style advertisement routing; when a
    new advertisement opens a route, pending subscriptions are offered
    along it retroactively. *)

val id : t -> Topology.broker

val handle : t -> origin:Message.origin -> Message.payload -> action list
(** Process one message:

    - [Subscribe]: record in the routing table (duplicates from other
      paths are dropped); for each neighbour other than the origin,
      forward unless that neighbour's sent-set covers the subscription.
    - [Unsubscribe]: drop from the routing table; per neighbour, an
      unsubscribe forward is emitted only if the subscription had
      actually been sent there, and any subscriptions whose cover it
      provided are promoted — i.e. (re)sent (§5).
    - [Advertise]: record and flood; in advertisement mode, offer
      intersecting known subscriptions towards the link it came from.
    - [Unadvertise]: drop and flood. Subscriptions already routed along
      the perished path are left in place (they are harmless and will
      age out with their own unsubscriptions).
    - [Publish]: match against the routing table (Algorithm 5
      two-level matching); notify matching local clients and forward
      towards every neighbour that sent a matching subscription,
      except the link it arrived on. Duplicate publication ids are
      dropped. *)

val knows_subscription : t -> key:int -> bool
(** True when [key] is in the routing table. *)

val knows_advertisement : t -> key:int -> bool

val routing_table_size : t -> int
(** Live entries in the routing table. *)

val active_towards : t -> neighbor:Topology.broker -> int
(** Subscriptions actually sent (active) towards a neighbour — the
    per-link subscription state whose growth the covering machinery
    bounds. @raise Invalid_argument for a non-neighbour. *)

val suppressed_towards : t -> neighbor:Topology.broker -> int
(** Subscriptions withheld from a neighbour by covering. *)

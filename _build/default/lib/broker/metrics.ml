type t = {
  mutable subscribe_msgs : int;
  mutable unsubscribe_msgs : int;
  mutable advertise_msgs : int;
  mutable publish_msgs : int;
  mutable notifications : int;
  mutable suppressed_subscriptions : int;
  mutable duplicate_drops : int;
}

let create () =
  {
    subscribe_msgs = 0;
    unsubscribe_msgs = 0;
    advertise_msgs = 0;
    publish_msgs = 0;
    notifications = 0;
    suppressed_subscriptions = 0;
    duplicate_drops = 0;
  }

let reset t =
  t.subscribe_msgs <- 0;
  t.unsubscribe_msgs <- 0;
  t.advertise_msgs <- 0;
  t.publish_msgs <- 0;
  t.notifications <- 0;
  t.suppressed_subscriptions <- 0;
  t.duplicate_drops <- 0

let total_messages t =
  t.subscribe_msgs + t.unsubscribe_msgs + t.advertise_msgs + t.publish_msgs

let pp ppf t =
  Format.fprintf ppf
    "@[<v>subscribe msgs:  %d@,unsubscribe msgs: %d@,advertise msgs:  %d@,\
     publish msgs:    %d@,notifications:   %d@,suppressed subs: %d@,\
     duplicate drops: %d@]"
    t.subscribe_msgs t.unsubscribe_msgs t.advertise_msgs t.publish_msgs
    t.notifications t.suppressed_subscriptions t.duplicate_drops

(** The discrete-event broker-network simulator.

    Wraps a {!Topology.t} worth of {!Broker_node.t}s around an
    {!Event_queue.t}: every link traversal costs [link_latency]
    simulated time; actions returned by a broker are scheduled as
    future deliveries. Client operations ({!subscribe}, {!publish},
    {!unsubscribe}) enqueue at the current simulation time; {!run}
    drains the queue to quiescence.

    The network also tracks ground truth: which client subscriptions
    {e should} match each publication, so experiments can quantify the
    deliveries lost to erroneous probabilistic covering (§5). *)

open Probsub_core

type t

type notification = {
  time : float;
  broker : Topology.broker;
  client : int;
  sub_key : int;
  pub_id : int;
}

val create :
  ?policy:Subscription_store.policy -> ?link_latency:float ->
  ?use_advertisements:bool -> topology:Topology.t -> arity:int -> seed:int ->
  unit -> t
(** @raise Invalid_argument if the latency is not positive. Default
    policy: pairwise; default latency 1.0. With [use_advertisements]
    (default false), subscriptions are routed only towards brokers
    whose publishers advertised intersecting content (Siena-style);
    publishers must then {!advertise} before their publications can be
    routed beyond subscribers' own brokers. *)

val topology : t -> Topology.t
val now : t -> float
val metrics : t -> Metrics.t
val broker : t -> Topology.broker -> Broker_node.t
(** Direct access for white-box assertions in tests. *)

val subscribe :
  t -> broker:Topology.broker -> client:int -> Subscription.t -> int
(** Issue a subscription at a broker's local client; returns its
    network-wide key. Takes effect as the queue drains. *)

val unsubscribe : t -> broker:Topology.broker -> key:int -> unit
(** Cancel a subscription previously issued at that broker.
    @raise Invalid_argument if [key] was not issued there. *)

val advertise :
  t -> broker:Topology.broker -> client:int -> Subscription.t -> int
(** Declare a publisher's content box at its broker; returns the
    advertisement key. Only meaningful with [use_advertisements]. *)

val unadvertise : t -> broker:Topology.broker -> client:int -> key:int -> unit

val publish : t -> broker:Topology.broker -> Publication.t -> int
(** Publish at a broker; returns the publication id. *)

val run : t -> unit
(** Drain all scheduled events (to quiescence). *)

val notifications : t -> notification list
(** All client deliveries so far, in delivery order. *)

val expected_recipients : t -> Publication.t -> (Topology.broker * int * int) list
(** Ground truth: [(broker, client, sub_key)] for every live client
    subscription matching the publication — what a loss-free system
    would deliver. *)

val client_subscriptions : t -> (Topology.broker * int * int * Subscription.t) list
(** All live client subscriptions as [(broker, client, key, sub)]. *)

open Probsub_core

let analytic ~n ~rho ~per_check_error =
  if n < 1 then invalid_arg "Chain_model.analytic: n < 1";
  if not (rho >= 0.0 && rho <= 1.0) then
    invalid_arg "Chain_model.analytic: rho outside [0, 1]";
  if not (per_check_error >= 0.0 && per_check_error <= 1.0) then
    invalid_arg "Chain_model.analytic: error outside [0, 1]";
  let factor = (1.0 -. rho) *. (1.0 -. per_check_error) in
  let sum = ref 0.0 in
  let pow = ref 1.0 in
  for _ = 1 to n do
    sum := !sum +. (rho *. !pow);
    pow := !pow *. factor
  done;
  !sum

let analytic_rspc ~n ~rho ~rho_w ~d =
  analytic ~n ~rho ~per_check_error:((1.0 -. rho_w) ** float_of_int d)

type result = {
  trials : int;
  delivered : int;
  no_publication : int;
  measured : float;
  analytic : float;
  mean_reach : float;
}

let simulate ?(stagger_min = 1.0) ?(stagger_spread = 10) rng ~n_brokers ~rho ~m
    ~k ~gap_fraction ~delta ~trials =
  if trials < 1 then invalid_arg "Chain_model.simulate: trials < 1";
  let config = Engine.config ~delta () in
  let delivered = ref 0 in
  let no_publication = ref 0 in
  let total_reach = ref 0 in
  for _ = 1 to trials do
    let instance =
      Probsub_workload.Scenario.extreme_non_cover ~stagger_min ~stagger_spread
        rng ~m ~k ~gap_fraction
    in
    (* Walk the chain: broker i forwards to i+1 unless its (independent)
       probabilistic check claims the set covers s. *)
    let reach = ref 1 in
    let stopped = ref false in
    while (not !stopped) && !reach < n_brokers do
      let report =
        Engine.check ~config ~rng instance.Probsub_workload.Scenario.s
          instance.Probsub_workload.Scenario.set
      in
      if Engine.is_covered report.Engine.verdict then stopped := true
      else incr reach
    done;
    total_reach := !total_reach + !reach;
    (* The publication appears at the first broker that draws heads. *)
    let publisher = ref 0 in
    (try
       for i = 1 to n_brokers do
         if Prng.float rng < rho then begin
           publisher := i;
           raise Exit
         end
       done
     with Exit -> ());
    if !publisher = 0 then incr no_publication
    else if !publisher <= !reach then incr delivered
  done;
  {
    trials;
    delivered = !delivered;
    no_publication = !no_publication;
    measured = float_of_int !delivered /. float_of_int trials;
    analytic = analytic ~n:n_brokers ~rho ~per_check_error:delta;
    mean_reach = float_of_int !total_reach /. float_of_int trials;
  }

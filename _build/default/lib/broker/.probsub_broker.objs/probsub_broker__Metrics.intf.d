lib/broker/metrics.mli: Format

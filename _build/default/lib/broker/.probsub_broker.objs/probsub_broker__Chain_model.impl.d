lib/broker/chain_model.ml: Engine Prng Probsub_core Probsub_workload

lib/broker/trace.ml: Array Buffer Float Fun Hashtbl Interval List Network Option Printf Prng Probsub_core Probsub_workload Publication String Subscription

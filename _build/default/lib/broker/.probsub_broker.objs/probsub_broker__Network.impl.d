lib/broker/network.ml: Array Broker_node Event_queue Hashtbl List Message Metrics Probsub_core Publication Subscription Subscription_store Topology

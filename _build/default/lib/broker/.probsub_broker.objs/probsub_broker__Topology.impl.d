lib/broker/topology.ml: Array Format Hashtbl Int List Prng Probsub_core Queue

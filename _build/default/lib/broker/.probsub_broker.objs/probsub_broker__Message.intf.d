lib/broker/message.mli: Format Probsub_core Topology

lib/broker/metrics.ml: Format

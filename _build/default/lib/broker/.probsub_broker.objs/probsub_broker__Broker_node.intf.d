lib/broker/broker_node.mli: Message Probsub_core Subscription_store Topology

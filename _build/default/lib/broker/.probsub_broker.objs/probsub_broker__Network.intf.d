lib/broker/network.mli: Broker_node Metrics Probsub_core Publication Subscription Subscription_store Topology

lib/broker/message.ml: Format Probsub_core Topology

lib/broker/topology.mli: Format Probsub_core

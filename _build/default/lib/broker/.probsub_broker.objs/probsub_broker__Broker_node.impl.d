lib/broker/broker_node.ml: Hashtbl Int64 List Message Prng Probsub_core Subscription Subscription_store Topology

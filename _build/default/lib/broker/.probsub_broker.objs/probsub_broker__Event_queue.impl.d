lib/broker/event_queue.ml: Array Float

lib/broker/chain_model.mli: Prng Probsub_core

lib/broker/trace.mli: Network Prng Probsub_core Publication Subscription

lib/broker/event_queue.mli:

(** Proposition 5: subscription propagation along a broker chain.

    A new subscription [s], erroneously coverable with per-check error
    [δ' = (1 − ρw)^d], propagates down a chain of [n] brokers; a
    matching publication (matching [s] but no existing subscription)
    appears at broker [Bi] with probability [ρ(1 − ρ)^(i-1)]. Equation 2
    gives the probability the publication is found:

    [P = Σ_{i=1..n} ρ · ((1 − ρ)(1 − (1 − ρw)^d))^(i-1)]

    {!analytic} evaluates the bound; {!simulate} Monte-Carlos the
    actual process, re-running the real engine check at every hop on a
    fresh extreme-non-cover instance, so the measured curve includes
    everything the bound abstracts away (MCS, fast paths, the ρw
    estimate). *)

open Probsub_core

val analytic : n:int -> rho:float -> per_check_error:float -> float
(** Equation 2 with [δ' = per_check_error].
    @raise Invalid_argument unless [n >= 1], [0 <= rho <= 1] and
    [0 <= per_check_error <= 1]. *)

val analytic_rspc : n:int -> rho:float -> rho_w:float -> d:int -> float
(** Equation 2 with [δ' = (1 − rho_w)^d]. *)

type result = {
  trials : int;
  delivered : int;  (** Trials where the publication was found. *)
  no_publication : int;  (** Trials where no broker drew the publication. *)
  measured : float;  (** delivered / trials. *)
  analytic : float;  (** Equation 2 with the configured parameters. *)
  mean_reach : float;  (** Average number of brokers the subscription reached. *)
}

val simulate :
  ?stagger_min:float -> ?stagger_spread:int -> Prng.t -> n_brokers:int ->
  rho:float -> m:int -> k:int -> gap_fraction:float -> delta:float ->
  trials:int -> result
(** Each trial: draw a Scenario 2.c instance (true non-cover with
    [ρw ≈ gap_fraction]); walk the chain, re-checking coverage with the
    engine at every hop (an erroneous probabilistic YES stops
    propagation); draw the publication's broker with per-broker
    probability [rho]; the trial succeeds when the publication lands at
    a broker the subscription reached. *)

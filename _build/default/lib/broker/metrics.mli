(** Network-wide traffic counters. Subscription traffic is the quantity
    the paper's covering machinery reduces; publication losses are the
    price of an erroneous probabilistic cover (Proposition 5). *)

type t = {
  mutable subscribe_msgs : int;  (** Subscribe messages over links. *)
  mutable unsubscribe_msgs : int;
  mutable advertise_msgs : int;
      (** Advertise/unadvertise messages over links. *)
  mutable publish_msgs : int;  (** Publish messages over links. *)
  mutable notifications : int;  (** Client deliveries. *)
  mutable suppressed_subscriptions : int;
      (** Subscribe forwards withheld because of a covering decision. *)
  mutable duplicate_drops : int;
      (** Messages dropped by duplicate suppression (cyclic routes). *)
}

val create : unit -> t
val reset : t -> unit
val total_messages : t -> int
(** Link messages of all kinds (notifications excluded). *)

val pp : Format.formatter -> t -> unit

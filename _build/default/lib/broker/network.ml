open Probsub_core

type notification = {
  time : float;
  broker : Topology.broker;
  client : int;
  sub_key : int;
  pub_id : int;
}

type event = {
  dst : Topology.broker;
  origin : Message.origin;
  payload : Message.payload;
}

type t = {
  topology : Topology.t;
  brokers : Broker_node.t array;
  queue : event Event_queue.t;
  metrics : Metrics.t;
  link_latency : float;
  mutable clock : float;
  mutable next_sub_key : int;
  mutable next_adv_key : int;
  mutable next_pub_id : int;
  mutable notifications : notification list; (* newest first *)
  (* key -> (broker, client, sub); removed on unsubscribe. *)
  client_subs : (int, Topology.broker * int * Subscription.t) Hashtbl.t;
}

let create ?(policy = Subscription_store.Pairwise_policy) ?(link_latency = 1.0)
    ?(use_advertisements = false) ~topology ~arity ~seed () =
  if not (link_latency > 0.0) then
    invalid_arg "Network.create: latency must be positive";
  let brokers =
    Array.init (Topology.size topology) (fun id ->
        Broker_node.create ~use_advertisements ~id
          ~neighbors:(Topology.neighbors topology id)
          ~policy ~arity ~seed ())
  in
  {
    topology;
    brokers;
    queue = Event_queue.create ();
    metrics = Metrics.create ();
    link_latency;
    clock = 0.0;
    next_sub_key = 0;
    next_adv_key = 0;
    next_pub_id = 0;
    notifications = [];
    client_subs = Hashtbl.create 64;
  }

let topology t = t.topology
let now t = t.clock
let metrics t = t.metrics

let broker t b =
  if b < 0 || b >= Array.length t.brokers then
    invalid_arg "Network.broker: unknown broker";
  t.brokers.(b)

let count_link_message t payload =
  match payload with
  | Message.Subscribe _ ->
      t.metrics.Metrics.subscribe_msgs <- t.metrics.Metrics.subscribe_msgs + 1
  | Message.Unsubscribe _ ->
      t.metrics.Metrics.unsubscribe_msgs <-
        t.metrics.Metrics.unsubscribe_msgs + 1
  | Message.Advertise _ | Message.Unadvertise _ ->
      t.metrics.Metrics.advertise_msgs <- t.metrics.Metrics.advertise_msgs + 1
  | Message.Publish _ ->
      t.metrics.Metrics.publish_msgs <- t.metrics.Metrics.publish_msgs + 1

let schedule t ~time event = Event_queue.push t.queue ~time event

let apply_actions t ~time ~at actions =
  List.iter
    (fun action ->
      match action with
      | Broker_node.Forward { to_; payload } ->
          count_link_message t payload;
          schedule t ~time:(time +. t.link_latency)
            { dst = to_; origin = Message.Link at; payload }
      | Broker_node.Notify { client; key; pub_id } ->
          t.metrics.Metrics.notifications <-
            t.metrics.Metrics.notifications + 1;
          t.notifications <-
            { time; broker = at; client; sub_key = key; pub_id }
            :: t.notifications)
    actions

(* Track coverage suppressions: a Subscribe processed at a broker with
   f out-neighbours that emits s < f subscribe forwards withheld f - s
   of them (duplicates emit nothing and are counted separately). *)
let process t ~time event =
  t.clock <- time;
  let node = t.brokers.(event.dst) in
  let duplicate =
    match event.payload with
    | Message.Subscribe { key; _ } -> Broker_node.knows_subscription node ~key
    | Message.Publish _ | Message.Unsubscribe _ | Message.Advertise _
    | Message.Unadvertise _ ->
        false
  in
  let actions = Broker_node.handle node ~origin:event.origin event.payload in
  (match event.payload with
  | Message.Subscribe _ when duplicate ->
      t.metrics.Metrics.duplicate_drops <- t.metrics.Metrics.duplicate_drops + 1
  | Message.Subscribe _ ->
      let out =
        List.length
          (List.filter
             (fun n ->
               match event.origin with
               | Message.Link l -> l <> n
               | Message.Client _ -> true)
             (Topology.neighbors t.topology event.dst))
      in
      let sent =
        List.length
          (List.filter
             (function
               | Broker_node.Forward { payload = Message.Subscribe _; _ } -> true
               | Broker_node.Forward _ | Broker_node.Notify _ -> false)
             actions)
      in
      t.metrics.Metrics.suppressed_subscriptions <-
        t.metrics.Metrics.suppressed_subscriptions + (out - sent)
  | Message.Unsubscribe _ | Message.Publish _ | Message.Advertise _
  | Message.Unadvertise _ ->
      ());
  apply_actions t ~time ~at:event.dst actions

let run t = Event_queue.drain t.queue ~f:(fun ~time e -> process t ~time e)

let subscribe t ~broker:b ~client sub =
  ignore (broker t b);
  let key = t.next_sub_key in
  t.next_sub_key <- key + 1;
  Hashtbl.replace t.client_subs key (b, client, sub);
  schedule t ~time:t.clock
    { dst = b; origin = Message.Client client; payload = Message.Subscribe { key; sub } };
  key

let unsubscribe t ~broker:b ~key =
  (match Hashtbl.find_opt t.client_subs key with
  | Some (home, client, _) when home = b ->
      Hashtbl.remove t.client_subs key;
      schedule t ~time:t.clock
        { dst = b; origin = Message.Client client; payload = Message.Unsubscribe { key } }
  | Some _ -> invalid_arg "Network.unsubscribe: key issued at another broker"
  | None -> invalid_arg "Network.unsubscribe: unknown key")

let advertise t ~broker:b ~client adv =
  ignore (broker t b);
  let key = t.next_adv_key in
  t.next_adv_key <- key + 1;
  schedule t ~time:t.clock
    { dst = b; origin = Message.Client client; payload = Message.Advertise { key; adv } };
  key

let unadvertise t ~broker:b ~client ~key =
  ignore (broker t b);
  schedule t ~time:t.clock
    { dst = b; origin = Message.Client client; payload = Message.Unadvertise { key } }

let publish t ~broker:b pub =
  ignore (broker t b);
  let id = t.next_pub_id in
  t.next_pub_id <- id + 1;
  schedule t ~time:t.clock
    { dst = b; origin = Message.Client (-1); payload = Message.Publish { id; pub } };
  id

let notifications t = List.rev t.notifications

let expected_recipients t pub =
  Hashtbl.fold
    (fun key (b, client, sub) acc ->
      if Publication.matches sub pub then (b, client, key) :: acc else acc)
    t.client_subs []
  |> List.sort compare

let client_subscriptions t =
  Hashtbl.fold
    (fun key (b, client, sub) acc -> (b, client, key, sub) :: acc)
    t.client_subs []
  |> List.sort compare

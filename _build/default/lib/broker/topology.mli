(** Broker-network topologies: undirected connected graphs of broker
    identifiers [0 .. size - 1]. The simulator is topology-agnostic
    (§3: "we are not assuming an underlying network topology"); these
    builders cover the shapes used in the experiments plus the paper's
    Fig. 1 example network. *)

type t

type broker = int

val size : t -> int
val neighbors : t -> broker -> broker list
(** Sorted ascending. @raise Invalid_argument for an unknown broker. *)

val edges : t -> (broker * broker) list
(** Each undirected edge once, as [(min, max)], sorted. *)

val are_linked : t -> broker -> broker -> bool
val is_connected : t -> bool

val of_edges : size:int -> (broker * broker) list -> t
(** @raise Invalid_argument on self-loops, out-of-range endpoints or
    [size <= 0]. Duplicate edges collapse. *)

val chain : int -> t
(** [0 - 1 - 2 - ... - (n-1)] — Proposition 5's setting.
    @raise Invalid_argument if [n <= 0]. *)

val ring : int -> t
(** A chain plus the closing edge. Requires [n >= 3]. *)

val star : int -> t
(** Broker 0 linked to everyone else. Requires [n >= 2]. *)

val full_mesh : int -> t
(** Every pair linked. Requires [n >= 2]. *)

val balanced_tree : branching:int -> depth:int -> t
(** Rooted at 0. [depth 0] is a single node.
    @raise Invalid_argument if [branching <= 0 || depth < 0]. *)

val grid : width:int -> height:int -> t
(** 4-neighbour mesh, row-major numbering. *)

val random_connected : Probsub_core.Prng.t -> n:int -> extra_edges:int -> t
(** A random spanning tree (guaranteeing connectivity) plus
    [extra_edges] additional random non-duplicate edges. *)

val fig1 : t
(** The paper's Fig. 1 nine-broker example (0-based ids: paper's B1 is
    broker 0). Edges: B1-B3, B2-B3, B3-B4, B4-B5, B4-B6, B4-B7, B7-B9,
    B7-B8. The B8 attachment is not fully legible in the paper; hanging
    it off B7 matches the drawn delivery trees. *)

val shortest_path : t -> src:broker -> dst:broker -> broker list
(** BFS path including both end points.
    @raise Not_found if unreachable (cannot happen on connected
    graphs). *)

val diameter : t -> int
(** Longest shortest path, in hops. *)

val pp : Format.formatter -> t -> unit

type origin = Client of int | Link of Topology.broker

type payload =
  | Subscribe of { key : int; sub : Probsub_core.Subscription.t }
  | Unsubscribe of { key : int }
  | Advertise of { key : int; adv : Probsub_core.Subscription.t }
  | Unadvertise of { key : int }
  | Publish of { id : int; pub : Probsub_core.Publication.t }

let origin_equal a b =
  match (a, b) with
  | Client x, Client y -> x = y
  | Link x, Link y -> x = y
  | Client _, Link _ | Link _, Client _ -> false

let pp_origin ppf = function
  | Client c -> Format.fprintf ppf "client %d" c
  | Link b -> Format.fprintf ppf "broker %d" b

let pp_payload ppf = function
  | Subscribe { key; sub } ->
      Format.fprintf ppf "subscribe #%d %a" key Probsub_core.Subscription.pp sub
  | Unsubscribe { key } -> Format.fprintf ppf "unsubscribe #%d" key
  | Advertise { key; adv } ->
      Format.fprintf ppf "advertise #%d %a" key Probsub_core.Subscription.pp adv
  | Unadvertise { key } -> Format.fprintf ppf "unadvertise #%d" key
  | Publish { id; pub } ->
      Format.fprintf ppf "publish #%d %a" id Probsub_core.Publication.pp pub

(** Messages exchanged in the broker network. *)

type origin =
  | Client of int  (** A locally connected client, by client id. *)
  | Link of Topology.broker  (** A neighbouring broker. *)

type payload =
  | Subscribe of { key : int; sub : Probsub_core.Subscription.t }
      (** [key] identifies the subscription network-wide so duplicate
          arrivals over different paths can be suppressed. *)
  | Unsubscribe of { key : int }
  | Advertise of { key : int; adv : Probsub_core.Subscription.t }
      (** A publisher's declaration of the content box it will publish
          into; floods the network so subscriptions can be routed
          toward matching publishers only (Siena-style, §2's "brokers
          that are potential publishers"). *)
  | Unadvertise of { key : int }
  | Publish of { id : int; pub : Probsub_core.Publication.t }
      (** [id] identifies the publication network-wide (duplicate
          suppression on cyclic topologies). *)

val origin_equal : origin -> origin -> bool
val pp_origin : Format.formatter -> origin -> unit
val pp_payload : Format.formatter -> payload -> unit

open Probsub_core

type broker = int
type t = { adj : int list array }

let size t = Array.length t.adj

let neighbors t b =
  if b < 0 || b >= size t then invalid_arg "Topology.neighbors: broker";
  t.adj.(b)

let edges t =
  let acc = ref [] in
  Array.iteri
    (fun u ns -> List.iter (fun v -> if u < v then acc := (u, v) :: !acc) ns)
    t.adj;
  List.sort compare !acc

let are_linked t u v =
  u >= 0 && u < size t && List.mem v t.adj.(u)

let of_edges ~size:n es =
  if n <= 0 then invalid_arg "Topology.of_edges: size <= 0";
  let adj = Array.make n [] in
  List.iter
    (fun (u, v) ->
      if u = v then invalid_arg "Topology.of_edges: self-loop";
      if u < 0 || v < 0 || u >= n || v >= n then
        invalid_arg "Topology.of_edges: endpoint out of range";
      if not (List.mem v adj.(u)) then begin
        adj.(u) <- v :: adj.(u);
        adj.(v) <- u :: adj.(v)
      end)
    es;
  Array.iteri (fun i ns -> adj.(i) <- List.sort Int.compare ns) adj;
  { adj }

let chain n =
  if n <= 0 then invalid_arg "Topology.chain: n <= 0";
  of_edges ~size:n (List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let ring n =
  if n < 3 then invalid_arg "Topology.ring: n < 3";
  of_edges ~size:n ((n - 1, 0) :: List.init (n - 1) (fun i -> (i, i + 1)))

let star n =
  if n < 2 then invalid_arg "Topology.star: n < 2";
  of_edges ~size:n (List.init (n - 1) (fun i -> (0, i + 1)))

let full_mesh n =
  if n < 2 then invalid_arg "Topology.full_mesh: n < 2";
  let es = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      es := (u, v) :: !es
    done
  done;
  of_edges ~size:n !es

let balanced_tree ~branching ~depth =
  if branching <= 0 || depth < 0 then invalid_arg "Topology.balanced_tree";
  (* Nodes numbered breadth-first; node i's children are
     branching*i + 1 .. branching*i + branching while they exist.
     Total nodes of a perfect tree: sum of branching^i for i <= depth. *)
  let n =
    let rec total i acc pow =
      if i > depth then acc else total (i + 1) (acc + pow) (pow * branching)
    in
    total 0 0 1
  in
  let es = ref [] in
  for i = 0 to n - 1 do
    for c = 1 to branching do
      let child = (branching * i) + c in
      if child < n then es := (i, child) :: !es
    done
  done;
  of_edges ~size:n !es

let grid ~width ~height =
  if width <= 0 || height <= 0 then invalid_arg "Topology.grid";
  let id x y = (y * width) + x in
  let es = ref [] in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      if x + 1 < width then es := (id x y, id (x + 1) y) :: !es;
      if y + 1 < height then es := (id x y, id x (y + 1)) :: !es
    done
  done;
  of_edges ~size:(width * height) !es

let random_connected rng ~n ~extra_edges =
  if n <= 0 then invalid_arg "Topology.random_connected: n <= 0";
  (* Random spanning tree: attach each new node to a uniformly chosen
     existing one. *)
  let es = ref [] in
  for v = 1 to n - 1 do
    es := (Prng.int rng v, v) :: !es
  done;
  let have = Hashtbl.create 16 in
  List.iter (fun (u, v) -> Hashtbl.replace have (min u v, max u v) ()) !es;
  let added = ref 0 in
  let guard = ref 0 in
  while !added < extra_edges && !guard < 100 * (extra_edges + 1) do
    incr guard;
    let u = Prng.int rng n and v = Prng.int rng n in
    let key = (min u v, max u v) in
    if u <> v && not (Hashtbl.mem have key) then begin
      Hashtbl.replace have key ();
      es := (u, v) :: !es;
      incr added
    end
  done;
  of_edges ~size:n !es

let fig1 =
  (* Paper broker Bi is node i-1. *)
  of_edges ~size:9
    [ (0, 2); (1, 2); (2, 3); (3, 4); (3, 5); (3, 6); (6, 8); (6, 7) ]

let bfs t src =
  let n = size t in
  let dist = Array.make n (-1) in
  let parent = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          parent.(v) <- u;
          Queue.push v q
        end)
      t.adj.(u)
  done;
  (dist, parent)

let is_connected t =
  let dist, _ = bfs t 0 in
  Array.for_all (fun d -> d >= 0) dist

let shortest_path t ~src ~dst =
  if src < 0 || src >= size t || dst < 0 || dst >= size t then
    invalid_arg "Topology.shortest_path: broker";
  let dist, parent = bfs t src in
  if dist.(dst) < 0 then raise Not_found;
  let rec build v acc = if v = src then src :: acc else build parent.(v) (v :: acc) in
  build dst []

let diameter t =
  let best = ref 0 in
  for src = 0 to size t - 1 do
    let dist, _ = bfs t src in
    Array.iter (fun d -> if d > !best then best := d) dist
  done;
  !best

let pp ppf t =
  Format.fprintf ppf "@[<v>graph with %d brokers:@," (size t);
  List.iter (fun (u, v) -> Format.fprintf ppf "  %d -- %d@," u v) (edges t);
  Format.fprintf ppf "@]"

lib/experiments/fig_covering.mli: Exp_common

lib/experiments/exp_traffic.mli:

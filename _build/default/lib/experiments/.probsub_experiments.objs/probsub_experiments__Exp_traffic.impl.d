lib/experiments/exp_traffic.ml: Array Engine Interval List Metrics Network Printf Prng Probsub_broker Probsub_core Publication Subscription Subscription_store Topology

lib/experiments/exp_matching.mli:

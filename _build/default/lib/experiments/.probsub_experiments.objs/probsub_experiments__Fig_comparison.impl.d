lib/experiments/fig_comparison.ml: Engine Exp_common List Printf Prng Probsub_core Probsub_workload Scenario Subscription_store

lib/experiments/fig_extreme.mli: Exp_common

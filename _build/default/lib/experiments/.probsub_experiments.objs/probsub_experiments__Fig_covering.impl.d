lib/experiments/fig_covering.ml: Array Conflict_table Engine Exp_common List Mcs Printf Prng Probsub_core Probsub_workload Scenario

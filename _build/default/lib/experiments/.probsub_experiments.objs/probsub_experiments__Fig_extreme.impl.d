lib/experiments/fig_extreme.ml: Engine Exp_common List Printf Prng Probsub_core Probsub_workload Scenario

lib/experiments/exp_merging.mli:

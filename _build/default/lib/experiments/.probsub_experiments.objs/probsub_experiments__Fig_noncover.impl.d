lib/experiments/fig_noncover.ml: Conflict_table Engine Exp_common Float List Mcs Printf Prng Probsub_core Probsub_workload Scenario

lib/experiments/exp_ablation.ml: Engine Exp_common List Printf Prng Probsub_core Probsub_workload Scenario Unix

lib/experiments/exp_matching.ml: Array Engine List Printf Prng Probsub_core Probsub_workload Publication Scenario Schema Subscription Subscription_store

lib/experiments/fig_comparison.mli: Exp_common

lib/experiments/exp_scaling.mli: Exp_common

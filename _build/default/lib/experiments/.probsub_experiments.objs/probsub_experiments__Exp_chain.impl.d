lib/experiments/exp_chain.ml: Chain_model Exp_common List Printf Prng Probsub_broker Probsub_core

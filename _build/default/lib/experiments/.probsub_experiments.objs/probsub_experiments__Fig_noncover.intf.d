lib/experiments/fig_noncover.mli: Exp_common

lib/experiments/exp_chain.mli: Exp_common

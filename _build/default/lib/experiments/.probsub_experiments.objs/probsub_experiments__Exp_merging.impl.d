lib/experiments/exp_merging.ml: Engine List Merging Printf Prng Probsub_core Probsub_workload Scenario Subscription_store

lib/experiments/exp_scaling.ml: Engine Exp_common Float List Printf Prng Probsub_core Probsub_workload Scenario Unix

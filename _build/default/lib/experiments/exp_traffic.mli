(** Subscription traffic across topologies and coverage policies.

    §5 observes that "the longer the broker path, the more important is
    the reduction in the global subscription traffic along the path,
    which reflects the local reduction at each broker, exponentially
    amplified in the network diameter". This experiment quantifies it:
    the same subscription stream is injected into networks of equal
    size but different shapes, under the three coverage policies, and
    the link traffic plus delivery losses are measured. *)

type row = {
  topology : string;
  policy : string;
  brokers : int;
  diameter : int;
  subscribe_msgs : int;
  suppressed : int;  (** Forwards withheld by covering. *)
  publish_msgs : int;
  delivered : int;
  lost : int;  (** Deliveries missed vs global ground truth. *)
}

val run :
  ?subs:int -> ?pubs:int -> ?m:int -> seed:int -> unit -> row list
(** Defaults: 120 subscriptions, 60 publications, m = 3. Topologies:
    chain(16), ring(16), star(16), tree(b=2,d=3), grid(4x4),
    random(16, +6 edges). Policies: flooding, pairwise, group
    (δ = 1e-6). *)

val print : row list -> unit

open Probsub_core
open Probsub_workload

type row = {
  scenario : string;
  k : int;
  m : int;
  mean_micros : float;
  mean_iterations : float;
  normalized_ns : float;
}

let ks = [ 50; 100; 200; 400 ]
let ms = [ 5; 10; 20 ]

let run ?(scale = Exp_common.default_scale) ~seed () =
  let runs = max 10 (scale.Exp_common.runs / 2) in
  (* Cap trials so covered instances measure pipeline cost, not the
     theoretical d blow-up. *)
  let config = Engine.config ~delta:1e-6 ~max_iterations:2000 () in
  let scenarios =
    [
      ( "covering-1.b",
        fun rng ~m ~k -> Scenario.redundant_covering rng ~m ~k );
      ( "extreme-2.c",
        fun rng ~m ~k -> Scenario.extreme_non_cover rng ~m ~k ~gap_fraction:0.01
      );
    ]
  in
  List.concat_map
    (fun (name, gen) ->
      List.concat_map
        (fun m ->
          List.map
            (fun k ->
              let rng = Prng.of_int (seed + k + (31 * m)) in
              let total_time = ref 0.0 in
              let total_iters = ref 0 in
              for _ = 1 to runs do
                let inst = gen rng ~m ~k in
                let t0 = Unix.gettimeofday () in
                let report =
                  Engine.check ~config ~rng inst.Scenario.s inst.Scenario.set
                in
                total_time := !total_time +. (Unix.gettimeofday () -. t0);
                total_iters := !total_iters + report.Engine.iterations
              done;
              let f = float_of_int runs in
              let mean_micros = !total_time *. 1e6 /. f in
              let mean_iterations = float_of_int !total_iters /. f in
              {
                scenario = name;
                k;
                m;
                mean_micros;
                mean_iterations;
                normalized_ns =
                  1000.0 *. mean_micros
                  /. (float_of_int (k * m) *. Float.max 1.0 mean_iterations);
              })
            ks)
        ms)
    scenarios

let print rows =
  Printf.printf "== scaling: engine cost vs the O(k*m*d) budget ==\n";
  Printf.printf "%-14s %5s %4s %12s %12s %18s\n" "scenario" "k" "m" "mean us"
    "mean iters" "ns per k*m*trial";
  List.iter
    (fun r ->
      Printf.printf "%-14s %5d %4d %12.1f %12.1f %18.3f\n" r.scenario r.k r.m
        r.mean_micros r.mean_iterations r.normalized_ns)
    rows

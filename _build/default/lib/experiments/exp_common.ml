type series = { label : string; points : (float * float) list }

type figure = {
  id : string;
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

let print ppf fig =
  let xs =
    List.sort_uniq compare
      (List.concat_map (fun s -> List.map fst s.points) fig.series)
  in
  Format.fprintf ppf "@[<v>== %s: %s ==@," fig.id fig.title;
  Format.fprintf ppf "   (x = %s, y = %s)@," fig.xlabel fig.ylabel;
  let cell s x =
    match List.assoc_opt x s.points with
    | Some y when Float.is_nan y -> "-"
    | Some y -> Printf.sprintf "%.4g" y
    | None -> "-"
  in
  let headers = fig.xlabel :: List.map (fun s -> s.label) fig.series in
  let rows =
    List.map
      (fun x ->
        Printf.sprintf "%.4g" x :: List.map (fun s -> cell s x) fig.series)
      xs
  in
  let widths =
    List.mapi
      (fun i h ->
        List.fold_left
          (fun w row -> max w (String.length (List.nth row i)))
          (String.length h) rows)
      headers
  in
  let print_row cells =
    List.iteri
      (fun i c ->
        let w = List.nth widths i in
        Format.fprintf ppf "%s%s  " c (String.make (w - String.length c) ' '))
      cells;
    Format.fprintf ppf "@,"
  in
  print_row headers;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows;
  Format.fprintf ppf "@]"

let print_stdout fig =
  print Format.std_formatter fig;
  Format.pp_print_newline Format.std_formatter ()

type scale = { runs : int }

let default_scale = { runs = 40 }

let mean = function
  | [] -> Float.nan
  | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let mean_finite l =
  match List.filter Float.is_finite l with [] -> Float.nan | l -> mean l

let paper_ks = [ 10; 40; 70; 100; 130; 160; 190; 220; 250; 280; 310 ]
let paper_ms = [ 10; 15; 20 ]

let gap_fractions =
  [ 0.005; 0.010; 0.015; 0.020; 0.025; 0.030; 0.035; 0.040; 0.045 ]

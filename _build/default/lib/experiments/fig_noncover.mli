(** Figures 8, 9 and 10 — the non-cover scenario (§6.2).

    Setup: scenario 2.b instances (gap on attribute 0, so [s] is never
    covered and the entire set is redundant), k = 10..310,
    m = 10/15/20, δ = 1e-10.

    - Fig. 8: fraction of the (all-redundant) set removed by MCS —
      paper: 0.88..1.0, and our one-sided construction sits at the
      asymptote ~1.0 (see EXPERIMENTS.md).
    - Fig. 9: theoretical log10 d with and without MCS.
    - Fig. 10: {e actual} RSPC iterations with and without MCS —
      with MCS usually 0 (the reduced set is empty, a deterministic
      NO), without MCS a handful (the uncovered volume is large, so a
      witness is found almost immediately). *)

val run :
  ?scale:Exp_common.scale -> seed:int -> unit ->
  Exp_common.figure * Exp_common.figure * Exp_common.figure
(** [(fig8, fig9, fig10)]. *)

val delta : float

(** Proposition 5 / Equation 2 — delivery probability after an
    erroneous cover along a broker chain (§5).

    For each per-check error δ we plot the Eq. 2 analytic bound against
    a Monte-Carlo simulation of the real pipeline (fresh extreme
    non-cover instance per trial, engine check at every hop). A third
    series gives the loss-free ceiling (per-check error 0), i.e. the
    probability the publication exists at all. The measured curve
    should track the bound closely when the ρw estimate is accurate
    (the simulation uses stagger bounds [1.0, 1.2] for that reason). *)

type row = {
  delta : float;
  analytic : float;  (** Eq. 2 with per-check error δ. *)
  measured : float;
  mean_reach : float;  (** Brokers reached by the subscription, of n. *)
}

val run :
  ?scale:Exp_common.scale -> ?n_brokers:int -> ?rho:float -> seed:int ->
  unit -> row list * Exp_common.figure
(** Defaults: 10 brokers, ρ = 0.1 per broker, k = 20 existing
    subscriptions over m = 5 attributes, 2% gap. Trials per δ:
    [25 * scale.runs]. *)

val deltas : float list

(** Ablation of the pipeline stages (§6.5's discussion, quantified).

    The paper argues that neither MCS nor RSPC alone is an efficient
    solution — only their combination. This experiment runs the engine
    on the three hard scenarios with each optimization toggled off and
    reports mean wall-clock per check, mean RSPC iterations, and
    agreement with the ground truth known by construction. *)

type config_kind =
  | Full  (** Fast decisions + MCS + RSPC (Algorithm 4). *)
  | With_probes  (** Full plus the deterministic witness-guided probes. *)
  | No_fast  (** MCS + RSPC. *)
  | No_mcs  (** Fast decisions + RSPC. *)
  | Rspc_only  (** Bare Algorithm 1. *)

type row = {
  scenario : string;
  kind : config_kind;
  mean_micros : float;  (** Mean wall-clock per check, microseconds. *)
  mean_iterations : float;
  mean_k_reduced : float;  (** Candidate set size RSPC actually saw. *)
  correct : int;  (** Checks agreeing with the constructed truth. *)
  runs : int;
}

val kind_label : config_kind -> string

val run : ?scale:Exp_common.scale -> seed:int -> unit -> row list
(** Scenarios: redundant covering (m=10, k=100), non-cover (m=10,
    k=100), extreme non-cover (m=5, k=50, 1% gap); δ = 1e-6. *)

val print : row list -> unit

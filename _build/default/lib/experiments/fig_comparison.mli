(** Figures 13 and 14 — group vs pairwise coverage on a realistic
    stream (§6.4).

    A single stream of [n] incoming subscriptions (Zipf attribute
    popularity, Pareto centres, normal widths; δ = 1e-6) is fed to two
    stores: one with the deterministic pairwise policy, one with the
    probabilistic group policy. Fig. 13 plots the active-set growth;
    Fig. 14 the group/pairwise size ratio.

    Expected shape (paper, n = 5000): group retains < 10% of arrivals
    for m = 10/15 and ~33% for m = 20; the ratio starts near 1, falls
    to 0.4-0.8 and stabilizes. *)

val run :
  ?n:int -> ?checkpoint_every:int -> ?max_iterations:int -> seed:int ->
  unit -> Exp_common.figure * Exp_common.figure
(** [(fig13, fig14)]. Defaults: [n = 5000], checkpoints every 250,
    RSPC capped at 1500 trials per check (the cap only matters for
    instances whose theoretical d explodes; the achieved error is then
    (1-ρw)^1500 instead of 1e-6). *)

val delta : float

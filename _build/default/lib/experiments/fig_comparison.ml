open Probsub_core
open Probsub_workload

let delta = 1e-6

let run ?(n = 5000) ?(checkpoint_every = 250) ?(max_iterations = 1500) ~seed
    () =
  let size_series = ref [] in
  let ratio_series = ref [] in
  List.iter
    (fun m ->
      let rng = Prng.of_int (seed + (31 * m)) in
      let stream = Scenario.comparison_stream rng ~m ~n in
      let group_config = Engine.config ~delta ~max_iterations () in
      let pairwise =
        Subscription_store.create ~policy:Subscription_store.Pairwise_policy
          ~arity:m ~seed:(seed + 1) ()
      in
      let group =
        Subscription_store.create
          ~policy:(Subscription_store.Group_policy group_config) ~arity:m
          ~seed:(seed + 2) ()
      in
      let pw_points = ref [] and gr_points = ref [] and ratio_points = ref [] in
      List.iteri
        (fun i sub ->
          ignore (Subscription_store.add pairwise sub);
          ignore (Subscription_store.add group sub);
          let arrived = i + 1 in
          if arrived mod checkpoint_every = 0 || arrived = n then begin
            let pw = Subscription_store.active_count pairwise in
            let gr = Subscription_store.active_count group in
            let x = float_of_int arrived in
            pw_points := (x, float_of_int pw) :: !pw_points;
            gr_points := (x, float_of_int gr) :: !gr_points;
            ratio_points := (x, float_of_int gr /. float_of_int pw) :: !ratio_points
          end)
        stream;
      size_series :=
        { Exp_common.label = Printf.sprintf "m=%d, group" m;
          points = List.rev !gr_points }
        :: { Exp_common.label = Printf.sprintf "m=%d, pair-wise" m;
             points = List.rev !pw_points }
        :: !size_series;
      ratio_series :=
        { Exp_common.label = Printf.sprintf "m=%d" m;
          points = List.rev !ratio_points }
        :: !ratio_series)
    Exp_common.paper_ms;
  ( {
      Exp_common.id = "fig13";
      title =
        Printf.sprintf "Active subscription set growth (%d arrivals, delta=%g)"
          n delta;
      xlabel = "subscriptions received";
      ylabel = "active set size";
      series = List.rev !size_series;
    },
    {
      Exp_common.id = "fig14";
      title = "Group/pairwise active-set size ratio";
      xlabel = "subscriptions received";
      ylabel = "size ratio";
      series = List.rev !ratio_series;
    } )

open Probsub_core
open Probsub_workload

type config_kind = Full | With_probes | No_fast | No_mcs | Rspc_only

type row = {
  scenario : string;
  kind : config_kind;
  mean_micros : float;
  mean_iterations : float;
  mean_k_reduced : float;
  correct : int;
  runs : int;
}

let kind_label = function
  | Full -> "full"
  | With_probes -> "probes"
  | No_fast -> "no-fast"
  | No_mcs -> "no-mcs"
  | Rspc_only -> "rspc-only"

let config_of ~delta = function
  | Full -> Engine.config ~delta ()
  | With_probes -> Engine.config ~delta ~use_probes:true ()
  | No_fast -> Engine.config ~delta ~use_fast_decisions:false ()
  | No_mcs -> Engine.config ~delta ~use_mcs:false ()
  | Rspc_only ->
      Engine.config ~delta ~use_mcs:false ~use_fast_decisions:false ()

let delta = 1e-6

let run ?(scale = Exp_common.default_scale) ~seed () =
  let runs = max scale.Exp_common.runs 20 in
  let scenarios =
    [
      ( "pairwise-1.a",
        fun rng -> Scenario.pairwise_covering rng ~m:10 ~k:100 );
      ( "redundant-covering",
        fun rng -> Scenario.redundant_covering rng ~m:10 ~k:100 );
      ("no-intersect-2.a", fun rng -> Scenario.no_intersection rng ~m:10 ~k:100);
      ("non-cover", fun rng -> Scenario.non_cover rng ~m:10 ~k:100);
      ( "extreme-1%",
        fun rng -> Scenario.extreme_non_cover rng ~m:5 ~k:50 ~gap_fraction:0.01
      );
    ]
  in
  List.concat_map
    (fun (name, gen) ->
      List.map
        (fun kind ->
          let rng = Prng.of_int seed in
          let config = config_of ~delta kind in
          let total_time = ref 0.0 in
          let total_iters = ref 0 in
          let total_k = ref 0 in
          let correct = ref 0 in
          for _ = 1 to runs do
            let inst = gen rng in
            let t0 = Unix.gettimeofday () in
            let report =
              Engine.check ~config ~rng inst.Scenario.s inst.Scenario.set
            in
            total_time := !total_time +. (Unix.gettimeofday () -. t0);
            total_iters := !total_iters + report.Engine.iterations;
            total_k := !total_k + report.Engine.k_reduced;
            if Engine.is_covered report.Engine.verdict = inst.Scenario.covered
            then incr correct
          done;
          let f = float_of_int runs in
          {
            scenario = name;
            kind;
            mean_micros = !total_time *. 1e6 /. f;
            mean_iterations = float_of_int !total_iters /. f;
            mean_k_reduced = float_of_int !total_k /. f;
            correct = !correct;
            runs;
          })
        [ Full; With_probes; No_fast; No_mcs; Rspc_only ])
    scenarios

let print rows =
  Printf.printf "== ablation: engine stages (delta=%g) ==\n" delta;
  Printf.printf "%-20s %-10s %12s %12s %10s %10s\n" "scenario" "config"
    "mean us" "mean iters" "k-reduced" "correct";
  List.iter
    (fun r ->
      Printf.printf "%-20s %-10s %12.1f %12.2f %10.1f %6d/%d\n" r.scenario
        (kind_label r.kind) r.mean_micros r.mean_iterations r.mean_k_reduced
        r.correct r.runs)
    rows

open Probsub_core
open Probsub_workload

let deltas = [ 1e-3; 1e-6; 1e-10 ]
let k = 50
let m = 5

let run ?(scale = Exp_common.default_scale) ~seed () =
  let runs = max (5 * scale.Exp_common.runs) 200 in
  let iter_series = ref [] in
  let false_series = ref [] in
  List.iter
    (fun delta ->
      let rng = Prng.of_int (seed + int_of_float (-.log10 delta)) in
      let config = Engine.config ~delta () in
      let iter_points = ref [] in
      let false_points = ref [] in
      List.iter
        (fun gap ->
          let iters = ref [] in
          let false_count = ref 0 in
          for _ = 1 to runs do
            let inst = Scenario.extreme_non_cover rng ~m ~k ~gap_fraction:gap in
            let report =
              Engine.check ~config ~rng inst.Scenario.s inst.Scenario.set
            in
            iters := float_of_int report.Engine.iterations :: !iters;
            if Engine.is_covered report.Engine.verdict then incr false_count
          done;
          let x = 100.0 *. gap in
          iter_points := (x, Exp_common.mean !iters) :: !iter_points;
          false_points :=
            (x, float_of_int !false_count *. 3000.0 /. float_of_int runs)
            :: !false_points)
        Exp_common.gap_fractions;
      let label = Printf.sprintf "error=%g" delta in
      iter_series :=
        { Exp_common.label; points = List.rev !iter_points } :: !iter_series;
      false_series :=
        { Exp_common.label; points = List.rev !false_points } :: !false_series)
    deltas;
  ( {
      Exp_common.id = "fig11";
      title =
        Printf.sprintf
          "Actual iterations, extreme non-cover (k=%d, m=%d, %d runs/point)" k
          m runs;
      xlabel = "gap size (%)";
      ylabel = "mean iterations";
      series = List.rev !iter_series;
    },
    {
      Exp_common.id = "fig12";
      title = "False decisions, extreme non-cover (normalized to 3000 runs)";
      xlabel = "gap size (%)";
      ylabel = "false decisions / 3000 runs";
      series = List.rev !false_series;
    } )

(** Figures 11 and 12 — the extreme non-cover scenario (§6.3).

    Setup: scenario 2.c with k = 50, m = 5; the gap over attribute 0
    sweeps 0.5%..4.5% of the range; δ ∈ {1e-3, 1e-6, 1e-10};
    the paper uses 3000 runs per point.

    - Fig. 11: mean actual RSPC iterations — roughly 1/gap-fraction and
      nearly independent of δ (the witness-hit time is geometric in the
      true ρw, which δ does not change).
    - Fig. 12: the number of false decisions (probabilistic YES on a
      real non-cover), reported {e normalized to 3000 runs} so any
      [scale] compares directly against the paper. Grows with δ,
      shrinks with the gap; ~0 for δ ≤ 1e-6 with gaps ≥ 1%. *)

val run :
  ?scale:Exp_common.scale -> seed:int -> unit ->
  Exp_common.figure * Exp_common.figure
(** [(fig11, fig12)]. Uses [max (5 * scale.runs) 200] runs per point
    (false decisions are rare events). *)

val deltas : float list

(** Subscription merging vs covering (related work [8, 9]).

    Merging replaces several subscriptions with one; {e perfect} merges
    lose nothing, imperfect merges accept false positives. The paper's
    covering approach is orthogonal: it never rewrites subscriptions,
    it just refuses to propagate redundant ones. This experiment feeds
    the §6.4 comparison stream to all three reducers and compares the
    resulting set sizes, plus the exact-representation cost of merging
    (how much smaller a perfectly-merged active set could be). *)

type row = {
  arrived : int;
  raw : int;  (** Flooding: everything kept. *)
  pairwise : int;  (** Active set under pairwise covering. *)
  group : int;  (** Active set under probabilistic group covering. *)
  merged : int;  (** Perfect-merge compaction of the pairwise active set. *)
}

val run :
  ?n:int -> ?checkpoint_every:int -> ?m:int -> seed:int -> unit -> row list
(** Defaults: n = 600 arrivals, checkpoints every 150, m = 6. Perfect
    merging is O(n³) per checkpoint, hence the smaller default scale. *)

val print : row list -> unit

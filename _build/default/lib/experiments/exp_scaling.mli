(** Empirical scaling of the engine against the paper's O(k·m·d) claim.

    The abstract promises the subsumption question is answered in
    O(k·m·d). This experiment measures mean wall-clock per check and
    mean RSPC trials across a (k, m) sweep on the two regimes that
    matter — group-covered instances (trials bounded by the computed d)
    and gap instances (trials bounded by the geometric witness-hit
    time) — and reports the per-(k·m·trial) normalized cost, which
    should stay roughly flat if the implementation matches the bound. *)

type row = {
  scenario : string;
  k : int;
  m : int;
  mean_micros : float;
  mean_iterations : float;
  normalized_ns : float;
      (** 1000 · mean_micros / (k · m · max 1 iterations): cost per
          unit of the O(k·m·d) budget, in ns. *)
}

val run : ?scale:Exp_common.scale -> seed:int -> unit -> row list
(** Sweep: k ∈ {50, 100, 200, 400}, m ∈ {5, 10, 20}; scenarios:
    redundant covering (1.b) and extreme non-cover (2.c, 1% gap). *)

val print : row list -> unit

(** Figures 6 and 7 — the redundant covering scenario (§6.1).

    Setup: scenario 1.b instances with k = 10..310, m = 10/15/20,
    δ = 1e-10. Fig. 6 plots the fraction of redundant subscriptions MCS
    removes; Fig. 7 the theoretical log10 d from Algorithm 2, with and
    without MCS.

    Expected shape (paper): reduction between ~0.7 and 1.0; log10 d in
    the tens without MCS, collapsing to practical values (< 5) with
    MCS. *)

val run : ?scale:Exp_common.scale -> seed:int -> unit ->
  Exp_common.figure * Exp_common.figure
(** [(fig6, fig7)]. One instance per run; results averaged over
    [scale.runs] instances per (m, k) point. *)

val delta : float
(** The error probability used throughout (1e-10, as in the paper). *)

(** Publication-matching gains from coverage (§4.4, Algorithm 5).

    Feeds the same subscription stream to stores under the three
    policies, then matches a batch of random publications against each
    and reports the subscriptions touched per publication (active scans
    always happen; covered scans only after an active hit) and the
    deliveries missed relative to exhaustive matching — zero for
    flooding/pairwise, bounded by δ's accumulated effect for the group
    policy. *)

type row = {
  policy : string;
  active_size : int;
  covered_size : int;
  scans_per_pub : float;  (** Mean subscriptions touched per match call. *)
  matched : int;  (** Total (publication, subscription) deliveries. *)
  missed : int;  (** Deliveries lost vs exhaustive matching. *)
}

val run :
  ?subs:int -> ?pubs:int -> ?m:int -> seed:int -> unit -> row list
(** Defaults: 1500 subscriptions, 500 publications, m = 10. *)

val print : row list -> unit

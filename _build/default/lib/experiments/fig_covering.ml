open Probsub_core
open Probsub_workload

let delta = 1e-10

let run ?(scale = Exp_common.default_scale) ~seed () =
  let reduction_series = ref [] in
  let d_series = ref [] in
  List.iter
    (fun m ->
      let rng = Prng.of_int (seed + m) in
      let red_points = ref [] in
      let d_plain = ref [] in
      let d_mcs = ref [] in
      List.iter
        (fun k ->
          let reductions = ref [] in
          let log_d_plain = ref [] in
          let log_d_mcs = ref [] in
          for _ = 1 to scale.Exp_common.runs do
            let inst = Scenario.redundant_covering rng ~m ~k in
            let table = Conflict_table.build ~s:inst.Scenario.s inst.Scenario.set in
            let result = Mcs.run table in
            let redundant_total = ref 0 and redundant_removed = ref 0 in
            Array.iter
              (fun r -> if r then incr redundant_total)
              inst.Scenario.redundant;
            List.iter
              (fun i -> if inst.Scenario.redundant.(i) then incr redundant_removed)
              result.Mcs.removed;
            if !redundant_total > 0 then
              reductions :=
                (float_of_int !redundant_removed /. float_of_int !redundant_total)
                :: !reductions;
            log_d_plain :=
              Engine.theoretical_log10_d ~use_mcs:false ~delta inst.Scenario.s
                inst.Scenario.set
              :: !log_d_plain;
            log_d_mcs :=
              Engine.theoretical_log10_d ~use_mcs:true ~delta inst.Scenario.s
                inst.Scenario.set
              :: !log_d_mcs
          done;
          let x = float_of_int k in
          red_points := (x, Exp_common.mean !reductions) :: !red_points;
          d_plain := (x, Exp_common.mean_finite !log_d_plain) :: !d_plain;
          d_mcs := (x, Exp_common.mean_finite !log_d_mcs) :: !d_mcs)
        Exp_common.paper_ks;
      reduction_series :=
        { Exp_common.label = Printf.sprintf "m=%d" m;
          points = List.rev !red_points }
        :: !reduction_series;
      d_series :=
        { Exp_common.label = Printf.sprintf "m=%d,MCS" m;
          points = List.rev !d_mcs }
        :: { Exp_common.label = Printf.sprintf "m=%d" m;
             points = List.rev !d_plain }
        :: !d_series)
    Exp_common.paper_ms;
  ( {
      Exp_common.id = "fig6";
      title = "Redundant subscription reduction (redundant covering)";
      xlabel = "k";
      ylabel = "fraction of redundant subs removed by MCS";
      series = List.rev !reduction_series;
    },
    {
      Exp_common.id = "fig7";
      title = "Theoretical iterations, redundant covering (delta=1e-10)";
      xlabel = "k";
      ylabel = "log10(d)";
      series = List.rev !d_series;
    } )

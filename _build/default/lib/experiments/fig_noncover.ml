open Probsub_core
open Probsub_workload

let delta = 1e-10

let run ?(scale = Exp_common.default_scale) ~seed () =
  let reduction_series = ref [] in
  let d_series = ref [] in
  let iter_series = ref [] in
  let full_config = Engine.config ~delta () in
  let plain_config =
    Engine.config ~delta ~use_mcs:false ~use_fast_decisions:false
      ~max_iterations:100_000 ()
  in
  List.iter
    (fun m ->
      let rng = Prng.of_int (seed + (1000 * m)) in
      let red_points = ref [] in
      let d_plain = ref [] and d_mcs = ref [] in
      let it_plain = ref [] and it_mcs = ref [] in
      List.iter
        (fun k ->
          let reductions = ref [] in
          let log_d_plain = ref [] and log_d_mcs = ref [] in
          let iters_plain = ref [] and iters_mcs = ref [] in
          for _ = 1 to scale.Exp_common.runs do
            let inst = Scenario.non_cover rng ~m ~k in
            let table = Conflict_table.build ~s:inst.Scenario.s inst.Scenario.set in
            let result = Mcs.run table in
            reductions :=
              (float_of_int (List.length result.Mcs.removed) /. float_of_int k)
              :: !reductions;
            log_d_plain :=
              Engine.theoretical_log10_d ~use_mcs:false ~delta inst.Scenario.s
                inst.Scenario.set
              :: !log_d_plain;
            (* An emptied candidate set needs no probabilistic trials;
               plot it as log10(1) = 0 like the paper's Fig. 9. *)
            let with_mcs =
              Engine.theoretical_log10_d ~use_mcs:true ~delta inst.Scenario.s
                inst.Scenario.set
            in
            log_d_mcs :=
              (if Float.is_finite with_mcs then with_mcs else 0.0)
              :: !log_d_mcs;
            let report_full =
              Engine.check ~config:full_config ~rng inst.Scenario.s
                inst.Scenario.set
            in
            let report_plain =
              Engine.check ~config:plain_config ~rng inst.Scenario.s
                inst.Scenario.set
            in
            iters_mcs := float_of_int report_full.Engine.iterations :: !iters_mcs;
            iters_plain :=
              float_of_int report_plain.Engine.iterations :: !iters_plain
          done;
          let x = float_of_int k in
          red_points := (x, Exp_common.mean !reductions) :: !red_points;
          d_plain := (x, Exp_common.mean_finite !log_d_plain) :: !d_plain;
          d_mcs := (x, Exp_common.mean_finite !log_d_mcs) :: !d_mcs;
          it_plain := (x, Exp_common.mean !iters_plain) :: !it_plain;
          it_mcs := (x, Exp_common.mean !iters_mcs) :: !it_mcs)
        Exp_common.paper_ks;
      let label suffix = Printf.sprintf "m=%d%s" m suffix in
      reduction_series :=
        { Exp_common.label = label ""; points = List.rev !red_points }
        :: !reduction_series;
      d_series :=
        { Exp_common.label = label ",MCS"; points = List.rev !d_mcs }
        :: { Exp_common.label = label ""; points = List.rev !d_plain }
        :: !d_series;
      iter_series :=
        { Exp_common.label = label ",MCS"; points = List.rev !it_mcs }
        :: { Exp_common.label = label ""; points = List.rev !it_plain }
        :: !iter_series)
    Exp_common.paper_ms;
  ( {
      Exp_common.id = "fig8";
      title = "Subscription set reduction (non-cover scenario)";
      xlabel = "k";
      ylabel = "fraction of (redundant) subs removed by MCS";
      series = List.rev !reduction_series;
    },
    {
      Exp_common.id = "fig9";
      title = "Theoretical iterations, non-cover (delta=1e-10)";
      xlabel = "k";
      ylabel = "log10(d)";
      series = List.rev !d_series;
    },
    {
      Exp_common.id = "fig10";
      title = "Actual RSPC iterations, non-cover";
      xlabel = "k";
      ylabel = "mean iterations to answer";
      series = List.rev !iter_series;
    } )

open Probsub_core
open Probsub_broker

type row = {
  delta : float;
  analytic : float;
  measured : float;
  mean_reach : float;
}

let deltas = [ 0.5; 0.2; 0.05; 0.01; 0.001 ]

let run ?(scale = Exp_common.default_scale) ?(n_brokers = 10) ?(rho = 0.1)
    ~seed () =
  let trials = 25 * scale.Exp_common.runs in
  let rows =
    List.map
      (fun delta ->
        let rng = Prng.of_int (seed + int_of_float (1000.0 *. delta)) in
        let result =
          Chain_model.simulate rng ~n_brokers ~rho ~m:5 ~k:20
            ~gap_fraction:0.02 ~delta ~trials
        in
        {
          delta;
          analytic = result.Chain_model.analytic;
          measured = result.Chain_model.measured;
          mean_reach = result.Chain_model.mean_reach;
        })
      deltas
  in
  let ceiling = Chain_model.analytic ~n:n_brokers ~rho ~per_check_error:0.0 in
  let figure =
    {
      Exp_common.id = "prop5";
      title =
        Printf.sprintf
          "Eq. 2: P(find publication) on a %d-broker chain (rho=%g, %d \
           trials/point)"
          n_brokers rho trials;
      xlabel = "-log10(delta)";
      ylabel = "P(publication found)";
      series =
        [
          {
            Exp_common.label = "analytic (Eq. 2)";
            points =
              List.map (fun r -> (-.log10 r.delta, r.analytic)) rows;
          };
          {
            Exp_common.label = "measured";
            points =
              List.map (fun r -> (-.log10 r.delta, r.measured)) rows;
          };
          {
            Exp_common.label = "loss-free ceiling";
            points = List.map (fun r -> (-.log10 r.delta, ceiling)) rows;
          };
        ];
    }
  in
  (rows, figure)

open Probsub_core
open Probsub_broker

type row = {
  topology : string;
  policy : string;
  brokers : int;
  diameter : int;
  subscribe_msgs : int;
  suppressed : int;
  publish_msgs : int;
  delivered : int;
  lost : int;
}

let topologies rng =
  [
    ("chain-16", Topology.chain 16);
    ("ring-16", Topology.ring 16);
    ("star-16", Topology.star 16);
    ("tree-2x3", Topology.balanced_tree ~branching:2 ~depth:3);
    ("grid-4x4", Topology.grid ~width:4 ~height:4);
    ("random-16", Topology.random_connected rng ~n:16 ~extra_edges:6);
  ]

let policies =
  [
    ("flooding", Subscription_store.No_coverage);
    ("pair-wise", Subscription_store.Pairwise_policy);
    ( "group",
      Subscription_store.Group_policy
        (Engine.config ~delta:1e-6 ~max_iterations:1000 ()) );
  ]

let run ?(subs = 120) ?(pubs = 60) ?(m = 3) ~seed () =
  let topo_rng = Prng.of_int (seed + 1) in
  let shapes = topologies topo_rng in
  List.concat_map
    (fun (topo_name, topo) ->
      List.map
        (fun (policy_name, policy) ->
          let net = Network.create ~policy ~topology:topo ~arity:m ~seed () in
          let rng = Prng.of_int (seed + 7) in
          let n_brokers = Topology.size topo in
          for i = 1 to subs do
            let sub =
              Subscription.of_list
                (List.init m (fun _ ->
                     let lo = Prng.int rng 600 in
                     Interval.make ~lo ~hi:(lo + 100 + Prng.int rng 300)))
            in
            ignore (Network.subscribe net ~broker:(i mod n_brokers) ~client:i sub)
          done;
          Network.run net;
          let delivered = ref 0 and lost = ref 0 in
          for _ = 1 to pubs do
            let p =
              Publication.point (Array.init m (fun _ -> Prng.int rng 1000))
            in
            let expected = List.length (Network.expected_recipients net p) in
            let before = (Network.metrics net).Metrics.notifications in
            ignore (Network.publish net ~broker:(Prng.int rng n_brokers) p);
            Network.run net;
            let got = (Network.metrics net).Metrics.notifications - before in
            delivered := !delivered + got;
            lost := !lost + (expected - got)
          done;
          let metrics = Network.metrics net in
          {
            topology = topo_name;
            policy = policy_name;
            brokers = n_brokers;
            diameter = Topology.diameter topo;
            subscribe_msgs = metrics.Metrics.subscribe_msgs;
            suppressed = metrics.Metrics.suppressed_subscriptions;
            publish_msgs = metrics.Metrics.publish_msgs;
            delivered = !delivered;
            lost = !lost;
          })
        policies)
    shapes

let print rows =
  Printf.printf "== traffic: topology x coverage policy ==\n";
  Printf.printf "%-11s %-10s %4s %9s %10s %8s %10s %6s\n" "topology" "policy"
    "diam" "sub msgs" "suppressed" "pub msgs" "delivered" "lost";
  List.iter
    (fun r ->
      Printf.printf "%-11s %-10s %4d %9d %10d %8d %10d %6d\n" r.topology
        r.policy r.diameter r.subscribe_msgs r.suppressed r.publish_msgs
        r.delivered r.lost)
    rows

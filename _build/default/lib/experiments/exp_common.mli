(** Shared experiment plumbing: result tables and their rendering.

    Every experiment produces a {!figure}: named series of (x, y)
    points. The printer renders the matrix the paper's plot would show,
    one row per x value and one column per series, so bench output can
    be compared against the paper figure by eye or diffed across
    runs. *)

type series = { label : string; points : (float * float) list }

type figure = {
  id : string;  (** e.g. "fig6". *)
  title : string;
  xlabel : string;
  ylabel : string;
  series : series list;
}

val print : Format.formatter -> figure -> unit
(** Aligned-column rendering; [nan] cells print as ["-"]. *)

val print_stdout : figure -> unit

type scale = { runs : int }
(** How many runs to average per parameter point. The paper uses 1000
    (Figs. 6-10) and 3000 (Figs. 11-12); the default bench scale is
    smaller so the whole suite stays fast — pass a bigger [runs] to
    match the paper exactly. *)

val default_scale : scale

val mean : float list -> float
(** Arithmetic mean; [nan] on empty input. *)

val mean_finite : float list -> float
(** Mean of the finite values only (experiments average log-space
    quantities that can be [-inf] when a candidate set is empty). *)

val paper_ks : int list
(** k = 10, 40, ..., 310 (Figs. 6-10). *)

val paper_ms : int list
(** m = 10, 15, 20. *)

val gap_fractions : float list
(** 0.005 to 0.045 in steps of 0.005 (Figs. 11-12). *)

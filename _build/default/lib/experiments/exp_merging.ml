open Probsub_core
open Probsub_workload

type row = {
  arrived : int;
  raw : int;
  pairwise : int;
  group : int;
  merged : int;
}

let run ?(n = 600) ?(checkpoint_every = 150) ?(m = 6) ~seed () =
  let rng = Prng.of_int seed in
  let stream = Scenario.comparison_stream rng ~m ~n in
  let pairwise =
    Subscription_store.create ~policy:Subscription_store.Pairwise_policy
      ~arity:m ~seed ()
  in
  let group =
    Subscription_store.create
      ~policy:
        (Subscription_store.Group_policy
           (Engine.config ~delta:1e-6 ~max_iterations:1000 ()))
      ~arity:m ~seed ()
  in
  let rows = ref [] in
  List.iteri
    (fun i sub ->
      ignore (Subscription_store.add pairwise sub);
      ignore (Subscription_store.add group sub);
      let arrived = i + 1 in
      if arrived mod checkpoint_every = 0 || arrived = n then begin
        let actives = List.map snd (Subscription_store.active pairwise) in
        rows :=
          {
            arrived;
            raw = arrived;
            pairwise = Subscription_store.active_count pairwise;
            group = Subscription_store.active_count group;
            merged = List.length (Merging.greedy_reduce actives);
          }
          :: !rows
      end)
    stream;
  List.rev !rows

let print rows =
  Printf.printf "== merging: set sizes under the three reducers ==\n";
  Printf.printf "%9s %6s %9s %7s %14s\n" "arrived" "raw" "pairwise" "group"
    "perfect-merge";
  List.iter
    (fun r ->
      Printf.printf "%9d %6d %9d %7d %14d\n" r.arrived r.raw r.pairwise
        r.group r.merged)
    rows

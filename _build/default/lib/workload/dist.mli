(** Random distributions for workload generation (§6.4).

    The comparison scenario models subscription popularity with power
    laws: attribute selection follows a Zipf distribution (skew 2.0),
    range centres a Pareto distribution (skew 1.0) and range sizes a
    normal distribution — "considered good approximations of
    popularity". All samplers draw from a caller-supplied
    {!Probsub_core.Prng.t} for reproducibility. *)

type sampler = Probsub_core.Prng.t -> int
(** A sampler producing an integer per draw. *)

val zipf : n:int -> skew:float -> sampler
(** [zipf ~n ~skew] samples ranks in [0, n-1] with
    [P(r) ∝ 1/(r+1)^skew]. The CDF is precomputed once, draws are
    O(log n). @raise Invalid_argument if [n <= 0] or [skew <= 0]. *)

val pareto : Probsub_core.Prng.t -> scale:float -> shape:float -> float
(** Pareto(scale, shape) via inverse transform: values >= [scale],
    heavy upper tail; smaller [shape] (the paper's "skew") means a
    heavier tail. @raise Invalid_argument on non-positive parameters. *)

val normal : Probsub_core.Prng.t -> mean:float -> stddev:float -> float
(** Gaussian via Box–Muller. [stddev >= 0]. *)

val normal_int :
  Probsub_core.Prng.t -> mean:float -> stddev:float -> min:int -> max:int ->
  int
(** A rounded normal draw clamped to [min, max] — the paper's "range
    sizes are generated with a normal distribution" needs positive
    integer widths. @raise Invalid_argument if [min > max]. *)

val exponential : Probsub_core.Prng.t -> rate:float -> float
(** Exponential inter-arrival times for the simulator's open workloads.
    @raise Invalid_argument if [rate <= 0]. *)

val bernoulli : Probsub_core.Prng.t -> p:float -> bool
(** True with probability [p]. *)

val pick : Probsub_core.Prng.t -> 'a array -> 'a
(** Uniform choice. @raise Invalid_argument on an empty array. *)

val shuffle : Probsub_core.Prng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

(** Attribute schemas: the finite ordered domains subscriptions range
    over (§3: "attribute values are elements from (ordered) finite
    sets"). A schema fixes [m] and one domain interval per attribute;
    generators draw subscriptions and publications inside it. *)

open Probsub_core

type t

val make : Interval.t array -> t
(** One domain per attribute. @raise Invalid_argument on empty. *)

val uniform : arity:int -> lo:int -> hi:int -> t
(** [uniform ~arity ~lo ~hi] gives every attribute the domain
    [lo, hi]. *)

val arity : t -> int
val domain : t -> int -> Interval.t

val space : t -> Subscription.t
(** The whole attribute space as a subscription (every domain in
    full). *)

val random_point : Prng.t -> t -> int array
(** A uniform point of the space — a random publication. *)

val random_box : Prng.t -> t -> min_width:int -> max_width:int -> Subscription.t
(** A random box: per attribute, a width drawn uniformly from
    [min_width, max_width] (clamped to the domain) placed uniformly
    inside the domain. @raise Invalid_argument if
    [min_width < 1 || min_width > max_width]. *)

val pp : Format.formatter -> t -> unit

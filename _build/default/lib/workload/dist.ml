open Probsub_core

type sampler = Prng.t -> int

let zipf ~n ~skew =
  if n <= 0 then invalid_arg "Dist.zipf: n must be positive";
  if skew <= 0.0 then invalid_arg "Dist.zipf: skew must be positive";
  (* Cumulative weights; binary search per draw. *)
  let cdf = Array.make n 0.0 in
  let total = ref 0.0 in
  for r = 0 to n - 1 do
    total := !total +. (1.0 /. Float.pow (float_of_int (r + 1)) skew);
    cdf.(r) <- !total
  done;
  let total = !total in
  fun rng ->
    let u = Prng.float rng *. total in
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if cdf.(mid) < u then search (mid + 1) hi else search lo mid
    in
    search 0 (n - 1)

let pareto rng ~scale ~shape =
  if scale <= 0.0 || shape <= 0.0 then
    invalid_arg "Dist.pareto: parameters must be positive";
  let u = 1.0 -. Prng.float rng in
  (* u in (0, 1]; inverse CDF. *)
  scale /. Float.pow u (1.0 /. shape)

let normal rng ~mean ~stddev =
  if stddev < 0.0 then invalid_arg "Dist.normal: negative stddev";
  (* Box–Muller; one draw per call keeps the stream layout simple. *)
  let u1 = 1.0 -. Prng.float rng in
  let u2 = Prng.float rng in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let normal_int rng ~mean ~stddev ~min:lo ~max:hi =
  if lo > hi then invalid_arg "Dist.normal_int: min > max";
  let v = int_of_float (Float.round (normal rng ~mean ~stddev)) in
  if v < lo then lo else if v > hi then hi else v

let exponential rng ~rate =
  if rate <= 0.0 then invalid_arg "Dist.exponential: rate must be positive";
  -.log (1.0 -. Prng.float rng) /. rate

let bernoulli rng ~p = Prng.float rng < p

let pick rng arr =
  if Array.length arr = 0 then invalid_arg "Dist.pick: empty array";
  arr.(Prng.int rng (Array.length arr))

let shuffle rng arr =
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

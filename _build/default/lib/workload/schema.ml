open Probsub_core

type t = Interval.t array

let make domains =
  if Array.length domains = 0 then invalid_arg "Schema.make: empty";
  Array.copy domains

let uniform ~arity ~lo ~hi =
  if arity < 1 then invalid_arg "Schema.uniform: arity < 1";
  make (Array.make arity (Interval.make ~lo ~hi))

let arity = Array.length

let domain t j =
  if j < 0 || j >= Array.length t then invalid_arg "Schema.domain: attribute";
  t.(j)

let space t = Subscription.make (Array.copy t)

let random_point rng t = Array.map (fun d -> Prng.in_interval rng d) t

let random_box rng t ~min_width ~max_width =
  if min_width < 1 || min_width > max_width then
    invalid_arg "Schema.random_box: bad width bounds";
  Subscription.make
    (Array.map
       (fun d ->
         let w = min (Interval.width d) (Prng.int_in rng ~lo:min_width ~hi:max_width) in
         let lo = Prng.int_in rng ~lo:(Interval.lo d) ~hi:(Interval.hi d - w + 1) in
         Interval.make ~lo ~hi:(lo + w - 1))
       t)

let pp ppf t =
  Format.fprintf ppf "@[<h>schema(%a)@]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       Interval.pp)
    t

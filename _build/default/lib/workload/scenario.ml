open Probsub_core

type instance = {
  s : Subscription.t;
  set : Subscription.t array;
  redundant : bool array;
  covered : bool;
}

let domain_width = 1000
let s_lo = 250
let s_hi = 749
let iv lo hi = Interval.make ~lo ~hi

(* The tested subscription: [250, 749] on every attribute. *)
let tested_subscription m =
  Subscription.make (Array.make m (iv s_lo s_hi))

(* A range covering [s_lo, s_hi] with a little random slack so that
   generated subscriptions are not all structurally identical. *)
let covering_range rng =
  iv (s_lo - 1 - Prng.int rng 20) (s_hi + 1 + Prng.int rng 20)

(* A strict sub-range of s on one attribute, wide enough to overlap
   substantially ([width >= 50]) but never the whole of s. *)
let cutting_range rng =
  let width = 50 + Prng.int rng 300 in
  let lo = Prng.int_in rng ~lo:(s_lo + 1) ~hi:(s_hi - width) in
  iv lo (lo + width - 1)

(* A one-sided partial cover of s on one attribute: a prefix
   [<= s_lo, y] or a suffix [x, >= s_hi]. Which side is canonical is a
   function of the attribute, with a small deviation rate: rows cutting
   the same attribute on the same side produce same-side conflict-table
   cells, which never conflict with each other, so MCS can recognize
   the redundancy; deviants introduce the occasional conflict that
   keeps the reduction below 100% (the Fig. 6 dips). *)
let one_sided_cut rng ~attr ~deviate_p =
  let canonical_suffix = attr mod 2 = 0 in
  let suffix =
    if Prng.float rng < deviate_p then not canonical_suffix
    else canonical_suffix
  in
  let split = Prng.int_in rng ~lo:(s_lo + 50) ~hi:(s_hi - 50) in
  if suffix then iv split (s_hi + 1 + Prng.int rng 20)
  else iv (s_lo - 1 - Prng.int rng 20) split

let check_mk ~m ~k ~min_k name =
  if m < 1 then invalid_arg (name ^ ": m < 1");
  if k < min_k then
    invalid_arg (Printf.sprintf "%s: k = %d < %d" name k min_k)

(* ------------------------------------------------------------------ *)
(* 1.a Pairwise covering *)

let pairwise_covering rng ~m ~k =
  check_mk ~m ~k ~min_k:1 "Scenario.pairwise_covering";
  let s = tested_subscription m in
  let coverer_at = Prng.int rng k in
  let sub i =
    if i = coverer_at then
      Subscription.make (Array.init m (fun _ -> covering_range rng))
    else begin
      (* Random partial overlap: cut one or two attributes. *)
      let ranges = Array.init m (fun _ -> covering_range rng) in
      let cuts = 1 + Prng.int rng 2 in
      for _ = 1 to cuts do
        ranges.(Prng.int rng m) <- cutting_range rng
      done;
      Subscription.make ranges
    end
  in
  {
    s;
    set = Array.init k sub;
    redundant = Array.init k (fun i -> i <> coverer_at);
    covered = true;
  }

(* ------------------------------------------------------------------ *)
(* 1.b Redundant covering: 20% core slabs + 80% partial covers *)

let core_slabs rng ~m ~count =
  (* Overlapping slabs along attribute 0 that jointly (but never
     singly) cover s. *)
  let width = s_hi - s_lo + 1 in
  let step = width / count in
  Array.init count (fun i ->
      let lo = if i = 0 then s_lo - 1 - Prng.int rng 10 else s_lo + (i * step) - 1 - Prng.int rng 10 in
      let hi =
        if i = count - 1 then s_hi + 1 + Prng.int rng 10
        else s_lo + ((i + 1) * step) + Prng.int rng 10
      in
      let ranges = Array.init m (fun _ -> covering_range rng) in
      ranges.(0) <- iv lo hi;
      Subscription.make ranges)

let redundant_covering rng ~m ~k =
  check_mk ~m ~k ~min_k:5 "Scenario.redundant_covering";
  let s = tested_subscription m in
  let core_count = max 2 (k / 5) in
  let core = core_slabs rng ~m ~count:core_count in
  let partial _ =
    let ranges = Array.init m (fun _ -> covering_range rng) in
    let cuts = 1 + Prng.int rng 2 in
    for _ = 1 to cuts do
      let attr = Prng.int rng m in
      ranges.(attr) <- one_sided_cut rng ~attr ~deviate_p:0.03
    done;
    Subscription.make ranges
  in
  let set =
    Array.init k (fun i ->
        if i < core_count then core.(i) else partial i)
  in
  {
    s;
    set;
    redundant = Array.init k (fun i -> i >= core_count);
    covered = true;
  }

(* ------------------------------------------------------------------ *)
(* 2.a No intersection *)

let no_intersection rng ~m ~k =
  check_mk ~m ~k ~min_k:1 "Scenario.no_intersection";
  let s = tested_subscription m in
  let sub _ =
    let ranges =
      Array.init m (fun _ ->
          let width = 20 + Prng.int rng 200 in
          let lo = Prng.int rng (domain_width - width) in
          iv lo (lo + width - 1))
    in
    (* Force disjointness on one random attribute: place the range
       entirely below or above s there. *)
    let attr = Prng.int rng m in
    let below = Prng.bool rng in
    let width = 20 + Prng.int rng 150 in
    ranges.(attr) <-
      (if below then
         let hi = Prng.int_in rng ~lo:width ~hi:(s_lo - 1) in
         iv (hi - width + 1) hi
       else
         let lo = Prng.int_in rng ~lo:(s_hi + 1) ~hi:(domain_width - width) in
         iv lo (lo + width - 1));
    Subscription.make ranges
  in
  {
    s;
    set = Array.init k sub;
    redundant = Array.make k true;
    covered = false;
  }

(* ------------------------------------------------------------------ *)
(* 2.b Non-cover: every subscription avoids a small gap on attribute 0 *)

let non_cover rng ~m ~k =
  check_mk ~m ~k ~min_k:1 "Scenario.non_cover";
  let s = tested_subscription m in
  (* Gap of 1% of the domain, centred in s's attribute-0 range. *)
  let gap_width = domain_width / 100 in
  let gap_lo = ((s_lo + s_hi) / 2) - (gap_width / 2) in
  let gap_hi = gap_lo + gap_width - 1 in
  let sub _ =
    let ranges = Array.init m (fun _ -> covering_range rng) in
    (* Each row spans its whole side of the gap on attribute 0. The
       resulting cells (strip [gap, s_hi] on the low side, [s_lo, gap]
       on the high side) overlap across sides, hence never conflict —
       MCS recognizes every row as redundant, which is the Fig. 8-10
       behaviour ("the whole set is actually redundant"). *)
    let below = Prng.bool rng in
    ranges.(0) <-
      (if below then iv (s_lo - 1 - Prng.int rng 10) (gap_lo - 1)
       else iv (gap_hi + 1) (s_hi + 1 + Prng.int rng 10));
    (* Sparse random coverage on the other attributes ("the values over
       the other attributes are generated randomly"): each subscription
       covers only a small cell of s, so without MCS a point witness is
       found within a few draws (Fig. 10's flat low curves). The
       attribute-0 cells stay conflict-free whatever happens here, so
       MCS still removes every row. *)
    for attr = 1 to m - 1 do
      if Prng.float rng < 0.75 then ranges.(attr) <- cutting_range rng
    done;
    Subscription.make ranges
  in
  {
    s;
    set = Array.init k sub;
    redundant = Array.make k true;
    covered = false;
  }

(* ------------------------------------------------------------------ *)
(* 2.c Extreme non-cover *)

let extreme_non_cover ?(stagger_min = 1.0) ?(stagger_spread = 110) rng ~m ~k
    ~gap_fraction =
  check_mk ~m ~k ~min_k:4 "Scenario.extreme_non_cover";
  if not (gap_fraction > 0.0 && gap_fraction < 0.5) then
    invalid_arg "Scenario.extreme_non_cover: gap_fraction outside (0, 0.5)";
  if not (stagger_min >= 1.0 && stagger_spread >= 0) then
    invalid_arg "Scenario.extreme_non_cover: bad stagger bounds";
  let s = tested_subscription m in
  let width = s_hi - s_lo + 1 in
  let gap_width = max 1 (int_of_float (Float.round (gap_fraction *. float_of_int width))) in
  let gap_lo = ((s_lo + s_hi) / 2) - (gap_width / 2) in
  let gap_hi = gap_lo + gap_width - 1 in
  (* Staggered offsets in [stagger_min * gap, stagger_min * gap +
     stagger_spread]: Algorithm 2's smallest strip is the smallest
     offset, so the ρw estimate overshoots the true gap fraction by an
     additive margin of roughly stagger_spread/k. The margin matters
     relatively more for narrow gaps, which is what makes the Fig. 12
     false-decision counts decrease with the gap size. *)
  let stagger () =
    let lo = int_of_float (Float.round (stagger_min *. float_of_int gap_width)) in
    lo + Prng.int rng (stagger_spread + 1)
  in
  let full_other_attrs () =
    Array.init m (fun j -> if j = 0 then iv 0 0 else covering_range rng)
  in
  let sub i =
    let ranges = full_other_attrs () in
    ranges.(0) <-
      (if i = 0 then
         (* Full low side: guarantees coverage of [s_lo, gap_lo - 1]. *)
         iv (s_lo - 1 - Prng.int rng 5) (gap_lo - 1)
       else if i = 1 then
         (* Full high side. *)
         iv (gap_hi + 1) (s_hi + 1 + Prng.int rng 5)
       else if i mod 2 = 0 then
         (* Staggered low side: the short prefix strip [s_lo, a-1]
            conflicts with high strips, keeping MCS honest. *)
         let a = min (gap_lo - 2) (s_lo + stagger ()) in
         iv a (gap_lo - 1)
       else
         (* Staggered high side, stopping short of s's right edge. *)
         let b = max (gap_hi + 2) (s_hi - stagger ()) in
         iv (gap_hi + 1) b);
    Subscription.make ranges
  in
  {
    s;
    set = Array.init k sub;
    redundant = Array.make k true;
    covered = false;
  }

(* ------------------------------------------------------------------ *)
(* Comparison stream (§6.4) *)

type comparison_params = {
  attrs_per_sub_min : int;
  attrs_per_sub_max : int;
  zipf_skew : float;
  pareto_shape : float;
  centre_scale : float;
  width_mean : float;
  width_stddev : float;
}

let default_comparison =
  {
    attrs_per_sub_min = 2;
    attrs_per_sub_max = 5;
    zipf_skew = 2.0;
    pareto_shape = 1.0;
    centre_scale = 60.0;
    width_mean = 320.0;
    width_stddev = 160.0;
  }

let comparison_stream ?(params = default_comparison) rng ~m ~n =
  if m < 1 then invalid_arg "Scenario.comparison_stream: m < 1";
  if n < 0 then invalid_arg "Scenario.comparison_stream: n < 0";
  let zipf = Dist.zipf ~n:m ~skew:params.zipf_skew in
  let gen_sub () =
    let ranges = Array.make m Interval.full in
    let wanted =
      min m
        (Prng.int_in rng ~lo:params.attrs_per_sub_min
           ~hi:params.attrs_per_sub_max)
    in
    let constrained = ref 0 in
    (* Zipf draws with rejection of duplicates; popular attributes end
       up constrained by most subscriptions. *)
    let guard = ref 0 in
    while !constrained < wanted && !guard < 50 * m do
      incr guard;
      let attr = zipf rng in
      if Interval.is_full ranges.(attr) then begin
        incr constrained;
        (* Pareto-clustered centre: interests concentrate near the low
           end of the domain. *)
        let raw = Dist.pareto rng ~scale:1.0 ~shape:params.pareto_shape in
        let centre =
          min (domain_width - 1)
            (int_of_float ((raw -. 1.0) *. params.centre_scale))
        in
        let width =
          Dist.normal_int rng ~mean:params.width_mean
            ~stddev:params.width_stddev ~min:10 ~max:(domain_width - 1)
        in
        let lo = max 0 (centre - (width / 2)) in
        let hi = min (domain_width - 1) (lo + width - 1) in
        ranges.(attr) <- iv lo hi
      end
    done;
    Subscription.make ranges
  in
  List.init n (fun _ -> gen_sub ())

let random_matching_publication rng s =
  Publication.point
    (Array.init (Subscription.arity s) (fun j ->
         Prng.in_interval rng (Subscription.range s j)))

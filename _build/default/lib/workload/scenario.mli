(** Subscription-generation scenarios of the evaluation (§6).

    Each generator produces a {!instance}: a tested subscription [s], a
    set [S] and ground truth known {e by construction} (no oracle call
    needed at experiment scale). The common space is [m] attributes with
    domain [0, 999]; [s] spans [250, 749] on every attribute (existing
    subscriptions may stick out of the domain — the paper's
    [(-inf, +inf)] bounds make that harmless).

    - {b 1.a pairwise covering}: some single [si] covers [s].
    - {b 1.b redundant covering}: the first ~20% of [S] jointly cover
      [s] (slabs along attribute 0, full coverage elsewhere); the
      remaining ~80% only partly cover [s] and are redundant.
    - {b 2.a no intersection}: no [si] intersects [s].
    - {b 2.b non-cover}: every [si] avoids a small gap on attribute 0,
      so [s] is never covered and the whole set is redundant.
    - {b 2.c extreme non-cover}: [S] covers [s] entirely except a
      narrow gap of a configurable fraction of attribute 0; staggered
      ranges around the gap keep MCS from trivializing the instance, so
      RSPC must genuinely hunt for the gap.
    - {b comparison}: an open stream with Zipf(2.0) attribute
      popularity, Pareto(1.0) range centres and normally distributed
      range widths (§6.4). *)

open Probsub_core

type instance = {
  s : Subscription.t;  (** The tested subscription. *)
  set : Subscription.t array;  (** The existing set [S]. *)
  redundant : bool array;
      (** Per-row flag: generated as redundant (removable without
          changing the answer). Same length as [set]. *)
  covered : bool;  (** Ground truth of [s ⊑ ∨ S], by construction. *)
}

val domain_width : int
(** Width of each attribute domain (1000). *)

val pairwise_covering : Prng.t -> m:int -> k:int -> instance
(** Scenario 1.a. @raise Invalid_argument if [m < 1 || k < 1]. *)

val redundant_covering : Prng.t -> m:int -> k:int -> instance
(** Scenario 1.b. Requires [k >= 5] so the 20% core has >= 2 slabs.
    @raise Invalid_argument otherwise. *)

val no_intersection : Prng.t -> m:int -> k:int -> instance
(** Scenario 2.a. *)

val non_cover : Prng.t -> m:int -> k:int -> instance
(** Scenario 2.b: 1%-of-domain gap on attribute 0. *)

val extreme_non_cover :
  ?stagger_min:float -> ?stagger_spread:int -> Prng.t -> m:int -> k:int ->
  gap_fraction:float -> instance
(** Scenario 2.c. [gap_fraction] is the uncovered share of attribute
    0's range (the paper sweeps 0.005 to 0.045). The staggered ranges
    around the gap have offsets drawn from
    [stagger_min * gap, stagger_min * gap + stagger_spread] (defaults
    1.0 and 110): they keep MCS from discarding the instance and
    control how much Algorithm 2's ρw estimate overshoots the true
    witness probability — an additive margin that bites relatively
    harder on narrow gaps, reproducing Fig. 12's decay. Requires
    [k >= 4]. @raise Invalid_argument if the fraction is outside
    (0, 0.5), [stagger_min < 1] or [stagger_spread < 0]. *)

type comparison_params = {
  attrs_per_sub_min : int;  (** Constrained attributes, lower bound. *)
  attrs_per_sub_max : int;
  zipf_skew : float;  (** Attribute popularity (paper: 2.0). *)
  pareto_shape : float;  (** Range-centre skew (paper: 1.0). *)
  centre_scale : float;  (** Domain units per Pareto unit: smaller
                             values cluster interests harder. *)
  width_mean : float;  (** Mean range width (domain units). *)
  width_stddev : float;
}

val default_comparison : comparison_params

val comparison_stream :
  ?params:comparison_params -> Prng.t -> m:int -> n:int ->
  Subscription.t list
(** Scenario (1-2): [n] incoming subscriptions over [m] attributes,
    popularity-skewed as in §6.4. Unconstrained attributes carry the
    full range. *)

val random_matching_publication :
  Prng.t -> Subscription.t -> Publication.t
(** A publication drawn uniformly inside a subscription — used by the
    broker experiments to create matchable traffic. *)

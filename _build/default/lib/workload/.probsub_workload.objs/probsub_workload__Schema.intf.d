lib/workload/schema.mli: Format Interval Prng Probsub_core Subscription

lib/workload/dist.ml: Array Float Prng Probsub_core

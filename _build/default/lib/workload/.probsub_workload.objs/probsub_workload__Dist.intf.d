lib/workload/dist.mli: Probsub_core

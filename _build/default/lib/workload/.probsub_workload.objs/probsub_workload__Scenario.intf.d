lib/workload/scenario.mli: Prng Probsub_core Publication Subscription

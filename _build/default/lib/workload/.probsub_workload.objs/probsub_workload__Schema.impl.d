lib/workload/schema.ml: Array Format Interval Prng Probsub_core Subscription

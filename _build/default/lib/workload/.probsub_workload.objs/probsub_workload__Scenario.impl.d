lib/workload/scenario.ml: Array Dist Float Interval List Printf Prng Probsub_core Publication Subscription

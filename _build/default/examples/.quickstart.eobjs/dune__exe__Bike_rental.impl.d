examples/bike_rental.ml: Engine Format Interval List Prng Probsub_core Publication Subscription Subscription_store

examples/bike_rental.mli:

examples/chain_loss.mli:

examples/textual_pubsub.ml: Array Counting_matcher Domain_codec Engine Float Format List Option Prng Probsub_core Publication Sublang Witness

examples/broker_network.mli:

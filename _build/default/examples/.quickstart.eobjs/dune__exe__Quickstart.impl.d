examples/quickstart.ml: Array Engine Float Format List Option Pairwise Prng Probsub_core Publication String Subscription Subscription_store Witness

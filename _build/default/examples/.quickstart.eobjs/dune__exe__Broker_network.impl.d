examples/broker_network.ml: Broker_node Engine Format Interval List Metrics Network Printf Prng Probsub_broker Probsub_core Publication String Subscription Subscription_store Topology

examples/quickstart.mli:

examples/grid_discovery.mli:

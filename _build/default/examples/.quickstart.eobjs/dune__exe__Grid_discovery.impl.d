examples/grid_discovery.ml: Engine Format Interval List Prng Probsub_core Publication Subscription Subscription_store

examples/textual_pubsub.mli:

examples/chain_loss.ml: Array Chain_model Engine Exact Format List Metrics Network Prng Probsub_broker Probsub_core Probsub_workload Publication Scenario Subscription_store Topology

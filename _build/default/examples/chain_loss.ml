(* Proposition 5 on the full simulator: a subscription erroneously
   classified as covered is not forwarded, and publications that only
   it would match get lost downstream. This example measures the
   delivery probability on a real broker chain (not the process-level
   Chain_model abstraction) and compares it with the Eq. 2 bound.

   Setup per trial: a chain of brokers; k existing subscriptions that
   cover the new subscription s except for a narrow gap are issued at
   the far end (so every broker knows them); s is issued at broker 0
   under the probabilistic group policy; one publication inside the gap
   (matching s and nothing else) is published at a random broker.

   Run with: dune exec examples/chain_loss.exe *)

open Probsub_core
open Probsub_broker
open Probsub_workload

let n_brokers = 8
let k = 20
let m = 4
let trials = 200

let run_delta delta =
  let rng = Prng.of_int 4242 in
  let delivered = ref 0 in
  for _ = 1 to trials do
    let inst =
      (* Accurate rho estimates so the per-check error tracks delta. *)
      Scenario.extreme_non_cover ~stagger_min:1.0 ~stagger_spread:5 rng ~m ~k
        ~gap_fraction:0.02
    in
    let net =
      Network.create
        ~policy:(Subscription_store.Group_policy (Engine.config ~delta ()))
        ~topology:(Topology.chain n_brokers) ~arity:m ~seed:7 ()
    in
    (* Existing subscriptions enter at the far end and flood. *)
    Array.iteri
      (fun i si ->
        ignore (Network.subscribe net ~broker:(n_brokers - 1) ~client:(100 + i) si))
      inst.Scenario.set;
    Network.run net;
    (* The new subscription: erroneous covering anywhere on the chain
       stops its propagation. *)
    let key = Network.subscribe net ~broker:0 ~client:1 inst.Scenario.s in
    Network.run net;
    (* A publication only s matches: a point inside the gap. *)
    let gap_point =
      let witness =
        match Exact.find_witness inst.Scenario.s inst.Scenario.set with
        | Some p -> p
        | None -> assert false (* the instance is non-covered by construction *)
      in
      Publication.point witness
    in
    let publisher = Prng.int rng n_brokers in
    let before = (Network.metrics net).Metrics.notifications in
    ignore (Network.publish net ~broker:publisher gap_point);
    Network.run net;
    let got = (Network.metrics net).Metrics.notifications - before in
    if got > 0 then begin
      ignore key;
      incr delivered
    end
  done;
  float_of_int !delivered /. float_of_int trials

let () =
  Format.printf
    "Proposition 5 on a %d-broker chain (k=%d existing subscriptions, %d \
     trials per delta)@."
    n_brokers k trials;
  Format.printf
    "the publication always exists at some broker, so the loss-free ceiling \
     is 1.0@.@.";
  Format.printf
    "(at very loose deltas the single-trial rounding of d makes the real \
     per-check error deviate from delta, so the bound is approximate there)@.@.";
  Format.printf "%-10s %-22s %-10s@." "delta" "Eq. 2 (rho = 1/n)" "measured";
  List.iter
    (fun delta ->
      (* Every trial publishes exactly once at a uniform broker: the
         Eq. 2 setting with rho = 1/n conditioned on one publication. *)
      let analytic =
        Chain_model.analytic ~n:n_brokers ~rho:(1.0 /. float_of_int n_brokers)
          ~per_check_error:delta
        /. (1.0 -. ((1.0 -. (1.0 /. float_of_int n_brokers)) ** float_of_int n_brokers))
      in
      let measured = run_delta delta in
      Format.printf "%-10g %-22.4f %-10.4f@." delta analytic measured)
    [ 0.5; 0.2; 0.05; 0.01 ]

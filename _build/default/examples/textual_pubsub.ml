(* End-to-end tour of the typed/textual layer: a schema, subscriptions
   and publications written as text (the same syntax the `probsub
   check` and `probsub match` commands accept), the counting matcher
   for fast matching, and the probabilistic engine deciding group
   coverage over the parsed set.

   Run with: dune exec examples/textual_pubsub.exe *)

open Probsub_core

let schema_text =
  {|# stock ticker schema
symbol : enum(ACME, GLOBEX, INITECH, HOOLI)
price  : int[0, 100000]      # cents
volume : int[0, 1000000]
urgent : flag
stamp  : minutes
|}

let subscription_texts =
  [
    "symbol = ACME & price <= 50000";
    "symbol = ACME & price in [20000, 80000] & volume >= 1000";
    "symbol = GLOBEX & urgent = true";
    "price <= 10000";
    "symbol = ACME & price in [10000, 45000] & stamp >= 2006-03-31T00:00";
  ]

let publication_texts =
  [
    "symbol = ACME, price = 42000, volume = 5000, urgent = false, \
     stamp = 2006-03-31T14:30";
    "symbol = GLOBEX, price = 99000, volume = 10, urgent = true, \
     stamp = 2006-04-01T09:00";
    "symbol = HOOLI, price = 5000, volume = 777, urgent = false, \
     stamp = 2006-04-02T11:11";
  ]

let or_die = function
  | Ok v -> v
  | Error e ->
      prerr_endline e;
      exit 1

let () =
  let codec = or_die (Sublang.parse_schema schema_text) in
  Format.printf "schema: %d typed attributes@." (Domain_codec.arity codec);

  (* Parse the subscription set and index it in the counting matcher. *)
  let subs =
    List.map (fun s -> or_die (Sublang.parse_subscription codec s))
      subscription_texts
  in
  let matcher = Counting_matcher.create ~arity:(Domain_codec.arity codec) () in
  List.iteri (fun i sub -> Counting_matcher.add matcher ~id:i sub) subs;

  (* Match the publications. *)
  List.iter
    (fun text ->
      let pub = or_die (Sublang.parse_publication codec text) in
      let hits = Counting_matcher.match_publication matcher pub in
      Format.printf "@.publication: %s@." text;
      if hits = [] then Format.printf "  -> no subscriber@."
      else
        List.iter
          (fun i ->
            Format.printf "  -> %a@."
              (Domain_codec.pp_subscription codec)
              (List.nth subs i))
          hits)
    publication_texts;

  (* Group subsumption over the textual set: is a narrower ACME
     subscription redundant given the set? *)
  let candidate =
    or_die
      (Sublang.parse_subscription codec
         "symbol = ACME & price in [30000, 48000]")
  in
  let report =
    Engine.check
      ~config:(Engine.config ~delta:1e-9 ())
      ~rng:(Prng.of_int 7) candidate (Array.of_list subs)
  in
  Format.printf "@.is %s redundant?@."
    (Sublang.subscription_to_string codec candidate);
  (match report.Engine.verdict with
  | Engine.Covered_pairwise i ->
      Format.printf "  yes - already covered by #%d alone@." i
  | Engine.Covered_probably ->
      Format.printf "  yes - covered by the union (error <= %g)@."
        (Option.value ~default:Float.nan report.Engine.achieved_delta)
  | Engine.Not_covered (Engine.Point p) ->
      Format.printf "  no - e.g. nobody covers %a@." Publication.pp
        (Publication.point p)
  | Engine.Not_covered (Engine.Polyhedron w) ->
      Format.printf "  no - the region %s is uncovered@."
        (Sublang.subscription_to_string codec w.Witness.region)
  | Engine.Not_covered Engine.Empty_set ->
      Format.printf "  no - nothing overlaps it@.")

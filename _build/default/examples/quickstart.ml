(* Quickstart: the probabilistic subsumption API in five minutes.
   Run with: dune exec examples/quickstart.exe *)

open Probsub_core

let () =
  (* 1. Subscriptions are conjunctions of range predicates — boxes over
     integer attributes. Here: two attributes (price cents, quantity). *)
  let s1 = Subscription.of_bounds [ (1000, 5000); (1, 100) ] in
  let s2 = Subscription.of_bounds [ (4000, 9000); (1, 120) ] in
  let s = Subscription.of_bounds [ (2000, 8000); (10, 90) ] in
  Format.printf "s  = %a@." Subscription.pp s;
  Format.printf "s1 = %a@.s2 = %a@." Subscription.pp s1 Subscription.pp s2;

  (* 2. Pairwise covering — what Siena-style systems can do — fails
     here: neither s1 nor s2 alone covers s. *)
  (match Pairwise.find_coverer s [| s1; s2 |] with
  | Some i -> Format.printf "pairwise: covered by s%d@." (i + 1)
  | None -> Format.printf "pairwise: no single subscription covers s@.");

  (* 3. The probabilistic engine answers the *group* coverage question:
     is s inside the union s1 ∪ s2? Definite NOs are always correct;
     YES carries an error bound delta. *)
  let rng = Prng.of_int 2006 in
  let config = Engine.config ~delta:1e-9 () in
  let report = Engine.check ~config ~rng s [| s1; s2 |] in
  (match report.Engine.verdict with
  | Engine.Covered_probably ->
      Format.printf
        "engine: covered by the union (%d trials, error <= %.2g)@."
        report.Engine.iterations
        (Option.value ~default:Float.nan report.Engine.achieved_delta)
  | Engine.Covered_pairwise i ->
      Format.printf "engine: covered by s%d alone@." (i + 1)
  | Engine.Not_covered (Engine.Point p) ->
      Format.printf "engine: NOT covered, witness point (%d, %d)@." p.(0) p.(1)
  | Engine.Not_covered (Engine.Polyhedron w) ->
      Format.printf "engine: NOT covered, witness box %a@." Subscription.pp
        w.Witness.region
  | Engine.Not_covered Engine.Empty_set ->
      Format.printf "engine: NOT covered (no candidates)@.");

  (* 4. A store applies the check on every arrival: covered
     subscriptions are parked, active ones would be propagated. *)
  let store =
    Subscription_store.create
      ~policy:(Subscription_store.Group_policy config) ~arity:2 ~seed:1 ()
  in
  let _id1, _ = Subscription_store.add store s1 in
  let _id2, _ = Subscription_store.add store s2 in
  let _id3, placement = Subscription_store.add store s in
  (match placement with
  | Subscription_store.Covered by ->
      Format.printf "store: s parked as covered (coverers: %s)@."
        (String.concat ", " (List.map string_of_int by))
  | Subscription_store.Active -> Format.printf "store: s stays active@.");
  Format.printf "store: %d active / %d covered@."
    (Subscription_store.active_count store)
    (Subscription_store.covered_count store);

  (* 5. Publications are points; matching uses Algorithm 5 (active set
     first, covered set only on a hit). *)
  let p = Publication.of_list [ 4500; 50 ] in
  let hits = Subscription_store.match_publication store p in
  Format.printf "publication %a matches %d subscription(s)@." Publication.pp p
    (List.length hits)

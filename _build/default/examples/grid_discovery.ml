(* The paper's second Section 3 scenario: resource discovery in Grids.
   Services announce capabilities as subscriptions; jobs publish their
   requirements; the pub/sub layer matches jobs to services. Context
   changes (allocations ending, load changes) make service
   subscriptions churn quickly — exactly the regime where cheap
   subsumption checking pays.

   Attribute encoding (5 attributes, as in Table 2):
     0: CPU cycles available (MHz)
     1: disk (MB)
     2: memory (MB)
     3: service-domain id (hierarchical names flattened to id ranges)
     4: availability window (minutes)

   Run with: dune exec examples/grid_discovery.exe *)

open Probsub_core

(* Table 2's example service: 3000-3500 cycles, 40-50 kB disk, 1 GB
   memory, a.service.org, a four-hour window. Domain names map to id
   ranges: *.org = [0, 999], *.service.org = [100, 199],
   a.service.org = 142. *)
let table2_s1 =
  Subscription.of_list
    [
      Interval.make ~lo:3000 ~hi:3500;
      Interval.make ~lo:40 ~hi:50;
      Interval.point 1024;
      Interval.point 142;
      Interval.make ~lo:(16 * 60) ~hi:(20 * 60);
    ]

let table2_p1 = Publication.of_list [ 3500; 45; 1024; 142; 16 * 60 ]
let table2_p2 = Publication.of_list [ 1035; 45; 512; 500; 12 * 60 + 23 ]

let table2 () =
  Format.printf "--- Table 2: job/service matching, literally ---@.";
  Format.printf "job p1 matches service s1: %b (expected true)@."
    (Publication.matches table2_s1 table2_p1);
  Format.printf "job p2 matches service s1: %b (expected false)@.@."
    (Publication.matches table2_s1 table2_p2)

(* Service classes: a few hardware tiers per data centre, so
   announcements overlap heavily — group coverage territory. *)
let service_subscription rng =
  let tier = Prng.int rng 3 in
  let centre = Prng.int rng 3 in
  let cpu_base = 1000 + (tier * 1500) in
  (* Machines come in tiers and announce in shifts, so announcements of
     the same tier/centre nest heavily. *)
  let shift = Prng.int rng 3 * (8 * 60) in
  Subscription.of_list
    [
      Interval.make
        ~lo:(cpu_base - Prng.int rng 300)
        ~hi:(cpu_base + 1000 + Prng.int rng 500);
      Interval.make ~lo:0 ~hi:(20 + Prng.int rng 200);
      Interval.make ~lo:0 ~hi:(256 lsl Prng.int rng 4);
      Interval.make ~lo:(centre * 250) ~hi:((centre * 250) + 150 + Prng.int rng 99);
      Interval.make ~lo:(shift + Prng.int rng 60)
        ~hi:(shift + (8 * 60) - Prng.int rng 60);
    ]

let job_publication rng =
  Publication.of_list
    [
      1000 + Prng.int rng 3500;
      Prng.int rng 200;
      128 + Prng.int rng 3968;
      Prng.int rng 1000;
      Prng.int rng (24 * 60);
    ]

let discovery_simulation () =
  Format.printf "--- Grid run: 600 service announcements, heavy churn ---@.";
  let rng = Prng.of_int 27182 in
  let config = Engine.config ~delta:1e-6 ~max_iterations:1000 () in
  let group =
    Subscription_store.create
      ~policy:(Subscription_store.Group_policy config) ~arity:5 ~seed:17 ()
  in
  let flooding =
    Subscription_store.create ~policy:Subscription_store.No_coverage ~arity:5
      ~seed:17 ()
  in
  let live = ref [] in
  let scheduled = ref 0 in
  for _ = 1 to 600 do
    let announce = service_subscription rng in
    ignore (Subscription_store.add flooding announce);
    let id, _ = Subscription_store.add group announce in
    live := id :: !live;
    (* A job arrives: match it against the announcements, schedule on
       any matching service. The matched service's announcement is
       withdrawn (it is now busy) — the §5 unsubscription path. *)
    let job = job_publication rng in
    match Subscription_store.match_publication group job with
    | winner :: _ ->
        incr scheduled;
        live := List.filter (fun id -> id <> winner) !live;
        ignore (Subscription_store.remove group winner)
    | [] -> ()
  done;
  Format.printf "flooding store holds %d announcements@."
    (Subscription_store.size flooding);
  Format.printf "group store: %d active / %d covered, %d jobs scheduled@."
    (Subscription_store.active_count group)
    (Subscription_store.covered_count group)
    !scheduled;
  let stats = Subscription_store.stats group in
  Format.printf
    "churn handled: %d removals triggered %d promotions from the covered set@."
    stats.Subscription_store.removed stats.Subscription_store.promoted;
  (* What a broker would actually propagate: the active set only. *)
  Format.printf
    "a broker propagates %d of %d live announcements (%.0f%% traffic saved)@."
    (Subscription_store.active_count group)
    (Subscription_store.size group)
    (100.0
    *. (1.0
       -. float_of_int (Subscription_store.active_count group)
          /. float_of_int (max 1 (Subscription_store.size group))))

let () =
  table2 ();
  discovery_simulation ()

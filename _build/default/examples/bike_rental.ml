(* The paper's Section 3 motivating scenario: a sensor-enriched bicycle
   rental system. Rental posts publish bike availability; users'
   profiles and context generate volatile subscriptions. The example
   reproduces Table 1 literally, then scales the scenario up to show
   what group coverage saves on a realistic subscription population.

   Attribute encoding (5 attributes, as in Table 1):
     0: bID   — bike identifier, categories as id ranges
     1: size  — frame size in inches
     2: brand — brands as small integers (X = 1, Y = 2, * = full range)
     3: rpID  — rental post identifier; areas are id ranges
     4: date  — minutes since an epoch

   Run with: dune exec examples/bike_rental.exe *)

open Probsub_core

let minutes ~day ~hour ~min = (day * 24 * 60) + (hour * 60) + min

(* Friday March 31, 2006 is day 0 of our little epoch. *)
let table1_s1 =
  (* "lady mountain bike size 19'', brand X, Friday evening, near home" *)
  Subscription.of_list
    [
      Interval.make ~lo:1000 ~hi:1999;
      Interval.point 19;
      Interval.point 1;
      Interval.make ~lo:820 ~hi:840;
      Interval.make ~lo:(minutes ~day:0 ~hour:16 ~min:0)
        ~hi:(minutes ~day:0 ~hour:20 ~min:0);
    ]

let table1_s2 =
  (* "bike size 17-19, any brand, close vicinity, lunch break" *)
  Subscription.of_list
    [
      Interval.make ~lo:1 ~hi:1999;
      Interval.make ~lo:17 ~hi:19;
      Interval.full;
      Interval.make ~lo:10 ~hi:12;
      Interval.make ~lo:(minutes ~day:0 ~hour:12 ~min:0)
        ~hi:(minutes ~day:0 ~hour:14 ~min:0);
    ]

let table1_p1 =
  Publication.of_list
    [ 1036; 19; 1; 825; minutes ~day:0 ~hour:18 ~min:23 ]

let table1_p2 =
  Publication.of_list
    [ 1035; 17; 2; 11; minutes ~day:0 ~hour:12 ~min:23 ]

let table1 () =
  Format.printf "--- Table 1: the paper's example, literally ---@.";
  Format.printf "p1 matches s1: %b (expected true)@."
    (Publication.matches table1_s1 table1_p1);
  Format.printf "p2 matches s2: %b (expected true)@."
    (Publication.matches table1_s2 table1_p2);
  Format.printf "p1 matches s2: %b (expected false)@."
    (Publication.matches table1_s2 table1_p1);
  Format.printf "p2 matches s1: %b (expected false)@.@."
    (Publication.matches table1_s1 table1_p2)

(* A population of users around a few city areas. User interests
   cluster (popular sizes, popular areas, rush hours), which is what
   makes group coverage effective. *)
let random_subscription rng =
  let area = Prng.int rng 3 in
  let category = Prng.int rng 2 in
  let size_lo = 16 + Prng.int rng 4 in
  (* Interests cluster: three canonical daily windows (lunch, evening,
     all day), a couple of bike categories, three hot-spot areas. *)
  let day = Prng.int rng 3 in
  let window_lo, window_hi =
    match Prng.int rng 3 with
    | 0 -> (minutes ~day ~hour:12 ~min:0, minutes ~day ~hour:14 ~min:0)
    | 1 -> (minutes ~day ~hour:16 ~min:0, minutes ~day ~hour:20 ~min:0)
    | _ -> (minutes ~day ~hour:8 ~min:0, minutes ~day ~hour:20 ~min:30)
  in
  Subscription.of_list
    [
      (* A bike category: a contiguous id block, possibly broad. *)
      Interval.make ~lo:(category * 1000)
        ~hi:((category * 1000) + 500 + Prng.int rng 499);
      Interval.make ~lo:size_lo ~hi:(size_lo + Prng.int rng 3);
      (if Prng.float rng < 0.6 then Interval.full
       else Interval.point (1 + Prng.int rng 2));
      (* Area around one of three hot spots. *)
      Interval.make ~lo:(area * 300) ~hi:((area * 300) + 100 + Prng.int rng 199);
      Interval.make ~lo:(window_lo + Prng.int rng 30)
        ~hi:(window_hi - Prng.int rng 30);
    ]

let random_bike_publication rng =
  Publication.of_list
    [
      Prng.int rng 2000;
      16 + Prng.int rng 6;
      1 + Prng.int rng 3;
      Prng.int rng 1000;
      Prng.int rng (7 * 24 * 60);
    ]

let fleet_simulation () =
  Format.printf "--- City-scale run: 800 volatile subscriptions ---@.";
  let rng = Prng.of_int 31415 in
  let config = Engine.config ~delta:1e-6 ~max_iterations:1000 () in
  let store policy = Subscription_store.create ~policy ~arity:5 ~seed:9 () in
  let pairwise = store Subscription_store.Pairwise_policy in
  let group = store (Subscription_store.Group_policy config) in
  let keys = ref [] in
  for i = 1 to 800 do
    let sub = random_subscription rng in
    ignore (Subscription_store.add pairwise sub);
    let id, _ = Subscription_store.add group sub in
    keys := id :: !keys;
    (* Context churn: occasionally a user rents a bike or moves, so an
       old subscription is cancelled (possibly promoting parked ones). *)
    if i mod 7 = 0 then begin
      match !keys with
      | old :: rest when Prng.float rng < 0.6 ->
          keys := rest;
          ignore (Subscription_store.remove group old)
      | _ -> ()
    end
  done;
  Format.printf "pairwise policy: %d active / %d covered@."
    (Subscription_store.active_count pairwise)
    (Subscription_store.covered_count pairwise);
  Format.printf "group policy:    %d active / %d covered (after churn)@."
    (Subscription_store.active_count group)
    (Subscription_store.covered_count group);
  let stats = Subscription_store.stats group in
  Format.printf
    "group store: %d added, %d parked on arrival, %d removed, %d promoted@."
    stats.Subscription_store.added stats.Subscription_store.dropped_covered
    stats.Subscription_store.removed stats.Subscription_store.promoted;
  (* Rental posts detect available bikes: publications. *)
  let delivered = ref 0 and missed = ref 0 in
  for _ = 1 to 2000 do
    let p = random_bike_publication rng in
    let hits = Subscription_store.match_publication group p in
    let truth = Subscription_store.match_publication_exhaustive group p in
    delivered := !delivered + List.length hits;
    missed := !missed + (List.length truth - List.length hits)
  done;
  Format.printf
    "2000 availability publications: %d notifications delivered, %d lost to \
     probabilistic covering@."
    !delivered !missed

let () =
  table1 ();
  fleet_simulation ()

(* The paper's Figure 1 walk-through: nine brokers, two subscribers,
   two publishers, reverse path forwarding with subscription covering.

       B2          S1--B1
         \          /
          B3 ------+
          |
          B4 ---- B5--P2
         /  \
    B6--+    B7 ---- B8
    |        |  \
    S2       B9  (B8)
             |
             P1

   s2 ⊑ s1: when S2 subscribes after S1, broker B4 forwards s2 to B3
   but withholds it from B5 and B7 (it already sent them the covering
   s1). Publication n1 (matches s2, hence s1) from P1 at B9 reaches
   both subscribers; n2 (matches s1 only) from P2 at B5 reaches S1
   only.

   Run with: dune exec examples/broker_network.exe *)

open Probsub_core
open Probsub_broker

(* Paper broker Bi = node i-1. *)
let b n = n - 1

let () =
  let topology = Topology.fig1 in
  Format.printf "Fig. 1 network: %d brokers, diameter %d@." (Topology.size topology)
    (Topology.diameter topology);
  let net =
    Network.create ~policy:Subscription_store.Pairwise_policy ~topology
      ~arity:2 ~seed:3 ()
  in
  (* Two-attribute content space; s1 strictly contains s2. *)
  let s1 = Subscription.of_bounds [ (0, 100); (0, 100) ] in
  let s2 = Subscription.of_bounds [ (20, 40); (20, 40) ] in

  (* S1 subscribes at B1 and the subscription floods. *)
  let _k1 = Network.subscribe net ~broker:(b 1) ~client:1 s1 in
  Network.run net;
  let after_s1 = (Network.metrics net).Metrics.subscribe_msgs in
  Format.printf "s1 flooded with %d subscribe messages (8 links x 1)@." after_s1;

  (* S2 subscribes at B6: covering must prune the flood. *)
  let _k2 = Network.subscribe net ~broker:(b 6) ~client:2 s2 in
  Network.run net;
  let m = Network.metrics net in
  Format.printf "s2 propagated with %d more subscribe messages@."
    (m.Metrics.subscribe_msgs - after_s1);
  Format.printf "covering suppressed %d forwards@."
    m.Metrics.suppressed_subscriptions;
  let b4 = Network.broker net (b 4) in
  Format.printf "B4 -> B5: %d active, %d suppressed (s2 covered by s1)@."
    (Broker_node.active_towards b4 ~neighbor:(b 5))
    (Broker_node.suppressed_towards b4 ~neighbor:(b 5))
  ;
  Format.printf "B4 -> B3: %d active (s2 forwarded towards S1's side)@."
    (Broker_node.active_towards b4 ~neighbor:(b 3));

  (* P1 publishes n1 at B9; it matches s2 (and therefore s1). *)
  let n1 = Publication.of_list [ 30; 30 ] in
  ignore (Network.publish net ~broker:(b 9) n1);
  Network.run net;
  let deliveries kind =
    List.filter_map
      (fun n ->
        if n.Network.pub_id = kind then
          Some (Printf.sprintf "S%d@B%d" n.Network.client (n.Network.broker + 1))
        else None)
      (Network.notifications net)
  in
  Format.printf "n1 (matches s2 and s1) delivered to: %s@."
    (String.concat ", " (deliveries 0));

  (* P2 publishes n2 at B5; it matches s1 but not s2. *)
  let n2 = Publication.of_list [ 80; 80 ] in
  ignore (Network.publish net ~broker:(b 5) n2);
  Network.run net;
  Format.printf "n2 (matches s1 only)   delivered to: %s@."
    (String.concat ", " (deliveries 1));

  let m = Network.metrics net in
  Format.printf "totals: %d subscribe, %d publish messages, %d notifications@."
    m.Metrics.subscribe_msgs m.Metrics.publish_msgs m.Metrics.notifications;

  (* The same walk-through under the probabilistic group policy, on a
     bigger random network, to show the traffic difference. *)
  Format.printf "@.--- 30-broker random network, 200 subscriptions ---@.";
  let rng = Prng.of_int 99 in
  let topo = Topology.random_connected rng ~n:30 ~extra_edges:10 in
  let run_policy name policy =
    let net = Network.create ~policy ~topology:topo ~arity:3 ~seed:5 () in
    let wrng = Prng.of_int 123 in
    for i = 1 to 200 do
      let sub =
        Subscription.of_list
          (List.init 3 (fun _ ->
               let lo = Prng.int wrng 500 in
               Interval.make ~lo ~hi:(lo + 100 + Prng.int wrng 400)))
      in
      ignore (Network.subscribe net ~broker:(i mod 30) ~client:i sub)
    done;
    Network.run net;
    (* A burst of publications to measure delivery. *)
    let lost = ref 0 and delivered = ref 0 in
    for _ = 1 to 100 do
      let p =
        Publication.of_list (List.init 3 (fun _ -> Prng.int wrng 1000))
      in
      let expected = List.length (Network.expected_recipients net p) in
      let before = (Network.metrics net).Metrics.notifications in
      ignore (Network.publish net ~broker:(Prng.int wrng 30) p);
      Network.run net;
      let got = (Network.metrics net).Metrics.notifications - before in
      delivered := !delivered + got;
      lost := !lost + (expected - got)
    done;
    let m = Network.metrics net in
    Format.printf
      "%-10s subscribe msgs: %5d (suppressed %5d)  publish msgs: %5d  \
       delivered: %d  lost: %d@."
      name m.Metrics.subscribe_msgs m.Metrics.suppressed_subscriptions
      m.Metrics.publish_msgs !delivered !lost
  in
  run_policy "flooding" Subscription_store.No_coverage;
  run_policy "pairwise" Subscription_store.Pairwise_policy;
  run_policy "group"
    (Subscription_store.Group_policy
       (Engine.config ~delta:1e-6 ~max_iterations:500 ()))

open Probsub_core
open Probsub_workload

type row = {
  policy : string;
  active_size : int;
  covered_size : int;
  scans_per_pub : float;
  matched : int;
  missed : int;
}

let run ?(subs = 1500) ?(pubs = 500) ?(m = 10) ~seed () =
  let rng = Prng.of_int seed in
  let stream = Scenario.comparison_stream rng ~m ~n:subs in
  (* Half the publications land inside a random subscription (the
     covered-set path gets exercised); half land in the sparse upper
     part of the domain where subscriptions are rare (the Algorithm 5
     fast path: on an active-set miss the covered set is skipped). *)
  let stream_arr = Array.of_list stream in
  let sparse = Schema.uniform ~arity:m ~lo:Scenario.domain_width ~hi:(2 * Scenario.domain_width) in
  let publications =
    List.init pubs (fun i ->
        if i mod 2 = 0 then Schema.random_point rng sparse
        else
          let s = stream_arr.(Prng.int rng (Array.length stream_arr)) in
          Array.init m (fun j -> Prng.in_interval rng (Subscription.range s j)))
    |> List.map Publication.point
  in
  let policies =
    [
      ("flooding", Subscription_store.No_coverage);
      ("pair-wise", Subscription_store.Pairwise_policy);
      ( "group",
        Subscription_store.Group_policy
          (Engine.config ~delta:1e-6 ~max_iterations:1500 ()) );
    ]
  in
  List.map
    (fun (name, policy) ->
      let store =
        Subscription_store.create ~policy ~arity:m ~seed:(seed + 7) ()
      in
      List.iter (fun s -> ignore (Subscription_store.add store s)) stream;
      (* "Touched" = counting-index hits processed (the indexed active
         path's unit of work) plus one-by-one tests of covered
         subscriptions during Algorithm 5 descent. *)
      let scans_before =
        let st = Subscription_store.stats store in
        st.Subscription_store.active_scans
        + st.Subscription_store.covered_scans
        + st.Subscription_store.index_hits
      in
      let matched = ref 0 and missed = ref 0 in
      List.iter
        (fun p ->
          let hits = Subscription_store.match_publication store p in
          let truth = Subscription_store.match_publication_exhaustive store p in
          matched := !matched + List.length hits;
          missed := !missed + (List.length truth - List.length hits))
        publications;
      let scans_after =
        let st = Subscription_store.stats store in
        st.Subscription_store.active_scans
        + st.Subscription_store.covered_scans
        + st.Subscription_store.index_hits
      in
      {
        policy = name;
        active_size = Subscription_store.active_count store;
        covered_size = Subscription_store.covered_count store;
        scans_per_pub =
          float_of_int (scans_after - scans_before) /. float_of_int pubs;
        matched = !matched;
        missed = !missed;
      })
    policies

let print rows =
  Printf.printf "== matching: Algorithm 5 under the three policies ==\n";
  Printf.printf "%-10s %8s %8s %14s %9s %7s\n" "policy" "active" "covered"
    "scans/pub" "matched" "missed";
  List.iter
    (fun r ->
      Printf.printf "%-10s %8d %8d %14.1f %9d %7d\n" r.policy r.active_size
        r.covered_size r.scans_per_pub r.matched r.missed)
    rows

(* Everything a broker process does runs on the single select loop in
   [run]/[step]: any blocking call anywhere below stalls every
   connection. The attribute makes this module's definitions roots of
   the blocking-taint pass. *)
[@@@problint.event_loop]

open Probsub_core
module Message = Probsub_broker.Message
module Broker_node = Probsub_broker.Broker_node
module Reliable_link = Probsub_broker.Reliable_link
module Event_queue = Probsub_broker.Event_queue
module Device = Probsub_store_log.Device

type config = {
  id : int;
  neighbors : int list;
  sock_dir : string;
  wal_dir : string option;
  arity : int;
  seed : int;
  policy : Subscription_store.policy;
  lease_ttl : float;
  refresh_interval : float;
  rto : float;
  max_retries : int;
  max_queue_bytes : int;
  backoff_base : float;
  backoff_cap : float;
}

let config ?(wal_dir = None) ?(policy = Subscription_store.Pairwise_policy)
    ?(lease_ttl = 30.0) ?(refresh_interval = 10.0) ?(rto = 4.0)
    ?(max_retries = 6) ?(max_queue_bytes = 1 lsl 20) ?(backoff_base = 0.05)
    ?(backoff_cap = 2.0) ~id ~neighbors ~sock_dir ~arity ~seed () =
  if id < 0 then invalid_arg "Broker_server.config: negative broker id";
  if List.mem id neighbors then
    invalid_arg "Broker_server.config: broker cannot neighbor itself";
  if
    not
      (lease_ttl > 0.0
      && refresh_interval > 0.0
      && refresh_interval < lease_ttl
      && rto > 0.0 && max_retries >= 0)
  then invalid_arg "Broker_server.config: bad recovery parameters";
  {
    id;
    neighbors;
    sock_dir;
    wal_dir;
    arity;
    seed;
    policy;
    lease_ttl;
    refresh_interval;
    rto;
    max_retries;
    max_queue_bytes;
    backoff_base;
    backoff_cap;
  }

let socket_path ~sock_dir id =
  Filename.concat sock_dir (Printf.sprintf "broker-%d.sock" id)

let now = Clock.now

type timer =
  | T_retransmit of int * int  (* peer id, sequence number *)
  | T_refresh  (* drive a lease-refresh wave for local client subs *)
  | T_sweep  (* lease expiry + WAL compaction tick *)
  | T_reconnect of int  (* peer id whose backoff delay elapsed *)

(* Outgoing link to one neighbour. The Reliable_link sender and the
   sequence counter belong to our process session and survive
   reconnects; the Conn dies and is remade under backoff. *)
type peer = {
  p_id : int;
  backoff : Backoff.t;
  sender : (Message.payload, Event_queue.handle) Reliable_link.sender;
  mutable p_conn : Conn.t option;
  mutable welcomed : bool;  (* Welcome received: resume done, may send *)
  mutable next_seq : int;
  mutable reconnect_armed : bool;
}

(* Receive-side state per remote identity — NOT per connection: the
   dedup window and high-water mark must survive the remote's
   reconnects within one remote session, and reset when its session
   changes. *)
type recv_state = {
  mutable r_session : int;
  r_window : Reliable_link.receiver;
  mutable r_last_seen : int;
}

type who = Unknown | From_peer of int | From_client of int

type inbound = {
  conn : Conn.t;
  mutable who : who;
  mutable in_seq : int;  (* our outbound seq on this connection *)
}

type stats = {
  mutable accepted : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable retransmits : int;
  mutable gave_up : int;
  mutable refresh_waves : int;
  mutable sweeps : int;
  mutable sheds : int;
  mutable corrupt_conns : int;
}

type t = {
  cfg : config;
  node : Broker_node.t;
  session : int;
  listen_fd : Unix.file_descr;
  timers : timer Event_queue.t;
  peers : peer array;
  mutable inbound : inbound list;
  peer_recv : (int, recv_state) Hashtbl.t;
  client_recv : (int, recv_state) Hashtbl.t;
  client_conn : (int, inbound) Hashtbl.t;
  stats : stats;
}

let find_peer t id =
  let rec go i =
    if i >= Array.length t.peers then None
    else if t.peers.(i).p_id = id then Some t.peers.(i)
    else go (i + 1)
  in
  go 0

let recv_state_for table id =
  match Hashtbl.find_opt table id with
  | Some rs -> rs
  | None ->
      let rs =
        {
          r_session = -1;
          r_window = Reliable_link.receiver ~capacity:1024 ();
          r_last_seen = 0;
        }
      in
      Hashtbl.replace table id rs;
      rs

let arm t ~delay timer = Event_queue.push t.timers ~time:(now () +. delay) timer

let arm_cancelable t ~delay timer =
  Event_queue.push_cancelable t.timers ~time:(now () +. delay) timer

(* Send one message to a peer. Acked messages are tracked for
   retransmission whether or not the link is up — if it is down, the
   retry budget burns against the outage and the refresh waves repair
   whatever gives up, exactly the simulator's semantics. *)
let send_peer t peer msg =
  let seq = peer.next_seq in
  peer.next_seq <- seq + 1;
  if Wire.acked msg then begin
    let payload =
      match msg with
      | Wire.Payload p -> p
      | Wire.Hello _ | Wire.Welcome _ | Wire.Notify _ | Wire.Frame_ack _
      | Wire.Bye ->
          invalid_arg "Broker_server.send_peer: only payloads are acked"
    in
    Reliable_link.track peer.sender ~seq ~item:payload
      ~timer:(arm_cancelable t ~delay:t.cfg.rto (T_retransmit (peer.p_id, seq)))
  end;
  match peer.p_conn with
  | Some c when peer.welcomed || not (Wire.acked msg) ->
      t.stats.frames_out <- t.stats.frames_out + 1;
      t.stats.sheds <- t.stats.sheds + Conn.send_msg c ~seq msg
  | Some _ | None -> ()

let send_inbound t ic msg =
  let seq = ic.in_seq in
  ic.in_seq <- seq + 1;
  t.stats.frames_out <- t.stats.frames_out + 1;
  t.stats.sheds <- t.stats.sheds + Conn.send_msg ic.conn ~seq msg

(* Notify fan-out is batched per connection: one matched publication
   can notify many subscriptions of the same client, and queuing each
   frame separately costs one write-queue append + shed pass per
   subscriber. Frames are coalesced into a per-client buffer (seqs
   assigned at collection time, so the numbering is identical to the
   unbatched path) and appended as a single sheddable write-queue
   entry per connection. Forwards keep their per-peer path — they ride
   the reliable link and must be tracked frame-by-frame. *)
let apply_actions t actions =
  let batches = ref [] in
  (* (client, conn, frames, count), first-seen order, reversed. *)
  List.iter
    (fun action ->
      match action with
      | Broker_node.Forward { to_; payload } -> (
          match find_peer t to_ with
          | Some peer -> send_peer t peer (Wire.Payload payload)
          | None -> () (* topology drift: drop rather than crash *))
      | Broker_node.Notify { client; key; pub_id } -> (
          match Hashtbl.find_opt t.client_conn client with
          | Some ic ->
              let _, _, buf, count =
                match
                  List.find_opt (fun (c, _, _, _) -> c = client) !batches
                with
                | Some b -> b
                | None ->
                    let b = (client, ic, Buffer.create 256, ref 0) in
                    batches := b :: !batches;
                    b
              in
              let seq = ic.in_seq in
              ic.in_seq <- seq + 1;
              Buffer.add_string buf
                (Wire.frame ~seq (Wire.Notify { client; key; pub_id }));
              incr count
          | None -> () (* client not connected; notification is lost *)))
    actions;
  List.iter
    (fun (_, ic, buf, count) ->
      t.stats.frames_out <- t.stats.frames_out + !count;
      t.stats.sheds <-
        t.stats.sheds
        + Conn.send ic.conn ~cls:Wire.Sheddable (Buffer.contents buf))
    (List.rev !batches)

let handle_payload t ~origin payload =
  apply_actions t (Broker_node.handle t.node ~now:(now ()) ~origin payload)

(* Connect attempt to one neighbour; failure re-arms the backoff
   timer. Unix-domain connects either succeed immediately or fail —
   there is no long in-progress window to track. *)
let try_connect t peer =
  peer.reconnect_armed <- false;
  let path = socket_path ~sock_dir:t.cfg.sock_dir peer.p_id in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    (Unix.connect fd (Unix.ADDR_UNIX path)
    [@problint.allow blocking
      "UNIX-domain connects either succeed or fail immediately against \
       the listener backlog; there is no TCP-style in-progress window to \
       wait out"])
  with
  | () ->
      let c = Conn.create ~max_queue_bytes:t.cfg.max_queue_bytes fd in
      peer.p_conn <- Some c;
      peer.welcomed <- false;
      (* Hello rides seq 0 outside the acked space. *)
      t.stats.frames_out <- t.stats.frames_out + 1;
      t.stats.sheds <-
        t.stats.sheds
        + Conn.send_msg c ~seq:0
            (Wire.Hello
               {
                 role = Wire.Peer_role t.cfg.id;
                 session = t.session;
                 last_seen = 0;
               })
  | exception Unix.Unix_error (_, _, _) -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      match Backoff.next_delay peer.backoff with
      | Some delay ->
          peer.reconnect_armed <- true;
          arm t ~delay (T_reconnect peer.p_id)
      | None -> () (* budget exhausted: the peer stays down *))

let drop_peer_conn t peer =
  (match peer.p_conn with Some c -> Conn.close c | None -> ());
  peer.p_conn <- None;
  peer.welcomed <- false;
  if not peer.reconnect_armed then begin
    match Backoff.next_delay peer.backoff with
    | Some delay ->
        peer.reconnect_armed <- true;
        arm t ~delay (T_reconnect peer.p_id)
    | None -> ()
  end

(* Welcome on an outgoing link: the peer told us the highest seq it
   processed from our current session. Everything at or below it is
   as-good-as-acked; everything above must go out again, in order. *)
let handle_welcome t peer ~last_seen =
  peer.welcomed <- true;
  Backoff.reset peer.backoff;
  List.iter
    (fun (seq, payload) ->
      if seq <= last_seen then begin
        match Reliable_link.ack peer.sender ~seq with
        | Some h -> ignore (Event_queue.cancel t.timers h)
        | None -> ()
      end
      else
        match peer.p_conn with
        | Some c ->
            t.stats.frames_out <- t.stats.frames_out + 1;
            t.stats.sheds <-
              t.stats.sheds + Conn.send_msg c ~seq (Wire.Payload payload)
        | None -> ())
    (Reliable_link.unacked peer.sender)

(* An acked frame arriving on an inbound connection: always re-ack
   (the previous ack may have been lost with the old connection), then
   dedup against the sender's session window. *)
let admit_acked t ic rs ~seq =
  send_inbound t ic (Wire.Frame_ack { seq });
  match Reliable_link.admit rs.r_window ~seq with
  | `Duplicate -> false
  | `Fresh ->
      if seq > rs.r_last_seen then rs.r_last_seen <- seq;
      true

let handle_msg t ic (seq, msg) =
  t.stats.frames_in <- t.stats.frames_in + 1;
  match (ic.who, msg) with
  | Unknown, Wire.Hello { role; session; last_seen = _ } ->
      let table, id =
        match role with
        | Wire.Peer_role p -> (t.peer_recv, p)
        | Wire.Client_role c -> (t.client_recv, c)
      in
      let rs = recv_state_for table id in
      if rs.r_session <> session then begin
        (* New remote session: its numbering restarts, so stale seqs
           must not suppress fresh frames. *)
        rs.r_session <- session;
        rs.r_last_seen <- 0;
        Reliable_link.reset_receiver rs.r_window
      end;
      (match role with
      | Wire.Peer_role p -> ic.who <- From_peer p
      | Wire.Client_role c ->
          ic.who <- From_client c;
          Hashtbl.replace t.client_conn c ic);
      send_inbound t ic
        (Wire.Welcome { session = t.session; last_seen = rs.r_last_seen })
  | Unknown, _ -> () (* pre-handshake noise: ignore until Hello *)
  | From_peer p, Wire.Payload payload ->
      let process =
        if Wire.acked msg then
          admit_acked t ic (recv_state_for t.peer_recv p) ~seq
        else true
      in
      if process then handle_payload t ~origin:(Message.Link p) payload
  | From_client c, Wire.Payload payload ->
      let process =
        if Wire.acked msg then
          admit_acked t ic (recv_state_for t.client_recv c) ~seq
        else true
      in
      if process then handle_payload t ~origin:(Message.Client c) payload
  | From_peer p, Wire.Frame_ack { seq = acked } -> (
      (* The remote acks what we sent on OUR outgoing link to it. *)
      match find_peer t p with
      | Some peer -> (
          match Reliable_link.ack peer.sender ~seq:acked with
          | Some h -> ignore (Event_queue.cancel t.timers h)
          | None -> ())
      | None -> ())
  | From_peer p, Wire.Welcome { last_seen; session = _ } -> (
      (* Welcome answered on the socket we opened: the accept side of
         this conn object is their reply channel. *)
      match find_peer t p with
      | Some peer -> handle_welcome t peer ~last_seen
      | None -> ())
  | _, Wire.Bye -> Conn.close ic.conn
  | _, (Wire.Hello _ | Wire.Welcome _ | Wire.Notify _ | Wire.Frame_ack _) ->
      () (* role mismatch or client-bound traffic: drop *)

let fire_timer t timer =
  match timer with
  | T_retransmit (pid, seq) -> (
      match find_peer t pid with
      | None -> ()
      | Some peer -> (
          match Reliable_link.on_timeout peer.sender ~seq with
          | Reliable_link.Not_tracked -> ()
          | Reliable_link.Give_up -> t.stats.gave_up <- t.stats.gave_up + 1
          | Reliable_link.Retransmit { item; rto } ->
              t.stats.retransmits <- t.stats.retransmits + 1;
              (match peer.p_conn with
              | Some c when peer.welcomed ->
                  t.stats.frames_out <- t.stats.frames_out + 1;
                  t.stats.sheds <-
                    t.stats.sheds + Conn.send_msg c ~seq (Wire.Payload item)
              | Some _ | None -> ());
              Reliable_link.set_timer peer.sender ~seq
                (arm_cancelable t ~delay:rto (T_retransmit (pid, seq)))))
  | T_refresh ->
      t.stats.refresh_waves <- t.stats.refresh_waves + 1;
      List.iter
        (fun (key, client, sub) ->
          let epoch = Broker_node.subscription_epoch t.node ~key + 1 in
          handle_payload t ~origin:(Message.Client client)
            (Message.Subscribe { key; sub; epoch }))
        (Broker_node.client_subscriptions t.node);
      arm t ~delay:t.cfg.refresh_interval T_refresh
  | T_sweep ->
      t.stats.sweeps <- t.stats.sweeps + 1;
      let _expired, actions = Broker_node.sweep t.node ~now:(now ()) in
      apply_actions t actions;
      ignore (Broker_node.maybe_compact t.node);
      arm t ~delay:t.cfg.refresh_interval T_sweep
  | T_reconnect pid -> (
      match find_peer t pid with
      | Some peer when peer.p_conn = None -> try_connect t peer
      | Some _ | None -> ())

let fire_due_timers t =
  let rec go () =
    match Event_queue.peek_time t.timers with
    | Some time when time <= now () -> (
        match Event_queue.pop t.timers with
        | Some (_, timer) ->
            fire_timer t timer;
            go ()
        | None -> ())
    | Some _ | None -> ()
  in
  go ()

let create cfg =
  let device =
    Option.map (fun dir -> Device.fs ~dir) cfg.wal_dir
  in
  let node =
    Broker_node.create ?device ~recover:true ~lease_ttl:cfg.lease_ttl
      ~id:cfg.id ~neighbors:cfg.neighbors ~policy:cfg.policy ~arity:cfg.arity
      ~seed:cfg.seed ()
  in
  let session = Clock.session_id () in
  let path = socket_path ~sock_dir:cfg.sock_dir cfg.id in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (match
     Unix.bind listen_fd (Unix.ADDR_UNIX path);
     Unix.listen listen_fd 64;
     Unix.set_nonblock listen_fd
   with
  | () -> ()
  | exception e ->
      (* EADDRINUSE / permission failures must not leak the socket:
         create is retried by the harness after a crashed broker. *)
      Unix.close listen_fd;
      raise e);
  let t =
    {
      cfg;
      node;
      session;
      listen_fd;
      timers = Event_queue.create ();
      peers =
        Array.of_list
          (List.map
             (fun p_id ->
               {
                 p_id;
                 backoff =
                   Backoff.create ~base:cfg.backoff_base ~cap:cfg.backoff_cap
                     ~seed:(cfg.seed + (cfg.id * 65599) + p_id)
                     ();
                 sender =
                   Reliable_link.sender
                     { Reliable_link.rto = cfg.rto;
                       max_retries = cfg.max_retries };
                 p_conn = None;
                 welcomed = false;
                 next_seq = 1;
                 reconnect_armed = false;
               })
             cfg.neighbors);
      inbound = [];
      peer_recv = Hashtbl.create 8;
      client_recv = Hashtbl.create 64;
      client_conn = Hashtbl.create 64;
      stats =
        {
          accepted = 0;
          frames_in = 0;
          frames_out = 0;
          retransmits = 0;
          gave_up = 0;
          refresh_waves = 0;
          sweeps = 0;
          sheds = 0;
          corrupt_conns = 0;
        };
    }
  in
  Array.iter (fun peer -> try_connect t peer) t.peers;
  arm t ~delay:cfg.refresh_interval T_refresh;
  arm t ~delay:cfg.refresh_interval T_sweep;
  t

let accept_ready t =
  let rec go () =
    match Unix.accept t.listen_fd with
    | fd, _ ->
        t.stats.accepted <- t.stats.accepted + 1;
        let c = Conn.create ~max_queue_bytes:t.cfg.max_queue_bytes fd in
        t.inbound <- { conn = c; who = Unknown; in_seq = 0 } :: t.inbound;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

(* Drain every decoded frame from one connection; returns false when
   the connection must be torn down. *)
let drain_conn t ic =
  let rec go () =
    match Conn.next ic.conn with
    | `Msg (seq, msg) ->
        handle_msg t ic (seq, msg);
        if Conn.closed ic.conn then false else go ()
    | `Pending -> true
    | `Corrupt _ ->
        t.stats.corrupt_conns <- t.stats.corrupt_conns + 1;
        false
  in
  go ()

let read_conn t ic =
  match Conn.recv ic.conn with
  | `Data _ -> drain_conn t ic
  | `Blocked -> true
  | `Eof -> false

(* Read the reply direction of a link we opened: Welcome and acks. The
   throwaway inbound view only routes dispatch; nothing acked arrives
   here, so its seq counter is never consulted. *)
let read_outgoing t peer c =
  read_conn t { conn = c; who = From_peer peer.p_id; in_seq = 0 }

(* Forget a dead inbound connection; receive state stays for resume. *)
let reap_inbound t ic =
  Conn.close ic.conn;
  (match ic.who with
  | From_client c -> (
      match Hashtbl.find_opt t.client_conn c with
      | Some cur
        when (cur == ic)
             [@problint.allow
               unsafe
                 "identity, not structure: unregister the client only if \
                  the registered connection is this very one — a \
                  reconnected client may already own the slot"] ->
          Hashtbl.remove t.client_conn c
      | Some _ | None -> ())
  | From_peer _ | Unknown -> ());
  t.inbound <-
    List.filter
      (fun other ->
        not
          ((other == ic)
          [@problint.allow
            unsafe
              "identity, not structure: drop exactly this connection \
               record from the inbound list"]))
      t.inbound

let step t =
  fire_due_timers t;
  let peer_list = Array.to_list t.peers in
  let read_fds =
    (t.listen_fd :: List.map (fun ic -> Conn.fd ic.conn) t.inbound)
    @ List.filter_map (fun peer -> Option.map Conn.fd peer.p_conn) peer_list
  in
  let write_fds =
    List.filter_map
      (fun ic ->
        if Conn.wants_write ic.conn then Some (Conn.fd ic.conn) else None)
      t.inbound
    @ List.filter_map
        (fun peer ->
          match peer.p_conn with
          | Some c when Conn.wants_write c -> Some (Conn.fd c)
          | Some _ | None -> None)
        peer_list
  in
  let timeout =
    let horizon =
      match Event_queue.peek_time t.timers with
      | Some time -> Float.max 0.0 (time -. now ())
      | None -> 0.25
    in
    Float.min horizon 0.25
  in
  let readable, writable =
    match Unix.select read_fds write_fds [] timeout with
    | r, w, _ -> (r, w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [])
  in
  if List.mem t.listen_fd readable then accept_ready t;
  (* Peers: flush writes, read replies, reap dead links into backoff. *)
  Array.iter
    (fun peer ->
      match peer.p_conn with
      | None -> ()
      | Some c ->
          let ok_w =
            if List.mem (Conn.fd c) writable then Conn.flush c = `Ok else true
          in
          let ok_r =
            if ok_w && List.mem (Conn.fd c) readable then read_outgoing t peer c
            else ok_w
          in
          if (not ok_r) || Conn.closed c then drop_peer_conn t peer)
    t.peers;
  List.iter
    (fun ic ->
      if Conn.closed ic.conn then reap_inbound t ic
      else begin
        let ok_w =
          if List.mem (Conn.fd ic.conn) writable then Conn.flush ic.conn = `Ok
          else true
        in
        let ok_r =
          if ok_w && List.mem (Conn.fd ic.conn) readable then read_conn t ic
          else ok_w
        in
        if not ok_r then reap_inbound t ic
      end)
    t.inbound;
  (* Opportunistic flush of everything still queued. *)
  Array.iter
    (fun peer ->
      match peer.p_conn with
      | Some c when Conn.wants_write c ->
          if Conn.flush c = `Closed then drop_peer_conn t peer
      | Some _ | None -> ())
    t.peers;
  List.iter
    (fun ic ->
      if Conn.wants_write ic.conn && Conn.flush ic.conn = `Closed then
        reap_inbound t ic)
    t.inbound

let shutdown t =
  Array.iter
    (fun peer -> match peer.p_conn with Some c -> Conn.close c | None -> ())
    t.peers;
  List.iter (fun ic -> Conn.close ic.conn) t.inbound;
  (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
  try Unix.unlink (socket_path ~sock_dir:t.cfg.sock_dir t.cfg.id)
  with Unix.Unix_error _ -> ()

let run ?(on_ready = fun () -> ()) ?(should_stop = fun () -> false) cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t = create cfg in
  on_ready ();
  let rec loop () = if should_stop () then shutdown t else (step t; loop ()) in
  loop ()

let node t = t.node
let session t = t.session
let stats t = t.stats

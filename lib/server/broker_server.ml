(* Everything a broker process does runs on the single select loop in
   [run]/[step]: any blocking call anywhere below stalls every
   connection. The attribute makes this module's definitions roots of
   the blocking-taint pass. *)
[@@@problint.event_loop]

open Probsub_core
module Message = Probsub_broker.Message
module Broker_node = Probsub_broker.Broker_node
module Reliable_link = Probsub_broker.Reliable_link
module Event_queue = Probsub_broker.Event_queue
module Device = Probsub_store_log.Device

type config = {
  id : int;
  neighbors : int list;
  sock_dir : string;
  wal_dir : string option;
  arity : int;
  seed : int;
  policy : Subscription_store.policy;
  lease_ttl : float;
  refresh_interval : float;
  rto : float;
  max_retries : int;
  max_queue_bytes : int;
  backoff_base : float;
  backoff_cap : float;
  standby_of : string option;
      (* socket path of the primary this process shadows; None = primary *)
  repl_hb_interval : float;
  repl_hb_timeout : float;
}

let config ?(wal_dir = None) ?(policy = Subscription_store.Pairwise_policy)
    ?(lease_ttl = 30.0) ?(refresh_interval = 10.0) ?(rto = 4.0)
    ?(max_retries = 6) ?(max_queue_bytes = 1 lsl 20) ?(backoff_base = 0.05)
    ?(backoff_cap = 2.0) ?(standby_of = None) ?(repl_hb_interval = 0.5)
    ?(repl_hb_timeout = 2.0) ~id ~neighbors ~sock_dir ~arity ~seed () =
  if id < 0 then invalid_arg "Broker_server.config: negative broker id";
  if List.mem id neighbors then
    invalid_arg "Broker_server.config: broker cannot neighbor itself";
  if
    not
      (lease_ttl > 0.0
      && refresh_interval > 0.0
      && refresh_interval < lease_ttl
      && rto > 0.0 && max_retries >= 0)
  then invalid_arg "Broker_server.config: bad recovery parameters";
  if not (repl_hb_interval > 0.0 && repl_hb_timeout > repl_hb_interval) then
    invalid_arg "Broker_server.config: bad replication heartbeat parameters";
  if standby_of <> None && wal_dir = None then
    invalid_arg "Broker_server.config: a standby needs a wal_dir to replicate into";
  {
    id;
    neighbors;
    sock_dir;
    wal_dir;
    arity;
    seed;
    policy;
    lease_ttl;
    refresh_interval;
    rto;
    max_retries;
    max_queue_bytes;
    backoff_base;
    backoff_cap;
    standby_of;
    repl_hb_interval;
    repl_hb_timeout;
  }

let socket_path ~sock_dir id =
  Filename.concat sock_dir (Printf.sprintf "broker-%d.sock" id)

let now = Clock.now

type timer =
  | T_retransmit of int * int  (* peer id, sequence number *)
  | T_refresh  (* drive a lease-refresh wave for local client subs *)
  | T_sweep  (* lease expiry + WAL compaction tick *)
  | T_reconnect of int  (* peer id whose backoff delay elapsed *)
  | T_repl_hb  (* primary → standby replication heartbeat *)
  | T_standby_check  (* standby watchdog: redial and failover detection *)

(* The failover role state machine. A broker starts [Primary] (possibly
   after finding its socket free) or [Standby] (configured with
   [standby_of]); a standby that stops hearing heartbeats promotes
   itself to [Primary]; a primary greeted with a higher epoch for its
   own identity demotes to [Fenced] and never acks a write again. *)
type role = Primary | Standby | Fenced

(* Outgoing link to one neighbour. The Reliable_link sender and the
   sequence counter belong to our process session and survive
   reconnects; the Conn dies and is remade under backoff. *)
type peer = {
  p_id : int;
  backoff : Backoff.t;
  sender : (Message.payload, Event_queue.handle) Reliable_link.sender;
  mutable p_conn : Conn.t option;
  mutable welcomed : bool;  (* Welcome received: resume done, may send *)
  mutable next_seq : int;
  mutable reconnect_armed : bool;
}

(* Receive-side state per remote identity — NOT per connection: the
   dedup window and high-water mark must survive the remote's
   reconnects within one remote session, and reset when its session
   changes. *)
type recv_state = {
  mutable r_session : int;
  r_window : Reliable_link.receiver;
  mutable r_last_seen : int;
}

type who = Unknown | From_peer of int | From_client of int | From_standby

type inbound = {
  conn : Conn.t;
  mutable who : who;
  mutable in_seq : int;  (* our outbound seq on this connection *)
}

type stats = {
  mutable accepted : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable retransmits : int;
  mutable gave_up : int;
  mutable refresh_waves : int;
  mutable sweeps : int;
  mutable sheds : int;
  mutable corrupt_conns : int;
}

type t = {
  cfg : config;
  mutable node : Broker_node.t;
  session : int;
  mutable listen_fd : Unix.file_descr option;
  timers : timer Event_queue.t;
  peers : peer array;
  mutable inbound : inbound list;
  peer_recv : (int, recv_state) Hashtbl.t;
  client_recv : (int, recv_state) Hashtbl.t;
  client_conn : (int, inbound) Hashtbl.t;
  stats : stats;
  (* Failover state. [epoch] is this identity's fencing epoch as this
     process believes it; [raw_device] is the untapped durable device
     (the standby applies into it, and promotion recovers from it). *)
  mutable role : role;
  mutable epoch : int;
  raw_device : Device.t option;
  (* Primary side: the WAL shipper and the attached standby. *)
  mutable ship : Repl.Ship.t option;
  mutable standby : inbound option;
  mutable standby_synced : bool;
  mutable last_shipped : int;
  (* Standby side: the dialed link to the primary and the applier. *)
  mutable up_conn : Conn.t option;
  mutable up_seq : int;
  mutable apply : Repl.Apply.t option;
  mutable last_contact : float;
}

let find_peer t id =
  let rec go i =
    if i >= Array.length t.peers then None
    else if t.peers.(i).p_id = id then Some t.peers.(i)
    else go (i + 1)
  in
  go 0

let recv_state_for table id =
  match Hashtbl.find_opt table id with
  | Some rs -> rs
  | None ->
      let rs =
        {
          r_session = -1;
          r_window = Reliable_link.receiver ~capacity:1024 ();
          r_last_seen = 0;
        }
      in
      Hashtbl.replace table id rs;
      rs

let arm t ~delay timer = Event_queue.push t.timers ~time:(now () +. delay) timer

let arm_cancelable t ~delay timer =
  Event_queue.push_cancelable t.timers ~time:(now () +. delay) timer

(* Send one message to a peer. Acked messages are tracked for
   retransmission whether or not the link is up — if it is down, the
   retry budget burns against the outage and the refresh waves repair
   whatever gives up, exactly the simulator's semantics. *)
let send_peer t peer msg =
  let seq = peer.next_seq in
  peer.next_seq <- seq + 1;
  if Wire.acked msg then begin
    let payload =
      match msg with
      | Wire.Payload p -> p
      | Wire.Hello _ | Wire.Welcome _ | Wire.Notify _ | Wire.Frame_ack _
      | Wire.Repl_stream _ | Wire.Bye ->
          invalid_arg "Broker_server.send_peer: only payloads are acked"
    in
    Reliable_link.track peer.sender ~seq ~item:payload
      ~timer:(arm_cancelable t ~delay:t.cfg.rto (T_retransmit (peer.p_id, seq)))
  end;
  match peer.p_conn with
  | Some c when peer.welcomed || not (Wire.acked msg) ->
      t.stats.frames_out <- t.stats.frames_out + 1;
      t.stats.sheds <- t.stats.sheds + Conn.send_msg c ~seq msg
  | Some _ | None -> ()

let send_inbound t ic msg =
  let seq = ic.in_seq in
  ic.in_seq <- seq + 1;
  t.stats.frames_out <- t.stats.frames_out + 1;
  t.stats.sheds <- t.stats.sheds + Conn.send_msg ic.conn ~seq msg

(* Notify fan-out is batched per connection: one matched publication
   can notify many subscriptions of the same client, and queuing each
   frame separately costs one write-queue append + shed pass per
   subscriber. Frames are coalesced into a per-client buffer (seqs
   assigned at collection time, so the numbering is identical to the
   unbatched path) and appended as a single sheddable write-queue
   entry per connection. Forwards keep their per-peer path — they ride
   the reliable link and must be tracked frame-by-frame. *)
let apply_actions t actions =
  let batches = ref [] in
  (* (client, conn, frames, count), first-seen order, reversed. *)
  List.iter
    (fun action ->
      match action with
      | Broker_node.Forward { to_; payload } -> (
          match find_peer t to_ with
          | Some peer -> send_peer t peer (Wire.Payload payload)
          | None -> () (* topology drift: drop rather than crash *))
      | Broker_node.Notify { client; key; pub_id } -> (
          match Hashtbl.find_opt t.client_conn client with
          | Some ic ->
              let _, _, buf, count =
                match
                  List.find_opt (fun (c, _, _, _) -> c = client) !batches
                with
                | Some b -> b
                | None ->
                    let b = (client, ic, Buffer.create 256, ref 0) in
                    batches := b :: !batches;
                    b
              in
              let seq = ic.in_seq in
              ic.in_seq <- seq + 1;
              Buffer.add_string buf
                (Wire.frame ~seq (Wire.Notify { client; key; pub_id }));
              incr count
          | None -> () (* client not connected; notification is lost *)))
    actions;
  List.iter
    (fun (_, ic, buf, count) ->
      t.stats.frames_out <- t.stats.frames_out + !count;
      t.stats.sheds <-
        t.stats.sheds
        + Conn.send ic.conn ~cls:Wire.Sheddable (Buffer.contents buf))
    (List.rev !batches)

let handle_payload t ~origin payload =
  apply_actions t (Broker_node.handle t.node ~now:(now ()) ~origin payload)

(* One UNIX-domain connect attempt, shared by peer links, the standby's
   uplink, and the startup socket probe. *)
let connect_unix path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    (Unix.connect fd (Unix.ADDR_UNIX path)
    [@problint.allow blocking
      "UNIX-domain connects either succeed or fail immediately against \
       the listener backlog; there is no TCP-style in-progress window to \
       wait out"])
  with
  | () -> Some fd
  | exception Unix.Unix_error (_, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      None

(* Connect attempt to one neighbour; failure re-arms the backoff
   timer. Unix-domain connects either succeed immediately or fail —
   there is no long in-progress window to track. *)
let try_connect t peer =
  peer.reconnect_armed <- false;
  let path = socket_path ~sock_dir:t.cfg.sock_dir peer.p_id in
  match connect_unix path with
  | Some fd ->
      let c = Conn.create ~max_queue_bytes:t.cfg.max_queue_bytes fd in
      peer.p_conn <- Some c;
      peer.welcomed <- false;
      (* Hello rides seq 0 outside the acked space. *)
      t.stats.frames_out <- t.stats.frames_out + 1;
      t.stats.sheds <-
        t.stats.sheds
        + Conn.send_msg c ~seq:0
            (Wire.Hello
               {
                 role = Wire.Peer_role t.cfg.id;
                 session = t.session;
                 last_seen = 0;
                 epoch = 0;
               })
  | None -> (
      match Backoff.next_delay peer.backoff with
      | Some delay ->
          peer.reconnect_armed <- true;
          arm t ~delay (T_reconnect peer.p_id)
      | None -> () (* budget exhausted: the peer stays down *))

let drop_peer_conn t peer =
  (match peer.p_conn with Some c -> Conn.close c | None -> ());
  peer.p_conn <- None;
  peer.welcomed <- false;
  if not peer.reconnect_armed then begin
    match Backoff.next_delay peer.backoff with
    | Some delay ->
        peer.reconnect_armed <- true;
        arm t ~delay (T_reconnect peer.p_id)
    | None -> ()
  end

(* Welcome on an outgoing link: the peer told us the highest seq it
   processed from our current session. Everything at or below it is
   as-good-as-acked; everything above must go out again, in order. *)
let handle_welcome t peer ~last_seen =
  peer.welcomed <- true;
  Backoff.reset peer.backoff;
  List.iter
    (fun (seq, payload) ->
      if seq <= last_seen then begin
        match Reliable_link.ack peer.sender ~seq with
        | Some h -> ignore (Event_queue.cancel t.timers h)
        | None -> ()
      end
      else
        match peer.p_conn with
        | Some c ->
            t.stats.frames_out <- t.stats.frames_out + 1;
            t.stats.sheds <-
              t.stats.sheds + Conn.send_msg c ~seq (Wire.Payload payload)
        | None -> ())
    (Reliable_link.unacked peer.sender)

(* An acked frame arriving on an inbound connection: always re-ack
   (the previous ack may have been lost with the old connection), then
   dedup against the sender's session window. *)
let admit_acked t ic rs ~seq =
  send_inbound t ic (Wire.Frame_ack { seq });
  match Reliable_link.admit rs.r_window ~seq with
  | `Duplicate -> false
  | `Fresh ->
      if seq > rs.r_last_seen then rs.r_last_seen <- seq;
      true

(* A Hello or heartbeat carrying a higher epoch for OUR identity means
   a standby of ours was promoted while we were (presumed) dead: we are
   the stale half of a split brain. Persist the fence, stop listening,
   drop every connection, and never ack a write again. The successor
   owns the socket path now (or is about to take it), so the path is
   not unlinked here. *)
let demote t ~epoch =
  Broker_node.raise_fence t.node ~epoch;
  t.epoch <- epoch;
  t.role <- Fenced;
  (match t.listen_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.listen_fd <- None;
  Array.iter
    (fun peer ->
      (match peer.p_conn with Some c -> Conn.close c | None -> ());
      peer.p_conn <- None;
      peer.welcomed <- false)
    t.peers;
  List.iter (fun ic -> Conn.close ic.conn) t.inbound;
  t.inbound <- [];
  Hashtbl.reset t.client_conn;
  t.standby <- None;
  t.standby_synced <- false

let event_to_msg = function
  | Repl.E_frames bytes -> Wire.Repl_stream (Wire.R_frames { bytes })
  | Repl.E_snapshot { snap; wal; next_lsn } ->
      Wire.Repl_stream (Wire.R_snapshot { snap; wal; next_lsn })

(* Replication traffic arriving on an accepted standby connection
   (primary side): the opening resume request and the applied acks. *)
let handle_standby_repl t ic repl =
  match (t.ship, repl) with
  | Some ship, Wire.R_hello { from_lsn } ->
      List.iter
        (fun ev -> send_inbound t ic (event_to_msg ev))
        (Repl.Ship.resume ship ~from_lsn);
      t.standby <- Some ic;
      t.standby_synced <- true;
      send_inbound t ic
        (Wire.Repl_stream
           (Wire.R_heartbeat
              { epoch = t.epoch; next_lsn = Repl.Ship.next_lsn ship }))
  | Some ship, Wire.R_ack { applied_lsn } ->
      Broker_node.note_repl_lag t.node
        ~lag:(max 0 (Repl.Ship.next_lsn ship - applied_lsn))
  | None, (Wire.R_hello _ | Wire.R_ack _)
  | _, (Wire.R_frames _ | Wire.R_snapshot _ | Wire.R_heartbeat _) ->
      () (* no shipper (no wal_dir), or stream traffic sent the wrong way *)

let handle_msg t ic (seq, msg) =
  t.stats.frames_in <- t.stats.frames_in + 1;
  match (ic.who, msg) with
  | Unknown, Wire.Hello { role; session; last_seen = _; epoch } -> (
      (* The fence: any same-identity greeter (standby probe or client)
         that has seen a higher epoch proves we were superseded. Peer
         epochs belong to other broker identities and are ignored. *)
      match role with
      | (Wire.Client_role _ | Wire.Standby_role _) when epoch > t.epoch ->
          demote t ~epoch
      | Wire.Standby_role sid ->
          if sid = t.cfg.id && t.role = Primary then begin
            ic.who <- From_standby;
            send_inbound t ic
              (Wire.Welcome
                 { session = t.session; last_seen = 0; epoch = t.epoch })
          end
          else Conn.close ic.conn (* a standby for someone else: refuse *)
      | Wire.Peer_role _ | Wire.Client_role _ ->
          let table, id =
            match role with
            | Wire.Peer_role p -> (t.peer_recv, p)
            | Wire.Client_role c | Wire.Standby_role c -> (t.client_recv, c)
          in
          let rs = recv_state_for table id in
          if rs.r_session <> session then begin
            (* New remote session: its numbering restarts, so stale seqs
               must not suppress fresh frames. *)
            rs.r_session <- session;
            rs.r_last_seen <- 0;
            Reliable_link.reset_receiver rs.r_window
          end;
          (match role with
          | Wire.Peer_role p -> ic.who <- From_peer p
          | Wire.Client_role c ->
              ic.who <- From_client c;
              Hashtbl.replace t.client_conn c ic;
              (* A client that last spoke to a lower epoch is resuming
                 across a failover. *)
              if Broker_node.fence_epoch t.node > 0 && epoch < t.epoch then
                Broker_node.note_failover_reconnect t.node
          | Wire.Standby_role _ -> ());
          send_inbound t ic
            (Wire.Welcome
               { session = t.session; last_seen = rs.r_last_seen;
                 epoch = t.epoch }))
  | Unknown, _ -> () (* pre-handshake noise: ignore until Hello *)
  | From_standby, Wire.Repl_stream repl -> handle_standby_repl t ic repl
  | From_standby, _ -> () (* only replication traffic on a standby conn *)
  | From_peer p, Wire.Payload payload ->
      let process =
        if Wire.acked msg then
          admit_acked t ic (recv_state_for t.peer_recv p) ~seq
        else true
      in
      if process then handle_payload t ~origin:(Message.Link p) payload
  | From_client c, Wire.Payload payload ->
      let process =
        if Wire.acked msg then
          admit_acked t ic (recv_state_for t.client_recv c) ~seq
        else true
      in
      if process then handle_payload t ~origin:(Message.Client c) payload
  | From_peer p, Wire.Frame_ack { seq = acked } -> (
      (* The remote acks what we sent on OUR outgoing link to it. *)
      match find_peer t p with
      | Some peer -> (
          match Reliable_link.ack peer.sender ~seq:acked with
          | Some h -> ignore (Event_queue.cancel t.timers h)
          | None -> ())
      | None -> ())
  | From_peer p, Wire.Welcome { last_seen; session = _; epoch = _ } -> (
      (* Welcome answered on the socket we opened: the accept side of
         this conn object is their reply channel. The peer's epoch
         belongs to its own identity and is not compared with ours. *)
      match find_peer t p with
      | Some peer -> handle_welcome t peer ~last_seen
      | None -> ())
  | _, Wire.Bye -> Conn.close ic.conn
  | ( _,
      ( Wire.Hello _ | Wire.Welcome _ | Wire.Notify _ | Wire.Frame_ack _
      | Wire.Repl_stream _ ) ) ->
      () (* role mismatch or client-bound traffic: drop *)

(* ---- standby side: uplink to the primary, and promotion ---- *)

let send_up t c msg =
  let seq = t.up_seq in
  t.up_seq <- seq + 1;
  t.stats.frames_out <- t.stats.frames_out + 1;
  t.stats.sheds <- t.stats.sheds + Conn.send_msg c ~seq msg

let drop_up t =
  (match t.up_conn with Some c -> Conn.close c | None -> ());
  t.up_conn <- None

let dial_primary t path =
  match connect_unix path with
  | Some fd ->
      let c = Conn.create ~max_queue_bytes:t.cfg.max_queue_bytes fd in
      t.up_conn <- Some c;
      t.up_seq <- 0;
      send_up t c
        (Wire.Hello
           {
             role = Wire.Standby_role t.cfg.id;
             session = t.session;
             last_seen = 0;
             epoch = t.epoch;
           })
  | None -> () (* primary down; the watchdog tick redials *)

(* Feed one replication event into the standby's device; ack progress,
   or tear the uplink down on stream-position disagreement so the
   re-handshake resumes from our durable position. *)
let apply_up_event t event =
  match t.apply with
  | None -> ()
  | Some apply -> (
      match Repl.Apply.apply apply event with
      | Ok applied_lsn -> (
          t.last_contact <- now ();
          match t.up_conn with
          | Some c -> send_up t c (Wire.Repl_stream (Wire.R_ack { applied_lsn }))
          | None -> ())
      | Error _ -> drop_up t)

(* Everything the standby hears on its uplink: the Welcome that opens
   the stream, then frames/rebases to apply and heartbeats to feed the
   failover detector. *)
let handle_up_msg t (_seq, msg) =
  t.stats.frames_in <- t.stats.frames_in + 1;
  match msg with
  | Wire.Welcome { epoch; _ } -> (
      t.last_contact <- now ();
      if epoch > t.epoch then t.epoch <- epoch;
      match (t.up_conn, t.apply) with
      | Some c, Some apply ->
          send_up t c
            (Wire.Repl_stream
               (Wire.R_hello { from_lsn = Repl.Apply.next_lsn apply }))
      | _ -> ())
  | Wire.Repl_stream (Wire.R_heartbeat { epoch; next_lsn = _ }) ->
      t.last_contact <- now ();
      if epoch > t.epoch then t.epoch <- epoch
  | Wire.Repl_stream (Wire.R_frames { bytes }) ->
      apply_up_event t (Repl.E_frames bytes)
  | Wire.Repl_stream (Wire.R_snapshot { snap; wal; next_lsn }) ->
      apply_up_event t (Repl.E_snapshot { snap; wal; next_lsn })
  | Wire.Bye -> drop_up t
  | Wire.Hello _ | Wire.Payload _ | Wire.Notify _ | Wire.Frame_ack _
  | Wire.Repl_stream (Wire.R_hello _ | Wire.R_ack _) ->
      () (* not primary→standby traffic *)

let bind_listen path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd 64;
    Unix.set_nonblock fd
  with
  | () -> fd
  | exception e ->
      (* EADDRINUSE / permission failures must not leak the socket:
         create is retried by the harness after a crashed broker. *)
      Unix.close fd;
      raise e

(* The standby stopped hearing from its primary: take over. Recover a
   full broker from the replicated device, commit to a strictly higher
   epoch (journalled before anything is served), bind the primary's
   socket path so clients and peers reconnect transparently, and start
   acting as the primary — including accepting a future standby. *)
let promote t =
  drop_up t;
  t.apply <- None;
  (match t.raw_device with
  | None -> () (* unreachable: standby config requires a wal_dir *)
  | Some raw ->
      let ship, wrapped = Repl.Ship.tap raw in
      let node =
        Broker_node.create ~device:wrapped ~recover:true
          ~lease_ttl:t.cfg.lease_ttl ~id:t.cfg.id ~neighbors:t.cfg.neighbors
          ~policy:t.cfg.policy ~arity:t.cfg.arity ~seed:t.cfg.seed ()
      in
      let epoch = max t.epoch (Broker_node.fence_epoch node) + 1 in
      Broker_node.raise_fence node ~epoch;
      Broker_node.note_failover node;
      (* Recovery-time rewrites and the fence append are local history,
         not stream traffic for a (not yet attached) next standby. *)
      ignore (Repl.Ship.drain ship);
      t.node <- node;
      t.ship <- Some ship;
      t.last_shipped <- Repl.Ship.frames_shipped ship;
      t.epoch <- epoch);
  t.listen_fd <- Some (bind_listen (socket_path ~sock_dir:t.cfg.sock_dir t.cfg.id));
  t.role <- Primary;
  Array.iter (fun peer -> try_connect t peer) t.peers;
  arm t ~delay:t.cfg.refresh_interval T_refresh;
  arm t ~delay:t.cfg.refresh_interval T_sweep;
  arm t ~delay:t.cfg.repl_hb_interval T_repl_hb

let fire_timer t timer =
  match timer with
  | T_retransmit (pid, seq) -> (
      match find_peer t pid with
      | None -> ()
      | Some peer -> (
          match Reliable_link.on_timeout peer.sender ~seq with
          | Reliable_link.Not_tracked -> ()
          | Reliable_link.Give_up -> t.stats.gave_up <- t.stats.gave_up + 1
          | Reliable_link.Retransmit { item; rto } ->
              t.stats.retransmits <- t.stats.retransmits + 1;
              (match peer.p_conn with
              | Some c when peer.welcomed ->
                  t.stats.frames_out <- t.stats.frames_out + 1;
                  t.stats.sheds <-
                    t.stats.sheds + Conn.send_msg c ~seq (Wire.Payload item)
              | Some _ | None -> ());
              Reliable_link.set_timer peer.sender ~seq
                (arm_cancelable t ~delay:rto (T_retransmit (pid, seq)))))
  | T_refresh ->
      if t.role = Primary then begin
        t.stats.refresh_waves <- t.stats.refresh_waves + 1;
        List.iter
          (fun (key, client, sub) ->
            let epoch = Broker_node.subscription_epoch t.node ~key + 1 in
            handle_payload t ~origin:(Message.Client client)
              (Message.Subscribe { key; sub; epoch }))
          (Broker_node.client_subscriptions t.node);
        arm t ~delay:t.cfg.refresh_interval T_refresh
      end
  | T_sweep ->
      if t.role = Primary then begin
        t.stats.sweeps <- t.stats.sweeps + 1;
        let _expired, actions = Broker_node.sweep t.node ~now:(now ()) in
        apply_actions t actions;
        ignore (Broker_node.maybe_compact t.node);
        arm t ~delay:t.cfg.refresh_interval T_sweep
      end
  | T_reconnect pid -> (
      if t.role = Primary then
        match find_peer t pid with
        | Some peer when peer.p_conn = None -> try_connect t peer
        | Some _ | None -> ())
  | T_repl_hb ->
      if t.role = Primary then begin
        (match (t.ship, t.standby) with
        | Some ship, Some ic when t.standby_synced ->
            send_inbound t ic
              (Wire.Repl_stream
                 (Wire.R_heartbeat
                    { epoch = t.epoch; next_lsn = Repl.Ship.next_lsn ship }))
        | _ -> ());
        arm t ~delay:t.cfg.repl_hb_interval T_repl_hb
      end
  | T_standby_check ->
      if t.role = Standby then begin
        (match (t.up_conn, t.cfg.standby_of) with
        | None, Some path -> dial_primary t path
        | _ -> ());
        if now () -. t.last_contact > t.cfg.repl_hb_timeout then promote t
        else arm t ~delay:t.cfg.repl_hb_interval T_standby_check
      end

let fire_due_timers t =
  let rec go () =
    match Event_queue.peek_time t.timers with
    | Some time when time <= now () -> (
        match Event_queue.pop t.timers with
        | Some (_, timer) ->
            fire_timer t timer;
            go ()
        | None -> ())
    | Some _ | None -> ()
  in
  go ()

(* Pre-bind probe: does a live same-identity broker already serve our
   socket path? The probe speaks the ordinary handshake as a standby of
   that identity carrying our recovered fence epoch, so the two
   processes compare epochs through the normal fencing rule: a live
   owner at our epoch or above answers Welcome (we must fence
   ourselves); an owner at a lower epoch demotes itself on our Hello
   and hangs up (the path is ours to take). *)
let probe_socket ~path ~id ~session ~epoch =
  match connect_unix path with
  | None -> `Free (* no socket file, or nobody listening behind it *)
  | Some fd -> (
      let c = Conn.create fd in
      ignore
        (Conn.send_msg c ~seq:0
           (Wire.Hello
              {
                role = Wire.Standby_role id;
                session;
                last_seen = 0;
                epoch;
              }));
      let deadline = now () +. 1.0 in
      let rec await () =
        if Conn.closed c || now () > deadline then `Free
        else begin
          (match Conn.flush c with `Ok | `Closed -> ());
          match Unix.select [ fd ] [] [] 0.05 with
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
          | exception Unix.Unix_error (Unix.EBADF, _, _) -> `Free
          | [], _, _ -> await ()
          | _ :: _, _, _ -> (
              match Conn.recv c with
              | `Eof -> `Free
              | `Blocked | `Data _ -> (
                  match Conn.next c with
                  | `Msg (_, Wire.Welcome { epoch = e; _ }) -> `Owned e
                  | `Msg _ | `Pending -> await ()
                  | `Corrupt _ -> `Free))
        end
      in
      match await () with
      | verdict ->
          Conn.close c;
          verdict)

let create cfg =
  let raw_device = Option.map (fun dir -> Device.fs ~dir) cfg.wal_dir in
  let is_standby = cfg.standby_of <> None in
  let ship, node_device =
    if is_standby then (None, None)
    else
      match raw_device with
      | None -> (None, None)
      | Some raw ->
          let s, wrapped = Repl.Ship.tap raw in
          (Some s, Some wrapped)
  in
  let node =
    if is_standby then
      (* Placeholder until promotion: a standby must not open the
         replicated device with a broker of its own — creating one
         would wipe it. The real node is recovered when we take over. *)
      Broker_node.create ~lease_ttl:cfg.lease_ttl ~id:cfg.id
        ~neighbors:cfg.neighbors ~policy:cfg.policy ~arity:cfg.arity
        ~seed:cfg.seed ()
    else
      Broker_node.create ?device:node_device ~recover:true
        ~lease_ttl:cfg.lease_ttl ~id:cfg.id ~neighbors:cfg.neighbors
        ~policy:cfg.policy ~arity:cfg.arity ~seed:cfg.seed ()
  in
  (* Startup journal writes (genesis or recovery repair) are local
     history, not stream traffic. *)
  (match ship with Some s -> ignore (Repl.Ship.drain s) | None -> ());
  let session = Clock.session_id () in
  let t =
    {
      cfg;
      node;
      session;
      listen_fd = None;
      timers = Event_queue.create ();
      role = (if is_standby then Standby else Primary);
      epoch = (if is_standby then 0 else Broker_node.fence_epoch node);
      raw_device;
      ship;
      standby = None;
      standby_synced = false;
      last_shipped =
        (match ship with Some s -> Repl.Ship.frames_shipped s | None -> 0);
      up_conn = None;
      up_seq = 0;
      apply =
        (if is_standby then
           Option.map (fun d -> Repl.Apply.create ~device:d) raw_device
         else None);
      last_contact = now ();
      peers =
        Array.of_list
          (List.map
             (fun p_id ->
               {
                 p_id;
                 backoff =
                   Backoff.create ~base:cfg.backoff_base ~cap:cfg.backoff_cap
                     ~seed:(cfg.seed + (cfg.id * 65599) + p_id)
                     ();
                 sender =
                   Reliable_link.sender
                     { Reliable_link.rto = cfg.rto;
                       max_retries = cfg.max_retries };
                 p_conn = None;
                 welcomed = false;
                 next_seq = 1;
                 reconnect_armed = false;
               })
             cfg.neighbors);
      inbound = [];
      peer_recv = Hashtbl.create 8;
      client_recv = Hashtbl.create 64;
      client_conn = Hashtbl.create 64;
      stats =
        {
          accepted = 0;
          frames_in = 0;
          frames_out = 0;
          retransmits = 0;
          gave_up = 0;
          refresh_waves = 0;
          sweeps = 0;
          sheds = 0;
          corrupt_conns = 0;
        };
    }
  in
  (match cfg.standby_of with
  | Some primary_path ->
      dial_primary t primary_path;
      arm t ~delay:cfg.repl_hb_interval T_standby_check
  | None -> (
      let path = socket_path ~sock_dir:cfg.sock_dir cfg.id in
      match probe_socket ~path ~id:cfg.id ~session ~epoch:t.epoch with
      | `Owned e ->
          (* A live owner with our identity answered: we are the stale
             twin. Remember the highest epoch and refuse to serve. *)
          let e = max e t.epoch in
          Broker_node.raise_fence t.node ~epoch:e;
          t.epoch <- e;
          t.role <- Fenced
      | `Free ->
          t.listen_fd <- Some (bind_listen path);
          Array.iter (fun peer -> try_connect t peer) t.peers;
          arm t ~delay:cfg.refresh_interval T_refresh;
          arm t ~delay:cfg.refresh_interval T_sweep;
          arm t ~delay:cfg.repl_hb_interval T_repl_hb));
  t

let accept_ready t listen_fd =
  let rec go () =
    match Unix.accept listen_fd with
    | fd, _ ->
        t.stats.accepted <- t.stats.accepted + 1;
        let c = Conn.create ~max_queue_bytes:t.cfg.max_queue_bytes fd in
        t.inbound <- { conn = c; who = Unknown; in_seq = 0 } :: t.inbound;
        go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    | exception Unix.Unix_error (_, _, _) -> ()
  in
  go ()

(* Drain every decoded frame from one connection; returns false when
   the connection must be torn down. *)
let drain_conn t ic =
  let rec go () =
    match Conn.next ic.conn with
    | `Msg (seq, msg) ->
        handle_msg t ic (seq, msg);
        if Conn.closed ic.conn then false else go ()
    | `Pending -> true
    | `Corrupt _ ->
        t.stats.corrupt_conns <- t.stats.corrupt_conns + 1;
        false
  in
  go ()

let read_conn t ic =
  match Conn.recv ic.conn with
  | `Data _ -> drain_conn t ic
  | `Blocked -> true
  | `Eof -> false

(* Read the reply direction of a link we opened: Welcome and acks. The
   throwaway inbound view only routes dispatch; nothing acked arrives
   here, so its seq counter is never consulted. *)
let read_outgoing t peer c =
  read_conn t { conn = c; who = From_peer peer.p_id; in_seq = 0 }

(* Forget a dead inbound connection; receive state stays for resume. *)
let reap_inbound t ic =
  Conn.close ic.conn;
  (match t.standby with
  | Some s
    when (s == ic)
         [@problint.allow
           unsafe
             "identity, not structure: detach the standby only if the \
              registered replication connection is this very one — a \
              reconnected standby may already own the slot"] ->
      t.standby <- None;
      t.standby_synced <- false
  | Some _ | None -> ());
  (match ic.who with
  | From_client c -> (
      match Hashtbl.find_opt t.client_conn c with
      | Some cur
        when (cur == ic)
             [@problint.allow
               unsafe
                 "identity, not structure: unregister the client only if \
                  the registered connection is this very one — a \
                  reconnected client may already own the slot"] ->
          Hashtbl.remove t.client_conn c
      | Some _ | None -> ())
  | From_peer _ | From_standby | Unknown -> ());
  t.inbound <-
    List.filter
      (fun other ->
        not
          ((other == ic)
          [@problint.allow
            unsafe
              "identity, not structure: drop exactly this connection \
               record from the inbound list"]))
      t.inbound

(* Stream everything the node's journal produced since the last step to
   the attached standby; without one, drop it (the standby's R_hello
   resume replays whatever it missed from the WAL itself). *)
let pump_repl t =
  match t.ship with
  | None -> ()
  | Some ship ->
      let events = Repl.Ship.drain ship in
      (match t.standby with
      | Some ic when t.standby_synced && not (Conn.closed ic.conn) ->
          List.iter (fun ev -> send_inbound t ic (event_to_msg ev)) events
      | Some _ | None -> ());
      let shipped = Repl.Ship.frames_shipped ship in
      if shipped > t.last_shipped then begin
        Broker_node.note_repl_frames t.node ~n:(shipped - t.last_shipped);
        t.last_shipped <- shipped
      end

let step t =
  fire_due_timers t;
  pump_repl t;
  let peer_list = Array.to_list t.peers in
  let read_fds =
    (match t.listen_fd with Some fd -> [ fd ] | None -> [])
    @ (match t.up_conn with Some c -> [ Conn.fd c ] | None -> [])
    @ List.map (fun ic -> Conn.fd ic.conn) t.inbound
    @ List.filter_map (fun peer -> Option.map Conn.fd peer.p_conn) peer_list
  in
  let write_fds =
    List.filter_map
      (fun ic ->
        if Conn.wants_write ic.conn then Some (Conn.fd ic.conn) else None)
      t.inbound
    @ (match t.up_conn with
      | Some c when Conn.wants_write c -> [ Conn.fd c ]
      | Some _ | None -> [])
    @ List.filter_map
        (fun peer ->
          match peer.p_conn with
          | Some c when Conn.wants_write c -> Some (Conn.fd c)
          | Some _ | None -> None)
        peer_list
  in
  let timeout =
    let horizon =
      match Event_queue.peek_time t.timers with
      | Some time -> Float.max 0.0 (time -. now ())
      | None -> 0.25
    in
    Float.min horizon 0.25
  in
  let readable, writable =
    match Unix.select read_fds write_fds [] timeout with
    | r, w, _ -> (r, w)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [])
    | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [])
  in
  (match t.listen_fd with
  | Some fd when List.mem fd readable -> accept_ready t fd
  | Some _ | None -> ());
  (* Standby uplink: flush, read the stream, redial on loss (via the
     watchdog tick — an immediate redial here would spin). *)
  (match t.up_conn with
  | None -> ()
  | Some c ->
      let ok_w =
        if List.mem (Conn.fd c) writable then Conn.flush c = `Ok else true
      in
      let ok_r =
        if ok_w && List.mem (Conn.fd c) readable then (
          match Conn.recv c with
          | `Eof -> false
          | `Blocked -> true
          | `Data _ ->
              let rec drain () =
                match Conn.next c with
                | `Msg m ->
                    handle_up_msg t m;
                    if t.up_conn = None || Conn.closed c then false else drain ()
                | `Pending -> true
                | `Corrupt _ ->
                    t.stats.corrupt_conns <- t.stats.corrupt_conns + 1;
                    false
              in
              drain ())
        else ok_w
      in
      if (not ok_r) || Conn.closed c then drop_up t);
  (* Peers: flush writes, read replies, reap dead links into backoff. *)
  Array.iter
    (fun peer ->
      match peer.p_conn with
      | None -> ()
      | Some c ->
          let ok_w =
            if List.mem (Conn.fd c) writable then Conn.flush c = `Ok else true
          in
          let ok_r =
            if ok_w && List.mem (Conn.fd c) readable then read_outgoing t peer c
            else ok_w
          in
          if (not ok_r) || Conn.closed c then drop_peer_conn t peer)
    t.peers;
  List.iter
    (fun ic ->
      if Conn.closed ic.conn then reap_inbound t ic
      else begin
        let ok_w =
          if List.mem (Conn.fd ic.conn) writable then Conn.flush ic.conn = `Ok
          else true
        in
        let ok_r =
          if ok_w && List.mem (Conn.fd ic.conn) readable then read_conn t ic
          else ok_w
        in
        if not ok_r then reap_inbound t ic
      end)
    t.inbound;
  (* Opportunistic flush of everything still queued. *)
  pump_repl t;
  Array.iter
    (fun peer ->
      match peer.p_conn with
      | Some c when Conn.wants_write c ->
          if Conn.flush c = `Closed then drop_peer_conn t peer
      | Some _ | None -> ())
    t.peers;
  (match t.up_conn with
  | Some c when Conn.wants_write c ->
      if Conn.flush c = `Closed then drop_up t
  | Some _ | None -> ());
  List.iter
    (fun ic ->
      if Conn.wants_write ic.conn && Conn.flush ic.conn = `Closed then
        reap_inbound t ic)
    t.inbound

let shutdown t =
  Array.iter
    (fun peer -> match peer.p_conn with Some c -> Conn.close c | None -> ())
    t.peers;
  List.iter (fun ic -> Conn.close ic.conn) t.inbound;
  drop_up t;
  match t.listen_fd with
  | None -> () (* never bound (standby) or fenced: the path is not ours *)
  | Some fd -> (
      (try Unix.close fd with Unix.Unix_error _ -> ());
      try Unix.unlink (socket_path ~sock_dir:t.cfg.sock_dir t.cfg.id)
      with Unix.Unix_error _ -> ())

let run ?(on_ready = fun () -> ()) ?(should_stop = fun () -> false) cfg =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let t = create cfg in
  on_ready ();
  let rec loop () = if should_stop () then shutdown t else (step t; loop ()) in
  loop ()

let node t = t.node
let session t = t.session
let stats t = t.stats
let role t = t.role
let epoch t = t.epoch

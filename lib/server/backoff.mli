(** Exponential reconnect backoff with a cap, a retry budget and
    seeded jitter.

    Delays double from [base] up to [cap], each multiplied by a jitter
    factor in [0.75, 1.25) drawn from a {!Probsub_core.Prng} seeded at
    creation — deterministic for a given seed (so tests replay
    exactly), yet de-synchronized across differently-seeded brokers
    after a common-mode failure. *)

type t

val create :
  ?base:float -> ?cap:float -> ?max_attempts:int -> seed:int -> unit -> t
(** [base] (default 0.05 s) first delay; [cap] (default 2 s) upper
    bound before jitter; [max_attempts] (default 0 = unbounded) budget
    before {!next_delay} refuses. @raise Invalid_argument on a
    non-positive base, a cap below base, or a negative budget. *)

val next_delay : t -> float option
(** Delay to wait before the next attempt, advancing the attempt
    counter; [None] once the budget is exhausted. *)

val reset : t -> unit
(** Call after a successful connection: the next failure starts from
    [base] again. *)

val attempts : t -> int
(** Attempts consumed since the last {!reset}. *)

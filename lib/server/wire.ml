open Probsub_core
module Message = Probsub_broker.Message
module Codec = Probsub_store_log.Codec
module Prim = Codec.Prim

type role = Peer_role of int | Client_role of int

type msg =
  | Hello of { role : role; session : int; last_seen : int }
  | Welcome of { session : int; last_seen : int }
  | Payload of Message.payload
  | Notify of { client : int; key : int; pub_id : int }
  | Frame_ack of { seq : int }
  | Bye

type cls = Control | Sheddable

let class_of = function
  | Hello _ | Welcome _ | Frame_ack _ | Bye -> Control
  | Payload p -> if Message.is_control p then Control else Sheddable
  | Notify _ -> Sheddable

let acked = function
  | Payload p -> Message.is_control p
  | Hello _ | Welcome _ | Notify _ | Frame_ack _ | Bye -> false

(* Tags. Top level: 0 Hello, 1 Welcome, 2 Payload, 3 Notify,
   4 Frame_ack, 5 Bye. Payload: 0 Subscribe, 1 Unsubscribe,
   2 Advertise, 3 Unadvertise, 4 Publish, 5 Ack. Publication:
   0 Point, 1 Box. Role: 0 peer, 1 client. *)

let w_role b = function
  | Peer_role id ->
      Prim.write_uv b 0;
      Prim.write_uv b id
  | Client_role id ->
      Prim.write_uv b 1;
      Prim.write_uv b id

let w_publication b = function
  | Publication.Point values ->
      Prim.write_uv b 0;
      Prim.write_uv b (Array.length values);
      Array.iter (Prim.write_sv b) values
  | Publication.Box s ->
      Prim.write_uv b 1;
      Prim.write_subscription b s

let w_payload b = function
  | Message.Subscribe { key; sub; epoch } ->
      Prim.write_uv b 0;
      Prim.write_uv b key;
      Prim.write_uv b epoch;
      Prim.write_subscription b sub
  | Message.Unsubscribe { key } ->
      Prim.write_uv b 1;
      Prim.write_uv b key
  | Message.Advertise { key; adv } ->
      Prim.write_uv b 2;
      Prim.write_uv b key;
      Prim.write_subscription b adv
  | Message.Unadvertise { key } ->
      Prim.write_uv b 3;
      Prim.write_uv b key
  | Message.Publish { id; pub } ->
      Prim.write_uv b 4;
      Prim.write_uv b id;
      w_publication b pub
  | Message.Ack { seq } ->
      Prim.write_uv b 5;
      Prim.write_uv b seq

let encode msg =
  let b = Buffer.create 64 in
  (match msg with
  | Hello { role; session; last_seen } ->
      Prim.write_uv b 0;
      w_role b role;
      Prim.write_uv b session;
      Prim.write_uv b last_seen
  | Welcome { session; last_seen } ->
      Prim.write_uv b 1;
      Prim.write_uv b session;
      Prim.write_uv b last_seen
  | Payload p ->
      Prim.write_uv b 2;
      w_payload b p
  | Notify { client; key; pub_id } ->
      Prim.write_uv b 3;
      Prim.write_uv b client;
      Prim.write_uv b key;
      Prim.write_uv b pub_id
  | Frame_ack { seq } ->
      Prim.write_uv b 4;
      Prim.write_uv b seq
  | Bye -> Prim.write_uv b 5);
  Buffer.contents b

(* Total decoding: result-chained reads, and the message must consume
   the payload exactly — trailing bytes are a framing bug upstream. *)

let ( let* ) = Result.bind

let r_role s ~pos =
  let* tag, pos = Prim.read_uv s ~pos in
  let* id, pos = Prim.read_uv s ~pos in
  match tag with
  | 0 -> Ok (Peer_role id, pos)
  | 1 -> Ok (Client_role id, pos)
  | _ -> Error "unknown role tag"

let r_publication s ~pos =
  let* tag, pos = Prim.read_uv s ~pos in
  match tag with
  | 0 ->
      let* n, pos = Prim.read_uv s ~pos in
      if n < 1 || n > 4096 then Error "bad publication arity"
      else
        let values = Array.make n 0 in
        let rec go i pos =
          if i = n then Ok (Publication.Point values, pos)
          else
            let* v, pos = Prim.read_sv s ~pos in
            values.(i) <- v;
            go (i + 1) pos
        in
        go 0 pos
  | 1 ->
      let* sub, pos = Prim.read_subscription s ~pos in
      Ok (Publication.Box sub, pos)
  | _ -> Error "unknown publication tag"

let r_payload s ~pos =
  let* tag, pos = Prim.read_uv s ~pos in
  match tag with
  | 0 ->
      let* key, pos = Prim.read_uv s ~pos in
      let* epoch, pos = Prim.read_uv s ~pos in
      let* sub, pos = Prim.read_subscription s ~pos in
      Ok (Message.Subscribe { key; sub; epoch }, pos)
  | 1 ->
      let* key, pos = Prim.read_uv s ~pos in
      Ok (Message.Unsubscribe { key }, pos)
  | 2 ->
      let* key, pos = Prim.read_uv s ~pos in
      let* adv, pos = Prim.read_subscription s ~pos in
      Ok (Message.Advertise { key; adv }, pos)
  | 3 ->
      let* key, pos = Prim.read_uv s ~pos in
      Ok (Message.Unadvertise { key }, pos)
  | 4 ->
      let* id, pos = Prim.read_uv s ~pos in
      let* pub, pos = r_publication s ~pos in
      Ok (Message.Publish { id; pub }, pos)
  | 5 ->
      let* seq, pos = Prim.read_uv s ~pos in
      Ok (Message.Ack { seq }, pos)
  | _ -> Error "unknown payload tag"

let decode s =
  let* msg, pos =
    let* tag, pos = Prim.read_uv s ~pos:0 in
    match tag with
    | 0 ->
        let* role, pos = r_role s ~pos in
        let* session, pos = Prim.read_uv s ~pos in
        let* last_seen, pos = Prim.read_uv s ~pos in
        Ok (Hello { role; session; last_seen }, pos)
    | 1 ->
        let* session, pos = Prim.read_uv s ~pos in
        let* last_seen, pos = Prim.read_uv s ~pos in
        Ok (Welcome { session; last_seen }, pos)
    | 2 ->
        let* p, pos = r_payload s ~pos in
        Ok (Payload p, pos)
    | 3 ->
        let* client, pos = Prim.read_uv s ~pos in
        let* key, pos = Prim.read_uv s ~pos in
        let* pub_id, pos = Prim.read_uv s ~pos in
        Ok (Notify { client; key; pub_id }, pos)
    | 4 ->
        let* seq, pos = Prim.read_uv s ~pos in
        Ok (Frame_ack { seq }, pos)
    | 5 -> Ok (Bye, 1)
    | _ -> Error "unknown message tag"
  in
  if pos <> String.length s then Error "trailing bytes after message"
  else Ok msg

let frame ~seq msg = Codec.frame ~lsn:seq (encode msg)

let pp_role ppf = function
  | Peer_role id -> Format.fprintf ppf "peer %d" id
  | Client_role id -> Format.fprintf ppf "client %d" id

let pp ppf = function
  | Hello { role; session; last_seen } ->
      Format.fprintf ppf "Hello(%a, session %d, last_seen %d)" pp_role role
        session last_seen
  | Welcome { session; last_seen } ->
      Format.fprintf ppf "Welcome(session %d, last_seen %d)" session last_seen
  | Payload p -> Format.fprintf ppf "Payload(%a)" Message.pp_payload p
  | Notify { client; key; pub_id } ->
      Format.fprintf ppf "Notify(client %d, key %d, pub %d)" client key pub_id
  | Frame_ack { seq } -> Format.fprintf ppf "Frame_ack(%d)" seq
  | Bye -> Format.fprintf ppf "Bye"

open Probsub_core
module Message = Probsub_broker.Message
module Codec = Probsub_store_log.Codec
module Prim = Codec.Prim

type role = Peer_role of int | Client_role of int | Standby_role of int

type repl =
  | R_hello of { from_lsn : int }
  | R_frames of { bytes : string }
  | R_snapshot of { snap : string option; wal : string; next_lsn : int }
  | R_heartbeat of { epoch : int; next_lsn : int }
  | R_ack of { applied_lsn : int }

type msg =
  | Hello of { role : role; session : int; last_seen : int; epoch : int }
  | Welcome of { session : int; last_seen : int; epoch : int }
  | Payload of Message.payload
  | Notify of { client : int; key : int; pub_id : int }
  | Frame_ack of { seq : int }
  | Repl_stream of repl
  | Bye

type cls = Control | Sheddable

let class_of = function
  | Hello _ | Welcome _ | Frame_ack _ | Repl_stream _ | Bye -> Control
  | Payload p -> if Message.is_control p then Control else Sheddable
  | Notify _ -> Sheddable

let acked = function
  | Payload p -> Message.is_control p
  | Hello _ | Welcome _ | Notify _ | Frame_ack _ | Repl_stream _ | Bye -> false

(* Tags. Top level: 0 Hello, 1 Welcome, 2 Payload, 3 Notify,
   4 Frame_ack, 5 Bye, 6 Repl_stream. Payload: 0 Subscribe,
   1 Unsubscribe, 2 Advertise, 3 Unadvertise, 4 Publish, 5 Ack.
   Publication: 0 Point, 1 Box. Role: 0 peer, 1 client, 2 standby.
   Repl: 0 hello, 1 frames, 2 snapshot, 3 heartbeat, 4 ack. *)

(* Length-prefixed byte strings — only the replication stream carries
   them, so the helper lives here rather than in [Codec.Prim]. *)
let w_bytes b s =
  Prim.write_uv b (String.length s);
  Buffer.add_string b s

let w_role b = function
  | Peer_role id ->
      Prim.write_uv b 0;
      Prim.write_uv b id
  | Client_role id ->
      Prim.write_uv b 1;
      Prim.write_uv b id
  | Standby_role id ->
      Prim.write_uv b 2;
      Prim.write_uv b id

let w_repl b = function
  | R_hello { from_lsn } ->
      Prim.write_uv b 0;
      Prim.write_uv b from_lsn
  | R_frames { bytes } ->
      Prim.write_uv b 1;
      w_bytes b bytes
  | R_snapshot { snap; wal; next_lsn } ->
      Prim.write_uv b 2;
      (match snap with
      | None -> Prim.write_uv b 0
      | Some s ->
          Prim.write_uv b 1;
          w_bytes b s);
      w_bytes b wal;
      Prim.write_uv b next_lsn
  | R_heartbeat { epoch; next_lsn } ->
      Prim.write_uv b 3;
      Prim.write_uv b epoch;
      Prim.write_uv b next_lsn
  | R_ack { applied_lsn } ->
      Prim.write_uv b 4;
      Prim.write_uv b applied_lsn

let w_publication b = function
  | Publication.Point values ->
      Prim.write_uv b 0;
      Prim.write_uv b (Array.length values);
      Array.iter (Prim.write_sv b) values
  | Publication.Box s ->
      Prim.write_uv b 1;
      Prim.write_subscription b s

let w_payload b = function
  | Message.Subscribe { key; sub; epoch } ->
      Prim.write_uv b 0;
      Prim.write_uv b key;
      Prim.write_uv b epoch;
      Prim.write_subscription b sub
  | Message.Unsubscribe { key } ->
      Prim.write_uv b 1;
      Prim.write_uv b key
  | Message.Advertise { key; adv } ->
      Prim.write_uv b 2;
      Prim.write_uv b key;
      Prim.write_subscription b adv
  | Message.Unadvertise { key } ->
      Prim.write_uv b 3;
      Prim.write_uv b key
  | Message.Publish { id; pub } ->
      Prim.write_uv b 4;
      Prim.write_uv b id;
      w_publication b pub
  | Message.Ack { seq } ->
      Prim.write_uv b 5;
      Prim.write_uv b seq

let encode msg =
  let b = Buffer.create 64 in
  (match msg with
  | Hello { role; session; last_seen; epoch } ->
      Prim.write_uv b 0;
      w_role b role;
      Prim.write_uv b session;
      Prim.write_uv b last_seen;
      Prim.write_uv b epoch
  | Welcome { session; last_seen; epoch } ->
      Prim.write_uv b 1;
      Prim.write_uv b session;
      Prim.write_uv b last_seen;
      Prim.write_uv b epoch
  | Payload p ->
      Prim.write_uv b 2;
      w_payload b p
  | Notify { client; key; pub_id } ->
      Prim.write_uv b 3;
      Prim.write_uv b client;
      Prim.write_uv b key;
      Prim.write_uv b pub_id
  | Frame_ack { seq } ->
      Prim.write_uv b 4;
      Prim.write_uv b seq
  | Bye -> Prim.write_uv b 5
  | Repl_stream r ->
      Prim.write_uv b 6;
      w_repl b r);
  Buffer.contents b

(* Total decoding: result-chained reads, and the message must consume
   the payload exactly — trailing bytes are a framing bug upstream. *)

let ( let* ) = Result.bind

let r_role s ~pos =
  let* tag, pos = Prim.read_uv s ~pos in
  let* id, pos = Prim.read_uv s ~pos in
  match tag with
  | 0 -> Ok (Peer_role id, pos)
  | 1 -> Ok (Client_role id, pos)
  | 2 -> Ok (Standby_role id, pos)
  | _ -> Error "unknown role tag"

let r_bytes s ~pos =
  let* n, pos = Prim.read_uv s ~pos in
  if n < 0 || pos + n > String.length s then Error "byte string overruns frame"
  else Ok (String.sub s pos n, pos + n)

let r_repl s ~pos =
  let* tag, pos = Prim.read_uv s ~pos in
  match tag with
  | 0 ->
      let* from_lsn, pos = Prim.read_uv s ~pos in
      Ok (R_hello { from_lsn }, pos)
  | 1 ->
      let* bytes, pos = r_bytes s ~pos in
      Ok (R_frames { bytes }, pos)
  | 2 ->
      let* snap_tag, pos = Prim.read_uv s ~pos in
      let* snap, pos =
        match snap_tag with
        | 0 -> Ok (None, pos)
        | 1 ->
            let* snap, pos = r_bytes s ~pos in
            Ok (Some snap, pos)
        | _ -> Error "unknown snapshot presence tag"
      in
      let* wal, pos = r_bytes s ~pos in
      let* next_lsn, pos = Prim.read_uv s ~pos in
      Ok (R_snapshot { snap; wal; next_lsn }, pos)
  | 3 ->
      let* epoch, pos = Prim.read_uv s ~pos in
      let* next_lsn, pos = Prim.read_uv s ~pos in
      Ok (R_heartbeat { epoch; next_lsn }, pos)
  | 4 ->
      let* applied_lsn, pos = Prim.read_uv s ~pos in
      Ok (R_ack { applied_lsn }, pos)
  | _ -> Error "unknown repl tag"

let r_publication s ~pos =
  let* tag, pos = Prim.read_uv s ~pos in
  match tag with
  | 0 ->
      let* n, pos = Prim.read_uv s ~pos in
      if n < 1 || n > 4096 then Error "bad publication arity"
      else
        let values = Array.make n 0 in
        let rec go i pos =
          if i = n then Ok (Publication.Point values, pos)
          else
            let* v, pos = Prim.read_sv s ~pos in
            values.(i) <- v;
            go (i + 1) pos
        in
        go 0 pos
  | 1 ->
      let* sub, pos = Prim.read_subscription s ~pos in
      Ok (Publication.Box sub, pos)
  | _ -> Error "unknown publication tag"

let r_payload s ~pos =
  let* tag, pos = Prim.read_uv s ~pos in
  match tag with
  | 0 ->
      let* key, pos = Prim.read_uv s ~pos in
      let* epoch, pos = Prim.read_uv s ~pos in
      let* sub, pos = Prim.read_subscription s ~pos in
      Ok (Message.Subscribe { key; sub; epoch }, pos)
  | 1 ->
      let* key, pos = Prim.read_uv s ~pos in
      Ok (Message.Unsubscribe { key }, pos)
  | 2 ->
      let* key, pos = Prim.read_uv s ~pos in
      let* adv, pos = Prim.read_subscription s ~pos in
      Ok (Message.Advertise { key; adv }, pos)
  | 3 ->
      let* key, pos = Prim.read_uv s ~pos in
      Ok (Message.Unadvertise { key }, pos)
  | 4 ->
      let* id, pos = Prim.read_uv s ~pos in
      let* pub, pos = r_publication s ~pos in
      Ok (Message.Publish { id; pub }, pos)
  | 5 ->
      let* seq, pos = Prim.read_uv s ~pos in
      Ok (Message.Ack { seq }, pos)
  | _ -> Error "unknown payload tag"

let decode s =
  let* msg, pos =
    let* tag, pos = Prim.read_uv s ~pos:0 in
    match tag with
    | 0 ->
        let* role, pos = r_role s ~pos in
        let* session, pos = Prim.read_uv s ~pos in
        let* last_seen, pos = Prim.read_uv s ~pos in
        let* epoch, pos = Prim.read_uv s ~pos in
        Ok (Hello { role; session; last_seen; epoch }, pos)
    | 1 ->
        let* session, pos = Prim.read_uv s ~pos in
        let* last_seen, pos = Prim.read_uv s ~pos in
        let* epoch, pos = Prim.read_uv s ~pos in
        Ok (Welcome { session; last_seen; epoch }, pos)
    | 2 ->
        let* p, pos = r_payload s ~pos in
        Ok (Payload p, pos)
    | 3 ->
        let* client, pos = Prim.read_uv s ~pos in
        let* key, pos = Prim.read_uv s ~pos in
        let* pub_id, pos = Prim.read_uv s ~pos in
        Ok (Notify { client; key; pub_id }, pos)
    | 4 ->
        let* seq, pos = Prim.read_uv s ~pos in
        Ok (Frame_ack { seq }, pos)
    | 5 -> Ok (Bye, 1)
    | 6 ->
        let* r, pos = r_repl s ~pos in
        Ok (Repl_stream r, pos)
    | _ -> Error "unknown message tag"
  in
  if pos <> String.length s then Error "trailing bytes after message"
  else Ok msg

let frame ~seq msg = Codec.frame ~lsn:seq (encode msg)

let pp_role ppf = function
  | Peer_role id -> Format.fprintf ppf "peer %d" id
  | Client_role id -> Format.fprintf ppf "client %d" id
  | Standby_role id -> Format.fprintf ppf "standby %d" id

let pp_repl ppf = function
  | R_hello { from_lsn } -> Format.fprintf ppf "R_hello(from %d)" from_lsn
  | R_frames { bytes } ->
      Format.fprintf ppf "R_frames(%d bytes)" (String.length bytes)
  | R_snapshot { snap; wal; next_lsn } ->
      Format.fprintf ppf "R_snapshot(snap %s, wal %d bytes, next %d)"
        (match snap with
        | Some s -> string_of_int (String.length s) ^ " bytes"
        | None -> "absent")
        (String.length wal) next_lsn
  | R_heartbeat { epoch; next_lsn } ->
      Format.fprintf ppf "R_heartbeat(epoch %d, next %d)" epoch next_lsn
  | R_ack { applied_lsn } -> Format.fprintf ppf "R_ack(applied %d)" applied_lsn

let pp ppf = function
  | Hello { role; session; last_seen; epoch } ->
      Format.fprintf ppf "Hello(%a, session %d, last_seen %d, epoch %d)"
        pp_role role session last_seen epoch
  | Welcome { session; last_seen; epoch } ->
      Format.fprintf ppf "Welcome(session %d, last_seen %d, epoch %d)" session
        last_seen epoch
  | Payload p -> Format.fprintf ppf "Payload(%a)" Message.pp_payload p
  | Notify { client; key; pub_id } ->
      Format.fprintf ppf "Notify(client %d, key %d, pub %d)" client key pub_id
  | Frame_ack { seq } -> Format.fprintf ppf "Frame_ack(%d)" seq
  | Repl_stream r -> Format.fprintf ppf "Repl_stream(%a)" pp_repl r
  | Bye -> Format.fprintf ppf "Bye"

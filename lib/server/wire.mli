(** The broker wire protocol: what travels inside {!Probsub_store_log.Codec}
    frames on broker-to-broker and client-to-broker sockets.

    Every frame is [Codec.frame ~lsn:seq (encode msg)] — the same
    [len ++ crc ++ varint-lsn ++ body] format the WAL uses, with the
    lsn slot carrying the sender's per-connection-direction sequence
    number. Field encodings come from {!Codec.Prim}, so the wire and
    the log cannot drift.

    Sessions and resume: each process picks a session id at startup and
    opens every outgoing connection with {!Hello}. The accepting side
    answers {!Welcome}[{ last_seen }] — the highest sequence number it
    has {e processed} from this peer within the peer's current session
    (0 for a new session, which also resets its dedup window). The
    reconnecting sender treats everything at or below [last_seen] as
    acked and retransmits the rest, making resume idempotent: the
    receiver's window drops what it already saw, and [Broker_node]
    drops a known key at an unchanged epoch. *)

type role =
  | Peer_role of int
  | Client_role of int
  | Standby_role of int
      (** A hot standby for the broker with this id — the same durable
          identity, so its epoch is comparable with the acceptor's. *)

(** Replication sub-protocol carried by {!Repl_stream}. The standby
    opens with [R_hello] naming its next expected LSN; the primary
    answers with frame chunks or a full snapshot rebase, then keeps
    streaming as the log grows, interleaving heartbeats. *)
type repl =
  | R_hello of { from_lsn : int }
      (** Standby → primary: start (or restart) shipping from here. *)
  | R_frames of { bytes : string }
      (** Primary → standby: verbatim WAL frame bytes, contiguous
          LSNs. *)
  | R_snapshot of { snap : string option; wal : string; next_lsn : int }
      (** Primary → standby: full rebase of snapshot slot and WAL. *)
  | R_heartbeat of { epoch : int; next_lsn : int }
      (** Primary → standby liveness: current epoch and log head. *)
  | R_ack of { applied_lsn : int }
      (** Standby → primary: everything below [applied_lsn] is durable
          on the standby (the primary's replication-lag input). *)

type msg =
  | Hello of { role : role; session : int; last_seen : int; epoch : int }
      (** Connection opener. [last_seen] mirrors what this sender has
          processed from the {e accepting} side, unused (0) on
          client connections. [epoch] is the sender's view of the
          fencing epoch for the {e destination} broker identity — the
          failover fence: a broker greeted with an epoch above its own
          knows it was superseded and must stop acking writes. *)
  | Welcome of { session : int; last_seen : int; epoch : int }
      (** Handshake answer; [session] echoes the acceptor's own session
          id and [epoch] its current fencing epoch (clients remember it
          to detect failovers; a standby adopts it). *)
  | Payload of Probsub_broker.Message.payload
      (** A broker-protocol message; the origin is implied by the
          connection's authenticated role. *)
  | Notify of { client : int; key : int; pub_id : int }
      (** Broker-to-client delivery of a matched publication. *)
  | Frame_ack of { seq : int }
      (** Acknowledges the control frame that crossed this connection
          with sequence number [seq]. *)
  | Repl_stream of repl
      (** Replication traffic between a primary and its standby.
          Control class — never shed. *)
  | Bye  (** Graceful close. *)

type cls = Control | Sheddable

val class_of : msg -> cls
(** Backpressure class: {!Sheddable} only for publication forwards and
    notifications — control traffic is never shed. *)

val acked : msg -> bool
(** True for messages that ride the acked/retransmitted channel
    (control payloads). Handshake and sheddable data are not acked. *)

val encode : msg -> string
(** Payload bytes, unframed. *)

val decode : string -> (msg, string) result
(** Total inverse of {!encode}: [Error] on any malformed or trailing
    bytes, never raises. *)

val frame : seq:int -> msg -> string
(** Wrap in the checksummed on-wire frame. *)

val pp : Format.formatter -> msg -> unit
val pp_role : Format.formatter -> role -> unit

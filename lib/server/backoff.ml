open Probsub_core

type t = {
  base : float;
  cap : float;
  max_attempts : int;
  jitter : Prng.t;
  mutable attempts : int;
}

let create ?(base = 0.05) ?(cap = 2.0) ?(max_attempts = 0) ~seed () =
  if not (base > 0.0) then invalid_arg "Backoff.create: base must be positive";
  if not (cap >= base) then invalid_arg "Backoff.create: cap below base";
  if max_attempts < 0 then
    invalid_arg "Backoff.create: max_attempts must be non-negative";
  { base; cap; max_attempts; jitter = Prng.of_int seed; attempts = 0 }

let attempts t = t.attempts
let reset t = t.attempts <- 0

let next_delay t =
  if t.max_attempts > 0 && t.attempts >= t.max_attempts then None
  else begin
    let exp = Float.min 30.0 (float_of_int t.attempts) in
    t.attempts <- t.attempts + 1;
    let raw = Float.min t.cap (t.base *. (2.0 ** exp)) in
    (* Multiplicative jitter in [0.75, 1.25): seeded, so a whole fleet
       restarting together still fans out deterministically per id. *)
    Some (raw *. (0.75 +. (0.5 *. Prng.float t.jitter)))
  end

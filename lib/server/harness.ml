open Probsub_core
module Audit = Probsub_broker.Audit

exception Error of string

let failf fmt =
  (Printf.ksprintf (fun s -> raise (Error s)) fmt
  [@problint.allow exn_flow
    "documented typed-failure contract: every harness entry point reports \
     scenario failure as Harness.Error, and the chaos tests catch it at \
     the top level"])

(* ------------------------------------------------------------------ *)
(* Process fleet *)

type fleet = {
  f_sock_dir : string;
  f_wal_root : string;
  f_configs : Broker_server.config array;
  f_pids : int option array;
  f_spawned : float array;  (* wall time of the last spawn, per broker *)
}

let sleepf s = try Unix.sleepf s with Unix.Unix_error (Unix.EINTR, _, _) -> ()

(* Fork without exec: the child becomes a broker process running the
   select loop forever (the parent stops it with a signal), signalling
   readiness over a pipe so the parent never races the bind (a standby
   signals after [create], i.e. once it is dialling its primary). *)
let fork_server cfg =
  let r, w = Unix.pipe () in
  match Unix.fork () with
  | exception e ->
      (* EAGAIN under process pressure is exactly when a chaos harness
         forks; without this branch both pipe ends leak per retry. *)
      Unix.close r;
      Unix.close w;
      raise e
  | 0 ->
      (try Unix.close r with Unix.Unix_error _ -> ());
      (try
         Broker_server.run
           ~on_ready:(fun () ->
             (try
                ignore (Unix.write w (Bytes.make 1 'r') 0 1);
                Unix.close w
              with Unix.Unix_error _ -> ()))
           cfg
       with _ -> ());
      Unix._exit 0
  | pid ->
      Unix.close w;
      let buf = Bytes.create 1 in
      let n = try Unix.read r buf 0 1 with Unix.Unix_error _ -> 0 in
      Unix.close r;
      if n <> 1 then begin
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0));
        failf "broker %d failed to come up" cfg.Broker_server.id
      end;
      pid

let spawn fleet i =
  let pid = fork_server fleet.f_configs.(i) in
  fleet.f_spawned.(i) <- Clock.now ();
  fleet.f_pids.(i) <- Some pid

let kill_pid pid =
  (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
  ignore (try Unix.waitpid [] pid with Unix.Unix_error _ -> (0, Unix.WEXITED 0))

let kill9 fleet i =
  match fleet.f_pids.(i) with
  | None -> ()
  | Some pid ->
      kill_pid pid;
      fleet.f_pids.(i) <- None

let stop_fleet fleet = Array.iteri (fun i _ -> kill9 fleet i) fleet.f_pids

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Sys.remove path with Sys_error _ -> ())
  | exception Unix.Unix_error _ -> ()

(* Line topology 0 - 1 - ... - n-1: publications from one end must
   traverse every interior broker to reach the other, so a probe across
   the line exercises the victim. *)
let make_fleet ~seed ~brokers ~arity ~refresh_interval ~sock_dir ~wal_root =
  let configs =
    Array.init brokers (fun i ->
        let neighbors =
          (if i > 0 then [ i - 1 ] else [])
          @ (if i < brokers - 1 then [ i + 1 ] else [])
        in
        let wal_dir = Filename.concat wal_root (Printf.sprintf "broker-%d" i) in
        (* Peer-reconnect cap 0.5 s, not the server default 2 s: during
           an outage longer than one doubling the accumulated delay
           otherwise dominates recovery_seconds — the fleet would sit
           out a ~2 s backoff after the victim is already back. *)
        Broker_server.config ~id:i ~neighbors ~sock_dir ~arity
          ~seed:(seed + (i * 1009))
          ~wal_dir:(Some wal_dir) ~refresh_interval
          ~lease_ttl:(refresh_interval *. 6.0)
          ~rto:0.2 ~max_retries:8 ~backoff_cap:0.5 ())
  in
  {
    f_sock_dir = sock_dir;
    f_wal_root = wal_root;
    f_configs = configs;
    f_pids = Array.make brokers None;
    f_spawned = Array.make brokers 0.0;
  }

(* ------------------------------------------------------------------ *)
(* Probes *)

let pump_for clients seconds =
  let deadline = Clock.now () +. seconds in
  while Clock.now () < deadline do
    Loadgen.poll_all clients;
    sleepf 0.002
  done

let midpoint sub =
  Publication.point
    (Array.map
       (fun r -> Interval.lo r + ((Interval.hi r - Interval.lo r) / 2))
       (Subscription.ranges sub))

(* Publish [pub] under [pub_id] from [publisher] and pump until its
   full expected recipient set (per the in-process matcher) has
   arrived. Publications are sheddable and unretransmitted, so a probe
   lost to an outage simply times out — callers retry with a fresh id. *)
let probe ~w ~clients ~publisher ~pub_id ~pub ~timeout =
  let expected = Loadgen.expected_recipients w pub in
  if expected = [] then failf "probe publication matches no subscription";
  let deadline = Clock.now () +. timeout in
  let sent = ref (Loadgen.publish publisher ~id:pub_id pub) in
  let rec go () =
    Loadgen.poll_all clients;
    if not !sent then sent := Loadgen.publish publisher ~id:pub_id pub;
    if
      !sent
      && List.sort_uniq compare (Loadgen.delivered_for w pub_id) = expected
    then true
    else if Clock.now () >= deadline then false
    else begin
      sleepf 0.002;
      go ()
    end
  in
  go ()

(* Retry [probe] with fresh publication ids until one round-trips;
   returns the wall time from [since] to success. *)
let probe_until ~w ~clients ~publisher ~pub_base ~pub ~since ~deadline =
  let rec attempt k =
    if Clock.now () >= deadline then
      failf "probe never round-tripped within its deadline"
    else if
      probe ~w ~clients ~publisher ~pub_id:(pub_base + k) ~pub ~timeout:0.25
    then Clock.now () -. since
    else attempt (k + 1)
  in
  attempt 0

(* A probe that must cross the whole line: published by a client of
   broker [src], matching (at least) a subscription homed at [dst]. *)
let cross_line_probe w clients ~src ~dst =
  let table = Loadgen.workload_table w in
  let publisher =
    match
      List.find_opt (fun c -> Loadgen.home c = src) clients
    with
    | Some c -> c
    | None -> failf "no client homed at broker %d" src
  in
  let sub =
    match
      List.find_map
        (fun (b, _, subs) ->
          if b = dst then
            match subs with (_, sub) :: _ -> Some sub | [] -> None
          else None)
        table
    with
    | Some sub -> sub
    | None -> failf "no subscription homed at broker %d" dst
  in
  (publisher, midpoint sub)

(* ------------------------------------------------------------------ *)
(* The chaos scenario *)

type config = {
  seed : int;
  brokers : int;
  clients_per_broker : int;
  subs_per_client : int;
  arity : int;
  pubs : int;  (** per measured phase (before and after the kill) *)
  refresh_interval : float;
  per_pub_timeout : float;
}

let config ?(brokers = 3) ?(clients_per_broker = 2) ?(subs_per_client = 4)
    ?(arity = 2) ?(pubs = 30) ?(refresh_interval = 0.5)
    ?(per_pub_timeout = 3.0) ~seed () =
  if brokers < 2 then invalid_arg "Harness.config: need at least 2 brokers";
  if clients_per_broker < 1 || subs_per_client < 1 || pubs < 1 then
    invalid_arg "Harness.config: empty workload";
  if refresh_interval <= 0.0 || per_pub_timeout <= 0.0 then
    invalid_arg "Harness.config: non-positive interval";
  {
    seed;
    brokers;
    clients_per_broker;
    subs_per_client;
    arity;
    pubs;
    refresh_interval;
    per_pub_timeout;
  }

type result = {
  victim : int;
  connections : int;  (** client connections across the fleet *)
  recovery_seconds : float;
      (** restart initiation to the first publication round-tripping
          through the restarted broker *)
  pre : Loadgen.result;  (** closed-loop phase before the kill *)
  post : Loadgen.result;  (** closed-loop phase after recovery *)
  clean : bool;
      (** both phases audit clean with byte-identical verdicts *)
}

let phase_clean (r : Loadgen.result) =
  Audit.is_clean r.Loadgen.audit && r.Loadgen.verdicts_match

(* Wait until the victim's refresh phase sits just past a wave tick,
   so the SIGKILL lands while the wave's Subscribe forwards and acks
   are in flight — the torn-WAL-tail, half-propagated-epoch case the
   recovery path must absorb. *)
let align_mid_wave fleet clients ~victim ~interval =
  let elapsed = Clock.now () -. fleet.f_spawned.(victim) in
  let target = 0.1 *. interval in
  let frac = Float.rem elapsed interval in
  let wait = if frac <= target then target -. frac else interval -. frac +. target in
  pump_for clients wait

let run cc =
  let sock_dir = Filename.temp_dir "probsub-sock" "" in
  let wal_root = Filename.temp_dir "probsub-wal" "" in
  let fleet =
    make_fleet ~seed:cc.seed ~brokers:cc.brokers ~arity:cc.arity
      ~refresh_interval:cc.refresh_interval ~sock_dir ~wal_root
  in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter Loadgen.close_client !clients;
      stop_fleet fleet;
      rm_rf sock_dir;
      rm_rf wal_root)
    (fun () ->
      Array.iteri (fun i _ -> spawn fleet i) fleet.f_configs;
      let rng = Prng.of_int cc.seed in
      clients :=
        List.concat
          (List.init cc.brokers (fun b ->
               List.init cc.clients_per_broker (fun j ->
                   Loadgen.connect_client ~sock_dir ~broker:b
                     ~client:((b * 100) + j + 1)
                     ~seed:((cc.seed * 7919) + (b * 100) + j)
                     ())));
      let clients = !clients in
      if not (Loadgen.wait_connected clients) then
        failf "clients failed to connect";
      let w =
        Loadgen.install ~rng ~arity:cc.arity
          ~subs_per_client:cc.subs_per_client clients
      in
      if not (Loadgen.wait_acked clients) then
        failf "subscriptions were never acked";
      (* Warm up: a probe in each direction across the whole line
         proves the subscription flood reached every broker. *)
      let last = cc.brokers - 1 in
      let deadline = Clock.now () +. 30.0 in
      let p_fwd, pub_fwd = cross_line_probe w clients ~src:0 ~dst:last in
      let (_ : float) =
        probe_until ~w ~clients ~publisher:p_fwd ~pub_base:2_000_000
          ~pub:pub_fwd ~since:(Clock.now ()) ~deadline
      in
      let p_bwd, pub_bwd = cross_line_probe w clients ~src:last ~dst:0 in
      let (_ : float) =
        probe_until ~w ~clients ~publisher:p_bwd ~pub_base:2_100_000
          ~pub:pub_bwd ~since:(Clock.now ()) ~deadline
      in
      (* Phase 1: healthy fleet. *)
      let pre =
        Loadgen.drive ~pub_base:1_000_000 ~rng ~arity:cc.arity ~pubs:cc.pubs
          ~per_pub_timeout:cc.per_pub_timeout w
      in
      (* SIGKILL an interior broker mid-refresh-wave. *)
      let victim = cc.brokers / 2 in
      align_mid_wave fleet clients ~victim ~interval:cc.refresh_interval;
      kill9 fleet victim;
      (* Let the fleet notice: peers and the victim's clients see EOF
         and enter backoff. *)
      pump_for clients cc.refresh_interval;
      (* Restart from the same WAL directory. *)
      let t_restart = Clock.now () in
      spawn fleet victim;
      let recovery_seconds =
        probe_until ~w ~clients ~publisher:p_fwd ~pub_base:2_200_000
          ~pub:pub_fwd ~since:t_restart
          ~deadline:(t_restart +. 60.0)
      in
      (* One refresh wave after recovery re-synchronizes lease epochs
         everywhere; then the audited phase must be spotless. *)
      pump_for clients cc.refresh_interval;
      let post =
        Loadgen.drive ~pub_base:3_000_000 ~rng ~arity:cc.arity ~pubs:cc.pubs
          ~per_pub_timeout:cc.per_pub_timeout w
      in
      {
        victim;
        connections = List.length clients;
        recovery_seconds;
        pre;
        post;
        clean = phase_clean pre && phase_clean post;
      })

let pp_result ppf r =
  Format.fprintf ppf
    "victim=%d connections=%d recovery=%.3fs@ pre: %.1f pubs/s p50=%.2fms \
     p99=%.2fms clean=%b@ post: %.1f pubs/s p50=%.2fms p99=%.2fms clean=%b"
    r.victim r.connections r.recovery_seconds r.pre.Loadgen.pubs_per_sec
    r.pre.Loadgen.p50_ms r.pre.Loadgen.p99_ms (phase_clean r.pre)
    r.post.Loadgen.pubs_per_sec r.post.Loadgen.p50_ms r.post.Loadgen.p99_ms
    (phase_clean r.post)

(* ------------------------------------------------------------------ *)
(* The failover scenario: same fleet, but the victim has a hot standby
   and is never restarted — the standby must take over. *)

(* A standby shadowing [victim]: same broker identity and neighbours
   (it inherits the victim's place in the topology on promotion),
   replicating into its own WAL directory, with tight heartbeats so
   failover detection is sub-second. *)
let standby_config fleet ~victim =
  let cfg = fleet.f_configs.(victim) in
  let wal_dir =
    Filename.concat fleet.f_wal_root (Printf.sprintf "broker-%d-standby" victim)
  in
  Broker_server.config ~id:cfg.Broker_server.id
    ~neighbors:cfg.Broker_server.neighbors ~sock_dir:fleet.f_sock_dir
    ~arity:cfg.Broker_server.arity
    ~seed:(cfg.Broker_server.seed + 500_009)
    ~wal_dir:(Some wal_dir)
    ~refresh_interval:cfg.Broker_server.refresh_interval
    ~lease_ttl:cfg.Broker_server.lease_ttl ~rto:0.2 ~max_retries:8
    ~backoff_cap:0.5
    ~standby_of:
      (Some (Broker_server.socket_path ~sock_dir:fleet.f_sock_dir victim))
    ~repl_hb_interval:0.1 ~repl_hb_timeout:0.5 ()

(* Poll-connect the victim's socket path (5 ms cadence, pumping the
   clients between attempts) until somebody accepts again — the moment
   the promoted standby has bound it. *)
let wait_takeover clients ~path ~since ~deadline =
  let rec go () =
    if Clock.now () >= deadline then
      failf "standby never took over the socket"
    else begin
      Loadgen.poll_all clients;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      let up =
        match
          (Unix.connect fd (Unix.ADDR_UNIX path)
           [@problint.allow blocking
             "a Unix-domain connect to a listening (or absent) socket \
              returns immediately; this is the harness's takeover \
              detector, polled at 5 ms"])
        with
        | () -> true
        | exception Unix.Unix_error (_, _, _) -> false
      in
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if up then Clock.now () -. since
      else begin
        sleepf 0.005;
        go ()
      end
    end
  in
  go ()

type failover_result = {
  victim : int;
  connections : int;  (** client connections across the fleet *)
  detection_seconds : float;
      (** SIGKILL to the promoted standby accepting on the victim's
          socket path *)
  outage_seconds : float;
      (** SIGKILL to the first publication round-tripping through the
          promoted standby *)
  failover_reconnects : int;
      (** clients that re-handshook at the raised epoch *)
  pre : Loadgen.result;
  post : Loadgen.result;
  clean : bool;
}

let run_failover cc =
  let sock_dir = Filename.temp_dir "probsub-sock" "" in
  let wal_root = Filename.temp_dir "probsub-wal" "" in
  let fleet =
    make_fleet ~seed:cc.seed ~brokers:cc.brokers ~arity:cc.arity
      ~refresh_interval:cc.refresh_interval ~sock_dir ~wal_root
  in
  let victim = cc.brokers / 2 in
  let standby_pid = ref None in
  let clients = ref [] in
  Fun.protect
    ~finally:(fun () ->
      List.iter Loadgen.close_client !clients;
      (match !standby_pid with Some pid -> kill_pid pid | None -> ());
      stop_fleet fleet;
      rm_rf sock_dir;
      rm_rf wal_root)
    (fun () ->
      Array.iteri (fun i _ -> spawn fleet i) fleet.f_configs;
      standby_pid := Some (fork_server (standby_config fleet ~victim));
      let rng = Prng.of_int cc.seed in
      clients :=
        List.concat
          (List.init cc.brokers (fun b ->
               List.init cc.clients_per_broker (fun j ->
                   Loadgen.connect_client ~sock_dir ~broker:b
                     ~client:((b * 100) + j + 1)
                     ~seed:((cc.seed * 7919) + (b * 100) + j)
                     ())));
      let clients = !clients in
      if not (Loadgen.wait_connected clients) then
        failf "clients failed to connect";
      let w =
        Loadgen.install ~rng ~arity:cc.arity
          ~subs_per_client:cc.subs_per_client clients
      in
      if not (Loadgen.wait_acked clients) then
        failf "subscriptions were never acked";
      let last = cc.brokers - 1 in
      let deadline = Clock.now () +. 30.0 in
      let p_fwd, pub_fwd = cross_line_probe w clients ~src:0 ~dst:last in
      let (_ : float) =
        probe_until ~w ~clients ~publisher:p_fwd ~pub_base:2_000_000
          ~pub:pub_fwd ~since:(Clock.now ()) ~deadline
      in
      let p_bwd, pub_bwd = cross_line_probe w clients ~src:last ~dst:0 in
      let (_ : float) =
        probe_until ~w ~clients ~publisher:p_bwd ~pub_base:2_100_000
          ~pub:pub_bwd ~since:(Clock.now ()) ~deadline
      in
      (* Phase 1: healthy fleet, standby streaming alongside. *)
      let pre =
        Loadgen.drive ~pub_base:1_000_000 ~rng ~arity:cc.arity ~pubs:cc.pubs
          ~per_pub_timeout:cc.per_pub_timeout w
      in
      (* SIGKILL the primary mid-refresh-wave; never restart it. The
         standby's heartbeat watchdog must notice, promote over the
         replicated WAL, raise the fence epoch and take the socket. *)
      align_mid_wave fleet clients ~victim ~interval:cc.refresh_interval;
      kill9 fleet victim;
      let t_kill = Clock.now () in
      let path = Broker_server.socket_path ~sock_dir victim in
      let detection_seconds =
        wait_takeover clients ~path ~since:t_kill ~deadline:(t_kill +. 30.0)
      in
      let outage_seconds =
        probe_until ~w ~clients ~publisher:p_fwd ~pub_base:2_300_000
          ~pub:pub_fwd ~since:t_kill
          ~deadline:(t_kill +. 60.0)
      in
      (* One refresh wave re-synchronizes lease epochs through the new
         primary; then the audited phase must be spotless. *)
      pump_for clients cc.refresh_interval;
      let post =
        Loadgen.drive ~pub_base:3_000_000 ~rng ~arity:cc.arity ~pubs:cc.pubs
          ~per_pub_timeout:cc.per_pub_timeout w
      in
      {
        victim;
        connections = List.length clients;
        detection_seconds;
        outage_seconds;
        failover_reconnects =
          List.fold_left
            (fun n c -> n + Loadgen.failover_reconnects c)
            0 clients;
        pre;
        post;
        clean = phase_clean pre && phase_clean post;
      })

let pp_failover_result ppf r =
  Format.fprintf ppf
    "victim=%d connections=%d detection=%.3fs outage=%.3fs reconnects=%d@ \
     pre: %.1f pubs/s p50=%.2fms p99=%.2fms clean=%b@ post: %.1f pubs/s \
     p50=%.2fms p99=%.2fms clean=%b"
    r.victim r.connections r.detection_seconds r.outage_seconds
    r.failover_reconnects r.pre.Loadgen.pubs_per_sec r.pre.Loadgen.p50_ms
    r.pre.Loadgen.p99_ms (phase_clean r.pre) r.post.Loadgen.pubs_per_sec
    r.post.Loadgen.p50_ms r.post.Loadgen.p99_ms (phase_clean r.post)

(** Client runtime and closed-loop load generator for the real broker
    fleet.

    {!client} is a full protocol endpoint: it dials its home broker's
    Unix socket, handshakes (Hello/Welcome with session resume), tracks
    its control traffic through the same {!Probsub_broker.Reliable_link}
    sender the brokers use, publishes on the sheddable channel, and
    records every [Notify] with its wall-clock arrival time. Everything
    is non-blocking; {!poll} pumps reconnects, writes, reads and
    retransmissions.

    {!drive} runs the closed loop the bench and chaos harness share:
    one publication at a time, waiting for its full expected recipient
    set (computed by the {e in-process} matching engine from the
    loadgen's own subscription table), measuring last-arrival latency.
    The [verdicts_match] bit is the acceptance criterion from the
    issue: the canonical serialization of who the sockets delivered to
    is byte-identical to what {!Probsub_core.Publication.matches} says.
*)

open Probsub_core
module Audit = Probsub_broker.Audit

(** {1 Client runtime} *)

type client

type notification = { n_pub : int; n_key : int; n_at : float }

val connect_client :
  ?rto:float ->
  ?max_retries:int ->
  sock_dir:string ->
  broker:int ->
  client:int ->
  seed:int ->
  unit ->
  client
(** A client of broker [broker]; dials lazily from the first {!poll}.
    [rto] (default 0.5 s) governs control-message retransmission. *)

val poll : client -> unit
(** One non-blocking pump: reconnect if due, flush, read, fire due
    retransmission timers. Never blocks, never raises on socket
    errors. *)

val connected : client -> bool
(** Handshake complete on a live connection. *)

val in_flight : client -> int
(** Control messages sent but not yet acked by the broker. *)

val subscribe : client -> key:int -> Subscription.t -> unit
(** Tracked (acked, retransmitted) subscription install. Keys are the
    caller's responsibility to keep network-unique. *)

val unsubscribe : client -> key:int -> unit

val publish : client -> id:int -> Publication.t -> bool
(** Best-effort publish on the sheddable channel; [false] if the
    client is not currently connected and welcomed (the publication is
    not queued — closed-loop drivers retry or skip). *)

val notifications : client -> notification list
(** Every [Notify] received, in arrival order. *)

val home : client -> int
val client_id : client -> int

val backoff_attempts : client -> int
(** Reconnect attempts consumed since the last successful handshake —
    0 right after a Welcome (the backoff resets so the {e next} outage
    starts from the base delay again, not the accumulated cap). *)

val epoch_seen : client -> int
(** Highest fence epoch any Welcome carried (0 before the first
    handshake). Echoed in later Hellos, which is what demotes a stale
    ex-primary the client happens to reach first. *)

val failover_reconnects : client -> int
(** Times this client re-handshook at a {e higher} epoch than it was
    previously welcomed at — i.e. resumed its session against a
    freshly promoted standby. *)

val close_client : client -> unit
(** Send [Bye] best-effort and close the socket. *)

(** {1 Closed-loop driver} *)

val poll_all : client list -> unit

val wait_connected : ?timeout:float -> client list -> bool
(** Pump until every client is connected and welcomed; [false] on
    timeout (default 10 s). *)

val wait_acked : ?timeout:float -> client list -> bool
(** Pump until no client has control traffic in flight. *)

type workload

val install :
  rng:Prng.t -> arity:int -> subs_per_client:int -> client list -> workload
(** Issue [subs_per_client] random box subscriptions per client with
    globally unique keys. Callers should {!wait_acked} afterwards. *)

val random_publication : rng:Prng.t -> arity:int -> Publication.t

val workload_table : workload -> (int * int * (int * Subscription.t) list) list
(** [(broker, client, subscriptions)] per client — the loadgen's own
    record of what it installed, for harnesses that craft targeted
    probes. *)

val expected_recipients : workload -> Publication.t -> (int * int * int) list
(** Ground truth for one publication from the in-process matcher:
    sorted [(broker, client, key)] triples. *)

val delivered_for : workload -> int -> (int * int * int) list
(** Every delivery of [pub_id] observed so far over the sockets,
    duplicates included. *)

type result = {
  clients : int;
  subscriptions : int;
  pubs : int;
  expected : int;  (** deliveries ground truth demanded *)
  delivered : int;  (** deliveries observed over the sockets *)
  pubs_per_sec : float;
  p50_ms : float;  (** last-arrival match latency percentiles… *)
  p99_ms : float;  (** …over publications with a non-empty match set *)
  verdicts_match : bool;
      (** socket-delivered verdicts byte-identical to the in-process
          engine's *)
  audit : Audit.report;
}

val drive :
  ?pub_base:int ->
  rng:Prng.t ->
  arity:int ->
  pubs:int ->
  per_pub_timeout:float ->
  workload ->
  result
(** The closed loop: publish [pubs] publications round-robin across
    the clients, each waiting (bounded by [per_pub_timeout]) for its
    expected recipient set to arrive, then audit everything with
    {!Audit.report_delivered}. *)

val verdict_string : (int * (int * int * int) list) list -> string
(** Canonical verdict serialization: one sorted line per publication,
    recipients as sorted-deduped [broker:client:key] triples. *)

(** A real broker process: a {!Unix.select} event loop serving the
    broker protocol over Unix-domain sockets.

    One listening socket per broker at [sock_dir/broker-<id>.sock].
    The broker dials every neighbour (so each ordered pair of
    neighbours has its own connection carrying that direction's data,
    with handshake replies and acks flowing back on it) and accepts
    connections from peers and clients. All state transitions run
    through the {e same} transport-agnostic machinery the simulator
    uses — {!Probsub_broker.Broker_node} for routing/covering/leases,
    {!Probsub_broker.Reliable_link} for retransmission and dedup — so
    the network semantics proven in the fault-injection suite carry
    over verbatim; only the byte transport and the clock are new.

    Durability: with a [wal_dir], the broker journals its routing table
    through the PR 5 WAL/snapshot device, {e recovering} from an
    existing directory at startup (kill -9 restart) rather than wiping
    it. Lease-refresh waves for locally attached clients are driven
    from the recovered table, which is the recovery guarantee the chaos
    harness audits: after restart plus one refresh interval, routing
    state lost by peers to give-ups or the outage is repaired.

    Maintenance mirrors the simulator: a refresh wave and a lease sweep
    every [refresh_interval], the sweep doubling as the WAL compaction
    tick. *)

type config = {
  id : int;
  neighbors : int list;
  sock_dir : string;
  wal_dir : string option;  (** durable routing table when present *)
  arity : int;
  seed : int;
  policy : Probsub_core.Subscription_store.policy;
  lease_ttl : float;
  refresh_interval : float;
  rto : float;  (** initial retransmission timeout, doubles per retry *)
  max_retries : int;
  max_queue_bytes : int;  (** per-connection write budget before shed *)
  backoff_base : float;  (** first reconnect delay *)
  backoff_cap : float;  (** reconnect delay ceiling before jitter *)
}

val config :
  ?wal_dir:string option ->
  ?policy:Probsub_core.Subscription_store.policy ->
  ?lease_ttl:float ->
  ?refresh_interval:float ->
  ?rto:float ->
  ?max_retries:int ->
  ?max_queue_bytes:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  id:int ->
  neighbors:int list ->
  sock_dir:string ->
  arity:int ->
  seed:int ->
  unit ->
  config
(** Validated constructor; defaults mirror the simulator's recovery
    record (lease 30 s, refresh 10 s, rto 4 s, 6 retries).
    @raise Invalid_argument on a negative id, a self-neighbour, or
    recovery parameters the simulator would also reject. *)

val socket_path : sock_dir:string -> int -> string

type t

type stats = {
  mutable accepted : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable retransmits : int;
  mutable gave_up : int;
  mutable refresh_waves : int;
  mutable sweeps : int;
  mutable sheds : int;
  mutable corrupt_conns : int;
}

val create : config -> t
(** Bind the listening socket, recover (or initialise) the node, dial
    every neighbour, arm the maintenance timers. @raise Unix.Unix_error
    if the listening socket cannot be bound. *)

val step : t -> unit
(** One event-loop iteration: fire due timers, select (bounded at
    250 ms), accept, read, write, reap. Never raises on connection
    errors — they feed the backoff machinery. *)

val shutdown : t -> unit
(** Close every connection and the listening socket, removing the
    socket file. *)

val run : ?on_ready:(unit -> unit) -> ?should_stop:(unit -> bool) -> config -> unit
(** [create] then {!step} until [should_stop ()] (polled once per
    iteration), then {!shutdown}. [on_ready] fires once the listening
    socket is accepting — fork-based harnesses signal their parent
    from it. Ignores SIGPIPE process-wide (dead-socket writes surface
    as [EPIPE] and feed reconnect). *)

val node : t -> Probsub_broker.Broker_node.t
val session : t -> int
val stats : t -> stats

(** A real broker process: a {!Unix.select} event loop serving the
    broker protocol over Unix-domain sockets.

    One listening socket per broker at [sock_dir/broker-<id>.sock].
    The broker dials every neighbour (so each ordered pair of
    neighbours has its own connection carrying that direction's data,
    with handshake replies and acks flowing back on it) and accepts
    connections from peers and clients. All state transitions run
    through the {e same} transport-agnostic machinery the simulator
    uses — {!Probsub_broker.Broker_node} for routing/covering/leases,
    {!Probsub_broker.Reliable_link} for retransmission and dedup — so
    the network semantics proven in the fault-injection suite carry
    over verbatim; only the byte transport and the clock are new.

    Durability: with a [wal_dir], the broker journals its routing table
    through the PR 5 WAL/snapshot device, {e recovering} from an
    existing directory at startup (kill -9 restart) rather than wiping
    it. Lease-refresh waves for locally attached clients are driven
    from the recovered table, which is the recovery guarantee the chaos
    harness audits: after restart plus one refresh interval, routing
    state lost by peers to give-ups or the outage is repaired.

    Maintenance mirrors the simulator: a refresh wave and a lease sweep
    every [refresh_interval], the sweep doubling as the WAL compaction
    tick.

    Replication: with [standby_of], the process runs as a hot standby
    of the broker with the same id — it opens no listening socket,
    dials the primary's socket path, and streams the primary's WAL
    into its own [wal_dir] through {!Repl}, staying a bounded number
    of LSNs behind. When [repl_hb_timeout] passes without hearing the
    primary, the standby recovers a full broker from the replicated
    device, raises the identity's {e fence epoch} (journalled before
    anything is served), binds the primary's socket path and serves in
    its place; clients and peers reconnect transparently and session
    resume makes redelivery idempotent. The epoch rides every
    handshake, so a superseded ex-primary that ever hears a higher
    epoch for its own identity demotes to a fenced state and never
    acks a write again — at most one writable primary per identity. *)

type config = {
  id : int;
  neighbors : int list;
  sock_dir : string;
  wal_dir : string option;  (** durable routing table when present *)
  arity : int;
  seed : int;
  policy : Probsub_core.Subscription_store.policy;
  lease_ttl : float;
  refresh_interval : float;
  rto : float;  (** initial retransmission timeout, doubles per retry *)
  max_retries : int;
  max_queue_bytes : int;  (** per-connection write budget before shed *)
  backoff_base : float;  (** first reconnect delay *)
  backoff_cap : float;  (** reconnect delay ceiling before jitter *)
  standby_of : string option;
      (** Socket path of the primary this process shadows; [None] runs
          a normal primary. *)
  repl_hb_interval : float;  (** primary → standby heartbeat period *)
  repl_hb_timeout : float;
      (** silence after which the standby declares the primary dead *)
}

val config :
  ?wal_dir:string option ->
  ?policy:Probsub_core.Subscription_store.policy ->
  ?lease_ttl:float ->
  ?refresh_interval:float ->
  ?rto:float ->
  ?max_retries:int ->
  ?max_queue_bytes:int ->
  ?backoff_base:float ->
  ?backoff_cap:float ->
  ?standby_of:string option ->
  ?repl_hb_interval:float ->
  ?repl_hb_timeout:float ->
  id:int ->
  neighbors:int list ->
  sock_dir:string ->
  arity:int ->
  seed:int ->
  unit ->
  config
(** Validated constructor; defaults mirror the simulator's recovery
    record (lease 30 s, refresh 10 s, rto 4 s, 6 retries); replication
    heartbeats every 0.5 s with a 2 s failover timeout.
    @raise Invalid_argument on a negative id, a self-neighbour,
    recovery parameters the simulator would also reject, heartbeat
    parameters out of order, or a standby without a [wal_dir]. *)

val socket_path : sock_dir:string -> int -> string

type t

type role = Primary | Standby | Fenced
(** Where the process stands in the failover state machine. [Primary]
    serves clients and peers (and streams its WAL to an attached
    standby); [Standby] applies the stream and watches heartbeats;
    [Fenced] is a superseded ex-primary that holds no socket and never
    acks a write. Transitions: a standby promotes to primary on
    heartbeat loss; a primary demotes to fenced when any same-identity
    handshake carries a higher epoch. *)

type stats = {
  mutable accepted : int;
  mutable frames_in : int;
  mutable frames_out : int;
  mutable retransmits : int;
  mutable gave_up : int;
  mutable refresh_waves : int;
  mutable sweeps : int;
  mutable sheds : int;
  mutable corrupt_conns : int;
}

val create : config -> t
(** Primary: recover (or initialise) the node, probe the socket path
    for a live same-identity owner (entering {!Fenced} instead of
    binding when one answers), bind, dial every neighbour, arm the
    maintenance timers. Standby ([standby_of]): open no socket, dial
    the primary and start replicating. @raise Unix.Unix_error if the
    listening socket cannot be bound. *)

val step : t -> unit
(** One event-loop iteration: fire due timers, select (bounded at
    250 ms), accept, read, write, reap. Never raises on connection
    errors — they feed the backoff machinery. *)

val shutdown : t -> unit
(** Close every connection and the listening socket, removing the
    socket file. *)

val run : ?on_ready:(unit -> unit) -> ?should_stop:(unit -> bool) -> config -> unit
(** [create] then {!step} until [should_stop ()] (polled once per
    iteration), then {!shutdown}. [on_ready] fires once the listening
    socket is accepting — fork-based harnesses signal their parent
    from it. Ignores SIGPIPE process-wide (dead-socket writes surface
    as [EPIPE] and feed reconnect). *)

val node : t -> Probsub_broker.Broker_node.t
val session : t -> int
val stats : t -> stats

val role : t -> role
val epoch : t -> int
(** Current fencing epoch for this broker identity (0 = never
    fenced). *)

(** The kill -9 chaos harness: a real multi-process broker fleet,
    exercised end to end and audited with the simulator's oracle.

    {!run} forks [brokers] child processes on a line topology (each
    running {!Broker_server.run} with a WAL directory), connects real
    {!Loadgen} clients over the Unix sockets, installs a random
    workload, and then:

    + drives an audited closed-loop publication phase on the healthy
      fleet;
    + SIGKILLs an interior broker {e mid-refresh-wave} (the kill is
      phase-aligned just after a wave tick, while the wave's Subscribe
      forwards and acks are in flight);
    + restarts it on the same WAL directory — {!Broker_server.create}
      recovers rather than wipes — and measures the wall time until a
      probe publication round-trips across the whole line through the
      restarted broker;
    + drives a second audited phase, which must be spotless: every
      expected delivery exactly once, verdicts byte-identical to the
      in-process engine.

    Both the chaos test (pass/fail across seeds) and the serve bench
    (pubs/sec, latency percentiles, recovery time for
    [BENCH_serve.json]) are this one scenario with different knobs. *)

exception Error of string
(** Environmental failure (a broker that never came up, a probe that
    never round-tripped) — distinct from an audit failure, which is
    reported in {!result}. *)

type config = {
  seed : int;
  brokers : int;
  clients_per_broker : int;
  subs_per_client : int;
  arity : int;
  pubs : int;  (** per measured phase (before and after the kill) *)
  refresh_interval : float;
  per_pub_timeout : float;
}

val config :
  ?brokers:int ->
  ?clients_per_broker:int ->
  ?subs_per_client:int ->
  ?arity:int ->
  ?pubs:int ->
  ?refresh_interval:float ->
  ?per_pub_timeout:float ->
  seed:int ->
  unit ->
  config
(** Defaults: 3 brokers, 2 clients each, 4 subscriptions per client,
    arity 2, 30 publications per phase, 0.5 s refresh interval, 3 s
    per-publication deadline. @raise Invalid_argument on fewer than 2
    brokers or an empty workload. *)

type result = {
  victim : int;
  connections : int;  (** client connections across the fleet *)
  recovery_seconds : float;
      (** restart initiation to the first publication round-tripping
          through the restarted broker *)
  pre : Loadgen.result;  (** closed-loop phase before the kill *)
  post : Loadgen.result;  (** closed-loop phase after recovery *)
  clean : bool;
      (** both phases audit clean with byte-identical verdicts *)
}

val run : config -> result
(** Execute the scenario, always reaping the children and removing the
    temp directories. @raise Error on environmental failure. *)

val pp_result : Format.formatter -> result -> unit

(** {1 Failover chaos}

    Same fleet and workload, but the interior victim runs with a hot
    standby (same broker identity, own WAL directory, 0.1 s/0.5 s
    replication heartbeats) and is {e never restarted}: the SIGKILL —
    still aligned mid-refresh-wave — must be detected by the standby's
    heartbeat watchdog, which promotes over the replicated WAL, raises
    the fence epoch, binds the victim's socket path and serves in its
    place. *)

type failover_result = {
  victim : int;
  connections : int;  (** client connections across the fleet *)
  detection_seconds : float;
      (** SIGKILL to the promoted standby accepting on the victim's
          socket path *)
  outage_seconds : float;
      (** SIGKILL to the first publication round-tripping through the
          promoted standby *)
  failover_reconnects : int;
      (** clients that re-handshook at the raised epoch *)
  pre : Loadgen.result;
  post : Loadgen.result;
  clean : bool;
      (** both phases audit clean with byte-identical verdicts *)
}

val run_failover : config -> failover_result
(** Execute the failover scenario (the victim is [brokers / 2], as in
    {!run}). @raise Error on environmental failure, including a
    standby that never takes over. *)

val pp_failover_result : Format.formatter -> failover_result -> unit

let now () =
  (Unix.gettimeofday ()
  [@problint.allow
    determinism
      "the server layer is clock-driven by nature; every deadline in \
       lib/server derives from this single audited read"])

let session_id () = int_of_float (now () *. 1e6) land max_int

(* Connection handlers run inside the broker's select loop; they must
   never block (all fds are non-blocking, EAGAIN is a normal return).
   The attribute makes this module's definitions roots of the
   blocking-taint pass. *)
[@@@problint.event_loop]

module Codec = Probsub_store_log.Codec

type entry = { cls : Wire.cls; bytes : string }

type t = {
  fd : Unix.file_descr;
  decoder : Codec.Decoder.t;
  read_buf : bytes;
  max_queue_bytes : int;
  (* Write queue as a two-list deque, oldest first in [front]; the
     head entry may be partially written ([head_off] bytes gone). *)
  mutable front : entry list;
  mutable back : entry list;
  mutable head_off : int;
  mutable queued_bytes : int;
  mutable shed_total : int;
  mutable closed : bool;
  mutable fd_closed : bool;
}

let create ?(max_queue_bytes = 1 lsl 20) fd =
  if max_queue_bytes < 1 then
    invalid_arg "Conn.create: max_queue_bytes must be positive";
  Unix.set_nonblock fd;
  {
    fd;
    decoder = Codec.Decoder.create ();
    read_buf = Bytes.create 65536;
    max_queue_bytes;
    front = [];
    back = [];
    head_off = 0;
    queued_bytes = 0;
    shed_total = 0;
    closed = false;
    fd_closed = false;
  }

let fd t = t.fd
let closed t = t.closed
let queued_bytes t = t.queued_bytes
let shed_total t = t.shed_total
let wants_write t = (not t.closed) && (t.front <> [] || t.back <> [])

let close t =
  t.closed <- true;
  if not t.fd_closed then begin
    t.fd_closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

(* Drop the oldest sheddable entries until the queue fits, never
   touching control traffic or a partially-written head (removing a
   half-sent frame would corrupt the byte stream). *)
let shed t =
  if t.queued_bytes <= t.max_queue_bytes then 0
  else begin
    let entries = t.front @ List.rev t.back in
    let protected, candidates =
      match entries with
      | e :: tl when t.head_off > 0 -> ([ e ], tl)
      | _ -> ([], entries)
    in
    let dropped = ref 0 in
    let rec go kept total = function
      | [] -> (List.rev kept, total)
      | e :: tl ->
          if total > t.max_queue_bytes && e.cls = Wire.Sheddable then begin
            incr dropped;
            go kept (total - String.length e.bytes) tl
          end
          else go (e :: kept) total tl
    in
    let kept, total = go [] t.queued_bytes candidates in
    t.front <- protected @ kept;
    t.back <- [];
    t.queued_bytes <- total;
    t.shed_total <- t.shed_total + !dropped;
    !dropped
  end

let send t ~cls bytes =
  if t.closed then 0
  else begin
    t.back <- { cls; bytes } :: t.back;
    t.queued_bytes <- t.queued_bytes + String.length bytes;
    shed t
  end

let send_msg t ~seq msg = send t ~cls:(Wire.class_of msg) (Wire.frame ~seq msg)

let normalize t =
  match t.front with
  | [] ->
      t.front <- List.rev t.back;
      t.back <- []
  | _ :: _ -> ()

let rec flush t =
  if t.closed then `Closed
  else begin
    normalize t;
    match t.front with
    | [] -> `Ok
    | e :: tl -> (
        let remaining = String.length e.bytes - t.head_off in
        match Unix.write_substring t.fd e.bytes t.head_off remaining with
        | n ->
            if n = remaining then begin
              t.front <- tl;
              t.head_off <- 0;
              t.queued_bytes <- t.queued_bytes - String.length e.bytes;
              flush t
            end
            else begin
              (* Short write: the kernel buffer is full; select will
                 tell us when to come back. *)
              t.head_off <- t.head_off + n;
              `Ok
            end
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
          ->
            `Ok
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> flush t
        | exception Unix.Unix_error (_, _, _) ->
            close t;
            `Closed)
  end

let recv t =
  if t.closed then `Eof
  else
    match Unix.read t.fd t.read_buf 0 (Bytes.length t.read_buf) with
    | 0 -> `Eof
    | n ->
        Codec.Decoder.feed t.decoder t.read_buf ~pos:0 ~len:n;
        `Data n
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        `Blocked
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> `Blocked
    | exception Unix.Unix_error (_, _, _) -> `Eof

let next t =
  match Codec.Decoder.next t.decoder with
  | Codec.Decoder.D_frame { lsn; payload } -> (
      match Wire.decode payload with
      | Ok msg -> `Msg (lsn, msg)
      | Error reason -> `Corrupt reason)
  | Codec.Decoder.D_need_more -> `Pending
  | Codec.Decoder.D_corrupt reason -> `Corrupt reason

(** WAL shipping between a primary broker and its hot standby.

    The primary wraps its durable {!Probsub_store_log.Device.t} in a
    {!Ship.tap}; every WAL append and every compaction rebase is
    captured as an {!event} to stream to the standby. The standby
    feeds events through {!Apply}, which writes the identical bytes to
    its own device — so recovering the standby's device at any shipped
    prefix yields a store
    {!Probsub_core.Subscription_store.equal_state} to the primary's at
    that LSN.

    Events are idempotent on the apply side (stale frames are skipped
    by LSN), which makes retransmission after reconnect safe. *)

module Device := Probsub_store_log.Device

type event =
  | E_frames of string
      (** Raw WAL frame bytes, contiguous LSNs, verbatim from the
          primary's log. *)
  | E_snapshot of { snap : string option; wal : string; next_lsn : int }
      (** Full rebase: replace the standby's snapshot slot and WAL
          wholesale (after compaction, or when the standby's resume
          point predates the primary's retained tail). [next_lsn] is
          the LSN the primary's next append will carry. *)

(** Primary side: capture appends and rebases from the live device. *)
module Ship : sig
  type t

  val tap : Device.t -> t * Device.t
  (** [tap inner] returns the shipper plus a wrapped device that
      forwards every call to [inner] while recording replication
      events. Hand the wrapped device to {!Probsub_store_log} in place
      of [inner]. *)

  val drain : t -> event list
  (** Pending events since the last drain, oldest first. Adjacent
      frame appends are coalesced into one chunk; a rebase supersedes
      (drops) everything captured before it. *)

  val resume : t -> from_lsn:int -> event list
  (** Catch-up stream for a standby whose next expected LSN is
      [from_lsn]: the exact WAL byte suffix when the tail is still
      retained, a full rebase otherwise, and [[]] when the standby is
      already current. *)

  val next_lsn : t -> int
  val frames_shipped : t -> int
end

(** Standby side: apply shipped events to the local device. *)
module Apply : sig
  type t

  val create : device:Device.t -> t
  (** Attach to the standby's device. A torn tail left by a standby
      crash is cut back to the longest valid prefix first, so
      {!next_lsn} is always a resume point the primary can serve. *)

  val apply : t -> event -> (int, string) result
  (** Apply one event; returns the new next-expected LSN. Frames below
      the current position are skipped (idempotent); a gap above it is
      an error — the caller should tear down and re-handshake with its
      current {!next_lsn}. Errors leave the device unchanged except
      for a failed rebase consistency check, after which the caller
      must re-handshake anyway. *)

  val next_lsn : t -> int
  val frames_applied : t -> int
end

(** One non-blocking socket connection: incremental frame decoding on
    the read side, a bounded write queue with class-aware shedding on
    the write side.

    Reads tolerate arbitrary fragmentation — every chunk goes through
    {!Probsub_store_log.Codec.Decoder}, so torn frames simply wait for
    their remaining bytes. Writes queue whole frames; when the queue
    exceeds its byte budget the {e oldest sheddable} frames
    (publication forwards, notifications) are dropped first, and
    control traffic is never shed — a congested link loses data-plane
    freshness, not protocol correctness. A partially-written head frame
    is also never shed, whatever its class: removing half-sent bytes
    would corrupt the stream for everything behind it. *)

type t

val create : ?max_queue_bytes:int -> Unix.file_descr -> t
(** Takes ownership of [fd] and makes it non-blocking.
    [max_queue_bytes] (default 1 MiB) bounds the write queue.
    @raise Invalid_argument if it is below 1. *)

val fd : t -> Unix.file_descr
val closed : t -> bool
val queued_bytes : t -> int

val shed_total : t -> int
(** Sheddable frames dropped by backpressure over the connection's
    lifetime. *)

val wants_write : t -> bool
(** True when queued bytes remain — include the fd in the select write
    set. *)

val send : t -> cls:Wire.cls -> string -> int
(** Queue pre-framed bytes; returns how many older sheddable frames
    were dropped to respect the budget (0 when it fits). A closed
    connection discards silently. *)

val send_msg : t -> seq:int -> Wire.msg -> int
(** {!send} of [Wire.frame ~seq msg] under [msg]'s class. *)

val flush : t -> [ `Ok | `Closed ]
(** Write as much of the queue as the socket accepts without blocking.
    [`Closed] on a connection-fatal error (the fd is closed). *)

val recv : t -> [ `Data of int | `Blocked | `Eof ]
(** Read once into the decoder. [`Eof] covers both orderly shutdown
    and connection-fatal errors. *)

val next : t -> [ `Msg of int * Wire.msg | `Pending | `Corrupt of string ]
(** Pop the next decoded message ([seq, msg]); [`Corrupt] is sticky —
    tear the connection down. *)

val close : t -> unit
(** Idempotent. *)

(* Hot-standby replication: WAL frame shipping on the primary side,
   idempotent application on the standby side. Both halves speak the
   same [event] language; the transport (wire messages, retries) lives
   in {!Broker_server}. *)

module Device = Probsub_store_log.Device
module Wal = Probsub_store_log.Wal
module Codec = Probsub_store_log.Codec

type event =
  | E_frames of string
  | E_snapshot of { snap : string option; wal : string; next_lsn : int }

(* The LSN the next append would receive, reconstructed purely from
   device bytes — the same arithmetic [Store_log.recover] uses, so the
   ship and apply sides always agree on stream position. *)
let device_next_lsn (dev : Device.t) =
  let snap_lsn =
    match dev.Device.read_snapshot () with
    | None -> -1
    | Some bytes -> (
        match Codec.read_frame bytes ~pos:0 with
        | Codec.Frame { lsn; _ } -> lsn
        | _ -> -1)
  in
  let scanned = Wal.scan (dev.Device.read_wal ()) in
  let wal_last =
    List.fold_left
      (fun acc (e : Wal.entry) -> max acc e.Wal.e_lsn)
      (-1) scanned.Wal.records
  in
  max snap_lsn wal_last + 1

module Ship = struct
  type t = {
    inner : Device.t;
    mutable pending : event list;  (* newest first *)
    mutable s_next : int;
    mutable shipped : int;
  }

  (* A rebase makes every earlier pending event redundant: the standby
     will install the full device image anyway. *)
  let push_rebase t =
    t.s_next <- device_next_lsn t.inner;
    t.pending <-
      [
        E_snapshot
          {
            snap = t.inner.Device.read_snapshot ();
            wal = t.inner.Device.read_wal ();
            next_lsn = t.s_next;
          };
      ]

  let tap inner =
    let t =
      { inner; pending = []; s_next = device_next_lsn inner; shipped = 0 }
    in
    let wrapped =
      {
        Device.read_wal = inner.Device.read_wal;
        append_wal =
          (fun bytes ->
            inner.Device.append_wal bytes;
            t.s_next <- t.s_next + 1;
            t.pending <- E_frames bytes :: t.pending);
        reset_wal =
          (fun bytes ->
            inner.Device.reset_wal bytes;
            push_rebase t);
        read_snapshot = inner.Device.read_snapshot;
        write_snapshot =
          (fun bytes ->
            inner.Device.write_snapshot bytes;
            push_rebase t);
        clear_snapshot =
          (fun () ->
            inner.Device.clear_snapshot ();
            push_rebase t);
      }
    in
    (t, wrapped)

  let drain t =
    let events = List.rev t.pending in
    t.pending <- [];
    (* Adjacent single-frame appends collapse into one chunk so a burst
       of writes ships as one message. *)
    let rec coalesce = function
      | E_frames a :: E_frames b :: rest -> coalesce (E_frames (a ^ b) :: rest)
      | e :: rest -> e :: coalesce rest
      | [] -> []
    in
    List.iter
      (function E_frames _ -> t.shipped <- t.shipped + 1 | E_snapshot _ -> ())
      events;
    coalesce events

  let resume t ~from_lsn =
    let wal = t.inner.Device.read_wal () in
    let scanned = Wal.scan wal in
    let w0 =
      match scanned.Wal.records with
      | e :: _ -> e.Wal.e_lsn
      | [] -> t.s_next
    in
    if from_lsn >= w0 && from_lsn <= t.s_next then
      if from_lsn = t.s_next then []
      else begin
        match
          List.find_opt
            (fun (e : Wal.entry) -> e.Wal.e_lsn = from_lsn)
            scanned.Wal.records
        with
        | Some e ->
            let suffix =
              String.sub wal e.Wal.e_offset (String.length wal - e.Wal.e_offset)
            in
            t.shipped <- t.shipped + (t.s_next - from_lsn);
            [ E_frames suffix ]
        | None ->
            (* LSN inside the range but absent from the WAL can only
               mean a non-contiguous log; fall back to a full rebase. *)
            [
              E_snapshot
                {
                  snap = t.inner.Device.read_snapshot ();
                  wal;
                  next_lsn = t.s_next;
                };
            ]
      end
    else
      [
        E_snapshot
          {
            snap = t.inner.Device.read_snapshot ();
            wal;
            next_lsn = t.s_next;
          };
      ]

  let next_lsn t = t.s_next
  let frames_shipped t = t.shipped
end

module Apply = struct
  type t = {
    dev : Device.t;
    mutable a_next : int;
    mutable applied : int;
  }

  let create ~device =
    (* A standby that itself crashed may hold a torn tail; cut back to
       the longest valid prefix exactly like recovery would, so the
       resume point we report is one the primary can actually serve. *)
    let bytes = device.Device.read_wal () in
    let scanned = Wal.scan bytes in
    if scanned.Wal.stop <> Wal.Clean then
      device.Device.reset_wal
        (String.sub bytes 0 scanned.Wal.valid_bytes);
    { dev = device; a_next = device_next_lsn device; applied = 0 }

  let apply t event =
    match event with
    | E_frames chunk -> (
        let scanned = Wal.scan_from chunk ~pos:0 ~last_lsn:(-1) in
        match scanned.Wal.stop with
        | Wal.Truncated _ | Wal.Corrupt _ ->
            Error "damaged replication chunk"
        | Wal.Clean -> (
            let kept =
              List.filter
                (fun (e : Wal.entry) -> e.Wal.e_lsn >= t.a_next)
                scanned.Wal.records
            in
            match kept with
            | [] -> Ok t.a_next (* entirely stale: idempotent no-op *)
            | first :: _ ->
                if first.Wal.e_lsn <> t.a_next then
                  Error
                    (Printf.sprintf "lsn gap: chunk starts at %d, expected %d"
                       first.Wal.e_lsn t.a_next)
                else begin
                  let off = first.Wal.e_offset in
                  t.dev.Device.append_wal
                    (String.sub chunk off (String.length chunk - off));
                  let last =
                    List.fold_left
                      (fun acc (e : Wal.entry) -> max acc e.Wal.e_lsn)
                      t.a_next kept
                  in
                  t.a_next <- last + 1;
                  t.applied <- t.applied + List.length kept;
                  Ok t.a_next
                end))
    | E_snapshot { snap; wal; next_lsn } ->
        let scanned = Wal.scan wal in
        if scanned.Wal.stop <> Wal.Clean then
          Error "damaged replication snapshot wal"
        else begin
          (match snap with
          | Some s -> t.dev.Device.write_snapshot s
          | None -> t.dev.Device.clear_snapshot ());
          t.dev.Device.reset_wal wal;
          let computed = device_next_lsn t.dev in
          if computed <> next_lsn then
            Error
              (Printf.sprintf
                 "snapshot rebase inconsistent: primary says next %d, bytes \
                  say %d"
                 next_lsn computed)
          else begin
            t.a_next <- next_lsn;
            Ok t.a_next
          end
        end

  let next_lsn t = t.a_next
  let frames_applied t = t.applied
end

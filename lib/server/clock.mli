(** The server layer's only window onto the wall clock. Confining the
    read here keeps the determinism lint's scope argument honest:
    everything else in [lib/server] computes deadlines from values this
    module returned. *)

val now : unit -> float
(** [Unix.gettimeofday], in seconds. *)

val session_id : unit -> int
(** Wall-clock microseconds — strictly increasing across process
    restarts spaced more than a microsecond apart, which is all the
    session-resume protocol needs from it. *)

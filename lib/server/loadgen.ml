open Probsub_core
module Message = Probsub_broker.Message
module Reliable_link = Probsub_broker.Reliable_link
module Event_queue = Probsub_broker.Event_queue
module Audit = Probsub_broker.Audit

(* ------------------------------------------------------------------ *)
(* Client runtime: one subscriber/publisher endpoint speaking the wire
   protocol to its home broker, with the same Reliable_link sender the
   brokers use for its control traffic. Entirely non-blocking: [poll]
   pumps reconnect, writes, reads and retransmissions. *)

type notification = { n_pub : int; n_key : int; n_at : float }

type client = {
  home : int;
  client_id : int;
  session : int;
  sock_dir : string;
  rto : float;
  backoff : Backoff.t;
  sender : (Message.payload, Event_queue.handle) Reliable_link.sender;
  timers : int Event_queue.t;  (* seq whose retransmission timer is due *)
  mutable conn : Conn.t option;
  mutable welcomed : bool;
  mutable next_seq : int;
  mutable reconnect_at : float;
  mutable received : notification list;  (* newest first *)
  mutable epoch_seen : int;  (* highest fence epoch welcomed at; -1 = never *)
  mutable failover_reconnects : int;
}

let connect_client ?(rto = 0.5) ?(max_retries = 10) ~sock_dir ~broker ~client
    ~seed () =
  {
    home = broker;
    client_id = client;
    session = Clock.session_id ();
    sock_dir;
    rto;
    backoff = Backoff.create ~base:0.02 ~cap:0.5 ~seed:(seed + client) ();
    sender = Reliable_link.sender { Reliable_link.rto; max_retries };
    timers = Event_queue.create ();
    conn = None;
    welcomed = false;
    next_seq = 1;
    reconnect_at = 0.0;
    received = [];
    epoch_seen = -1;
    failover_reconnects = 0;
  }

let connected t = t.conn <> None && t.welcomed
let in_flight t = Reliable_link.in_flight t.sender
let notifications t = List.rev t.received
let home t = t.home
let client_id t = t.client_id
let backoff_attempts t = Backoff.attempts t.backoff
let epoch_seen t = max t.epoch_seen 0
let failover_reconnects t = t.failover_reconnects

let drop_conn t =
  (match t.conn with Some c -> Conn.close c | None -> ());
  t.conn <- None;
  t.welcomed <- false;
  let delay =
    match Backoff.next_delay t.backoff with Some d -> d | None -> 1.0
  in
  t.reconnect_at <- Clock.now () +. delay

let try_connect t =
  let path = Broker_server.socket_path ~sock_dir:t.sock_dir t.home in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
      let c = Conn.create fd in
      t.conn <- Some c;
      t.welcomed <- false;
      ignore
        (Conn.send_msg c ~seq:0
           (Wire.Hello
              {
                role = Wire.Client_role t.client_id;
                session = t.session;
                last_seen = 0;
                epoch = max t.epoch_seen 0;
              }))
  | exception Unix.Unix_error (_, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      let delay =
        match Backoff.next_delay t.backoff with Some d -> d | None -> 1.0
      in
      t.reconnect_at <- Clock.now () +. delay

let send_now t ~seq payload =
  match t.conn with
  | Some c when t.welcomed ->
      ignore (Conn.send_msg c ~seq (Wire.Payload payload))
  | Some _ | None -> ()

let send_control t payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Reliable_link.track t.sender ~seq ~item:payload
    ~timer:(Event_queue.push_cancelable t.timers ~time:(Clock.now () +. t.rto) seq);
  send_now t ~seq payload

let subscribe t ~key sub =
  send_control t (Message.Subscribe { key; sub; epoch = 0 })

let unsubscribe t ~key = send_control t (Message.Unsubscribe { key })

let publish t ~id pub =
  match t.conn with
  | Some c when t.welcomed ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      ignore (Conn.send_msg c ~seq (Wire.Payload (Message.Publish { id; pub })));
      true
  | Some _ | None -> false

let handle_client_msg t msg =
  match msg with
  | Wire.Welcome { last_seen = _; session = _; epoch }
    when epoch < t.epoch_seen ->
      (* A stale primary (about to be fenced — our Hello carried the
         higher epoch): hang up and redial, landing on the successor. *)
      drop_conn t
  | Wire.Welcome { last_seen; session = _; epoch } ->
      if t.epoch_seen >= 0 && epoch > t.epoch_seen then
        t.failover_reconnects <- t.failover_reconnects + 1;
      t.epoch_seen <- epoch;
      t.welcomed <- true;
      Backoff.reset t.backoff;
      List.iter
        (fun (seq, payload) ->
          if seq <= last_seen then begin
            match Reliable_link.ack t.sender ~seq with
            | Some h -> ignore (Event_queue.cancel t.timers h)
            | None -> ()
          end
          else send_now t ~seq payload)
        (Reliable_link.unacked t.sender)
  | Wire.Frame_ack { seq } -> (
      match Reliable_link.ack t.sender ~seq with
      | Some h -> ignore (Event_queue.cancel t.timers h)
      | None -> ())
  | Wire.Notify { client = _; key; pub_id } ->
      t.received <-
        { n_pub = pub_id; n_key = key; n_at = Clock.now () } :: t.received
  | Wire.Bye -> drop_conn t
  | Wire.Hello _ | Wire.Payload _ | Wire.Repl_stream _ -> ()

let poll t =
  let now = Clock.now () in
  (match t.conn with
  | None -> if now >= t.reconnect_at then try_connect t
  | Some c -> (
      (match Conn.flush c with `Closed -> drop_conn t | `Ok -> ());
      match t.conn with
      | None -> ()
      | Some c -> (
          match Conn.recv c with
          | `Eof -> drop_conn t
          | `Blocked | `Data _ ->
              let rec drain () =
                match Conn.next c with
                | `Msg (_seq, msg) ->
                    handle_client_msg t msg;
                    if t.conn <> None then drain ()
                | `Pending -> ()
                | `Corrupt _ -> drop_conn t
              in
              drain ())));
  (* Retransmissions due. *)
  let rec fire () =
    match Event_queue.peek_time t.timers with
    | Some time when time <= now -> (
        match Event_queue.pop t.timers with
        | Some (_, seq) ->
            (match Reliable_link.on_timeout t.sender ~seq with
            | Reliable_link.Not_tracked | Reliable_link.Give_up -> ()
            | Reliable_link.Retransmit { item; rto } ->
                send_now t ~seq item;
                Reliable_link.set_timer t.sender ~seq
                  (Event_queue.push_cancelable t.timers ~time:(now +. rto) seq));
            fire ()
        | None -> ())
    | Some _ | None -> ()
  in
  fire ()

let close_client t =
  (match t.conn with
  | Some c ->
      ignore (Conn.send_msg c ~seq:0 Wire.Bye);
      ignore (Conn.flush c);
      Conn.close c
  | None -> ());
  t.conn <- None;
  t.welcomed <- false

(* ------------------------------------------------------------------ *)
(* Closed-loop workload driver. *)

type result = {
  clients : int;
  subscriptions : int;
  pubs : int;
  expected : int;
  delivered : int;
  pubs_per_sec : float;
  p50_ms : float;
  p99_ms : float;
  verdicts_match : bool;
      (* loadgen's delivered verdicts byte-identical to the in-process
         engine's expected verdicts *)
  audit : Audit.report;
}

let poll_all clients = List.iter poll clients

let pump_until ~deadline ~done_ clients =
  let rec go () =
    poll_all clients;
    if done_ () then true
    else if Clock.now () >= deadline then false
    else begin
      (* Tiny sleep keeps the closed loop from busy-spinning. *)
      (try ignore (Unix.select [] [] [] 0.002)
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      go ()
    end
  in
  go ()

let wait_connected ?(timeout = 10.0) clients =
  let deadline = Clock.now () +. timeout in
  pump_until ~deadline
    ~done_:(fun () -> List.for_all connected clients)
    clients

let wait_acked ?(timeout = 10.0) clients =
  let deadline = Clock.now () +. timeout in
  pump_until ~deadline
    ~done_:(fun () -> List.for_all (fun c -> in_flight c = 0) clients)
    clients

(* Canonical verdict serialization: one line per publication, the
   sorted (broker, client, key) recipient triples. Byte-identical
   between the socket transport's deliveries and the in-process
   matching engine iff the real fleet delivered exactly the matches. *)
let verdict_string per_pub =
  String.concat "\n"
    (List.map
       (fun (pub_id, recipients) ->
         Printf.sprintf "pub %d -> %s" pub_id
           (String.concat ","
              (List.map
                 (fun (b, c, k) -> Printf.sprintf "%d:%d:%d" b c k)
                 (List.sort_uniq compare recipients))))
       (List.sort compare per_pub))

let percentile sorted p =
  match Array.length sorted with
  | 0 -> 0.0
  | n ->
      let idx = int_of_float (p *. float_of_int (n - 1)) in
      sorted.(max 0 (min (n - 1) idx))

type workload = {
  w_clients : client list;
  (* client -> its subscriptions: (key, sub) *)
  w_subs : (client * (int * Subscription.t) list) list;
}

(* Install [subs_per_client] random box subscriptions per client, keys
   globally unique, and wait until every Subscribe is acked. *)
let install ~rng ~arity ~subs_per_client clients =
  let next_key = ref 1 in
  let w_subs =
    List.map
      (fun c ->
        let subs =
          List.init subs_per_client (fun _ ->
              let key = !next_key in
              incr next_key;
              let ranges =
                Array.init arity (fun _ ->
                    let lo = Prng.int_in rng ~lo:0 ~hi:70 in
                    let w = Prng.int_in rng ~lo:5 ~hi:30 in
                    (lo, lo + w))
              in
              (key, Subscription.of_bounds (Array.to_list ranges)))
        in
        List.iter (fun (key, sub) -> subscribe c ~key sub) subs;
        (c, subs))
      clients
  in
  { w_clients = clients; w_subs }

let random_publication ~rng ~arity =
  Publication.point (Array.init arity (fun _ -> Prng.int_in rng ~lo:0 ~hi:100))

(* Ground truth for one publication, from the loadgen's own table via
   the in-process matcher. *)
let expected_recipients w pub =
  List.concat_map
    (fun (c, subs) ->
      List.filter_map
        (fun (key, sub) ->
          if Publication.matches sub pub then Some (home c, client_id c, key)
          else None)
        subs)
    w.w_subs
  |> List.sort compare

let delivered_for w pub_id =
  List.concat_map
    (fun (c, _) ->
      List.filter_map
        (fun n ->
          if n.n_pub = pub_id then Some (home c, client_id c, n.n_key)
          else None)
        (notifications c))
    w.w_subs

(* Closed loop: publish one publication at a time from a rotating home
   broker, wait for its full expected recipient set (or the per-pub
   deadline), measure the last-arrival latency. *)
let workload_table w =
  List.map (fun (c, subs) -> (home c, client_id c, subs)) w.w_subs

let drive ?(pub_base = 1_000_000) ~rng ~arity ~pubs ~per_pub_timeout w =
  let audit = Audit.create () in
  let latencies = ref [] in
  let published = ref [] in
  let started = Clock.now () in
  let publishers = Array.of_list w.w_clients in
  if Array.length publishers = 0 then
    invalid_arg "Loadgen.drive: no clients";
  for i = 0 to pubs - 1 do
    let pub_id = pub_base + i in
    let pub = random_publication ~rng ~arity in
    let expected = expected_recipients w pub in
    Audit.expect_recipients audit ~pub_id expected;
    published := (pub_id, expected) :: !published;
    let publisher = publishers.(i mod Array.length publishers) in
    let t0 = Clock.now () in
    let sent = publish publisher ~id:pub_id pub in
    if sent then begin
      let expected_set = List.sort_uniq compare expected in
      let arrived () =
        List.sort_uniq compare (delivered_for w pub_id) = expected_set
      in
      let ok =
        pump_until
          ~deadline:(t0 +. per_pub_timeout)
          ~done_:arrived w.w_clients
      in
      if ok && expected <> [] then
        latencies := (Clock.now () -. t0) *. 1000.0 :: !latencies
    end
  done;
  let elapsed = Clock.now () -. started in
  (* Let straggler duplicates surface before auditing. *)
  let settle = Clock.now () +. 0.2 in
  ignore (pump_until ~deadline:settle ~done_:(fun () -> false) w.w_clients);
  let deliveries =
    List.concat_map
      (fun (pub_id, _) ->
        List.map (fun d -> (pub_id, d)) (delivered_for w pub_id))
      !published
  in
  let report = Audit.report_delivered audit deliveries in
  let expected_verdicts = verdict_string !published in
  let delivered_verdicts =
    verdict_string
      (List.map (fun (pub_id, _) -> (pub_id, delivered_for w pub_id)) !published)
  in
  let sorted =
    let a = Array.of_list !latencies in
    Array.sort compare a;
    a
  in
  {
    clients = List.length w.w_clients;
    subscriptions = List.fold_left (fun n (_, s) -> n + List.length s) 0 w.w_subs;
    pubs;
    expected = report.Audit.expected;
    delivered = report.Audit.delivered;
    pubs_per_sec = (if elapsed > 0.0 then float_of_int pubs /. elapsed else 0.0);
    p50_ms = percentile sorted 0.50;
    p99_ms = percentile sorted 0.99;
    verdicts_match = String.equal expected_verdicts delivered_verdicts;
    audit = report;
  }

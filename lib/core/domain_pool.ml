(* A fixed set of worker domains fed through a mutex+condition task
   queue. All cross-domain state lives behind [lock] (the queue and the
   stop flag) or behind each future's own lock (its result cell); the
   mutex acquire/release pairs give the OCaml memory model the
   happens-before edges that make plain mutable reads on either side
   well-defined. Workers touch shared state exclusively through their
   [pool] parameter, so the domain-discipline lint sees no captured
   mutable free variables in the worker body. *)

type task = unit -> unit

type t = {
  lock : Mutex.t;
  work_available : Condition.t;
  tasks : task Queue.t; (* guarded by [lock] *)
  mutable stopping : bool; (* guarded by [lock] *)
  mutable workers : unit Domain.t array; (* owner domain only *)
  mutable shut : bool; (* owner domain only *)
}

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  future_lock : Mutex.t;
  completed : Condition.t;
  mutable state : 'a state; (* guarded by [future_lock] *)
}

let default_workers () = min 7 (max 0 (Domain.recommended_domain_count () - 1))

(* Pop the next task, blocking while the queue is empty and the pool is
   still live. [None] means the pool is draining and the queue is dry:
   time to exit. Queued tasks are always finished before stopping, so
   [shutdown] never abandons a submitted future. *)
let rec worker_loop pool =
  Mutex.lock pool.lock;
  let rec next () =
    if not (Queue.is_empty pool.tasks) then Some (Queue.pop pool.tasks)
    else if pool.stopping then None
    else begin
      Condition.wait pool.work_available pool.lock;
      next ()
    end
  in
  let job = next () in
  Mutex.unlock pool.lock;
  match job with
  | None -> ()
  | Some task ->
      task ();
      worker_loop pool

let create ?workers () =
  let workers =
    match workers with Some w -> w | None -> default_workers ()
  in
  if workers < 0 then invalid_arg "Domain_pool.create: workers < 0";
  let pool =
    {
      lock = Mutex.create ();
      work_available = Condition.create ();
      tasks = Queue.create ();
      stopping = false;
      workers = [||];
      shut = false;
    }
  in
  pool.workers <-
    Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size pool = Array.length pool.workers

let submit pool f =
  if pool.shut then invalid_arg "Domain_pool.submit: pool is shut down";
  let future =
    {
      future_lock = Mutex.create ();
      completed = Condition.create ();
      state = Pending;
    }
  in
  let task () =
    (* Capture the exception here, on the worker: [await] re-raises it
       on the submitting domain instead of killing the worker. *)
    let outcome = match f () with v -> Done v | exception e -> Failed e in
    Mutex.lock future.future_lock;
    future.state <- outcome;
    Condition.broadcast future.completed;
    Mutex.unlock future.future_lock
  in
  if Array.length pool.workers = 0 then task ()
  else begin
    Mutex.lock pool.lock;
    Queue.push task pool.tasks;
    Condition.signal pool.work_available;
    Mutex.unlock pool.lock
  end;
  future

let await future =
  Mutex.lock future.future_lock;
  let rec wait () =
    match future.state with
    | Pending ->
        Condition.wait future.completed future.future_lock;
        wait ()
    | Done v ->
        Mutex.unlock future.future_lock;
        v
    | Failed e ->
        Mutex.unlock future.future_lock;
        raise e
  in
  wait ()

(* Contiguous-slice fan-out shared by the item-parallel batch paths
   (Engine.check_batch, Shard_store.add_batch). The submitting domain
   computes slice 0 itself while the workers run the rest, so a pool
   of w workers yields w+1-way parallelism; results land at their
   index, so the output is independent of scheduling. *)
let map_slices pool ~n ~f =
  if n < 0 then invalid_arg "Domain_pool.map_slices: n < 0";
  if n = 0 then [||]
  else begin
    let parallelism = min n (Array.length pool.workers + 1) in
    let chunk = (n + parallelism - 1) / parallelism in
    let slice index =
      let lo = index * chunk in
      (lo, max 0 (min chunk (n - lo)))
    in
    let pending =
      List.init (parallelism - 1) (fun i ->
          let lo, b = slice (i + 1) in
          submit pool (fun () -> Array.init b (fun j -> f (lo + j))))
    in
    let lo, b = slice 0 in
    let first = Array.init b (fun j -> f (lo + j)) in
    Array.concat (first :: List.map await pending)
  end

let shutdown pool =
  if not pool.shut then begin
    pool.shut <- true;
    Mutex.lock pool.lock;
    pool.stopping <- true;
    Condition.broadcast pool.work_available;
    Mutex.unlock pool.lock;
    Array.iter Domain.join pool.workers;
    pool.workers <- [||]
  end

let with_pool ?workers f =
  let pool = create ?workers () in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

[@@@problint.hot]
(* Hot-path module: every RSPC trial draws from here; problint enforces
   allocation-free loop bodies. *)

(* Splitmix64 with the 64-bit state stored in an 8-byte buffer instead
   of a boxed [int64] field. Classic ocamlopt unboxes the [Int64]
   locals of [bits64]/[int] once the state load/store goes through
   [Bytes.{get,set}_int64_ne], so a draw performs zero minor-heap
   allocation — the property the RSPC trial loop depends on (the old
   [{ mutable state : int64 }] representation re-boxed the state on
   every step, ~12 words per draw). The output stream is bit-identical
   to the boxed implementation. *)

type t = Bytes.t

let golden_gamma = 0x9E3779B97F4A7C15L

let[@inline] mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create ~seed =
  let t = Bytes.create 8 in
  Bytes.set_int64_ne t 0 seed;
  t

let of_int seed = create ~seed:(Int64.of_int seed)
let copy t = Bytes.sub t 0 8

let[@inline] bits64 t =
  let s = Int64.add (Bytes.get_int64_ne t 0) golden_gamma in
  Bytes.set_int64_ne t 0 s;
  mix s

let split t =
  let seed = bits64 t in
  (* A second mix decorrelates the child stream from the parent's next
     outputs even for adjacent seeds. *)
  create ~seed:(mix seed)

(* Top 62 bits of the next output as a non-negative native int. *)
let[@inline] top62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

(* Rejection sampling over the top bits keeps the draw exactly uniform
   for any bound, not just powers of two. The rejection loop is a local
   [ref] (compiled to a mutable variable) rather than a recursive
   closure so the function stays allocation-free. *)
let[@inline] int t n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  if n land (n - 1) = 0 then top62 t land (n - 1)
  else begin
    let bucket = max_int / n * n in
    let v = ref (top62 t) in
    while !v >= bucket do
      v := top62 t
    done;
    !v mod n
  end

let[@inline] int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Prng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let[@inline] in_interval t r = int_in t ~lo:(Interval.lo r) ~hi:(Interval.hi r)

let float t =
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits *. (1.0 /. 9007199254740992.0)

let bool t = Int64.compare (Int64.logand (bits64 t) 1L) 0L <> 0

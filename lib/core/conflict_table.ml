type side = Low | High
type cell = Undefined | Defined of { side : side; bound : int }

(* Flat layout: instead of a [cell array array] of boxed variants, the
   table keeps one byte of definedness and one int of bound per cell,
   both indexed by [row * 2m + column]. Build allocates three flat
   buffers total; the variant view is reconstructed on demand by
   {!cell}. Column 2j = Low, 2j+1 = High. *)
type t = {
  s : Subscription.t;
  subs : Subscription.t array;
  defined : Bytes.t; (* k * 2m definedness flags *)
  bounds : int array; (* k * 2m predicate bounds *)
  counts : int array; (* t_i per row *)
}

let column ~attr ~side = (2 * attr) + match side with Low -> 0 | High -> 1

let[@inline] index ~m ~row ~col = (row * 2 * m) + col

let[@problint.allow
     unsafe
       "index = row*2m + col with row < k and col < 2m by construction, \
        and [defined] is allocated with exactly k*2m bytes in [build]"] fill_row
    ~m ~defined ~bounds ~counts ~row ~slo ~shi ~rlo ~rhi ~attr =
  (* s ∧ (x_j < lo_i^j) is satisfiable iff s reaches below si's lower
     bound on attribute j. *)
  if slo < rlo then begin
    let c = index ~m ~row ~col:(2 * attr) in
    Bytes.unsafe_set defined c '\001';
    bounds.(c) <- rlo;
    counts.(row) <- counts.(row) + 1
  end;
  if shi > rhi then begin
    let c = index ~m ~row ~col:((2 * attr) + 1) in
    Bytes.unsafe_set defined c '\001';
    bounds.(c) <- rhi;
    counts.(row) <- counts.(row) + 1
  end

let build ~s subs =
  let m = Subscription.arity s in
  Array.iter
    (fun si ->
      if Subscription.arity si <> m then
        invalid_arg "Conflict_table.build: arity mismatch")
    subs;
  let k = Array.length subs in
  let defined = Bytes.make (k * 2 * m) '\000' in
  let bounds = Array.make (k * 2 * m) 0 in
  let counts = Array.make k 0 in
  for i = 0 to k - 1 do
    let si = subs.(i) in
    for j = 0 to m - 1 do
      let rs = Subscription.range s j and ri = Subscription.range si j in
      fill_row ~m ~defined ~bounds ~counts ~row:i ~slo:(Interval.lo rs)
        ~shi:(Interval.hi rs) ~rlo:(Interval.lo ri) ~rhi:(Interval.hi ri)
        ~attr:j
    done
  done;
  { s; subs; defined; bounds; counts }

let build_flat ~s ~subs packed =
  let m = Subscription.arity s in
  let k = Array.length subs in
  if Flat.k packed <> k || Flat.m packed <> m then
    invalid_arg "Conflict_table.build_flat: packed set does not match subs";
  let defined = Bytes.make (k * 2 * m) '\000' in
  let bounds = Array.make (k * 2 * m) 0 in
  let counts = Array.make k 0 in
  for j = 0 to m - 1 do
    let rs = Subscription.range s j in
    let slo = Interval.lo rs and shi = Interval.hi rs in
    for i = 0 to k - 1 do
      fill_row ~m ~defined ~bounds ~counts ~row:i ~slo ~shi
        ~rlo:(Flat.lo packed ~row:i ~attr:j) ~rhi:(Flat.hi packed ~row:i ~attr:j)
        ~attr:j
    done
  done;
  { s; subs; defined; bounds; counts }

let s t = t.s
let subs t = t.subs
let rows t = Array.length t.subs
let arity t = Subscription.arity t.s

let cell t ~row ~attr ~side =
  if row < 0 || row >= rows t then invalid_arg "Conflict_table.cell: row";
  if attr < 0 || attr >= arity t then invalid_arg "Conflict_table.cell: attr";
  let c = index ~m:(arity t) ~row ~col:(column ~attr ~side) in
  if Bytes.get t.defined c = '\000' then Undefined
  else Defined { side; bound = t.bounds.(c) }

let defined_count t ~row =
  if row < 0 || row >= rows t then
    invalid_arg "Conflict_table.defined_count: row";
  t.counts.(row)

let row_all_undefined t ~row = defined_count t ~row = 0
let row_all_defined t ~row = defined_count t ~row = 2 * arity t

let strip t ~row ~attr ~side =
  match cell t ~row ~attr ~side with
  | Undefined -> None
  | Defined { side; bound } -> (
      let rs = Subscription.range t.s attr in
      match side with
      | Low ->
          (* points of s with x < bound: [s.lo, min (s.hi, bound - 1)] *)
          Interval.make_opt ~lo:(Interval.lo rs)
            ~hi:(min (Interval.hi rs) (bound - 1))
      | High ->
          Interval.make_opt
            ~lo:(max (Interval.lo rs) (bound + 1))
            ~hi:(Interval.hi rs))

let cells_conflict t ~row1 ~attr1 ~side1 ~row2 ~attr2 ~side2 =
  if row1 = row2 || attr1 <> attr2 then false
  else
    match
      (strip t ~row:row1 ~attr:attr1 ~side:side1,
       strip t ~row:row2 ~attr:attr2 ~side:side2)
    with
    | Some a, Some b -> not (Interval.intersects a b)
    | None, _ | _, None -> false

let fold_defined t ~row ~init ~f =
  if row < 0 || row >= rows t then
    invalid_arg "Conflict_table.fold_defined: row";
  let m = arity t in
  let acc = ref init in
  for attr = 0 to m - 1 do
    let clo = index ~m ~row ~col:(2 * attr) in
    if Bytes.get t.defined clo <> '\000' then
      acc := f !acc ~attr ~side:Low ~bound:t.bounds.(clo);
    let chi = clo + 1 in
    if Bytes.get t.defined chi <> '\000' then
      acc := f !acc ~attr ~side:High ~bound:t.bounds.(chi)
  done;
  !acc

let pp ppf t =
  let m = arity t in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "s = %a@," Subscription.pp t.s;
  for i = 0 to rows t - 1 do
    Format.fprintf ppf "s%d:" (i + 1);
    for j = 0 to m - 1 do
      (match cell t ~row:i ~attr:j ~side:Low with
      | Undefined -> Format.fprintf ppf " x%d:undef" j
      | Defined { bound; _ } -> Format.fprintf ppf " x%d<%d" j bound);
      match cell t ~row:i ~attr:j ~side:High with
      | Undefined -> Format.fprintf ppf " x%d:undef" j
      | Defined { bound; _ } -> Format.fprintf ppf " x%d>%d" j bound
    done;
    if i < rows t - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"

[@@@problint.hot]
(* Hot-path module: the RSPC trial loop lives here. problint permits
   [Array.unsafe_*] (every index is proved in range by the arity checks
   at entry) and enforces allocation-free for/while bodies. *)

(* Structure-of-arrays subscription kernels.

   A packed set stores all bounds of k subscriptions in ONE int array:
   the lo plane occupies [0, k*m) and the hi plane [k*m, 2*k*m), both
   in row-major order (bounds.(i*m + j) is subscription i's lower bound
   on attribute j). The escape test of an RSPC trial then reads
   consecutive machine ints instead of chasing
   array -> Subscription.t -> Interval.t pointers, and a trial loop
   that fills a preallocated point buffer allocates nothing. *)

type t = { k : int; m : int; bounds : int array }

type box = { bm : int; blo : int array; bhi : int array }

let k t = t.k
let m t = t.m
let box_arity b = b.bm

let pack ~m subs =
  if m < 1 then invalid_arg "Flat.pack: arity < 1";
  let k = Array.length subs in
  let bounds = Array.make (2 * k * m) 0 in
  let km = k * m in
  for i = 0 to k - 1 do
    let si = subs.(i) in
    if Subscription.arity si <> m then invalid_arg "Flat.pack: arity mismatch";
    let base = i * m in
    for j = 0 to m - 1 do
      let r = Subscription.range si j in
      bounds.(base + j) <- Interval.lo r;
      bounds.(km + base + j) <- Interval.hi r
    done
  done;
  { k; m; bounds }

let box_of_sub s =
  let m = Subscription.arity s in
  let blo = Array.make m 0 and bhi = Array.make m 0 in
  for j = 0 to m - 1 do
    let r = Subscription.range s j in
    blo.(j) <- Interval.lo r;
    bhi.(j) <- Interval.hi r
  done;
  { bm = m; blo; bhi }

let lo t ~row ~attr =
  if row < 0 || row >= t.k then invalid_arg "Flat.lo: row";
  if attr < 0 || attr >= t.m then invalid_arg "Flat.lo: attr";
  t.bounds.((row * t.m) + attr)

let hi t ~row ~attr =
  if row < 0 || row >= t.k then invalid_arg "Flat.hi: row";
  if attr < 0 || attr >= t.m then invalid_arg "Flat.hi: attr";
  t.bounds.((t.k * t.m) + (row * t.m) + attr)

let row_sub t row =
  if row < 0 || row >= t.k then invalid_arg "Flat.row_sub: row";
  let base = row * t.m and km = t.k * t.m in
  Subscription.make
    (Array.init t.m (fun j ->
         Interval.make ~lo:t.bounds.(base + j) ~hi:t.bounds.(km + base + j)))

let gather t rows =
  let k' = Array.length rows in
  let m = t.m in
  let km = t.k * m and km' = k' * m in
  let bounds = Array.make (2 * km') 0 in
  for i = 0 to k' - 1 do
    let row = rows.(i) in
    if row < 0 || row >= t.k then invalid_arg "Flat.gather: row";
    Array.blit t.bounds (row * m) bounds (i * m) m;
    Array.blit t.bounds (km + (row * m)) bounds (km' + (i * m)) m
  done;
  { k = k'; m; bounds }

(* ------------------------------------------------------------------ *)
(* Allocation-free trial kernels *)

let random_point_into ~rng box p =
  if Array.length p <> box.bm then
    invalid_arg "Flat.random_point_into: arity mismatch";
  for j = 0 to box.bm - 1 do
    Array.unsafe_set p j
      (Prng.int_in rng ~lo:(Array.unsafe_get box.blo j)
         ~hi:(Array.unsafe_get box.bhi j))
  done

(* Draw [n] consecutive points into the flat buffer [buf] (point [t]
   occupies [t*m .. t*m + m)). Draw order is ascending [t] then
   ascending attribute, so the consumed Prng stream is bit-identical to
   [n] successive [random_point_into] calls — the deterministic
   block-parallel RSPC relies on this to reproduce the sequential
   trial stream exactly. *)
let random_points_into ~rng box buf ~n =
  if n < 0 then invalid_arg "Flat.random_points_into: negative count";
  if Array.length buf < n * box.bm then
    invalid_arg "Flat.random_points_into: buffer too small";
  let m = box.bm in
  for t = 0 to n - 1 do
    let base = t * m in
    for j = 0 to m - 1 do
      Array.unsafe_set buf (base + j)
        (Prng.int_in rng ~lo:(Array.unsafe_get box.blo j)
           ~hi:(Array.unsafe_get box.bhi j))
    done
  done

(* The [int array] annotations matter: without them the function
   let-generalizes to ['a array] and every [<=] compiles to a
   [caml_lessequal] call — an order of magnitude slower than the
   unboxed integer compare. *)
let[@inline] covers_row_at (bounds : int array) ~km ~base ~m
    (buf : int array) ~off =
  let j = ref 0 in
  let inside = ref true in
  while !inside && !j < m do
    let v = Array.unsafe_get buf (off + !j) in
    inside :=
      Array.unsafe_get bounds (base + !j) <= v
      && v <= Array.unsafe_get bounds (km + base + !j);
    incr j
  done;
  !inside

let[@inline] covers_row_unsafe (bounds : int array) ~km ~base ~m
    (p : int array) =
  covers_row_at bounds ~km ~base ~m p ~off:0

let covers_row t ~row p =
  if row < 0 || row >= t.k then invalid_arg "Flat.covers_row: row";
  if Array.length p <> t.m then invalid_arg "Flat.covers_row: arity mismatch";
  covers_row_unsafe t.bounds ~km:(t.k * t.m) ~base:(row * t.m) ~m:t.m p

let escapes t p =
  if Array.length p <> t.m then invalid_arg "Flat.escapes: arity mismatch";
  let bounds = t.bounds and m = t.m in
  let km = t.k * m in
  let i = ref 0 in
  let escaped = ref true in
  while !escaped && !i < t.k do
    if covers_row_unsafe bounds ~km ~base:(!i * m) ~m p then escaped := false;
    incr i
  done;
  !escaped

(* [escapes] on the point stored at slot [pos] of a packed point
   buffer — the block-parallel scan kernel; agrees with [escapes] on
   the copied-out point and allocates nothing. *)
let escapes_at t buf ~pos =
  let m = t.m in
  if pos < 0 || ((pos + 1) * m) > Array.length buf then
    invalid_arg "Flat.escapes_at: slot out of range";
  let bounds = t.bounds in
  let km = t.k * m in
  let off = pos * m in
  let i = ref 0 in
  let escaped = ref true in
  while !escaped && !i < t.k do
    if covers_row_at bounds ~km ~base:(!i * m) ~m buf ~off then
      escaped := false;
    incr i
  done;
  !escaped

let iter_superset_rows t box ~f =
  if box.bm <> t.m then
    invalid_arg "Flat.iter_superset_rows: arity mismatch";
  let bounds = t.bounds and m = t.m in
  let km = t.k * m in
  for row = 0 to t.k - 1 do
    let base = row * m in
    let j = ref 0 in
    let covers = ref true in
    while !covers && !j < m do
      covers :=
        Array.unsafe_get bounds (base + !j) <= Array.unsafe_get box.blo !j
        && Array.unsafe_get box.bhi !j <= Array.unsafe_get bounds (km + base + !j);
      incr j
    done;
    if !covers then f row
  done

(* ------------------------------------------------------------------ *)
(* Candidate pruning: rows intersecting a query box *)

let default_crossover = 256

let intersecting_scan t box =
  let bounds = t.bounds and m = t.m in
  let km = t.k * m in
  let keep = Array.make t.k 0 in
  let n = ref 0 in
  for row = 0 to t.k - 1 do
    let base = row * m in
    let j = ref 0 in
    let meets = ref true in
    while !meets && !j < m do
      (* [lo_i, hi_i] meets [blo_j, bhi_j] iff lo_i <= bhi_j && blo_j <= hi_i *)
      meets :=
        Array.unsafe_get bounds (base + !j) <= Array.unsafe_get box.bhi !j
        && Array.unsafe_get box.blo !j <= Array.unsafe_get bounds (km + base + !j);
      incr j
    done;
    if !meets then begin
      keep.(!n) <- row;
      incr n
    end
  done;
  Array.sub keep 0 !n

(* Per-attribute filtering through stabbing. A row interval [a, b]
   intersects s's range [lo, hi] in exactly one of two disjoint ways:
   it contains [lo] (a <= lo <= b), or it starts strictly inside
   (lo < a <= hi). The first set is a stabbing query at [lo] on an
   {!Interval_index} over the attribute's intervals; the second is a
   binary-searched slice of the rows sorted by lower bound. Each
   intersecting row is counted exactly once per attribute; rows
   counted on all m attributes intersect the box. *)
let[@problint.allow
     hot_alloc
       "index-build path, not the trial loop: runs once per query above \
        the crossover, where building the stabbing structures dominates \
        the allocation it costs"] intersecting_indexed t box =
  let m = t.m and k = t.k in
  let bounds = t.bounds in
  let km = k * m in
  let count = Array.make k 0 in
  for j = 0 to m - 1 do
    let slo = box.blo.(j) and shi = box.bhi.(j) in
    let entries = ref [] in
    for row = k - 1 downto 0 do
      entries :=
        ( row,
          Interval.make ~lo:bounds.((row * m) + j)
            ~hi:bounds.(km + (row * m) + j) )
        :: !entries
    done;
    let index = Interval_index.build !entries in
    Interval_index.iter_stab index slo ~f:(fun row ->
        count.(row) <- count.(row) + 1);
    (* Rows whose lower bound lies in (slo, shi]. *)
    let by_lo = Array.init k (fun row -> bounds.((row * m) + j)) in
    let order = Array.init k (fun row -> row) in
    Array.sort (fun a b -> Int.compare by_lo.(a) by_lo.(b)) order;
    (* First position with lo > slo. *)
    let lower_bound target =
      let a = ref 0 and b = ref k in
      while !a < !b do
        let mid = (!a + !b) / 2 in
        if by_lo.(order.(mid)) > target then b := mid else a := mid + 1
      done;
      !a
    in
    let start = lower_bound slo and stop = lower_bound shi in
    for pos = start to stop - 1 do
      let row = order.(pos) in
      count.(row) <- count.(row) + 1
    done
  done;
  let keep = Array.make k 0 in
  let n = ref 0 in
  for row = 0 to k - 1 do
    if count.(row) = m then begin
      keep.(!n) <- row;
      incr n
    end
  done;
  Array.sub keep 0 !n

let intersecting_rows ?(crossover = default_crossover) t box =
  if box.bm <> t.m then invalid_arg "Flat.intersecting_rows: arity mismatch";
  if t.k < crossover then intersecting_scan t box
  else intersecting_indexed t box

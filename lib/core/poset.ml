(* Covering DAG. Each node keeps its direct coverers (preds) and
   directly covered nodes (succs). Equal subscriptions chain oldest
   first, which keeps the graph acyclic. After removals the edge set
   can contain a few transitively implied edges; roots and coverage
   queries stay exact. *)

type id = int

type node = {
  sub : Subscription.t;
  mutable preds : id list;
  mutable succs : id list;
}

type t = {
  arity : int;
  nodes : (id, node) Hashtbl.t;
  mutable next : id;
}

let create ~arity () =
  if arity < 1 then invalid_arg "Poset.create: arity < 1";
  { arity; nodes = Hashtbl.create 64; next = 0 }

let arity t = t.arity
let size t = Hashtbl.length t.nodes

let node t id =
  match Hashtbl.find_opt t.nodes id with
  | Some n -> n
  | None -> raise Not_found

let find t id = (node t id).sub

let sorted_ids t =
  (Hashtbl.fold (fun id _ acc -> id :: acc) t.nodes []
  [@problint.allow
    determinism "order-insensitive: key collection is sorted immediately"])
  |> List.sort Int.compare

let root_ids t =
  List.filter (fun id -> (node t id).preds = []) (sorted_ids t)

let roots t = List.map (fun id -> (id, (node t id).sub)) (root_ids t)
let is_root t id = (node t id).preds = []

let iter t ~f = List.iter (fun id -> f id (node t id).sub) (sorted_ids t)

(* All nodes covering [s], found by descending from the roots: a node
   whose subscription does not cover [s] cannot have a descendant that
   does (descendants are subsets). *)
let coverers t s =
  let seen = Hashtbl.create 16 in
  let hits = ref [] in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      let n = node t id in
      if Subscription.covers_sub n.sub s then begin
        hits := id :: !hits;
        List.iter visit n.succs
      end
    end
  in
  List.iter visit (root_ids t);
  !hits

(* Immediate coverers: coverers none of whose direct children also
   cover [s]. *)
let immediate_coverers t s =
  let all = coverers t s in
  List.filter
    (fun id ->
      not
        (List.exists
           (fun child -> List.mem child all)
           (node t id).succs))
    all

(* Maximal nodes strictly covered by [s]: descend while the node
   intersects [s]; stop descending at the first covered node on each
   branch (its descendants are covered through it anyway). *)
let immediate_covered t s =
  let seen = Hashtbl.create 16 in
  let hits = ref [] in
  let rec visit id =
    if not (Hashtbl.mem seen id) then begin
      Hashtbl.replace seen id ();
      let n = node t id in
      if Subscription.covers_sub s n.sub && not (Subscription.equal s n.sub)
      then hits := id :: !hits
      else if Subscription.intersects s n.sub then List.iter visit n.succs
    end
  in
  List.iter visit (root_ids t);
  (* Keep only covering-maximal hits: drop any hit reachable from
     another hit via a strictly-covering ancestor also in the set. *)
  let hit_list = !hits in
  List.filter
    (fun id ->
      not
        (List.exists
           (fun other ->
             other <> id
             && Subscription.covers_sub (node t other).sub (node t id).sub
             && not (Subscription.equal (node t other).sub (node t id).sub))
           hit_list))
    hit_list

let link t ~parent ~child =
  let p = node t parent and c = node t child in
  if not (List.mem child p.succs) then p.succs <- child :: p.succs;
  if not (List.mem parent c.preds) then c.preds <- parent :: c.preds

let unlink t ~parent ~child =
  let p = node t parent and c = node t child in
  p.succs <- List.filter (fun x -> x <> child) p.succs;
  c.preds <- List.filter (fun x -> x <> parent) c.preds

let add t s =
  if Subscription.arity s <> t.arity then
    invalid_arg "Poset.add: arity mismatch";
  let id = t.next in
  t.next <- id + 1;
  let parents = immediate_coverers t s in
  let children = immediate_covered t s in
  Hashtbl.replace t.nodes id { sub = s; preds = []; succs = [] };
  (* The new node slots between its parents and children; direct
     parent->child edges become transitive and are removed. *)
  List.iter
    (fun parent ->
      List.iter
        (fun child ->
          if List.mem child (node t parent).succs then
            unlink t ~parent ~child)
        children)
    parents;
  List.iter (fun parent -> link t ~parent ~child:id) parents;
  List.iter (fun child -> link t ~parent:id ~child) children;
  id

let remove t id =
  let n = node t id in
  (* Snapshot before unlinking: unlink rewrites these lists. *)
  let parents = n.preds and children = n.succs in
  List.iter (fun parent -> unlink t ~parent ~child:id) parents;
  List.iter (fun child -> unlink t ~parent:id ~child) children;
  (* Reconnect around the hole; transitivity of covering guarantees
     the edges are valid. *)
  List.iter
    (fun parent -> List.iter (fun child -> link t ~parent ~child) children)
    parents;
  Hashtbl.remove t.nodes id

let covered_by_some_root t s =
  (* If anything covers s, the root above it does too. *)
  List.exists (fun id -> Subscription.covers_sub (node t id).sub s) (root_ids t)

let covers t a b =
  ignore (node t b);
  let seen = Hashtbl.create 16 in
  let rec reach id =
    id = b
    || (not (Hashtbl.mem seen id))
       && begin
            Hashtbl.replace seen id ();
            List.exists reach (node t id).succs
          end
  in
  reach a

let[@problint.allow
     determinism
       "test-only invariant check: accumulates a boolean AND over all \
        nodes, so visit order cannot change the verdict"] validate t =
  let ok = ref true in
  Hashtbl.iter
    (fun id n ->
      if List.mem id n.preds || List.mem id n.succs then ok := false;
      List.iter
        (fun child ->
          let c = node t child in
          if not (Subscription.covers_sub n.sub c.sub) then ok := false;
          if not (List.mem id c.preds) then ok := false)
        n.succs;
      List.iter
        (fun parent ->
          let p = node t parent in
          if not (Subscription.covers_sub p.sub n.sub) then ok := false;
          if not (List.mem id p.succs) then ok := false)
        n.preds)
    t.nodes;
  !ok

let recommended_domains () =
  min 8 (max 1 (Domain.recommended_domain_count () - 1))

(* Don't fan out trivially small budgets: queueing tasks (let alone
   spawning domains) costs more than a few hundred O(m·k) membership
   tests. *)
let min_parallel_budget = 2048

(* Polling shared atomics on every trial makes each iteration a
   cross-domain cache-line read; once per [poll_mask + 1] trials keeps
   the loop local while still stopping promptly after a witness. *)
let poll_mask = 63

(* Trials per deterministic block (see [run_packed]): large enough that
   a k=1000 slice amortises the task hand-off, small enough that a
   witness in the first block does not waste much drawing. *)
let block_size = 512

(* Slice arithmetic, exposed so the regression tests can pin the
   chunk-boundary cases: budgets are non-negative, bounded by the
   chunk, and sum to exactly [d] over [0 .. domains-1]. [run_packed]
   applies it per block, [Engine.check_batch] per item range. *)
let chunk_size ~d ~domains = (d + domains - 1) / domains

let budget_for ~d ~domains ~index =
  let chunk = chunk_size ~d ~domains in
  min chunk (max 0 (d - (index * chunk)))

(* The split-stream per-domain trial loop of the original
   fan-out-by-budget runner, kept verbatim: the allocation benchmark
   (bench/main.exe kernels) asserts it runs at 0 words/trial, and it
   remains the simplest picture of "independent trials on an
   independent stream". The production path below no longer uses it —
   [run_packed] reproduces the *sequential* stream instead so that
   verdict, witness and iteration count are bit-identical to
   {!Rspc.run_packed} — but its 0-allocation guarantee carries over:
   the block kernels ([Flat.random_points_into]/[Flat.escapes_at]) are
   the same loop bodies over an offset buffer. *)
let trials_into ~rng ~sbox ~packed ~(found : int array option Atomic.t)
    ~budget p =
  let performed = ref 0 in
  (try
     for i = 0 to budget - 1 do
       if i land poll_mask = 0 && Atomic.get found <> None then raise Exit;
       incr performed;
       Flat.random_point_into ~rng sbox p;
       if Flat.escapes packed p then begin
         (* First writer wins; losers keep their witness to
            themselves (any witness proves non-coverage). *)
         ignore (Atomic.compare_and_set found None (Some (Array.copy p)));
         raise Exit
       end
     done
   with Exit -> ());
  !performed

(* Publish [candidate] as the new minimum of [best] (CAS loop; lock
   free, called at most once per slice). *)
let rec publish_min best candidate =
  let current = Atomic.get best in
  if candidate < current && not (Atomic.compare_and_set best current candidate)
  then publish_min best candidate

(* Scan slots [lo, hi) of the shared point buffer for the first
   escaping point, publishing its index to [best]. A slice may stop as
   soon as [best <= i]: every slot it could still test has a larger
   index, so it cannot improve the minimum. The poll runs every
   [poll_mask + 1] slots to keep cross-domain reads off the inner
   loop. *)
let scan_slice ~packed ~(points : int array) ~lo ~hi ~(best : int Atomic.t) =
  let i = ref lo in
  let live = ref true in
  while !live && !i < hi do
    if !i land poll_mask = 0 && Atomic.get best <= !i then live := false
    else begin
      if Flat.escapes_at packed points ~pos:!i then begin
        publish_min best !i;
        live := false
      end;
      incr i
    end
  done

(* The deterministic block engine. Each round draws the next [<=
   block_size] trials of the *sequential* stream into a shared buffer
   (serial, cheap: m draws per trial), then fans the O(k·m) escape
   tests out over the pool; the minimum escaping slot across all
   slices is exactly the trial at which {!Rspc.run_packed} would have
   stopped, so outcome, witness point and iteration count are all
   bit-identical to the sequential runner. The only observable
   difference is Prng consumption: the block is drawn before it is
   tested, so up to [block_size - 1] trials beyond the witness have
   already consumed draws — callers that interleave other draws on the
   same generator (none do; the engine derives a fresh stream per
   check) would see the divergence. *)
let run_blocks pool ~parallelism ~rng ~d ~sbox packed =
  let m = Flat.m packed in
  let points = Array.make (block_size * m) 0 in
  let best = Atomic.make max_int in
  let result = ref None in
  let start = ref 0 in
  while !result = None && !start < d do
    let b = min block_size (d - !start) in
    Flat.random_points_into ~rng sbox points ~n:b;
    Atomic.set best max_int;
    let slice index =
      let lo = index * chunk_size ~d:b ~domains:parallelism in
      (lo, lo + budget_for ~d:b ~domains:parallelism ~index)
    in
    let pending =
      List.init (parallelism - 1) (fun i ->
          let lo, hi = slice (i + 1) in
          Domain_pool.submit pool (fun () ->
              scan_slice ~packed ~points ~lo ~hi ~best))
    in
    let lo, hi = slice 0 in
    scan_slice ~packed ~points ~lo ~hi ~best;
    List.iter Domain_pool.await pending;
    let w = Atomic.get best in
    if w < max_int then
      result :=
        Some
          {
            Rspc.outcome = Rspc.Not_covered (Array.sub points (w * m) m);
            iterations = !start + w + 1;
          }
    else start := !start + b
  done;
  match !result with
  | Some r -> r
  | None -> { Rspc.outcome = Rspc.Probably_covered; iterations = d }

let run_packed ?pool ?(domains = recommended_domains ()) ~rng ~d ~sbox packed
    =
  if domains < 1 then invalid_arg "Rspc_parallel.run_packed: domains < 1";
  if d < 0 then
    invalid_arg "Rspc_parallel.run_packed: negative trial budget";
  if Flat.m packed <> Flat.box_arity sbox then
    invalid_arg "Rspc_parallel.run_packed: arity mismatch";
  let parallelism =
    match pool with Some p -> Domain_pool.size p + 1 | None -> domains
  in
  if parallelism = 1 || d < min_parallel_budget then
    Rspc.run_packed ~rng ~d ~sbox packed
  else
    match pool with
    | Some pool -> run_blocks pool ~parallelism ~rng ~d ~sbox packed
    | None ->
        (* No pool supplied: pay a per-call spawn, exactly the cost the
           bench contrasts with pool reuse. *)
        Domain_pool.with_pool ~workers:(parallelism - 1) (fun pool ->
            run_blocks pool ~parallelism ~rng ~d ~sbox packed)

let run ?pool ?domains ~rng ~d ~s subs =
  (match domains with
  | Some domains when domains < 1 ->
      invalid_arg "Rspc_parallel.run: domains < 1"
  | Some _ | None -> ());
  if d < 0 then invalid_arg "Rspc_parallel.run: negative trial budget";
  let m = Subscription.arity s in
  Array.iter
    (fun si ->
      if Subscription.arity si <> m then
        invalid_arg "Rspc_parallel.run: arity mismatch")
    subs;
  run_packed ?pool ?domains ~rng ~d ~sbox:(Flat.box_of_sub s)
    (Flat.pack ~m subs)

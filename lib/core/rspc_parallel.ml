let recommended_domains () =
  min 8 (max 1 (Domain.recommended_domain_count () - 1))

(* Don't spin up domains for trivially small budgets: spawning costs
   more than a few hundred O(m·k) membership tests. *)
let min_parallel_budget = 2048

(* Polling the shared stop flag on every trial makes each iteration a
   cross-domain cache-line read; once per [poll_mask + 1] trials keeps
   the loop local while still stopping promptly after a witness. *)
let poll_mask = 63

(* Budget arithmetic, exposed so the regression tests can pin the
   chunk-boundary cases: budgets are non-negative, bounded by the
   chunk, and sum to exactly [d] over [0 .. domains-1]. *)
let chunk_size ~d ~domains = (d + domains - 1) / domains

let budget_for ~d ~domains ~index =
  let chunk = chunk_size ~d ~domains in
  min chunk (max 0 (d - (index * chunk)))

(* The per-domain trial loop, shared verbatim between [run]'s workers
   and the allocation benchmark (bench/main.exe kernels asserts it
   runs at 0 words/trial). Draws up to [budget] points into the
   caller's scratch buffer [p]; publishes the first escaping point to
   [found] (first writer wins) and stops; polls [found] every
   [poll_mask + 1] trials to stop promptly once any other domain has
   won. Returns the number of trials actually performed. *)
let trials_into ~rng ~sbox ~packed ~(found : int array option Atomic.t)
    ~budget p =
  let performed = ref 0 in
  (try
     for i = 0 to budget - 1 do
       if i land poll_mask = 0 && Atomic.get found <> None then raise Exit;
       incr performed;
       Flat.random_point_into ~rng sbox p;
       if Flat.escapes packed p then begin
         (* First writer wins; losers keep their witness to
            themselves (any witness proves non-coverage). *)
         ignore (Atomic.compare_and_set found None (Some (Array.copy p)));
         raise Exit
       end
     done
   with Exit -> ());
  !performed

let run ?(domains = recommended_domains ()) ~rng ~d ~s subs =
  if domains < 1 then invalid_arg "Rspc_parallel.run: domains < 1";
  if d < 0 then invalid_arg "Rspc_parallel.run: negative trial budget";
  if domains = 1 || d < min_parallel_budget then Rspc.run ~rng ~d ~s subs
  else begin
    let m = Subscription.arity s in
    Array.iter
      (fun si ->
        if Subscription.arity si <> m then
          invalid_arg "Rspc_parallel.run: arity mismatch")
      subs;
    (* Packed once; the int-array planes are immutable after packing,
       so all domains share them read-only. *)
    let packed = Flat.pack ~m subs in
    let sbox = Flat.box_of_sub s in
    let found : int array option Atomic.t = Atomic.make None in
    let total_iterations = Atomic.make 0 in
    let rngs = Array.init domains (fun _ -> Prng.split rng) in
    let worker index () =
      let rng = rngs.(index) in
      let budget = budget_for ~d ~domains ~index in
      (* Per-domain scratch point: no sharing, no per-trial allocation. *)
      let p = Array.make m 0 in
      let performed = trials_into ~rng ~sbox ~packed ~found ~budget p in
      ignore (Atomic.fetch_and_add total_iterations performed)
    in
    let spawned =
      Array.init (domains - 1) (fun i -> Domain.spawn (worker (i + 1)))
    in
    worker 0 ();
    Array.iter Domain.join spawned;
    match Atomic.get found with
    | Some p ->
        { Rspc.outcome = Rspc.Not_covered p;
          iterations = Atomic.get total_iterations }
    | None ->
        { Rspc.outcome = Rspc.Probably_covered;
          iterations = Atomic.get total_iterations }
  end

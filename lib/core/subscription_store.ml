type id = int

type policy =
  | No_coverage
  | Pairwise_policy
  | Group_policy of Engine.config

type placement = Active | Covered of id list

type entry = {
  sub : Subscription.t;
  mutable state : placement;
  mutable expires_at : float; (* infinity = no lease *)
}

type stats = {
  added : int;
  dropped_covered : int;
  removed : int;
  promoted : int;
  active_scans : int;
  covered_scans : int;
  index_hits : int;
}

(* The store's durable mutation language: each constructor records the
   *effect* of one mutating call (placements already classified,
   orphans already re-checked), so replaying an op never re-runs the
   probabilistic engine — recovery is deterministic and cheap, and the
   generator stream is reproduced by counting the splits the live
   classifications consumed. *)
type op =
  | Op_add of {
      id : id;
      sub : Subscription.t;
      placement : placement;
      expires_at : float;
    }
  | Op_remove of { id : id; reclassified : (id * placement) list }
  | Op_renew of { id : id; expires_at : float }
  | Op_expire of {
      now : float;
      expired : id list;
      reclassified : (id * placement) list;
    }

type t = {
  policy : policy;
  arity : int;
  rng : Prng.t;
  pool : Domain_pool.t option;
      (* Shared worker pool for the group-policy engine calls; the
         store only borrows it (never shuts it down). *)
  entries : (id, entry) Hashtbl.t;
  (* Algorithm 5's multi-level optimization: active coverer ->
     covered subscriptions recorded under it. A publication only tests
     the children of the active subscriptions it matched. *)
  children : (id, id list) Hashtbl.t;
  (* Live ids in insertion order. Ids are assigned monotonically and
     never reused, so the used prefix is always ascending — iteration
     is O(k) with no per-call sort. Removed ids become tombstones
     (absent from [entries]) and are compacted away lazily. *)
  mutable order : id array;
  mutable order_n : int;
  mutable order_dead : int;
  mutable active_n : int;
  (* Cached snapshot of the active set (ids, boxed subs, packed
     bounds), shared by every group/pairwise classification until an
     active-set mutation invalidates it. *)
  mutable active_cache : (id array * Subscription.t array) option;
  mutable packed_cache : Flat.t option;
  (* Counting index over the active set, maintained incrementally at
     every active-set mutation (not rebuilt): publication matching
     queries it instead of scanning the actives. Derived state — not
     journaled, not part of [equal_state]. *)
  matcher : Counting_matcher.t;
  mutable next_id : id;
  (* Prng.split draws consumed by classifications so far. Recovery
     fast-forwards a fresh seed-rng by this count, so a recovered
     store's future draws continue the live store's stream. *)
  mutable splits : int;
  (* Effect journal: invoked after each completed mutation with the op
     that reproduces it. [apply_op] never emits (replay must not
     re-journal). *)
  mutable journal : (op -> unit) option;
  mutable added : int;
  mutable dropped_covered : int;
  mutable removed_count : int;
  mutable promoted_count : int;
  mutable active_scans : int;
  mutable covered_scans : int;
}

let create ?(policy = Group_policy Engine.default_config) ?pool ~arity ~seed
    () =
  if arity < 1 then invalid_arg "Subscription_store.create: arity < 1";
  {
    policy;
    arity;
    rng = Prng.of_int seed;
    pool;
    entries = Hashtbl.create 64;
    children = Hashtbl.create 64;
    order = Array.make 64 0;
    order_n = 0;
    order_dead = 0;
    active_n = 0;
    active_cache = None;
    packed_cache = None;
    matcher = Counting_matcher.create ~arity ();
    next_id = 0;
    splits = 0;
    journal = None;
    added = 0;
    dropped_covered = 0;
    removed_count = 0;
    promoted_count = 0;
    active_scans = 0;
    covered_scans = 0;
  }

let policy t = t.policy
let arity t = t.arity
let size t = Hashtbl.length t.entries
let set_journal t j = t.journal <- j
let splits_consumed t = t.splits

let emit t op =
  match t.journal with None -> () | Some f -> f op

let invalidate_active t =
  t.active_cache <- None;
  t.packed_cache <- None

let order_push t id =
  if t.order_n = Array.length t.order then begin
    let bigger = Array.make (2 * t.order_n) 0 in
    Array.blit t.order 0 bigger 0 t.order_n;
    t.order <- bigger
  end;
  t.order.(t.order_n) <- id;
  t.order_n <- t.order_n + 1

let order_compact t =
  let n = ref 0 in
  for i = 0 to t.order_n - 1 do
    let id = t.order.(i) in
    if Hashtbl.mem t.entries id then begin
      t.order.(!n) <- id;
      incr n
    end
  done;
  t.order_n <- !n;
  t.order_dead <- 0

(* Called after an id leaves [entries]. *)
let order_mark_dead t =
  t.order_dead <- t.order_dead + 1;
  if t.order_dead > t.order_n - t.order_dead then order_compact t

let fold_entries t ~init ~f =
  (* Insertion order = ascending id: deterministic without sorting. *)
  let acc = ref init in
  for i = 0 to t.order_n - 1 do
    let id = t.order.(i) in
    match Hashtbl.find_opt t.entries id with
    | Some e -> acc := f !acc id e
    | None -> ()
  done;
  !acc

let active t =
  fold_entries t ~init:[] ~f:(fun acc id e ->
      match e.state with Active -> (id, e.sub) :: acc | Covered _ -> acc)
  |> List.rev

let covered t =
  fold_entries t ~init:[] ~f:(fun acc id e ->
      match e.state with
      | Active -> acc
      | Covered by -> (id, e.sub, by) :: acc)
  |> List.rev

let active_count t = t.active_n
let covered_count t = size t - active_count t

let find t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> e.sub
  | None -> raise Not_found

let is_active t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> (match e.state with Active -> true | Covered _ -> false)
  | None -> raise Not_found

let active_arrays t =
  match t.active_cache with
  | Some c -> c
  | None ->
      let pairs = active t in
      let c =
        ( Array.of_list (List.map fst pairs),
          Array.of_list (List.map snd pairs) )
      in
      t.active_cache <- Some c;
      c

let active_packed t =
  match t.packed_cache with
  | Some p -> p
  | None ->
      let _, subs = active_arrays t in
      let p = Flat.pack ~m:t.arity subs in
      t.packed_cache <- Some p;
      p

let link_child t ~coverer ~child =
  let cur = Option.value ~default:[] (Hashtbl.find_opt t.children coverer) in
  if not (List.mem child cur) then
    Hashtbl.replace t.children coverer (child :: cur)

let unlink_child t ~coverer ~child =
  match Hashtbl.find_opt t.children coverer with
  | None -> ()
  | Some l -> (
      match List.filter (fun c -> c <> child) l with
      | [] -> Hashtbl.remove t.children coverer
      | l' -> Hashtbl.replace t.children coverer l')

(* Translate an engine report into a placement, mapping candidate rows
   back to store ids through the active-set snapshot [ids]. *)
let placement_of_report ~s ids subs report =
  match report.Engine.verdict with
  | Engine.Covered_pairwise row -> Covered [ ids.(row) ]
  | Engine.Covered_probably ->
      (* Record the MCS-reduced candidate set as coverers: exactly
         the subscriptions whose joint cover classified [s]. Without
         an MCS trace, fall back to the candidates intersecting [s] —
         a superset of any true cover (a disjoint candidate covers no
         point of [s]), and the same list the engine's own pruning
         pass retains, so the sharded store records identical links. *)
      let coverers =
        match report.Engine.mcs with
        | Some m -> List.map (fun row -> ids.(row)) m.Mcs.kept
        | None ->
            let acc = ref [] in
            for row = Array.length ids - 1 downto 0 do
              if Subscription.intersects s subs.(row) then
                acc := ids.(row) :: !acc
            done;
            !acc
      in
      Covered coverers
  | Engine.Not_covered _ -> Active

(* Classify a subscription against the current active set according to
   the store policy. Under the group policy every classification draws
   exactly one {!Prng.split} from the store generator and hands the
   child stream to the engine — a fixed per-classification consumption
   that the sharded store mirrors split-for-split (see
   {!Shard_store}). *)
let classify t s =
  match t.policy with
  | No_coverage -> Active
  | Pairwise_policy -> (
      let ids, subs = active_arrays t in
      match Pairwise.find_coverer s subs with
      | Some i -> Covered [ ids.(i) ]
      | None -> Active)
  | Group_policy config ->
      let ids, subs = active_arrays t in
      let packed = active_packed t in
      t.splits <- t.splits + 1;
      let rng = Prng.split t.rng in
      placement_of_report ~s ids subs
        (Engine.check ~config ?pool:t.pool ~packed ~rng s subs)

(* Bookkeeping half of an insertion: assign the id and record the
   already-computed placement. Split out from [insert] so replay and
   batch paths can apply placements computed elsewhere. *)
let install t s ~state ~expires_at =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.entries id { sub = s; state; expires_at };
  order_push t id;
  t.added <- t.added + 1;
  (match state with
  | Covered by ->
      t.dropped_covered <- t.dropped_covered + 1;
      List.iter (fun coverer -> link_child t ~coverer ~child:id) by
  | Active ->
      (* A covered arrival leaves the active set untouched, so the
         cached snapshot stays valid — the common steady-state case. *)
      t.active_n <- t.active_n + 1;
      Counting_matcher.add t.matcher ~id s;
      invalidate_active t);
  emit t (Op_add { id; sub = s; placement = state; expires_at });
  (id, state)

let insert t s ~expires_at =
  if Subscription.arity s <> t.arity then
    invalid_arg "Subscription_store.add: arity mismatch";
  if Float.is_nan expires_at then
    invalid_arg "Subscription_store.add_with_expiry: NaN lease";
  let state = classify t s in
  install t s ~state ~expires_at

let add t s = insert t s ~expires_at:infinity
let add_with_expiry t s ~expires_at = insert t s ~expires_at

(* Batched insertion: the sequential loop [Array.map (add t) subs] in
   index order, after validating every arity up front so a mid-batch
   failure cannot leave a prefix installed. The earlier item-parallel
   snapshot-round path was retired: its rounds discarded every
   pre-classification after the first [Active] arrival, which made it
   an outright regression on active-heavy workloads (0.63x in
   BENCH_engine.json). Item-parallel batching lives in {!Shard_store},
   whose per-shard routing bounds invalidation to the shards an
   arrival actually dirtied. *)
let add_batch t subs =
  let n = Array.length subs in
  Array.iter
    (fun s ->
      if Subscription.arity s <> t.arity then
        invalid_arg "Subscription_store.add_batch: arity mismatch")
    subs;
  let results = Array.make n (0, Active) in
  for i = 0 to n - 1 do
    results.(i) <- add t subs.(i)
  done;
  results

let expiry t id =
  match Hashtbl.find_opt t.entries id with
  | Some e -> e.expires_at
  | None -> raise Not_found

(* Renewing an id the store no longer holds is a no-op, not an error:
   a refresh can race a sweep that already expired the entry, and the
   same must hold on replay — a journaled renew whose target was
   expired earlier in the log must not resurrect anything. *)
let renew t id ~expires_at =
  if Float.is_nan expires_at then
    invalid_arg "Subscription_store.renew: NaN lease";
  match Hashtbl.find_opt t.entries id with
  | Some e ->
      e.expires_at <- expires_at;
      emit t (Op_renew { id; expires_at })
  | None -> ()

(* Re-check the covered subscriptions that recorded one of
   [departed_active] as a coverer; promote those no longer covered.
   Shared by {!remove} and {!expire} (§5's replacement rule). Returns
   every re-checked orphan with its new placement (not just the
   promotions) so the journal can record the full effect. *)
let reclassify_orphans t ~departed_active =
  let orphans =
    fold_entries t ~init:[] ~f:(fun acc oid oe ->
        match oe.state with
        | Covered by when List.exists (fun id -> List.mem id by) departed_active
          ->
            (oid, oe, by) :: acc
        | Covered _ | Active -> acc)
    |> List.rev
  in
  List.map
    (fun (oid, oe, old_by) ->
      List.iter (fun coverer -> unlink_child t ~coverer ~child:oid) old_by;
      match classify t oe.sub with
      | Active ->
          oe.state <- Active;
          t.active_n <- t.active_n + 1;
          Counting_matcher.add t.matcher ~id:oid oe.sub;
          invalidate_active t;
          t.promoted_count <- t.promoted_count + 1;
          (oid, Active)
      | Covered by ->
          oe.state <- Covered by;
          List.iter (fun coverer -> link_child t ~coverer ~child:oid) by;
          (oid, Covered by))
    orphans

let promoted_of_reclassified reclassified =
  List.filter_map
    (fun (oid, pl) -> match pl with Active -> Some oid | Covered _ -> None)
    reclassified

let remove t id =
  let e =
    match Hashtbl.find_opt t.entries id with
    | Some e -> e
    | None -> raise Not_found
  in
  Hashtbl.remove t.entries id;
  order_mark_dead t;
  t.removed_count <- t.removed_count + 1;
  match e.state with
  | Covered by ->
      List.iter (fun coverer -> unlink_child t ~coverer ~child:id) by;
      emit t (Op_remove { id; reclassified = [] });
      []
  | Active ->
      t.active_n <- t.active_n - 1;
      Counting_matcher.remove t.matcher ~id;
      invalidate_active t;
      Hashtbl.remove t.children id;
      let reclassified = reclassify_orphans t ~departed_active:[ id ] in
      emit t (Op_remove { id; reclassified });
      promoted_of_reclassified reclassified

let expire t ~now =
  let expired =
    fold_entries t ~init:[] ~f:(fun acc id e ->
        if e.expires_at <= now then (id, e) :: acc else acc)
    |> List.rev
  in
  List.iter
    (fun (id, e) ->
      Hashtbl.remove t.entries id;
      order_mark_dead t;
      t.removed_count <- t.removed_count + 1;
      match e.state with
      | Covered by ->
          List.iter (fun coverer -> unlink_child t ~coverer ~child:id) by
      | Active ->
          t.active_n <- t.active_n - 1;
          Counting_matcher.remove t.matcher ~id;
          invalidate_active t;
          Hashtbl.remove t.children id)
    expired;
  let expired_active =
    List.filter_map
      (fun (id, e) ->
        match e.state with Active -> Some id | Covered _ -> None)
      expired
  in
  let reclassified =
    if expired_active = [] then []
    else reclassify_orphans t ~departed_active:expired_active
  in
  let expired_ids = List.map fst expired in
  if expired_ids <> [] then
    emit t (Op_expire { now; expired = expired_ids; reclassified });
  (expired_ids, promoted_of_reclassified reclassified)

let match_publication t p =
  let hits = ref [] in
  let matched_actives = ref [] in
  (* The counting index answers the active-set question exactly — no
     per-active [Publication.matches] scan ([active_scans] stays
     flat; the index work shows up in [index_hits]). *)
  Counting_matcher.iter_matches t.matcher p ~f:(fun id ->
      matched_actives := id :: !matched_actives;
      hits := id :: !hits);
  (* Multi-level descent: only the covered subscriptions recorded under
     a matched coverer can match (a point in a covered subscription
     lies in one of its coverers). *)
  let tested = Hashtbl.create 16 in
  List.iter
    (fun coverer ->
      List.iter
        (fun child ->
          if not (Hashtbl.mem tested child) then begin
            Hashtbl.replace tested child ();
            t.covered_scans <- t.covered_scans + 1;
            match Hashtbl.find_opt t.entries child with
            | None ->
                invalid_arg
                  "Subscription_store.match_publication: dangling child"
            | Some e ->
                if Publication.matches e.sub p then hits := child :: !hits
          end)
        (Option.value ~default:[] (Hashtbl.find_opt t.children coverer)))
    !matched_actives;
  List.sort Int.compare !hits

let match_publication_exhaustive t p =
  fold_entries t ~init:[] ~f:(fun acc id e ->
      if Publication.matches e.sub p then id :: acc else acc)
  |> List.sort Int.compare

(* Read-only subsumption query against the active set. The caller
   supplies the generator: a query must never draw from the store's
   own stream, or interleaving queries with arrivals would perturb
   later placements. *)
let check_publication t ~rng p =
  let _, subs = active_arrays t in
  let packed = active_packed t in
  let config =
    match t.policy with
    | Group_policy config -> config
    | No_coverage | Pairwise_policy -> Engine.default_config
  in
  Engine.check_publication ~config ?pool:t.pool ~packed ~rng p subs

let[@problint.allow
     determinism
       "test-only invariant check: every Hashtbl traversal here \
        accumulates a boolean AND, so visit order cannot change the \
        verdict"] validate t =
  let ok = ref true in
  (* Coverer references point at live, active entries; under the
     pairwise policy the recorded coverer really covers. *)
  Hashtbl.iter
    (fun _id e ->
      match e.state with
      | Active -> ()
      | Covered by ->
          if by = [] then ok := false;
          List.iter
            (fun c ->
              match Hashtbl.find_opt t.entries c with
              | Some ce ->
                  (match ce.state with
                  | Active -> ()
                  | Covered _ -> ok := false);
                  (match t.policy with
                  | Pairwise_policy ->
                      if not (Subscription.covers_sub ce.sub e.sub) then
                        ok := false
                  | No_coverage | Group_policy _ -> ())
              | None -> ok := false)
            by)
    t.entries;
  (* The children index is exactly the inverse of the covered-by
     relation. *)
  Hashtbl.iter
    (fun coverer kids ->
      List.iter
        (fun kid ->
          match Hashtbl.find_opt t.entries kid with
          | Some { state = Covered by; _ } ->
              if not (List.mem coverer by) then ok := false
          | Some { state = Active; _ } | None -> ok := false)
        kids)
    t.children;
  Hashtbl.iter
    (fun id e ->
      match e.state with
      | Covered by ->
          List.iter
            (fun c ->
              let kids =
                Option.value ~default:[] (Hashtbl.find_opt t.children c)
              in
              if not (List.mem id kids) then ok := false)
            by
      | Active -> ())
    t.entries;
  (* Maintained counters and order vector agree with ground truth. *)
  let ground_active =
    Hashtbl.fold
      (fun _ e n -> match e.state with Active -> n + 1 | Covered _ -> n)
      t.entries 0
  in
  if t.active_n <> ground_active then ok := false;
  (* The counting index shadows exactly the active set. *)
  if Counting_matcher.size t.matcher <> ground_active then ok := false;
  Hashtbl.iter
    (fun id e ->
      match e.state with
      | Active -> if not (Counting_matcher.mem t.matcher ~id) then ok := false
      | Covered _ ->
          if Counting_matcher.mem t.matcher ~id then ok := false)
    t.entries;
  let seen = ref (-1) in
  let live_in_order = ref 0 in
  for i = 0 to t.order_n - 1 do
    let id = t.order.(i) in
    if id <= !seen then ok := false;
    seen := id;
    if Hashtbl.mem t.entries id then incr live_in_order
  done;
  if !live_in_order <> Hashtbl.length t.entries then ok := false;
  !ok

let stats t =
  {
    added = t.added;
    dropped_covered = t.dropped_covered;
    removed = t.removed_count;
    promoted = t.promoted_count;
    active_scans = t.active_scans;
    covered_scans = t.covered_scans;
    index_hits = Counting_matcher.inspections t.matcher;
  }

(* -------------------------------------------------------------------
   Recovery: replaying journaled effects.

   Equivalence argument. A live mutation is (a) a deterministic state
   transformation given its recorded outcome, plus (b) a fixed number
   of [Prng.split] draws — one per group-policy classification. The
   outcomes are in the op; [consume_split] reproduces the draws. So
   replaying the journal on a fresh store with the same seed yields
   the same entries, placements, coverer links, active set, ids and
   generator state as the live sequence — which equal_state checks and
   the qcheck crash-point suite asserts for arbitrary op sequences. *)

let consume_split t =
  match t.policy with
  | Group_policy _ ->
      t.splits <- t.splits + 1;
      ignore (Prng.split t.rng)
  | No_coverage | Pairwise_policy -> ()

(* Mirror of the tail of [reclassify_orphans], with recorded placements
   standing in for the classify calls (one split each under group). *)
let apply_reclassified t reclassified =
  List.iter
    (fun (oid, pl) ->
      consume_split t;
      match Hashtbl.find_opt t.entries oid with
      | None -> ()
      | Some oe ->
          (match oe.state with
          | Covered old_by ->
              List.iter
                (fun coverer -> unlink_child t ~coverer ~child:oid)
                old_by
          | Active -> ());
          (match pl with
          | Active ->
              oe.state <- Active;
              t.active_n <- t.active_n + 1;
              Counting_matcher.add t.matcher ~id:oid oe.sub;
              invalidate_active t;
              t.promoted_count <- t.promoted_count + 1
          | Covered by ->
              oe.state <- Covered by;
              List.iter (fun coverer -> link_child t ~coverer ~child:oid) by))
    reclassified

let drop_entry t id e =
  Hashtbl.remove t.entries id;
  order_mark_dead t;
  t.removed_count <- t.removed_count + 1;
  match e.state with
  | Covered by ->
      List.iter (fun coverer -> unlink_child t ~coverer ~child:id) by
  | Active ->
      t.active_n <- t.active_n - 1;
      Counting_matcher.remove t.matcher ~id;
      invalidate_active t;
      Hashtbl.remove t.children id

let apply_op t op =
  match op with
  | Op_add { id; sub; placement; expires_at } ->
      if id <> t.next_id then
        invalid_arg "Subscription_store.apply_op: non-contiguous id";
      if Subscription.arity sub <> t.arity then
        invalid_arg "Subscription_store.apply_op: arity mismatch";
      consume_split t;
      t.next_id <- id + 1;
      Hashtbl.replace t.entries id { sub; state = placement; expires_at };
      order_push t id;
      t.added <- t.added + 1;
      (match placement with
      | Covered by ->
          t.dropped_covered <- t.dropped_covered + 1;
          List.iter (fun coverer -> link_child t ~coverer ~child:id) by
      | Active ->
          t.active_n <- t.active_n + 1;
          Counting_matcher.add t.matcher ~id sub;
          invalidate_active t)
  | Op_remove { id; reclassified } ->
      (match Hashtbl.find_opt t.entries id with
      | None -> ()
      | Some e -> drop_entry t id e);
      apply_reclassified t reclassified
  | Op_renew { id; expires_at } -> (
      match Hashtbl.find_opt t.entries id with
      | Some e -> e.expires_at <- expires_at
      | None -> ())
  | Op_expire { now = _; expired; reclassified } ->
      List.iter
        (fun id ->
          match Hashtbl.find_opt t.entries id with
          | None -> ()
          | Some e -> drop_entry t id e)
        expired;
      apply_reclassified t reclassified

type image = {
  i_next_id : id;
  i_splits : int;
  i_entries : (id * Subscription.t * placement * float) list;
}

let image t =
  {
    i_next_id = t.next_id;
    i_splits = t.splits;
    i_entries =
      fold_entries t ~init:[] ~f:(fun acc id e ->
          (id, e.sub, e.state, e.expires_at) :: acc)
      |> List.rev;
  }

let empty_image = { i_next_id = 0; i_splits = 0; i_entries = [] }

let restore ?policy ?pool ~arity ~seed img =
  let t = create ?policy ?pool ~arity ~seed () in
  for _ = 1 to img.i_splits do
    ignore (Prng.split t.rng)
  done;
  t.splits <- img.i_splits;
  let last = ref (-1) in
  List.iter
    (fun (id, sub, placement, expires_at) ->
      if id <= !last then
        invalid_arg "Subscription_store.recover: image ids not ascending";
      last := id;
      if Subscription.arity sub <> t.arity then
        invalid_arg "Subscription_store.recover: image arity mismatch";
      Hashtbl.replace t.entries id { sub; state = placement; expires_at };
      order_push t id;
      match placement with
      | Covered by ->
          List.iter (fun coverer -> link_child t ~coverer ~child:id) by
      | Active ->
          t.active_n <- t.active_n + 1;
          Counting_matcher.add t.matcher ~id sub)
    img.i_entries;
  if img.i_next_id <= !last then
    invalid_arg "Subscription_store.recover: image next_id too small";
  t.next_id <- img.i_next_id;
  t

let recover ?policy ?pool ~arity ~seed ?(image = empty_image) ops =
  let t = restore ?policy ?pool ~arity ~seed image in
  List.iter (apply_op t) ops;
  t

let equal_state a b =
  let entry_list t =
    fold_entries t ~init:[] ~f:(fun acc id e -> (id, e) :: acc) |> List.rev
  in
  let entry_equal (ida, ea) (idb, eb) =
    ida = idb
    && Subscription.equal ea.sub eb.sub
    && ea.state = eb.state
    && ea.expires_at = eb.expires_at
  in
  let packed_equal pa pb =
    Flat.k pa = Flat.k pb
    && Flat.m pa = Flat.m pb
    &&
    let ok = ref true in
    for row = 0 to Flat.k pa - 1 do
      for attr = 0 to Flat.m pa - 1 do
        if
          Flat.lo pa ~row ~attr <> Flat.lo pb ~row ~attr
          || Flat.hi pa ~row ~attr <> Flat.hi pb ~row ~attr
        then ok := false
      done
    done;
    !ok
  in
  a.arity = b.arity && a.policy = b.policy && a.next_id = b.next_id
  && a.splits = b.splits
  && List.equal entry_equal (entry_list a) (entry_list b)
  && fst (active_arrays a) = fst (active_arrays b)
  && packed_equal (active_packed a) (active_packed b)

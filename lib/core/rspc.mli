(** Random Simple Predicates Cover — the Monte-Carlo core (Algorithm 1).

    RSPC draws up to [d] uniform points inside the tested subscription
    [s]. A point escaping every subscription of the set is a point
    witness: the answer is a definite NO. If all [d] draws land inside
    the union, RSPC answers a probabilistic YES whose error is bounded
    by [(1 − ρw)^d] (Proposition 1). Each trial costs O(m·(k+1)). *)

type outcome =
  | Not_covered of int array
      (** A point witness was found; the array is the witness point. *)
  | Probably_covered
      (** No witness in the trial budget: YES with error ≤ (1−ρw)^d. *)

type run = {
  outcome : outcome;
  iterations : int;
      (** Trials actually performed — [<= d] because a witness stops the
          loop early (this is the "actual iterations" of Figs. 10/11). *)
}

val run :
  rng:Prng.t -> d:int -> s:Subscription.t -> Subscription.t array -> run
(** [run ~rng ~d ~s subs] executes Algorithm 1. [d = 0] answers
    [Probably_covered] in zero iterations (the MCS-emptied case).
    Internally packs the set once ({!Flat.pack}) and runs the
    allocation-free trial loop of {!run_packed}; the draw stream, the
    witness and the iteration count are identical to the boxed
    reference kernels below.
    @raise Invalid_argument if [d < 0] or on an arity mismatch. *)

val run_packed : rng:Prng.t -> d:int -> sbox:Flat.box -> Flat.t -> run
(** [run_packed ~rng ~d ~sbox packed] is {!run} on an already-packed
    candidate set — the engine and the subscription store reuse their
    cached {!Flat.t} here instead of re-packing per call. Each trial
    fills one preallocated scratch point and scans the packed bound
    planes: zero minor-heap allocation per trial (asserted by the
    bench). @raise Invalid_argument if [d < 0] or the arities of
    [sbox] and [packed] differ. *)

val random_point : rng:Prng.t -> Subscription.t -> int array
(** [random_point ~rng s] draws a uniform point of the box [s] —
    independent uniform draws per attribute. This is the boxed
    {e reference} kernel: the production loop uses
    {!Flat.random_point_into} on the same draw stream (exposed for
    tests and for the matcher's sampling diagnostics). *)

val escapes : int array -> Subscription.t array -> bool
(** [escapes p subs] is true when [p] lies in none of [subs] — the
    boxed reference of {!Flat.escapes}. *)

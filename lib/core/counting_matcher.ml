(* Incremental counting index. Mutations maintain per-attribute
   {!Interval_index.Dyn} structures keyed by *slot*: a dense integer
   the matcher assigns on add and recycles on remove, so every
   per-publication data structure is a flat int array indexed by slot.
   Match-time state (hit counters, hit buffer) is preallocated and
   reset logically via generation stamps — a publication never
   allocates scratch, in the spirit of the hot-alloc lint rule even
   though this module is not inside a [@@@problint.hot] scope. *)

type entry = { slot : int; sub : Subscription.t }

type t = {
  arity : int;
  entries : (int, entry) Hashtbl.t; (* id -> slot + sub; control plane *)
  (* Slot planes, parallel over [0, nslots). [gen] holds the stamp of
     the current occupant, 0 when the slot is free; stamps are drawn
     from a monotone counter and never reused, so index entries left
     behind by a departed occupant can never alias a new one. *)
  mutable id_of_slot : int array;
  mutable wanted : int array; (* constrained-attribute count *)
  mutable gen : int array;
  mutable nslots : int;
  mutable free : int array; (* free-slot stack *)
  mutable nfree : int;
  mutable next_stamp : int;
  (* One dynamic index per attribute, holding the constrained ranges
     of the current occupants (full ranges are not indexed). *)
  mutable indexes : Interval_index.Dyn.t array;
  (* Fully-unconstrained subscriptions match every publication and
     live outside the indexes: a dense slot array with a per-slot
     reverse position for O(1) swap-removal. *)
  mutable universal : int array;
  mutable nuniversal : int;
  mutable upos : int array;
  (* Per-publication counters, reset in O(1) by bumping [pub_gen]:
     counts.(slot) is only meaningful when count_gen.(slot) = pub_gen. *)
  mutable counts : int array;
  mutable count_gen : int array;
  mutable pub_gen : int;
  mutable hitbuf : int array;
  mutable nhits : int;
  mutable inspections : int;
  (* Preallocated match-path closure (assigned once at create): a hit
     from any attribute index bumps the slot's counter and records the
     slot when it reaches its target. *)
  mutable on_hit : int -> unit;
}

let create ~arity () =
  if arity < 1 then invalid_arg "Counting_matcher.create: arity < 1";
  let t =
    {
      arity;
      entries = Hashtbl.create 64;
      id_of_slot = Array.make 16 0;
      wanted = Array.make 16 0;
      gen = Array.make 16 0;
      nslots = 0;
      free = Array.make 16 0;
      nfree = 0;
      next_stamp = 1;
      indexes = [||];
      universal = Array.make 4 0;
      nuniversal = 0;
      upos = Array.make 16 (-1);
      counts = Array.make 16 0;
      count_gen = Array.make 16 0;
      pub_gen = 0;
      hitbuf = Array.make 16 0;
      nhits = 0;
      inspections = 0;
      on_hit = ignore;
    }
  in
  let live ~key ~stamp = key < t.nslots && t.gen.(key) = stamp in
  t.indexes <- Array.init arity (fun _ -> Interval_index.Dyn.create ~live ());
  t.on_hit <-
    (fun slot ->
      t.inspections <- t.inspections + 1;
      let c =
        if t.count_gen.(slot) = t.pub_gen then t.counts.(slot) + 1 else 1
      in
      t.count_gen.(slot) <- t.pub_gen;
      t.counts.(slot) <- c;
      if c = t.wanted.(slot) then begin
        if t.nhits = Array.length t.hitbuf then begin
          let bigger = Array.make (2 * t.nhits) 0 in
          Array.blit t.hitbuf 0 bigger 0 t.nhits;
          t.hitbuf <- bigger
        end;
        t.hitbuf.(t.nhits) <- slot;
        t.nhits <- t.nhits + 1
      end);
  t

let arity t = t.arity
let size t = Hashtbl.length t.entries
let mem t ~id = Hashtbl.mem t.entries id
let inspections t = t.inspections

let grow_slots t =
  let cap = Array.length t.gen in
  if t.nslots = cap then begin
    let bigger = 2 * cap in
    let grow ~init a =
      let b = Array.make bigger init in
      Array.blit a 0 b 0 cap;
      b
    in
    t.id_of_slot <- grow ~init:0 t.id_of_slot;
    t.wanted <- grow ~init:0 t.wanted;
    t.gen <- grow ~init:0 t.gen;
    t.upos <- grow ~init:(-1) t.upos;
    t.counts <- grow ~init:0 t.counts;
    t.count_gen <- grow ~init:0 t.count_gen
  end

let alloc_slot t =
  if t.nfree > 0 then begin
    t.nfree <- t.nfree - 1;
    t.free.(t.nfree)
  end
  else begin
    grow_slots t;
    let slot = t.nslots in
    t.nslots <- t.nslots + 1;
    slot
  end

let add t ~id sub =
  if Subscription.arity sub <> t.arity then
    invalid_arg "Counting_matcher.add: arity mismatch";
  if Hashtbl.mem t.entries id then
    invalid_arg "Counting_matcher.add: duplicate id";
  let slot = alloc_slot t in
  let stamp = t.next_stamp in
  t.next_stamp <- stamp + 1;
  Hashtbl.replace t.entries id { slot; sub };
  t.id_of_slot.(slot) <- id;
  t.gen.(slot) <- stamp;
  (* A stale counter from the slot's previous occupant must not leak
     into the new one's first publication. *)
  t.count_gen.(slot) <- 0;
  let constrained = Subscription.constrained sub in
  t.wanted.(slot) <- List.length constrained;
  if constrained = [] then begin
    if t.nuniversal = Array.length t.universal then begin
      let bigger = Array.make (2 * t.nuniversal) 0 in
      Array.blit t.universal 0 bigger 0 t.nuniversal;
      t.universal <- bigger
    end;
    t.universal.(t.nuniversal) <- slot;
    t.upos.(slot) <- t.nuniversal;
    t.nuniversal <- t.nuniversal + 1
  end
  else
    List.iter
      (fun attr ->
        Interval_index.Dyn.add t.indexes.(attr) ~key:slot ~stamp
          (Subscription.range sub attr))
      constrained

let remove t ~id =
  match Hashtbl.find_opt t.entries id with
  | None -> raise Not_found
  | Some { slot; sub } ->
      Hashtbl.remove t.entries id;
      t.gen.(slot) <- 0;
      (match Subscription.constrained sub with
      | [] ->
          (* Swap-remove from the universal array. *)
          let pos = t.upos.(slot) in
          let last = t.nuniversal - 1 in
          let moved = t.universal.(last) in
          t.universal.(pos) <- moved;
          t.upos.(moved) <- pos;
          t.upos.(slot) <- -1;
          t.nuniversal <- last
      | constrained ->
          List.iter
            (fun attr -> Interval_index.Dyn.note_dead t.indexes.(attr))
            constrained);
      if t.nfree = Array.length t.free then begin
        let bigger = Array.make (2 * t.nfree) 0 in
        Array.blit t.free 0 bigger 0 t.nfree;
        t.free <- bigger
      end;
      t.free.(t.nfree) <- slot;
      t.nfree <- t.nfree + 1

let rebuild t = Array.iter Interval_index.Dyn.compact t.indexes

(* Start a publication: bump the counter generation (O(1) logical
   reset of every counter) and empty the hit buffer. *)
let begin_pub t =
  t.pub_gen <- t.pub_gen + 1;
  t.nhits <- 0

let push_universal t =
  for i = 0 to t.nuniversal - 1 do
    if t.nhits = Array.length t.hitbuf then begin
      let bigger = Array.make (2 * t.nhits) 0 in
      Array.blit t.hitbuf 0 bigger 0 t.nhits;
      t.hitbuf <- bigger
    end;
    t.hitbuf.(t.nhits) <- t.universal.(i);
    t.nhits <- t.nhits + 1
  done

let run_point t p =
  if Array.length p <> t.arity then
    invalid_arg "Counting_matcher.match_point: arity mismatch";
  begin_pub t;
  for attr = 0 to t.arity - 1 do
    Interval_index.Dyn.iter_stab t.indexes.(attr) p.(attr) ~f:t.on_hit
  done;
  push_universal t

(* Box publications need containment, not stabbing: subscription [s]
   matches box [b] iff every range of [s] contains the corresponding
   range of [b]. Unconstrained (full) attributes of [s] contain
   anything, so [s] matches iff all [wanted s] of its indexed ranges
   contain the box's — the same counting scheme with the containment
   query. A full box range can only be contained by a full stored
   range, which is never indexed: skip the probe, no slot can score
   there. *)
let run_box t b =
  if Subscription.arity b <> t.arity then
    invalid_arg "Counting_matcher.match_publication: arity mismatch";
  begin_pub t;
  for attr = 0 to t.arity - 1 do
    let q = Subscription.range b attr in
    if not (Interval.is_full q) then
      Interval_index.Dyn.iter_containing t.indexes.(attr) q ~f:t.on_hit
  done;
  push_universal t

let run_publication t pub =
  match pub with
  | Publication.Point values -> run_point t values
  | Publication.Box b -> run_box t b

let iter_matches t pub ~f =
  run_publication t pub;
  for i = 0 to t.nhits - 1 do
    f t.id_of_slot.(t.hitbuf.(i))
  done

let collect_hits t =
  let acc = ref [] in
  for i = 0 to t.nhits - 1 do
    acc := t.id_of_slot.(t.hitbuf.(i)) :: !acc
  done;
  List.sort Int.compare !acc

let match_point t p =
  run_point t p;
  collect_hits t

let match_publication t pub =
  run_publication t pub;
  collect_hits t

type t = {
  arity : int;
  subs : (int, Subscription.t) Hashtbl.t;
  (* Per-subscription number of constrained attributes; subscriptions
     constraining nothing match every publication. *)
  constrained : (int, int) Hashtbl.t;
  mutable indexes : Interval_index.t array;
  dirty : bool array;
  (* Box publications scan a flat pack of the whole set instead of
     chasing boxed intervals; rebuilt lazily after any mutation. *)
  mutable flat : (int array * Flat.t) option;
}

let create ~arity () =
  if arity < 1 then invalid_arg "Counting_matcher.create: arity < 1";
  {
    arity;
    subs = Hashtbl.create 64;
    constrained = Hashtbl.create 64;
    indexes = Array.make arity Interval_index.empty;
    dirty = Array.make arity true;
    flat = None;
  }

let arity t = t.arity
let size t = Hashtbl.length t.subs
let mem t ~id = Hashtbl.mem t.subs id

let add t ~id sub =
  if Subscription.arity sub <> t.arity then
    invalid_arg "Counting_matcher.add: arity mismatch";
  if Hashtbl.mem t.subs id then
    invalid_arg "Counting_matcher.add: duplicate id";
  Hashtbl.replace t.subs id sub;
  let constrained = Subscription.constrained sub in
  Hashtbl.replace t.constrained id (List.length constrained);
  List.iter (fun attr -> t.dirty.(attr) <- true) constrained;
  t.flat <- None

let remove t ~id =
  match Hashtbl.find_opt t.subs id with
  | None -> raise Not_found
  | Some sub ->
      Hashtbl.remove t.subs id;
      Hashtbl.remove t.constrained id;
      List.iter (fun attr -> t.dirty.(attr) <- true)
        (Subscription.constrained sub);
      t.flat <- None

let rebuild_attr t attr =
  let entries =
    (Hashtbl.fold
       (fun id sub acc ->
         let range = Subscription.range sub attr in
         if Interval.is_full range then acc else (id, range) :: acc)
       t.subs []
    [@problint.allow
      determinism
        "order-insensitive collection: Interval_index.build centers on \
         the sorted midpoint median and every query result is re-sorted \
         before use"])
  in
  t.indexes.(attr) <- Interval_index.build entries;
  t.dirty.(attr) <- false

let rebuild t =
  for attr = 0 to t.arity - 1 do
    if t.dirty.(attr) then rebuild_attr t attr
  done

let match_point t p =
  if Array.length p <> t.arity then
    invalid_arg "Counting_matcher.match_point: arity mismatch";
  rebuild t;
  let counts = Hashtbl.create 32 in
  for attr = 0 to t.arity - 1 do
    Interval_index.iter_stab t.indexes.(attr) p.(attr) ~f:(fun id ->
        Hashtbl.replace counts id
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts id)))
  done;
  (* A subscription matches when every constrained attribute was hit;
     fully unconstrained subscriptions match by definition. *)
  (Hashtbl.fold
     (fun id wanted acc ->
       if wanted = 0 then id :: acc
       else
         match Hashtbl.find_opt counts id with
         | Some got when got = wanted -> id :: acc
         | Some _ | None -> acc)
     t.constrained []
  [@problint.allow
    determinism "order-insensitive: result is sorted on the next line"])
  |> List.sort Int.compare

let flat_pack t =
  match t.flat with
  | Some pack -> pack
  | None ->
      let ids =
        (Hashtbl.fold (fun id _ acc -> id :: acc) t.subs []
        [@problint.allow
          determinism
            "order-insensitive: key collection is sorted on the next line"])
        |> List.sort Int.compare |> Array.of_list
      in
      let subs =
        Array.map
          (fun id ->
            match Hashtbl.find_opt t.subs id with
            | Some sub -> sub
            | None -> invalid_arg "Counting_matcher.flat_pack: id vanished")
          ids
      in
      let pack = (ids, Flat.pack ~m:t.arity subs) in
      t.flat <- Some pack;
      pack

let match_publication t pub =
  match pub with
  | Publication.Point values -> match_point t values
  | Publication.Box b ->
      if Subscription.arity b <> t.arity then
        invalid_arg "Counting_matcher.match_publication: arity mismatch";
      (* Boxes need containment, not stabbing: a linear pass over the
         packed bounds, in id order so the result is already sorted. *)
      if Hashtbl.length t.subs = 0 then []
      else begin
        let ids, packed = flat_pack t in
        let hits = ref [] in
        Flat.iter_superset_rows packed (Flat.box_of_sub b) ~f:(fun row ->
            hits := ids.(row) :: !hits);
        List.rev !hits
      end

[@@@problint.hot]
(* Hot-path module: the sequential trial loop; problint enforces
   allocation-free for/while bodies (the witness copy on the exit path
   is the one allowed allocation). *)

type outcome = Not_covered of int array | Probably_covered
type run = { outcome : outcome; iterations : int }

(* Boxed reference kernels. The production trial loop below runs on the
   packed {!Flat} representation; these stay as the readable spec the
   property tests compare against. *)

let random_point ~rng s =
  Array.init (Subscription.arity s) (fun j ->
      Prng.in_interval rng (Subscription.range s j))

let escapes p subs =
  Array.for_all (fun si -> not (Subscription.covers_point si p)) subs

let run_packed ~rng ~d ~sbox packed =
  if d < 0 then invalid_arg "Rspc.run: negative trial budget";
  if Flat.m packed <> Flat.box_arity sbox then
    invalid_arg "Rspc.run: arity mismatch";
  (* One scratch point per run; a trial draws into it and scans the
     packed planes — no allocation until a witness is copied out. *)
  let p = Array.make (Flat.box_arity sbox) 0 in
  let rec loop i =
    if i >= d then { outcome = Probably_covered; iterations = d }
    else begin
      Flat.random_point_into ~rng sbox p;
      if Flat.escapes packed p then
        { outcome = Not_covered (Array.copy p); iterations = i + 1 }
      else loop (i + 1)
    end
  in
  loop 0

let run ~rng ~d ~s subs =
  if d < 0 then invalid_arg "Rspc.run: negative trial budget";
  let m = Subscription.arity s in
  Array.iter
    (fun si ->
      if Subscription.arity si <> m then
        invalid_arg "Rspc.run: arity mismatch")
    subs;
  run_packed ~rng ~d ~sbox:(Flat.box_of_sub s) (Flat.pack ~m subs)

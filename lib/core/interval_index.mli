(** Centered interval tree: stabbing queries over a set of integer
    intervals.

    Supports the per-attribute lookups of the counting matcher
    ({!Counting_matcher}): given a publication value [v], enumerate the
    identifiers of every stored interval containing [v] in
    O(log n + answers). The tree is static; {!build} constructs it from
    a snapshot in O(n log n). Mutating callers keep a dirty flag and
    rebuild lazily — subscription tables change far more slowly than
    publications arrive (§1), so amortized rebuilds are the right
    trade-off and keep the structure simple and obviously correct. *)

type t

val build : (int * Interval.t) list -> t
(** [build entries] indexes [(id, interval)] pairs. Ids need not be
    distinct (a subscription may contribute several intervals on one
    attribute in extensions); all entries are reported. *)

val empty : t
val size : t -> int

val stab : t -> int -> int list
(** [stab t v] lists the ids of all intervals containing [v], in
    unspecified order. *)

val iter_stab : t -> int -> f:(int -> unit) -> unit
(** Allocation-light variant of {!stab} for the matcher's hot path. *)

val count_stab : t -> int -> int
(** Number of intervals containing [v]. *)

val overlapping : t -> Interval.t -> int list
(** [overlapping t q] lists the ids of all stored intervals sharing at
    least one point with [q], in unspecified order, in
    O(log n + answers) — the range generalisation of {!stab} ({!stab}
    [v] = [overlapping] on the degenerate interval [v,v]). The sharded
    store's shard map uses it to find every stripe a subscription or a
    box publication can overlap. *)

val iter_overlapping : t -> Interval.t -> f:(int -> unit) -> unit
(** Allocation-light variant of {!overlapping}. *)

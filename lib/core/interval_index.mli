(** Centered interval tree: stabbing queries over a set of integer
    intervals.

    Supports the per-attribute lookups of the counting matcher
    ({!Counting_matcher}): given a publication value [v], enumerate the
    identifiers of every stored interval containing [v] in
    O(log n + answers). The tree is static; {!build} constructs it from
    a snapshot in O(n log n). Mutating callers keep a dirty flag and
    rebuild lazily — subscription tables change far more slowly than
    publications arrive (§1), so amortized rebuilds are the right
    trade-off and keep the structure simple and obviously correct. *)

type t

val build : (int * Interval.t) list -> t
(** [build entries] indexes [(id, interval)] pairs. Ids need not be
    distinct (a subscription may contribute several intervals on one
    attribute in extensions); all entries are reported. *)

val empty : t
val size : t -> int

val stab : t -> int -> int list
(** [stab t v] lists the ids of all intervals containing [v], in
    unspecified order. *)

val iter_stab : t -> int -> f:(int -> unit) -> unit
(** Allocation-light variant of {!stab} for the matcher's hot path. *)

val count_stab : t -> int -> int
(** Number of intervals containing [v]. *)

val overlapping : t -> Interval.t -> int list
(** [overlapping t q] lists the ids of all stored intervals sharing at
    least one point with [q], in unspecified order, in
    O(log n + answers) — the range generalisation of {!stab} ({!stab}
    [v] = [overlapping] on the degenerate interval [v,v]). The sharded
    store's shard map uses it to find every stripe a subscription or a
    box publication can overlap. *)

val iter_overlapping : t -> Interval.t -> f:(int -> unit) -> unit
(** Allocation-light variant of {!overlapping}. *)

(** Incremental index for the matcher's data plane.

    The static tree above is rebuilt wholesale by its callers; [Dyn]
    instead absorbs mutations as they happen: additions land in a small
    pending buffer scanned linearly by queries, removals are mere
    counters (the owner's [live] oracle filters retired entries out of
    query results), and an amortized compaction folds both back into a
    fresh static tree before either can degrade query cost. Queries
    therefore never trigger a rebuild — all compaction work rides on
    the {e mutation} path, keeping publication matching latency flat.

    Entries are identified by a [(key, stamp)] pair chosen by the
    owner. Keys may be reused (the counting matcher recycles slot
    numbers across lease expiry sweeps); stamps must be unique per
    insertion, so a stale index entry for a recycled key fails the
    [live ~key ~stamp] check instead of resurrecting. *)
module Dyn : sig
  type t

  val create : live:(key:int -> stamp:int -> bool) -> unit -> t
  (** [create ~live ()] builds an empty index. [live] must answer, for
      any [(key, stamp)] ever inserted, whether that insertion is still
      current; it is consulted on the query path and must be cheap and
      non-allocating. *)

  val add : t -> key:int -> stamp:int -> Interval.t -> unit
  (** Insert an interval under [(key, stamp)]. Amortized O(log n):
      usually a buffer append, occasionally a compaction. *)

  val note_dead : t -> unit
  (** Tell the index one of its entries was retired (its [live] check
      now fails). Triggers compaction once retirees outnumber half the
      entries. *)

  val size : t -> int
  (** Live entries (assuming every retirement was noted). *)

  val iter_stab : t -> int -> f:(int -> unit) -> unit
  (** [iter_stab t v ~f] calls [f key] for every live interval
      containing [v]; at most once per (key, stamp) insertion, in
      unspecified order. Allocation-free. *)

  val iter_containing : t -> Interval.t -> f:(int -> unit) -> unit
  (** [iter_containing t q ~f] calls [f key] for every live interval
      that {e contains} the whole query interval [q] — the box-matching
      dual of {!iter_stab}. Allocation-free. *)

  val compact : t -> unit
  (** Force a compaction now (e.g. before a latency measurement). *)
end

(** Multicore RSPC: Algorithm 1's trials fanned out over OCaml 5
    domains.

    The trials are independent by construction (Proposition 1 relies on
    it), so the budget [d] splits into per-domain chunks, each drawing
    from an independent {!Prng.split} of the caller's generator. The
    candidate set is packed once ({!Flat.pack}) and shared read-only
    across domains; every domain owns a scratch point buffer, so the
    per-trial work allocates nothing. A shared flag stops all domains
    as soon as any of them finds a point witness; it is polled every 64
    trials to keep cross-domain cache traffic off the inner loop.

    Semantics versus {!Rspc.run}:
    - soundness is identical — a [Not_covered] answer always carries a
      verified point witness, and a covered input can never produce one;
    - the error bound of a [Probably_covered] answer is the same
      [(1 − ρw)^d] (every one of the [d] trials was performed unless a
      witness was found);
    - the {e specific} witness point and the [iterations] count depend
      on domain scheduling, so they are not bit-reproducible run to run
      (the sequential engine remains the default everywhere determinism
      matters). *)

val recommended_domains : unit -> int
(** [max 1 (cpu count - 1)], capped at 8. *)

val min_parallel_budget : int
(** Budgets below this run sequentially even when [domains > 1]:
    spawning costs more than a few hundred membership tests. *)

val chunk_size : d:int -> domains:int -> int
(** [ceil (d / domains)] — the per-domain budget before the tail
    correction. *)

val budget_for : d:int -> domains:int -> index:int -> int
(** Trial budget of domain [index] in a [d]-trial run over [domains]
    domains: [min (chunk_size ~d ~domains) (max 0 (d - index *
    chunk))]. Non-negative, non-increasing in [index], and summing to
    exactly [d] over [index = 0 .. domains - 1] — the regression tests
    pin the chunk-boundary cases. *)

val trials_into :
  rng:Prng.t -> sbox:Flat.box -> packed:Flat.t ->
  found:int array option Atomic.t -> budget:int -> int array -> int
(** The per-domain inner loop, shared between {!run}'s workers and the
    allocation benchmark ([bench/main.exe kernels] asserts it runs at
    0 words per trial). Draws up to [budget] random points from [sbox]
    into the scratch buffer [p] (length [m]); on the first point that
    escapes [packed] it publishes a copy to [found] (first
    compare-and-set wins) and stops. [found] is also polled every 64
    trials so the loop stops promptly once another domain has won.
    Returns the number of trials actually performed: [budget] when no
    witness was seen and [found] stayed unset, fewer otherwise. *)

val run :
  ?domains:int -> rng:Prng.t -> d:int -> s:Subscription.t ->
  Subscription.t array -> Rspc.run
(** [run ~domains ~rng ~d ~s subs] behaves like {!Rspc.run}; [domains =
    1] (or [d] small) falls back to the sequential code path.
    [iterations] reports the total trials actually executed across
    domains. @raise Invalid_argument if [domains < 1] or [d < 0]. *)

(** Multicore RSPC: Algorithm 1's escape tests fanned out over a
    {!Domain_pool}, with results bit-identical to the sequential
    engine.

    The runner draws trials in blocks of {!block_size} from the
    caller's generator — the {e same} stream, in the same order, as
    {!Rspc.run_packed} — into a shared point buffer (serial, O(m) per
    trial), then fans the O(k·m) escape tests over the pool workers in
    contiguous slices. The minimum escaping slot across slices is
    exactly the trial at which the sequential loop would have stopped,
    so the verdict, the witness point {e and} the [iterations] count
    are all bit-identical to {!Rspc.run_packed} for the same seed: a
    pool is a pure performance knob, invisible to callers. A shared
    atomic "best slot so far" lets slices abort early; it is polled
    every 64 slots to keep cross-domain cache traffic off the inner
    loop.

    Semantics versus {!Rspc.run_packed}:
    - identical outcome, witness and iteration count for the same
      [rng] seed, regardless of pool size or scheduling;
    - identical [(1 − ρw)^d] error bound for [Probably_covered];
    - the only divergence is Prng {e consumption}: a block is drawn
      before it is tested, so up to [block_size − 1] draws beyond the
      witness have already been consumed. The engine derives a fresh
      stream per check, so no caller observes this. *)

val recommended_domains : unit -> int
(** [max 1 (cpu count - 1)], capped at 8. *)

val min_parallel_budget : int
(** Budgets below this run sequentially even with a pool: handing out
    tasks costs more than a few hundred membership tests. *)

val block_size : int
(** Trials drawn (serially) per parallel scan round. *)

val chunk_size : d:int -> domains:int -> int
(** [ceil (d / domains)] — the per-slice share before the tail
    correction. *)

val budget_for : d:int -> domains:int -> index:int -> int
(** Share of slice [index] when [d] units split over [domains] slices:
    [min (chunk_size ~d ~domains) (max 0 (d - index * chunk))].
    Non-negative, non-increasing in [index], and summing to exactly
    [d] over [index = 0 .. domains - 1] — the regression tests pin the
    chunk-boundary cases. {!run_packed} applies it to each trial
    block; {!Engine.check_batch} to item ranges. *)

val trials_into :
  rng:Prng.t -> sbox:Flat.box -> packed:Flat.t ->
  found:int array option Atomic.t -> budget:int -> int array -> int
(** The split-stream per-domain trial loop of the original fan-out
    runner, kept as the allocation yardstick ([bench/main.exe kernels]
    asserts it runs at 0 words per trial). Draws up to [budget] random
    points from [sbox] into the scratch buffer [p] (length [m]); on
    the first point escaping [packed] it publishes a copy to [found]
    (first compare-and-set wins) and stops. [found] is polled every 64
    trials so the loop stops promptly once another domain has won.
    Returns the number of trials actually performed. The production
    path ({!run_packed}) now uses the block kernels
    ({!Flat.random_points_into} / {!Flat.escapes_at}) — the same loop
    bodies over an offset buffer, preserving the 0-words-per-trial
    guarantee. *)

val run_packed :
  ?pool:Domain_pool.t -> ?domains:int -> rng:Prng.t -> d:int ->
  sbox:Flat.box -> Flat.t -> Rspc.run
(** [run_packed ?pool ~rng ~d ~sbox packed] is {!Rspc.run_packed} on
    the engine's already-reduced packed set — no re-pack, no arity
    rescan — parallelised over [pool] when one is given. Parallelism
    is [Domain_pool.size pool + 1] (the submitting domain scans slice
    0) or, with no pool, [domains] (default {!recommended_domains})
    worker domains spawned for this one call — the per-call-spawn
    baseline the bench contrasts with pool reuse. Falls back to the
    sequential {!Rspc.run_packed} when the effective parallelism is 1
    or [d < ]{!min_parallel_budget}; in every case the result is
    bit-identical to the sequential runner for the same seed.
    @raise Invalid_argument if [d < 0], [domains < 1], or the arities
    of [sbox] and [packed] differ. *)

val run :
  ?pool:Domain_pool.t -> ?domains:int -> rng:Prng.t -> d:int ->
  s:Subscription.t -> Subscription.t array -> Rspc.run
(** [run ~rng ~d ~s subs] packs [subs] once and delegates to
    {!run_packed} — a convenience wrapper for callers without a cached
    {!Flat.t}. Behaves like {!Rspc.run} (bit-identical for the same
    seed). @raise Invalid_argument if [domains < 1], [d < 0], or some
    subscription's arity differs from [s]'s. *)

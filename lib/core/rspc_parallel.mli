(** Multicore RSPC: Algorithm 1's trials fanned out over OCaml 5
    domains.

    The trials are independent by construction (Proposition 1 relies on
    it), so the budget [d] splits into per-domain chunks, each drawing
    from an independent {!Prng.split} of the caller's generator. The
    candidate set is packed once ({!Flat.pack}) and shared read-only
    across domains; every domain owns a scratch point buffer, so the
    per-trial work allocates nothing. A shared flag stops all domains
    as soon as any of them finds a point witness; it is polled every 64
    trials to keep cross-domain cache traffic off the inner loop.

    Semantics versus {!Rspc.run}:
    - soundness is identical — a [Not_covered] answer always carries a
      verified point witness, and a covered input can never produce one;
    - the error bound of a [Probably_covered] answer is the same
      [(1 − ρw)^d] (every one of the [d] trials was performed unless a
      witness was found);
    - the {e specific} witness point and the [iterations] count depend
      on domain scheduling, so they are not bit-reproducible run to run
      (the sequential engine remains the default everywhere determinism
      matters). *)

val recommended_domains : unit -> int
(** [max 1 (cpu count - 1)], capped at 8. *)

val run :
  ?domains:int -> rng:Prng.t -> d:int -> s:Subscription.t ->
  Subscription.t array -> Rspc.run
(** [run ~domains ~rng ~d ~s subs] behaves like {!Rspc.run}; [domains =
    1] (or [d] small) falls back to the sequential code path.
    [iterations] reports the total trials actually executed across
    domains. @raise Invalid_argument if [domains < 1] or [d < 0]. *)

(** A persistent pool of worker domains with future-style task
    submission.

    [Domain.spawn] costs a fresh OS thread, a minor heap and a stack on
    every call — far more than the few hundred membership tests of a
    small RSPC budget. A {!t} pays that cost {e once}: a fixed set of
    worker domains is created up front and fed through a
    mutex-and-condition task queue, so the per-task overhead is one
    queue push and one condition signal. The parallel RSPC runner
    ({!Rspc_parallel.run_packed}), the batched engine pipeline
    ({!Engine.check_batch}) and the store's {!Subscription_store.add_batch}
    all share one pool across an arbitrary number of calls.

    Ownership contract: a pool is driven from the single domain that
    created it — {!submit}, {!await} and {!shutdown} are not themselves
    re-entrant from worker tasks. In particular a task must never
    {!submit} to (or {!await} a future of) its own pool: with every
    worker blocked on a child future that is still queued behind it,
    the pool deadlocks. The engine therefore parallelises exactly one
    layer at a time (across RSPC trial slices, or across batch items —
    never both). *)

type t
(** A pool of worker domains. *)

type 'a future
(** The pending result of a submitted task. *)

val default_workers : unit -> int
(** [max 0 (cpu count - 1)], capped at 7 workers — together with the
    submitting domain that saturates eight-way hardware without
    oversubscribing smaller machines. *)

val create : ?workers:int -> unit -> t
(** [create ~workers ()] spawns [workers] domains that block on the
    task queue until {!shutdown}. [workers = 0] is a valid degenerate
    pool: {!submit} then runs the task inline on the calling domain.
    Default: {!default_workers}.
    @raise Invalid_argument if [workers < 0]. *)

val size : t -> int
(** Number of worker domains (0 after {!shutdown}). Callers that
    partition work usually split it [size t + 1] ways and keep one
    share for the submitting domain. *)

val submit : t -> (unit -> 'a) -> 'a future
(** [submit t f] enqueues [f] for execution on some worker and returns
    immediately. Tasks are started in submission order. An exception
    raised by [f] is captured and re-raised by {!await}.
    @raise Invalid_argument after {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the task has run; return its result or re-raise its
    exception. [await] may be called more than once (subsequent calls
    return the memoised result) but only from the pool's owning
    domain. *)

val map_slices : t -> n:int -> f:(int -> 'a) -> 'a array
(** [map_slices pool ~n ~f] evaluates [f 0 .. f (n-1)] across the
    workers and the calling domain in contiguous slices and returns
    the results in index order, exactly [Array.init n f] up to
    evaluation order. [f] runs as a worker task and is therefore bound
    by the ownership contract above: it must not submit to or await on
    this pool, and any shared state it touches must be safe to read
    from several domains. With zero workers everything runs on the
    calling domain. @raise Invalid_argument if [n < 0]. *)

val shutdown : t -> unit
(** Finish every task already queued, then stop and join all workers.
    Idempotent. After shutdown the pool is permanently unusable;
    {!submit} raises. *)

val with_pool : ?workers:int -> (t -> 'a) -> 'a
(** [with_pool f] runs [f] with a fresh pool and guarantees
    {!shutdown} on every exit path — the per-call-spawn convenience
    wrapper, and the unit the bench compares against pool reuse. *)

(* Carve [box \ cut] into disjoint boxes, slicing attribute by
   attribute: for each axis, split off the parts of the remaining box
   strictly below and strictly above [cut]'s range, then continue with
   the middle slab. The slabs are disjoint by construction and their
   union is exactly box \ cut. *)
let subtract box cut =
  let m = Subscription.arity box in
  if Subscription.arity cut <> m then
    invalid_arg "Exact.subtract: arity mismatch";
  if not (Subscription.intersects box cut) then [ box ]
  else begin
    let pieces = ref [] in
    let current = Subscription.ranges box in
    for j = 0 to m - 1 do
      let bj = current.(j) and cj = Subscription.range cut j in
      (match
         Interval.make_opt ~lo:(Interval.lo bj)
           ~hi:(min (Interval.hi bj) (Interval.lo cj - 1))
       with
      | Some below ->
          let piece = Array.copy current in
          piece.(j) <- below;
          pieces := Subscription.make piece :: !pieces
      | None -> ());
      (match
         Interval.make_opt
           ~lo:(max (Interval.lo bj) (Interval.hi cj + 1))
           ~hi:(Interval.hi bj)
       with
      | Some above ->
          let piece = Array.copy current in
          piece.(j) <- above;
          pieces := Subscription.make piece :: !pieces
      | None -> ());
      match Interval.inter bj cj with
      | Some middle -> current.(j) <- middle
      | None ->
          (* Locally provable: the [Subscription.intersects box cut]
             guard above means every axis pair overlaps. *)
          (assert false [@problint.allow
                          partiality
                            "guarded by Subscription.intersects box cut at \
                             function entry: every axis pair overlaps, so \
                             Interval.inter cannot return None"])
    done;
    !pieces
  end

(* Prefer the cut that swallows the largest share of the box; this
   shrinks the recursion tree dramatically on overlapping workloads. *)
let best_cut box subs =
  let best = ref None in
  List.iter
    (fun si ->
      match Subscription.inter box si with
      | None -> ()
      | Some overlap ->
          let gain = Subscription.log10_size overlap in
          (match !best with
          | Some (_, best_gain) when best_gain >= gain -> ()
          | _ -> best := Some (si, gain)))
    subs;
  Option.map fst !best

let covered_fuel ~fuel s subs =
  let m = Subscription.arity s in
  Array.iter
    (fun si ->
      if Subscription.arity si <> m then
        invalid_arg "Exact: arity mismatch")
    subs;
  let fuel = ref fuel in
  let exception Out_of_fuel in
  let exception Witness_box of Subscription.t in
  let rec go box subs =
    if !fuel <= 0 then raise Out_of_fuel;
    decr fuel;
    match best_cut box subs with
    | None -> raise (Witness_box box)
    | Some cut ->
        if Subscription.covers_sub cut box then ()
        else begin
          let rest =
            List.filter
              (fun si ->
                ((si != cut)
                [@problint.allow
                  unsafe
                    "identity, not structure: removes exactly the chosen \
                     cut from the candidate list; a structurally equal \
                     duplicate must stay"]))
              subs
          in
          let rest = List.filter (fun si -> Subscription.intersects si box) rest in
          List.iter (fun piece -> go piece rest) (subtract box cut)
        end
  in
  match go s (Array.to_list subs) with
  | () -> Some true
  | exception Witness_box _ -> Some false
  | exception Out_of_fuel -> None

let covered s subs =
  match covered_fuel ~fuel:max_int s subs with
  | Some answer -> answer
  | None ->
      invalid_arg
        "Exact.covered: recursion exhausted a max_int fuel budget — \
         unreachable for any physically representable input"

let find_witness s subs =
  let m = Subscription.arity s in
  Array.iter
    (fun si ->
      if Subscription.arity si <> m then
        invalid_arg "Exact.find_witness: arity mismatch")
    subs;
  let exception Witness_box of Subscription.t in
  let rec go box subs =
    match best_cut box subs with
    | None -> raise (Witness_box box)
    | Some cut ->
        if Subscription.covers_sub cut box then ()
        else begin
          let rest =
            List.filter
              (fun si ->
                ((si != cut)
                [@problint.allow
                  unsafe
                    "identity, not structure: removes exactly the chosen \
                     cut from the candidate list; a structurally equal \
                     duplicate must stay"]))
              subs
          in
          let rest = List.filter (fun si -> Subscription.intersects si box) rest in
          List.iter (fun piece -> go piece rest) (subtract box cut)
        end
  in
  match go s (Array.to_list subs) with
  | () -> None
  | exception Witness_box box ->
      Some (Array.map Interval.lo (Subscription.ranges box))

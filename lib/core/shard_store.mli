(** Sharded subscription fabric: {!Subscription_store} partitioned by
    attribute-space region, scaling covering checks and matching to
    very large stores.

    The flat store classifies every arrival against the {e whole}
    active set — O(k·m) just to prune candidates, plus a full repack
    whenever the active set grew. The sharded store partitions the
    active set by the {e first attribute}: the configured [domain0]
    range is split into [shards - 1] contiguous {e stripes} (the outer
    stripes extended to the unbounded sentinels so the stripes cover
    the whole line), plus one {e fallback} shard. An active
    subscription lives in the unique stripe that fully contains its
    first-attribute interval, or in the fallback when it spans a
    stripe boundary or is unconstrained on that attribute. Each shard
    keeps its active ids, boxed subscriptions and a cached {!Flat}
    pack, so a covering check touches only the shards an arrival can
    overlap and an active-set mutation invalidates one shard's pack —
    not the whole store's.

    {2 Confinement is pruning}

    A covering check for [s] consults exactly the stripes whose region
    overlaps [s]'s first-attribute interval, plus the fallback.
    Actives in any other stripe are disjoint from [s] on attribute 0,
    i.e. precisely the candidates the engine's intersection pruning
    would discard first. Since {!Engine.check} prunes {e before} every
    other stage, handing it the gathered (ascending-id) candidates of
    the consulted shards yields a report {e bit-identical} to the flat
    store's over the full set — same verdicts, witnesses, MCS traces
    (as ids), trial counts. The store therefore forces [use_pruning]
    on in its group-policy config: shard confinement {e is} pruning,
    and disabling it would break the equivalence it relies on.

    {2 Seed discipline}

    Classifications draw exactly one {!Prng.split} of the store
    generator each, in arrival (re-classification: ascending-id)
    order — the same stream the flat store consumes. Under a fixed
    seed, placements, coverer ids, match sets and counters (except the
    scan counters, which shrink — that is the point) are equal to the
    flat store's, whether items arrive through {!add} or
    {!add_batch}, with or without a pool. {!add_batch} pre-splits one
    child generator per item in arrival order, classifies windows of
    items concurrently on the pool, and re-classifies an item serially
    only when an earlier arrival turned active in a shard the item
    consults — shard routing bounds the invalidation that forced the
    flat store's retired batch path to discard whole windows.

    The sharded store does not journal; pair it with the flat store's
    durability hooks when persistence is needed. *)

type id = int
(** Store-assigned subscription identifier; assigned in arrival order,
    identical to the flat store's under the same op sequence. *)

type t

val create :
  ?policy:Subscription_store.policy ->
  ?pool:Domain_pool.t ->
  ?shards:int ->
  ?domain0:Interval.t ->
  arity:int ->
  seed:int ->
  unit ->
  t
(** [create ~arity ~seed ()] builds an empty sharded store.
    [?shards] (default 8, minimum 1) is the total shard count:
    [shards - 1] first-attribute stripes plus the fallback;
    [shards = 1] degenerates to a single fallback shard — flat-store
    behaviour. [?domain0] (default {!Interval.full}) is the
    first-attribute range to stripe; pass the workload's real
    attribute domain, or nearly all subscriptions land in one stripe.
    [?policy] defaults to [Group_policy Engine.default_config]; a
    group config is normalised with [use_pruning = true] (see above).
    [?pool] parallelises the RSPC stage of {!add} and the item windows
    of {!add_batch}; results are bit-identical with or without it.
    The store only borrows the pool.
    @raise Invalid_argument if [arity < 1] or [shards < 1]. *)

val policy : t -> Subscription_store.policy
(** The (normalised) policy in force. *)

val arity : t -> int
val size : t -> int
val active_count : t -> int
val covered_count : t -> int

val shard_count : t -> int
(** Total shards, stripes + fallback. *)

val fallback_shard : t -> int
(** Index of the fallback shard (always [shard_count - 1]). *)

val home_shard : t -> id -> int
(** The shard the subscription is (if active) or would be (if
    covered) stored in. @raise Not_found for an unknown id. *)

val shard_actives : t -> int array
(** Per-shard active counts, [shard_count] entries — load-balance
    diagnostics; sums to {!active_count}. *)

val splits_consumed : t -> int
(** Generator splits drawn so far; equals the flat store's under the
    same op sequence. *)

val add : t -> Subscription.t -> id * Subscription_store.placement
(** As {!Subscription_store.add}, confined to the consulted shards.
    @raise Invalid_argument on an arity mismatch. *)

val batch_inline_threshold : int
(** Batches of at most this many items run the sequential {!add} loop
    even when a pool is available: window setup and pool dispatch cost
    more than they save on small batches (the worker-scaling
    regression in BENCH_shard.json's scale phase). The cutover is
    observationally invisible — pre-reserved splits make both paths
    produce identical streams and states. *)

val add_batch :
  t -> Subscription.t array -> (id * Subscription_store.placement) array
(** [add_batch t subs] inserts the whole batch, {e defined} as [subs]
    fed one by one through {!add} in index order — identical ids,
    placements, coverer lists, counters and final state. With a pool
    (group policy) and more than {!batch_inline_threshold} items,
    windows of items are classified concurrently, one pre-split child
    generator per item in arrival order; an item is re-classified
    serially (from a fresh copy of its reserved child) only when an
    earlier item of its window turned active in a shard it consults,
    so a batch loses at most the items whose candidate sets an arrival
    actually changed.
    @raise Invalid_argument if any item's arity mismatches (checked up
    front, before any insertion). *)

val add_with_expiry :
  t -> Subscription.t -> expires_at:float -> id * Subscription_store.placement
(** As {!Subscription_store.add_with_expiry}.
    @raise Invalid_argument on an arity mismatch or NaN lease. *)

val expiry : t -> id -> float
(** [infinity] for unleased subscriptions. @raise Not_found. *)

val renew : t -> id -> expires_at:float -> unit
(** As {!Subscription_store.renew}: unknown ids are a no-op.
    @raise Invalid_argument on a NaN lease. *)

val remove : t -> id -> id list
(** As {!Subscription_store.remove}: drop the subscription, re-check
    the orphans a departing active leaves behind (ascending id, one
    split each) and return the promoted ids. @raise Not_found. *)

val expire : t -> now:float -> id list * id list
(** As {!Subscription_store.expire}: sweep leases, then reclassify the
    orphans of every departed active. Returns (expired, promoted). *)

val find : t -> id -> Subscription.t
(** @raise Not_found. *)

val is_active : t -> id -> bool
(** @raise Not_found. *)

val active : t -> (id * Subscription.t) list
(** Active subscriptions in ascending id order (across all shards). *)

val covered : t -> (id * Subscription.t * id list) list
(** Covered subscriptions with their recorded coverers, ascending. *)

val match_publication : t -> Publication.t -> id list
(** Algorithm 5 with multi-level descent, fanned out through the shard
    map: only the shards whose region overlaps the publication's
    first-attribute value (or box range) — plus the fallback — are
    consulted, and each consulted shard answers through its per-shard
    counting index ({!Counting_matcher}) rather than a linear scan of
    its actives. The hit list is identical to the flat store's. *)

val match_publication_exhaustive : t -> Publication.t -> id list
(** Ground truth against every live subscription, bypassing both the
    two-level structure and the shard map. *)

val check_publication : t -> rng:Prng.t -> Publication.t -> Engine.report
(** As {!Subscription_store.check_publication}, confined to the
    consulted shards: verdict, witness, [k_pruned] and every
    downstream diagnostic equal the flat store's ([k_initial] reflects
    only the gathered candidates). Read-only; never draws from the
    store generator. *)

val stats : t -> Subscription_store.stats
(** Monotone counters since creation. [index_hits] sums the consulted
    shards' counting-index work — compare it against a flat store's to
    measure the fan-out saving; [active_scans] stays zero on the
    indexed match path; all other counters match the flat store's
    exactly under the same seed and op sequence. *)

val validate : t -> bool
(** Structural invariants, for tests: the flat store's coverage
    invariants, plus the shard map's — every active lives in exactly
    its home shard, shard id arrays are strictly ascending and total
    {!active_count}, homes agree with the routing function, and
    cached packs match their shard's subscriptions. *)

(* Classic centered interval tree. Each node stores the intervals
   crossing its center twice: sorted by lo ascending (scanned for
   queries left of the center) and by hi descending (for queries right
   of it). Intervals entirely left/right of the center go to the
   subtrees. Query cost O(log n + answers). *)

type node = {
  center : int;
  by_lo : (int * Interval.t) array; (* crossing, sorted by lo asc *)
  by_hi : (int * Interval.t) array; (* crossing, sorted by hi desc *)
  left : node option;
  right : node option;
}

type t = { root : node option; size : int }

let empty = { root = None; size = 0 }
let size t = t.size

let rec build_node entries =
  match entries with
  | [] -> None
  | _ ->
      (* Median of the interval midpoints keeps the tree balanced for
         the workloads we care about. *)
      let mids =
        List.map
          (fun (_, r) -> (Interval.lo r + Interval.hi r) / 2)
          entries
        |> List.sort Int.compare |> Array.of_list
      in
      let center = mids.(Array.length mids / 2) in
      let crossing, left_of, right_of =
        List.fold_left
          (fun (c, l, r) ((_, range) as e) ->
            if Interval.hi range < center then (c, e :: l, r)
            else if Interval.lo range > center then (c, l, e :: r)
            else (e :: c, l, r))
          ([], [], []) entries
      in
      let by_lo = Array.of_list crossing in
      Array.sort (fun (_, a) (_, b) -> Int.compare (Interval.lo a) (Interval.lo b)) by_lo;
      let by_hi = Array.of_list crossing in
      Array.sort (fun (_, a) (_, b) -> Int.compare (Interval.hi b) (Interval.hi a)) by_hi;
      Some
        {
          center;
          by_lo;
          by_hi;
          left = build_node left_of;
          right = build_node right_of;
        }

let build entries = { root = build_node entries; size = List.length entries }

let iter_stab t v ~f =
  let rec visit = function
    | None -> ()
    | Some node ->
        if v < node.center then begin
          (* Crossing intervals sorted by lo: report while lo <= v. *)
          let arr = node.by_lo in
          let n = Array.length arr in
          let i = ref 0 in
          while
            !i < n
            &&
            let id, range = arr.(!i) in
            if Interval.lo range <= v then begin
              f id;
              true
            end
            else false
          do
            incr i
          done;
          visit node.left
        end
        else if v > node.center then begin
          let arr = node.by_hi in
          let n = Array.length arr in
          let i = ref 0 in
          while
            !i < n
            &&
            let id, range = arr.(!i) in
            if Interval.hi range >= v then begin
              f id;
              true
            end
            else false
          do
            incr i
          done;
          visit node.right
        end
        else
          (* v = center: every crossing interval contains it. *)
          Array.iter (fun (id, _) -> f id) node.by_lo
  in
  visit t.root

let stab t v =
  let acc = ref [] in
  iter_stab t v ~f:(fun id -> acc := id :: !acc);
  !acc

let count_stab t v =
  let n = ref 0 in
  iter_stab t v ~f:(fun _ -> incr n);
  !n

(* Range generalisation of the stabbing walk. A stored [a, b] overlaps
   the query [qlo, qhi] iff a <= qhi && qlo <= b. At a node whose
   center lies inside the query, every crossing interval overlaps (it
   contains the center) and both subtrees may hold answers. A query
   entirely left of the center only needs the crossing intervals with
   a <= qhi (their b >= center > qhi guarantees the other bound) and
   the left subtree — intervals to the right all start past the
   center, hence past the query. Symmetrically on the right. *)
let iter_overlapping t q ~f =
  let qlo = Interval.lo q and qhi = Interval.hi q in
  let rec visit = function
    | None -> ()
    | Some node ->
        if qhi < node.center then begin
          let arr = node.by_lo in
          let n = Array.length arr in
          let i = ref 0 in
          while
            !i < n
            &&
            let id, range = arr.(!i) in
            if Interval.lo range <= qhi then begin
              f id;
              true
            end
            else false
          do
            incr i
          done;
          visit node.left
        end
        else if qlo > node.center then begin
          let arr = node.by_hi in
          let n = Array.length arr in
          let i = ref 0 in
          while
            !i < n
            &&
            let id, range = arr.(!i) in
            if Interval.hi range >= qlo then begin
              f id;
              true
            end
            else false
          do
            incr i
          done;
          visit node.right
        end
        else begin
          Array.iter (fun (id, _) -> f id) node.by_lo;
          visit node.left;
          visit node.right
        end
  in
  visit t.root

let overlapping t q =
  let acc = ref [] in
  iter_overlapping t q ~f:(fun id -> acc := id :: !acc);
  !acc

(* Classic centered interval tree. Each node stores the intervals
   crossing its center twice: sorted by lo ascending (scanned for
   queries left of the center) and by hi descending (for queries right
   of it). Intervals entirely left/right of the center go to the
   subtrees. Query cost O(log n + answers). *)

type node = {
  center : int;
  by_lo : (int * Interval.t) array; (* crossing, sorted by lo asc *)
  by_hi : (int * Interval.t) array; (* crossing, sorted by hi desc *)
  left : node option;
  right : node option;
}

type t = { root : node option; size : int }

let empty = { root = None; size = 0 }
let size t = t.size

let rec build_node entries =
  match entries with
  | [] -> None
  | _ ->
      (* Median of the interval midpoints keeps the tree balanced for
         the workloads we care about. *)
      let mids =
        List.map
          (fun (_, r) -> (Interval.lo r + Interval.hi r) / 2)
          entries
        |> List.sort Int.compare |> Array.of_list
      in
      let center = mids.(Array.length mids / 2) in
      let crossing, left_of, right_of =
        List.fold_left
          (fun (c, l, r) ((_, range) as e) ->
            if Interval.hi range < center then (c, e :: l, r)
            else if Interval.lo range > center then (c, l, e :: r)
            else (e :: c, l, r))
          ([], [], []) entries
      in
      let by_lo = Array.of_list crossing in
      Array.sort (fun (_, a) (_, b) -> Int.compare (Interval.lo a) (Interval.lo b)) by_lo;
      let by_hi = Array.of_list crossing in
      Array.sort (fun (_, a) (_, b) -> Int.compare (Interval.hi b) (Interval.hi a)) by_hi;
      Some
        {
          center;
          by_lo;
          by_hi;
          left = build_node left_of;
          right = build_node right_of;
        }

let build entries = { root = build_node entries; size = List.length entries }

let iter_stab t v ~f =
  let rec visit = function
    | None -> ()
    | Some node ->
        if v < node.center then begin
          (* Crossing intervals sorted by lo: report while lo <= v. *)
          let arr = node.by_lo in
          let n = Array.length arr in
          let i = ref 0 in
          while
            !i < n
            &&
            let id, range = arr.(!i) in
            if Interval.lo range <= v then begin
              f id;
              true
            end
            else false
          do
            incr i
          done;
          visit node.left
        end
        else if v > node.center then begin
          let arr = node.by_hi in
          let n = Array.length arr in
          let i = ref 0 in
          while
            !i < n
            &&
            let id, range = arr.(!i) in
            if Interval.hi range >= v then begin
              f id;
              true
            end
            else false
          do
            incr i
          done;
          visit node.right
        end
        else
          (* v = center: every crossing interval contains it. *)
          Array.iter (fun (id, _) -> f id) node.by_lo
  in
  visit t.root

let stab t v =
  let acc = ref [] in
  iter_stab t v ~f:(fun id -> acc := id :: !acc);
  !acc

let count_stab t v =
  let n = ref 0 in
  iter_stab t v ~f:(fun _ -> incr n);
  !n

(* Range generalisation of the stabbing walk. A stored [a, b] overlaps
   the query [qlo, qhi] iff a <= qhi && qlo <= b. At a node whose
   center lies inside the query, every crossing interval overlaps (it
   contains the center) and both subtrees may hold answers. A query
   entirely left of the center only needs the crossing intervals with
   a <= qhi (their b >= center > qhi guarantees the other bound) and
   the left subtree — intervals to the right all start past the
   center, hence past the query. Symmetrically on the right. *)
let iter_overlapping t q ~f =
  let qlo = Interval.lo q and qhi = Interval.hi q in
  let rec visit = function
    | None -> ()
    | Some node ->
        if qhi < node.center then begin
          let arr = node.by_lo in
          let n = Array.length arr in
          let i = ref 0 in
          while
            !i < n
            &&
            let id, range = arr.(!i) in
            if Interval.lo range <= qhi then begin
              f id;
              true
            end
            else false
          do
            incr i
          done;
          visit node.left
        end
        else if qlo > node.center then begin
          let arr = node.by_hi in
          let n = Array.length arr in
          let i = ref 0 in
          while
            !i < n
            &&
            let id, range = arr.(!i) in
            if Interval.hi range >= qlo then begin
              f id;
              true
            end
            else false
          do
            incr i
          done;
          visit node.right
        end
        else begin
          Array.iter (fun (id, _) -> f id) node.by_lo;
          visit node.left;
          visit node.right
        end
  in
  visit t.root

let overlapping t q =
  let acc = ref [] in
  iter_overlapping t q ~f:(fun id -> acc := id :: !acc);
  !acc

(* ------------------------------------------------------------------- *)

module Dyn = struct
  (* Incremental index: a compacted static tree over *positions* into
     parallel payload arrays, plus a small linear pending buffer for
     fresh appends and a liveness oracle that filters entries whose
     (key, stamp) pair the owner has since retired. Mutations never
     touch the tree; amortized compaction folds the pending buffer in
     and drops dead entries once either grows past its threshold —
     queries stay a pure tree walk plus a short array scan, with no
     rebuild work on the match path. *)

  type dyn = {
    live : key:int -> stamp:int -> bool;
    (* Compacted entries: tree payload = index into these arrays. *)
    mutable tree : t;
    mutable tkey : int array;
    mutable tstamp : int array;
    mutable tlo : int array;
    mutable thi : int array;
    mutable tn : int;
    (* Appends since the last compaction, scanned linearly. *)
    mutable pkey : int array;
    mutable pstamp : int array;
    mutable plo : int array;
    mutable phi : int array;
    mutable pn : int;
    (* Retirements noted since the last compaction. *)
    mutable dead : int;
  }

  type t = dyn

  let create ~live () =
    {
      live;
      tree = empty;
      tkey = [||];
      tstamp = [||];
      tlo = [||];
      thi = [||];
      tn = 0;
      pkey = Array.make 8 0;
      pstamp = Array.make 8 0;
      plo = Array.make 8 0;
      phi = Array.make 8 0;
      pn = 0;
      dead = 0;
    }

  let size t = t.tn + t.pn - t.dead

  let compact t =
    let entries = ref [] in
    let keys = ref [] and stamps = ref [] in
    let n = ref 0 in
    let keep key stamp lo hi =
      if t.live ~key ~stamp then begin
        let pos = !n in
        incr n;
        keys := key :: !keys;
        stamps := stamp :: !stamps;
        entries := (pos, Interval.make ~lo ~hi) :: !entries
      end
    in
    for i = 0 to t.tn - 1 do
      keep t.tkey.(i) t.tstamp.(i) t.tlo.(i) t.thi.(i)
    done;
    for i = 0 to t.pn - 1 do
      keep t.pkey.(i) t.pstamp.(i) t.plo.(i) t.phi.(i)
    done;
    let n = !n in
    let tkey = Array.make (max n 1) 0
    and tstamp = Array.make (max n 1) 0
    and tlo = Array.make (max n 1) 0
    and thi = Array.make (max n 1) 0 in
    (* [keys]/[stamps] are accumulated newest-first; positions count up
       from the oldest, so position [pos] sits at list index
       [n - 1 - pos]. *)
    List.iteri (fun i k -> tkey.(n - 1 - i) <- k) !keys;
    List.iteri (fun i s -> tstamp.(n - 1 - i) <- s) !stamps;
    List.iter
      (fun (pos, iv) ->
        tlo.(pos) <- Interval.lo iv;
        thi.(pos) <- Interval.hi iv)
      !entries;
    t.tree <- build !entries;
    t.tkey <- tkey;
    t.tstamp <- tstamp;
    t.tlo <- tlo;
    t.thi <- thi;
    t.tn <- n;
    t.pn <- 0;
    t.dead <- 0

  (* Pending stays a small constant fraction of the compacted set, so
     the linear scan never dominates the tree walk; compactions are
     O(n log n) but amortize against the Ω(n/8) appends (or n/2
     retirements) that triggered them. *)
  let maybe_compact t =
    if t.pn > 64 + (t.tn / 8) || t.dead > (t.tn + t.pn) / 2 then compact t

  let add t ~key ~stamp iv =
    if t.pn = Array.length t.pkey then begin
      let cap = 2 * t.pn in
      let grow a = let b = Array.make cap 0 in Array.blit a 0 b 0 t.pn; b in
      t.pkey <- grow t.pkey;
      t.pstamp <- grow t.pstamp;
      t.plo <- grow t.plo;
      t.phi <- grow t.phi
    end;
    t.pkey.(t.pn) <- key;
    t.pstamp.(t.pn) <- stamp;
    t.plo.(t.pn) <- Interval.lo iv;
    t.phi.(t.pn) <- Interval.hi iv;
    t.pn <- t.pn + 1;
    maybe_compact t

  let note_dead t =
    t.dead <- t.dead + 1;
    maybe_compact t

  let static_stab = iter_stab

  let iter_stab t v ~f =
    static_stab t.tree v ~f:(fun pos ->
        if t.live ~key:t.tkey.(pos) ~stamp:t.tstamp.(pos) then f t.tkey.(pos));
    for i = 0 to t.pn - 1 do
      if
        t.plo.(i) <= v
        && v <= t.phi.(i)
        && t.live ~key:t.pkey.(i) ~stamp:t.pstamp.(i)
      then f t.pkey.(i)
    done

  let iter_containing t q ~f =
    let qlo = Interval.lo q and qhi = Interval.hi q in
    (* A stored [a, b] contains [qlo, qhi] iff a <= qlo && b >= qhi:
       stab the tree at qlo and filter on the hi bound. *)
    static_stab t.tree qlo ~f:(fun pos ->
        if
          t.thi.(pos) >= qhi
          && t.live ~key:t.tkey.(pos) ~stamp:t.tstamp.(pos)
        then f t.tkey.(pos));
    for i = 0 to t.pn - 1 do
      if
        t.plo.(i) <= qlo
        && t.phi.(i) >= qhi
        && t.live ~key:t.pkey.(i) ~stamp:t.pstamp.(i)
      then f t.pkey.(i)
    done
end
